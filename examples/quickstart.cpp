// Quickstart: the paper's Fig. 4 API tour on the Fig. 2 Xeon platform.
//
//  1. Build the platform topology and simulated machine.
//  2. Load firmware HMAT attributes and benchmark the rest.
//  3. Query local targets, values, and best targets per criterion.
//  4. Allocate with mem_alloc(..., attribute) and watch the fallback.
#include <cstdio>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/topo/render.hpp"

using namespace hetmem;

int main() {
  // --- 1. Platform: dual Xeon 6230, SNC on, NVDIMMs in 1-Level-Memory ---
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  const topo::Topology& topology = machine.topology();
  std::printf("%s\n", topo::render_tree(topology).c_str());

  // --- 2. Attributes: HMAT (firmware) first, probing for what's missing ---
  attr::MemAttrRegistry registry(topology);
  const hmat::HmatTable table = hmat::generate(topology);
  if (auto loaded = hmat::load_into(registry, table); loaded.ok()) {
    std::printf("HMAT: loaded %zu locality entries\n\n",
                loaded->entries_loaded);
  }

  // --- 3. Queries from the first core of package 0 ---
  const topo::Object* pu0 = topology.pus().front();
  const auto initiator = attr::Initiator::from_object(*pu0);

  std::printf("Local NUMA nodes for PU#0:\n");
  for (const topo::Object* node : topology.local_numa_nodes(pu0->cpuset())) {
    std::printf("  %s\n", topo::describe_numa_node(*node).c_str());
  }

  struct Criterion {
    const char* name;
    attr::AttrId attr;
  };
  for (const Criterion& criterion : {Criterion{"Capacity", attr::kCapacity},
                                     Criterion{"Bandwidth", attr::kBandwidth},
                                     Criterion{"Latency", attr::kLatency}}) {
    auto best = registry.best_target(criterion.attr, initiator);
    if (!best.ok()) continue;
    std::printf("best target for %-9s -> NUMANode L#%u (%s), value %.3g\n",
                criterion.name, best->target->logical_index(),
                topo::memory_kind_name(best->target->memory_kind()),
                best->value);
  }

  // --- 4. mem_alloc with attributes; capacity fallback in action ---
  alloc::HeterogeneousAllocator allocator(machine, registry);

  alloc::AllocRequest request;
  request.initiator = pu0->cpuset();
  request.label = "hot-buffer";
  request.bytes = 8ull * support::kGiB;
  request.attribute = attr::kLatency;
  if (auto allocation = allocator.mem_alloc(request); allocation.ok()) {
    std::printf("\nmem_alloc(8GiB, Latency)   -> node L#%u (%s)\n",
                allocation->node,
                topo::memory_kind_name(
                    topology.numa_node(allocation->node)->memory_kind()));
  }

  request.label = "huge-buffer";
  request.bytes = 300ull * support::kGiB;  // larger than any DRAM node
  if (auto allocation = allocator.mem_alloc(request); allocation.ok()) {
    std::printf("mem_alloc(300GiB, Latency) -> node L#%u (%s), fallback=%s\n",
                allocation->node,
                topo::memory_kind_name(
                    topology.numa_node(allocation->node)->memory_kind()),
                allocation->fell_back ? "yes" : "no");
  }

  // --- 5. Benchmark-based discovery fills in what firmware omitted ---
  probe::ProbeOptions options;
  options.include_remote = false;
  options.threads = 10;
  if (auto report = probe::discover(machine, options); report.ok()) {
    std::printf("\nProbed (benchmark) attribute values:\n%s",
                probe::report_to_string(*report, topology).c_str());
  }
  return 0;
}
