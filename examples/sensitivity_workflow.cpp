// The full Figure 6 loop, end to end:
//
//   run the application naively -> profile it -> classify each buffer's
//   sensitivity -> turn sensitivities into allocation criteria -> re-run
//   with the heterogeneous allocator -> measure the improvement.
//
// The "application" is a two-kernel workload (a pointer-chasing phase over
// one buffer and a streaming phase over another) whose buffers have
// *different* needs — exactly the case where one whole-process binding
// cannot win and per-buffer criteria can.
#include <cstdio>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/prof/profiler.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

/// Runs both kernels over the given buffers; returns simulated seconds and
/// exposes the execution for profiling.
double run_app(sim::SimMachine& machine, sim::BufferId graph_buffer,
               sim::BufferId stream_buffer,
               std::unique_ptr<sim::ExecutionContext>* exec_out) {
  auto exec = std::make_unique<sim::ExecutionContext>(
      machine, machine.topology().numa_node(0)->cpuset(), 16);
  exec->set_mlp(6.0);
  sim::Array<std::uint32_t> graph(machine, graph_buffer);
  sim::Array<double> stream(machine, stream_buffer);

  for (int iteration = 0; iteration < 3; ++iteration) {
    exec->run_phase("traverse", 16,
                    [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                        std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        graph.record_bulk_random_reads(ctx, 400000.0);
                      }
                    });
    exec->run_phase("smooth", 16,
                    [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                        std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        stream.record_bulk_read(ctx, 2e9 / 16);
                        stream.record_bulk_write(ctx, 1e9 / 16);
                      }
                    });
  }
  const double seconds = exec->clock_ns() / 1e9;
  *exec_out = std::move(exec);
  return seconds;
}

}  // namespace

int main() {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  attr::MemAttrRegistry registry(machine.topology());
  if (auto loaded = hmat::load_into(registry, hmat::generate(machine.topology()));
      !loaded.ok()) {
    return 1;
  }
  alloc::HeterogeneousAllocator allocator(machine, registry);
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();

  // ---- Step 1: naive run — both buffers on the capacity-best node. ----
  auto naive_graph = machine.allocate(8 * kGiB, 2, "graph.adjacency", 4096);
  auto naive_stream = machine.allocate(8 * kGiB, 2, "field.data", 4096);
  if (!naive_graph.ok() || !naive_stream.ok()) return 1;
  std::unique_ptr<sim::ExecutionContext> naive_exec;
  const double naive_s = run_app(machine, *naive_graph, *naive_stream,
                                 &naive_exec);
  std::printf("naive run (everything on NVDIMM): %.3f simulated s\n\n", naive_s);

  // ---- Step 2: profile. ----
  auto profiles = prof::profile_buffers(*naive_exec);
  std::printf("%s\n", prof::render_hot_buffers(profiles).c_str());

  // ---- Step 3: sensitivities -> allocation criteria. ----
  std::printf("allocation hints derived from the profile:\n");
  struct Hint {
    std::string label;
    attr::AttrId attribute;
  };
  std::vector<Hint> hints;
  for (const prof::BufferProfile& profile : profiles) {
    const attr::AttrId hint = prof::allocation_hint(profile.sensitivity);
    hints.push_back(Hint{profile.label, hint});
    std::printf("  %-16s -> %s (%s-sensitive)\n", profile.label.c_str(),
                registry.info(hint).name.c_str(),
                prof::sensitivity_name(profile.sensitivity));
  }

  // ---- Step 4: re-allocate through mem_alloc(..., attribute). ----
  (void)machine.free(*naive_graph);
  (void)machine.free(*naive_stream);
  auto place = [&](const std::string& label) -> sim::BufferId {
    alloc::AllocRequest request;
    request.bytes = 8 * kGiB;
    request.initiator = initiator;
    request.label = label;
    request.backing_bytes = 4096;
    request.attribute = attr::kCapacity;
    for (const Hint& hint : hints) {
      if (hint.label == label) request.attribute = hint.attribute;
    }
    auto allocation = allocator.mem_alloc(request);
    if (!allocation.ok()) return {};
    std::printf("  %-16s placed on %s\n", label.c_str(),
                topo::memory_kind_name(machine.topology()
                                           .numa_node(allocation->node)
                                           ->memory_kind()));
    return allocation->buffer;
  };
  std::printf("\ntuned placement:\n");
  const sim::BufferId tuned_graph = place("graph.adjacency");
  const sim::BufferId tuned_stream = place("field.data");
  if (!tuned_graph.valid() || !tuned_stream.valid()) return 1;

  // ---- Step 5: re-run and compare. ----
  std::unique_ptr<sim::ExecutionContext> tuned_exec;
  const double tuned_s = run_app(machine, tuned_graph, tuned_stream, &tuned_exec);
  std::printf("\ntuned run: %.3f simulated s  (%.2fx speedup)\n", tuned_s,
              naive_s / tuned_s);
  std::printf(
      "\nThe sensitivity information travelled from the profiler to the\n"
      "allocator as portable attributes -- no memory technology was ever\n"
      "named (paper fig. 6 / sec. VI-C).\n");
  return 0;
}
