// OpenMP memory spaces over the attributes API (paper §II-E, §VIII).
//
// A sketch of what an OpenMP runtime built on this library gives its users:
//   double *a = omp_alloc(n, omp_high_bw_mem_alloc);
// lands on MCDRAM on a KNL and on DRAM on a DRAM+NVDIMM Xeon, with the
// spec's fallback traits deciding what happens when the space is full.
#include <cstdio>

#include "hetmem/hmat/hmat.hpp"
#include "hetmem/omp/omp_spaces.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

void demo_on(const char* name, topo::Topology topology) {
  sim::SimMachine machine(std::move(topology));
  attr::MemAttrRegistry registry(machine.topology());
  hmat::GenerateOptions options;
  options.local_only = false;
  if (!hmat::load_into(registry, hmat::generate(machine.topology(), options)).ok()) {
    return;
  }
  alloc::HeterogeneousAllocator allocator(machine, registry);
  omp::OmpRuntime runtime(allocator);
  const support::Bitmap place = machine.topology().numa_node(0)->cpuset();

  std::printf("--- %s ---\n", name);
  for (omp::MemSpace space :
       {omp::MemSpace::kDefault, omp::MemSpace::kHighBandwidth,
        omp::MemSpace::kLowLatency, omp::MemSpace::kLargeCap}) {
    auto buffer = runtime.allocate(kGiB, runtime.predefined(space), place,
                                   omp::mem_space_name(space));
    if (!buffer.ok()) {
      std::printf("  %-26s -> %s\n", omp::mem_space_name(space),
                  buffer.error().to_string().c_str());
      continue;
    }
    const unsigned node = machine.info(*buffer).node;
    std::printf("  %-26s -> NUMANode L#%u (%s)\n", omp::mem_space_name(space),
                node,
                topo::memory_kind_name(
                    machine.topology().numa_node(node)->memory_kind()));
  }

  // Traits: a strict HBM allocator (null_fb) runs out, the default one
  // spills into the default space.
  auto strict = runtime.init_allocator(
      omp::MemSpace::kHighBandwidth,
      omp::AllocatorTraits{.fallback = omp::FallbackTrait::kNullFb,
                           .alignment = 64});
  if (strict.ok()) {
    (void)runtime.allocate(3 * kGiB, *strict, place, "hbw-hog");
    auto overflow = runtime.allocate(4 * kGiB, *strict, place, "too-much");
    std::printf("  strict hbw overflow        -> %s\n",
                overflow.ok() ? "unexpectedly succeeded"
                              : overflow.error().to_string().c_str());
    auto spilled = runtime.allocate(
        4 * kGiB, runtime.predefined(omp::MemSpace::kHighBandwidth), place,
        "spilled");
    if (spilled.ok()) {
      std::printf("  default-fb hbw overflow    -> NUMANode L#%u (spilled to "
                  "default space)\n",
                  machine.info(*spilled).node);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("OpenMP memory spaces resolved through memory attributes\n\n");
  demo_on("KNL SNC-4 Flat (DRAM + MCDRAM)", topo::knl_snc4_flat());
  demo_on("Xeon (DRAM + NVDIMM)", topo::xeon_clx_1lm());
  demo_on("Fugaku-like (HBM only)", topo::fugaku_like());
  std::printf(
      "The same omp_high_bw_mem_space resolves to MCDRAM, DRAM, and HBM\n"
      "respectively -- the runtime integration the paper proposes in sec. VIII.\n");
  return 0;
}
