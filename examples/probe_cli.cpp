// probe_cli: benchmark a machine's memory attributes once and persist
// them for later runs (the "measure on the cluster, reuse everywhere"
// workflow; hwloc does this with its XML export).
//
// Usage:
//   probe_cli [platform] [--remote] [--save FILE] [--load FILE]
//
// With --save, measured values are written in the hetmem-memattrs text
// format; with --load, a previous dump is reloaded instead of probing (and
// verified to produce the Fig. 5-style report without re-measuring).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "hetmem/memattr/memattr.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/topo/presets.hpp"

using namespace hetmem;

int main(int argc, char** argv) {
  std::string platform = "xeon_clx_1lm";
  std::string save_path;
  std::string load_path;
  bool include_remote = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--remote") == 0) {
      include_remote = true;
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      load_path = argv[++i];
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: probe_cli [platform] [--remote] "
                   "[--save FILE] [--load FILE]\n");
      return 2;
    } else {
      platform = argv[i];
    }
  }

  const topo::NamedTopology* chosen = nullptr;
  for (const topo::NamedTopology& preset : topo::all_presets()) {
    if (platform == preset.name) chosen = &preset;
  }
  if (chosen == nullptr) {
    std::fprintf(stderr, "unknown platform '%s'\n", platform.c_str());
    return 2;
  }

  sim::SimMachine machine(chosen->factory());
  attr::MemAttrRegistry registry(machine.topology());

  if (!load_path.empty()) {
    std::ifstream in(load_path);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", load_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto status = attr::load_values(registry, buffer.str());
    if (!status.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   status.error().to_string().c_str());
      return 1;
    }
    std::printf("loaded persisted attributes from %s (no probing needed)\n\n",
                load_path.c_str());
  } else {
    std::printf("probing %s%s...\n\n", platform.c_str(),
                include_remote ? " (including remote pairs)" : "");
    probe::ProbeOptions options;
    options.backing_bytes = 64 * 1024;
    options.chase_accesses = 4000;
    options.buffer_bytes = 128ull * 1024 * 1024;
    options.include_remote = include_remote;
    auto report = probe::discover(machine, options);
    if (!report.ok()) {
      std::fprintf(stderr, "probe failed: %s\n",
                   report.error().to_string().c_str());
      return 1;
    }
    if (auto status = probe::feed_registry(registry, *report); !status.ok()) {
      std::fprintf(stderr, "feed failed: %s\n",
                   status.error().to_string().c_str());
      return 1;
    }
    (void)probe::register_triad_attribute(registry, *report);
  }

  std::printf("%s", attr::memattrs_report(registry).c_str());

  if (!save_path.empty()) {
    std::ofstream out(save_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", save_path.c_str());
      return 1;
    }
    out << attr::serialize_values(registry);
    std::printf("\nsaved to %s; reload with: probe_cli %s --load %s\n",
                save_path.c_str(), platform.c_str(), save_path.c_str());
  }
  return 0;
}
