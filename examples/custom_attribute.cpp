// Custom attributes (paper §IV, Table I last row, footnote 16):
//
//  1. "StreamTriad" — a derived metric combining probe-measured read and
//     write bandwidths the way the Triad kernel mixes them;
//  2. "Mix2R1W" — a hand-built ranking for an application that does two
//     reads per write, composed from get_value() calls exactly as the
//     paper suggests ("one may build its own target ranking by combining
//     read/write bandwidths from the API");
//  3. "Endurance" — a user-specified global metric (write cycles) showing
//     non-performance criteria.
#include <cstdio>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

using namespace hetmem;

int main() {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const topo::Topology& topology = machine.topology();
  attr::MemAttrRegistry registry(topology);

  // Measure read/write bandwidth separately by benchmarking.
  probe::ProbeOptions options;
  options.backing_bytes = 64 * 1024;
  options.chase_accesses = 2000;
  options.include_remote = false;
  auto report = probe::discover(machine, options);
  if (!report.ok()) return 1;
  if (auto status = probe::feed_registry(registry, *report); !status.ok()) return 1;

  // 1. Derived Triad attribute (16B read + 8B write per element).
  auto triad = probe::register_triad_attribute(registry, *report);
  if (!triad.ok()) return 1;

  // 2. Hand-composed 2-reads-1-write metric from get_value().
  auto mix = registry.register_attribute("Mix2R1W", attr::Polarity::kHigherFirst,
                                         /*need_initiator=*/true);
  if (!mix.ok()) return 1;
  for (const topo::Object* node : topology.numa_nodes()) {
    for (const attr::InitiatorValue& iv :
         registry.initiators(attr::kReadBandwidth, *node)) {
      const auto initiator = attr::Initiator::from_cpuset(iv.initiator);
      auto read_bw = registry.value(attr::kReadBandwidth, *node, initiator);
      auto write_bw = registry.value(attr::kWriteBandwidth, *node, initiator);
      if (!read_bw.ok() || !write_bw.ok()) continue;
      // 2 read bytes per write byte: harmonic combination.
      const double value = 3.0 / (2.0 / *read_bw + 1.0 / *write_bw);
      (void)registry.set_value(*mix, *node, initiator, value);
    }
  }

  // 3. Endurance: DRAM is effectively unlimited, NVDIMM wears out.
  auto endurance = registry.register_attribute(
      "Endurance", attr::Polarity::kHigherFirst, /*need_initiator=*/false);
  if (!endurance.ok()) return 1;
  for (const topo::Object* node : topology.numa_nodes()) {
    const double cycles =
        node->memory_kind() == topo::MemoryKind::kNVDIMM ? 1e6 : 1e16;
    (void)registry.set_value(*endurance, *node, std::nullopt, cycles);
  }

  // Query them like any built-in attribute.
  const auto initiator =
      attr::Initiator::from_cpuset(topology.numa_node(0)->cpuset());
  for (const char* name : {"StreamTriad", "Mix2R1W", "Endurance"}) {
    auto id = registry.find_attribute(name);
    if (!id.ok()) continue;
    auto best = registry.best_target(*id, initiator);
    if (!best.ok()) continue;
    std::printf("best target for %-12s: %s", name,
                topo::memory_kind_name(best->target->memory_kind()));
    if (std::string(name) != "Endurance") {
      std::printf(" at %s", support::format_bandwidth(best->value).c_str());
    }
    std::printf("\n");
  }

  // And allocate with them: a write-heavy wear-sensitive log buffer.
  alloc::HeterogeneousAllocator allocator(machine, registry);
  alloc::AllocRequest request;
  request.bytes = support::kGiB;
  request.attribute = *endurance;
  request.initiator = topology.numa_node(0)->cpuset();
  request.label = "append-log";
  if (auto allocation = allocator.mem_alloc(request); allocation.ok()) {
    std::printf("\nmem_alloc(1GiB, Endurance) -> %s (writes won't wear it)\n",
                topo::memory_kind_name(
                    topology.numa_node(allocation->node)->memory_kind()));
  }
  return 0;
}
