/* Pure C consumer of the hetmem C API (compiled as C11, not C++) — the
 * integration path for C runtimes and Fortran bindings, mirroring how
 * MPI implementations consume hwloc's memattrs today.
 *
 * Walks the same story as examples/quickstart.cpp: pick a machine, query
 * best targets per criterion, allocate by attribute, watch the fallback.
 */
#include <stdio.h>

#include "hetmem/capi.h"

static void run_on(const char* preset) {
  hetmem_context* ctx = hetmem_context_create(preset);
  if (ctx == NULL) {
    fprintf(stderr, "unknown preset '%s'\n", preset);
    return;
  }
  printf("--- %s: %d NUMA nodes, %d PUs ---\n", preset, hetmem_numa_count(ctx),
         hetmem_pu_count(ctx));

  char initiator[64];
  if (hetmem_node_cpuset(ctx, 0, initiator, sizeof(initiator)) < 0) {
    hetmem_context_destroy(ctx);
    return;
  }

  static const struct {
    const char* name;
    int attr;
  } criteria[] = {
      {"Bandwidth", HETMEM_ATTR_BANDWIDTH},
      {"Latency", HETMEM_ATTR_LATENCY},
      {"Capacity", HETMEM_ATTR_CAPACITY},
  };
  for (size_t i = 0; i < sizeof(criteria) / sizeof(criteria[0]); ++i) {
    unsigned node = 0;
    double value = 0.0;
    if (hetmem_memattr_get_best_target(ctx, criteria[i].attr, initiator, &node,
                                       &value) == HETMEM_SUCCESS) {
      printf("  best for %-9s -> L#%u (%s)\n", criteria[i].name, node,
             hetmem_node_kind_debug(ctx, node));
    }
  }

  /* Allocate 1 GiB by latency; then exhaust the node and watch the
   * ranked fallback pick the next target. */
  const int64_t buf =
      hetmem_alloc(ctx, 1ull << 30, HETMEM_ATTR_LATENCY, initiator,
                   HETMEM_POLICY_RANKED_FALLBACK, "c-demo");
  if (buf >= 0) {
    printf("  mem_alloc(1GiB, Latency)   -> L#%d (%s)\n",
           hetmem_buffer_node(ctx, buf),
           hetmem_node_kind_debug(ctx, (unsigned)hetmem_buffer_node(ctx, buf)));
  }
  const uint64_t free_bytes = hetmem_node_available(ctx, 0);
  const int64_t filler =
      hetmem_alloc(ctx, free_bytes, HETMEM_ATTR_LATENCY, initiator,
                   HETMEM_POLICY_STRICT, "filler");
  const int64_t spill =
      hetmem_alloc(ctx, 1ull << 30, HETMEM_ATTR_LATENCY, initiator,
                   HETMEM_POLICY_RANKED_FALLBACK, "spill");
  if (spill >= 0) {
    printf("  after filling node 0       -> L#%d (%s)\n",
           hetmem_buffer_node(ctx, spill),
           hetmem_node_kind_debug(ctx, (unsigned)hetmem_buffer_node(ctx, spill)));
  }
  if (buf >= 0) hetmem_free(ctx, buf);
  if (filler >= 0) hetmem_free(ctx, filler);
  if (spill >= 0) hetmem_free(ctx, spill);
  hetmem_context_destroy(ctx);
}

int main(void) {
  printf("hetmem C API demo (same code, two machines)\n\n");
  run_on("xeon_clx_1lm");
  run_on("knl_snc4_flat");
  return 0;
}
