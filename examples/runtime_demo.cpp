// The online memory-management runtime in ~3 lines of opt-in code.
//
// A phase-flipping workload (a STREAM-like part, then a BFS-like part) runs
// with both buffers parked on slow memory. Attaching a RuntimePolicy to the
// execution context makes the runtime sample traffic at phase boundaries,
// reclassify each buffer's sensitivity with hysteresis, and migrate hot
// buffers to the memory their behavior wants — charging every migration to
// the simulated clock and logging every decision it considered.
//
// See docs/RUNTIME.md for the epoch/hysteresis/budget model.
#include <cstdio>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

using namespace hetmem;
using support::kGiB;
using support::kMiB;

namespace {

constexpr unsigned kThreads = 4;
constexpr unsigned kPhasesPerPart = 16;

/// Runs the two-part workload; the runtime (if any) reacts between phases.
double run_workload(sim::ExecutionContext& exec, sim::Array<double>& streamed,
                    sim::Array<double>& chased) {
  for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
    exec.run_phase("part1.stream", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     streamed.record_bulk_read(ctx, 512.0 * kMiB);
                   });
  }
  for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
    exec.run_phase("part2.random", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     chased.record_bulk_random_reads(ctx, 4e6);
                   });
  }
  return exec.clock_ns();
}

struct Workload {
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  sim::BufferId streamed, chased;

  Workload()
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry) {
    (void)hmat::load_into(registry, hmat::generate(machine.topology()));
    // Both buffers misplaced on the NVDIMM node; DRAM squeezed so only one
    // fits there at a time — no static placement is right for the whole run.
    const std::uint64_t dram =
        machine.topology().numa_node(0)->capacity_bytes();
    (void)*machine.allocate(dram - 3 * kGiB, 0, "resident.hog", 4096);
    streamed = *machine.allocate(2 * kGiB, 2, "flip.stream", 1u << 16);
    chased = *machine.allocate(2 * kGiB, 2, "flip.random", 1u << 16);
  }
};

}  // namespace

int main() {
  std::printf("phase-flipping workload on the Xeon testbed: 16 streaming\n"
              "phases over flip.stream, then 16 pointer-chasing phases over\n"
              "flip.random; both start on NVDIMM, DRAM has room for one.\n\n");

  // Baseline: nobody watches, nothing moves.
  Workload baseline;
  {
    sim::Array<double> streamed(baseline.machine, baseline.streamed);
    sim::Array<double> chased(baseline.machine, baseline.chased);
    sim::ExecutionContext exec(baseline.machine,
                               baseline.machine.topology().numa_node(0)->cpuset(),
                               kThreads);
    const double ns = run_workload(exec, streamed, chased);
    std::printf("static placement:  %8.1f ms simulated\n", ns / 1e6);
  }

  // Managed: the 3-line opt-in.
  Workload managed;
  {
    sim::Array<double> streamed(managed.machine, managed.streamed);
    sim::Array<double> chased(managed.machine, managed.chased);
    const support::Bitmap initiator =
        managed.machine.topology().numa_node(0)->cpuset();
    sim::ExecutionContext exec(managed.machine, initiator, kThreads);

    runtime::RuntimePolicyOptions options;
    options.classifier.ema_alpha = 0.85;
    options.classifier.hysteresis_epochs = 2;
    options.engine.expected_future_epochs = 50.0;
    runtime::RuntimePolicy policy(managed.allocator, initiator, options);
    policy.attach(exec, [&] {
      streamed.refresh_model();
      chased.refresh_model();
    });

    const double ns = run_workload(exec, streamed, chased);
    std::printf("online runtime:    %8.1f ms simulated "
                "(migration costs included)\n\n",
                ns / 1e6);

    const runtime::EngineStats& stats = policy.engine().stats();
    std::printf("decisions considered=%llu accepted=%llu evicted=%llu "
                "rejected=%llu, %s migrated\n\n",
                static_cast<unsigned long long>(stats.considered),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.evicted),
                static_cast<unsigned long long>(stats.rejected),
                support::format_bytes(stats.migrated_bytes).c_str());
    std::printf("decision log:\n%s", policy.render_decision_log().c_str());
  }
  return 0;
}
