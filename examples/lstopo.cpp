// Mini-lstopo: render any preset platform, optionally with memory
// attributes — the library's equivalent of `lstopo` / `lstopo --memattrs`.
//
// Usage:
//   lstopo [platform] [--memattrs] [--cpusets] [--list]
// Platforms: knl_snc4_flat knl_snc4_hybrid50 xeon_clx_snc_1lm xeon_clx_1lm
//            xeon_clx_2lm fictitious_fig3 fugaku_like power9_v100
#include <cstdio>
#include <cstring>
#include <string>

#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/topo/render.hpp"

using namespace hetmem;

int main(int argc, char** argv) {
  std::string platform = "xeon_clx_snc_1lm";
  bool memattrs = false;
  topo::RenderOptions render_options;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--memattrs") == 0) {
      memattrs = true;
    } else if (std::strcmp(argv[i], "--cpusets") == 0) {
      render_options.show_cpusets = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("available platforms:\n");
      for (const topo::NamedTopology& preset : topo::all_presets()) {
        std::printf("  %s\n", preset.name);
      }
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      platform = argv[i];
    }
  }

  const topo::NamedTopology* chosen = nullptr;
  for (const topo::NamedTopology& preset : topo::all_presets()) {
    if (platform == preset.name) chosen = &preset;
  }
  if (chosen == nullptr) {
    std::fprintf(stderr, "unknown platform '%s' (try --list)\n",
                 platform.c_str());
    return 2;
  }

  topo::Topology topology = chosen->factory();
  std::printf("%s", topo::render_tree(topology, render_options).c_str());

  if (memattrs) {
    attr::MemAttrRegistry registry(topology);
    if (auto loaded = hmat::load_into(registry, hmat::generate(topology));
        !loaded.ok()) {
      std::fprintf(stderr, "HMAT load failed: %s\n",
                   loaded.error().to_string().c_str());
      return 1;
    }
    std::printf("\n%s", attr::memattrs_report(registry).c_str());
  }
  return 0;
}
