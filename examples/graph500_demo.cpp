// Graph500 demo: the same latency-criterion allocation on two very
// different machines (paper §VI-A's portability claim).
//
// The application code below never mentions DRAM, NVDIMM, or MCDRAM — it
// says "my buffers are latency-sensitive" and the attributes API resolves
// that to DRAM on the Xeon (NVDIMM is slower) and to the cluster DRAM on
// the KNL (MCDRAM would be wasted: same latency, scarce capacity).
#include <cstdio>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/graph500.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/topo/presets.hpp"

using namespace hetmem;

namespace {

void run_on(const char* name, topo::Topology topology, double compute_ns,
            std::uint64_t llc_bytes) {
  sim::SimMachine machine(std::move(topology));
  machine.set_llc_bytes(llc_bytes);

  // Discover attributes by benchmarking (works on any machine, §IV-A2).
  attr::MemAttrRegistry registry(machine.topology());
  probe::ProbeOptions options;
  options.backing_bytes = 64 * 1024;
  options.chase_accesses = 3000;
  options.buffer_bytes = 256ull * 1024 * 1024;
  auto report = probe::discover(machine, options);
  if (!report.ok()) return;
  (void)probe::feed_registry(registry, *report);
  alloc::HeterogeneousAllocator allocator(machine, registry);

  // The portable application: allocate everything by Latency.
  apps::Graph500Config config;
  config.scale_declared = 24;
  config.scale_backing = 14;
  config.threads = 16;
  config.num_roots = 3;
  config.compute_ns_per_edge = compute_ns;
  config.mlp = 8.0;

  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  auto runner = apps::Graph500Runner::create(
      machine, &allocator, initiator, config,
      apps::Graph500Placement::by_attribute(attr::kLatency));
  if (!runner.ok()) {
    std::fprintf(stderr, "%s: %s\n", name, runner.error().to_string().c_str());
    return;
  }
  auto result = (*runner)->run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", name, result.error().to_string().c_str());
    return;
  }

  const topo::Object* graph_node =
      machine.topology().numa_node((*runner)->node_of_graph());
  std::printf("%-24s: Latency criterion resolved to %s (L#%u); "
              "BFS %.3f TEPSe+8, tree valid: %s\n",
              name, topo::memory_kind_name(graph_node->memory_kind()),
              graph_node->logical_index(),
              result->harmonic_mean_teps / 1e8,
              (*runner)->validate_last_tree().ok() ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("Portable Graph500: mem_alloc(..., Latency) on two machines\n\n");
  run_on("Xeon DRAM+NVDIMM", topo::xeon_clx_1lm(), 16.0,
         static_cast<std::uint64_t>(27.5 * 1024 * 1024));
  run_on("KNL DRAM+MCDRAM (flat)", topo::knl_snc4_flat(), 170.0,
         8 * 1024 * 1024);
  std::printf(
      "\nNeither run hardwired a memory technology: the attribute resolved\n"
      "to the right node on each platform (paper sec. VI-A: 'same\n"
      "performance as manual tuning while remaining portable').\n");
  return 0;
}
