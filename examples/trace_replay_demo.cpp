// Record a live run's traffic, replay it from the trace file — same
// decisions, byte for byte.
//
// The phase-shifting KV-cache workload runs under the online runtime with a
// TraceRecorder chained in front of the policy. The recorder captures the
// raw per-epoch traffic deltas into a compact text trace; replaying that
// trace through a fresh RuntimePolicy on an identically-prepared machine
// drives the same classifier and migration engine to the exact same
// decision log — no workload, no timing, just the trace. That is the debug
// loop docs/RUNTIME.md ("Phase shifts & trace replay") promises: capture a
// production run once, then iterate on policy parameters offline.
#include <cstdio>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/kvcache.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/trace/trace.hpp"

using namespace hetmem;
using support::kGiB;
using support::kMiB;

namespace {

apps::KvCacheConfig workload_config() {
  apps::KvCacheConfig config;
  config.backing_keys_per_segment = 1u << 12;
  config.backing_lookups_per_thread = 512;
  config.phases = 24;
  config.shift_every_phases = 6;  // hot segment rotates every 6 phases
  return config;
}

runtime::RuntimePolicyOptions policy_options() {
  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  return options;
}

/// The testbed both the live run and the replay are prepared on: Xeon with
/// fast DRAM squeezed to one-hot-segment headroom, KV-cache on the NVDIMM.
struct Bed {
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  support::Bitmap initiator;
  std::unique_ptr<apps::KvCacheRunner> runner;

  Bed()
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry),
        initiator(machine.topology().numa_node(0)->cpuset()) {
    if (!hmat::load_into(registry, hmat::generate(machine.topology())).ok()) {
      return;
    }
    unsigned slow = 0;
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        slow = node->logical_index();
      }
    }
    const apps::KvCacheConfig config = workload_config();
    const std::uint64_t headroom = config.declared_value_bytes /
                                       config.segments +
                                   config.declared_log_bytes + 256 * kMiB;
    const std::uint64_t fast_free = machine.available_bytes(0);
    if (fast_free > headroom) {
      (void)machine.allocate(fast_free - headroom, 0, "resident.hog", 4096);
    }
    auto created =
        apps::KvCacheRunner::create(machine, &allocator, initiator, config,
                                    apps::KvCachePlacement::all_on_node(slow));
    if (created.ok()) runner = std::move(created).take();
  }
};

}  // namespace

int main() {
  // --- 1. Live run, recorded ----------------------------------------------
  Bed live;
  if (!live.runner) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  runtime::RuntimePolicy policy(live.allocator, live.initiator,
                                policy_options());
  policy.attach(live.runner->exec(), [&] { live.runner->refresh_arrays(); });
  trace::TraceRecorder recorder({1, "kvcache.phases"});
  recorder.attach(live.runner->exec(), &policy);

  auto result = live.runner->run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  const std::string live_log = policy.render_decision_log();
  std::printf("live run: %.1f Mlookups/s, checksum %.6g\n",
              result->lookups_per_second / 1e6, result->checksum);
  std::printf("decision log:\n%s\n", live_log.c_str());

  // --- 2. Serialize the trace ---------------------------------------------
  const std::string text = trace::serialize(recorder.trace());
  std::printf("trace: %zu epochs, %zu bytes serialized; first lines:\n",
              recorder.trace().epochs.size(), text.size());
  std::size_t shown = 0;
  for (std::size_t pos = 0; pos < text.size() && shown < 6; ++shown) {
    const std::size_t eol = text.find('\n', pos);
    std::printf("  %s\n", text.substr(pos, eol - pos).c_str());
    pos = eol + 1;
  }
  std::printf("  ...\n\n");

  // --- 3. Replay on a fresh machine ---------------------------------------
  auto parsed = trace::parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", parsed.error().message.c_str());
    return 1;
  }
  Bed fresh;
  if (!fresh.runner) {
    std::fprintf(stderr, "replay setup failed\n");
    return 1;
  }
  runtime::RuntimePolicy replay_policy(fresh.allocator, fresh.initiator,
                                       policy_options());
  trace::TraceReplayer replayer(replay_policy);
  const trace::ReplayStats stats = replayer.replay(*parsed);
  const std::string replay_log = replay_policy.render_decision_log();
  std::printf("replayed %llu epochs (paid %.2f ms simulated migration cost)\n",
              static_cast<unsigned long long>(stats.epochs),
              stats.paid_ns / 1e6);
  std::printf("replay log %s the live log, byte for byte\n",
              replay_log == live_log ? "MATCHES" : "DIFFERS FROM");
  return replay_log == live_log ? 0 : 1;
}
