// Edge cases of alloc::advise_migrations (paper §VII): the advisor must stay
// silent on empty runs, negligible traffic, and already-optimal placements,
// and only speak up when a move actually amortizes.
#include <gtest/gtest.h>

#include "hetmem/alloc/advisor.hpp"
#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::alloc {
namespace {

using support::kGiB;
using support::kKiB;
using support::kMiB;

class AdvisorEdgeCaseTest : public ::testing::Test {
 protected:
  AdvisorEdgeCaseTest()
      : machine_(topo::xeon_clx_1lm()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_),
        initiator_(machine_.topology().numa_node(0)->cpuset()) {
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology())).ok());
  }

  unsigned nvdimm_node() const {
    for (const topo::Object* node : machine_.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        return node->logical_index();
      }
    }
    return 0;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  alloc::HeterogeneousAllocator allocator_;
  support::Bitmap initiator_;
};

TEST_F(AdvisorEdgeCaseTest, EmptyRunYieldsNoAdvice) {
  sim::ExecutionContext exec(machine_, initiator_, 4);
  const auto advice = advise_migrations(allocator_, exec, initiator_);
  EXPECT_TRUE(advice.empty());

  // Applying the empty plan is a no-op with zero paid cost.
  auto paid = apply_advice(allocator_, advice);
  ASSERT_TRUE(paid.ok());
  EXPECT_EQ(*paid, 0.0);
  EXPECT_EQ(allocator_.stats().migrations, 0u);
}

TEST_F(AdvisorEdgeCaseTest, BuffersBelowTrafficShareAreIgnored) {
  // A hot, well-placed buffer soaks up >99% of the traffic; a badly-placed
  // buffer stays under min_traffic_share and must not be recommended even
  // though a move would technically improve it.
  auto hot = machine_.allocate(2 * kGiB, 0, "hot", 4096);
  auto misplaced = machine_.allocate(kGiB, nvdimm_node(), "misplaced", 4096);
  ASSERT_TRUE(hot.ok() && misplaced.ok());
  sim::Array<double> hot_array(machine_, *hot);
  sim::Array<double> cold_array(machine_, *misplaced);

  sim::ExecutionContext exec(machine_, initiator_, 4);
  exec.run_phase("p", 4,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   if (begin >= end) return;
                   hot_array.record_bulk_read(ctx, 512.0 * kMiB);
                   cold_array.record_bulk_read(ctx, 64.0 * kKiB);
                 });

  EXPECT_TRUE(advise_migrations(allocator_, exec, initiator_).empty());
}

TEST_F(AdvisorEdgeCaseTest, AlreadyOptimalPlacementYieldsNoAdvice) {
  // Latency-bound traffic on the local DRAM node: the best-ranked target is
  // where the buffer already lives, so there is nothing to advise.
  auto buffer = machine_.allocate(kGiB, 0, "optimal", 4096);
  ASSERT_TRUE(buffer.ok());
  sim::Array<double> array(machine_, *buffer);

  sim::ExecutionContext exec(machine_, initiator_, 4);
  exec.run_phase("p", 4,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   if (begin >= end) return;
                   array.record_bulk_random_reads(ctx, 4e6);
                 });

  EXPECT_TRUE(advise_migrations(allocator_, exec, initiator_).empty());
}

TEST_F(AdvisorEdgeCaseTest, MisplacedHotBufferIsRecommended) {
  // Positive control: the same latency-bound traffic from the NVDIMM node
  // produces exactly one recommendation, toward the local DRAM node.
  auto buffer = machine_.allocate(kGiB, nvdimm_node(), "misplaced.hot", 4096);
  ASSERT_TRUE(buffer.ok());
  sim::Array<double> array(machine_, *buffer);

  sim::ExecutionContext exec(machine_, initiator_, 4);
  exec.run_phase("p", 4,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   if (begin >= end) return;
                   array.record_bulk_random_reads(ctx, 4e6);
                 });

  const auto advice = advise_migrations(allocator_, exec, initiator_);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].buffer.index, buffer->index);
  EXPECT_EQ(advice[0].from_node, nvdimm_node());
  EXPECT_EQ(advice[0].to_node, 0u);
  EXPECT_GT(advice[0].benefit_per_round_ns, 0.0);
  EXPECT_GT(advice[0].cost_ns, 0.0);

  // And applying it actually moves the buffer.
  auto paid = apply_advice(allocator_, advice);
  ASSERT_TRUE(paid.ok());
  EXPECT_GT(*paid, 0.0);
  EXPECT_EQ(machine_.info(*buffer).node, 0u);
  EXPECT_EQ(allocator_.stats().migrations, 1u);
  EXPECT_EQ(allocator_.stats().bytes_migrated, kGiB);
}

}  // namespace
}  // namespace hetmem::alloc
