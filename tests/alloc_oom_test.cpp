// Allocator out-of-memory paths: strict-policy exhaustion, fallback-chain
// exhaustion across every target, degenerate requests, and the resilience
// machinery (transient retry, attribute rescue, failure telemetry).
#include <gtest/gtest.h>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::alloc {
namespace {

using support::Errc;
using support::kGiB;
using support::kMiB;

struct Fixture {
  Fixture()
      : machine(topo::knl_snc4_flat()), registry(machine.topology()) {
    hmat::GenerateOptions options;
    options.local_only = false;
    EXPECT_TRUE(
        hmat::load_into(registry, hmat::generate(machine.topology(), options)).ok());
    allocator = std::make_unique<HeterogeneousAllocator>(machine, registry);
    initiator = machine.topology().numa_node(0)->cpuset();
  }

  AllocRequest request(std::uint64_t bytes, attr::AttrId attribute,
                       Policy policy = Policy::kRankedFallback) {
    AllocRequest r;
    r.bytes = bytes;
    r.attribute = attribute;
    r.initiator = initiator;
    r.policy = policy;
    r.label = "oom";
    return r;
  }

  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  std::unique_ptr<HeterogeneousAllocator> allocator;
  support::Bitmap initiator;
};

TEST(AllocOomTest, StrictPolicyExhaustionFailsWithoutFallback) {
  Fixture f;
  // KNL MCDRAM (best Bandwidth target) is 4 GiB per cluster: fill it, then
  // a strict request must fail even though DRAM has room.
  auto fill = f.allocator->mem_alloc(f.request(4ull * kGiB, attr::kBandwidth,
                                               Policy::kStrict));
  ASSERT_TRUE(fill.ok());
  auto refused = f.allocator->mem_alloc(f.request(64 * kMiB, attr::kBandwidth,
                                                  Policy::kStrict));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, Errc::kOutOfCapacity);
  EXPECT_GE(f.allocator->stats().failures, 1u);
  // Same request with fallback succeeds on a lower-ranked target.
  auto fallback = f.allocator->mem_alloc(f.request(64 * kMiB, attr::kBandwidth));
  ASSERT_TRUE(fallback.ok());
  EXPECT_TRUE(fallback->fell_back);
}

TEST(AllocOomTest, FallbackChainExhaustionAcrossAllTargets) {
  Fixture f;
  // Nothing in the machine can hold more than the largest node (24 GiB DRAM
  // per cluster on knl_snc4_flat): a 200 GiB request exhausts the whole chain.
  auto huge = f.allocator->mem_alloc(f.request(200ull * kGiB, attr::kCapacity));
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.error().code, Errc::kOutOfCapacity);
  const auto failures = f.allocator->failure_log();
  ASSERT_FALSE(failures.empty());
  EXPECT_EQ(failures.back().detail, "all local targets exhausted");
  // Nothing leaked while walking the chain.
  for (unsigned node = 0; node < f.machine.topology().numa_nodes().size(); ++node) {
    EXPECT_EQ(f.machine.used_bytes(node), 0u);
  }
}

TEST(AllocOomTest, EmptyInitiatorRejected) {
  Fixture f;
  AllocRequest r = f.request(1 * kMiB, attr::kCapacity);
  r.initiator = support::Bitmap();
  auto result = f.allocator->mem_alloc(r);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kInvalidArgument);
}

TEST(AllocOomTest, ZeroByteRequestRejected) {
  Fixture f;
  auto result = f.allocator->mem_alloc(f.request(0, attr::kCapacity));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kInvalidArgument);
}

TEST(AllocOomTest, HybridExhaustionWhenNoTargetCanHoldTheSlowPart) {
  Fixture f;
  // Consume most of every node, then ask for a hybrid allocation too large
  // to split anywhere.
  const std::size_t node_count = f.machine.topology().numa_nodes().size();
  for (unsigned node = 0; node < node_count; ++node) {
    const std::uint64_t keep = 8 * kMiB;
    const std::uint64_t available = f.machine.available_bytes(node);
    if (available > keep) {
      ASSERT_TRUE(f.machine.allocate(available - keep, node, "hog").ok());
    }
  }
  AllocRequest r = f.request(1ull * kGiB, attr::kBandwidth);
  auto result = f.allocator->mem_alloc_hybrid(r);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kOutOfCapacity);
}

TEST(AllocOomTest, TransientFaultsRetriedThenSucceed) {
  Fixture f;
  fault::FaultInjector injector(7);
  // Fire exactly twice: with the default budget of 2 retries the first
  // request eats both faults and still lands on the best target.
  injector.configure(fault::site::kMachineAllocTransient,
                     {.probability = 1.0, .max_count = 2});
  f.machine.set_fault_injector(&injector);
  auto result = f.allocator->mem_alloc(f.request(16 * kMiB, attr::kBandwidth));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rank, 0u);
  EXPECT_FALSE(result->fell_back);
  EXPECT_EQ(f.allocator->stats().transient_retries, 2u);
  f.machine.set_fault_injector(nullptr);
}

TEST(AllocOomTest, TransientStormFallsDownRankingNotError) {
  Fixture f;
  fault::FaultInjector injector(7);
  // A long burst outlasts the retry budget on the best target; the walk must
  // continue down the ranking instead of surfacing the transient error.
  injector.configure(fault::site::kMachineAllocTransient,
                     {.probability = 1.0, .max_count = 3, .burst = 3});
  f.machine.set_fault_injector(&injector);
  auto result = f.allocator->mem_alloc(f.request(16 * kMiB, attr::kBandwidth));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fell_back);
  // The exhausted target shows up in the failure telemetry.
  const auto failures = f.allocator->failure_log();
  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures.back().detail.find("transient"), std::string::npos);
  f.machine.set_fault_injector(nullptr);
}

TEST(AllocOomTest, StrictTransientExhaustionSurfacesTransientError) {
  Fixture f;
  fault::FaultInjector injector(7);
  injector.configure(fault::site::kMachineAllocTransient,
                     {.probability = 1.0, .burst = 100});
  f.machine.set_fault_injector(&injector);
  auto result = f.allocator->mem_alloc(f.request(16 * kMiB, attr::kBandwidth,
                                                 Policy::kStrict));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kTransient);
  f.machine.set_fault_injector(nullptr);
}

TEST(AllocOomTest, RetryPolicyZeroDisablesRetries) {
  Fixture f;
  f.allocator->set_retry_policy({.max_transient_retries = 0});
  fault::FaultInjector injector(7);
  injector.configure(fault::site::kMachineAllocTransient,
                     {.probability = 1.0, .max_count = 1});
  f.machine.set_fault_injector(&injector);
  auto result = f.allocator->mem_alloc(f.request(16 * kMiB, attr::kBandwidth));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fell_back);  // no retry: straight to the next target
  EXPECT_EQ(f.allocator->stats().transient_retries, 0u);
  f.machine.set_fault_injector(nullptr);
}

TEST(AllocOomTest, AttributeRescueOffByDefault) {
  Fixture f;
  auto custom = f.registry.register_attribute("Exotic", attr::Polarity::kHigherFirst,
                                              /*need_initiator=*/true);
  ASSERT_TRUE(custom.ok());
  auto result = f.allocator->mem_alloc(f.request(16 * kMiB, *custom));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kNotFound);
  EXPECT_EQ(f.allocator->stats().attribute_rescues, 0u);
}

TEST(AllocOomTest, AttributeRescueDegradesToCapacity) {
  Fixture f;
  auto custom = f.registry.register_attribute("Exotic", attr::Polarity::kHigherFirst,
                                              /*need_initiator=*/true);
  ASSERT_TRUE(custom.ok());
  AllocRequest r = f.request(16 * kMiB, *custom);
  r.attribute_rescue = true;
  auto result = f.allocator->mem_alloc(r);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->used_attribute, attr::kCapacity);
  EXPECT_EQ(f.allocator->stats().attribute_rescues, 1u);
}

TEST(AllocOomTest, AttributeRescueUsesFallbackChainBeforeCapacity) {
  Fixture f;
  // ReadBandwidth has no values of its own, but Bandwidth does: the rescue
  // must land on Bandwidth (resolve chain), not jump straight to Capacity.
  // (This already works without rescue; rescue must not change the answer.)
  AllocRequest r = f.request(16 * kMiB, attr::kReadBandwidth);
  r.attribute_rescue = true;
  auto result = f.allocator->mem_alloc(r);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->used_attribute, attr::kBandwidth);
  EXPECT_EQ(f.allocator->stats().attribute_rescues, 0u);
}

TEST(AllocOomTest, NoisyValuesRankedAfterTrusted) {
  Fixture f;
  // Demote the best Bandwidth target (MCDRAM, node 4) to kNoisy: rankings
  // must now prefer a trusted (DRAM) target, with MCDRAM kept as last resort.
  const topo::Object* mcdram = f.machine.topology().numa_node(4);
  ASSERT_NE(mcdram, nullptr);
  for (const attr::InitiatorValue& iv :
       f.registry.initiators(attr::kBandwidth, *mcdram)) {
    ASSERT_TRUE(f.registry
                    .set_confidence(attr::kBandwidth, *mcdram,
                                    attr::Initiator::from_cpuset(iv.initiator),
                                    attr::Confidence::kNoisy)
                    .ok());
  }
  auto result = f.allocator->mem_alloc(f.request(16 * kMiB, attr::kBandwidth));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(f.machine.topology().numa_node(result->node)->memory_kind(),
            topo::MemoryKind::kDRAM)
      << "noisy MCDRAM values must not win the ranking";
}

TEST(AllocOomTest, OfflineNodeSkippedByRankingWalk) {
  Fixture f;
  // Take the best Bandwidth target offline; allocation falls through to the
  // next target instead of failing.
  auto probe_best = f.allocator->mem_alloc(f.request(1 * kMiB, attr::kBandwidth));
  ASSERT_TRUE(probe_best.ok());
  const unsigned best = probe_best->node;
  ASSERT_TRUE(f.machine.set_node_online(best, false).ok());
  EXPECT_EQ(f.machine.available_bytes(best), 0u);
  auto rerouted = f.allocator->mem_alloc(f.request(1 * kMiB, attr::kBandwidth));
  ASSERT_TRUE(rerouted.ok());
  EXPECT_NE(rerouted->node, best);
  ASSERT_TRUE(f.machine.set_node_online(best, true).ok());
}

}  // namespace
}  // namespace hetmem::alloc
