// Phase resolver and execution-context tests: traffic -> simulated time.
#include "hetmem/simmem/exec.hpp"

#include <gtest/gtest.h>

#include "hetmem/simmem/array.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/builder.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::sim {
namespace {

using support::Bitmap;
using support::gb_per_s;
using support::kGiB;
using support::kMiB;

/// One package, 4 cores, one 16 GiB node with round constants:
/// 100 ns latency, 10 GB/s node bandwidth, 4 GB/s per thread.
SimMachine round_machine() {
  topo::TopologyBuilder builder("round");
  auto package = builder.machine().add_package();
  package.add_cores(4, 1);
  package.attach_numa(topo::MemoryKind::kDRAM, 16 * kGiB);
  auto topology = std::move(builder).finalize();
  EXPECT_TRUE(topology.ok());

  MachinePerfModel model(1);
  NodePerf perf;
  perf.idle_latency_ns = 100.0;
  perf.read_bw = gb_per_s(10.0);
  perf.write_bw = gb_per_s(10.0);
  perf.per_thread_read_bw = gb_per_s(4.0);
  perf.per_thread_write_bw = gb_per_s(4.0);
  perf.loaded_latency_k = 0.0;  // keep arithmetic exact for tests
  model.set_node(0, perf);
  return SimMachine(std::move(topology).take(), std::move(model));
}

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest() : machine_(round_machine()) {
    machine_.set_llc_bytes(kMiB);
    auto buffer = machine_.allocate(kGiB, 0, "buf", 4096);
    EXPECT_TRUE(buffer.ok());
    buffer_ = *buffer;
  }

  PhaseResult resolve(std::vector<ThreadCtx*> contexts) {
    return resolve_phase(machine_, machine_.topology().complete_cpuset(),
                         std::move(contexts), "test");
  }

  SimMachine machine_;
  BufferId buffer_;
};

TEST_F(ResolverTest, PureBandwidthPhase) {
  ThreadCtx ctx(1);
  // 1 GB read at 10 GB/s (1 thread capped at 4 GB/s) => 0.25 s.
  ctx.record_seq_read(0, buffer_, 1e9, 1.0);
  const PhaseResult result = resolve({&ctx});
  EXPECT_NEAR(result.sim_ns, 1e9 / gb_per_s(4.0) * 1e9, 1e3);
  EXPECT_DOUBLE_EQ(result.latency_time_ns_max, 0.0);
}

TEST_F(ResolverTest, BandwidthSaturatesAtNodePeakWithManyThreads) {
  std::vector<ThreadCtx> contexts(4, ThreadCtx(1));
  for (ThreadCtx& ctx : contexts) {
    ctx.record_seq_read(0, buffer_, 1e9, 1.0);  // 4 GB total
  }
  std::vector<ThreadCtx*> raw;
  for (ThreadCtx& ctx : contexts) raw.push_back(&ctx);
  const PhaseResult result = resolve(raw);
  // 4 threads x 4 GB/s = 16 > node peak 10 => 4 GB / 10 GB/s = 0.4 s.
  EXPECT_NEAR(result.sim_ns, 0.4e9, 1e3);
}

TEST_F(ResolverTest, ReadAndWriteTimesAdd) {
  ThreadCtx ctx(1);
  ctx.record_seq_read(0, buffer_, 1e9, 1.0);
  ctx.record_seq_write(0, buffer_, 1e9, 1.0);
  const PhaseResult result = resolve({&ctx});
  EXPECT_NEAR(result.sim_ns, 2.0 * 0.25e9, 1e3);
}

TEST_F(ResolverTest, PureLatencyPhase) {
  ThreadCtx ctx(1);
  ctx.set_mlp(1.0);
  // 1000 dependent misses x 100 ns = 100 us (plus their 64 KB of line
  // traffic, negligible at these sizes).
  ctx.record_rand_read(0, buffer_, 1000, 1.0);
  const PhaseResult result = resolve({&ctx});
  EXPECT_NEAR(result.latency_time_ns_max, 1000 * 100.0, 1.0);
  EXPECT_GE(result.sim_ns, result.bandwidth_time_ns_max);
}

TEST_F(ResolverTest, MlpDividesLatencyCost) {
  ThreadCtx serial(1);
  serial.set_mlp(1.0);
  serial.record_rand_read(0, buffer_, 1000, 1.0);
  ThreadCtx overlapped(1);
  overlapped.set_mlp(4.0);
  overlapped.record_rand_read(0, buffer_, 1000, 1.0);
  EXPECT_NEAR(resolve({&serial}).latency_time_ns_max,
              4.0 * resolve({&overlapped}).latency_time_ns_max, 1.0);
}

TEST_F(ResolverTest, MissRateScalesCharges) {
  ThreadCtx ctx(1);
  ctx.set_mlp(1.0);
  ctx.record_rand_read(0, buffer_, 1000, 0.1);  // 100 expected misses
  const PhaseResult result = resolve({&ctx});
  EXPECT_NEAR(result.latency_time_ns_max, 100 * 100.0, 1.0);
}

TEST_F(ResolverTest, PhaseTimeIsMaxOfLatencyAndBandwidth) {
  ThreadCtx ctx(1);
  ctx.set_mlp(1.0);
  ctx.record_seq_read(0, buffer_, 1e9, 1.0);       // 0.25 s of bandwidth
  ctx.record_rand_read(0, buffer_, 1000, 1.0);     // 0.1 ms of latency
  const PhaseResult result = resolve({&ctx});
  EXPECT_NEAR(result.sim_ns, 0.25e9 + 1000 * 64.0 / gb_per_s(4.0) * 1e9, 1e4);
}

TEST_F(ResolverTest, ComputeTimeAddsToThreadTime) {
  ThreadCtx ctx(1);
  ctx.add_compute_ns(5e6);
  const PhaseResult result = resolve({&ctx});
  EXPECT_NEAR(result.sim_ns, 5e6, 1.0);
  EXPECT_NEAR(result.compute_ns_max, 5e6, 1.0);
}

TEST_F(ResolverTest, SlowestThreadDominates) {
  ThreadCtx fast(1);
  fast.add_compute_ns(1e6);
  ThreadCtx slow(1);
  slow.add_compute_ns(9e6);
  const PhaseResult result = resolve({&fast, &slow});
  EXPECT_NEAR(result.sim_ns, 9e6, 1.0);
}

TEST_F(ResolverTest, MoreBytesNeverFaster) {
  double previous = 0.0;
  for (double bytes = 1e6; bytes <= 1e10; bytes *= 10) {
    ThreadCtx ctx(1);
    ctx.record_seq_read(0, buffer_, bytes, 1.0);
    const double t = resolve({&ctx}).sim_ns;
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST_F(ResolverTest, WorkingSetAggregatesUniqueTouchedBuffers) {
  auto second = machine_.allocate(2 * kGiB, 0, "buf2", 4096);
  ASSERT_TRUE(second.ok());
  ThreadCtx a(1);
  ThreadCtx b(1);
  a.record_seq_read(0, buffer_, 100.0, 1.0);
  a.record_seq_read(0, *second, 100.0, 1.0);
  b.record_seq_read(0, buffer_, 100.0, 1.0);  // same buffer: counted once
  const PhaseResult result = resolve({&a, &b});
  EXPECT_EQ(result.nodes[0].working_set_bytes, 3 * kGiB);
}

TEST_F(ResolverTest, EmptyPhaseTakesNoTime) {
  ThreadCtx ctx(1);
  const PhaseResult result = resolve({&ctx});
  EXPECT_DOUBLE_EQ(result.sim_ns, 0.0);
}

TEST_F(ResolverTest, ResetPhaseClearsNodeTrafficKeepsBufferTotals) {
  ThreadCtx ctx(1);
  ctx.record_rand_read(0, buffer_, 10, 1.0);
  ctx.reset_phase();
  EXPECT_FALSE(ctx.node_traffic()[0].any());
  EXPECT_TRUE(ctx.touched_buffers().empty());
  ASSERT_GT(ctx.buffer_traffic().size(), buffer_.index);
  EXPECT_DOUBLE_EQ(ctx.buffer_traffic()[buffer_.index].reads, 10.0);
  // Re-touch after reset works.
  ctx.record_rand_read(0, buffer_, 5, 1.0);
  EXPECT_EQ(ctx.touched_buffers().size(), 1u);
}

// --- per-thread localities (multi-socket runs) ---

TEST(PerThreadLocality, RemoteThreadPaysRemoteLatency) {
  SimMachine machine(topo::xeon_clx_1lm());
  auto buffer = machine.allocate(kGiB, /*node=*/0, "b", 4096);
  ASSERT_TRUE(buffer.ok());
  const support::Bitmap socket0 = machine.topology().numa_node(0)->cpuset();
  const support::Bitmap socket1 = machine.topology().numa_node(1)->cpuset();

  auto chase_ns = [&](const support::Bitmap& binding) {
    ExecutionContext exec(machine, socket0, 2);
    EXPECT_TRUE(exec.set_thread_localities({binding, binding}).ok());
    exec.set_mlp(1.0);
    Array<std::uint32_t> array(machine, *buffer);
    exec.run_phase("c", 2,
                   [&](ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       array.record_bulk_random_reads(ctx, 10000.0);
                     }
                   });
    return exec.clock_ns();
  };
  const double local_ns = chase_ns(socket0);
  const double remote_ns = chase_ns(socket1);
  // Remote factor is 1.6x on latency.
  EXPECT_NEAR(remote_ns / local_ns, 1.6, 0.1);
}

TEST(PerThreadLocality, MixedThreadsSplitBandwidthClasses) {
  SimMachine machine(topo::xeon_clx_1lm());
  auto buffer = machine.allocate(kGiB, /*node=*/0, "b", 4096);
  ASSERT_TRUE(buffer.ok());
  const support::Bitmap socket0 = machine.topology().numa_node(0)->cpuset();
  const support::Bitmap socket1 = machine.topology().numa_node(1)->cpuset();

  auto stream_ns = [&](const support::Bitmap& a, const support::Bitmap& b) {
    ExecutionContext exec(machine, socket0, 2);
    EXPECT_TRUE(exec.set_thread_localities({a, b}).ok());
    Array<double> array(machine, *buffer);
    exec.run_phase("s", 2,
                   [&](ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       array.record_bulk_read(ctx, 1e9);
                     }
                   });
    return exec.clock_ns();
  };
  const double all_local = stream_ns(socket0, socket0);
  const double mixed = stream_ns(socket0, socket1);
  const double all_remote = stream_ns(socket1, socket1);
  EXPECT_GT(mixed, all_local);
  EXPECT_LT(mixed, all_remote);
}

TEST(PerThreadLocality, WrongCountRejected) {
  SimMachine machine(topo::xeon_clx_1lm());
  ExecutionContext exec(machine, machine.topology().numa_node(0)->cpuset(), 4);
  auto status =
      exec.set_thread_localities({machine.topology().numa_node(0)->cpuset()});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, support::Errc::kInvalidArgument);
}

TEST(PerThreadLocality, EmptyLocalityFallsBackToContextInitiator) {
  SimMachine machine(topo::xeon_clx_1lm());
  auto buffer = machine.allocate(kGiB, /*node=*/0, "b", 4096);
  ASSERT_TRUE(buffer.ok());
  const support::Bitmap socket0 = machine.topology().numa_node(0)->cpuset();

  auto run_with = [&](bool set_empty) {
    ExecutionContext exec(machine, socket0, 2);
    if (set_empty) {
      EXPECT_TRUE(
          exec.set_thread_localities({support::Bitmap{}, support::Bitmap{}}).ok());
    }
    exec.set_mlp(1.0);
    Array<std::uint32_t> array(machine, *buffer);
    exec.run_phase("c", 2,
                   [&](ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       array.record_bulk_random_reads(ctx, 10000.0);
                     }
                   });
    return exec.clock_ns();
  };
  EXPECT_DOUBLE_EQ(run_with(false), run_with(true));
}

// --- loaded latency (needs a model with k > 0) ---

TEST(LoadedLatency, HighUtilizationInflatesLatency) {
  topo::TopologyBuilder builder("loaded");
  auto package = builder.machine().add_package();
  package.add_cores(2, 1);
  package.attach_numa(topo::MemoryKind::kDRAM, 16 * kGiB);
  auto topology = std::move(builder).finalize();
  ASSERT_TRUE(topology.ok());
  MachinePerfModel model(1);
  NodePerf perf;
  perf.idle_latency_ns = 100.0;
  perf.read_bw = gb_per_s(10.0);
  perf.write_bw = gb_per_s(10.0);
  perf.per_thread_read_bw = gb_per_s(10.0);
  perf.per_thread_write_bw = gb_per_s(10.0);
  perf.loaded_latency_k = 2.0;
  model.set_node(0, perf);
  SimMachine machine(std::move(topology).take(), std::move(model));
  auto buffer = machine.allocate(kGiB, 0, "b", 4096);
  ASSERT_TRUE(buffer.ok());

  // Saturating stream + dependent loads: latency portion inflated by k.
  ThreadCtx ctx(1);
  ctx.set_mlp(1.0);
  ctx.record_seq_read(0, *buffer, 1e9, 1.0);
  ctx.record_rand_read(0, *buffer, 1000, 1.0);
  const PhaseResult loaded = resolve_phase(
      machine, machine.topology().complete_cpuset(), {&ctx}, "loaded");

  ThreadCtx quiet(1);
  quiet.set_mlp(1.0);
  quiet.record_rand_read(0, *buffer, 1000, 1.0);
  const PhaseResult idle = resolve_phase(
      machine, machine.topology().complete_cpuset(), {&quiet}, "idle");

  EXPECT_GT(loaded.latency_time_ns_max, idle.latency_time_ns_max * 1.5);
}

// --- ExecutionContext end to end ---

TEST(ExecutionContext, RunPhaseSplitsItemsAcrossSimulatedThreads) {
  SimMachine machine = round_machine();
  ExecutionContext exec(machine, machine.topology().complete_cpuset(), 4);
  std::vector<std::atomic<int>> hits(100);
  exec.run_phase("cover", 100,
                 [&](ThreadCtx&, unsigned, std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
                 });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(exec.history().size(), 1u);
}

TEST(ExecutionContext, MoreSimulatedThreadsThanHardware) {
  SimMachine machine = round_machine();
  // 16 simulated ranks on however many real cores this host has.
  ExecutionContext exec(machine, machine.topology().complete_cpuset(), 16);
  std::atomic<int> count{0};
  exec.run_phase("fan", 64, [&](ThreadCtx&, unsigned, std::size_t begin,
                                std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 64);
  EXPECT_EQ(exec.thread_count(), 16u);
}

TEST(ExecutionContext, ClockAccumulatesAcrossPhases) {
  SimMachine machine = round_machine();
  auto buffer = machine.allocate(kGiB, 0, "b", 4096);
  ASSERT_TRUE(buffer.ok());
  ExecutionContext exec(machine, machine.topology().complete_cpuset(), 2);
  Array<std::uint32_t> array(machine, *buffer);
  for (int phase = 0; phase < 3; ++phase) {
    exec.run_phase("p", 2,
                   [&](ThreadCtx& ctx, unsigned, std::size_t, std::size_t) {
                     array.record_bulk_read(ctx, 1e6);
                   });
  }
  EXPECT_EQ(exec.history().size(), 3u);
  double sum = 0.0;
  for (const PhaseResult& r : exec.history()) sum += r.sim_ns;
  EXPECT_DOUBLE_EQ(exec.clock_ns(), sum);
  EXPECT_GT(exec.clock_ns(), 0.0);
}

TEST(ExecutionContext, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimMachine machine = round_machine();
    auto buffer = machine.allocate(kGiB, 0, "b", 64 * 1024);
    EXPECT_TRUE(buffer.ok());
    ExecutionContext exec(machine, machine.topology().complete_cpuset(), 4);
    Array<std::uint32_t> array(machine, *buffer);
    exec.run_phase("p", 4000,
                   [&](ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       array.load_rand(ctx, i % array.size());
                     }
                   });
    return exec.clock_ns();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(ExecutionContext, MergedBufferTrafficSumsAllThreads) {
  SimMachine machine = round_machine();
  auto buffer = machine.allocate(kGiB, 0, "b", 4096);
  ASSERT_TRUE(buffer.ok());
  ExecutionContext exec(machine, machine.topology().complete_cpuset(), 4);
  Array<std::uint32_t> array(machine, *buffer);
  exec.run_phase("p", 4,
                 [&](ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     array.record_bulk_random_reads(ctx, 10.0);
                   }
                 });
  auto merged = exec.merged_buffer_traffic();
  ASSERT_GT(merged.size(), buffer->index);
  EXPECT_DOUBLE_EQ(merged[buffer->index].reads, 40.0);
}

}  // namespace
}  // namespace hetmem::sim
