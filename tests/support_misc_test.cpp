#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "hetmem/support/rng.hpp"
#include "hetmem/support/str.hpp"
#include "hetmem/support/table.hpp"
#include "hetmem/support/thread_pool.hpp"

namespace hetmem::support {
namespace {

// --- str ---

TEST(Str, SplitKeepsEmptyTokens) {
  auto tokens = split("a,,b", ',');
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "");
  EXPECT_EQ(tokens[2], "b");
}

TEST(Str, SplitSingleToken) {
  auto tokens = split("abc", ',');
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "abc");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("no-op"), "no-op");
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("value_ns=26", "value_ns="));
  EXPECT_FALSE(starts_with("ns=26", "value_ns="));
}

TEST(Str, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

// --- rng ---

TEST(Rng, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // rough uniformity
}

// --- table ---

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, ColumnsAlign) {
  TextTable table({"A", "B"});
  table.add_row({"long-name", "1"});
  table.add_row({"x", "2"});
  const std::string out = table.render();
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    if (width == 0) width = end - start;
    EXPECT_EQ(end - start, width);
    start = end + 1;
  }
}

TEST(TextTable, SeparatorInsertsRule) {
  TextTable table({"A"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // Rules: top, under header, before row 2, bottom = 4.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Banner, ContainsTitle) {
  EXPECT_NE(banner("Table II").find("Table II"), std::string::npos);
}

// --- thread pool ---

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t, std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, HandlesZeroItems) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, end);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 2);  // every worker sees an empty chunk
}

TEST(ThreadPool, RunOnAllVisitsEveryWorker) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(3);
  pool.run_on_all([&](std::size_t worker) { seen[worker].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ZeroWorkersClampsToOneAndStillRuns) {
  // Formerly an assert(workers > 0); release builds must survive a computed
  // worker count of 0 (e.g. hardware_concurrency() - N underflowing).
  ThreadPool pool(0);
  std::atomic<int> workers_seen{0};
  pool.run_on_all([&](std::size_t) { workers_seen.fetch_add(1); });
  EXPECT_EQ(workers_seen.load(), 1);

  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t, std::size_t begin, std::size_t end) {
      long local = 0;
      for (std::size_t i = begin; i < end; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
  }
  EXPECT_EQ(sum.load(), 50L * (99 * 100 / 2));
}

}  // namespace
}  // namespace hetmem::support
