#include "hetmem/support/bitmap.hpp"

#include <gtest/gtest.h>

#include <set>

#include "hetmem/support/rng.hpp"

namespace hetmem::support {
namespace {

TEST(Bitmap, StartsEmpty) {
  Bitmap bitmap;
  EXPECT_TRUE(bitmap.empty());
  EXPECT_EQ(bitmap.count(), 0u);
  EXPECT_FALSE(bitmap.first().has_value());
  EXPECT_FALSE(bitmap.last().has_value());
}

TEST(Bitmap, SetAndTest) {
  Bitmap bitmap;
  bitmap.set(0);
  bitmap.set(63);
  bitmap.set(64);
  bitmap.set(1000);
  EXPECT_TRUE(bitmap.test(0));
  EXPECT_TRUE(bitmap.test(63));
  EXPECT_TRUE(bitmap.test(64));
  EXPECT_TRUE(bitmap.test(1000));
  EXPECT_FALSE(bitmap.test(1));
  EXPECT_FALSE(bitmap.test(999));
  EXPECT_FALSE(bitmap.test(100000));
  EXPECT_EQ(bitmap.count(), 4u);
}

TEST(Bitmap, ClearRemovesBit) {
  Bitmap bitmap{5, 6, 7};
  bitmap.clear(6);
  EXPECT_FALSE(bitmap.test(6));
  EXPECT_EQ(bitmap.count(), 2u);
  bitmap.clear(1000);  // clearing an unset high bit is a no-op
  EXPECT_EQ(bitmap.count(), 2u);
}

TEST(Bitmap, InitializerList) {
  Bitmap bitmap{1, 3, 5};
  EXPECT_EQ(bitmap.to_vector(), (std::vector<unsigned>{1, 3, 5}));
}

TEST(Bitmap, RangeConstruction) {
  Bitmap bitmap = Bitmap::range(10, 14);
  EXPECT_EQ(bitmap.count(), 5u);
  EXPECT_TRUE(bitmap.test(10));
  EXPECT_TRUE(bitmap.test(14));
  EXPECT_FALSE(bitmap.test(9));
  EXPECT_FALSE(bitmap.test(15));
}

TEST(Bitmap, FirstLastNext) {
  Bitmap bitmap{2, 65, 130};
  EXPECT_EQ(bitmap.first(), 2u);
  EXPECT_EQ(bitmap.last(), 130u);
  EXPECT_EQ(bitmap.next(2), 65u);
  EXPECT_EQ(bitmap.next(65), 130u);
  EXPECT_FALSE(bitmap.next(130).has_value());
  EXPECT_EQ(bitmap.next(0), 2u);
}

TEST(Bitmap, UnionIntersectionXor) {
  Bitmap a{1, 2, 3};
  Bitmap b{3, 4, 100};
  EXPECT_EQ((a | b).to_vector(), (std::vector<unsigned>{1, 2, 3, 4, 100}));
  EXPECT_EQ((a & b).to_vector(), (std::vector<unsigned>{3}));
  EXPECT_EQ((a ^ b).to_vector(), (std::vector<unsigned>{1, 2, 4, 100}));
}

TEST(Bitmap, AndNot) {
  Bitmap a{1, 2, 3, 70};
  Bitmap b{2, 70};
  EXPECT_EQ(a.and_not(b).to_vector(), (std::vector<unsigned>{1, 3}));
  EXPECT_EQ(b.and_not(a).count(), 0u);
}

TEST(Bitmap, EqualityIgnoresTrailingZeros) {
  Bitmap a{1};
  Bitmap b{1, 200};
  b.clear(200);  // trims internal words
  EXPECT_TRUE(a == b);
  Bitmap c{1};
  c.set(500);
  c.clear(500);
  EXPECT_TRUE(a == c);
}

TEST(Bitmap, SubsetAndIntersects) {
  Bitmap small{1, 2};
  Bitmap big{0, 1, 2, 3};
  Bitmap other{9};
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.intersects(big));
  EXPECT_FALSE(small.intersects(other));
  EXPECT_TRUE(Bitmap{}.is_subset_of(small));  // empty set is subset of all
  EXPECT_FALSE(Bitmap{}.intersects(small));
}

TEST(Bitmap, SubsetOfSelf) {
  Bitmap bitmap{3, 80};
  EXPECT_TRUE(bitmap.is_subset_of(bitmap));
}

TEST(Bitmap, ListStringRoundTrip) {
  Bitmap bitmap{0, 1, 2, 3, 8, 10, 11};
  EXPECT_EQ(bitmap.to_list_string(), "0-3,8,10-11");
  auto parsed = Bitmap::parse("0-3,8,10-11");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == bitmap);
}

TEST(Bitmap, EmptyListString) {
  EXPECT_EQ(Bitmap{}.to_list_string(), "");
  auto parsed = Bitmap::parse("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(Bitmap, ParseSingleValues) {
  auto parsed = Bitmap::parse("5");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_vector(), (std::vector<unsigned>{5}));
}

TEST(Bitmap, ParseRejectsGarbage) {
  EXPECT_FALSE(Bitmap::parse("a-b").has_value());
  EXPECT_FALSE(Bitmap::parse("3-1").has_value());  // inverted range
  EXPECT_FALSE(Bitmap::parse("1,,2").has_value());
  EXPECT_FALSE(Bitmap::parse("1-").has_value());
  EXPECT_FALSE(Bitmap::parse("-3").has_value());
  EXPECT_FALSE(Bitmap::parse("1.5").has_value());
}

TEST(Bitmap, HexString) {
  EXPECT_EQ(Bitmap{}.to_hex_string(), "0x0");
  EXPECT_EQ((Bitmap{0, 1, 2, 3}).to_hex_string(), "0xf");
  EXPECT_EQ((Bitmap{64}).to_hex_string(), "0x10000000000000000");
}

TEST(Bitmap, CompoundAssignments) {
  Bitmap a{1};
  a |= Bitmap{2, 300};
  EXPECT_EQ(a.count(), 3u);
  a &= Bitmap{2, 300, 9};
  EXPECT_EQ(a.to_vector(), (std::vector<unsigned>{2, 300}));
}

// Property test: random operation sequences agree with std::set<unsigned>.
class BitmapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitmapPropertyTest, AgreesWithReferenceSet) {
  Xoshiro256 rng(GetParam());
  Bitmap bitmap;
  std::set<unsigned> reference;
  for (int step = 0; step < 500; ++step) {
    const unsigned bit = static_cast<unsigned>(rng.next_below(260));
    switch (rng.next_below(3)) {
      case 0:
        bitmap.set(bit);
        reference.insert(bit);
        break;
      case 1:
        bitmap.clear(bit);
        reference.erase(bit);
        break;
      default:
        EXPECT_EQ(bitmap.test(bit), reference.count(bit) > 0);
        break;
    }
  }
  EXPECT_EQ(bitmap.count(), reference.size());
  EXPECT_EQ(bitmap.to_vector(),
            std::vector<unsigned>(reference.begin(), reference.end()));
  if (!reference.empty()) {
    EXPECT_EQ(bitmap.first(), *reference.begin());
    EXPECT_EQ(bitmap.last(), *reference.rbegin());
  }
  // Round-trip through the list format.
  auto parsed = Bitmap::parse(bitmap.to_list_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == bitmap);
}

TEST_P(BitmapPropertyTest, AlgebraLaws) {
  Xoshiro256 rng(GetParam() * 7919 + 13);
  auto random_bitmap = [&] {
    Bitmap bitmap;
    const std::size_t n = rng.next_below(32);
    for (std::size_t i = 0; i < n; ++i) {
      bitmap.set(static_cast<unsigned>(rng.next_below(200)));
    }
    return bitmap;
  };
  const Bitmap a = random_bitmap();
  const Bitmap b = random_bitmap();
  const Bitmap c = random_bitmap();
  EXPECT_TRUE((a | b) == (b | a));
  EXPECT_TRUE((a & b) == (b & a));
  EXPECT_TRUE(((a | b) | c) == (a | (b | c)));
  EXPECT_TRUE((a & (b | c)) == ((a & b) | (a & c)));
  EXPECT_TRUE(a.and_not(b) == (a ^ (a & b)));
  EXPECT_TRUE((a & b).is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a | b));
  EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace hetmem::support
