#include "hetmem/alloc/allocator.hpp"

#include <gtest/gtest.h>

#include "hetmem/hmat/hmat.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::alloc {
namespace {

using support::Errc;
using support::kGiB;
using support::kMiB;

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest()
      : machine_(topo::xeon_clx_1lm()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_) {
    // Attributes from the synthetic firmware tables.
    auto loaded = hmat::load_into(registry_, hmat::generate(machine_.topology()));
    EXPECT_TRUE(loaded.ok());
  }

  AllocRequest request(std::uint64_t bytes, attr::AttrId attribute,
                       Policy policy = Policy::kRankedFallback) {
    AllocRequest r;
    r.bytes = bytes;
    r.attribute = attribute;
    r.initiator = machine_.topology().numa_node(0)->cpuset();  // package 0
    r.policy = policy;
    r.label = "test";
    return r;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  HeterogeneousAllocator allocator_;
};

TEST_F(AllocatorTest, LatencyCriterionPicksDram) {
  auto allocation = allocator_.mem_alloc(request(kGiB, attr::kLatency));
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(allocation->node, 0u);
  EXPECT_FALSE(allocation->fell_back);
  EXPECT_EQ(allocation->rank, 0u);
}

TEST_F(AllocatorTest, CapacityCriterionPicksNvdimm) {
  auto allocation = allocator_.mem_alloc(request(kGiB, attr::kCapacity));
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(machine_.topology().numa_node(allocation->node)->memory_kind(),
            topo::MemoryKind::kNVDIMM);
}

TEST_F(AllocatorTest, BandwidthCriterionPicksDram) {
  auto allocation = allocator_.mem_alloc(request(kGiB, attr::kBandwidth));
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(machine_.topology().numa_node(allocation->node)->memory_kind(),
            topo::MemoryKind::kDRAM);
}

TEST_F(AllocatorTest, PortableAcrossPlatforms) {
  // The paper's central claim: the same Latency request returns DRAM here
  // but must return something sensible on a KNL (where it returns the
  // cluster DRAM) and on HBM-only Fugaku (the only node) — no code changes.
  for (const topo::NamedTopology& preset : topo::all_presets()) {
    sim::SimMachine machine(preset.factory());
    attr::MemAttrRegistry registry(machine.topology());
    hmat::GenerateOptions options;
    options.local_only = false;
    ASSERT_TRUE(
        hmat::load_into(registry, hmat::generate(machine.topology(), options))
            .ok());
    HeterogeneousAllocator allocator(machine, registry);
    AllocRequest r;
    r.bytes = kMiB;
    r.attribute = attr::kLatency;
    r.initiator = machine.topology().pus().front()->cpuset();
    r.label = preset.name;
    auto allocation = allocator.mem_alloc(r);
    ASSERT_TRUE(allocation.ok()) << preset.name << ": "
                                 << allocation.error().to_string();
  }
}

TEST_F(AllocatorTest, RankedFallbackWhenBestIsFull) {
  // Fill DRAM node 0 (192 GiB).
  ASSERT_TRUE(allocator_.mem_alloc(request(192 * kGiB, attr::kLatency)).ok());
  // Next latency request falls through the ranking (node 0 full -> NVDIMM
  // node 2; node 1/3 are remote to package 0's intersecting locality? node 1
  // does not intersect package0 cpuset, so the local ranking is [0, 2]).
  auto allocation = allocator_.mem_alloc(request(kGiB, attr::kLatency));
  ASSERT_TRUE(allocation.ok());
  EXPECT_TRUE(allocation->fell_back);
  EXPECT_EQ(allocation->rank, 1u);
  EXPECT_EQ(machine_.topology().numa_node(allocation->node)->memory_kind(),
            topo::MemoryKind::kNVDIMM);
  EXPECT_EQ(allocator_.stats().fallbacks, 1u);
}

TEST_F(AllocatorTest, StrictPolicyFailsInsteadOfFallingBack) {
  ASSERT_TRUE(allocator_.mem_alloc(request(192 * kGiB, attr::kLatency)).ok());
  auto allocation =
      allocator_.mem_alloc(request(kGiB, attr::kLatency, Policy::kStrict));
  ASSERT_FALSE(allocation.ok());
  EXPECT_EQ(allocation.error().code, Errc::kOutOfCapacity);
  EXPECT_GE(allocator_.stats().failures, 1u);
}

TEST_F(AllocatorTest, AllTargetsExhausted) {
  ASSERT_TRUE(allocator_.mem_alloc(request(192 * kGiB, attr::kLatency)).ok());
  ASSERT_TRUE(allocator_.mem_alloc(request(768 * kGiB, attr::kCapacity)).ok());
  auto allocation = allocator_.mem_alloc(request(kGiB, attr::kLatency));
  ASSERT_FALSE(allocation.ok());
  EXPECT_EQ(allocation.error().code, Errc::kOutOfCapacity);
}

TEST_F(AllocatorTest, AttributeFallbackReadBandwidthToBandwidth) {
  // ReadBandwidth has no values (local-only HMAT without split): the request
  // silently resolves to Bandwidth.
  auto allocation = allocator_.mem_alloc(request(kGiB, attr::kReadBandwidth));
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(allocation->used_attribute, attr::kBandwidth);
}

TEST_F(AllocatorTest, UnknownAttributeValuesRejected) {
  auto custom = registry_.register_attribute("Ghost", attr::Polarity::kHigherFirst,
                                             /*need_initiator=*/false);
  ASSERT_TRUE(custom.ok());
  auto allocation = allocator_.mem_alloc(request(kGiB, *custom));
  ASSERT_FALSE(allocation.ok());
  EXPECT_EQ(allocation.error().code, Errc::kNotFound);
}

TEST_F(AllocatorTest, RequestValidation) {
  auto zero = allocator_.mem_alloc(request(0, attr::kLatency));
  EXPECT_FALSE(zero.ok());
  AllocRequest r = request(kGiB, attr::kLatency);
  r.initiator = support::Bitmap{};
  EXPECT_FALSE(allocator_.mem_alloc(r).ok());
}

TEST_F(AllocatorTest, MemFreeReleasesAndCounts) {
  auto allocation = allocator_.mem_alloc(request(kGiB, attr::kLatency));
  ASSERT_TRUE(allocation.ok());
  const std::uint64_t used = machine_.used_bytes(allocation->node);
  ASSERT_TRUE(allocator_.mem_free(allocation->buffer).ok());
  EXPECT_EQ(machine_.used_bytes(allocation->node), used - kGiB);
  EXPECT_EQ(allocator_.stats().frees, 1u);
  EXPECT_FALSE(allocator_.mem_free(allocation->buffer).ok());  // double free
}

TEST_F(AllocatorTest, MigrationCostScalesWithSize) {
  auto small = allocator_.mem_alloc(request(kGiB, attr::kLatency));
  auto large = allocator_.mem_alloc(request(16 * kGiB, attr::kLatency));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  auto small_cost = allocator_.migrate(small->buffer, 2);
  auto large_cost = allocator_.migrate(large->buffer, 2);
  ASSERT_TRUE(small_cost.ok());
  ASSERT_TRUE(large_cost.ok());
  EXPECT_GT(*large_cost, *small_cost * 10.0);
  EXPECT_EQ(allocator_.stats().migrations, 2u);
  // Migration is expensive (paper §VII): >= per-page overhead alone.
  const double pages = static_cast<double>(kGiB) / 4096.0;
  EXPECT_GE(*small_cost, pages * 1000.0);
}

TEST_F(AllocatorTest, MigrateToSameNodeIsFree) {
  auto allocation = allocator_.mem_alloc(request(kGiB, attr::kLatency));
  ASSERT_TRUE(allocation.ok());
  auto cost = allocator_.migrate(allocation->buffer, allocation->node);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 0.0);
}

TEST_F(AllocatorTest, InterceptionSizeRules) {
  // AutoHBW-style: buffers in [1 MiB, 1 GiB) are "important" -> Bandwidth.
  allocator_.add_size_rule(SizeRule{kMiB, kGiB, attr::kBandwidth});
  const support::Bitmap initiator = machine_.topology().numa_node(0)->cpuset();

  auto big = allocator_.mem_alloc_intercepted(16 * kMiB, initiator, "matched");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(machine_.topology().numa_node(big->node)->memory_kind(),
            topo::MemoryKind::kDRAM);

  // Below the rule: default (Locality) order -> first local node.
  auto tiny = allocator_.mem_alloc_intercepted(1024, initiator, "unmatched");
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->node, 0u);
}

TEST_F(AllocatorTest, FirstMatchingSizeRuleWins) {
  allocator_.add_size_rule(SizeRule{0, UINT64_MAX, attr::kCapacity});
  allocator_.add_size_rule(SizeRule{kMiB, kGiB, attr::kBandwidth});
  const support::Bitmap initiator = machine_.topology().numa_node(0)->cpuset();
  auto allocation = allocator_.mem_alloc_intercepted(16 * kMiB, initiator, "x");
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(machine_.topology().numa_node(allocation->node)->memory_kind(),
            topo::MemoryKind::kNVDIMM);  // first rule (Capacity) matched
}

TEST_F(AllocatorTest, StatsAndTraceRecordEverything) {
  ASSERT_TRUE(allocator_.mem_alloc(request(kGiB, attr::kLatency)).ok());
  ASSERT_TRUE(allocator_.mem_alloc(request(kGiB, attr::kCapacity)).ok());
  EXPECT_EQ(allocator_.stats().allocations, 2u);
  EXPECT_EQ(allocator_.stats().bytes_allocated, 2 * kGiB);
  ASSERT_EQ(allocator_.trace().size(), 2u);
  EXPECT_EQ(allocator_.trace()[0].kind, TraceEvent::Kind::kAlloc);
  EXPECT_EQ(allocator_.trace()[0].label, "test");
}

TEST_F(AllocatorTest, PreferredThenDefaultRescuesViaOsOrder) {
  // Make Latency values exist only for node 0 by rebuilding a registry with
  // just one entry: the ranking is [node 0]; once full, kPreferredThenDefault
  // rescues via OS default order (node 2 is the other local node).
  attr::MemAttrRegistry sparse(machine_.topology());
  const topo::Object& dram = *machine_.topology().numa_node(0);
  ASSERT_TRUE(sparse
                  .set_value(attr::kLatency, dram,
                             attr::Initiator::from_cpuset(dram.cpuset()), 285.0)
                  .ok());
  HeterogeneousAllocator allocator(machine_, sparse);

  AllocRequest r = request(192 * kGiB, attr::kLatency, Policy::kPreferredThenDefault);
  ASSERT_TRUE(allocator.mem_alloc(r).ok());  // fills node 0
  r.bytes = kGiB;
  auto rescued = allocator.mem_alloc(r);
  ASSERT_TRUE(rescued.ok());
  EXPECT_TRUE(rescued->fell_back);
  EXPECT_EQ(rescued->node, 2u);

  // The same request under kRankedFallback fails: the ranking is exhausted.
  AllocRequest ranked_only = r;
  ranked_only.policy = Policy::kRankedFallback;
  auto failed = allocator.mem_alloc(ranked_only);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, Errc::kOutOfCapacity);
}

}  // namespace
}  // namespace hetmem::alloc
