#include "hetmem/topo/serialize.hpp"

#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"
#include "hetmem/support/rng.hpp"
#include "hetmem/topo/builder.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/topo/render.hpp"

namespace hetmem::topo {
namespace {

using support::Errc;

TEST(Serialize, ContainsHeaderAndStructure) {
  Topology topology = xeon_clx_snc_1lm();
  const std::string text = serialize(topology);
  EXPECT_NE(text.find("# hetmem-topology v1 \"2x Xeon 6230 SNC 1LM\""),
            std::string::npos);
  EXPECT_NE(text.find("package"), std::string::npos);
  EXPECT_NE(text.find("group subtype=SubNUMACluster"), std::string::npos);
  EXPECT_NE(text.find("cores count=10 pus=2"), std::string::npos);
  EXPECT_NE(text.find("kind=NVDIMM"), std::string::npos);
}

// Round-trip across every preset: parse(serialize(t)) reproduces the exact
// node numbering, capacities, kinds, localities, and PU counts.
class SerializeRoundTripTest
    : public ::testing::TestWithParam<NamedTopology> {};

TEST_P(SerializeRoundTripTest, ParseSerializeIsIdentity) {
  Topology original = GetParam().factory();
  const std::string text = serialize(original);
  auto restored = parse_topology(text);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string() << "\n" << text;

  EXPECT_EQ(restored->platform_name(), original.platform_name());
  EXPECT_EQ(restored->pus().size(), original.pus().size());
  ASSERT_EQ(restored->numa_nodes().size(), original.numa_nodes().size());
  for (std::size_t i = 0; i < original.numa_nodes().size(); ++i) {
    const Object* a = original.numa_nodes()[i];
    const Object* b = restored->numa_nodes()[i];
    EXPECT_EQ(a->os_index(), b->os_index());
    EXPECT_EQ(a->memory_kind(), b->memory_kind());
    EXPECT_EQ(a->capacity_bytes(), b->capacity_bytes());
    EXPECT_TRUE(a->cpuset() == b->cpuset()) << "locality of node " << i;
    EXPECT_EQ(a->memory_side_cache().has_value(),
              b->memory_side_cache().has_value());
    if (a->memory_side_cache().has_value()) {
      EXPECT_EQ(a->memory_side_cache()->size_bytes,
                b->memory_side_cache()->size_bytes);
    }
  }
  // Second serialization is byte-identical (canonical form).
  EXPECT_EQ(serialize(*restored), text);
  EXPECT_TRUE(restored->validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, SerializeRoundTripTest, ::testing::ValuesIn(all_presets()),
    [](const ::testing::TestParamInfo<NamedTopology>& info) {
      return info.param.name;
    });

TEST(ParseTopology, RejectsMissingHeader) {
  auto result = parse_topology("package\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kParseError);
}

TEST(ParseTopology, RejectsUnknownRecord) {
  auto result = parse_topology(
      "# hetmem-topology v1 \"x\"\n"
      "frobnicator\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("unknown record"), std::string::npos);
}

TEST(ParseTopology, RejectsIndentationJump) {
  auto result = parse_topology(
      "# hetmem-topology v1 \"x\"\n"
      "package\n"
      "      cores count=1 pus=1\n");  // jumps two levels
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("indentation"), std::string::npos);
}

TEST(ParseTopology, RejectsNonDenseOsIndices) {
  auto result = parse_topology(
      "# hetmem-topology v1 \"x\"\n"
      "package\n"
      "  numa os=1 kind=DRAM capacity=1024\n"
      "  cores count=1 pus=1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("not dense"), std::string::npos);
}

TEST(ParseTopology, RejectsBadKindAndNumbers) {
  auto bad_kind = parse_topology(
      "# hetmem-topology v1 \"x\"\n"
      "package\n"
      "  numa os=0 kind=FOAM capacity=1024\n"
      "  cores count=1 pus=1\n");
  ASSERT_FALSE(bad_kind.ok());
  auto bad_count = parse_topology(
      "# hetmem-topology v1 \"x\"\n"
      "package\n"
      "  numa os=0 kind=DRAM capacity=1024\n"
      "  cores count=zero pus=1\n");
  ASSERT_FALSE(bad_count.ok());
}

TEST(ParseTopology, MsCacheRoundTrip) {
  auto result = parse_topology(
      "# hetmem-topology v1 \"cached\"\n"
      "package\n"
      "  numa os=0 kind=NVDIMM capacity=1073741824 mscache=1048576,1,64\n"
      "  cores count=2 pus=1\n");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const Object* node = result->numa_nodes().front();
  ASSERT_TRUE(node->memory_side_cache().has_value());
  EXPECT_EQ(node->memory_side_cache()->size_bytes, 1048576u);
}

// Fuzz: random builder trees round-trip exactly.
class SerializeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeFuzzTest, RandomTopologiesRoundTrip) {
  support::Xoshiro256 rng(GetParam());
  TopologyBuilder builder("fuzz-" + std::to_string(GetParam()));
  auto machine = builder.machine();

  const MemoryKind kinds[] = {MemoryKind::kDRAM, MemoryKind::kHBM,
                              MemoryKind::kNVDIMM, MemoryKind::kNAM,
                              MemoryKind::kGPU};
  std::vector<TopologyBuilder::Node> attach_points = {machine};
  const unsigned packages = 1 + static_cast<unsigned>(rng.next_below(3));
  for (unsigned p = 0; p < packages; ++p) {
    auto package = machine.add_package();
    attach_points.push_back(package);
    const unsigned groups = static_cast<unsigned>(rng.next_below(3));
    if (groups == 0) {
      package.add_cores(1 + static_cast<unsigned>(rng.next_below(8)),
                        1 + static_cast<unsigned>(rng.next_below(4)));
    } else {
      for (unsigned g = 0; g < groups; ++g) {
        auto group = package.add_group(rng.next_below(2) ? "SubNUMACluster"
                                                         : "CMG");
        group.add_cores(1 + static_cast<unsigned>(rng.next_below(8)),
                        1 + static_cast<unsigned>(rng.next_below(4)));
        attach_points.push_back(group);
      }
    }
  }
  // Random NUMA attachments (at least one).
  const unsigned numa_count = 1 + static_cast<unsigned>(rng.next_below(6));
  for (unsigned i = 0; i < numa_count; ++i) {
    auto& point = attach_points[rng.next_below(attach_points.size())];
    std::optional<MemorySideCache> cache;
    if (rng.next_below(4) == 0) {
      cache = MemorySideCache{.size_bytes = (1 + rng.next_below(64)) << 30,
                              .associativity = 1u + static_cast<unsigned>(
                                                        rng.next_below(16)),
                              .line_bytes = 64};
    }
    point.attach_numa(kinds[rng.next_below(5)],
                      (1 + rng.next_below(1024)) << 30, cache);
  }

  auto built = std::move(builder).finalize();
  ASSERT_TRUE(built.ok()) << built.error().to_string();
  const std::string text = serialize(*built);
  auto restored = parse_topology(text);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string() << "\n" << text;
  EXPECT_EQ(serialize(*restored), text);
  EXPECT_TRUE(restored->validate().ok());
  EXPECT_EQ(restored->pus().size(), built->pus().size());
  EXPECT_EQ(restored->numa_nodes().size(), built->numa_nodes().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzzTest,
                         ::testing::Values(1, 7, 42, 1337, 9001, 31415));

TEST(ParseTopology, ImportedTopologyIsFullyUsable) {
  // The "gather on the cluster, analyze on the laptop" flow: a parsed
  // topology drives queries exactly like a built one.
  auto restored = parse_topology(serialize(fictitious_fig3()));
  ASSERT_TRUE(restored.ok());
  const Object* pu0 = restored->pus().front();
  EXPECT_EQ(restored->local_numa_nodes(pu0->cpuset()).size(), 4u);
  EXPECT_NE(render_tree(*restored).find("NAM"), std::string::npos);
}

}  // namespace
}  // namespace hetmem::topo
