#include "hetmem/hmat/hmat.hpp"

#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::hmat {
namespace {

using support::Errc;
using support::kGiB;

TEST(AdvertisedDefaults, MatchFigure5Numbers) {
  const AdvertisedPerf dram = advertised_defaults(topo::MemoryKind::kDRAM);
  EXPECT_DOUBLE_EQ(dram.latency_ns, 26.0);
  // 131072 MiB/s in Fig. 5.
  EXPECT_DOUBLE_EQ(dram.bandwidth_bps / static_cast<double>(support::kMiB),
                   131072.0);
  const AdvertisedPerf nvdimm = advertised_defaults(topo::MemoryKind::kNVDIMM);
  EXPECT_DOUBLE_EQ(nvdimm.latency_ns, 77.0);
  EXPECT_GT(nvdimm.read_bandwidth_bps, nvdimm.write_bandwidth_bps);
}

TEST(Generate, LocalOnlyEmitsOneLatencyOneBandwidthPerNode) {
  topo::Topology topology = topo::xeon_clx_1lm();
  const HmatTable table = generate(topology);
  // 4 nodes x (latency + bandwidth).
  EXPECT_EQ(table.locality.size(), 8u);
  for (const LocalityEntry& entry : table.locality) {
    const topo::Object* node = topology.numa_node_by_os_index(entry.target_domain);
    ASSERT_NE(node, nullptr);
    EXPECT_TRUE(entry.initiator == node->cpuset()) << "local entries only";
    EXPECT_GT(entry.value, 0.0);
  }
  EXPECT_TRUE(table.caches.empty());
}

TEST(Generate, RemoteEntriesWhenNotLocalOnly) {
  topo::Topology topology = topo::xeon_clx_1lm();
  GenerateOptions options;
  options.local_only = false;
  const HmatTable table = generate(topology, options);
  EXPECT_EQ(table.locality.size(), 16u);  // + remote latency/bw per node

  // Remote latency must exceed local latency for the same target.
  for (const topo::Object* node : topology.numa_nodes()) {
    double local_lat = 0.0, remote_lat = 0.0;
    for (const LocalityEntry& entry : table.locality) {
      if (entry.target_domain != node->os_index() ||
          entry.metric != Metric::kLatency) {
        continue;
      }
      if (entry.initiator == node->cpuset()) {
        local_lat = entry.value;
      } else {
        remote_lat = entry.value;
      }
    }
    EXPECT_GT(remote_lat, local_lat);
  }
}

TEST(Generate, ReadWriteSplitForNvdimm) {
  topo::Topology topology = topo::xeon_clx_1lm();
  GenerateOptions options;
  options.read_write_split = true;
  const HmatTable table = generate(topology, options);
  unsigned split_entries = 0;
  for (const LocalityEntry& entry : table.locality) {
    if (entry.access != AccessType::kAccess) {
      ++split_entries;
      const topo::Object* node =
          topology.numa_node_by_os_index(entry.target_domain);
      EXPECT_EQ(node->memory_kind(), topo::MemoryKind::kNVDIMM);
    }
  }
  EXPECT_EQ(split_entries, 4u);  // read+write bw for 2 NVDIMM nodes
}

TEST(Generate, MemorySideCachesEmitted) {
  topo::Topology topology = topo::knl_snc4_hybrid50();
  const HmatTable table = generate(topology);
  EXPECT_EQ(table.caches.size(), 4u);
  for (const CacheEntry& cache : table.caches) {
    EXPECT_EQ(cache.size_bytes, 2 * kGiB);
    EXPECT_EQ(cache.associativity, 1u);
  }
}

TEST(Serialize, RoundTripsExactly) {
  topo::Topology topology = topo::knl_snc4_hybrid50();
  GenerateOptions options;
  options.local_only = false;
  options.read_write_split = true;
  const HmatTable original = generate(topology, options);
  auto parsed = parse(serialize(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed->locality.size(), original.locality.size());
  for (std::size_t i = 0; i < original.locality.size(); ++i) {
    const LocalityEntry& a = original.locality[i];
    const LocalityEntry& b = parsed->locality[i];
    EXPECT_TRUE(a.initiator == b.initiator);
    EXPECT_EQ(a.target_domain, b.target_domain);
    EXPECT_EQ(a.metric, b.metric);
    EXPECT_EQ(a.access, b.access);
    EXPECT_NEAR(a.value, b.value, a.value * 1e-6);
  }
  ASSERT_EQ(parsed->caches.size(), original.caches.size());
  for (std::size_t i = 0; i < original.caches.size(); ++i) {
    EXPECT_EQ(parsed->caches[i].target_domain, original.caches[i].target_domain);
    EXPECT_EQ(parsed->caches[i].size_bytes, original.caches[i].size_bytes);
  }
}

TEST(Parse, AcceptsCommentsAndBlankLines) {
  auto table = parse(
      "# firmware dump\n"
      "\n"
      "latency access initiator=0-3 target=0 value_ns=26\n"
      "   \n"
      "bandwidth access initiator=0-3 target=0 value_bps=137438953472\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->locality.size(), 2u);
  EXPECT_DOUBLE_EQ(table->locality[0].value, 26.0);
}

TEST(Parse, CacheLineDefaults) {
  auto table = parse("cache target=2 size=2147483648\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->caches.size(), 1u);
  EXPECT_EQ(table->caches[0].associativity, 1u);
  EXPECT_EQ(table->caches[0].line_bytes, 64u);
}

// Failure injection: every malformed line is rejected with a parse error
// naming the line.
class ParseRejectsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParseRejectsTest, MalformedLine) {
  auto result = parse(GetParam());
  ASSERT_FALSE(result.ok()) << "accepted: " << GetParam();
  EXPECT_EQ(result.error().code, Errc::kParseError);
  EXPECT_NE(result.error().message.find("line 1"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParseRejectsTest,
    ::testing::Values(
        "frobnicate access initiator=0 target=0 value_ns=1",  // unknown record
        "latency sideways initiator=0 target=0 value_ns=1",   // bad access
        "latency access target=0 value_ns=1",                 // no initiator
        "latency access initiator=0 value_ns=1",              // no target
        "latency access initiator=0 target=0",                // no value
        "latency access initiator=0 target=0 value_bps=5",    // wrong value key
        "latency access initiator=zz target=0 value_ns=1",    // bad cpuset
        "latency access initiator=0 target=x value_ns=1",     // bad target
        "latency access initiator=0 target=0 value_ns=-3",    // negative
        "latency access initiator=0 target=0 value_ns=0",     // zero
        "bandwidth access initiator=0 target=0 value_bps=abc",
        "cache size=5",                                       // cache w/o target
        "latency"));                                          // truncated

TEST(LoadInto, PopulatesBuiltinAttributes) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  auto stats = load_into(registry, generate(topology));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries_loaded, 8u);
  EXPECT_EQ(stats->entries_skipped, 0u);

  const topo::Object& dram = *topology.numa_node(0);
  const auto initiator = attr::Initiator::from_cpuset(dram.cpuset());
  auto latency = registry.value(attr::kLatency, dram, initiator);
  ASSERT_TRUE(latency.ok());
  EXPECT_DOUBLE_EQ(*latency, 26.0);
}

TEST(LoadInto, ReadWriteEntriesFillSplitAttributes) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  GenerateOptions options;
  options.read_write_split = true;
  ASSERT_TRUE(load_into(registry, generate(topology, options)).ok());
  EXPECT_TRUE(registry.has_values(attr::kReadBandwidth));
  EXPECT_TRUE(registry.has_values(attr::kWriteBandwidth));
}

TEST(LoadInto, SkipsUnknownDomains) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  HmatTable table;
  table.locality.push_back(LocalityEntry{support::Bitmap{0}, /*target=*/99,
                                         Metric::kLatency, AccessType::kAccess,
                                         50.0});
  table.locality.push_back(LocalityEntry{support::Bitmap{}, /*target=*/0,
                                         Metric::kLatency, AccessType::kAccess,
                                         50.0});  // empty initiator
  auto stats = load_into(registry, table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries_loaded, 0u);
  EXPECT_EQ(stats->entries_skipped, 2u);
}

TEST(LoadInto, Figure5ReportShape) {
  // End-to-end: Fig. 2 machine + HMAT -> the Fig. 5 lstopo --memattrs dump.
  topo::Topology topology = topo::xeon_clx_snc_1lm();
  attr::MemAttrRegistry registry(topology);
  ASSERT_TRUE(load_into(registry, generate(topology)).ok());
  const std::string report = attr::memattrs_report(registry);
  EXPECT_NE(report.find("name 'Capacity'"), std::string::npos);
  EXPECT_NE(report.find("name 'Bandwidth'"), std::string::npos);
  EXPECT_NE(report.find("name 'Latency'"), std::string::npos);
  // Fig. 5's literal values: DRAM 131072 MiB/s, NVDIMM 78644 MiB/s, 26/77 ns.
  EXPECT_NE(report.find("= 131072"), std::string::npos);
  EXPECT_NE(report.find("= 78644"), std::string::npos);
  EXPECT_NE(report.find("= 26"), std::string::npos);
  EXPECT_NE(report.find("= 77"), std::string::npos);
}

// --- duplicate resolution and lenient recovery (docs/RESILIENCE.md) ---

TEST(Parse, DuplicateEntriesResolveLastWinsWithDeterministicResult) {
  // Firmware updates append corrected entries; the LAST occurrence wins.
  const char* text =
      "latency access initiator=0-3 target=0 value_ns=26\n"
      "bandwidth access initiator=0-3 target=0 value_bps=1000\n"
      "latency access initiator=0-3 target=0 value_ns=77\n";
  auto table = parse(text);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->locality.size(), 2u);
  double latency = 0.0;
  for (const LocalityEntry& entry : table->locality) {
    if (entry.metric == Metric::kLatency) latency = entry.value;
  }
  EXPECT_DOUBLE_EQ(latency, 77.0);
  // Same text, same result — byte-for-byte determinism.
  auto again = parse(text);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(serialize(*again), serialize(*table));
}

TEST(Parse, DifferentKeysAreNotDuplicates) {
  // Same (initiator, target, metric) but different access types coexist.
  auto table = parse(
      "bandwidth read initiator=0 target=0 value_bps=100\n"
      "bandwidth write initiator=0 target=0 value_bps=50\n"
      "bandwidth read initiator=1 target=0 value_bps=200\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->locality.size(), 3u);
}

TEST(ParseLenient, DuplicateEmitsWarningNotError) {
  ParseReport report = parse_lenient(
      "latency access initiator=0 target=0 value_ns=26\n"
      "latency access initiator=0 target=0 value_ns=30\n");
  EXPECT_EQ(report.error_count(), 0u);
  ASSERT_EQ(report.warning_count(), 1u);
  // The diagnostic anchors to the superseded (earlier) entry, pointing at
  // the record that was dropped.
  const Diagnostic& warning = report.diagnostics.front();
  EXPECT_TRUE(warning.warning);
  EXPECT_EQ(warning.line, 1u);
  EXPECT_NE(warning.message.find("duplicate"), std::string::npos);
  ASSERT_EQ(report.table.locality.size(), 1u);
  EXPECT_DOUBLE_EQ(report.table.locality[0].value, 30.0);
}

TEST(ParseLenient, RecoversPerRecordWithLineNumbers) {
  ParseReport report = parse_lenient(
      "# header comment\n"
      "latency access initiator=0 target=0 value_ns=26\n"
      "latency access initiator=zz target=0 value_ns=1\n"   // bad cpuset
      "bandwidth access initiator=0 target=0 value_bps=9\n"
      "garbage record here\n"
      "cache target=2 size=2147483648\n");
  EXPECT_EQ(report.table.locality.size(), 2u);
  EXPECT_EQ(report.table.caches.size(), 1u);
  ASSERT_EQ(report.error_count(), 2u);
  std::vector<std::size_t> error_lines;
  for (const Diagnostic& d : report.diagnostics) {
    if (!d.warning) error_lines.push_back(d.line);
  }
  EXPECT_EQ(error_lines, (std::vector<std::size_t>{3, 5}));
}

TEST(ParseLenient, NonFiniteValuesRejected) {
  // std::from_chars happily parses "nan" and "inf": corruption must not be
  // able to smuggle a NaN into a ranking, where every comparison goes false.
  ParseReport report = parse_lenient(
      "latency access initiator=0 target=0 value_ns=nan\n"
      "latency access initiator=0 target=1 value_ns=inf\n"
      "latency access initiator=0 target=2 value_ns=26\n");
  EXPECT_EQ(report.table.locality.size(), 1u);
  EXPECT_EQ(report.error_count(), 2u);
}

TEST(ParseLenient, StrictParseMatchesWhenTextIsClean) {
  topo::Topology topology = topo::xeon_clx_2lm();
  const std::string text = serialize(generate(topology));
  auto strict = parse(text);
  ASSERT_TRUE(strict.ok());
  ParseReport lenient = parse_lenient(text);
  EXPECT_EQ(lenient.error_count(), 0u);
  EXPECT_EQ(lenient.warning_count(), 0u);
  EXPECT_EQ(serialize(lenient.table), serialize(*strict));
}

TEST(DedupeEntries, RemovesOnlyTrueDuplicates) {
  HmatTable table;
  LocalityEntry a;
  a.initiator = support::Bitmap::range(0, 3);
  a.target_domain = 0;
  a.metric = Metric::kLatency;
  a.value = 26.0;
  LocalityEntry b = a;
  b.value = 77.0;
  LocalityEntry other = a;
  other.target_domain = 1;
  table.locality = {a, other, b};
  EXPECT_EQ(dedupe_entries(table), 1u);
  ASSERT_EQ(table.locality.size(), 2u);
  // Last-wins: the survivor for target 0 carries b's value.
  double survivor = 0.0;
  for (const LocalityEntry& entry : table.locality) {
    if (entry.target_domain == 0) survivor = entry.value;
  }
  EXPECT_DOUBLE_EQ(survivor, 77.0);
  EXPECT_EQ(dedupe_entries(table), 0u);
}

}  // namespace
}  // namespace hetmem::hmat
