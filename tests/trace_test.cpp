// Trace record/replay: lossless serialization, replay determinism, and the
// recorder's non-perturbation contract (docs/RUNTIME.md "Phase shifts &
// trace replay").
//
// The determinism claims under test are exact, not approximate:
//   * parse(serialize(t)) round-trips every double bit for bit (hexfloat);
//   * replaying one trace twice on identically-prepared machines yields
//     byte-identical decision logs (extending the chaos-replay pattern of
//     tests/runtime_test.cpp to recorded inputs);
//   * a live run with a TraceRecorder chained in front of its RuntimePolicy
//     decides exactly what the same run decides without the recorder, and
//     replaying the recording reproduces that decision log byte for byte.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/rng.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/trace/trace.hpp"

namespace {

using namespace hetmem;
using support::kGiB;
using support::kMiB;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_traces_bitwise_equal(const trace::Trace& a, const trace::Trace& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.phases_per_epoch, b.phases_per_epoch);
  EXPECT_EQ(a.version, b.version);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    const runtime::Epoch& left = a.epochs[e];
    const runtime::Epoch& right = b.epochs[e];
    EXPECT_EQ(left.index, right.index);
    EXPECT_TRUE(same_bits(left.duration_ns, right.duration_ns));
    // Per-epoch sample periods only exist on the wire in trace/2.
    if (a.version >= 2) {
      EXPECT_TRUE(same_bits(left.sample_period, right.sample_period))
          << "epoch " << e;
    }
    EXPECT_TRUE(same_bits(left.total_memory_bytes, right.total_memory_bytes))
        << "epoch " << e;
    ASSERT_EQ(left.samples.size(), right.samples.size()) << "epoch " << e;
    for (std::size_t s = 0; s < left.samples.size(); ++s) {
      EXPECT_EQ(left.samples[s].buffer.index, right.samples[s].buffer.index);
      const sim::BufferTraffic& lt = left.samples[s].traffic;
      const sim::BufferTraffic& rt = right.samples[s].traffic;
      EXPECT_TRUE(same_bits(lt.reads, rt.reads));
      EXPECT_TRUE(same_bits(lt.writes, rt.writes));
      EXPECT_TRUE(same_bits(lt.llc_misses, rt.llc_misses));
      EXPECT_TRUE(same_bits(lt.memory_bytes, rt.memory_bytes));
      EXPECT_TRUE(same_bits(lt.random_accesses, rt.random_accesses));
      EXPECT_TRUE(same_bits(lt.random_misses, rt.random_misses));
    }
  }
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

TEST(TraceFormatTest, RoundTripIsLosslessOnAwkwardDoubles) {
  // Values chosen to break lesser formats: repeating binary fractions, the
  // largest/smallest normals, a subnormal, and negative zero.
  const double awkward[] = {0.1,     1.0 / 3.0, 1e308, 2.2250738585072014e-308,
                            5e-324,  -0.0,      0.0,   123456789.123456789,
                            0x1.fffffffffffffp+1023};
  trace::Trace original;
  original.workload = "awkward doubles";
  original.threads = 7;
  original.phases_per_epoch = 3;
  for (unsigned e = 0; e < 3; ++e) {
    runtime::Epoch epoch;
    epoch.index = e;
    epoch.duration_ns = awkward[e];
    for (std::uint32_t b = 0; b < 3; ++b) {
      runtime::EpochSample sample;
      sample.buffer = sim::BufferId{b};
      sample.traffic.reads = awkward[(e + b) % 9];
      sample.traffic.writes = awkward[(e + b + 1) % 9];
      sample.traffic.llc_misses = awkward[(e + b + 2) % 9];
      sample.traffic.memory_bytes = awkward[(e + b + 3) % 9];
      sample.traffic.random_accesses = awkward[(e + b + 4) % 9];
      sample.traffic.random_misses = awkward[(e + b + 5) % 9];
      epoch.total_memory_bytes += sample.traffic.memory_bytes;
      epoch.samples.push_back(sample);
    }
    original.epochs.push_back(epoch);
  }

  const std::string text = trace::serialize(original);
  auto parsed = trace::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  expect_traces_bitwise_equal(original, *parsed);
  // Fixed point: serializing the parse reproduces the exact text.
  EXPECT_EQ(trace::serialize(*parsed), text);
}

TEST(TraceFormatTest, RoundTripIsLosslessOnSeededRandomTraces) {
  support::Xoshiro256 rng(0xc0ffee);
  auto random_double = [&rng] {
    // Mantissa in [0.5, 1), exponent spread over ~600 binades: covers huge,
    // tiny and ordinary magnitudes.
    const double mantissa = 0.5 + rng.next_double() / 2.0;
    const int exponent = static_cast<int>(rng.next_below(600)) - 300;
    return std::ldexp(mantissa, exponent);
  };
  for (unsigned round = 0; round < 20; ++round) {
    trace::Trace original;
    original.workload = "fuzz-" + std::to_string(round);
    original.threads = 1 + static_cast<unsigned>(rng.next_below(64));
    // Alternate wire versions so the fuzz covers both the v1 and v2 epoch
    // grammars (v2 adds the per-epoch sample period).
    original.version = (round % 2 == 0) ? 1u : 2u;
    const unsigned epochs = 1 + static_cast<unsigned>(rng.next_below(8));
    for (unsigned e = 0; e < epochs; ++e) {
      runtime::Epoch epoch;
      epoch.index = e;
      epoch.duration_ns = random_double();
      if (original.version >= 2) epoch.sample_period = random_double();
      const unsigned samples = static_cast<unsigned>(rng.next_below(6));
      for (unsigned s = 0; s < samples; ++s) {
        runtime::EpochSample sample;
        sample.buffer = sim::BufferId{static_cast<std::uint32_t>(
            rng.next_below(1000))};
        sample.traffic.reads = random_double();
        sample.traffic.writes = random_double();
        sample.traffic.llc_misses = random_double();
        sample.traffic.memory_bytes = random_double();
        sample.traffic.random_accesses = random_double();
        sample.traffic.random_misses = random_double();
        epoch.total_memory_bytes += sample.traffic.memory_bytes;
        epoch.samples.push_back(sample);
      }
      original.epochs.push_back(epoch);
    }
    auto parsed = trace::parse(trace::serialize(original));
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    expect_traces_bitwise_equal(original, *parsed);
  }
}

TEST(TraceFormatTest, V2RoundTripCarriesSamplePeriods) {
  // trace/2 epoch lines carry the controller-chosen sample period; the
  // hexfloat encoding must round-trip awkward periods bit for bit, and the
  // serialized text must be a fixed point, exactly like v1.
  const double awkward_periods[] = {1.0, 2.0, 1.0 / 3.0, 4096.0, 0.0,
                                    123.456};
  trace::Trace original;
  original.workload = "v2 periods";
  original.threads = 3;
  original.version = 2;
  for (unsigned e = 0; e < 6; ++e) {
    runtime::Epoch epoch;
    epoch.index = e;
    epoch.duration_ns = 1000.0 * (e + 1);
    epoch.sample_period = awkward_periods[e];
    runtime::EpochSample sample;
    sample.buffer = sim::BufferId{e};
    sample.traffic.reads = 10.0 + e;
    sample.traffic.memory_bytes = 640.0 * (e + 1);
    epoch.total_memory_bytes += sample.traffic.memory_bytes;
    epoch.samples.push_back(sample);
    original.epochs.push_back(epoch);
  }
  const std::string text = trace::serialize(original);
  EXPECT_EQ(text.rfind("hetmem-trace/2\n", 0), 0u);
  auto parsed = trace::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->version, 2u);
  expect_traces_bitwise_equal(original, *parsed);
  EXPECT_EQ(trace::serialize(*parsed), text);
}

TEST(TraceFormatTest, V1StillParsesWithZeroSamplePeriod) {
  // A v1 trace has no per-epoch period on the wire; parsing one must keep
  // working forever and yield sample_period == 0.0 ("raw, never sampled"),
  // which replay maps to the replaying sampler's own effective period.
  trace::Trace original;
  original.workload = "legacy";
  runtime::Epoch epoch;
  epoch.index = 0;
  epoch.duration_ns = 42.0;
  original.epochs.push_back(epoch);
  const std::string text = trace::serialize(original);
  EXPECT_EQ(text.rfind("hetmem-trace/1\n", 0), 0u);
  auto parsed = trace::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->version, 1u);
  ASSERT_EQ(parsed->epochs.size(), 1u);
  EXPECT_TRUE(same_bits(parsed->epochs[0].sample_period, 0.0));
}

TEST(TraceFormatTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(trace::parse("").ok());
  EXPECT_FALSE(trace::parse("not-a-trace/9\nend\n").ok());
  // Truncation (no 'end') must be detected, not silently accepted.
  const std::string text = trace::serialize(trace::Trace{});
  EXPECT_TRUE(trace::parse(text).ok());
  EXPECT_FALSE(trace::parse(text.substr(0, text.size() - 4)).ok());
  // Sample record outside any epoch.
  EXPECT_FALSE(
      trace::parse("hetmem-trace/1\ns 0 0x0p+0 0x0p+0 0x0p+0 0x0p+0 0x0p+0 "
                   "0x0p+0\nend\n")
          .ok());
  // Non-numeric counter.
  EXPECT_FALSE(
      trace::parse("hetmem-trace/1\nepoch 0 zero\nend\n").ok());
  // Unknown record tag.
  EXPECT_FALSE(trace::parse("hetmem-trace/1\nbogus 1\nend\n").ok());
  // A v2 epoch line is required to carry its sample period.
  EXPECT_FALSE(trace::parse("hetmem-trace/2\nepoch 0 0x0p+0\nend\n").ok());
  EXPECT_TRUE(
      trace::parse("hetmem-trace/2\nepoch 0 0x0p+0 0x1p+0\nend\n").ok());
}

TEST(TraceFormatTest, ParseRecomputesTotalBytesInRecorderOrder) {
  trace::Trace original;
  runtime::Epoch epoch;
  epoch.index = 0;
  epoch.duration_ns = 1.0;
  // Summation order matters for bit-exactness; use values whose sum depends
  // on order to prove parse() adds them exactly as the recorder did.
  const double values[] = {1e16, 1.0, -1e16, 1.0};
  for (std::uint32_t b = 0; b < 4; ++b) {
    runtime::EpochSample sample;
    sample.buffer = sim::BufferId{b};
    sample.traffic.memory_bytes = values[b];
    sample.traffic.reads = 1.0;
    epoch.total_memory_bytes += sample.traffic.memory_bytes;
    epoch.samples.push_back(sample);
  }
  original.epochs.push_back(epoch);
  auto parsed = trace::parse(trace::serialize(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(same_bits(parsed->epochs[0].total_memory_bytes,
                        original.epochs[0].total_memory_bytes));
}

// ---------------------------------------------------------------------------
// Recorder + replay on a live scenario
// ---------------------------------------------------------------------------

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kBufferBytes = 1 * kGiB;

/// Identically-constructible testbed: Xeon with squeezed fast memory and
/// three 1 GiB buffers parked on the NVDIMM node. Every instance has the
/// same buffer ids, placements and rankings — the precondition for replay
/// reproducing a live run's decisions.
struct Scenario {
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  support::Bitmap initiator;
  unsigned fast = 0;
  unsigned slow = 0;
  std::vector<sim::BufferId> buffers;
  bool ok = false;

  Scenario()
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry),
        initiator(machine.topology().numa_node(0)->cpuset()) {
    if (!hmat::load_into(registry, hmat::generate(machine.topology())).ok()) {
      return;
    }
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        slow = node->logical_index();
      }
    }
    const std::uint64_t headroom = kBufferBytes + kBufferBytes / 2;
    const std::uint64_t fast_free = machine.available_bytes(fast);
    if (fast_free > headroom) {
      auto hog = machine.allocate(fast_free - headroom, fast, "resident.hog",
                                  4096);
      if (!hog.ok()) return;
    }
    for (unsigned i = 0; i < 3; ++i) {
      auto buffer = machine.allocate(kBufferBytes, slow,
                                     "seg" + std::to_string(i), 1u << 16);
      if (!buffer.ok()) return;
      buffers.push_back(*buffer);
    }
    ok = true;
  }
};

runtime::RuntimePolicyOptions scenario_options() {
  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  return options;
}

TEST(TraceReplayTest, SyntheticRotationReplaysByteIdentically) {
  Scenario probe;
  ASSERT_TRUE(probe.ok);
  trace::SynthOptions synth;
  synth.epochs = 24;
  const trace::Trace trace =
      trace::synthesize_rotation(probe.buffers, 6, 0.002, synth);
  ASSERT_EQ(trace.epochs.size(), 24u);

  std::vector<std::string> logs;
  std::uint64_t accepted = 0;
  for (int run = 0; run < 2; ++run) {
    Scenario scenario;
    ASSERT_TRUE(scenario.ok);
    runtime::RuntimePolicy policy(scenario.allocator, scenario.initiator,
                                  scenario_options());
    trace::TraceReplayer replayer(policy);
    const trace::ReplayStats stats = replayer.replay(trace);
    EXPECT_EQ(stats.epochs, trace.epochs.size());
    logs.push_back(policy.render_decision_log());
    accepted = policy.engine().stats().accepted;
  }
  // The rotation must actually migrate (otherwise this test proves nothing)
  // and both replays must tell the identical story.
  EXPECT_GE(accepted, 3u);
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_FALSE(logs[0].empty());
}

TEST(TraceReplayTest, SubsampledReplayIsDeterministic) {
  Scenario probe;
  ASSERT_TRUE(probe.ok);
  trace::SynthOptions synth;
  synth.epochs = 24;
  const trace::Trace trace =
      trace::synthesize_rotation(probe.buffers, 6, 0.002, synth);

  // A sampling policy consumes stochastic-rounding draws per sample; the
  // seeded stream must make even subsampled replays exactly repeatable.
  std::vector<std::string> logs;
  for (int run = 0; run < 2; ++run) {
    Scenario scenario;
    ASSERT_TRUE(scenario.ok);
    runtime::RuntimePolicyOptions options = scenario_options();
    options.sampler.sample_period = 10.0;
    runtime::RuntimePolicy policy(scenario.allocator, scenario.initiator,
                                  options);
    trace::TraceReplayer replayer(policy);
    (void)replayer.replay(trace);
    EXPECT_EQ(policy.sampler().epochs_emitted(), trace.epochs.size());
    logs.push_back(policy.render_decision_log());
  }
  EXPECT_EQ(logs[0], logs[1]);
}

/// Runs the live two-part workload (stream buffers[0], then pointer-chase
/// buffers[1]) with an attached policy; optionally chains a recorder in
/// front. Returns the decision log.
std::string run_live(Scenario& scenario, trace::TraceRecorder* recorder) {
  sim::Array<double> streamed(scenario.machine, scenario.buffers[0]);
  sim::Array<double> chased(scenario.machine, scenario.buffers[1]);
  sim::ExecutionContext exec(scenario.machine, scenario.initiator, kThreads);
  runtime::RuntimePolicy policy(scenario.allocator, scenario.initiator,
                                scenario_options());
  policy.attach(exec, [&] {
    streamed.refresh_model();
    chased.refresh_model();
  });
  if (recorder != nullptr) recorder->attach(exec, &policy);

  for (unsigned phase = 0; phase < 8; ++phase) {
    exec.run_phase("part1.stream", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     streamed.record_bulk_read(ctx, 512.0 * kMiB);
                   });
  }
  for (unsigned phase = 0; phase < 8; ++phase) {
    exec.run_phase("part2.random", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     chased.record_bulk_random_reads(ctx, 4e6);
                   });
  }
  return policy.render_decision_log();
}

TEST(TraceReplayTest, RecorderDoesNotPerturbAndReplayMatchesLive) {
  Scenario with_recorder;
  Scenario without_recorder;
  ASSERT_TRUE(with_recorder.ok);
  ASSERT_TRUE(without_recorder.ok);

  trace::TraceRecorder recorder({1, "flip"});
  const std::string live_log = run_live(with_recorder, &recorder);
  const std::string plain_log = run_live(without_recorder, nullptr);
  // Chaining the recorder in front of the policy must not change a single
  // decision byte.
  EXPECT_EQ(live_log, plain_log);
  EXPECT_FALSE(live_log.empty());
  EXPECT_EQ(recorder.epochs_recorded(), 16u);
  EXPECT_EQ(recorder.trace().threads, kThreads);

  // Serialize -> parse -> replay on a fresh machine: byte-identical log.
  auto parsed = trace::parse(trace::serialize(recorder.trace()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  Scenario replay_scenario;
  ASSERT_TRUE(replay_scenario.ok);
  runtime::RuntimePolicy policy(replay_scenario.allocator,
                                replay_scenario.initiator, scenario_options());
  trace::TraceReplayer replayer(policy);
  const trace::ReplayStats stats = replayer.replay(*parsed);
  EXPECT_EQ(stats.epochs, 16u);
  EXPECT_EQ(policy.render_decision_log(), live_log);
}

TEST(TraceRecorderTest, RecordsRawDeltasAtEpochCadence) {
  Scenario scenario;
  ASSERT_TRUE(scenario.ok);
  sim::Array<double> array(scenario.machine, scenario.buffers[0]);
  sim::ExecutionContext exec(scenario.machine, scenario.initiator, kThreads);
  trace::TraceRecorder recorder({2, "cadence"});
  recorder.attach(exec);

  for (unsigned phase = 0; phase < 5; ++phase) {
    exec.run_phase("stream", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     array.record_bulk_read(ctx, 256.0 * kMiB);
                   });
  }
  // 5 phases at 2 phases/epoch: two epochs closed, one phase pending.
  EXPECT_EQ(recorder.epochs_recorded(), 2u);
  recorder.force_epoch(exec);
  ASSERT_EQ(recorder.epochs_recorded(), 3u);

  const trace::Trace& trace = recorder.trace();
  // Recordings are written in the current wire version; with no policy
  // chained the raw epochs carry no sampler period (0.0 on the wire).
  EXPECT_EQ(trace.version, 2u);
  EXPECT_TRUE(same_bits(trace.epochs[0].sample_period, 0.0));
  EXPECT_EQ(trace.phases_per_epoch, 2u);
  // Raw exact deltas: every phase issues identical traffic, so a two-phase
  // epoch holds bit-exactly twice the flushed single-phase tail — no
  // subsampling noise, no estimation drift.
  ASSERT_EQ(trace.epochs[0].samples.size(), 1u);
  ASSERT_EQ(trace.epochs[2].samples.size(), 1u);
  EXPECT_EQ(trace.epochs[0].samples[0].buffer.index,
            scenario.buffers[0].index);
  const double tail_bytes = trace.epochs[2].samples[0].traffic.memory_bytes;
  EXPECT_GT(tail_bytes, 0.0);
  EXPECT_TRUE(same_bits(trace.epochs[0].samples[0].traffic.memory_bytes,
                        2.0 * tail_bytes));
  EXPECT_TRUE(same_bits(trace.epochs[1].samples[0].traffic.memory_bytes,
                        2.0 * tail_bytes));
  EXPECT_TRUE(same_bits(trace.epochs[0].samples[0].traffic.reads,
                        2.0 * trace.epochs[2].samples[0].traffic.reads));
}

// ---------------------------------------------------------------------------
// Concurrency (picked up by the CI TSan stress lane)
// ---------------------------------------------------------------------------

TEST(TraceConcurrencyTest, ReplayRacesAllocatorTraffic) {
  Scenario scenario;
  ASSERT_TRUE(scenario.ok);
  trace::SynthOptions synth;
  synth.epochs = 16;
  const trace::Trace trace =
      trace::synthesize_rotation(scenario.buffers, 4, 0.002, synth);

  // Replay migrates through the allocator while worker threads hammer the
  // same allocator with small allocate/free cycles on other nodes — the
  // allocation path is advertised thread-safe against the engine's moves.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (unsigned worker = 0; worker < 2; ++worker) {
    workers.emplace_back([&scenario, &stop, worker] {
      alloc::AllocRequest request;
      request.bytes = 8 * kMiB;
      request.attribute = attr::kCapacity;
      request.initiator = scenario.initiator;
      request.backing_bytes = 4096;
      request.label = "churn" + std::to_string(worker);
      while (!stop.load(std::memory_order_relaxed)) {
        auto allocation = scenario.allocator.mem_alloc(request);
        if (allocation.ok()) {
          (void)scenario.allocator.mem_free(allocation->buffer);
        }
      }
    });
  }

  runtime::RuntimePolicy policy(scenario.allocator, scenario.initiator,
                                scenario_options());
  trace::TraceReplayer replayer(policy);
  const trace::ReplayStats stats = replayer.replay(trace);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(stats.epochs, trace.epochs.size());
  // The replay must have done real work despite the churn.
  EXPECT_GE(policy.engine().stats().considered, 1u);
}

}  // namespace
