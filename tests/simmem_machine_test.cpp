#include "hetmem/simmem/machine.hpp"

#include <gtest/gtest.h>

#include "hetmem/simmem/array.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::sim {
namespace {

using support::Errc;
using support::kGiB;
using support::kMiB;

class SimMachineTest : public ::testing::Test {
 protected:
  SimMachineTest() : machine_(topo::xeon_clx_1lm()) {}
  SimMachine machine_;
};

TEST_F(SimMachineTest, CapacityMatchesTopology) {
  EXPECT_EQ(machine_.capacity_bytes(0), 192 * kGiB);
  EXPECT_EQ(machine_.capacity_bytes(2), 768 * kGiB);
  EXPECT_EQ(machine_.used_bytes(0), 0u);
  EXPECT_EQ(machine_.available_bytes(0), 192 * kGiB);
}

TEST_F(SimMachineTest, AllocateChargesDeclaredBytes) {
  auto buffer = machine_.allocate(10 * kGiB, 0, "x");
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(machine_.used_bytes(0), 10 * kGiB);
  EXPECT_EQ(machine_.available_bytes(0), 182 * kGiB);
  EXPECT_EQ(machine_.live_buffer_count(), 1u);
  const BufferInfo& info = machine_.info(*buffer);
  EXPECT_EQ(info.label, "x");
  EXPECT_EQ(info.node, 0u);
  EXPECT_EQ(info.declared_bytes, 10 * kGiB);
  // Backing defaults to 64 KiB, not 10 GiB of host RAM.
  EXPECT_EQ(info.backing_bytes, 64 * 1024u);
}

TEST_F(SimMachineTest, BackingZeroInitialized) {
  auto buffer = machine_.allocate(kMiB, 0, "zeroed", 4096);
  ASSERT_TRUE(buffer.ok());
  const std::byte* data = machine_.backing(*buffer);
  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(data[i], std::byte{0});
  }
}

TEST_F(SimMachineTest, AllocationFailsWhenNodeFull) {
  ASSERT_TRUE(machine_.allocate(190 * kGiB, 0, "big").ok());
  auto fail = machine_.allocate(10 * kGiB, 0, "overflow");
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, Errc::kOutOfCapacity);
  // Other nodes unaffected.
  EXPECT_TRUE(machine_.allocate(10 * kGiB, 1, "elsewhere").ok());
}

TEST_F(SimMachineTest, ExactFitSucceeds) {
  auto buffer = machine_.allocate(192 * kGiB, 0, "exact");
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(machine_.available_bytes(0), 0u);
}

TEST_F(SimMachineTest, ZeroBytesAndBadNodeRejected) {
  EXPECT_FALSE(machine_.allocate(0, 0, "zero").ok());
  auto bad_node = machine_.allocate(kMiB, 99, "bad");
  ASSERT_FALSE(bad_node.ok());
  EXPECT_EQ(bad_node.error().code, Errc::kInvalidArgument);
}

TEST_F(SimMachineTest, FreeReleasesCapacity) {
  auto buffer = machine_.allocate(10 * kGiB, 0, "temp");
  ASSERT_TRUE(buffer.ok());
  ASSERT_TRUE(machine_.free(*buffer).ok());
  EXPECT_EQ(machine_.used_bytes(0), 0u);
  EXPECT_EQ(machine_.live_buffer_count(), 0u);
  EXPECT_EQ(machine_.total_buffer_count(), 1u);
}

TEST_F(SimMachineTest, DoubleFreeRejected) {
  auto buffer = machine_.allocate(kMiB, 0, "once");
  ASSERT_TRUE(buffer.ok());
  ASSERT_TRUE(machine_.free(*buffer).ok());
  EXPECT_FALSE(machine_.free(*buffer).ok());
  EXPECT_FALSE(machine_.free(BufferId{}).ok());
  EXPECT_FALSE(machine_.free(BufferId{12345}).ok());
}

TEST_F(SimMachineTest, MigrateMovesCapacityCharge) {
  auto buffer = machine_.allocate(10 * kGiB, 0, "mover");
  ASSERT_TRUE(buffer.ok());
  ASSERT_TRUE(machine_.migrate(*buffer, 2).ok());
  EXPECT_EQ(machine_.used_bytes(0), 0u);
  EXPECT_EQ(machine_.used_bytes(2), 10 * kGiB);
  EXPECT_EQ(machine_.info(*buffer).node, 2u);
}

TEST_F(SimMachineTest, MigratePreservesContents) {
  auto buffer = machine_.allocate(kMiB, 0, "data", 1024);
  ASSERT_TRUE(buffer.ok());
  machine_.backing(*buffer)[17] = std::byte{42};
  ASSERT_TRUE(machine_.migrate(*buffer, 2).ok());
  EXPECT_EQ(machine_.backing(*buffer)[17], std::byte{42});
}

TEST_F(SimMachineTest, MigrateToFullNodeFails) {
  ASSERT_TRUE(machine_.allocate(768 * kGiB, 2, "filler").ok());
  auto buffer = machine_.allocate(kGiB, 0, "stuck");
  ASSERT_TRUE(buffer.ok());
  auto status = machine_.migrate(*buffer, 2);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kOutOfCapacity);
  EXPECT_EQ(machine_.info(*buffer).node, 0u);  // unchanged
}

TEST_F(SimMachineTest, MigrateToSameNodeIsNoop) {
  auto buffer = machine_.allocate(kGiB, 0, "still");
  ASSERT_TRUE(buffer.ok());
  EXPECT_TRUE(machine_.migrate(*buffer, 0).ok());
  EXPECT_EQ(machine_.used_bytes(0), kGiB);
}

TEST_F(SimMachineTest, MigrateValidation) {
  auto buffer = machine_.allocate(kGiB, 0, "m");
  ASSERT_TRUE(buffer.ok());
  EXPECT_FALSE(machine_.migrate(*buffer, 99).ok());
  ASSERT_TRUE(machine_.free(*buffer).ok());
  EXPECT_FALSE(machine_.migrate(*buffer, 1).ok());  // freed
}

// --- Array view over a buffer ---

TEST_F(SimMachineTest, ArrayViewsBackingAsTypedElements) {
  auto buffer = machine_.allocate(kGiB, 0, "typed", 1024 * sizeof(double));
  ASSERT_TRUE(buffer.ok());
  Array<double> array(machine_, *buffer);
  EXPECT_EQ(array.size(), 1024u);
  array.span()[5] = 2.5;
  EXPECT_DOUBLE_EQ(array.span()[5], 2.5);
  EXPECT_EQ(array.node(), 0u);
}

TEST_F(SimMachineTest, ArrayMissRatesFollowDeclaredSize) {
  machine_.set_llc_bytes(32 * kMiB);
  auto small = machine_.allocate(kMiB, 0, "small", 4096);
  auto large = machine_.allocate(32 * kGiB, 0, "large", 4096);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  Array<std::uint32_t> small_array(machine_, *small);
  Array<std::uint32_t> large_array(machine_, *large);
  // A cache-resident buffer barely misses; a huge one nearly always does.
  EXPECT_LE(small_array.random_miss_rate(), 0.05);
  EXPECT_GE(large_array.random_miss_rate(), 0.99);
  EXPECT_LE(small_array.stream_fraction(), 0.1);
  EXPECT_DOUBLE_EQ(large_array.stream_fraction(), 1.0);
}

TEST_F(SimMachineTest, ArrayRefreshAfterMigration) {
  auto buffer = machine_.allocate(kGiB, 0, "roam", 4096);
  ASSERT_TRUE(buffer.ok());
  Array<std::uint32_t> array(machine_, *buffer);
  EXPECT_EQ(array.node(), 0u);
  ASSERT_TRUE(machine_.migrate(*buffer, 1).ok());
  array.refresh_model();
  EXPECT_EQ(array.node(), 1u);
}

// --- former assert() paths, now graceful in release builds ---

TEST_F(SimMachineTest, InfoSentinelForInvalidId) {
  const BufferInfo& invalid = machine_.info(BufferId{});
  EXPECT_EQ(invalid.label, "<invalid-buffer>");
  EXPECT_TRUE(invalid.freed);
  const BufferInfo& out_of_range = machine_.info(BufferId{12345});
  EXPECT_EQ(out_of_range.label, "<invalid-buffer>");
}

TEST_F(SimMachineTest, InfoCheckedSurfacesTheError) {
  auto invalid = machine_.info_checked(BufferId{});
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.error().code, Errc::kInvalidArgument);
  auto buffer = machine_.allocate(kMiB, 0, "ok");
  ASSERT_TRUE(buffer.ok());
  auto checked = machine_.info_checked(*buffer);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(checked->label, "ok");
}

TEST_F(SimMachineTest, BackingNullForInvalidAndFreedBuffers) {
  EXPECT_EQ(machine_.backing(BufferId{}), nullptr);
  EXPECT_EQ(machine_.backing(BufferId{999}), nullptr);
  auto buffer = machine_.allocate(kMiB, 0, "gone", 4096);
  ASSERT_TRUE(buffer.ok());
  EXPECT_NE(machine_.backing(*buffer), nullptr);
  ASSERT_TRUE(machine_.free(*buffer).ok());
  EXPECT_EQ(machine_.backing(*buffer), nullptr);
}

TEST_F(SimMachineTest, CapacityQueriesZeroForUnknownNodes) {
  EXPECT_EQ(machine_.capacity_bytes(999), 0u);
  EXPECT_EQ(machine_.used_bytes(999), 0u);
  EXPECT_EQ(machine_.available_bytes(999), 0u);
}

TEST(SimMachineModelTest, MismatchedPerfModelSelfHealsAndReports) {
  topo::Topology topology = topo::xeon_clx_1lm();
  const std::size_t nodes = topology.numa_nodes().size();
  ASSERT_GT(nodes, 1u);
  SimMachine repaired(std::move(topology), MachinePerfModel(1));
  EXPECT_TRUE(repaired.model_repaired());
  EXPECT_EQ(repaired.perf_model().node_count(), nodes);

  topo::Topology again = topo::xeon_clx_1lm();
  MachinePerfModel matching = MachinePerfModel::calibrated_for(again);
  SimMachine clean(std::move(again), std::move(matching));
  EXPECT_FALSE(clean.model_repaired());
}

TEST_F(SimMachineTest, OfflineNodeRejectsNewWorkKeepsOldBuffers) {
  auto resident = machine_.allocate(kGiB, 0, "resident", 4096);
  ASSERT_TRUE(resident.ok());
  auto roaming = machine_.allocate(kGiB, 1, "roaming");
  ASSERT_TRUE(roaming.ok());

  ASSERT_TRUE(machine_.set_node_online(0, false).ok());
  EXPECT_FALSE(machine_.node_online(0));
  EXPECT_EQ(machine_.available_bytes(0), 0u);

  auto refused = machine_.allocate(kMiB, 0, "late");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, Errc::kOutOfCapacity);
  EXPECT_NE(refused.error().message.find("offline"), std::string::npos);

  auto migrated = machine_.migrate(*roaming, 0);
  ASSERT_FALSE(migrated.ok());
  EXPECT_EQ(migrated.error().code, Errc::kOutOfCapacity);

  // Resident data stays valid and freeable while the node is out of service.
  EXPECT_EQ(machine_.info(*resident).node, 0u);
  EXPECT_NE(machine_.backing(*resident), nullptr);

  ASSERT_TRUE(machine_.set_node_online(0, true).ok());
  EXPECT_GT(machine_.available_bytes(0), 0u);
  EXPECT_TRUE(machine_.allocate(kMiB, 0, "back").ok());
}

TEST_F(SimMachineTest, SetNodeOnlineRejectsUnknownNode) {
  auto status = machine_.set_node_online(999, false);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kInvalidArgument);
}

TEST(CacheModelTest, MissRateMonotoneInWorkingSet) {
  const std::uint64_t llc = 32 * kMiB;
  double previous = 0.0;
  for (std::uint64_t ws = kMiB; ws <= 64 * kGiB; ws *= 4) {
    const double rate = CacheModel::random_miss_rate(ws, llc);
    EXPECT_GE(rate, previous);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    previous = rate;
  }
}

TEST(CacheModelTest, BoundaryBehavior) {
  EXPECT_LE(CacheModel::random_miss_rate(0, 1024), 0.05);
  EXPECT_LE(CacheModel::random_miss_rate(1024, 1024), 0.05);
  EXPECT_NEAR(CacheModel::random_miss_rate(2048, 1024), 0.5, 1e-9);
}

}  // namespace
}  // namespace hetmem::sim
