#include "hetmem/support/units.hpp"

#include <gtest/gtest.h>

namespace hetmem::support {
namespace {

TEST(ParseBytes, PlainNumbers) {
  EXPECT_EQ(parse_bytes("0"), 0u);
  EXPECT_EQ(parse_bytes("4096"), 4096u);
}

TEST(ParseBytes, BinarySuffixes) {
  EXPECT_EQ(parse_bytes("1KiB"), kKiB);
  EXPECT_EQ(parse_bytes("2MiB"), 2 * kMiB);
  EXPECT_EQ(parse_bytes("96GiB"), 96 * kGiB);
  EXPECT_EQ(parse_bytes("1.5TiB"), kTiB + kTiB / 2);
}

TEST(ParseBytes, DecimalSuffixes) {
  EXPECT_EQ(parse_bytes("1KB"), 1000u);
  EXPECT_EQ(parse_bytes("2GB"), 2000000000u);
}

TEST(ParseBytes, ShortSuffixesAreBinary) {
  EXPECT_EQ(parse_bytes("4K"), 4 * kKiB);
  EXPECT_EQ(parse_bytes("4G"), 4 * kGiB);
}

TEST(ParseBytes, CaseInsensitive) {
  EXPECT_EQ(parse_bytes("1gib"), kGiB);
  EXPECT_EQ(parse_bytes("1GB"), parse_bytes("1gb"));
}

TEST(ParseBytes, ToleratesWhitespace) {
  EXPECT_EQ(parse_bytes("  8 GiB "), 8 * kGiB);
}

TEST(ParseBytes, RejectsGarbage) {
  EXPECT_FALSE(parse_bytes("").has_value());
  EXPECT_FALSE(parse_bytes("GiB").has_value());
  EXPECT_FALSE(parse_bytes("12XB").has_value());
  EXPECT_FALSE(parse_bytes("1e3").has_value());
  EXPECT_FALSE(parse_bytes("-4").has_value());
}

TEST(FormatBytes, PicksLargestUnit) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(kKiB), "1.0KiB");
  EXPECT_EQ(format_bytes(96 * kGiB), "96.0GiB");
  EXPECT_EQ(format_bytes(kTiB + kTiB / 2), "1.5TiB");
}

TEST(FormatBytes, RoundTripsCommonCapacities) {
  for (std::uint64_t gib : {4u, 24u, 96u, 192u, 768u}) {
    EXPECT_EQ(parse_bytes(format_bytes(gib * kGiB)), gib * kGiB);
  }
}

TEST(FormatBandwidth, DecimalGigabytes) {
  EXPECT_EQ(format_bandwidth(80e9), "80.00 GB/s");
  EXPECT_EQ(format_bandwidth(10.49e9), "10.49 GB/s");
}

TEST(FormatLatency, NanosecondsThenMicroseconds) {
  EXPECT_EQ(format_latency_ns(285.0), "285 ns");
  EXPECT_EQ(format_latency_ns(860.4), "860 ns");
  EXPECT_EQ(format_latency_ns(1900.0), "1.90 us");
}

TEST(GbPerS, Conversion) {
  EXPECT_DOUBLE_EQ(gb_per_s(80.0), 8e10);
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(2.999, 3), "2.999");
}

}  // namespace
}  // namespace hetmem::support
