// Tests for the SLIT-style distance matrix and hwloc_distrib-style rank
// distribution.
#include <gtest/gtest.h>

#include <set>

#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/distances.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/topo/distrib.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem {
namespace {

using support::Bitmap;

// The registry is internally synchronized (shared_mutex) and therefore
// immovable, so the helper fills a caller-owned instance in place.
void fill_registry(attr::MemAttrRegistry& registry) {
  hmat::GenerateOptions options;
  options.local_only = false;
  EXPECT_TRUE(
      hmat::load_into(registry,
                      hmat::generate(registry.topology(), options)).ok());
}

// --- DistanceMatrix ---

TEST(DistanceMatrix, RequiresFullLatencyCoverage) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry local_only(topology);
  ASSERT_TRUE(hmat::load_into(local_only, hmat::generate(topology)).ok());
  // Local-only HMAT: remote pairs missing -> error.
  auto matrix = attr::DistanceMatrix::from_latencies(local_only);
  ASSERT_FALSE(matrix.ok());
  EXPECT_EQ(matrix.error().code, support::Errc::kNotFound);
}

TEST(DistanceMatrix, LocalIsTenRemoteIsMore) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  fill_registry(registry);
  auto matrix = attr::DistanceMatrix::from_latencies(registry);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->node_count(), 4u);
  // Node 0 (DRAM socket 0) to itself: the machine floor -> 10.
  EXPECT_EQ(matrix->value(0, 0), 10u);
  // To the remote DRAM (node 1): the remote factor (2.2x) -> 22.
  EXPECT_EQ(matrix->value(0, 1), 22u);
  // To the local NVDIMM: 77/26 * 10 ~ 30.
  EXPECT_NEAR(matrix->value(0, 2), 30u, 1);
  // Latency accessor matches the advertised figures.
  EXPECT_DOUBLE_EQ(matrix->latency_ns(0, 0), 26.0);
}

TEST(DistanceMatrix, AnswersTheSection8Question) {
  // "Is it better to allocate in the local NVDIMM or in another DRAM?" —
  // with the advertised values, the remote DRAM (22) beats the local
  // NVDIMM (30) for latency.
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  fill_registry(registry);
  auto matrix = attr::DistanceMatrix::from_latencies(registry);
  ASSERT_TRUE(matrix.ok());
  auto order = matrix->nearest_order(0);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0u);  // local DRAM
  EXPECT_EQ(order[1], 1u);  // remote DRAM before...
  EXPECT_EQ(order[2], 2u);  // ...local NVDIMM
}

TEST(DistanceMatrix, OutOfRangeIsZeroOrEmpty) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  fill_registry(registry);
  auto matrix = attr::DistanceMatrix::from_latencies(registry);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->value(99, 0), 0u);
  EXPECT_DOUBLE_EQ(matrix->latency_ns(0, 99), 0.0);
  EXPECT_TRUE(matrix->nearest_order(99).empty());
}

TEST(DistanceMatrix, RenderLooksLikeSlit) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  fill_registry(registry);
  auto matrix = attr::DistanceMatrix::from_latencies(registry);
  ASSERT_TRUE(matrix.ok());
  const std::string out = matrix->render();
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("L#3"), std::string::npos);
}

TEST(DistanceMatrix, WorksWithCpulessNodes) {
  // fictitious_fig3 has a machine-wide NAM; its row uses the machine cpuset.
  topo::Topology topology = topo::fictitious_fig3();
  attr::MemAttrRegistry registry(topology);
  fill_registry(registry);
  auto matrix = attr::DistanceMatrix::from_latencies(registry);
  ASSERT_TRUE(matrix.ok()) << matrix.error().to_string();
  EXPECT_EQ(matrix->node_count(), 9u);
}

// --- distribute ---

TEST(Distribute, OneRankGetsWholeMachine) {
  topo::Topology topology = topo::xeon_clx_1lm();
  auto sets = topo::distribute(topology, 1);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets[0] == topology.complete_cpuset());
}

TEST(Distribute, TwoRanksSplitAcrossPackages) {
  topo::Topology topology = topo::xeon_clx_1lm();
  auto sets = topo::distribute(topology, 2);
  ASSERT_EQ(sets.size(), 2u);
  const auto packages = topology.objects_of_type(topo::ObjType::kPackage);
  EXPECT_TRUE(sets[0] == packages[0]->cpuset());
  EXPECT_TRUE(sets[1] == packages[1]->cpuset());
}

TEST(Distribute, RankCountEqualsPuCountGivesSingletons) {
  topo::Topology topology = topo::knl_snc4_flat();
  const unsigned pus = static_cast<unsigned>(topology.pus().size());
  auto sets = topo::distribute(topology, pus);
  ASSERT_EQ(sets.size(), pus);
  Bitmap covered;
  for (const Bitmap& set : sets) {
    EXPECT_EQ(set.count(), 1u);
    covered |= set;
  }
  EXPECT_TRUE(covered == topology.complete_cpuset());
}

TEST(Distribute, SixteenRanksOnKnlSpreadOverClusters) {
  topo::Topology topology = topo::knl_snc4_flat();
  auto sets = topo::distribute(topology, 16);
  ASSERT_EQ(sets.size(), 16u);
  // 4 ranks per SubNUMA cluster.
  const auto groups = topology.objects_of_type(topo::ObjType::kGroup);
  for (const topo::Object* group : groups) {
    unsigned in_group = 0;
    for (const Bitmap& set : sets) {
      if (set.is_subset_of(group->cpuset())) ++in_group;
    }
    EXPECT_EQ(in_group, 4u) << "group L#" << group->logical_index();
  }
  // Disjoint within the round.
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (std::size_t j = i + 1; j < sets.size(); ++j) {
      EXPECT_FALSE(sets[i].intersects(sets[j])) << i << " vs " << j;
    }
  }
}

TEST(Distribute, NonDividingCountsCoverEveryRank) {
  topo::Topology topology = topo::xeon_clx_snc_1lm();
  for (unsigned count : {3u, 5u, 7u, 13u, 33u}) {
    auto sets = topo::distribute(topology, count);
    ASSERT_EQ(sets.size(), count) << count;
    for (const Bitmap& set : sets) {
      EXPECT_FALSE(set.empty());
      EXPECT_TRUE(set.is_subset_of(topology.complete_cpuset()));
    }
  }
}

TEST(Distribute, OversubscriptionWraps) {
  topo::Topology topology = topo::fugaku_like();  // 48 PUs
  auto sets = topo::distribute(topology, 100);
  ASSERT_EQ(sets.size(), 100u);
  for (const Bitmap& set : sets) EXPECT_FALSE(set.empty());
}

TEST(Distribute, ZeroRanksIsEmpty) {
  topo::Topology topology = topo::fugaku_like();
  EXPECT_TRUE(topo::distribute(topology, 0).empty());
}

TEST(Distribute, RanksMakeGoodInitiators) {
  // End-to-end: each distributed rank asks for its own best latency target;
  // ranks in different clusters get their own cluster's DRAM.
  topo::Topology topology = topo::knl_snc4_flat();
  sim::SimMachine machine(topo::knl_snc4_flat());
  attr::MemAttrRegistry registry(machine.topology());
  fill_registry(registry);
  auto sets = topo::distribute(machine.topology(), 4);
  ASSERT_EQ(sets.size(), 4u);
  std::set<unsigned> targets;
  for (const Bitmap& rank : sets) {
    auto best = registry.best_target(attr::kLatency,
                                     attr::Initiator::from_cpuset(rank));
    ASSERT_TRUE(best.ok());
    targets.insert(best->target->logical_index());
  }
  EXPECT_EQ(targets.size(), 4u);  // four distinct cluster DRAMs
}

}  // namespace
}  // namespace hetmem
