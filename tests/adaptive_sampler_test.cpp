// Adaptive sample-rate controller tests (docs/RUNTIME.md "Adaptive
// sampling"): the multiplicative-increase/decrease law must keep sampler
// cost under the overhead budget, move the period monotonically under
// sustained pressure, clamp at both ends, and stay bit-for-bit
// deterministic — including across a trace/2 record -> replay round trip at
// every controller-chosen period.
//
// All tests inject SamplerOptions::cost_model so the controller sees a
// deterministic cost instead of wall-clock noise; the law itself is what is
// under test, not the measurement.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/runtime/epoch.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/trace/trace.hpp"

namespace {

using namespace hetmem;
using support::kGiB;
using support::kMiB;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Cost model whose overhead *fraction* is k / period: cost shrinks in
/// proportion to the period, the regime the controller is designed for
/// (fewer samples -> less work). `k` is the fraction at period 1.
runtime::SamplerOptions adaptive_options(double k, double max_period) {
  runtime::SamplerOptions options;
  options.adaptive = true;
  options.max_sample_period = max_period;
  options.cost_model = [k](const runtime::Epoch& epoch) {
    const double period = epoch.sample_period > 0.0 ? epoch.sample_period : 1.0;
    return epoch.duration_ns * k / period;
  };
  return options;
}

/// Drives `sampler` through `epochs` single-phase epochs of identical
/// streaming traffic on a fresh machine; returns the emitted epochs.
std::vector<runtime::Epoch> drive(runtime::EpochSampler& sampler,
                                  unsigned epochs) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  auto buffer = machine.allocate(256 * kMiB, 0, "driven", 4096);
  EXPECT_TRUE(buffer.ok());
  sim::Array<double> array(machine, *buffer);
  sim::ExecutionContext exec(machine,
                             machine.topology().numa_node(0)->cpuset(), 4);
  std::vector<runtime::Epoch> out;
  for (unsigned phase = 0; phase < epochs; ++phase) {
    exec.run_phase("p", 4,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     array.record_bulk_read(ctx, 64.0 * kMiB);
                     array.record_bulk_random_reads(ctx, 1e5);
                   });
    auto epoch = sampler.on_phase(exec);
    if (epoch.has_value()) out.push_back(*epoch);
  }
  return out;
}

TEST(AdaptiveSampler, PeriodMonotoneUnderSustainedPressure) {
  // Cost pinned at 100% of epoch duration: the controller must double every
  // epoch and clamp at max_sample_period, never oscillating back down.
  runtime::SamplerOptions options;
  options.adaptive = true;
  options.max_sample_period = 64.0;
  options.cost_model = [](const runtime::Epoch& epoch) {
    return epoch.duration_ns;
  };
  runtime::EpochSampler sampler(options);
  const auto epochs = drive(sampler, 10);
  ASSERT_EQ(epochs.size(), 10u);
  const std::vector<double>& periods = sampler.period_log();
  ASSERT_EQ(periods.size(), 10u);
  const double expected[] = {1, 2, 4, 8, 16, 32, 64, 64, 64, 64};
  for (std::size_t e = 0; e < periods.size(); ++e) {
    EXPECT_EQ(periods[e], expected[e]) << "epoch " << e;
    if (e > 0) EXPECT_GE(periods[e], periods[e - 1]);
    EXPECT_LE(periods[e], options.max_sample_period);
    // Every epoch carries the period that sampled it.
    EXPECT_EQ(epochs[e].sample_period, periods[e]);
  }
}

TEST(AdaptiveSampler, BudgetRespectedUnderBurstyWorkload) {
  // Base overhead 8x the budget at period 1, with a 4x burst on epochs 3-4:
  // the controller must keep climbing through the burst and settle at a
  // period whose terminal fraction is at or under budget, inside the
  // deadband (no oscillation once parked).
  runtime::SamplerOptions options;
  options.adaptive = true;
  options.cost_model = [](const runtime::Epoch& epoch) {
    const double period = epoch.sample_period > 0.0 ? epoch.sample_period : 1.0;
    const double k = (epoch.index == 3 || epoch.index == 4) ? 0.32 : 0.08;
    return epoch.duration_ns * k / period;
  };
  runtime::EpochSampler sampler(options);
  const auto epochs = drive(sampler, 10);
  ASSERT_EQ(epochs.size(), 10u);
  const std::vector<double>& periods = sampler.period_log();
  const double expected[] = {1, 2, 4, 8, 16, 32, 32, 32, 32, 32};
  for (std::size_t e = 0; e < periods.size(); ++e) {
    EXPECT_EQ(periods[e], expected[e]) << "epoch " << e;
  }
  // Terminal state: cost fraction within budget.
  const runtime::Epoch& last = epochs.back();
  ASSERT_GT(last.duration_ns, 0.0);
  EXPECT_LE(sampler.last_cost_ns() / last.duration_ns,
            options.overhead_budget_fraction);
}

TEST(AdaptiveSampler, RecoversToFloorWhenPressureVanishes) {
  // Pressure for the first 4 epochs, then zero cost: the controller must
  // halve back down and clamp at the sample_period floor — the budget law
  // is symmetric, not ratchet-up-only.
  runtime::SamplerOptions options;
  options.adaptive = true;
  options.cost_model = [](const runtime::Epoch& epoch) {
    return epoch.index < 4 ? epoch.duration_ns : 0.0;
  };
  runtime::EpochSampler sampler(options);
  (void)drive(sampler, 10);
  const std::vector<double>& periods = sampler.period_log();
  ASSERT_EQ(periods.size(), 10u);
  const double expected[] = {1, 2, 4, 8, 16, 8, 4, 2, 1, 1};
  for (std::size_t e = 0; e < periods.size(); ++e) {
    EXPECT_EQ(periods[e], expected[e]) << "epoch " << e;
    EXPECT_GE(periods[e], sampler.options().sample_period);
  }
}

TEST(AdaptiveSampler, FixedSeedRunsAreBitIdentical) {
  // Two identical adaptive runs — same seed, same cost model, same workload
  // on identically-constructed machines — must produce the same period
  // trajectory and bit-identical subsampled counters: the controller adds
  // no nondeterminism on top of the seeded rounding stream.
  auto run = [] {
    runtime::EpochSampler sampler(adaptive_options(0.08, 4096.0));
    auto epochs = drive(sampler, 8);  // before copying the period log
    return std::make_pair(std::move(epochs), sampler.period_log());
  };
  const auto [epochs_a, periods_a] = run();
  const auto [epochs_b, periods_b] = run();
  EXPECT_EQ(periods_a, periods_b);
  ASSERT_EQ(epochs_a.size(), epochs_b.size());
  // The trajectory must actually subsample (periods > 1) for this test to
  // prove the RNG stream is aligned, not just that exact mode is exact.
  EXPECT_GT(periods_a.back(), 1.0);
  for (std::size_t e = 0; e < epochs_a.size(); ++e) {
    ASSERT_EQ(epochs_a[e].samples.size(), epochs_b[e].samples.size());
    EXPECT_TRUE(same_bits(epochs_a[e].total_memory_bytes,
                          epochs_b[e].total_memory_bytes));
    for (std::size_t s = 0; s < epochs_a[e].samples.size(); ++s) {
      EXPECT_EQ(epochs_a[e].samples[s].buffer.index,
                epochs_b[e].samples[s].buffer.index);
      EXPECT_TRUE(same_bits(epochs_a[e].samples[s].traffic.memory_bytes,
                            epochs_b[e].samples[s].traffic.memory_bytes));
      EXPECT_TRUE(same_bits(epochs_a[e].samples[s].traffic.reads,
                            epochs_b[e].samples[s].traffic.reads));
    }
  }
}

// ---------------------------------------------------------------------------
// Live == replay at every controller-chosen period (trace/2 round trip)
// ---------------------------------------------------------------------------

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kBufferBytes = 1 * kGiB;

/// Identically-constructible testbed (same shape as tests/trace_test.cpp):
/// Xeon with squeezed fast memory and two 1 GiB buffers parked on the
/// NVDIMM node, so the policy has real migration decisions to make.
struct Scenario {
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  support::Bitmap initiator;
  unsigned slow = 0;
  std::vector<sim::BufferId> buffers;
  bool ok = false;

  Scenario()
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry),
        initiator(machine.topology().numa_node(0)->cpuset()) {
    if (!hmat::load_into(registry, hmat::generate(machine.topology())).ok()) {
      return;
    }
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        slow = node->logical_index();
      }
    }
    const std::uint64_t headroom = kBufferBytes + kBufferBytes / 2;
    const std::uint64_t fast_free = machine.available_bytes(0);
    if (fast_free > headroom) {
      auto hog =
          machine.allocate(fast_free - headroom, 0, "resident.hog", 4096);
      if (!hog.ok()) return;
    }
    for (unsigned i = 0; i < 2; ++i) {
      auto buffer = machine.allocate(kBufferBytes, slow,
                                     "seg" + std::to_string(i), 1u << 16);
      if (!buffer.ok()) return;
      buffers.push_back(*buffer);
    }
    ok = true;
  }
};

runtime::RuntimePolicyOptions adaptive_policy_options() {
  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  options.sampler.adaptive = true;
  // Fraction 0.04 at period 1 against the default 0.01 budget: the
  // controller walks 1 -> 2 -> 4 and parks, giving at least three distinct
  // chosen periods over the run.
  options.sampler.cost_model = [](const runtime::Epoch& epoch) {
    const double period = epoch.sample_period > 0.0 ? epoch.sample_period : 1.0;
    return epoch.duration_ns * 0.04 / period;
  };
  return options;
}

TEST(AdaptiveReplay, LiveEqualsReplayAtEveryChosenPeriod) {
  Scenario live;
  ASSERT_TRUE(live.ok);
  sim::Array<double> streamed(live.machine, live.buffers[0]);
  sim::Array<double> chased(live.machine, live.buffers[1]);
  sim::ExecutionContext exec(live.machine, live.initiator, kThreads);
  runtime::RuntimePolicy policy(live.allocator, live.initiator,
                                adaptive_policy_options());
  policy.attach(exec, [&] {
    streamed.refresh_model();
    chased.refresh_model();
  });
  trace::TraceRecorder recorder({1, "adaptive"});
  recorder.attach(exec, &policy);

  for (unsigned phase = 0; phase < 8; ++phase) {
    exec.run_phase("part1.stream", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     streamed.record_bulk_read(ctx, 512.0 * kMiB);
                   });
  }
  for (unsigned phase = 0; phase < 8; ++phase) {
    exec.run_phase("part2.random", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     chased.record_bulk_random_reads(ctx, 4e6);
                   });
  }
  const std::string live_log = policy.render_decision_log();
  ASSERT_FALSE(live_log.empty());

  // The controller must have actually moved — otherwise this only tests the
  // fixed-period replay path already covered by trace_test.
  const std::vector<double>& periods = policy.sampler().period_log();
  ASSERT_EQ(periods.size(), 16u);
  std::vector<double> distinct;
  for (double period : periods) {
    if (distinct.empty() || distinct.back() != period) {
      distinct.push_back(period);
    }
  }
  ASSERT_GE(distinct.size(), 3u) << "controller never moved";

  // Record -> serialize -> parse: trace/2 carries every chosen period.
  const std::string text = trace::serialize(recorder.trace());
  auto parsed = trace::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->version, 2u);
  ASSERT_EQ(parsed->epochs.size(), 16u);
  for (std::size_t e = 0; e < parsed->epochs.size(); ++e) {
    EXPECT_TRUE(same_bits(parsed->epochs[e].sample_period, periods[e]))
        << "epoch " << e;
  }

  // Replay on a fresh identical testbed: the recorded periods rule (the
  // cost model is deliberately absent), and the decision log — including
  // its sampler-period section — must come back byte-identical.
  Scenario replayed;
  ASSERT_TRUE(replayed.ok);
  runtime::RuntimePolicyOptions replay_options = adaptive_policy_options();
  replay_options.sampler.cost_model = nullptr;
  runtime::RuntimePolicy replay_policy(replayed.allocator, replayed.initiator,
                                       replay_options);
  trace::TraceReplayer replayer(replay_policy);
  const trace::ReplayStats stats = replayer.replay(*parsed);
  EXPECT_EQ(stats.epochs, 16u);
  EXPECT_EQ(replay_policy.sampler().period_log(), periods);
  EXPECT_EQ(replay_policy.render_decision_log(), live_log);
}

}  // namespace
