// Multi-tenant service tests (docs/TENANCY.md): the TenantRegistry
// lifecycle, per-tenant quota accounting, the degradation ladder's
// level/action/retry-after policy, the jittered backoff helper, the
// GlobalArbiter's weighted slices, and the allocator's tenant-aware
// admission path end to end on the xeon_clx_1lm preset.
#include "hetmem/tenant/tenant.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/runtime/engine.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/tenant/arbiter.hpp"
#include "hetmem/tenant/backoff.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::tenant {
namespace {

using support::Errc;
using support::kGiB;
using support::kMiB;

// ---------------------------------------------------------------------------
// TenantRegistry lifecycle
// ---------------------------------------------------------------------------

TEST(TenantRegistry, RegisterFindDeregisterExactlyOnce) {
  TenantRegistry registry;
  auto a = registry.register_tenant("analytics", Priority::kNormal);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->id(), 1u);
  EXPECT_TRUE((*a)->live());
  EXPECT_EQ(registry.live_count(), 1u);

  // Duplicate names are refused; ids are never reused.
  auto dup = registry.register_tenant("analytics", Priority::kBestEffort);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, Errc::kAlreadyExists);
  auto b = registry.register_tenant("ingest", Priority::kCritical);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->id(), 2u);

  EXPECT_EQ(registry.find("analytics"), *a);
  EXPECT_EQ(registry.find(TenantId{2}), *b);
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_EQ(registry.find(TenantId{99}), nullptr);

  ASSERT_TRUE(registry.deregister_tenant(*a).ok());
  EXPECT_FALSE((*a)->live());
  EXPECT_EQ(registry.live_count(), 1u);
  EXPECT_EQ(registry.find("analytics"), nullptr);
  // Second deregistration (stale handle) reports kNotFound — exactly-once.
  auto again = registry.deregister_tenant(*a);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, Errc::kNotFound);
}

TEST(TenantRegistry, RejectsBadRegistrations) {
  TenantRegistry registry;
  EXPECT_EQ(registry.register_tenant("", Priority::kNormal).error().code,
            Errc::kInvalidArgument);
  TenantQuota bad;
  bad.share_weight = 0.0;
  EXPECT_EQ(registry.register_tenant("x", Priority::kNormal, bad).error().code,
            Errc::kInvalidArgument);
  EXPECT_EQ(registry.deregister_tenant(nullptr).error().code,
            Errc::kInvalidArgument);
}

TEST(TenantRegistry, ShareFractionIsWeightOverLiveSum) {
  TenantRegistry registry;
  TenantQuota heavy;
  heavy.share_weight = 3.0;
  auto a = registry.register_tenant("a", Priority::kNormal, heavy);
  auto b = registry.register_tenant("b", Priority::kNormal);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(registry.share_fraction(*a), 0.75);
  EXPECT_DOUBLE_EQ(registry.share_fraction(*b), 0.25);
  ASSERT_TRUE(registry.deregister_tenant(*a).ok());
  EXPECT_DOUBLE_EQ(registry.share_fraction(*b), 1.0);
  EXPECT_DOUBLE_EQ(registry.share_fraction(*a), 0.0) << "dead tenant has no share";
}

// ---------------------------------------------------------------------------
// Quota accounting on the Tenant handle
// ---------------------------------------------------------------------------

TEST(TenantQuotaAccounting, ChargeUnchargeAndTierMove) {
  TenantQuota quota;
  quota.total_cap_bytes = 10 * kGiB;
  quota.tier_cap_bytes[tier_index(topo::MemoryKind::kDRAM)] = 2 * kGiB;
  Tenant tenant(1, "t", Priority::kNormal, quota);

  EXPECT_EQ(tenant.try_charge(topo::MemoryKind::kDRAM, 2 * kGiB),
            ChargeResult::kOk);
  // Tier cap full: the failed charge must not leak into the total.
  EXPECT_EQ(tenant.try_charge(topo::MemoryKind::kDRAM, 1),
            ChargeResult::kTierCapExceeded);
  EXPECT_EQ(tenant.used_bytes(), 2 * kGiB);
  EXPECT_EQ(tenant.try_charge(topo::MemoryKind::kNVDIMM, 8 * kGiB),
            ChargeResult::kOk);
  EXPECT_EQ(tenant.try_charge(topo::MemoryKind::kNVDIMM, 1),
            ChargeResult::kTotalCapExceeded);

  // Migration re-homing moves the tier charge but not the total — and is
  // exempt from tier caps (an evacuation must not deadlock on a quota).
  tenant.move_charge(topo::MemoryKind::kNVDIMM, topo::MemoryKind::kDRAM,
                     4 * kGiB);
  EXPECT_EQ(tenant.used_bytes(topo::MemoryKind::kDRAM), 6 * kGiB);
  EXPECT_EQ(tenant.used_bytes(topo::MemoryKind::kNVDIMM), 4 * kGiB);
  EXPECT_EQ(tenant.used_bytes(), 10 * kGiB);

  tenant.uncharge(topo::MemoryKind::kDRAM, 6 * kGiB);
  tenant.uncharge(topo::MemoryKind::kNVDIMM, 4 * kGiB);
  EXPECT_EQ(tenant.used_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// DegradationLadder policy
// ---------------------------------------------------------------------------

TEST(DegradationLadderPolicy, LevelsFollowFreeFractionThresholds) {
  const DegradationLadder ladder;
  EXPECT_EQ(ladder.level_for(0.80), OverloadLevel::kNormal);
  EXPECT_EQ(ladder.level_for(0.20), OverloadLevel::kSpillLowPriority);
  EXPECT_EQ(ladder.level_for(0.10), OverloadLevel::kShedBestEffort);
  EXPECT_EQ(ladder.level_for(0.01), OverloadLevel::kCriticalOnly);
}

TEST(DegradationLadderPolicy, ActionMatrixDegradesLowPriorityFirst) {
  const DegradationLadder ladder;
  using L = OverloadLevel;
  using P = Priority;
  using A = LadderAction;
  EXPECT_EQ(ladder.action(L::kNormal, P::kBestEffort), A::kPlace);
  EXPECT_EQ(ladder.action(L::kSpillLowPriority, P::kBestEffort), A::kSpill);
  EXPECT_EQ(ladder.action(L::kSpillLowPriority, P::kNormal), A::kPlace);
  EXPECT_EQ(ladder.action(L::kShedBestEffort, P::kBestEffort), A::kShed);
  EXPECT_EQ(ladder.action(L::kShedBestEffort, P::kNormal), A::kSpill);
  EXPECT_EQ(ladder.action(L::kShedBestEffort, P::kCritical), A::kPlace);
  EXPECT_EQ(ladder.action(L::kCriticalOnly, P::kNormal), A::kShed);
  EXPECT_EQ(ladder.action(L::kCriticalOnly, P::kBestEffort), A::kShed);
  EXPECT_EQ(ladder.action(L::kCriticalOnly, P::kCritical), A::kPlace);
}

TEST(DegradationLadderPolicy, RetryAfterGrowsWithLevelAndPriorityDistance) {
  const DegradationLadder ladder;  // base 4 ms
  EXPECT_EQ(ladder.retry_after_ms(OverloadLevel::kShedBestEffort,
                                  Priority::kBestEffort),
            4u << 4);
  EXPECT_EQ(ladder.retry_after_ms(OverloadLevel::kCriticalOnly,
                                  Priority::kNormal),
            4u << 4);
  EXPECT_EQ(ladder.retry_after_ms(OverloadLevel::kCriticalOnly,
                                  Priority::kBestEffort),
            4u << 5);
  EXPECT_GT(ladder.retry_after_ms(OverloadLevel::kCriticalOnly,
                                  Priority::kBestEffort),
            ladder.retry_after_ms(OverloadLevel::kShedBestEffort,
                                  Priority::kBestEffort));
}

TEST(TenantRegistry, OperatorOverrideOnlyRaisesTheLevel) {
  TenantRegistry registry;
  EXPECT_EQ(registry.effective_level(0.9), OverloadLevel::kNormal);
  registry.set_overload_override(OverloadLevel::kShedBestEffort);
  EXPECT_EQ(registry.effective_level(0.9), OverloadLevel::kShedBestEffort);
  // Measured pressure above the override still wins (max of the two).
  EXPECT_EQ(registry.effective_level(0.01), OverloadLevel::kCriticalOnly);
  registry.set_overload_override(std::nullopt);
  EXPECT_EQ(registry.effective_level(0.9), OverloadLevel::kNormal);
}

// ---------------------------------------------------------------------------
// Backoff helper
// ---------------------------------------------------------------------------

TEST(BackoffHelper, DeterministicPerSeedAndFlooredAtTheHint) {
  BackoffOptions options;
  options.seed = 42;
  Backoff a(options);
  Backoff b(options);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t delay = a.next_delay_ms(16);
    EXPECT_EQ(delay, b.next_delay_ms(16)) << "same seed, same schedule";
    EXPECT_GE(delay, 16u) << "the hint is a floor, never undercut";
    EXPECT_LE(delay, options.max_delay_ms);
  }
}

TEST(BackoffHelper, WindowGrowsThenCapsAndResets) {
  BackoffOptions options;
  options.max_delay_ms = 100;
  Backoff backoff(options);
  // Attempt 3 onward the window (16 * 2^3 = 128) exceeds the 100 ms cap, so
  // every later delay is within [16, 100] regardless of attempts.
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t delay = backoff.next_delay_ms(16);
    EXPECT_GE(delay, 16u);
    EXPECT_LE(delay, 100u);
  }
  EXPECT_EQ(backoff.attempt(), 10u);
  backoff.reset();
  EXPECT_EQ(backoff.attempt(), 0u);
}

TEST(BackoffHelper, ParsesRetryAfterToken) {
  EXPECT_EQ(parse_retry_after_ms("shed ...; retry-after-ms=64"), 64u);
  EXPECT_EQ(parse_retry_after_ms("retry-after-ms=8; extra"), 8u);
  EXPECT_EQ(parse_retry_after_ms("no hint here"), 0u);
}

// ---------------------------------------------------------------------------
// GlobalArbiter
// ---------------------------------------------------------------------------

TEST(GlobalArbiterSlices, WeightsByPriorityAndShareWithDeficitBoost) {
  TenantRegistry registry;
  auto crit = registry.register_tenant("crit", Priority::kCritical);
  auto best = registry.register_tenant("best", Priority::kBestEffort);
  ASSERT_TRUE(crit.ok() && best.ok());

  GlobalArbiter arbiter(registry);
  arbiter.begin_epoch(1, 100);
  ASSERT_EQ(arbiter.slices().size(), 2u);
  // Weights 4 : 1 -> 80 / 20 split.
  EXPECT_EQ(arbiter.slice_remaining((*crit)->id()), 80u);
  EXPECT_EQ(arbiter.slice_remaining((*best)->id()), 20u);

  EXPECT_TRUE(arbiter.try_draw(1, (*crit)->id(), 60));
  EXPECT_EQ(arbiter.slice_remaining((*crit)->id()), 20u);
  EXPECT_FALSE(arbiter.try_draw(1, (*best)->id(), 30)) << "slice is 20";
  EXPECT_EQ(arbiter.stats().draws_denied, 1u);
  EXPECT_EQ(arbiter.stats().bytes_denied, 30u);

  // Untenanted draws and ids the epoch never sliced bypass arbitration.
  EXPECT_TRUE(arbiter.try_draw(1, kNoTenant, 1'000'000));
  EXPECT_TRUE(arbiter.try_draw(1, TenantId{777}, 1'000'000));

  // Next epoch: the denied tenant's weight gets a deficit boost
  // (1 + 30/100 = 1.3), so its slice grows at the other's expense.
  arbiter.begin_epoch(2, 100);
  EXPECT_GT(arbiter.slice_remaining((*best)->id()), 20u);
  EXPECT_LT(arbiter.slice_remaining((*crit)->id()), 80u);
  EXPECT_EQ(arbiter.stats().epochs, 2u);
  EXPECT_FALSE(arbiter.render_log().empty());
}

TEST(GlobalArbiterSlices, UnlimitedPoolMeansUnlimitedSlices) {
  TenantRegistry registry;
  auto t = registry.register_tenant("t", Priority::kNormal);
  ASSERT_TRUE(t.ok());
  GlobalArbiter arbiter(registry);
  arbiter.begin_epoch(1, UINT64_MAX);
  EXPECT_TRUE(arbiter.try_draw(1, (*t)->id(), UINT64_MAX / 2));
  EXPECT_TRUE(arbiter.try_draw(1, (*t)->id(), UINT64_MAX / 2));
  EXPECT_EQ(arbiter.stats().draws_denied, 0u);
}

// ---------------------------------------------------------------------------
// Allocator integration on xeon_clx_1lm
// ---------------------------------------------------------------------------

class TenantAllocTest : public ::testing::Test {
 protected:
  TenantAllocTest()
      : machine_(topo::xeon_clx_1lm()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_) {
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology())).ok());
    allocator_.set_tenant_registry(&tenants_);
  }

  alloc::AllocRequest request(std::uint64_t bytes, TenantHandle tenant,
                              attr::AttrId attribute = attr::kLatency) {
    alloc::AllocRequest r;
    r.bytes = bytes;
    r.attribute = attribute;
    r.initiator = machine_.topology().numa_node(0)->cpuset();
    r.label = "tenant-test";
    r.tenant = std::move(tenant);
    return r;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  alloc::HeterogeneousAllocator allocator_;
  TenantRegistry tenants_;
};

TEST_F(TenantAllocTest, ChargesOnAllocRefundsOnFree) {
  auto t = tenants_.register_tenant("app", Priority::kNormal);
  ASSERT_TRUE(t.ok());
  auto allocation = allocator_.mem_alloc(request(64 * kMiB, *t));
  ASSERT_TRUE(allocation.ok()) << allocation.error().to_string();
  EXPECT_EQ((*t)->used_bytes(), 64 * kMiB);
  EXPECT_EQ((*t)->used_bytes(topo::MemoryKind::kDRAM), 64 * kMiB);
  EXPECT_EQ(allocator_.tenant_of(allocation->buffer), *t);
  EXPECT_EQ((*t)->stats().admitted, 1u);

  ASSERT_TRUE(allocator_.mem_free(allocation->buffer).ok());
  EXPECT_EQ((*t)->used_bytes(), 0u);
  EXPECT_EQ(allocator_.tenant_of(allocation->buffer), nullptr);
}

TEST_F(TenantAllocTest, UntenantedRequestsAreUntouched) {
  auto allocation = allocator_.mem_alloc(request(64 * kMiB, nullptr));
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(allocator_.tenant_of(allocation->buffer), nullptr);
  EXPECT_TRUE(allocator_.mem_free(allocation->buffer).ok());
  EXPECT_EQ(allocator_.stats().backpressure_rejections, 0u);
}

TEST_F(TenantAllocTest, TierCapSpillsDownTheRankingNotFailure) {
  TenantQuota quota;
  quota.tier_cap_bytes[tier_index(topo::MemoryKind::kDRAM)] = kMiB;
  auto t = tenants_.register_tenant("cold", Priority::kNormal, quota);
  ASSERT_TRUE(t.ok());
  // Latency ranks DRAM (node 0) first, but the tenant's DRAM tier cap is
  // full at 1 MiB — the walk must fall through to the local NVDIMM instead
  // of failing the request.
  auto allocation = allocator_.mem_alloc(request(64 * kMiB, *t));
  ASSERT_TRUE(allocation.ok()) << allocation.error().to_string();
  EXPECT_EQ(machine_.topology().numa_node(allocation->node)->memory_kind(),
            topo::MemoryKind::kNVDIMM);
  EXPECT_EQ((*t)->used_bytes(topo::MemoryKind::kNVDIMM), 64 * kMiB);
  EXPECT_EQ((*t)->used_bytes(topo::MemoryKind::kDRAM), 0u);
  EXPECT_TRUE(allocator_.mem_free(allocation->buffer).ok());
}

TEST_F(TenantAllocTest, TotalCapIsQuotaBackpressureWithRetryHint) {
  TenantQuota quota;
  quota.total_cap_bytes = kGiB;
  auto t = tenants_.register_tenant("capped", Priority::kNormal, quota);
  ASSERT_TRUE(t.ok());
  auto refused = allocator_.mem_alloc(request(2 * kGiB, *t));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, Errc::kBackpressure);
  EXPECT_GT(refused.error().retry_after_ms, 0u);
  EXPECT_EQ(parse_retry_after_ms(refused.error().message),
            refused.error().retry_after_ms)
      << refused.error().message;
  EXPECT_NE(refused.error().message.find("total cap"), std::string::npos);

  const auto stats = allocator_.stats();
  EXPECT_EQ(stats.backpressure_quota, 1u);
  EXPECT_EQ(stats.backpressure_rejections,
            stats.backpressure_health + stats.backpressure_quota +
                stats.backpressure_shed);
  EXPECT_EQ((*t)->stats().quota_rejections, 1u);
  EXPECT_EQ((*t)->used_bytes(), 0u) << "failed charge must not leak";
}

TEST_F(TenantAllocTest, StrictTierCapIsQuotaBackpressureToo) {
  TenantQuota quota;
  quota.tier_cap_bytes[tier_index(topo::MemoryKind::kDRAM)] = kMiB;
  auto t = tenants_.register_tenant("strict", Priority::kNormal, quota);
  ASSERT_TRUE(t.ok());
  auto r = request(64 * kMiB, *t);
  r.policy = alloc::Policy::kStrict;
  auto refused = allocator_.mem_alloc(r);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, Errc::kBackpressure);
  EXPECT_NE(refused.error().message.find("tier caps"), std::string::npos);
}

TEST_F(TenantAllocTest, OverrideShedsBestEffortButPlacesCritical) {
  auto best = tenants_.register_tenant("batch", Priority::kBestEffort);
  auto crit = tenants_.register_tenant("db", Priority::kCritical);
  ASSERT_TRUE(best.ok() && crit.ok());
  tenants_.set_overload_override(OverloadLevel::kShedBestEffort);

  auto shed = allocator_.mem_alloc(request(64 * kMiB, *best));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code, Errc::kBackpressure);
  // L2 + best-effort: hint = 4 << (2 + 2) = 64 ms, carried both ways.
  EXPECT_EQ(shed.error().retry_after_ms, 64u);
  EXPECT_EQ(parse_retry_after_ms(shed.error().message), 64u);
  EXPECT_EQ((*best)->stats().shed, 1u);
  EXPECT_EQ(allocator_.stats().backpressure_shed, 1u);

  auto placed = allocator_.mem_alloc(request(64 * kMiB, *crit));
  ASSERT_TRUE(placed.ok()) << placed.error().to_string();
  EXPECT_TRUE(allocator_.mem_free(placed->buffer).ok());
  tenants_.set_overload_override(std::nullopt);
}

TEST_F(TenantAllocTest, DeadlineClampsTheRetryHint) {
  auto best = tenants_.register_tenant("batch", Priority::kBestEffort);
  ASSERT_TRUE(best.ok());
  tenants_.set_overload_override(OverloadLevel::kShedBestEffort);
  auto r = request(64 * kMiB, *best);
  r.deadline_ms = 7;
  auto shed = allocator_.mem_alloc(r);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().retry_after_ms, 7u)
      << "a hint beyond the caller's deadline is useless";
  tenants_.set_overload_override(std::nullopt);
}

TEST_F(TenantAllocTest, SpillSteersBestEffortOffHotNodes) {
  // Fill node 0 past the 90% spill occupancy threshold, then force the
  // spill level: a best-effort latency request must skip the hot DRAM node
  // and land on the other DRAM/NVDIMM target instead.
  auto filler = machine_.allocate(180 * kGiB, 0, "filler");
  ASSERT_TRUE(filler.ok());
  auto best = tenants_.register_tenant("batch", Priority::kBestEffort);
  ASSERT_TRUE(best.ok());
  tenants_.set_overload_override(OverloadLevel::kSpillLowPriority);

  auto allocation = allocator_.mem_alloc(request(64 * kMiB, *best));
  ASSERT_TRUE(allocation.ok()) << allocation.error().to_string();
  EXPECT_NE(allocation->node, 0u) << "hot node must be skipped on pass 0";
  EXPECT_EQ(allocator_.stats().tenant_spills, 1u);
  EXPECT_EQ((*best)->stats().spilled, 1u);

  // A critical tenant at the same level places normally — on the hot node.
  auto crit = tenants_.register_tenant("db", Priority::kCritical);
  ASSERT_TRUE(crit.ok());
  auto direct = allocator_.mem_alloc(request(64 * kMiB, *crit));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->node, 0u);

  EXPECT_TRUE(allocator_.mem_free(allocation->buffer).ok());
  EXPECT_TRUE(allocator_.mem_free(direct->buffer).ok());
  ASSERT_TRUE(machine_.free(*filler).ok());
  tenants_.set_overload_override(std::nullopt);
}

TEST_F(TenantAllocTest, DeregisteredTenantIsRefusedButBuffersRefund) {
  auto t = tenants_.register_tenant("gone", Priority::kNormal);
  ASSERT_TRUE(t.ok());
  auto held = allocator_.mem_alloc(request(64 * kMiB, *t));
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(tenants_.deregister_tenant(*t).ok());

  auto refused = allocator_.mem_alloc(request(kMiB, *t));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, Errc::kInvalidArgument);
  EXPECT_NE(refused.error().message.find("deregistered"), std::string::npos);

  // The outstanding buffer still refunds through the retained handle.
  EXPECT_EQ((*t)->used_bytes(), 64 * kMiB);
  ASSERT_TRUE(allocator_.mem_free(held->buffer).ok());
  EXPECT_EQ((*t)->used_bytes(), 0u);
}

TEST_F(TenantAllocTest, MigrationMovesTheTierCharge) {
  auto t = tenants_.register_tenant("mover", Priority::kNormal);
  ASSERT_TRUE(t.ok());
  auto allocation = allocator_.mem_alloc(request(64 * kMiB, *t));
  ASSERT_TRUE(allocation.ok());
  ASSERT_EQ(machine_.topology().numa_node(allocation->node)->memory_kind(),
            topo::MemoryKind::kDRAM);

  auto cost = allocator_.migrate(allocation->buffer, 2);  // NVDIMM
  ASSERT_TRUE(cost.ok()) << cost.error().to_string();
  EXPECT_EQ((*t)->used_bytes(topo::MemoryKind::kDRAM), 0u);
  EXPECT_EQ((*t)->used_bytes(topo::MemoryKind::kNVDIMM), 64 * kMiB);
  EXPECT_EQ((*t)->used_bytes(), 64 * kMiB);
  ASSERT_TRUE(allocator_.mem_free(allocation->buffer).ok());
  EXPECT_EQ((*t)->used_bytes(), 0u);
}

TEST_F(TenantAllocTest, HybridAndInterleavedRefuseTenantedRequests) {
  auto t = tenants_.register_tenant("split", Priority::kNormal);
  ASSERT_TRUE(t.ok());
  auto hybrid = allocator_.mem_alloc_hybrid(request(64 * kMiB, *t));
  ASSERT_FALSE(hybrid.ok());
  EXPECT_EQ(hybrid.error().code, Errc::kUnsupported);
  auto interleaved = allocator_.mem_alloc_interleaved(request(64 * kMiB, *t), 4);
  ASSERT_FALSE(interleaved.ok());
  EXPECT_EQ(interleaved.error().code, Errc::kUnsupported);
}

TEST_F(TenantAllocTest, EngineTenantDrawGatesOnArbiterSlices) {
  auto crit = tenants_.register_tenant("crit", Priority::kCritical);
  auto best = tenants_.register_tenant("best", Priority::kBestEffort);
  ASSERT_TRUE(crit.ok() && best.ok());
  auto held = allocator_.mem_alloc(request(64 * kMiB, *best));
  ASSERT_TRUE(held.ok());
  auto loose = allocator_.mem_alloc(request(64 * kMiB, nullptr));
  ASSERT_TRUE(loose.ok());

  runtime::EngineOptions options;
  options.epoch_budget_bytes = 100 * kMiB;
  runtime::MigrationEngine engine(
      allocator_, machine_.topology().numa_node(0)->cpuset(), options);
  GlobalArbiter arbiter(tenants_);
  engine.set_arbiter(&arbiter);

  // Weights 4:1 over a 100 MiB pool -> best-effort slice is 20 MiB: a
  // 64 MiB draw for its buffer is denied, while the untenanted buffer
  // bypasses slicing (classic mode unchanged).
  EXPECT_FALSE(engine.tenant_draw(0, held->buffer, 64 * kMiB));
  EXPECT_TRUE(engine.tenant_draw(0, loose->buffer, 64 * kMiB));
  EXPECT_EQ(arbiter.stats().draws_denied, 1u);
  EXPECT_EQ(arbiter.stats().draws_granted, 1u);

  // Without an arbiter the draw is a no-op gate.
  engine.set_arbiter(nullptr);
  EXPECT_TRUE(engine.tenant_draw(0, held->buffer, 64 * kMiB));

  EXPECT_TRUE(allocator_.mem_free(held->buffer).ok());
  EXPECT_TRUE(allocator_.mem_free(loose->buffer).ok());
}

}  // namespace
}  // namespace hetmem::tenant
