#include "hetmem/memattr/memattr.hpp"

#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::attr {
namespace {

using support::Errc;
using support::kGiB;

class MemAttrTest : public ::testing::Test {
 protected:
  MemAttrTest() : topology_(topo::xeon_clx_snc_1lm()), registry_(topology_) {}

  const topo::Object& node(unsigned index) { return *topology_.numa_node(index); }
  Initiator snc0() { return Initiator::from_cpuset(node(0).cpuset()); }

  topo::Topology topology_;
  MemAttrRegistry registry_;
};

TEST_F(MemAttrTest, BuiltinsRegisteredInStableOrder) {
  EXPECT_EQ(registry_.attribute_count(), 10u);
  EXPECT_EQ(registry_.info(kCapacity).name, "Capacity");
  EXPECT_EQ(registry_.info(kLocality).name, "Locality");
  EXPECT_EQ(registry_.info(kBandwidth).name, "Bandwidth");
  EXPECT_EQ(registry_.info(kLatency).name, "Latency");
  EXPECT_EQ(registry_.info(kReadBandwidth).name, "ReadBandwidth");
  EXPECT_EQ(registry_.info(kWriteLatency).name, "WriteLatency");
  EXPECT_EQ(registry_.info(kEnergyPerByte).name, "EnergyPerByte");
  EXPECT_EQ(registry_.info(kStaticPower).name, "StaticPower");
}

TEST_F(MemAttrTest, PolaritiesMatchHwloc) {
  EXPECT_EQ(registry_.info(kCapacity).polarity, Polarity::kHigherFirst);
  EXPECT_EQ(registry_.info(kLocality).polarity, Polarity::kLowerFirst);
  EXPECT_EQ(registry_.info(kBandwidth).polarity, Polarity::kHigherFirst);
  EXPECT_EQ(registry_.info(kLatency).polarity, Polarity::kLowerFirst);
  EXPECT_EQ(registry_.info(kEnergyPerByte).polarity, Polarity::kLowerFirst);
  EXPECT_EQ(registry_.info(kStaticPower).polarity, Polarity::kLowerFirst);
  EXPECT_FALSE(registry_.info(kEnergyPerByte).need_initiator);
  EXPECT_FALSE(registry_.info(kStaticPower).need_initiator);
}

TEST_F(MemAttrTest, CapacityAutoPopulatedFromTopology) {
  auto value = registry_.value(kCapacity, node(0), std::nullopt);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, static_cast<double>(96 * kGiB));
  value = registry_.value(kCapacity, node(2), std::nullopt);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, static_cast<double>(768 * kGiB));
}

TEST_F(MemAttrTest, LocalityAutoPopulatedAsPuCount) {
  auto value = registry_.value(kLocality, node(0), std::nullopt);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 20.0);  // one SNC: 10 cores x 2 PU
  value = registry_.value(kLocality, node(2), std::nullopt);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 40.0);  // package NVDIMM
}

TEST_F(MemAttrTest, FindAttributeByName) {
  auto id = registry_.find_attribute("Latency");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, kLatency);
  EXPECT_FALSE(registry_.find_attribute("NoSuchAttr").ok());
}

TEST_F(MemAttrTest, RegisterCustomAttribute) {
  auto id = registry_.register_attribute("Endurance", Polarity::kHigherFirst,
                                         /*need_initiator=*/false);
  ASSERT_TRUE(id.ok());
  EXPECT_GE(*id, kFirstCustomAttr);
  EXPECT_TRUE(registry_.set_value(*id, node(2), std::nullopt, 1e6).ok());
  auto value = registry_.value(*id, node(2), std::nullopt);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 1e6);
}

TEST_F(MemAttrTest, DuplicateAttributeNameRejected) {
  ASSERT_TRUE(registry_
                  .register_attribute("Power", Polarity::kLowerFirst, false)
                  .ok());
  auto dup = registry_.register_attribute("Power", Polarity::kLowerFirst, false);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, Errc::kAlreadyExists);
  EXPECT_FALSE(registry_.register_attribute("", Polarity::kLowerFirst, false).ok());
}

TEST_F(MemAttrTest, SetValueValidation) {
  // Per-initiator attribute without initiator.
  EXPECT_FALSE(registry_.set_value(kBandwidth, node(0), std::nullopt, 1.0).ok());
  // Global attribute with initiator.
  EXPECT_FALSE(registry_.set_value(kCapacity, node(0), snc0(), 1.0).ok());
  // Non-NUMA target.
  EXPECT_FALSE(
      registry_.set_value(kCapacity, topology_.root(), std::nullopt, 1.0).ok());
  // Unknown attribute id.
  EXPECT_FALSE(registry_.set_value(999, node(0), std::nullopt, 1.0).ok());
}

TEST_F(MemAttrTest, SetValueOverwritesSameInitiator) {
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 100.0).ok());
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 90.0).ok());
  auto value = registry_.value(kLatency, node(0), snc0());
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 90.0);
  EXPECT_EQ(registry_.initiators(kLatency, node(0)).size(), 1u);
}

TEST_F(MemAttrTest, ValueMissingIsNotFound) {
  auto value = registry_.value(kLatency, node(0), snc0());
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.error().code, Errc::kNotFound);
}

TEST_F(MemAttrTest, InitiatorMatchingPrefersExactThenContaining) {
  const auto group = snc0();
  support::Bitmap one_pu;
  one_pu.set(*node(0).cpuset().first());
  const auto pu = Initiator::from_cpuset(one_pu);

  // Store a value for the whole group: a single-PU query matches it
  // (smallest containing locality).
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), group, 80.0).ok());
  auto value = registry_.value(kLatency, node(0), pu);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 80.0);

  // An exact single-PU value wins over the containing one.
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), pu, 70.0).ok());
  value = registry_.value(kLatency, node(0), pu);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 70.0);
  // The group query still sees the group value.
  value = registry_.value(kLatency, node(0), group);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 80.0);
}

TEST_F(MemAttrTest, InitiatorMatchingFallsBackToLargestIntersection) {
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 80.0).ok());
  // Initiator straddling SNC0 and SNC1: neither exact nor contained, but it
  // intersects the stored locality.
  support::Bitmap straddle = node(0).cpuset() | node(1).cpuset();
  auto value =
      registry_.value(kLatency, node(0), Initiator::from_cpuset(straddle));
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 80.0);
}

TEST_F(MemAttrTest, BestTargetByCapacityIsNvdimm) {
  auto best = registry_.best_target(kCapacity, snc0());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->target->memory_kind(), topo::MemoryKind::kNVDIMM);
}

TEST_F(MemAttrTest, BestTargetByLocalityIsSncDram) {
  auto best = registry_.best_target(kLocality, snc0());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->target->logical_index(), 0u);
}

TEST_F(MemAttrTest, BestTargetByLatencyUsesStoredValues) {
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 285.0).ok());
  ASSERT_TRUE(registry_.set_value(kLatency, node(2), snc0(), 860.0).ok());
  auto best = registry_.best_target(kLatency, snc0());
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->target->logical_index(), 0u);
  EXPECT_DOUBLE_EQ(best->value, 285.0);
}

TEST_F(MemAttrTest, BestTargetNotFoundWithoutValues) {
  auto best = registry_.best_target(kLatency, snc0());
  ASSERT_FALSE(best.ok());
  EXPECT_EQ(best.error().code, Errc::kNotFound);
}

TEST_F(MemAttrTest, TargetsRankedOrderAndOmission) {
  ASSERT_TRUE(registry_.set_value(kBandwidth, node(0), snc0(), 8e10).ok());
  ASSERT_TRUE(registry_.set_value(kBandwidth, node(2), snc0(), 1e10).ok());
  auto ranked = registry_.targets_ranked(kBandwidth, snc0());
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].target->logical_index(), 0u);
  EXPECT_EQ(ranked[1].target->logical_index(), 2u);
  EXPECT_GT(ranked[0].value, ranked[1].value);
}

TEST_F(MemAttrTest, RankedTieKeepsLogicalOrder) {
  const auto package = Initiator::from_cpuset(node(2).cpuset());
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), package, 100.0).ok());
  ASSERT_TRUE(registry_.set_value(kLatency, node(1), package, 100.0).ok());
  auto ranked = registry_.targets_ranked(kLatency, package);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].target->logical_index(), 0u);
  EXPECT_EQ(ranked[1].target->logical_index(), 1u);
}

TEST_F(MemAttrTest, BestInitiatorFindsFastestAccessor) {
  const auto snc0_init = snc0();
  const auto snc1_init = Initiator::from_cpuset(node(1).cpuset());
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0_init, 285.0).ok());
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc1_init, 400.0).ok());
  auto best = registry_.best_initiator(kLatency, node(0));
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(best->initiator == node(0).cpuset());
  EXPECT_DOUBLE_EQ(best->value, 285.0);
}

TEST_F(MemAttrTest, BestInitiatorErrorsOnGlobalAttr) {
  EXPECT_FALSE(registry_.best_initiator(kCapacity, node(0)).ok());
  EXPECT_FALSE(registry_.best_initiator(kLatency, node(0)).ok());  // no values
}

TEST_F(MemAttrTest, HasValues) {
  EXPECT_TRUE(registry_.has_values(kCapacity));
  EXPECT_FALSE(registry_.has_values(kLatency));
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 285.0).ok());
  EXPECT_TRUE(registry_.has_values(kLatency));
}

TEST_F(MemAttrTest, AttributeFallbackChain) {
  // ReadBandwidth empty, Bandwidth empty -> error.
  EXPECT_FALSE(registry_.resolve_with_fallback(kReadBandwidth).ok());
  // Bandwidth populated -> ReadBandwidth resolves to Bandwidth.
  ASSERT_TRUE(registry_.set_value(kBandwidth, node(0), snc0(), 8e10).ok());
  auto resolved = registry_.resolve_with_fallback(kReadBandwidth);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, kBandwidth);
  // Once ReadBandwidth itself has values it resolves to itself.
  ASSERT_TRUE(registry_.set_value(kReadBandwidth, node(0), snc0(), 9e10).ok());
  resolved = registry_.resolve_with_fallback(kReadBandwidth);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, kReadBandwidth);
  // Capacity has no chain but has values.
  resolved = registry_.resolve_with_fallback(kCapacity);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, kCapacity);
}

TEST_F(MemAttrTest, LatencyFallbackChain) {
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 285.0).ok());
  auto resolved = registry_.resolve_with_fallback(kWriteLatency);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, kLatency);
}

TEST_F(MemAttrTest, ValuePersistenceRoundTrip) {
  // Populate a mix of built-in and custom values...
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 285.5).ok());
  ASSERT_TRUE(registry_.set_value(kBandwidth, node(2), snc0(), 1.05e10).ok());
  auto custom = registry_.register_attribute("Endurance",
                                             Polarity::kHigherFirst, false);
  ASSERT_TRUE(custom.ok());
  ASSERT_TRUE(registry_.set_value(*custom, node(2), std::nullopt, 1e6).ok());

  // ...serialize, reload into a fresh registry for the same topology...
  const std::string text = serialize_values(registry_);
  MemAttrRegistry restored(topology_);
  auto status = load_values(restored, text);
  ASSERT_TRUE(status.ok()) << status.error().to_string() << "\n" << text;

  // ...and get the same values, including the re-registered custom attr.
  auto latency = restored.value(kLatency, node(0), snc0());
  ASSERT_TRUE(latency.ok());
  EXPECT_NEAR(*latency, 285.5, 1e-6);
  auto bandwidth = restored.value(kBandwidth, node(2), snc0());
  ASSERT_TRUE(bandwidth.ok());
  EXPECT_NEAR(*bandwidth, 1.05e10, 1.0);
  auto endurance_id = restored.find_attribute("Endurance");
  ASSERT_TRUE(endurance_id.ok());
  auto endurance = restored.value(*endurance_id, node(2), std::nullopt);
  ASSERT_TRUE(endurance.ok());
  EXPECT_NEAR(*endurance, 1e6, 1e-3);
  EXPECT_EQ(restored.info(*endurance_id).polarity, Polarity::kHigherFirst);
}

TEST_F(MemAttrTest, LoadValuesRejectsMalformedInput) {
  MemAttrRegistry fresh(topology_);
  EXPECT_FALSE(load_values(fresh, "value attr=Latency target=0 v=1\n").ok());
  const char* header = "# hetmem-memattrs v1\n";
  EXPECT_FALSE(
      load_values(fresh, std::string(header) + "bogus record\n").ok());
  EXPECT_FALSE(load_values(fresh, std::string(header) +
                                      "value attr=NoSuch target=0 v=1\n")
                   .ok());
  EXPECT_FALSE(load_values(fresh, std::string(header) +
                                      "value attr=Capacity target=99 v=1\n")
                   .ok());
  EXPECT_FALSE(load_values(fresh, std::string(header) +
                                      "value attr=Capacity target=0 v=xyz\n")
                   .ok());
  // Per-initiator value without initiator: set_value rejects it.
  EXPECT_FALSE(load_values(fresh, std::string(header) +
                                      "value attr=Latency target=0 v=5\n")
                   .ok());
}

TEST_F(MemAttrTest, PersistedRankingsMatchOriginal) {
  // The use-case: probe once, persist, reload on the next run, allocate
  // with identical decisions.
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 285.0).ok());
  ASSERT_TRUE(registry_.set_value(kLatency, node(2), snc0(), 860.0).ok());
  MemAttrRegistry restored(topology_);
  ASSERT_TRUE(load_values(restored, serialize_values(registry_)).ok());
  auto original = registry_.targets_ranked(kLatency, snc0());
  auto reloaded = restored.targets_ranked(kLatency, snc0());
  ASSERT_EQ(original.size(), reloaded.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].target, reloaded[i].target);
  }
}

TEST_F(MemAttrTest, ReportListsPopulatedAttributesOnly) {
  ASSERT_TRUE(registry_.set_value(kLatency, node(0), snc0(), 26.0).ok());
  const std::string report = memattrs_report(registry_);
  EXPECT_NE(report.find("name 'Capacity'"), std::string::npos);
  EXPECT_NE(report.find("name 'Latency'"), std::string::npos);
  EXPECT_EQ(report.find("name 'ReadBandwidth'"), std::string::npos);
  EXPECT_NE(report.find("NUMANode L#0 = 26"), std::string::npos);
}

}  // namespace
}  // namespace hetmem::attr
