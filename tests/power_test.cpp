// Power-aware placement (docs/POWER.md): per-tier power models and draw
// telemetry on SimMachine, the kEnergyPerByte/kStaticPower attributes, the
// RankingComposition algebra the registry and governor share, and the
// PowerGovernor's idle/enforce/drain/throttle regimes — including the
// regression pinning an idle governor to byte-identical rankings and an
// unchurned ranking cache. The PowerConcurrencyTest suite runs under the CI
// TSan lane: telemetry writers race draw readers and the cap knob.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/health/health.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/compose.hpp"
#include "hetmem/power/governor.hpp"
#include "hetmem/power/power.hpp"
#include "hetmem/runtime/engine.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem {
namespace {

using support::kGiB;
using support::kMiB;

// ---------------------------------------------------------------------------
// NodePowerModel defaults and calibration
// ---------------------------------------------------------------------------

TEST(PowerModelTest, KindDefaultsCoverEveryKind) {
  for (topo::MemoryKind kind :
       {topo::MemoryKind::kDRAM, topo::MemoryKind::kHBM,
        topo::MemoryKind::kNVDIMM, topo::MemoryKind::kNAM,
        topo::MemoryKind::kGPU}) {
    const sim::NodePowerModel power =
        sim::MachinePerfModel::power_kind_defaults(kind);
    EXPECT_GT(power.read_nj_per_byte, 0.0);
    EXPECT_GT(power.write_nj_per_byte, 0.0);
    EXPECT_GT(power.static_w_per_gib, 0.0);
  }
  // The calibration must preserve the trades the subsystem exists for:
  // Optane's write-expensive asymmetry and HBM costing more per byte than
  // DDR4 (the bandwidth-vs-power Pareto premise).
  const auto nvdimm =
      sim::MachinePerfModel::power_kind_defaults(topo::MemoryKind::kNVDIMM);
  EXPECT_GT(nvdimm.write_nj_per_byte, 2.0 * nvdimm.read_nj_per_byte);
  const auto dram =
      sim::MachinePerfModel::power_kind_defaults(topo::MemoryKind::kDRAM);
  const auto hbm =
      sim::MachinePerfModel::power_kind_defaults(topo::MemoryKind::kHBM);
  EXPECT_GT(hbm.read_nj_per_byte, dram.read_nj_per_byte);
  EXPECT_GT(hbm.static_w_per_gib, dram.static_w_per_gib);
}

TEST(PowerModelTest, CalibratedForFillsEveryNode) {
  const topo::Topology topology = topo::fictitious_fig3();
  const sim::MachinePerfModel model =
      sim::MachinePerfModel::calibrated_for(topology);
  for (const topo::Object* node : topology.numa_nodes()) {
    const sim::NodePowerModel& power = model.node_power(node->logical_index());
    EXPECT_GT(power.read_nj_per_byte, 0.0) << "node " << node->logical_index();
    EXPECT_GT(power.static_w_per_gib, 0.0) << "node " << node->logical_index();
  }
}

// ---------------------------------------------------------------------------
// SimMachine power telemetry
// ---------------------------------------------------------------------------

class PowerTelemetryTest : public ::testing::Test {
 protected:
  PowerTelemetryTest() : machine_(topo::knl_snc4_flat()) {}

  double static_floor(unsigned node) const {
    const sim::NodePowerModel& power = machine_.perf_model().node_power(node);
    return power.static_w_per_gib *
           (static_cast<double>(machine_.capacity_bytes(node)) /
            static_cast<double>(kGiB));
  }

  sim::SimMachine machine_;
};

TEST_F(PowerTelemetryTest, IdleMachineReportsStaticFloor) {
  for (unsigned node = 0; node < machine_.topology().numa_nodes().size();
       ++node) {
    EXPECT_DOUBLE_EQ(machine_.power_draw_watts(node), static_floor(node));
  }
  EXPECT_DOUBLE_EQ(machine_.power_draw_watts(9999), 0.0);
}

TEST_F(PowerTelemetryTest, TrafficRaisesDrawAndEmaSmoothsIt) {
  const sim::NodePowerModel& power = machine_.perf_model().node_power(0);
  // 1 GB read over 1 s: instantaneous dynamic watts = bytes * nJ/B / ns.
  machine_.record_node_traffic(0, 1'000'000'000ull, 0, 1e9);
  const double expected = 1e9 * power.read_nj_per_byte / 1e9;
  EXPECT_NEAR(machine_.power_draw_watts(0), static_floor(0) + expected, 1e-9);
  // An idle interval halves the EMA instead of zeroing it.
  machine_.record_node_traffic(0, 0, 0, 1e9);
  EXPECT_NEAR(machine_.power_draw_watts(0), static_floor(0) + expected / 2.0,
              1e-9);
  // Writes are charged at the write energy.
  machine_.record_node_traffic(1, 0, 2'000'000'000ull, 1e9);
  const sim::NodePowerModel& power1 = machine_.perf_model().node_power(1);
  EXPECT_NEAR(machine_.power_draw_watts(1),
              static_floor(1) + 2.0 * power1.write_nj_per_byte, 1e-9);
}

TEST_F(PowerTelemetryTest, ThrottleReportsAccumulateInTelemetry) {
  EXPECT_EQ(machine_.node_telemetry(2).thermal_throttle_events, 0u);
  machine_.report_thermal_throttle(2);
  machine_.report_thermal_throttle(2);
  EXPECT_EQ(machine_.node_telemetry(2).thermal_throttle_events, 2u);
  machine_.report_thermal_throttle(9999);  // out of range: ignored
}

TEST_F(PowerTelemetryTest, PowerCapDefaultsToUncapped) {
  EXPECT_DOUBLE_EQ(machine_.power_cap_watts(), 0.0);
  machine_.set_power_cap_watts(123.5);
  EXPECT_DOUBLE_EQ(machine_.power_cap_watts(), 123.5);
}

TEST_F(PowerTelemetryTest, InjectedThrottleFaultFeedsTelemetry) {
  fault::FaultInjector injector(7);
  injector.configure(fault::site::kMachinePowerThrottle,
                     fault::FaultSpec{.probability = 1.0});
  machine_.set_fault_injector(&injector);
  machine_.sample_node_faults(0);
  EXPECT_EQ(machine_.node_telemetry(0).thermal_throttle_events, 1u);
  // Not armed by any preset: power chaos is opt-in (docs/POWER.md).
  for (const char* preset : fault::FaultInjector::preset_names()) {
    fault::FaultInjector canned = fault::FaultInjector::preset(preset, 11);
    for (int i = 0; i < 500; ++i) {
      EXPECT_FALSE(canned.should_fail(fault::site::kMachinePowerThrottle))
          << preset;
    }
  }
}

// ---------------------------------------------------------------------------
// feed_registry
// ---------------------------------------------------------------------------

TEST(PowerFeedTest, PublishesEnergyAndStaticPowerPerNode) {
  sim::SimMachine machine(topo::fictitious_fig3());
  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(power::feed_registry(registry, machine).ok());
  for (const topo::Object* node : machine.topology().numa_nodes()) {
    const sim::NodePowerModel& power =
        machine.perf_model().node_power(node->logical_index());
    auto energy = registry.value(attr::kEnergyPerByte, *node, std::nullopt);
    ASSERT_TRUE(energy.ok());
    EXPECT_DOUBLE_EQ(
        *energy, (power.read_nj_per_byte + power.write_nj_per_byte) / 2.0);
    auto static_w = registry.value(attr::kStaticPower, *node, std::nullopt);
    ASSERT_TRUE(static_w.ok());
    EXPECT_DOUBLE_EQ(*static_w,
                     power.static_w_per_gib *
                         (static_cast<double>(node->capacity_bytes()) /
                          static_cast<double>(kGiB)));
  }
  // Lower-first ranking: the cheapest-energy tier leads. On fictitious_fig3
  // that is DRAM (0.125 nJ/B) ahead of HBM/NVDIMM/NAM.
  const attr::Initiator initiator = attr::Initiator::from_cpuset(
      machine.topology().numa_node(0)->cpuset());
  const auto ranked = registry.targets_ranked(attr::kEnergyPerByte, initiator,
                                              topo::LocalityFlags::kAll);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().target->memory_kind(), topo::MemoryKind::kDRAM);
  EXPECT_EQ(ranked.back().target->memory_kind(), topo::MemoryKind::kNAM);
}

// ---------------------------------------------------------------------------
// RankingComposition
// ---------------------------------------------------------------------------

class ComposeTest : public ::testing::Test {
 protected:
  ComposeTest() : topology_(topo::xeon_clx_1lm()) {}

  attr::RankCandidate candidate(unsigned node, double value,
                                attr::Confidence confidence =
                                    attr::Confidence::kTrusted,
                                health::PlacementVerdict verdict =
                                    health::PlacementVerdict::kNormal) {
    attr::RankCandidate c;
    c.target = topology_.numa_node(node);
    c.value = value;
    c.confidence = confidence;
    c.verdict = verdict;
    return c;
  }

  static std::vector<unsigned> order(
      const std::vector<attr::TargetValue>& ranked) {
    std::vector<unsigned> indices;
    for (const attr::TargetValue& tv : ranked) {
      indices.push_back(tv.target->logical_index());
    }
    return indices;
  }

  topo::Topology topology_;
};

TEST_F(ComposeTest, LayersDominateValueOrder) {
  // Quarantined node 0 carries the best value but sinks below the others.
  const std::vector<attr::RankCandidate> candidates = {
      candidate(0, 100.0, attr::Confidence::kTrusted,
                health::PlacementVerdict::kDeprioritize),
      candidate(1, 10.0),
      candidate(2, 50.0),
  };
  auto ranked = attr::RankingComposition::standard(
                    attr::Polarity::kHigherFirst, /*confidence_aware=*/false)
                    .compose(candidates);
  EXPECT_EQ(order(ranked), (std::vector<unsigned>{2, 1, 0}));
}

TEST_F(ComposeTest, ExcludedCandidatesAreDropped) {
  const std::vector<attr::RankCandidate> candidates = {
      candidate(0, 100.0, attr::Confidence::kTrusted,
                health::PlacementVerdict::kExclude),
      candidate(1, 10.0),
  };
  auto ranked = attr::RankingComposition::standard(
                    attr::Polarity::kHigherFirst, false)
                    .compose(candidates);
  EXPECT_EQ(order(ranked), (std::vector<unsigned>{1}));
}

TEST_F(ComposeTest, ConfidenceLayerSplitsWithinQuarantineBuckets) {
  const std::vector<attr::RankCandidate> candidates = {
      candidate(0, 1.0, attr::Confidence::kNoisy),
      candidate(1, 2.0, attr::Confidence::kTrusted),
      candidate(2, 3.0, attr::Confidence::kTrusted,
                health::PlacementVerdict::kDeprioritize),
      candidate(3, 4.0, attr::Confidence::kStale,
                health::PlacementVerdict::kDeprioritize),
  };
  auto ranked = attr::RankingComposition::standard(
                    attr::Polarity::kHigherFirst, /*confidence_aware=*/true)
                    .compose(candidates);
  // trusted, untrusted, trusted-quarantined, untrusted-quarantined.
  EXPECT_EQ(order(ranked), (std::vector<unsigned>{1, 0, 2, 3}));
}

TEST_F(ComposeTest, ObjectiveReplacesSortKeyButNotReportedValue) {
  const std::vector<attr::RankCandidate> candidates = {
      candidate(0, 100.0),
      candidate(1, 10.0),
  };
  auto composition = attr::RankingComposition::standard(
      attr::Polarity::kHigherFirst, false);
  // Invert the order: lower raw value wins under the objective.
  composition.set_objective(
      [](const attr::RankCandidate& c) { return -c.value; },
      attr::Polarity::kHigherFirst);
  auto ranked = composition.compose(candidates);
  EXPECT_EQ(order(ranked), (std::vector<unsigned>{1, 0}));
  EXPECT_DOUBLE_EQ(ranked.front().value, 10.0)
      << "TargetValue must report the raw attribute value, not the key";
}

TEST_F(ComposeTest, StableOnTies) {
  const std::vector<attr::RankCandidate> candidates = {
      candidate(2, 5.0), candidate(0, 5.0), candidate(1, 5.0)};
  auto ranked = attr::RankingComposition::standard(
                    attr::Polarity::kHigherFirst, false)
                    .compose(candidates);
  EXPECT_EQ(order(ranked), (std::vector<unsigned>{2, 0, 1}))
      << "ties must keep input (topology) order";
}

TEST(ComposePropertyTest, RegistryRankingsEqualComposedCandidates) {
  // The registry's own rankings must be exactly standard() over its own
  // candidates — the refactor's no-behavior-change contract.
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology())).ok());
  const attr::Initiator initiator = attr::Initiator::from_cpuset(
      machine.topology().numa_node(0)->cpuset());
  for (attr::AttrId attr : {attr::kCapacity, attr::kBandwidth, attr::kLatency,
                            attr::kReadBandwidth, attr::kWriteLatency}) {
    const auto candidates = registry.rank_candidates(
        attr, initiator, topo::LocalityFlags::kIntersecting);
    const auto composed =
        attr::RankingComposition::standard(registry.info(attr).polarity,
                                           /*confidence_aware=*/false)
            .compose(candidates);
    const auto ranked = registry.targets_ranked(
        attr, initiator, topo::LocalityFlags::kIntersecting);
    ASSERT_EQ(composed.size(), ranked.size()) << "attr " << attr;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      EXPECT_EQ(composed[i].target, ranked[i].target) << "attr " << attr;
      EXPECT_DOUBLE_EQ(composed[i].value, ranked[i].value) << "attr " << attr;
    }
  }
}

// ---------------------------------------------------------------------------
// PowerGovernor
// ---------------------------------------------------------------------------

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest()
      : machine_(topo::knl_snc4_flat()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_),
        initiator_(machine_.topology().numa_node(0)->cpuset()),
        engine_(allocator_, initiator_, {}) {
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology())).ok());
    EXPECT_TRUE(power::feed_registry(registry_, machine_).ok());
  }

  unsigned hbm_node() const {
    for (const topo::Object* node : machine_.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kHBM) {
        return node->logical_index();
      }
    }
    return 0;
  }

  double machine_static_floor() const {
    double total = 0.0;
    for (const topo::Object* node : machine_.topology().numa_nodes()) {
      const unsigned idx = node->logical_index();
      total += machine_.power_draw_watts(idx);
    }
    return total;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  alloc::HeterogeneousAllocator allocator_;
  support::Bitmap initiator_;
  runtime::MigrationEngine engine_;
};

TEST_F(GovernorTest, IdleGovernorIsByteIdenticalAndCacheFriendly) {
  power::PowerGovernor governor(allocator_, engine_, initiator_);
  ASSERT_DOUBLE_EQ(machine_.power_cap_watts(), 0.0);

  const attr::Initiator initiator = attr::Initiator::from_cpuset(initiator_);
  const auto plain = registry_.targets_ranked(attr::kBandwidth, initiator);
  const std::uint64_t generation_before = registry_.generation();

  // Warm the cache slot once, then measure: every placement_ranking and
  // run_epoch of an idle governor must be invisible to the cache.
  (void)governor.placement_ranking(attr::kBandwidth);
  registry_.reset_ranking_cache_stats();
  for (int i = 0; i < 20000; ++i) {
    (void)governor.run_epoch(static_cast<std::uint64_t>(i), 4);
    const auto ranked = governor.placement_ranking(attr::kBandwidth);
    ASSERT_EQ(ranked.size(), plain.size());
    for (std::size_t j = 0; j < ranked.size(); ++j) {
      ASSERT_EQ(ranked[j].target, plain[j].target);
      ASSERT_DOUBLE_EQ(ranked[j].value, plain[j].value);
    }
  }
  EXPECT_EQ(registry_.generation(), generation_before)
      << "idle governor must not churn ranking generations";
  const attr::RankingCacheStats stats = registry_.ranking_cache_stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_GE(stats.hit_rate(), 0.9999);
  EXPECT_EQ(governor.stats().epochs, 0u) << "no cap: the governor idles";
}

TEST_F(GovernorTest, NearCapRankingPrefersBandwidthPerWatt) {
  power::PowerGovernor governor(allocator_, engine_, initiator_);
  // knl_snc4_flat cluster 0: DRAM node (32 GB/s, cheap) + HBM node
  // (90 GB/s, power-hungry). Under bandwidth the HBM leads; per watt the
  // DRAM wins: 32e9 B/s costs ~0.1W/GiB*24GiB + 32e9*0.125nJ = 2.4+4.0 = 6.4 W
  // (5.0 GB/s/W) vs HBM 0.35*4 + 90e9*0.265e-9 = 1.4+23.9 = 25.3 W (3.6).
  machine_.set_power_cap_watts(1.0);  // any draw is over 100% of this cap
  ASSERT_TRUE(governor.near_cap());
  const auto aware = governor.placement_ranking(attr::kBandwidth);
  ASSERT_GE(aware.size(), 2u);
  EXPECT_EQ(aware.front().target->memory_kind(), topo::MemoryKind::kDRAM);

  const auto plain = registry_.targets_ranked(
      attr::kBandwidth, attr::Initiator::from_cpuset(initiator_));
  EXPECT_EQ(plain.front().target->memory_kind(), topo::MemoryKind::kHBM)
      << "plain bandwidth ranking must still prefer the HBM";
}

TEST_F(GovernorTest, OverCapDrainsOffenderTowardEfficientTargets) {
  const unsigned hbm = hbm_node();
  auto buffer = machine_.allocate(kGiB, hbm, "power.hot", 4096);
  ASSERT_TRUE(buffer.ok());
  // Sustained heavy traffic on the HBM node pushes machine draw over a cap
  // set just above the static floor.
  for (int i = 0; i < 4; ++i) {
    machine_.record_node_traffic(hbm, 50'000'000'000ull, 10'000'000'000ull,
                                 1e9);
  }
  machine_.set_power_cap_watts(machine_static_floor() - 5.0);

  power::PowerGovernor governor(allocator_, engine_, initiator_);
  const double paid = governor.run_epoch(1, 4);
  EXPECT_GT(paid, 0.0) << "drain cost must be charged";
  EXPECT_EQ(governor.stats().drained_buffers, 1u);
  EXPECT_EQ(machine_.info(*buffer).node,
            machine_.topology().numa_node(machine_.info(*buffer).node)
                ->logical_index());
  EXPECT_NE(machine_.info(*buffer).node, hbm) << "buffer must leave the HBM";
  EXPECT_EQ(machine_.topology()
                .numa_node(machine_.info(*buffer).node)
                ->memory_kind(),
            topo::MemoryKind::kDRAM)
      << "energy ranking sends the drain to the cheapest-energy tier";
  EXPECT_FALSE(governor.render_log().empty());
}

TEST_F(GovernorTest, SustainedOverCapThrottlesQuarantinesThenRecovers) {
  // Fill every node so drains have nowhere to go: the offender stays the
  // offender and sustained pressure must escalate to throttle events.
  std::vector<unsigned> nodes;
  for (const topo::Object* node : machine_.topology().numa_nodes()) {
    const unsigned idx = node->logical_index();
    const std::uint64_t fill = machine_.available_bytes(idx) - kMiB;
    ASSERT_TRUE(machine_.allocate(fill, idx, "power.fill", 4096).ok());
    nodes.push_back(idx);
  }
  const unsigned hbm = hbm_node();
  for (int i = 0; i < 4; ++i) {
    machine_.record_node_traffic(hbm, 80'000'000'000ull, 20'000'000'000ull,
                                 1e9);
  }
  machine_.set_power_cap_watts(1.0);  // unreachable: pressure never clears

  health::HealthMonitor monitor(machine_, registry_);
  power::PowerGovernor governor(allocator_, engine_, initiator_,
                                power::GovernorOptions{.throttle_after_epochs = 2});

  // Offender = the HBM node (largest draw with live buffers). Epochs 1-2
  // build the streak, 3+ report throttle events.
  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
    (void)governor.run_epoch(epoch, 4);
    monitor.poll();
  }
  EXPECT_GT(governor.stats().throttle_events, 0u);
  EXPECT_GT(machine_.node_telemetry(hbm).thermal_throttle_events, 0u);
  EXPECT_EQ(monitor.state(hbm), health::HealthState::kQuarantined);
  EXPECT_NE(monitor.quarantine().verdict(hbm),
            health::PlacementVerdict::kNormal)
      << "throttled node must take the quarantine-sink path";

  // Lift the cap: the governor idles, throttle evidence stops, and the
  // ordinary clean-streak hysteresis walks the node back to healthy.
  machine_.set_power_cap_watts(0.0);
  for (int i = 0; i < 12 && monitor.state(hbm) != health::HealthState::kHealthy;
       ++i) {
    monitor.poll();
  }
  EXPECT_EQ(monitor.state(hbm), health::HealthState::kHealthy);
  EXPECT_EQ(monitor.quarantine().verdict(hbm),
            health::PlacementVerdict::kNormal);
}

TEST_F(GovernorTest, DrainRespectsSharedEpochBudget) {
  const unsigned hbm = hbm_node();
  ASSERT_TRUE(machine_.allocate(kGiB, hbm, "power.a", 4096).ok());
  ASSERT_TRUE(machine_.allocate(kGiB, hbm, "power.b", 4096).ok());
  for (int i = 0; i < 4; ++i) {
    machine_.record_node_traffic(hbm, 50'000'000'000ull, 10'000'000'000ull,
                                 1e9);
  }
  machine_.set_power_cap_watts(1.0);

  runtime::EngineOptions options;
  options.epoch_budget_bytes = kGiB;  // room for exactly one of the two
  runtime::MigrationEngine tight(allocator_, initiator_, options);
  power::PowerGovernor governor(allocator_, tight, initiator_);
  (void)governor.run_epoch(1, 4);
  EXPECT_EQ(governor.stats().drained_buffers, 1u)
      << "the shared engine budget must gate the governor's drains";
  bool saw_budget_verdict = false;
  for (const power::PowerDecision& decision : governor.decisions()) {
    if (decision.verdict == power::PowerVerdict::kBudgetExhausted) {
      saw_budget_verdict = true;
    }
  }
  EXPECT_TRUE(saw_budget_verdict);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan lane: suite name carries "Concurrency")
// ---------------------------------------------------------------------------

TEST(PowerConcurrencyTest, TelemetryWritersRaceDrawReadersCleanly) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const unsigned nodes =
      static_cast<unsigned>(machine.topology().numa_nodes().size());
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&machine, nodes, w] {
      for (int i = 0; i < 4000; ++i) {
        machine.record_node_traffic((i + w) % nodes, 1'000'000ull, 500'000ull,
                                    1e6);
        machine.report_thermal_throttle(static_cast<unsigned>(i) % nodes);
      }
    });
  }
  threads.emplace_back([&machine] {
    for (int i = 0; i < 2000; ++i) {
      machine.set_power_cap_watts(static_cast<double>(i % 100));
    }
  });
  std::atomic<double> sink{0.0};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&machine, &stop, &sink, nodes] {
      double local = 0.0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (unsigned node = 0; node < nodes; ++node) {
          local += machine.power_draw_watts(node);
          local += static_cast<double>(
              machine.node_telemetry(node).thermal_throttle_events);
        }
      }
      sink.store(local, std::memory_order_relaxed);
    });
  }
  for (int w = 0; w < 3; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  for (std::size_t t = 3; t < threads.size(); ++t) threads[t].join();
  for (unsigned node = 0; node < nodes; ++node) {
    EXPECT_GE(machine.power_draw_watts(node), 0.0);
  }
}

}  // namespace
}  // namespace hetmem
