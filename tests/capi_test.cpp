// C API tests: the hwloc-shaped interface, exercised the way a C runtime
// would use it (string cpusets, integer handles, negative-error returns).
#include "hetmem/capi.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace {

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = hetmem_context_create("xeon_clx_1lm");
    ASSERT_NE(ctx_, nullptr);
  }
  void TearDown() override { hetmem_context_destroy(ctx_); }

  hetmem_context* ctx_ = nullptr;
  const char* kPackage0 = "0-39";  // socket 0's PUs on xeon_clx_1lm
};

TEST(CapiLifecycle, UnknownPresetReturnsNull) {
  EXPECT_EQ(hetmem_context_create("no-such-machine"), nullptr);
  EXPECT_EQ(hetmem_context_create(nullptr), nullptr);
}

TEST(CapiLifecycle, ListPresets) {
  const int total = hetmem_list_presets(nullptr, 0);
  ASSERT_GE(total, 8);
  std::vector<const char*> names(static_cast<size_t>(total));
  EXPECT_EQ(hetmem_list_presets(names.data(), names.size()), total);
  bool found = false;
  for (const char* name : names) found |= std::strcmp(name, "knl_snc4_flat") == 0;
  EXPECT_TRUE(found);
  // Every listed preset constructs.
  for (const char* name : names) {
    hetmem_context* ctx = hetmem_context_create(name);
    ASSERT_NE(ctx, nullptr) << name;
    hetmem_context_destroy(ctx);
  }
}

TEST(CapiLifecycle, DestroyNullIsSafe) { hetmem_context_destroy(nullptr); }

TEST_F(CapiTest, TopologyQueries) {
  EXPECT_EQ(hetmem_numa_count(ctx_), 4);
  EXPECT_EQ(hetmem_pu_count(ctx_), 80);
  EXPECT_EQ(hetmem_node_capacity(ctx_, 0), 192ull << 30);
  EXPECT_EQ(hetmem_node_capacity(ctx_, 2), 768ull << 30);
  EXPECT_EQ(hetmem_node_capacity(ctx_, 99), 0u);
  EXPECT_STREQ(hetmem_node_kind_debug(ctx_, 0), "DRAM");
  EXPECT_STREQ(hetmem_node_kind_debug(ctx_, 2), "NVDIMM");
  EXPECT_EQ(hetmem_node_kind_debug(ctx_, 99), nullptr);
}

TEST_F(CapiTest, NodeCpusetStringRoundTrip) {
  char buf[64];
  const int needed = hetmem_node_cpuset(ctx_, 0, buf, sizeof(buf));
  ASSERT_GT(needed, 0);
  EXPECT_STREQ(buf, "0-39");
  // Truncation still NUL-terminates and reports the full length.
  char tiny[3];
  EXPECT_EQ(hetmem_node_cpuset(ctx_, 0, tiny, sizeof(tiny)), needed);
  EXPECT_EQ(tiny[2], '\0');
}

TEST_F(CapiTest, LocalNodes) {
  unsigned nodes[8];
  const int count = hetmem_local_nodes(ctx_, kPackage0, nodes, 8);
  ASSERT_EQ(count, 2);
  EXPECT_EQ(nodes[0], 0u);
  EXPECT_EQ(nodes[1], 2u);
  EXPECT_EQ(hetmem_local_nodes(ctx_, "zz", nodes, 8), HETMEM_ERR_PARSE);
}

TEST_F(CapiTest, GetValueAndBestTarget) {
  double value = 0.0;
  ASSERT_EQ(hetmem_memattr_get_value(ctx_, HETMEM_ATTR_LATENCY, 0, kPackage0,
                                     &value),
            HETMEM_SUCCESS);
  EXPECT_DOUBLE_EQ(value, 26.0);  // advertised HMAT figure
  ASSERT_EQ(hetmem_memattr_get_value(ctx_, HETMEM_ATTR_CAPACITY, 2, nullptr,
                                     &value),
            HETMEM_SUCCESS);
  EXPECT_DOUBLE_EQ(value, static_cast<double>(768ull << 30));

  unsigned node = 99;
  ASSERT_EQ(hetmem_memattr_get_best_target(ctx_, HETMEM_ATTR_LATENCY,
                                           kPackage0, &node, &value),
            HETMEM_SUCCESS);
  EXPECT_EQ(node, 0u);
  ASSERT_EQ(hetmem_memattr_get_best_target(ctx_, HETMEM_ATTR_CAPACITY,
                                           kPackage0, &node, &value),
            HETMEM_SUCCESS);
  EXPECT_EQ(node, 2u);
}

TEST_F(CapiTest, BestInitiator) {
  char buf[64];
  double value = 0.0;
  const int needed = hetmem_memattr_get_best_initiator(
      ctx_, HETMEM_ATTR_LATENCY, 0, buf, sizeof(buf), &value);
  ASSERT_GT(needed, 0);
  EXPECT_STREQ(buf, "0-39");
  EXPECT_GT(value, 0.0);
}

TEST_F(CapiTest, ErrorCodes) {
  double value = 0.0;
  // Per-initiator attribute without initiator.
  EXPECT_EQ(hetmem_memattr_get_value(ctx_, HETMEM_ATTR_LATENCY, 0, nullptr,
                                     &value),
            HETMEM_ERR_INVALID);
  // Unknown attribute id.
  EXPECT_EQ(hetmem_memattr_get_value(ctx_, 999, 0, kPackage0, &value),
            HETMEM_ERR_INVALID);
  // Bad cpuset.
  EXPECT_EQ(hetmem_memattr_get_best_target(ctx_, HETMEM_ATTR_LATENCY, "x,,y",
                                           nullptr, &value),
            HETMEM_ERR_INVALID);  // node out-param is null -> invalid
  unsigned node = 0;
  EXPECT_EQ(hetmem_memattr_get_best_target(ctx_, HETMEM_ATTR_LATENCY, "x,,y",
                                           &node, &value),
            HETMEM_ERR_PARSE);
}

TEST_F(CapiTest, CustomAttributeRoundTrip) {
  const int id = hetmem_memattr_register(ctx_, "Endurance",
                                         /*higher_is_better=*/1,
                                         /*need_initiator=*/0);
  ASSERT_GE(id, 8);
  EXPECT_EQ(hetmem_memattr_find(ctx_, "Endurance"), id);
  EXPECT_EQ(hetmem_memattr_find(ctx_, "NoSuch"), HETMEM_ERR_NOENT);
  ASSERT_EQ(hetmem_memattr_set_value(ctx_, id, 0, nullptr, 1e16),
            HETMEM_SUCCESS);
  ASSERT_EQ(hetmem_memattr_set_value(ctx_, id, 2, nullptr, 1e6),
            HETMEM_SUCCESS);
  unsigned node = 99;
  double value = 0.0;
  ASSERT_EQ(hetmem_memattr_get_best_target(ctx_, id, kPackage0, &node, &value),
            HETMEM_SUCCESS);
  EXPECT_EQ(node, 0u);
  EXPECT_DOUBLE_EQ(value, 1e16);
  // Duplicate registration fails.
  EXPECT_EQ(hetmem_memattr_register(ctx_, "Endurance", 1, 0),
            HETMEM_ERR_INVALID);
}

TEST_F(CapiTest, AllocFreeMigrate) {
  const int64_t buffer =
      hetmem_alloc(ctx_, 8ull << 30, HETMEM_ATTR_LATENCY, kPackage0,
                   HETMEM_POLICY_RANKED_FALLBACK, "capi-buf");
  ASSERT_GE(buffer, 0);
  EXPECT_EQ(hetmem_buffer_node(ctx_, buffer), 0);
  EXPECT_EQ(hetmem_node_available(ctx_, 0), (192ull - 8) << 30);

  double cost = 0.0;
  ASSERT_EQ(hetmem_migrate(ctx_, buffer, 2, &cost), HETMEM_SUCCESS);
  EXPECT_GT(cost, 0.0);
  EXPECT_EQ(hetmem_buffer_node(ctx_, buffer), 2);

  ASSERT_EQ(hetmem_free(ctx_, buffer), HETMEM_SUCCESS);
  EXPECT_EQ(hetmem_free(ctx_, buffer), HETMEM_ERR_INVALID);  // double free
  EXPECT_EQ(hetmem_node_available(ctx_, 0), 192ull << 30);
}

TEST_F(CapiTest, StrictPolicyFailsWhenFull) {
  const int64_t big =
      hetmem_alloc(ctx_, 192ull << 30, HETMEM_ATTR_LATENCY, kPackage0,
                   HETMEM_POLICY_STRICT, "filler");
  ASSERT_GE(big, 0);
  EXPECT_EQ(hetmem_alloc(ctx_, 1 << 20, HETMEM_ATTR_LATENCY, kPackage0,
                         HETMEM_POLICY_STRICT, "overflow"),
            HETMEM_ERR_NOMEM);
  // Ranked fallback succeeds onto the NVDIMM.
  const int64_t spill =
      hetmem_alloc(ctx_, 1 << 20, HETMEM_ATTR_LATENCY, kPackage0,
                   HETMEM_POLICY_RANKED_FALLBACK, "spill");
  ASSERT_GE(spill, 0);
  EXPECT_EQ(hetmem_buffer_node(ctx_, spill), 2);
}

TEST_F(CapiTest, BadPolicyAndHandlesRejected) {
  EXPECT_EQ(hetmem_alloc(ctx_, 1024, HETMEM_ATTR_LATENCY, kPackage0, 42, "x"),
            HETMEM_ERR_INVALID);
  EXPECT_EQ(hetmem_buffer_node(ctx_, -1), HETMEM_ERR_INVALID);
  EXPECT_EQ(hetmem_buffer_node(ctx_, 1 << 20), HETMEM_ERR_INVALID);
}

TEST_F(CapiTest, TenantLifecycleAndQuotaBackpressure) {
  const int64_t tenant = hetmem_tenant_register(
      ctx_, "analytics", HETMEM_PRIORITY_NORMAL, 1ull << 30, 1.0);
  ASSERT_GE(tenant, 1);
  EXPECT_EQ(hetmem_tenant_register(ctx_, "analytics", HETMEM_PRIORITY_NORMAL,
                                   0, 1.0),
            HETMEM_ERR_INVALID)
      << "duplicate name";
  EXPECT_EQ(hetmem_tenant_register(ctx_, "bad", 42, 0, 1.0),
            HETMEM_ERR_INVALID);

  // Within quota: charged, then refunded on free.
  const int64_t held =
      hetmem_alloc_tenant(ctx_, 64ull << 20, HETMEM_ATTR_LATENCY, kPackage0,
                          HETMEM_POLICY_RANKED_FALLBACK, "held", tenant);
  ASSERT_GE(held, 0);
  EXPECT_EQ(hetmem_tenant_used_bytes(ctx_, tenant), 64ull << 20);

  // Over the 1 GiB total cap: structured backpressure, not ENOMEM — with
  // the per-reason counter and the machine-readable retry hint exposed.
  EXPECT_EQ(hetmem_alloc_tenant(ctx_, 2ull << 30, HETMEM_ATTR_LATENCY,
                                kPackage0, HETMEM_POLICY_RANKED_FALLBACK,
                                "too-big", tenant),
            HETMEM_ERR_AGAIN);
  EXPECT_EQ(hetmem_backpressure_rejections(ctx_, HETMEM_BACKPRESSURE_QUOTA),
            1u);
  EXPECT_EQ(hetmem_backpressure_rejections(ctx_, HETMEM_BACKPRESSURE_TOTAL),
            1u);
  EXPECT_EQ(hetmem_backpressure_rejections(ctx_, HETMEM_BACKPRESSURE_HEALTH),
            0u);
  EXPECT_EQ(hetmem_backpressure_rejections(ctx_, HETMEM_BACKPRESSURE_SHED),
            0u);
  EXPECT_GT(hetmem_last_retry_after_ms(ctx_), 0u);

  EXPECT_EQ(hetmem_free(ctx_, held), HETMEM_SUCCESS);
  EXPECT_EQ(hetmem_tenant_used_bytes(ctx_, tenant), 0u);

  EXPECT_EQ(hetmem_tenant_deregister(ctx_, tenant), HETMEM_SUCCESS);
  EXPECT_EQ(hetmem_tenant_deregister(ctx_, tenant), HETMEM_ERR_NOENT);
  EXPECT_EQ(hetmem_alloc_tenant(ctx_, 1024, HETMEM_ATTR_LATENCY, kPackage0,
                                HETMEM_POLICY_RANKED_FALLBACK, "late", tenant),
            HETMEM_ERR_NOENT);
}

TEST(CapiProbed, ProbedContextHasMeasuredValues) {
  hetmem_context* ctx = hetmem_context_create_probed("knl_snc4_flat");
  ASSERT_NE(ctx, nullptr);
  unsigned node = 0;
  double value = 0.0;
  // Cluster 0's PUs.
  ASSERT_EQ(hetmem_memattr_get_best_target(ctx, HETMEM_ATTR_BANDWIDTH, "0-63",
                                           &node, &value),
            HETMEM_SUCCESS);
  EXPECT_EQ(node, 4u);  // MCDRAM
  EXPECT_STREQ(hetmem_node_kind_debug(ctx, node), "HBM");
  hetmem_context_destroy(ctx);
}

TEST_F(CapiTest, PowerTelemetryAndCap) {
  // A fresh context draws its static floor: node 0 on xeon_clx_1lm is
  // 192 GiB DRAM at 0.10 W/GiB (docs/POWER.md calibration table).
  EXPECT_NEAR(hetmem_power_draw_watts(ctx_, 0), 19.2, 1e-9);
  EXPECT_EQ(hetmem_power_draw_watts(ctx_, 9999),
            static_cast<double>(HETMEM_ERR_INVALID));

  // Cap lifecycle: unset by default, round-trips, rejects negative watts.
  EXPECT_EQ(hetmem_power_cap_watts(ctx_), 0.0);
  EXPECT_EQ(hetmem_set_power_cap_watts(ctx_, 150.0), HETMEM_SUCCESS);
  EXPECT_EQ(hetmem_power_cap_watts(ctx_), 150.0);
  EXPECT_EQ(hetmem_set_power_cap_watts(ctx_, -1.0), HETMEM_ERR_INVALID);
  EXPECT_EQ(hetmem_power_cap_watts(ctx_), 150.0);
  EXPECT_EQ(hetmem_set_power_cap_watts(ctx_, 0.0), HETMEM_SUCCESS);
  EXPECT_EQ(hetmem_set_power_cap_watts(nullptr, 1.0), HETMEM_ERR_INVALID);

  // Throttle counters start clean; bad nodes read as zero, not an error.
  EXPECT_EQ(hetmem_throttle_events(ctx_, 0), 0u);
  EXPECT_EQ(hetmem_throttle_events(ctx_, 9999), 0u);

  // The energy attributes are published at context creation and rank
  // lower-first: DRAM (node 0) beats Optane (node 2) for the same socket.
  double dram_energy = 0.0, nvdimm_energy = 0.0;
  ASSERT_EQ(hetmem_memattr_get_value(ctx_, HETMEM_ATTR_ENERGY_PER_BYTE, 0,
                                     nullptr, &dram_energy),
            HETMEM_SUCCESS);
  ASSERT_EQ(hetmem_memattr_get_value(ctx_, HETMEM_ATTR_ENERGY_PER_BYTE, 2,
                                     nullptr, &nvdimm_energy),
            HETMEM_SUCCESS);
  EXPECT_LT(dram_energy, nvdimm_energy);
  unsigned node = 99;
  double value = 0.0;
  ASSERT_EQ(hetmem_memattr_get_best_target(ctx_, HETMEM_ATTR_ENERGY_PER_BYTE,
                                           kPackage0, &node, &value),
            HETMEM_SUCCESS);
  EXPECT_EQ(node, 0u);  // cheapest energy per byte: local DRAM
}

// The crash-resilience lifecycle (docs/RECOVERY.md): build up placements,
// tenant charges, and backpressure counters; save; destroy the context
// entirely; restore from the file; every observable statistic matches, and
// the restored context keeps working (charges refund on free).
TEST_F(CapiTest, SnapshotSaveRestoreLifecycle) {
  const std::string path = ::testing::TempDir() + "capi-snap.hetmem";

  const int64_t tenant = hetmem_tenant_register(
      ctx_, "snap-tenant", HETMEM_PRIORITY_NORMAL, 1ull << 30, 1.0);
  ASSERT_GE(tenant, 1);
  const int64_t held =
      hetmem_alloc_tenant(ctx_, 64ull << 20, HETMEM_ATTR_LATENCY, kPackage0,
                          HETMEM_POLICY_RANKED_FALLBACK, "held", tenant);
  ASSERT_GE(held, 0);
  // Over-cap request: leaves a quota-rejection fingerprint to restore.
  EXPECT_EQ(hetmem_alloc_tenant(ctx_, 2ull << 30, HETMEM_ATTR_LATENCY,
                                kPackage0, HETMEM_POLICY_RANKED_FALLBACK,
                                "too-big", tenant),
            HETMEM_ERR_AGAIN);
  const int64_t roaming =
      hetmem_alloc(ctx_, 8ull << 20, HETMEM_ATTR_LATENCY, kPackage0,
                   HETMEM_POLICY_RANKED_FALLBACK, "roaming");
  ASSERT_GE(roaming, 0);
  double cost = 0.0;
  ASSERT_EQ(hetmem_migrate(ctx_, roaming, 2, &cost), HETMEM_SUCCESS);
  // A freed slot, so the snapshot's index watermark covers a tombstone.
  const int64_t gone = hetmem_alloc(ctx_, 1 << 20, HETMEM_ATTR_LATENCY,
                                    kPackage0, HETMEM_POLICY_RANKED_FALLBACK,
                                    "gone");
  ASSERT_GE(gone, 0);
  ASSERT_EQ(hetmem_free(ctx_, gone), HETMEM_SUCCESS);

  const uint64_t avail0 = hetmem_node_available(ctx_, 0);
  const uint64_t avail2 = hetmem_node_available(ctx_, 2);

  ASSERT_EQ(hetmem_snapshot_save(ctx_, path.c_str()), HETMEM_SUCCESS);
  EXPECT_EQ(hetmem_snapshot_save(ctx_, nullptr), HETMEM_ERR_INVALID);
  hetmem_context_destroy(ctx_);
  ctx_ = nullptr;

  hetmem_context* restored = hetmem_snapshot_restore(path.c_str());
  ASSERT_NE(restored, nullptr);
  ctx_ = restored;  // TearDown destroys it

  // Identical placements, charges, and counters.
  EXPECT_EQ(hetmem_buffer_node(ctx_, held), 0);
  EXPECT_EQ(hetmem_buffer_node(ctx_, roaming), 2);
  EXPECT_EQ(hetmem_buffer_node(ctx_, gone), HETMEM_ERR_INVALID);  // stays freed
  EXPECT_EQ(hetmem_node_available(ctx_, 0), avail0);
  EXPECT_EQ(hetmem_node_available(ctx_, 2), avail2);
  EXPECT_EQ(hetmem_tenant_used_bytes(ctx_, tenant), 64ull << 20);
  EXPECT_EQ(hetmem_backpressure_rejections(ctx_, HETMEM_BACKPRESSURE_QUOTA),
            1u);
  EXPECT_EQ(hetmem_backpressure_rejections(ctx_, HETMEM_BACKPRESSURE_TOTAL),
            1u);

  // The restored context is fully live: the charge refunds on free and the
  // tenant can be deregistered.
  EXPECT_EQ(hetmem_free(ctx_, held), HETMEM_SUCCESS);
  EXPECT_EQ(hetmem_tenant_used_bytes(ctx_, tenant), 0u);
  EXPECT_EQ(hetmem_tenant_deregister(ctx_, tenant), HETMEM_SUCCESS);

  // Breakers come up closed; unknown names and bad handles are rejected.
  EXPECT_EQ(hetmem_breaker_state(ctx_, "migration"), HETMEM_BREAKER_CLOSED);
  EXPECT_EQ(hetmem_breaker_state(ctx_, "evacuation"), HETMEM_BREAKER_CLOSED);
  EXPECT_EQ(hetmem_breaker_state(ctx_, "no-such"), HETMEM_ERR_NOENT);
  EXPECT_EQ(hetmem_breaker_state(nullptr, "migration"), HETMEM_ERR_INVALID);

  // A missing file never yields a context.
  EXPECT_EQ(hetmem_snapshot_restore("/nonexistent/snap"), nullptr);
}

// The paper's portability story, through the C API: the same three lines
// of "application code" run against two machines.
TEST(CapiPortability, SameCallsBothMachines) {
  for (const char* preset : {"xeon_clx_1lm", "knl_snc4_flat"}) {
    hetmem_context* ctx = hetmem_context_create(preset);
    ASSERT_NE(ctx, nullptr);
    char cpuset[64];
    ASSERT_GT(hetmem_node_cpuset(ctx, 0, cpuset, sizeof(cpuset)), 0);
    const int64_t buffer = hetmem_alloc(ctx, 1 << 20, HETMEM_ATTR_LATENCY,
                                        cpuset, HETMEM_POLICY_RANKED_FALLBACK,
                                        "portable");
    ASSERT_GE(buffer, 0) << preset;
    EXPECT_EQ(hetmem_free(ctx, buffer), HETMEM_SUCCESS);
    hetmem_context_destroy(ctx);
  }
}

}  // namespace
