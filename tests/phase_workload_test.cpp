// Phase-shifting KV-cache workload against the online runtime: checksum
// determinism under migration, rotation-driven promote/evict cycles, trace
// replay of a live run, refresh_arrays() coverage across every registered
// app runner, and the cross-scenario budget invariant when phase-driven
// migrations and health evacuation share one epoch budget.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/kvcache.hpp"
#include "hetmem/apps/spmv.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/health/evacuator.hpp"
#include "hetmem/health/health.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/trace/trace.hpp"

namespace hetmem {
namespace {

using support::kGiB;
using support::kMiB;

/// Short rotation: 4 segments x 6 phases covers every hot segment in 24
/// phases while staying fast enough for the test suite.
apps::KvCacheConfig small_kvcache() {
  apps::KvCacheConfig config;
  config.declared_value_bytes = 4 * kGiB;
  config.segments = 4;
  config.backing_keys_per_segment = 1u << 12;
  config.backing_lookups_per_thread = 512;
  config.phases = 24;
  config.shift_every_phases = 6;
  return config;
}

runtime::RuntimePolicyOptions phase_policy_options() {
  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  return options;
}

/// Identically-constructible testbed (the bench/ablation_phases scenario in
/// miniature): Xeon, fast DRAM squeezed so only one hot segment + the log
/// fit, KV-cache parked entirely on the NVDIMM node.
struct KvBed {
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  support::Bitmap initiator;
  unsigned fast = 0;
  unsigned slow = 0;
  std::unique_ptr<apps::KvCacheRunner> runner;
  bool ok = false;

  explicit KvBed(const apps::KvCacheConfig& config, bool squeeze_fast = true)
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry),
        initiator(machine.topology().numa_node(0)->cpuset()) {
    if (!hmat::load_into(registry, hmat::generate(machine.topology())).ok()) {
      return;
    }
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        slow = node->logical_index();
      }
    }
    if (squeeze_fast) {
      const std::uint64_t segment_bytes =
          config.declared_value_bytes / config.segments;
      const std::uint64_t headroom =
          segment_bytes + config.declared_log_bytes + 256 * kMiB;
      const std::uint64_t fast_free = machine.available_bytes(fast);
      if (fast_free > headroom) {
        auto hog = machine.allocate(fast_free - headroom, fast,
                                    "resident.hog", 4096);
        if (!hog.ok()) return;
      }
    }
    auto created = apps::KvCacheRunner::create(
        machine, &allocator, initiator, config,
        apps::KvCachePlacement::all_on_node(slow));
    if (!created.ok()) return;
    runner = std::move(created).take();
    ok = true;
  }
};

// ---------------------------------------------------------------------------
// KV-cache kernel
// ---------------------------------------------------------------------------

TEST(KvCacheTest, RotationScheduleAndResultShape) {
  KvBed bed(small_kvcache(), /*squeeze_fast=*/false);
  ASSERT_TRUE(bed.ok);
  auto result = bed.runner->run_phases(13);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(bed.runner->phases_run(), 13u);
  ASSERT_EQ(result->phase_ns.size(), 13u);
  ASSERT_EQ(result->hot_segments.size(), 13u);
  // hot = (phase / 6) % 4: phases 0-5 -> seg0, 6-11 -> seg1, 12 -> seg2.
  EXPECT_EQ(result->hot_segments[0], 0u);
  EXPECT_EQ(result->hot_segments[5], 0u);
  EXPECT_EQ(result->hot_segments[6], 1u);
  EXPECT_EQ(result->hot_segments[12], 2u);
  EXPECT_GT(result->lookups_per_second, 0.0);
  EXPECT_TRUE(std::isfinite(result->checksum));
  EXPECT_NE(result->checksum, 0.0);
}

TEST(KvCacheTest, ChecksumIsPlacementIndependentUnderPolicyMigration) {
  // Same seed, same schedule — one bed pinned to the slow node, one managed
  // by the online policy (which demonstrably migrates). The kernel's answer
  // must not depend on where its buffers live.
  KvBed pinned(small_kvcache(), /*squeeze_fast=*/false);
  ASSERT_TRUE(pinned.ok);
  auto pinned_result = pinned.runner->run();
  ASSERT_TRUE(pinned_result.ok());

  KvBed managed(small_kvcache(), /*squeeze_fast=*/false);
  ASSERT_TRUE(managed.ok);
  runtime::RuntimePolicy policy(managed.allocator, managed.initiator,
                                phase_policy_options());
  policy.attach(managed.runner->exec(),
                [&] { managed.runner->refresh_arrays(); });
  auto managed_result = managed.runner->run();
  ASSERT_TRUE(managed_result.ok());

  EXPECT_GE(policy.engine().stats().accepted, 1u);
  EXPECT_DOUBLE_EQ(pinned_result->checksum, managed_result->checksum);
  // Migration helped: managed run is no slower than the all-slow pin.
  EXPECT_LE(managed_result->seconds, pinned_result->seconds * 1.02);
}

TEST(KvCacheTest, PolicyPromotesEveryHotSegmentAndEvictsCooledOnes) {
  KvBed bed(small_kvcache());
  ASSERT_TRUE(bed.ok);
  runtime::RuntimePolicy policy(bed.allocator, bed.initiator,
                                phase_policy_options());
  policy.attach(bed.runner->exec(), [&] { bed.runner->refresh_arrays(); });
  auto result = bed.runner->run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  std::set<std::uint32_t> promoted;
  std::set<std::uint32_t> evicted;
  for (const runtime::Decision& decision : policy.engine().decisions()) {
    for (unsigned segment = 0; segment < 4; ++segment) {
      if (decision.buffer.index != bed.runner->segment_buffer(segment).index) {
        continue;
      }
      if (decision.verdict == runtime::Verdict::kAccepted &&
          decision.to_node == bed.fast) {
        promoted.insert(decision.buffer.index);
      }
      if (decision.verdict == runtime::Verdict::kEvicted) {
        evicted.insert(decision.buffer.index);
      }
    }
  }
  // Every rotation window promoted its hot segment, and with fast memory
  // squeezed to one-segment headroom the cooled segments had to be evicted
  // to make room.
  EXPECT_EQ(promoted.size(), 4u) << policy.render_decision_log();
  EXPECT_GE(evicted.size(), 2u) << policy.render_decision_log();
}

TEST(KvCacheTest, RecordedRunReplaysByteIdentically) {
  apps::KvCacheConfig config = small_kvcache();
  KvBed live(config);
  ASSERT_TRUE(live.ok);
  runtime::RuntimePolicy policy(live.allocator, live.initiator,
                                phase_policy_options());
  policy.attach(live.runner->exec(), [&] { live.runner->refresh_arrays(); });
  trace::TraceRecorder recorder({1, "kvcache.phases"});
  recorder.attach(live.runner->exec(), &policy);
  auto result = live.runner->run();
  ASSERT_TRUE(result.ok());
  const std::string live_log = policy.render_decision_log();
  ASSERT_EQ(recorder.epochs_recorded(), config.phases);

  auto parsed = trace::parse(trace::serialize(recorder.trace()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;

  KvBed replay_bed(config);
  ASSERT_TRUE(replay_bed.ok);
  runtime::RuntimePolicy replay_policy(replay_bed.allocator,
                                       replay_bed.initiator,
                                       phase_policy_options());
  trace::TraceReplayer replayer(replay_policy);
  const trace::ReplayStats stats = replayer.replay(*parsed);
  EXPECT_EQ(stats.epochs, config.phases);
  EXPECT_EQ(replay_policy.render_decision_log(), live_log);
  EXPECT_FALSE(live_log.empty());
}

// ---------------------------------------------------------------------------
// refresh_arrays() coverage across every registered app runner
// ---------------------------------------------------------------------------

/// After a mid-run machine.migrate + refresh_arrays(), another run must
/// succeed and all traffic telemetry must reference live buffers only — no
/// stale ids left in the execution context's merged counters.
void expect_live_telemetry(sim::SimMachine& machine,
                           sim::ExecutionContext& exec) {
  runtime::EpochSampler sampler({.phases_per_epoch = 1});
  const runtime::Epoch epoch = sampler.force_epoch(exec);
  EXPECT_FALSE(epoch.samples.empty());
  for (const runtime::EpochSample& sample : epoch.samples) {
    ASSERT_LT(sample.buffer.index, machine.total_buffer_count());
    EXPECT_FALSE(machine.info(sample.buffer).freed)
        << "stale buffer id " << sample.buffer.index << " in telemetry";
  }
}

/// Migrates one of the workload's own buffers to `destination` (whichever
/// live buffer on `from` the label predicate owns first).
void migrate_one(sim::SimMachine& machine, unsigned from, unsigned destination,
                 const std::string& label_prefix) {
  for (sim::BufferId id : machine.live_buffers_on(from)) {
    const sim::BufferInfo info = machine.info(id);
    if (info.label.rfind(label_prefix, 0) == 0) {
      ASSERT_TRUE(machine.migrate(id, destination).ok()) << info.label;
      return;
    }
  }
  FAIL() << "no live '" << label_prefix << "*' buffer on node " << from;
}

class RefreshCoverageTest : public ::testing::Test {
 protected:
  RefreshCoverageTest()
      : machine_(topo::xeon_clx_1lm()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_),
        initiator_(machine_.topology().numa_node(0)->cpuset()) {
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology())).ok());
  }

  unsigned nvdimm_node() const {
    for (const topo::Object* node : machine_.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        return node->logical_index();
      }
    }
    return 0;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  alloc::HeterogeneousAllocator allocator_;
  support::Bitmap initiator_;
};

TEST_F(RefreshCoverageTest, StreamSurvivesMidRunMigration) {
  apps::StreamConfig config;
  config.backing_elements = 1u << 16;
  config.iterations = 2;
  apps::BufferPlacement placement;
  placement.forced_node = 0;
  auto runner = apps::StreamRunner::create(machine_, nullptr, initiator_,
                                           config, placement);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->run_triad().ok());
  migrate_one(machine_, 0, nvdimm_node(), "stream.");
  (*runner)->refresh_arrays();
  auto result = (*runner)->run_triad();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(std::isfinite(result->checksum));
  expect_live_telemetry(machine_, (*runner)->exec());
}

TEST_F(RefreshCoverageTest, Graph500SurvivesMidRunMigration) {
  apps::Graph500Config config;
  config.scale_declared = 20;
  config.scale_backing = 12;
  config.num_roots = 2;
  auto runner = apps::Graph500Runner::create(
      machine_, nullptr, initiator_, config,
      apps::Graph500Placement::all_on_node(0));
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->run().ok());
  migrate_one(machine_, 0, nvdimm_node(), "g500.");
  (*runner)->refresh_arrays();
  auto result = (*runner)->run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  expect_live_telemetry(machine_, (*runner)->exec());
}

TEST_F(RefreshCoverageTest, SpmvSurvivesMidRunMigration) {
  apps::SpmvConfig config;
  config.backing_rows = 1u << 12;
  config.iterations = 2;
  auto runner = apps::SpmvRunner::create(machine_, nullptr, initiator_, config,
                                         apps::SpmvPlacement::all_on_node(0));
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->run().ok());
  migrate_one(machine_, 0, nvdimm_node(), "spmv.");
  (*runner)->refresh_arrays();
  auto result = (*runner)->run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  expect_live_telemetry(machine_, (*runner)->exec());
}

TEST_F(RefreshCoverageTest, KvCacheSurvivesMidRunMigration) {
  apps::KvCacheConfig config = small_kvcache();
  config.phases = 6;
  auto runner = apps::KvCacheRunner::create(
      machine_, nullptr, initiator_, config,
      apps::KvCachePlacement::all_on_node(0));
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->run_phases(3).ok());
  migrate_one(machine_, 0, nvdimm_node(), "kv.");
  (*runner)->refresh_arrays();
  auto result = (*runner)->run_phases(3);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(std::isfinite(result->checksum));
  expect_live_telemetry(machine_, (*runner)->exec());
}

// ---------------------------------------------------------------------------
// Cross-scenario chaos: phase shifts + faults + mid-run quarantine
// ---------------------------------------------------------------------------

TEST(KvCachePhaseChaosTest, EvacuationAndPhaseMigrationsShareEpochBudget) {
  apps::KvCacheConfig config = small_kvcache();
  KvBed bed(config);
  ASSERT_TRUE(bed.ok);
  bed.allocator.set_retry_policy({.max_transient_retries = 8});

  // Faults go live only after setup so creation itself cannot fail.
  fault::FaultInjector injector = fault::FaultInjector::preset("heavy", 4242);
  bed.machine.set_fault_injector(&injector);

  constexpr std::uint64_t kBudget = 1536ull * kMiB;
  runtime::RuntimePolicyOptions options = phase_policy_options();
  options.engine.epoch_budget_bytes = kBudget;
  runtime::RuntimePolicy policy(bed.allocator, bed.initiator, options);

  // Mid-run health event: the fast DRAM node degrades at epoch 8, right
  // after the first rotation's promotion — the monitor must quarantine it
  // and the evacuator must pull the promoted segment back off while the
  // rotation keeps asking for phase-driven promotions.
  const unsigned victim = bed.fast;
  policy.add_epoch_hook([&](std::uint64_t epoch, unsigned) {
    if (epoch == 8) {
      EXPECT_TRUE(bed.machine.set_node_degraded(victim, true).ok());
    }
    return 0.0;
  });
  health::HealthMonitor monitor(bed.machine, bed.registry);
  health::Evacuator evacuator(bed.allocator, policy.mutable_engine(),
                              bed.initiator);
  health::attach_health(policy, monitor, evacuator);
  policy.attach(bed.runner->exec(), [&] { bed.runner->refresh_arrays(); });

  auto result = bed.runner->run();
  bed.machine.set_fault_injector(nullptr);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(std::isfinite(result->checksum));

  // Exact-sum invariant: in EVERY epoch, engine promotions/evictions plus
  // evacuation moves together stay within the single shared byte budget.
  std::map<std::uint64_t, std::uint64_t> per_epoch_bytes;
  std::uint64_t engine_migrations = 0;
  for (const runtime::Decision& decision : policy.engine().decisions()) {
    if (decision.verdict == runtime::Verdict::kAccepted ||
        decision.verdict == runtime::Verdict::kEvicted) {
      per_epoch_bytes[decision.epoch] += decision.bytes;
      ++engine_migrations;
    }
  }
  std::uint64_t evacuated_off_victim = 0;
  for (const health::EvacDecision& decision : evacuator.decisions()) {
    if (decision.verdict == health::EvacVerdict::kMoved) {
      per_epoch_bytes[decision.epoch] += decision.bytes;
      if (decision.from_node == victim) ++evacuated_off_victim;
    }
  }
  for (const auto& [epoch, bytes] : per_epoch_bytes) {
    EXPECT_LE(bytes, kBudget)
        << "epoch " << epoch << " overspent the shared budget: " << bytes
        << " > " << kBudget << "\n"
        << policy.render_decision_log() << monitor.render_transition_log();
  }
  // Neither side starved: the rotation still migrated through the engine
  // AND the evacuator moved buffers off the quarantined node.
  EXPECT_GE(engine_migrations, 1u) << policy.render_decision_log();
  EXPECT_GE(evacuated_off_victim, 1u)
      << monitor.render_transition_log() << policy.render_decision_log();
}

}  // namespace
}  // namespace hetmem
