#include "hetmem/cachesim/cachesim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hetmem/simmem/array.hpp"
#include "hetmem/support/rng.hpp"

namespace hetmem::cachesim {
namespace {

CacheConfig tiny_cache() {
  CacheConfig config;
  config.size_bytes = 8 * 1024;  // 8 KiB
  config.ways = 2;
  config.line_bytes = 64;
  config.set_sampling = 1;
  return config;
}

TEST(Cache, ConfigDerivesSetCount) {
  CacheConfig config = tiny_cache();
  EXPECT_EQ(config.set_count(), 8 * 1024u / (2 * 64));
}

TEST(Cache, ColdMissesThenHits) {
  Cache cache(tiny_cache());
  EXPECT_FALSE(cache.access(0));     // cold miss
  EXPECT_TRUE(cache.access(0));      // hit
  EXPECT_TRUE(cache.access(32));     // same line
  EXPECT_FALSE(cache.access(4096));  // different line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache cache(tiny_cache());  // 64 sets, 2 ways
  const std::uint64_t set_stride = 64 * 64;  // same set, different tag
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(set_stride));
  EXPECT_TRUE(cache.access(0));               // both resident
  EXPECT_FALSE(cache.access(2 * set_stride)); // evicts LRU (set_stride)
  EXPECT_TRUE(cache.access(0));               // 0 was MRU: still there
  EXPECT_FALSE(cache.access(set_stride));     // was evicted
  EXPECT_GE(cache.stats().evictions, 2u);
}

TEST(Cache, WorkingSetSmallerThanCacheEventuallyAllHits) {
  Cache cache(tiny_cache());
  // 4 KiB working set in an 8 KiB cache: after the first pass, no misses.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t address = 0; address < 4096; address += 64) {
      cache.access(address);
    }
  }
  EXPECT_EQ(cache.stats().misses, 64u);  // cold misses only
  EXPECT_EQ(cache.stats().accesses, 3 * 64u);
}

TEST(Cache, StreamingLargerThanCacheMissesEveryPass) {
  Cache cache(tiny_cache());
  // 32 KiB stream through an 8 KiB cache: LRU gives ~100% miss per pass.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t address = 0; address < 32 * 1024; address += 64) {
      cache.access(address);
    }
  }
  EXPECT_EQ(cache.stats().misses, cache.stats().accesses);
}

TEST(Cache, ResetClearsEverything) {
  Cache cache(tiny_cache());
  cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.access(0));  // cold again
}

TEST(Cache, PerStreamAttribution) {
  Cache cache(tiny_cache());
  for (std::uint64_t address = 0; address < 16 * 1024; address += 64) {
    cache.access(address, /*stream_id=*/0);
  }
  for (int i = 0; i < 100; ++i) {
    cache.access(0x100000, /*stream_id=*/7);  // single hot line
  }
  const CacheStats graph = cache.stream_stats(0);
  const CacheStats hot = cache.stream_stats(7);
  EXPECT_EQ(graph.misses, graph.accesses);  // streaming: all miss
  EXPECT_EQ(hot.misses, 1u);                // one cold miss, then hits
  EXPECT_EQ(hot.accesses, 100u);
  EXPECT_EQ(cache.stream_stats(99).accesses, 0u);  // unknown stream
  EXPECT_EQ(cache.stats().accesses, graph.accesses + hot.accesses);
}

TEST(Cache, SamplingApproximatesFullSimulation) {
  CacheConfig full_config;
  full_config.size_bytes = 256 * 1024;
  full_config.ways = 8;
  full_config.set_sampling = 1;
  CacheConfig sampled_config = full_config;
  sampled_config.set_sampling = 8;

  Cache full(full_config);
  Cache sampled(sampled_config);
  support::Xoshiro256 rng(99);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t address = rng.next_below(4 * 1024 * 1024);
    full.access(address);
    sampled.access(address);
  }
  // Sampled counts are scaled estimates of the full counts.
  EXPECT_NEAR(sampled.stats().miss_rate(), full.stats().miss_rate(), 0.03);
  EXPECT_NEAR(static_cast<double>(sampled.stats().accesses),
              static_cast<double>(full.stats().accesses),
              0.05 * static_cast<double>(full.stats().accesses));
}

// ---------------------------------------------------------------------------
// Batched lookups (lookup_batch / access_batch)
// ---------------------------------------------------------------------------

/// Builds a deterministic mixed stream — streaming runs, a hot working set,
/// and intra-chunk duplicates — chunked into sorted batches, which is the
/// precondition access_batch() documents.
std::vector<std::vector<std::uint64_t>> sorted_chunks(std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint64_t>> chunks;
  for (int chunk = 0; chunk < 200; ++chunk) {
    std::vector<std::uint64_t> addresses;
    // Stride of 13 lines per chunk so successive streaming windows start in
    // different sets — the uniform set spread the extrapolation rule needs.
    const std::uint64_t stream_base = 64ull * 13 * chunk;
    for (int i = 0; i < 32; ++i) {
      addresses.push_back(stream_base + 64ull * i);       // streaming run
      addresses.push_back(rng.next_below(128 * 1024));    // hot set
    }
    for (int i = 0; i < 8; ++i) {  // duplicates of random stream elements
      addresses.push_back(addresses[rng.next_below(addresses.size())]);
    }
    std::sort(addresses.begin(), addresses.end());
    chunks.push_back(std::move(addresses));
  }
  return chunks;
}

class BatchEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchEquivalenceTest, BatchMatchesSequentialAccessExactly) {
  // access_batch over a sorted chunk must be *identical* to per-address
  // access() calls in the same order — same stats after every chunk and the
  // same cache contents afterwards (observed via subsequent behavior).
  // Parameterized over set_sampling so the scaled-fold path is covered too.
  CacheConfig config;
  config.size_bytes = 64 * 1024;
  config.ways = 4;
  config.set_sampling = static_cast<unsigned>(GetParam());
  Cache sequential(config);
  Cache batched(config);
  for (const auto& chunk : sorted_chunks(/*seed=*/11)) {
    for (std::uint64_t address : chunk) sequential.access(address, 3);
    batched.access_batch(chunk.data(), chunk.size(), 3);
    ASSERT_EQ(sequential.stats().accesses, batched.stats().accesses);
    ASSERT_EQ(sequential.stats().misses, batched.stats().misses);
    ASSERT_EQ(sequential.stats().evictions, batched.stats().evictions);
  }
  EXPECT_EQ(sequential.stream_stats(3).misses, batched.stream_stats(3).misses);
  EXPECT_GT(batched.stats().misses, 0u);
  // Same resident lines: replaying a probe set sequentially on both caches
  // must produce identical hit/miss outcomes.
  for (std::uint64_t address = 0; address < 32 * 1024; address += 64) {
    ASSERT_EQ(sequential.access(address), batched.access(address))
        << "address " << address;
  }
}

INSTANTIATE_TEST_SUITE_P(SetSampling, BatchEquivalenceTest,
                         ::testing::Values(1, 8));

TEST(Cache, LookupBatchReportsRawUnscaledCounts) {
  CacheConfig config;
  config.size_bytes = 8 * 1024;
  config.ways = 2;
  config.set_sampling = 4;  // simulate every 4th set
  Cache cache(config);
  // One line per set over twice the simulated range: exactly 1/4 of the
  // lines land in simulated sets, each a cold miss; nothing is scaled in
  // the raw BatchCounts (scaling is access_batch's job).
  std::vector<std::uint64_t> lines;
  for (std::uint64_t line = 0; line < 128; ++line) lines.push_back(line);
  const BatchCounts counts = cache.lookup_batch(lines.data(), lines.size());
  EXPECT_EQ(counts.simulated, 32u);
  EXPECT_EQ(counts.misses, 32u);
  EXPECT_EQ(counts.evictions, 0u);
  EXPECT_EQ(cache.stats().accesses, 0u);  // lookup_batch leaves stats alone
}

TEST(Cache, BatchedSampledMissRatioMatchesFullSimulation) {
  // The statistical-hit extrapolation rule (cachesim.hpp): with sampling K,
  // sampled-out accesses contribute nothing and simulated outcomes count K
  // times. On a deterministic synthetic stream the extrapolated miss ratio
  // must agree with the full simulation within a tight relative+absolute
  // tolerance.
  CacheConfig full_config;
  full_config.size_bytes = 256 * 1024;
  full_config.ways = 8;
  full_config.set_sampling = 1;
  CacheConfig sampled_config = full_config;
  sampled_config.set_sampling = 8;
  Cache full(full_config);
  Cache sampled(sampled_config);
  for (const auto& chunk : sorted_chunks(/*seed=*/99)) {
    full.access_batch(chunk.data(), chunk.size());
    sampled.access_batch(chunk.data(), chunk.size());
  }
  const double mr_full = full.stats().miss_rate();
  const double mr_sampled = sampled.stats().miss_rate();
  EXPECT_GT(mr_full, 0.0);
  EXPECT_NEAR(mr_sampled, mr_full, 0.1 * mr_full + 0.02);
  // Access totals extrapolate to the same trace length within 5%.
  EXPECT_NEAR(static_cast<double>(sampled.stats().accesses),
              static_cast<double>(full.stats().accesses),
              0.05 * static_cast<double>(full.stats().accesses));
}

// Cross-validation: the trace-driven cache agrees with the analytic model
// used by sim::Array for random accesses (the ablation's core claim).
class AnalyticAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyticAgreementTest, RandomAccessMissRate) {
  const std::uint64_t working_set = GetParam();
  CacheConfig config;
  config.size_bytes = 1 * 1024 * 1024;
  config.ways = 8;
  Cache cache(config);
  support::Xoshiro256 rng(7);
  // Warm up, then measure.
  for (int i = 0; i < 100000; ++i) cache.access(rng.next_below(working_set));
  cache.reset();
  // reset() clears contents too; re-warm and measure in two halves instead.
  for (int i = 0; i < 100000; ++i) cache.access(rng.next_below(working_set));
  const CacheStats warm = cache.stats();
  for (int i = 0; i < 100000; ++i) cache.access(rng.next_below(working_set));
  const CacheStats end = cache.stats();
  const double measured =
      static_cast<double>(end.misses - warm.misses) /
      static_cast<double>(end.accesses - warm.accesses);
  const double analytic =
      sim::CacheModel::random_miss_rate(working_set, config.size_bytes);
  EXPECT_NEAR(measured, analytic, 0.08)
      << "working set " << working_set;
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, AnalyticAgreementTest,
                         ::testing::Values(512 * 1024,        // fits: ~0
                                           2 * 1024 * 1024,   // 2x: ~0.5
                                           4 * 1024 * 1024,   // 4x: ~0.75
                                           16 * 1024 * 1024,  // 16x: ~0.94
                                           64 * 1024 * 1024));

}  // namespace
}  // namespace hetmem::cachesim
