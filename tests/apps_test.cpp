#include <gtest/gtest.h>

#include <set>

#include "hetmem/apps/csr.hpp"
#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/rmat.hpp"
#include "hetmem/apps/spmv.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::apps {
namespace {

using support::kGiB;

// --- R-MAT generator ---

TEST(Rmat, GeneratesRequestedEdgeCount) {
  RmatParams params;
  params.scale = 10;
  params.edgefactor = 16;
  auto edges = generate_rmat(params);
  EXPECT_EQ(edges.size(), (1u << 10) * 16);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, 1u << 10);
    EXPECT_LT(e.v, 1u << 10);
  }
}

TEST(Rmat, DeterministicForSeed) {
  RmatParams params;
  params.scale = 8;
  auto a = generate_rmat(params);
  auto b = generate_rmat(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
  }
  params.seed += 1;
  auto c = generate_rmat(params);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    same += a[i].u == c[i].u && a[i].v == c[i].v;
  }
  EXPECT_LT(same, a.size() / 10);
}

TEST(Rmat, PowerLawSkew) {
  RmatParams params;
  params.scale = 12;
  auto edges = generate_rmat(params);
  std::vector<std::uint32_t> degree(1u << 12, 0);
  for (const Edge& e : edges) ++degree[e.u];
  std::sort(degree.begin(), degree.end(), std::greater<>());
  // Top 1% of vertices should hold far more than 1% of edge endpoints.
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < degree.size() / 100; ++i) top += degree[i];
  EXPECT_GT(top, edges.size() / 10);
}

// --- CSR builder ---

TEST(Csr, BuildsSymmetricDedupedGraph) {
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}};
  CsrGraph graph = build_csr(edges, 4);
  EXPECT_EQ(graph.num_vertices, 4u);
  // Self-loop dropped; {0,1} deduped; edges: 0-1, 1-2.
  EXPECT_EQ(graph.num_edges, 2u);
  EXPECT_EQ(graph.targets.size(), 4u);
  EXPECT_EQ(graph.degree(0), 1u);
  EXPECT_EQ(graph.degree(1), 2u);
  EXPECT_EQ(graph.degree(2), 1u);
  EXPECT_EQ(graph.degree(3), 0u);
}

TEST(Csr, OffsetsMonotoneAndAdjacencySorted) {
  RmatParams params;
  params.scale = 10;
  CsrGraph graph = build_csr(generate_rmat(params), 1u << 10);
  for (std::uint32_t v = 0; v < graph.num_vertices; ++v) {
    EXPECT_LE(graph.offsets[v], graph.offsets[v + 1]);
    for (std::uint64_t j = graph.offsets[v] + 1; j < graph.offsets[v + 1]; ++j) {
      EXPECT_LT(graph.targets[j - 1], graph.targets[j]);  // sorted, unique
    }
  }
  EXPECT_EQ(graph.offsets.back(), graph.targets.size());
}

TEST(Csr, SymmetryHolds) {
  RmatParams params;
  params.scale = 8;
  CsrGraph graph = build_csr(generate_rmat(params), 1u << 8);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::uint32_t u = 0; u < graph.num_vertices; ++u) {
    for (std::uint64_t j = graph.offsets[u]; j < graph.offsets[u + 1]; ++j) {
      seen.insert({u, graph.targets[j]});
    }
  }
  for (const auto& [u, v] : seen) {
    EXPECT_TRUE(seen.count({v, u})) << u << "->" << v << " has no reverse";
    EXPECT_NE(u, v) << "self loop survived";
  }
}

// --- Graph500 runner ---

TEST(Graph500, DeclaredBytesMatchPaperSizes) {
  // Table II sizes: 2^(scale+7) bytes at edgefactor 16.
  EXPECT_EQ(graph500_declared_bytes(24, 16), 2147483648ull);   // "2.15 GB"
  EXPECT_EQ(graph500_declared_bytes(25, 16), 4294967296ull);   // "4.29 GB"
  EXPECT_EQ(graph500_declared_bytes(28, 16), 34359738368ull);  // "34.36 GB"
}

Graph500Config small_config() {
  Graph500Config config;
  config.scale_declared = 24;
  config.scale_backing = 12;
  config.threads = 4;
  config.num_roots = 3;
  return config;
}

TEST(Graph500, RunsAndValidatesOnXeonDram) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  auto runner = Graph500Runner::create(machine, nullptr,
                                       machine.topology().numa_node(0)->cpuset(),
                                       small_config(),
                                       Graph500Placement::all_on_node(0));
  ASSERT_TRUE(runner.ok()) << runner.error().to_string();
  auto result = (*runner)->run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_GT(result->harmonic_mean_teps, 0.0);
  EXPECT_EQ(result->teps_per_root.size(), 3u);
  EXPECT_GT(result->backing_edges, 0u);
  EXPECT_TRUE((*runner)->validate_last_tree().ok());
}

TEST(Graph500, BfsTreeIsValidFromSpecificRoot) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  auto runner = Graph500Runner::create(machine, nullptr,
                                       machine.topology().numa_node(0)->cpuset(),
                                       small_config(),
                                       Graph500Placement::all_on_node(0));
  ASSERT_TRUE(runner.ok());
  // Find a non-isolated root deterministically.
  const CsrGraph& graph = (*runner)->graph();
  std::uint32_t root = 0;
  while (graph.degree(root) == 0) ++root;
  auto bfs = (*runner)->bfs_from(root);
  ASSERT_TRUE(bfs.ok());
  EXPECT_GT(bfs->first, 0.0);   // TEPS
  EXPECT_GT(bfs->second, 0u);   // traversed edges
  auto status = (*runner)->validate_last_tree();
  EXPECT_TRUE(status.ok()) << status.error().to_string();
}

TEST(Graph500, TraversedEdgesBoundedByGraph) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  auto runner = Graph500Runner::create(machine, nullptr,
                                       machine.topology().numa_node(0)->cpuset(),
                                       small_config(),
                                       Graph500Placement::all_on_node(0));
  ASSERT_TRUE(runner.ok());
  const CsrGraph& graph = (*runner)->graph();
  std::uint32_t root = 0;
  while (graph.degree(root) == 0) ++root;
  auto bfs = (*runner)->bfs_from(root);
  ASSERT_TRUE(bfs.ok());
  EXPECT_LE(bfs->second, graph.num_edges);
}

TEST(Graph500, DeterministicTepsAcrossRuns) {
  auto run_once = [] {
    sim::SimMachine machine(topo::xeon_clx_1lm());
    auto runner = Graph500Runner::create(
        machine, nullptr, machine.topology().numa_node(0)->cpuset(),
        small_config(), Graph500Placement::all_on_node(0));
    EXPECT_TRUE(runner.ok());
    auto result = (*runner)->run();
    EXPECT_TRUE(result.ok());
    return result->harmonic_mean_teps;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Graph500, PlacementOnNvdimmIsSlower) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  auto on_dram = Graph500Runner::create(machine, nullptr, initiator,
                                        small_config(),
                                        Graph500Placement::all_on_node(0));
  ASSERT_TRUE(on_dram.ok());
  auto dram_result = (*on_dram)->run();
  ASSERT_TRUE(dram_result.ok());

  auto on_nvdimm = Graph500Runner::create(machine, nullptr, initiator,
                                          small_config(),
                                          Graph500Placement::all_on_node(2));
  ASSERT_TRUE(on_nvdimm.ok());
  auto nvdimm_result = (*on_nvdimm)->run();
  ASSERT_TRUE(nvdimm_result.ok());

  EXPECT_GT(dram_result->harmonic_mean_teps,
            nvdimm_result->harmonic_mean_teps * 1.2);
}

TEST(Graph500, AttributePlacementRequiresAllocator) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  auto runner = Graph500Runner::create(
      machine, nullptr, machine.topology().numa_node(0)->cpuset(),
      small_config(), Graph500Placement::by_attribute(attr::kLatency));
  ASSERT_FALSE(runner.ok());
}

TEST(Graph500, BuffersFreedOnDestruction) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  {
    auto runner = Graph500Runner::create(
        machine, nullptr, machine.topology().numa_node(0)->cpuset(),
        small_config(), Graph500Placement::all_on_node(0));
    ASSERT_TRUE(runner.ok());
    EXPECT_GT(machine.used_bytes(0), 0u);
  }
  EXPECT_EQ(machine.used_bytes(0), 0u);
}

TEST(Graph500, DirectionOptimizedTreeIsValid) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  Graph500Config config = small_config();
  config.direction_beta = 14;  // Beamer's classic threshold
  auto runner = Graph500Runner::create(machine, nullptr,
                                       machine.topology().numa_node(0)->cpuset(),
                                       config,
                                       Graph500Placement::all_on_node(0));
  ASSERT_TRUE(runner.ok());
  const CsrGraph& graph = (*runner)->graph();
  std::uint32_t root = 0;
  while (graph.degree(root) == 0) ++root;
  auto bfs = (*runner)->bfs_from(root);
  ASSERT_TRUE(bfs.ok()) << bfs.error().to_string();
  auto status = (*runner)->validate_last_tree();
  EXPECT_TRUE(status.ok()) << status.error().to_string();
}

TEST(Graph500, DirectionOptimizedVisitsSameComponent) {
  // Top-down and direction-optimizing traversals must reach the same
  // vertices from the same root (the trees may differ).
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();

  Graph500Config top_down = small_config();
  Graph500Config hybrid = small_config();
  hybrid.direction_beta = 14;

  auto a = Graph500Runner::create(machine, nullptr, initiator, top_down,
                                  Graph500Placement::all_on_node(0));
  auto b = Graph500Runner::create(machine, nullptr, initiator, hybrid,
                                  Graph500Placement::all_on_node(0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const CsrGraph& graph = (*a)->graph();
  std::uint32_t root = 0;
  while (graph.degree(root) == 0) ++root;
  auto bfs_a = (*a)->bfs_from(root);
  auto bfs_b = (*b)->bfs_from(root);
  ASSERT_TRUE(bfs_a.ok());
  ASSERT_TRUE(bfs_b.ok());
  // Same traversed-edge count == same component.
  EXPECT_EQ(bfs_a->second, bfs_b->second);
}

TEST(Graph500, DirectionOptimizationIsFasterOnBigFrontiers) {
  // RMAT graphs have one huge middle level; bottom-up sweeps cut the
  // per-edge dependent claims there.
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  Graph500Config top_down = small_config();
  top_down.scale_backing = 14;
  Graph500Config hybrid = top_down;
  hybrid.direction_beta = 14;

  auto a = Graph500Runner::create(machine, nullptr, initiator, top_down,
                                  Graph500Placement::all_on_node(0));
  auto b = Graph500Runner::create(machine, nullptr, initiator, hybrid,
                                  Graph500Placement::all_on_node(0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto teps_a = (*a)->run();
  auto teps_b = (*b)->run();
  ASSERT_TRUE(teps_a.ok());
  ASSERT_TRUE(teps_b.ok());
  EXPECT_GT(teps_b->harmonic_mean_teps, teps_a->harmonic_mean_teps);
}

// --- STREAM runner ---

StreamConfig small_stream() {
  StreamConfig config;
  config.declared_total_bytes = 22ull * kGiB;
  config.backing_elements = 1u << 14;
  config.threads = 4;
  config.iterations = 3;
  return config;
}

TEST(Stream, TriadComputesCorrectValues) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  BufferPlacement placement;
  placement.forced_node = 0;
  auto runner = StreamRunner::create(machine, nullptr,
                                     machine.topology().numa_node(0)->cpuset(),
                                     small_stream(), placement);
  ASSERT_TRUE(runner.ok()) << runner.error().to_string();
  auto result = (*runner)->run_triad();
  ASSERT_TRUE(result.ok());
  // a[i] = b[i] + 3*c[i] with the deterministic init pattern: checksum > 0
  // and exactly reproducible.
  EXPECT_GT(result->checksum, 0.0);
  EXPECT_GT(result->triad_bytes_per_second, 0.0);
  EXPECT_EQ(result->node_a, 0u);
}

TEST(Stream, DramBeatsNvdimm) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  BufferPlacement dram;
  dram.forced_node = 0;
  BufferPlacement nvdimm;
  nvdimm.forced_node = 2;
  auto on_dram = StreamRunner::create(machine, nullptr, initiator,
                                      small_stream(), dram);
  auto on_nvdimm = StreamRunner::create(machine, nullptr, initiator,
                                        small_stream(), nvdimm);
  ASSERT_TRUE(on_dram.ok());
  ASSERT_TRUE(on_nvdimm.ok());
  auto fast = (*on_dram)->run_triad();
  auto slow = (*on_nvdimm)->run_triad();
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(fast->triad_bytes_per_second, slow->triad_bytes_per_second * 1.8);
}

TEST(Stream, NvdimmDegradesWithFootprint) {
  // Table IIIa row "Capacity/NVDIMM": 22.4 GiB fast, 89.4 GiB slow.
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  BufferPlacement nvdimm;
  nvdimm.forced_node = 2;

  StreamConfig small = small_stream();  // 22 GiB
  StreamConfig large = small_stream();
  large.declared_total_bytes = 90ull * kGiB;

  auto small_runner =
      StreamRunner::create(machine, nullptr, initiator, small, nvdimm);
  ASSERT_TRUE(small_runner.ok());
  auto small_result = (*small_runner)->run_triad();
  ASSERT_TRUE(small_result.ok());

  auto large_runner =
      StreamRunner::create(machine, nullptr, initiator, large, nvdimm);
  ASSERT_TRUE(large_runner.ok());
  auto large_result = (*large_runner)->run_triad();
  ASSERT_TRUE(large_result.ok());

  EXPECT_GT(small_result->triad_bytes_per_second,
            large_result->triad_bytes_per_second * 2.0);
}

// --- SpMV runner ---

apps::SpmvConfig small_spmv() {
  apps::SpmvConfig config;
  config.matrix_bytes = 8ull * kGiB;
  config.vector_bytes = 2ull * kGiB;
  config.backing_rows = 1u << 10;
  config.nnz_per_row = 8;
  config.threads = 4;
  config.iterations = 2;
  return config;
}

TEST(Spmv, ComputesCorrectProduct) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  auto runner = SpmvRunner::create(machine, nullptr,
                                   machine.topology().numa_node(0)->cpuset(),
                                   small_spmv(), SpmvPlacement::all_on_node(0));
  ASSERT_TRUE(runner.ok()) << runner.error().to_string();
  auto result = (*runner)->run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->checksum, 0.0);
  EXPECT_GT(result->gflops, 0.0);
  EXPECT_EQ(result->matrix_node, 0u);
}

TEST(Spmv, ChecksumDeterministicAndPlacementIndependent) {
  // The numerical result must not depend on where buffers live.
  auto run_on = [](unsigned node) {
    sim::SimMachine machine(topo::xeon_clx_1lm());
    auto runner = SpmvRunner::create(
        machine, nullptr, machine.topology().numa_node(0)->cpuset(),
        small_spmv(), SpmvPlacement::all_on_node(node));
    EXPECT_TRUE(runner.ok());
    auto result = (*runner)->run();
    EXPECT_TRUE(result.ok());
    return result->checksum;
  };
  EXPECT_DOUBLE_EQ(run_on(0), run_on(2));
}

TEST(Spmv, NvdimmPlacementIsSlower) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  auto fast = SpmvRunner::create(machine, nullptr, initiator, small_spmv(),
                                 SpmvPlacement::all_on_node(0));
  auto slow = SpmvRunner::create(machine, nullptr, initiator, small_spmv(),
                                 SpmvPlacement::all_on_node(2));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  auto fast_result = (*fast)->run();
  auto slow_result = (*slow)->run();
  ASSERT_TRUE(fast_result.ok());
  ASSERT_TRUE(slow_result.ok());
  EXPECT_GT(fast_result->gflops, slow_result->gflops * 1.5);
}

TEST(Spmv, PerBufferPlacementSeparatesMatrixAndVector) {
  sim::SimMachine machine(topo::knl_snc4_flat());
  attr::MemAttrRegistry registry(machine.topology());
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology(), options)).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);

  apps::SpmvConfig config = small_spmv();
  config.matrix_bytes = 3ull * kGiB;  // fits the 4 GiB MCDRAM
  config.vector_bytes = kGiB / 2;
  auto runner = SpmvRunner::create(machine, &allocator,
                                   machine.topology().numa_node(0)->cpuset(),
                                   config, SpmvPlacement::per_buffer());
  ASSERT_TRUE(runner.ok()) << runner.error().to_string();
  auto result = (*runner)->run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(machine.topology().numa_node(result->matrix_node)->memory_kind(),
            topo::MemoryKind::kHBM);
  EXPECT_EQ(machine.topology().numa_node(result->x_node)->memory_kind(),
            topo::MemoryKind::kDRAM);
}

TEST(Spmv, AttributePlacementRequiresAllocator) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  auto runner = SpmvRunner::create(machine, nullptr,
                                   machine.topology().numa_node(0)->cpuset(),
                                   small_spmv(), SpmvPlacement::per_buffer());
  ASSERT_FALSE(runner.ok());
}

TEST(Stream, ChecksumDeterministic) {
  auto run_once = [] {
    sim::SimMachine machine(topo::xeon_clx_1lm());
    BufferPlacement placement;
    placement.forced_node = 0;
    auto runner = StreamRunner::create(
        machine, nullptr, machine.topology().numa_node(0)->cpuset(),
        small_stream(), placement);
    EXPECT_TRUE(runner.ok());
    auto result = (*runner)->run_triad();
    EXPECT_TRUE(result.ok());
    return result->checksum;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hetmem::apps
