#include "hetmem/topo/builder.hpp"

#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"
#include "hetmem/topo/render.hpp"

namespace hetmem::topo {
namespace {

using support::kGiB;

Topology tiny_machine() {
  TopologyBuilder builder("tiny");
  auto package = builder.machine().add_package();
  package.add_cores(2, 2);
  package.attach_numa(MemoryKind::kDRAM, 4 * kGiB);
  auto result = std::move(builder).finalize();
  EXPECT_TRUE(result.ok());
  return std::move(result).take();
}

TEST(Builder, EmptyTopologyRejected) {
  TopologyBuilder builder("empty");
  auto result = std::move(builder).finalize();
  ASSERT_FALSE(result.ok());
}

TEST(Builder, CpuOnlyTopologyRejected) {
  TopologyBuilder builder("cpu-only");
  builder.machine().add_package().add_cores(2);
  auto result = std::move(builder).finalize();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::Errc::kInvalidArgument);
}

TEST(Builder, MemoryOnlyTopologyRejected) {
  TopologyBuilder builder("mem-only");
  builder.machine().attach_numa(MemoryKind::kDRAM, kGiB);
  auto result = std::move(builder).finalize();
  ASSERT_FALSE(result.ok());
}

TEST(Builder, TinyMachineShape) {
  Topology topology = tiny_machine();
  EXPECT_EQ(topology.pus().size(), 4u);
  EXPECT_EQ(topology.numa_nodes().size(), 1u);
  EXPECT_EQ(topology.platform_name(), "tiny");
  EXPECT_EQ(topology.total_memory_bytes(), 4 * kGiB);
}

TEST(Builder, CpusetsAggregateBottomUp) {
  Topology topology = tiny_machine();
  EXPECT_EQ(topology.root().cpuset().count(), 4u);
  const Object* package = topology.root().children().front().get();
  EXPECT_TRUE(package->cpuset() == topology.root().cpuset());
  const Object* core0 = package->children().front().get();
  EXPECT_EQ(core0->cpuset().count(), 2u);
}

TEST(Builder, MemoryChildInheritsLocality) {
  Topology topology = tiny_machine();
  const Object* node = topology.numa_nodes().front();
  EXPECT_TRUE(node->cpuset() == topology.root().cpuset());
  EXPECT_EQ(node->capacity_bytes(), 4 * kGiB);
  EXPECT_EQ(node->memory_kind(), MemoryKind::kDRAM);
}

TEST(Builder, PuOsIndicesAreSequentialMachineWide) {
  TopologyBuilder builder("two-packages");
  auto machine = builder.machine();
  auto p0 = machine.add_package();
  p0.add_cores(2, 1);
  p0.attach_numa(MemoryKind::kDRAM, kGiB);
  auto p1 = machine.add_package();
  p1.add_cores(2, 1);
  p1.attach_numa(MemoryKind::kDRAM, kGiB);
  auto result = std::move(builder).finalize();
  ASSERT_TRUE(result.ok());
  const Topology& topology = *result;
  ASSERT_EQ(topology.pus().size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(topology.pus()[i]->os_index(), i);
    EXPECT_EQ(topology.pus()[i]->logical_index(), i);
  }
}

TEST(Builder, NumaLogicalOrderFollowsAttachmentOrder) {
  TopologyBuilder builder("ordering");
  auto machine = builder.machine();
  auto package = machine.add_package();
  package.add_cores(2);
  auto group = package.add_group();
  group.add_cores(2);
  // Attach group DRAM first, then package NVDIMM: logical order must match.
  group.attach_numa(MemoryKind::kDRAM, kGiB);
  package.attach_numa(MemoryKind::kNVDIMM, 8 * kGiB);
  auto result = std::move(builder).finalize();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->numa_node(0)->memory_kind(), MemoryKind::kDRAM);
  EXPECT_EQ(result->numa_node(1)->memory_kind(), MemoryKind::kNVDIMM);
}

TEST(Builder, GroupSubtypePreserved) {
  TopologyBuilder builder("subtype");
  auto package = builder.machine().add_package();
  auto cmg = package.add_group("CMG");
  cmg.add_cores(1);
  cmg.attach_numa(MemoryKind::kHBM, kGiB);
  auto result = std::move(builder).finalize();
  ASSERT_TRUE(result.ok());
  auto groups = result->objects_of_type(ObjType::kGroup);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0]->subtype(), "CMG");
}

TEST(Builder, MemorySideCacheRecorded) {
  TopologyBuilder builder("cached");
  auto package = builder.machine().add_package();
  package.add_cores(1);
  package.attach_numa(MemoryKind::kNVDIMM, 64 * kGiB,
                      MemorySideCache{.size_bytes = 16 * kGiB,
                                      .associativity = 1,
                                      .line_bytes = 64});
  auto result = std::move(builder).finalize();
  ASSERT_TRUE(result.ok());
  const Object* node = result->numa_nodes().front();
  ASSERT_TRUE(node->memory_side_cache().has_value());
  EXPECT_EQ(node->memory_side_cache()->size_bytes, 16 * kGiB);
}

TEST(Builder, ValidatePassesOnFreshTopology) {
  Topology topology = tiny_machine();
  EXPECT_TRUE(topology.validate().ok());
}

TEST(Render, TreeMentionsEveryNumaNode) {
  Topology topology = tiny_machine();
  const std::string out = render_tree(topology);
  EXPECT_NE(out.find("tiny"), std::string::npos);
  EXPECT_NE(out.find("NUMANode L#0"), std::string::npos);
  EXPECT_NE(out.find("DRAM"), std::string::npos);
  EXPECT_NE(out.find("4.0GiB"), std::string::npos);
}

TEST(Render, CollapsesUniformCores) {
  TopologyBuilder builder("many-cores");
  auto package = builder.machine().add_package();
  package.add_cores(16, 2);
  package.attach_numa(MemoryKind::kDRAM, kGiB);
  auto result = std::move(builder).finalize();
  ASSERT_TRUE(result.ok());
  const std::string out = render_tree(*result);
  EXPECT_NE(out.find("(x16, 2 PU each)"), std::string::npos);
}

TEST(Render, DescribeNumaNode) {
  Topology topology = tiny_machine();
  const std::string out = describe_numa_node(*topology.numa_nodes().front());
  EXPECT_EQ(out, "NUMANode L#0 P#0 (DRAM, 4.0GiB)");
}

}  // namespace
}  // namespace hetmem::topo
