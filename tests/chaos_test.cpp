// Chaos harness: run the full stack — corrupted HMAT -> lenient parse ->
// registry -> probe under fault injection -> resilient allocator -> real
// workloads — on every topology preset under randomized (but seeded) fault
// schedules. The contract being tested (docs/RESILIENCE.md): workloads
// complete with *validated* results no matter what faults fire. Degraded
// placement is fine; crashes, hangs or wrong answers are not.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem {
namespace {

using support::kMiB;

/// First NUMA node with CPUs — some presets lead with CPU-less nodes.
support::Bitmap first_initiator(const topo::Topology& topology) {
  for (const topo::Object* node : topology.numa_nodes()) {
    if (!node->cpuset().empty()) return node->cpuset();
  }
  return {};
}

struct ChaosOutcome {
  std::string fault_fingerprint;
  std::vector<std::pair<std::string, unsigned>> placements;  // label -> node
  double stream_checksum = 0.0;
  std::size_t parse_errors = 0;
  std::size_t parse_warnings = 0;
};

/// One full chaos pipeline on `topology` with fault schedule `seed`.
/// Every step must complete; gtest assertions fire inside (void return so
/// ASSERT_* can bail out; results land in *out).
void run_chaos_pipeline(const topo::NamedTopology& preset, std::uint64_t seed,
                        ChaosOutcome* out) {
  ChaosOutcome& outcome = *out;
  sim::SimMachine machine(preset.factory());
  const support::Bitmap initiator = first_initiator(machine.topology());
  EXPECT_FALSE(initiator.empty()) << preset.name;

  fault::FaultInjector injector = fault::FaultInjector::preset("heavy", seed);

  // 1. Firmware tables arrive corrupted; the lenient parser must recover
  //    per-record with line-numbered diagnostics, never crash or mis-rank.
  const std::string clean_text = hmat::serialize(hmat::generate(machine.topology()));
  const fault::HmatCorruption corruption =
      fault::corrupt_hmat_text(clean_text, injector);
  const hmat::ParseReport report = hmat::parse_lenient(corruption.text);
  for (const hmat::Diagnostic& diagnostic : report.diagnostics) {
    EXPECT_GT(diagnostic.line, 0u)
        << preset.name << ": diagnostic without line number: "
        << diagnostic.message;
  }
  if (corruption.values_garbled > 0) {
    EXPECT_GT(report.error_count(), 0u)
        << preset.name << ": garbled values must produce error diagnostics";
  }
  outcome.parse_errors = report.error_count();
  outcome.parse_warnings = report.warning_count();

  attr::MemAttrRegistry registry(machine.topology());
  auto load = hmat::load_into(registry, report.table);
  EXPECT_TRUE(load.ok()) << preset.name;

  // 2. Benchmark discovery under probe faults and noise: failed pairs are
  //    skipped, noisy pairs are demoted, and the sweep still completes.
  machine.set_fault_injector(&injector);
  probe::ProbeOptions probe_options;
  probe_options.buffer_bytes = 64 * kMiB;
  probe_options.backing_bytes = 64 * 1024;
  probe_options.chase_accesses = 1000;
  probe_options.threads = 4;
  probe_options.include_remote = false;
  probe_options.faults = &injector;
  probe_options.repeats = 2;
  auto discovery = probe::discover(machine, probe_options);
  ASSERT_TRUE(discovery.ok()) << preset.name;
  EXPECT_TRUE(probe::feed_registry(registry, *discovery).ok());

  // 3. Resilient allocation: bounded transient retry + attribute rescue.
  // Deep retry budget: on single-local-node topologies (Fugaku CMGs) there
  // is no fallback target, so outlasting a transient burst is the only
  // way an allocation can land.
  alloc::HeterogeneousAllocator allocator(machine, registry);
  allocator.set_retry_policy({.max_transient_retries = 8});

  // STREAM with the Bandwidth criterion. Reference checksum from a clean
  // machine of the same preset: chaos may move the arrays, never corrupt
  // the arithmetic.
  apps::StreamConfig stream_config;
  stream_config.declared_total_bytes = 96 * kMiB;
  stream_config.backing_elements = 1u << 14;
  stream_config.threads = 4;
  stream_config.iterations = 2;
  apps::BufferPlacement stream_placement;
  stream_placement.attribute = attr::kBandwidth;
  stream_placement.attribute_rescue = true;
  auto stream_runner = apps::StreamRunner::create(machine, &allocator, initiator,
                                                  stream_config, stream_placement);
  ASSERT_TRUE(stream_runner.ok()) << preset.name << " seed " << seed;
  auto stream_result = (*stream_runner)->run_triad();
  ASSERT_TRUE(stream_result.ok()) << preset.name << " seed " << seed;
  outcome.stream_checksum = stream_result->checksum;

  // 4. Mid-run capacity squeeze: hog most of the node STREAM landed on, then
  //    bring up Graph500 — it must route around the squeezed target.
  // Leave 64 MiB: enough for the small BFS instance even when the fault
  // schedule also took the *other* local node offline — the contract is
  // resilience, not conjuring memory that does not exist.
  const unsigned squeezed = stream_result->node_a;
  const std::uint64_t available = machine.available_bytes(squeezed);
  sim::BufferId hog{};
  if (available > 64 * kMiB) {
    auto hog_buffer =
        machine.allocate(available - 64 * kMiB, squeezed, "chaos-hog");
    if (hog_buffer.ok()) hog = *hog_buffer;
  }

  apps::Graph500Config bfs_config;
  bfs_config.scale_declared = 16;
  bfs_config.scale_backing = 12;
  bfs_config.threads = 4;
  bfs_config.num_roots = 2;
  apps::Graph500Placement bfs_placement =
      apps::Graph500Placement::by_attribute(attr::kLatency);
  bfs_placement.graph.attribute_rescue = true;
  bfs_placement.parents.attribute_rescue = true;
  bfs_placement.frontier.attribute_rescue = true;
  auto bfs_runner = apps::Graph500Runner::create(machine, &allocator, initiator,
                                                 bfs_config, bfs_placement);
  std::string node_state;
  for (unsigned n = 0; n < machine.topology().numa_nodes().size(); ++n) {
    node_state += " node" + std::to_string(n) +
                  (machine.node_online(n) ? "+" : "-") + "=" +
                  std::to_string(machine.available_bytes(n) / kMiB) + "MiB";
  }
  ASSERT_TRUE(bfs_runner.ok())
      << preset.name << " seed " << seed << ": "
      << (bfs_runner.ok() ? "" : bfs_runner.error().to_string()) << node_state;
  auto bfs_result = (*bfs_runner)->run();
  ASSERT_TRUE(bfs_result.ok()) << preset.name << " seed " << seed;
  EXPECT_GT(bfs_result->harmonic_mean_teps, 0.0);
  // Graph500's own validation step: the BFS tree must be a correct answer
  // even when every buffer placement was degraded.
  EXPECT_TRUE((*bfs_runner)->validate_last_tree().ok())
      << preset.name << " seed " << seed;

  machine.set_fault_injector(nullptr);
  if (hog.valid()) (void)machine.free(hog);

  outcome.fault_fingerprint = injector.schedule_fingerprint();
  for (const alloc::TraceEvent& event : allocator.trace()) {
    if (event.kind == alloc::TraceEvent::Kind::kAlloc) {
      outcome.placements.emplace_back(event.label, event.node);
    }
  }
}

class ChaosTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ChaosTest, WorkloadsSurviveFaultScheduleWithValidResults) {
  const auto& preset =
      topo::all_presets()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const std::uint64_t seed = std::get<1>(GetParam());
  ChaosOutcome outcome;
  run_chaos_pipeline(preset, seed, &outcome);
  ASSERT_FALSE(HasFatalFailure());

  // The checksum is a pure function of the backing arrays — placement
  // degradation must not change the numerical answer.
  sim::SimMachine clean_machine(preset.factory());
  apps::StreamConfig stream_config;
  stream_config.declared_total_bytes = 96 * kMiB;
  stream_config.backing_elements = 1u << 14;
  stream_config.threads = 4;
  stream_config.iterations = 2;
  apps::BufferPlacement forced;
  forced.forced_node = 0;
  auto clean_runner =
      apps::StreamRunner::create(clean_machine, nullptr,
                                 first_initiator(clean_machine.topology()),
                                 stream_config, forced);
  ASSERT_TRUE(clean_runner.ok());
  auto clean_result = (*clean_runner)->run_triad();
  ASSERT_TRUE(clean_result.ok());
  EXPECT_DOUBLE_EQ(outcome.stream_checksum, clean_result->checksum)
      << preset.name << " seed " << seed << ": chaos changed the answer";
}

INSTANTIATE_TEST_SUITE_P(
    AllPresetsTimesSeeds, ChaosTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(topo::all_presets().size())),
        ::testing::Values(101, 202, 303)),
    [](const ::testing::TestParamInfo<ChaosTest::ParamType>& info) {
      std::string name =
          topo::all_presets()[static_cast<std::size_t>(std::get<0>(info.param))]
              .name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// The determinism contract: the same seed must reproduce the exact fault
// schedule AND the exact allocator decisions — this is what makes a chaos
// failure debuggable after the fact.
TEST(ChaosReplayTest, SameSeedReplaysFaultsAndPlacements) {
  const topo::NamedTopology& preset = topo::all_presets().front();
  ChaosOutcome first, second, other;
  run_chaos_pipeline(preset, 4242, &first);
  run_chaos_pipeline(preset, 4242, &second);
  ASSERT_FALSE(HasFatalFailure());
  EXPECT_EQ(first.fault_fingerprint, second.fault_fingerprint);
  EXPECT_EQ(first.placements, second.placements);
  EXPECT_EQ(first.parse_errors, second.parse_errors);
  EXPECT_EQ(first.parse_warnings, second.parse_warnings);
  EXPECT_DOUBLE_EQ(first.stream_checksum, second.stream_checksum);

  run_chaos_pipeline(preset, 4243, &other);
  EXPECT_NE(first.fault_fingerprint, other.fault_fingerprint)
      << "different seeds should draw different schedules";
}

// HMAT corruption must never produce a silently wrong ranking: every record
// the lenient parser *kept* appears verbatim-parseable, and duplicates are
// resolved last-wins (deterministically).
TEST(ChaosHmatTest, KeptEntriesAreWellFormedAndDeduped) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    sim::SimMachine machine(topo::xeon_clx_snc_1lm());
    fault::FaultInjector injector = fault::FaultInjector::preset("hmat-chaos", seed);
    const std::string text = hmat::serialize(hmat::generate(machine.topology()));
    const fault::HmatCorruption corruption = fault::corrupt_hmat_text(text, injector);
    const hmat::ParseReport report = hmat::parse_lenient(corruption.text);
    // No duplicate (initiator, target, metric, access) keys survive.
    hmat::HmatTable copy = report.table;
    EXPECT_EQ(hmat::dedupe_entries(copy), 0u) << "seed " << seed;
    // Values are sane — positive, finite; NaN garbling was rejected.
    for (const hmat::LocalityEntry& entry : report.table.locality) {
      EXPECT_GT(entry.value, 0.0);
    }
  }
}

}  // namespace
}  // namespace hetmem
