// Cross-preset property tests for the attributes API: on every platform the
// paper depicts, the ranking/extremum/consistency invariants must hold for
// every attribute — this is what makes the API trustworthy as an allocation
// oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <iterator>
#include <random>
#include <thread>
#include <vector>

#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::attr {
namespace {

class AttrConsistencyTest
    : public ::testing::TestWithParam<topo::NamedTopology> {
 protected:
  void SetUp() override {
    topology_ = std::make_unique<topo::Topology>(GetParam().factory());
    registry_ = std::make_unique<MemAttrRegistry>(*topology_);
    // Fully populated HMAT (local + remote) so per-initiator attributes have
    // values everywhere.
    hmat::GenerateOptions options;
    options.local_only = false;
    options.read_write_split = true;
    auto loaded = hmat::load_into(*registry_, hmat::generate(*topology_, options));
    ASSERT_TRUE(loaded.ok());
  }

  std::unique_ptr<topo::Topology> topology_;
  std::unique_ptr<MemAttrRegistry> registry_;
};

TEST_P(AttrConsistencyTest, BestTargetIsExtremumOfValuesOverLocalTargets) {
  for (const topo::Object* locality_node : topology_->numa_nodes()) {
    if (locality_node->cpuset().empty()) continue;
    const auto initiator = Initiator::from_cpuset(locality_node->cpuset());
    for (AttrId attr = 0; attr < registry_->attribute_count(); ++attr) {
      if (!registry_->has_values(attr)) continue;
      auto best = registry_->best_target(attr, initiator);
      auto ranked = registry_->targets_ranked(attr, initiator);
      if (ranked.empty()) {
        EXPECT_FALSE(best.ok());
        continue;
      }
      ASSERT_TRUE(best.ok()) << registry_->info(attr).name;
      // best == head of the ranking.
      EXPECT_EQ(best->target, ranked.front().target);
      EXPECT_DOUBLE_EQ(best->value, ranked.front().value);
      // best is the extremum of get_value over all ranked targets.
      const bool higher =
          registry_->info(attr).polarity == Polarity::kHigherFirst;
      for (const TargetValue& tv : ranked) {
        if (higher) {
          EXPECT_GE(best->value, tv.value) << registry_->info(attr).name;
        } else {
          EXPECT_LE(best->value, tv.value) << registry_->info(attr).name;
        }
        // Each ranked value agrees with a direct get_value call.
        auto direct = registry_->value(
            attr, *tv.target,
            registry_->info(attr).need_initiator
                ? std::optional<Initiator>(initiator)
                : std::nullopt);
        ASSERT_TRUE(direct.ok());
        EXPECT_DOUBLE_EQ(*direct, tv.value);
      }
    }
  }
}

TEST_P(AttrConsistencyTest, RankingIsMonotone) {
  for (const topo::Object* locality_node : topology_->numa_nodes()) {
    if (locality_node->cpuset().empty()) continue;
    const auto initiator = Initiator::from_cpuset(locality_node->cpuset());
    for (AttrId attr = 0; attr < registry_->attribute_count(); ++attr) {
      auto ranked = registry_->targets_ranked(attr, initiator);
      const bool higher =
          registry_->info(attr).polarity == Polarity::kHigherFirst;
      for (std::size_t i = 1; i < ranked.size(); ++i) {
        if (higher) {
          EXPECT_GE(ranked[i - 1].value, ranked[i].value);
        } else {
          EXPECT_LE(ranked[i - 1].value, ranked[i].value);
        }
      }
    }
  }
}

TEST_P(AttrConsistencyTest, RankedTargetsAreLocalToInitiator) {
  for (const topo::Object* locality_node : topology_->numa_nodes()) {
    if (locality_node->cpuset().empty()) continue;
    const auto initiator = Initiator::from_cpuset(locality_node->cpuset());
    for (AttrId attr = 0; attr < registry_->attribute_count(); ++attr) {
      for (const TargetValue& tv :
           registry_->targets_ranked(attr, initiator)) {
        EXPECT_TRUE(tv.target->cpuset().intersects(locality_node->cpuset()));
      }
    }
  }
}

TEST_P(AttrConsistencyTest, LatencyAndBandwidthDisagreeOnlyViaPolarity) {
  // For every initiator, the Bandwidth-best and Latency-best targets must
  // both be *local*; on platforms where one technology wins both (Xeon DRAM)
  // they coincide, on KNL-style platforms they may differ — but both must be
  // defensible: no target may beat the best on its own metric.
  for (const topo::Object* locality_node : topology_->numa_nodes()) {
    if (locality_node->cpuset().empty()) continue;
    const auto initiator = Initiator::from_cpuset(locality_node->cpuset());
    auto best_bw = registry_->best_target(kBandwidth, initiator);
    auto best_lat = registry_->best_target(kLatency, initiator);
    if (!best_bw.ok() || !best_lat.ok()) continue;
    auto bw_of_lat_best =
        registry_->value(kBandwidth, *best_lat->target, initiator);
    ASSERT_TRUE(bw_of_lat_best.ok());
    EXPECT_GE(best_bw->value, *bw_of_lat_best);
    auto lat_of_bw_best =
        registry_->value(kLatency, *best_bw->target, initiator);
    ASSERT_TRUE(lat_of_bw_best.ok());
    EXPECT_LE(best_lat->value, *lat_of_bw_best);
  }
}

TEST_P(AttrConsistencyTest, BestInitiatorConsistentWithStoredValues) {
  for (const topo::Object* target : topology_->numa_nodes()) {
    auto best = registry_->best_initiator(kLatency, *target);
    if (!best.ok()) continue;
    for (const InitiatorValue& iv : registry_->initiators(kLatency, *target)) {
      EXPECT_LE(best->value, iv.value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, AttrConsistencyTest, ::testing::ValuesIn(topo::all_presets()),
    [](const ::testing::TestParamInfo<topo::NamedTopology>& info) {
      return info.param.name;
    });

// Eq. 1-3 of the paper: the advertised orderings per platform.
TEST(PaperEquations, Fig3PlatformOrderings) {
  topo::Topology topology = topo::fictitious_fig3();
  MemAttrRegistry registry(topology);
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(hmat::load_into(registry, hmat::generate(topology, options)).ok());

  // Initiator: first SNC (sees HBM, DRAM, NVDIMM, NAM).
  const topo::Object* pu0 = topology.pus().front();
  const auto initiator = Initiator::from_cpuset(pu0->cpuset());

  auto kind_of = [](const TargetValue& tv) { return tv.target->memory_kind(); };

  // Eq. 1: HBM_BW > DRAM_BW > NVDIMM_BW (> NAM).
  auto by_bw = registry.targets_ranked(kBandwidth, initiator);
  ASSERT_EQ(by_bw.size(), 4u);
  EXPECT_EQ(kind_of(by_bw[0]), topo::MemoryKind::kHBM);
  EXPECT_EQ(kind_of(by_bw[1]), topo::MemoryKind::kDRAM);
  EXPECT_EQ(kind_of(by_bw[2]), topo::MemoryKind::kNVDIMM);
  EXPECT_EQ(kind_of(by_bw[3]), topo::MemoryKind::kNAM);

  // Eq. 3: NVDIMM_Cap > DRAM_Cap > HBM_Cap (NAM is even bigger here).
  auto by_cap = registry.targets_ranked(kCapacity, initiator);
  ASSERT_EQ(by_cap.size(), 4u);
  EXPECT_EQ(kind_of(by_cap[0]), topo::MemoryKind::kNAM);
  EXPECT_EQ(kind_of(by_cap[1]), topo::MemoryKind::kNVDIMM);
  EXPECT_EQ(kind_of(by_cap[2]), topo::MemoryKind::kDRAM);
  EXPECT_EQ(kind_of(by_cap[3]), topo::MemoryKind::kHBM);

  // Eq. 2: DRAM_Lat <= HBM_Lat < NVDIMM_Lat: latency ranking ends with
  // NVDIMM/NAM.
  auto by_lat = registry.targets_ranked(kLatency, initiator);
  ASSERT_EQ(by_lat.size(), 4u);
  EXPECT_EQ(kind_of(by_lat[0]), topo::MemoryKind::kDRAM);
  EXPECT_EQ(kind_of(by_lat[3]), topo::MemoryKind::kNAM);
}

// --- concurrent reads during probe-style writes (docs/CONCURRENCY.md) ---
//
// A writer rewrites every node's Bandwidth value generation after
// generation (base(node) * g, so the relative order never changes) while
// reader threads continuously rank. The registry promises a ranking is
// never torn: each returned value must be exactly base(node) * g for some
// written generation g, the ranking must be sorted for the attribute's
// polarity, and no target may appear twice. A torn 8-byte value or a rank
// computed from a half-visible update breaks one of these.
TEST(AttrConcurrency, RankingsAreNeverTornWhileProbeWritersRun) {
  topo::Topology topology = topo::xeon_clx_1lm();
  MemAttrRegistry registry(topology);
  const auto& nodes = topology.numa_nodes();
  const auto initiator = Initiator::from_cpuset(topology.pus().front()->cpuset());

  auto base = [](unsigned node) { return 100.0 * (node + 1); };
  constexpr unsigned kGenerations = 400;

  // Generation 1 first so readers always have a complete value set.
  for (unsigned n = 0; n < nodes.size(); ++n) {
    ASSERT_TRUE(registry.set_value(kBandwidth, *nodes[n], initiator, base(n)).ok());
  }

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (unsigned g = 2; g <= kGenerations; ++g) {
      for (unsigned n = 0; n < nodes.size(); ++n) {
        ASSERT_TRUE(
            registry.set_value(kBandwidth, *nodes[n], initiator, base(n) * g)
                .ok());
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  auto is_written_value = [&](const TargetValue& tv) {
    const double ratio = tv.value / base(tv.target->logical_index());
    const double generation = std::round(ratio);
    return generation >= 1.0 && generation <= kGenerations &&
           std::abs(ratio - generation) < 1e-9;
  };

  std::vector<std::thread> readers;
  for (unsigned r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      do {
        const std::vector<TargetValue> ranked =
            registry.targets_ranked(kBandwidth, initiator);
        ASSERT_FALSE(ranked.empty());
        ASSERT_LE(ranked.size(), nodes.size());
        for (std::size_t i = 0; i < ranked.size(); ++i) {
          ASSERT_TRUE(is_written_value(ranked[i]))
              << "torn value " << ranked[i].value;
          if (i > 0) {
            // Bandwidth is kHigherFirst.
            ASSERT_GE(ranked[i - 1].value, ranked[i].value);
          }
          for (std::size_t j = i + 1; j < ranked.size(); ++j) {
            ASSERT_NE(ranked[i].target, ranked[j].target);
          }
        }
        auto best = registry.best_target(kBandwidth, initiator);
        ASSERT_TRUE(best.ok());
        ASSERT_TRUE(is_written_value(*best));
      } while (!writer_done.load(std::memory_order_acquire));
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
}

// --- generation-invalidated ranking cache (docs/PERF.md) ---
//
// The cache's whole contract is "bit-identical to uncached recomputation".
// These property tests drive randomized mutation interleavings and check the
// cached snapshots against (a) the same registry's uncached methods after
// every step and (b) a completely fresh registry that replays the same
// mutation log — if either ever diverges the invalidation protocol is wrong.

void expect_identical_ranking(const std::vector<TargetValue>& cached,
                              const std::vector<TargetValue>& uncached,
                              const char* what) {
  ASSERT_EQ(cached.size(), uncached.size()) << what;
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].target, uncached[i].target) << what << " rank " << i;
    // Exact (bitwise) double equality on purpose: the cache must memoize,
    // not approximate.
    EXPECT_EQ(cached[i].value, uncached[i].value) << what << " rank " << i;
  }
}

TEST(RankingCacheProperty, RandomInterleavingsMatchUncachedAndFreshRegistry) {
  topo::Topology topology = topo::xeon_clx_1lm();
  const auto& nodes = topology.numa_nodes();
  const auto initiator = Initiator::from_cpuset(topology.pus().front()->cpuset());

  hmat::GenerateOptions options;
  options.local_only = false;
  options.read_write_split = true;
  const hmat::HmatTable table = hmat::generate(topology, options);

  MemAttrRegistry registry(topology);
  ASSERT_TRUE(hmat::load_into(registry, table).ok());

  // Mutation log so the run can be replayed into a fresh registry.
  struct Mutation {
    enum class Kind { kSetValue, kSetConfidence, kMarkAll, kInvalidate } kind;
    AttrId attr = 0;
    unsigned node = 0;
    double value = 0.0;
    Confidence confidence = Confidence::kTrusted;
  };
  std::vector<Mutation> log;

  const AttrId attrs[] = {kBandwidth, kLatency, kReadBandwidth};
  const Confidence confidences[] = {Confidence::kTrusted, Confidence::kNoisy,
                                    Confidence::kStale};
  std::mt19937 rng(20260806u);

  auto check_against_uncached = [&](const MemAttrRegistry& reg) {
    for (AttrId attr : {kBandwidth, kLatency, kCapacity, kReadBandwidth}) {
      expect_identical_ranking(
          reg.targets_ranked_cached(attr, initiator)->targets,
          reg.targets_ranked(attr, initiator), "plain");
      expect_identical_ranking(
          reg.targets_ranked_resilient_cached(attr, initiator)->targets,
          reg.targets_ranked_resilient(attr, initiator), "resilient");
    }
  };

  std::uint64_t last_generation = registry.generation();
  for (unsigned step = 0; step < 400; ++step) {
    Mutation m;
    m.kind = static_cast<Mutation::Kind>(rng() % 4);
    m.attr = attrs[rng() % std::size(attrs)];
    m.node = static_cast<unsigned>(rng() % nodes.size());
    m.value = 1.0 + static_cast<double>(rng() % 100000);
    m.confidence = confidences[rng() % std::size(confidences)];
    switch (m.kind) {
      case Mutation::Kind::kSetValue:
        ASSERT_TRUE(registry
                        .set_value(m.attr, *nodes[m.node], initiator, m.value)
                        .ok());
        break;
      case Mutation::Kind::kSetConfidence:
        // May be kNotFound when the pair has no value yet; that is fine (a
        // failed mutation must simply not corrupt the cache).
        (void)registry.set_confidence(m.attr, *nodes[m.node], initiator,
                                      m.confidence);
        break;
      case Mutation::Kind::kMarkAll:
        registry.mark_all(m.attr, m.confidence);
        break;
      case Mutation::Kind::kInvalidate:
        registry.invalidate_rankings();  // node-offline style event
        break;
    }
    log.push_back(m);

    // The generation counter may only move forward.
    const std::uint64_t generation = registry.generation();
    ASSERT_GE(generation, last_generation);
    last_generation = generation;

    check_against_uncached(registry);
  }

  // Replay into a fresh registry: its uncached rankings must match the
  // original's cached snapshots exactly.
  MemAttrRegistry fresh(topology);
  ASSERT_TRUE(hmat::load_into(fresh, table).ok());
  for (const Mutation& m : log) {
    switch (m.kind) {
      case Mutation::Kind::kSetValue:
        ASSERT_TRUE(
            fresh.set_value(m.attr, *nodes[m.node], initiator, m.value).ok());
        break;
      case Mutation::Kind::kSetConfidence:
        (void)fresh.set_confidence(m.attr, *nodes[m.node], initiator,
                                   m.confidence);
        break;
      case Mutation::Kind::kMarkAll:
        fresh.mark_all(m.attr, m.confidence);
        break;
      case Mutation::Kind::kInvalidate:
        break;  // no value-state effect
    }
  }
  for (AttrId attr : {kBandwidth, kLatency, kCapacity, kReadBandwidth}) {
    expect_identical_ranking(
        registry.targets_ranked_cached(attr, initiator)->targets,
        fresh.targets_ranked(attr, initiator), "fresh plain");
    expect_identical_ranking(
        registry.targets_ranked_resilient_cached(attr, initiator)->targets,
        fresh.targets_ranked_resilient(attr, initiator), "fresh resilient");
  }
}

// Disabling the cache must not change results either (the benchmarks rely
// on the switch being behavior-neutral).
TEST(RankingCacheProperty, DisabledCacheIsBehaviorNeutral) {
  topo::Topology topology = topo::xeon_clx_1lm();
  MemAttrRegistry registry(topology);
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(hmat::load_into(registry, hmat::generate(topology, options)).ok());
  const auto initiator = Initiator::from_cpuset(topology.pus().front()->cpuset());

  const auto enabled =
      registry.targets_ranked_resilient_cached(kBandwidth, initiator);
  registry.set_ranking_cache_enabled(false);
  EXPECT_FALSE(registry.ranking_cache_enabled());
  const auto disabled =
      registry.targets_ranked_resilient_cached(kBandwidth, initiator);
  registry.set_ranking_cache_enabled(true);
  expect_identical_ranking(enabled->targets, disabled->targets, "switch");
}

// Every successful mutation bumps the generation exactly once, under an
// exclusive lock — so with W writers each performing K mutations the counter
// must land on exactly start + W*K, and no observer may ever see it move
// backwards. A lost or duplicated bump breaks cache invalidation (a stale
// snapshot could validate against a reused stamp).
TEST(RankingCacheProperty, GenerationStrictlyMonotonicUnderConcurrency) {
  topo::Topology topology = topo::xeon_clx_1lm();
  MemAttrRegistry registry(topology);
  const auto& nodes = topology.numa_nodes();
  const auto initiator = Initiator::from_cpuset(topology.pus().front()->cpuset());

  constexpr unsigned kWriters = 4;
  constexpr unsigned kMutationsPerWriter = 500;
  const std::uint64_t start = registry.generation();

  std::atomic<bool> done{false};
  std::vector<std::thread> observers;
  for (unsigned o = 0; o < 2; ++o) {
    observers.emplace_back([&] {
      std::uint64_t last = registry.generation();
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t now = registry.generation();
        ASSERT_GE(now, last);
        last = now;
      }
    });
  }

  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (unsigned k = 0; k < kMutationsPerWriter; ++k) {
        const unsigned node = (w + k) % nodes.size();
        ASSERT_TRUE(registry
                        .set_value(kBandwidth, *nodes[node], initiator,
                                   1.0 + w * 1000.0 + k)
                        .ok());
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  for (std::thread& observer : observers) observer.join();

  EXPECT_EQ(registry.generation(), start + kWriters * kMutationsPerWriter);
}

}  // namespace
}  // namespace hetmem::attr
