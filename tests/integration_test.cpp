// Integration tests: the paper's end-to-end claims, exercised through the
// full stack (topology -> HMAT/probe -> registry -> allocator -> apps ->
// profiler). These are the qualitative shapes of Tables II-IV and the
// Fig. 6 workflow; the bench/ harnesses print the full tables.
#include <gtest/gtest.h>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/prof/profiler.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem {
namespace {

using support::kGiB;
using support::kMiB;

apps::Graph500Config bfs_config(unsigned scale_declared = 24) {
  apps::Graph500Config config;
  config.scale_declared = scale_declared;
  config.scale_backing = 13;
  config.threads = 8;
  config.num_roots = 3;
  return config;
}

// Table IIa shape: on the Xeon, DRAM beats NVDIMM by 1.5-3x for BFS.
TEST(TableII, XeonDramBeatsNvdimmWithinPaperBand) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  auto dram = apps::Graph500Runner::create(
      machine, nullptr, initiator, bfs_config(),
      apps::Graph500Placement::all_on_node(0));
  auto nvdimm = apps::Graph500Runner::create(
      machine, nullptr, initiator, bfs_config(),
      apps::Graph500Placement::all_on_node(2));
  ASSERT_TRUE(dram.ok());
  ASSERT_TRUE(nvdimm.ok());
  auto dram_teps = (*dram)->run();
  auto nvdimm_teps = (*nvdimm)->run();
  ASSERT_TRUE(dram_teps.ok());
  ASSERT_TRUE(nvdimm_teps.ok());
  const double ratio =
      dram_teps->harmonic_mean_teps / nvdimm_teps->harmonic_mean_teps;
  EXPECT_GT(ratio, 1.3) << "paper: 1.5x-3x";
  EXPECT_LT(ratio, 4.5);
}

// Table IIa last row: NVDIMM falls off a cliff at 34.36 GB.
TEST(TableII, NvdimmCliffAtLargeGraphs) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  auto small = apps::Graph500Runner::create(
      machine, nullptr, initiator, bfs_config(24),
      apps::Graph500Placement::all_on_node(2));
  auto large = apps::Graph500Runner::create(
      machine, nullptr, initiator, bfs_config(28),
      apps::Graph500Placement::all_on_node(2));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  auto small_teps = (*small)->run();
  auto large_teps = (*large)->run();
  ASSERT_TRUE(small_teps.ok());
  ASSERT_TRUE(large_teps.ok());
  EXPECT_GT(small_teps->harmonic_mean_teps,
            large_teps->harmonic_mean_teps * 1.5)
      << "paper: 2.107 -> 1.044 TEPSe8";
}

// Table IIb shape: on KNL, HBM and DRAM are equivalent for BFS (latency-
// bound application, similar latencies).
TEST(TableII, KnlHbmAndDramEquivalentForBfs) {
  sim::SimMachine machine(topo::knl_snc4_flat());
  machine.set_llc_bytes(8 * kMiB);  // no L3 on KNL; aggregate cluster L2
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  apps::Graph500Config config = bfs_config(22);  // fits 4 GiB MCDRAM? no --
  // HBM node is 4 GiB: scale 22 graph declared ~0.5 GiB CSR + overhead fits.
  config.compute_ns_per_edge = 80.0;  // slow KNL cores
  auto dram = apps::Graph500Runner::create(
      machine, nullptr, initiator, config,
      apps::Graph500Placement::all_on_node(0));
  auto hbm = apps::Graph500Runner::create(
      machine, nullptr, initiator, config,
      apps::Graph500Placement::all_on_node(4));
  ASSERT_TRUE(dram.ok());
  ASSERT_TRUE(hbm.ok());
  auto dram_teps = (*dram)->run();
  auto hbm_teps = (*hbm)->run();
  ASSERT_TRUE(dram_teps.ok());
  ASSERT_TRUE(hbm_teps.ok());
  const double ratio =
      hbm_teps->harmonic_mean_teps / dram_teps->harmonic_mean_teps;
  EXPECT_NEAR(ratio, 1.0, 0.15) << "paper: 0.418 vs 0.415 (about equal)";
}

// Table IIIb shape: on KNL, STREAM with the Bandwidth criterion (-> HBM)
// beats the Latency criterion (-> DRAM) by ~3x.
TEST(TableIII, KnlBandwidthCriterionWinsForStream) {
  sim::SimMachine machine(topo::knl_snc4_flat());
  attr::MemAttrRegistry registry(machine.topology());
  probe::ProbeOptions probe_options;
  probe_options.backing_bytes = 64 * 1024;
  probe_options.chase_accesses = 2000;
  probe_options.buffer_bytes = 256 * kMiB;  // fits the 4 GiB MCDRAM
  auto report = probe::discover(machine, probe_options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(probe::feed_registry(registry, *report).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);

  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  apps::StreamConfig config;
  config.declared_total_bytes = 1ull * kGiB;  // 1.1 GiB row of Table IIIb
  config.backing_elements = 1u << 14;
  config.threads = 16;
  config.iterations = 3;

  apps::BufferPlacement bw_placement;
  bw_placement.attribute = attr::kBandwidth;
  auto bw_runner = apps::StreamRunner::create(machine, &allocator, initiator,
                                              config, bw_placement);
  ASSERT_TRUE(bw_runner.ok());
  auto bw = (*bw_runner)->run_triad();
  ASSERT_TRUE(bw.ok());
  EXPECT_EQ(machine.topology().numa_node(bw->node_a)->memory_kind(),
            topo::MemoryKind::kHBM);

  apps::BufferPlacement lat_placement;
  lat_placement.attribute = attr::kLatency;
  auto lat_runner = apps::StreamRunner::create(machine, &allocator, initiator,
                                               config, lat_placement);
  ASSERT_TRUE(lat_runner.ok());
  auto lat = (*lat_runner)->run_triad();
  ASSERT_TRUE(lat.ok());

  const double ratio = bw->triad_bytes_per_second / lat->triad_bytes_per_second;
  EXPECT_GT(ratio, 2.0) << "paper: ~85-90 vs ~29 GB/s";
}

// Table IIIb last row: 17.9 GiB does not fit the 4 GiB MCDRAM; the
// Bandwidth-criterion allocation falls back to DRAM and matches its rate.
TEST(TableIII, KnlCapacityOverflowFallsBackToDram) {
  sim::SimMachine machine(topo::knl_snc4_flat());
  attr::MemAttrRegistry registry(machine.topology());
  hmat::GenerateOptions options;
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology(), options)).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);

  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  apps::StreamConfig config;
  config.declared_total_bytes = 18ull * kGiB;  // ~17.9 GiB
  config.backing_elements = 1u << 14;
  config.threads = 16;
  config.iterations = 2;

  apps::BufferPlacement bw_placement;
  bw_placement.attribute = attr::kBandwidth;
  auto runner = apps::StreamRunner::create(machine, &allocator, initiator,
                                           config, bw_placement);
  ASSERT_TRUE(runner.ok());
  auto result = (*runner)->run_triad();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fell_back);
  EXPECT_EQ(machine.topology().numa_node(result->node_a)->memory_kind(),
            topo::MemoryKind::kDRAM);
}

// Table IV shape: Graph500 flags latency; STREAM flags bandwidth.
TEST(TableIV, ProfilerClassifiesGraph500AsLatencyBound) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  auto runner = apps::Graph500Runner::create(
      machine, nullptr, initiator, bfs_config(),
      apps::Graph500Placement::all_on_node(2));  // on NVDIMM
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->run().ok());
  const prof::BoundnessSummary summary = prof::summarize((*runner)->exec());
  EXPECT_TRUE(summary.latency_flagged());
  EXPECT_GT(summary.pmem_bound_pct, summary.pmem_bw_bound_pct);
}

TEST(TableIV, ProfilerClassifiesStreamAsBandwidthBound) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  apps::StreamConfig config;
  config.declared_total_bytes = 22ull * kGiB;
  config.backing_elements = 1u << 14;
  config.threads = 8;
  config.iterations = 3;
  apps::BufferPlacement placement;
  placement.forced_node = 0;
  auto runner =
      apps::StreamRunner::create(machine, nullptr, initiator, config, placement);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->run_triad().ok());
  const prof::BoundnessSummary summary = prof::summarize((*runner)->exec());
  EXPECT_TRUE(summary.bandwidth_flagged());
  EXPECT_GT(summary.dram_bw_bound_pct, 40.0);
}

// Fig. 6 workflow: profile an app placed naively, read the hint, re-allocate
// with the hint, observe improvement.
TEST(Figure6, ProfileHintReallocateImproves) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();

  // Naive run: everything on the capacity-best node (NVDIMM).
  auto naive = apps::Graph500Runner::create(
      machine, nullptr, initiator, bfs_config(),
      apps::Graph500Placement::all_on_node(2));
  ASSERT_TRUE(naive.ok());
  auto naive_result = (*naive)->run();
  ASSERT_TRUE(naive_result.ok());

  // Profile: hot buffers must be latency-sensitive.
  auto profiles = prof::profile_buffers((*naive)->exec());
  ASSERT_FALSE(profiles.empty());
  const prof::BufferProfile& hottest = profiles.front();
  EXPECT_EQ(hottest.sensitivity, prof::Sensitivity::kLatency);
  const attr::AttrId hint = prof::allocation_hint(hottest.sensitivity);
  EXPECT_EQ(hint, attr::kLatency);

  // Re-run with the hint through the allocator.
  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology())).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);
  auto tuned = apps::Graph500Runner::create(
      machine, &allocator, initiator, bfs_config(),
      apps::Graph500Placement::by_attribute(hint));
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ((*tuned)->node_of_parents(), 0u);  // landed on DRAM
  auto tuned_result = (*tuned)->run();
  ASSERT_TRUE(tuned_result.ok());
  EXPECT_GT(tuned_result->harmonic_mean_teps,
            naive_result->harmonic_mean_teps * 1.2);
}

// §VI-A conclusion: attribute-driven allocation matches manual tuning.
TEST(Portability, AttributeAllocationMatchesManualPlacement) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology())).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);

  auto manual = apps::Graph500Runner::create(
      machine, nullptr, initiator, bfs_config(),
      apps::Graph500Placement::all_on_node(0));
  ASSERT_TRUE(manual.ok());
  auto manual_result = (*manual)->run();
  ASSERT_TRUE(manual_result.ok());

  auto portable = apps::Graph500Runner::create(
      machine, &allocator, initiator, bfs_config(),
      apps::Graph500Placement::by_attribute(attr::kLatency));
  ASSERT_TRUE(portable.ok());
  auto portable_result = (*portable)->run();
  ASSERT_TRUE(portable_result.ok());

  EXPECT_NEAR(portable_result->harmonic_mean_teps /
                  manual_result->harmonic_mean_teps,
              1.0, 0.05);
}

// Ablation A2: HMAT-advertised and probe-measured values differ in
// magnitude but agree on the ranking (DESIGN.md).
TEST(AblationDiscovery, HmatAndProbeAgreeOnRanking) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const auto initiator = attr::Initiator::from_cpuset(
      machine.topology().numa_node(0)->cpuset());

  attr::MemAttrRegistry from_hmat(machine.topology());
  ASSERT_TRUE(
      hmat::load_into(from_hmat, hmat::generate(machine.topology())).ok());

  attr::MemAttrRegistry from_probe(machine.topology());
  probe::ProbeOptions options;
  options.backing_bytes = 64 * 1024;
  options.chase_accesses = 2000;
  options.include_remote = false;
  auto report = probe::discover(machine, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(probe::feed_registry(from_probe, *report).ok());

  for (attr::AttrId attribute : {attr::kBandwidth, attr::kLatency}) {
    auto hmat_ranked = from_hmat.targets_ranked(attribute, initiator);
    auto probe_ranked = from_probe.targets_ranked(attribute, initiator);
    ASSERT_EQ(hmat_ranked.size(), probe_ranked.size());
    for (std::size_t i = 0; i < hmat_ranked.size(); ++i) {
      EXPECT_EQ(hmat_ranked[i].target, probe_ranked[i].target)
          << "rank " << i << " differs for attribute " << attribute;
      // Magnitudes differ (26 ns advertised vs 285 ns measured).
      EXPECT_NE(hmat_ranked[i].value, probe_ranked[i].value);
    }
  }
}

}  // namespace
}  // namespace hetmem
