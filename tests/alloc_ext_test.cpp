// Tests for the §VII extensions: hybrid (split) allocations, the priority
// placement planner, and the phase-aware migration advisor.
#include <gtest/gtest.h>

#include "hetmem/alloc/advisor.hpp"
#include "hetmem/alloc/allocator.hpp"
#include "hetmem/alloc/planner.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/simmem/split_array.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::alloc {
namespace {

using support::Errc;
using support::kGiB;
using support::kMiB;

class AllocExtTest : public ::testing::Test {
 protected:
  // KNL cluster: 4 GiB HBM (node 4) + 24 GiB DRAM (node 0).
  AllocExtTest()
      : machine_(topo::knl_snc4_flat()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_) {
    hmat::GenerateOptions options;
    options.local_only = false;
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology(), options))
            .ok());
  }

  AllocRequest request(std::uint64_t bytes, attr::AttrId attribute,
                       Policy policy = Policy::kRankedFallback) {
    AllocRequest r;
    r.bytes = bytes;
    r.attribute = attribute;
    r.initiator = machine_.topology().numa_node(0)->cpuset();
    r.policy = policy;
    r.label = "ext";
    return r;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  HeterogeneousAllocator allocator_;
};

// --- hybrid allocations ---

TEST_F(AllocExtTest, HybridPrefersWholeBufferWhenItFits) {
  auto hybrid = allocator_.mem_alloc_hybrid(request(kGiB, attr::kBandwidth));
  ASSERT_TRUE(hybrid.ok());
  EXPECT_TRUE(hybrid->fast.valid());
  EXPECT_FALSE(hybrid->slow.valid());
  EXPECT_DOUBLE_EQ(hybrid->fast_fraction, 1.0);
  EXPECT_EQ(machine_.topology().numa_node(hybrid->fast_node)->memory_kind(),
            topo::MemoryKind::kHBM);
}

TEST_F(AllocExtTest, HybridSplitsAcrossHbmAndDram) {
  // 6 GiB > 4 GiB HBM: expect ~2/3 on HBM... the split takes what fits.
  auto hybrid = allocator_.mem_alloc_hybrid(request(6 * kGiB, attr::kBandwidth));
  ASSERT_TRUE(hybrid.ok()) << hybrid.error().to_string();
  ASSERT_TRUE(hybrid->fast.valid());
  ASSERT_TRUE(hybrid->slow.valid());
  EXPECT_EQ(machine_.topology().numa_node(hybrid->fast_node)->memory_kind(),
            topo::MemoryKind::kHBM);
  EXPECT_EQ(machine_.topology().numa_node(hybrid->slow_node)->memory_kind(),
            topo::MemoryKind::kDRAM);
  EXPECT_NEAR(hybrid->fast_fraction, 4.0 / 6.0, 0.01);
  // Capacity charged on both nodes.
  EXPECT_EQ(machine_.used_bytes(hybrid->fast_node) +
                machine_.used_bytes(hybrid->slow_node),
            6 * kGiB);
}

TEST_F(AllocExtTest, HybridFailsWhenNothingHasRoom) {
  ASSERT_TRUE(allocator_.mem_alloc(request(4 * kGiB, attr::kBandwidth)).ok());
  ASSERT_TRUE(allocator_.mem_alloc(request(24 * kGiB, attr::kCapacity)).ok());
  auto hybrid = allocator_.mem_alloc_hybrid(request(2 * kGiB, attr::kBandwidth));
  ASSERT_FALSE(hybrid.ok());
  EXPECT_EQ(hybrid.error().code, Errc::kOutOfCapacity);
}

TEST_F(AllocExtTest, SplitArrayRoutesAndRecordsProportionally) {
  auto hybrid = allocator_.mem_alloc_hybrid(request(6 * kGiB, attr::kBandwidth));
  ASSERT_TRUE(hybrid.ok());
  sim::Array<double> fast(machine_, hybrid->fast);
  sim::Array<double> slow(machine_, hybrid->slow);
  const std::size_t fast_elems = fast.size();
  sim::SplitArray<double> split(std::move(fast), std::move(slow),
                                hybrid->fast_fraction);

  sim::ThreadCtx ctx(machine_.topology().numa_nodes().size());
  split.store_seq(ctx, 0, 1.5);                       // fast part
  split.store_seq(ctx, fast_elems, 2.5);              // slow part
  EXPECT_DOUBLE_EQ(split.load_seq(ctx, 0), 1.5);
  EXPECT_DOUBLE_EQ(split.load_seq(ctx, fast_elems), 2.5);

  ctx.reset_phase();
  split.record_bulk_read(ctx, 6e9);
  const auto& traffic = ctx.node_traffic();
  const double fast_bytes = traffic[hybrid->fast_node].seq_read_bytes;
  const double slow_bytes = traffic[hybrid->slow_node].seq_read_bytes;
  EXPECT_NEAR(fast_bytes / (fast_bytes + slow_bytes), hybrid->fast_fraction,
              0.01);
}

TEST_F(AllocExtTest, HybridStreamingBoundedBySumOfNodes) {
  // Two nodes stream in parallel: a split buffer can exceed either node
  // alone (striping) but never their sum.
  auto pure_stream_rate = [&](unsigned node) {
    auto buffer = machine_.allocate(2 * kGiB, node, "pure", 4096);
    EXPECT_TRUE(buffer.ok());
    sim::ExecutionContext exec(machine_,
                               machine_.topology().numa_node(0)->cpuset(), 16);
    sim::Array<double> array(machine_, *buffer);
    exec.run_phase("s", 16,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       array.record_bulk_read(ctx, 2e9 / 16);
                     }
                   });
    (void)machine_.free(*buffer);
    return 2e9 / (exec.clock_ns() / 1e9);
  };
  const double hbm_rate = pure_stream_rate(4);
  const double dram_rate = pure_stream_rate(0);

  auto hybrid = allocator_.mem_alloc_hybrid(request(6 * kGiB, attr::kBandwidth));
  ASSERT_TRUE(hybrid.ok());
  sim::SplitArray<double> split(sim::Array<double>(machine_, hybrid->fast),
                                sim::Array<double>(machine_, hybrid->slow),
                                hybrid->fast_fraction);
  sim::ExecutionContext exec(machine_,
                             machine_.topology().numa_node(0)->cpuset(), 16);
  exec.run_phase("split", 16,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     split.record_bulk_read(ctx, 2e9 / 16);
                   }
                 });
  const double split_rate = 2e9 / (exec.clock_ns() / 1e9);
  EXPECT_GT(split_rate, dram_rate);
  EXPECT_LT(split_rate, hbm_rate + dram_rate);
}

TEST_F(AllocExtTest, HybridLatencyAccessLandsBetweenPureRates) {
  // For dependent accesses the slow part mixes into every thread's stall
  // time: the paper's "irregular performance" — the blended rate sits
  // strictly between pure-fast and pure-slow.
  auto pure_chase_ns = [&](unsigned node) {
    auto buffer = machine_.allocate(2 * kGiB, node, "pure", 4096);
    EXPECT_TRUE(buffer.ok());
    sim::ExecutionContext exec(machine_,
                               machine_.topology().numa_node(0)->cpuset(), 16);
    sim::Array<std::uint32_t> array(machine_, *buffer);
    exec.run_phase("c", 16,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       array.record_bulk_random_reads(ctx, 100000.0);
                     }
                   });
    (void)machine_.free(*buffer);
    return exec.clock_ns();
  };
  // Pure HBM chase vs pure DRAM chase: HBM latency is slightly worse on
  // KNL, so order them explicitly.
  const double hbm_ns = pure_chase_ns(4);
  const double dram_ns = pure_chase_ns(0);
  const double faster = std::min(hbm_ns, dram_ns);
  const double slower = std::max(hbm_ns, dram_ns);

  auto hybrid = allocator_.mem_alloc_hybrid(request(6 * kGiB, attr::kBandwidth));
  ASSERT_TRUE(hybrid.ok());
  sim::SplitArray<std::uint32_t> split(
      sim::Array<std::uint32_t>(machine_, hybrid->fast),
      sim::Array<std::uint32_t>(machine_, hybrid->slow), hybrid->fast_fraction);
  sim::ExecutionContext exec(machine_,
                             machine_.topology().numa_node(0)->cpuset(), 16);
  exec.run_phase("split-chase", 16,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     split.record_bulk_random_reads(ctx, 100000.0);
                   }
                 });
  // Bounded by the pure runs up to the loaded-latency relief a split gets
  // from spreading its traffic over two memory controllers.
  EXPECT_GT(exec.clock_ns(), faster * 0.9);
  EXPECT_LT(exec.clock_ns(), slower * 1.1);
}

// --- interleaved allocations ---

TEST_F(AllocExtTest, InterleaveStripesAcrossTopTargets) {
  AllocRequest r = request(2 * kGiB, attr::kBandwidth);
  auto interleaved = allocator_.mem_alloc_interleaved(r, 2);
  ASSERT_TRUE(interleaved.ok());
  ASSERT_EQ(interleaved->parts.size(), 2u);
  EXPECT_EQ(machine_.topology().numa_node(interleaved->nodes[0])->memory_kind(),
            topo::MemoryKind::kHBM);
  EXPECT_EQ(machine_.topology().numa_node(interleaved->nodes[1])->memory_kind(),
            topo::MemoryKind::kDRAM);
  EXPECT_NEAR(interleaved->fractions[0], 0.5, 0.01);
  EXPECT_NEAR(interleaved->fractions[0] + interleaved->fractions[1], 1.0, 1e-9);
  // Full charge split across the two nodes.
  EXPECT_EQ(machine_.used_bytes(4) + machine_.used_bytes(0), 2 * kGiB);
}

TEST_F(AllocExtTest, InterleaveShrinksWaysToFit) {
  // 12 GiB in 2 ways needs 6 GiB per node; HBM holds 4 -> falls to 1 way
  // on DRAM.
  AllocRequest r = request(12 * kGiB, attr::kBandwidth);
  auto interleaved = allocator_.mem_alloc_interleaved(r, 2);
  ASSERT_TRUE(interleaved.ok());
  ASSERT_EQ(interleaved->parts.size(), 1u);
  EXPECT_EQ(machine_.topology().numa_node(interleaved->nodes[0])->memory_kind(),
            topo::MemoryKind::kDRAM);
}

TEST_F(AllocExtTest, InterleaveValidation) {
  AllocRequest r = request(kGiB, attr::kBandwidth);
  EXPECT_FALSE(allocator_.mem_alloc_interleaved(r, 0).ok());
  r.bytes = 0;
  EXPECT_FALSE(allocator_.mem_alloc_interleaved(r, 2).ok());
  // Nothing fits anywhere.
  AllocRequest huge = request(100 * kGiB, attr::kBandwidth);
  auto fail = allocator_.mem_alloc_interleaved(huge, 4);
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, Errc::kOutOfCapacity);
}

// --- reservations ---

TEST_F(AllocExtTest, ReservationBlocksOrdinaryAllocations) {
  // Reserve the whole 4 GiB MCDRAM for a hot buffer that arrives late.
  ASSERT_TRUE(allocator_.reserve(4, 4 * kGiB).ok());
  EXPECT_EQ(allocator_.reserved_bytes(4), 4 * kGiB);

  // A cold bandwidth request now skips the HBM entirely.
  auto cold = allocator_.mem_alloc(request(kGiB, attr::kBandwidth));
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(machine_.topology().numa_node(cold->node)->memory_kind(),
            topo::MemoryKind::kDRAM);

  // The hot buffer claims its reservation.
  auto hot = allocator_.mem_alloc_reserved(4, 2 * kGiB, "hot");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->node, 4u);
  EXPECT_EQ(allocator_.reserved_bytes(4), 2 * kGiB);
}

TEST_F(AllocExtTest, ReservationValidation) {
  EXPECT_FALSE(allocator_.reserve(99, kGiB).ok());
  // Cannot reserve more than is free.
  auto too_much = allocator_.reserve(4, 8 * kGiB);
  ASSERT_FALSE(too_much.ok());
  EXPECT_EQ(too_much.error().code, Errc::kOutOfCapacity);
  // mem_alloc_reserved beyond the reservation fails.
  ASSERT_TRUE(allocator_.reserve(4, kGiB).ok());
  EXPECT_FALSE(allocator_.mem_alloc_reserved(4, 2 * kGiB, "x").ok());
}

TEST_F(AllocExtTest, ReleaseReservationRestoresAvailability) {
  ASSERT_TRUE(allocator_.reserve(4, 4 * kGiB).ok());
  auto blocked = allocator_.mem_alloc(
      request(kGiB, attr::kBandwidth, Policy::kStrict));
  EXPECT_FALSE(blocked.ok());
  allocator_.release_reservation(4, 4 * kGiB);
  EXPECT_EQ(allocator_.reserved_bytes(4), 0u);
  auto unblocked = allocator_.mem_alloc(
      request(kGiB, attr::kBandwidth, Policy::kStrict));
  ASSERT_TRUE(unblocked.ok());
  EXPECT_EQ(unblocked->node, 4u);
  // Over-release clamps to zero.
  allocator_.release_reservation(4, 100 * kGiB);
  EXPECT_EQ(allocator_.reserved_bytes(4), 0u);
}

TEST_F(AllocExtTest, ReservationPreventsPriorityInversion) {
  // The §VII remedy: reserving for the hot buffer beats FCFS.
  ASSERT_TRUE(allocator_.reserve(4, 3 * kGiB).ok());
  for (int i = 0; i < 15; ++i) {
    (void)allocator_.mem_alloc(request(512 * kMiB, attr::kBandwidth));
  }
  auto hot = allocator_.mem_alloc_reserved(4, 3 * kGiB, "hot");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(machine_.topology().numa_node(hot->node)->memory_kind(),
            topo::MemoryKind::kHBM);
}

// --- planner ---

TEST_F(AllocExtTest, PlannerGivesFastMemoryToHighPriority) {
  // FCFS order: cold buffer first would grab the HBM. The planner reorders.
  std::vector<PlannedRequest> requests = {
      {"cold", 3 * kGiB, attr::kBandwidth, /*priority=*/0, 0},
      {"hot", 3 * kGiB, attr::kBandwidth, /*priority=*/10, 0},
  };
  Plan plan = plan_placements(machine_, registry_,
                              machine_.topology().numa_node(0)->cpuset(),
                              requests);
  ASSERT_TRUE(plan.unplaced.empty());
  ASSERT_EQ(plan.placements.size(), 2u);
  EXPECT_EQ(plan.placements[1].label, "hot");
  EXPECT_EQ(machine_.topology().numa_node(plan.placements[1].node)->memory_kind(),
            topo::MemoryKind::kHBM);
  EXPECT_EQ(machine_.topology().numa_node(plan.placements[0].node)->memory_kind(),
            topo::MemoryKind::kDRAM);
  EXPECT_TRUE(plan.placements[0].fell_back);
  EXPECT_FALSE(plan.placements[1].fell_back);
}

TEST_F(AllocExtTest, PlannerRespectsExistingUsage) {
  ASSERT_TRUE(allocator_.mem_alloc(request(3 * kGiB, attr::kBandwidth)).ok());
  std::vector<PlannedRequest> requests = {
      {"late", 2 * kGiB, attr::kBandwidth, 5, 0},
  };
  Plan plan = plan_placements(machine_, registry_,
                              machine_.topology().numa_node(0)->cpuset(),
                              requests);
  // Only ~1 GiB left on HBM: must plan for DRAM.
  ASSERT_TRUE(plan.unplaced.empty());
  EXPECT_EQ(machine_.topology().numa_node(plan.placements[0].node)->memory_kind(),
            topo::MemoryKind::kDRAM);
}

TEST_F(AllocExtTest, PlannerReportsUnplaceable) {
  std::vector<PlannedRequest> requests = {
      {"too-big", 100 * kGiB, attr::kBandwidth, 1, 0},
  };
  Plan plan = plan_placements(machine_, registry_,
                              machine_.topology().numa_node(0)->cpuset(),
                              requests);
  ASSERT_EQ(plan.unplaced.size(), 1u);
  EXPECT_EQ(plan.unplaced[0], "too-big");
}

TEST_F(AllocExtTest, ExecutePlanMaterializesBuffers) {
  std::vector<PlannedRequest> requests = {
      {"a", kGiB, attr::kBandwidth, 1, 4096},
      {"b", kGiB, attr::kCapacity, 0, 4096},
  };
  Plan plan = plan_placements(machine_, registry_,
                              machine_.topology().numa_node(0)->cpuset(),
                              requests);
  auto buffers = execute_plan(allocator_, requests, plan);
  ASSERT_TRUE(buffers.ok());
  ASSERT_EQ(buffers->size(), 2u);
  EXPECT_TRUE((*buffers)[0].valid());
  EXPECT_EQ(machine_.info((*buffers)[0]).node, plan.placements[0].node);
  // Plan/requests mismatch rejected.
  std::vector<PlannedRequest> fewer = {requests[0]};
  EXPECT_FALSE(execute_plan(allocator_, fewer, plan).ok());
}

TEST_F(AllocExtTest, TiesKeepDeclarationOrder) {
  std::vector<PlannedRequest> requests = {
      {"first", 3 * kGiB, attr::kBandwidth, 5, 0},
      {"second", 3 * kGiB, attr::kBandwidth, 5, 0},
  };
  Plan plan = plan_placements(machine_, registry_,
                              machine_.topology().numa_node(0)->cpuset(),
                              requests);
  EXPECT_EQ(machine_.topology().numa_node(plan.placements[0].node)->memory_kind(),
            topo::MemoryKind::kHBM);
  EXPECT_EQ(machine_.topology().numa_node(plan.placements[1].node)->memory_kind(),
            topo::MemoryKind::kDRAM);
}

// --- advisor ---

class AdvisorTest : public ::testing::Test {
 protected:
  // Xeon: DRAM node 0 (fast for latency), NVDIMM node 2 (slow).
  AdvisorTest()
      : machine_(topo::xeon_clx_1lm()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_) {
    hmat::GenerateOptions options;
    options.local_only = false;
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology(), options))
            .ok());
  }

  /// Runs a latency-bound round over `buffer` and returns the context.
  std::unique_ptr<sim::ExecutionContext> run_round(sim::BufferId buffer) {
    auto exec = std::make_unique<sim::ExecutionContext>(
        machine_, machine_.topology().numa_node(0)->cpuset(), 8);
    sim::Array<std::uint32_t> array(machine_, buffer);
    exec->run_phase("round", 8,
                    [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                        std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        array.record_bulk_random_reads(ctx, 500000.0);
                      }
                    });
    return exec;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  HeterogeneousAllocator allocator_;
};

TEST_F(AdvisorTest, RecommendsMovingHotBufferOffNvdimm) {
  auto buffer = machine_.allocate(2 * kGiB, 2, "hot", 4096);
  ASSERT_TRUE(buffer.ok());
  auto exec = run_round(*buffer);
  auto advice = advise_migrations(allocator_, *exec,
                                  machine_.topology().numa_node(0)->cpuset());
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].from_node, 2u);
  EXPECT_EQ(advice[0].to_node, 0u);
  EXPECT_GT(advice[0].benefit_per_round_ns, 0.0);
  EXPECT_GT(advice[0].cost_ns, 0.0);
  EXPECT_GT(advice[0].breakeven_rounds, 0.0);
}

TEST_F(AdvisorTest, NoAdviceWhenAlreadyOptimal) {
  auto buffer = machine_.allocate(2 * kGiB, 0, "fine", 4096);
  ASSERT_TRUE(buffer.ok());
  auto exec = run_round(*buffer);
  auto advice = advise_migrations(allocator_, *exec,
                                  machine_.topology().numa_node(0)->cpuset());
  EXPECT_TRUE(advice.empty());
}

TEST_F(AdvisorTest, ApplyAdviceHonorsBreakeven) {
  auto buffer = machine_.allocate(2 * kGiB, 2, "hot", 4096);
  ASSERT_TRUE(buffer.ok());
  auto exec = run_round(*buffer);
  auto advice = advise_migrations(allocator_, *exec,
                                  machine_.topology().numa_node(0)->cpuset());
  ASSERT_EQ(advice.size(), 1u);

  // Horizon shorter than break-even: no migration happens.
  AdvisorOptions short_horizon;
  short_horizon.expected_future_rounds = advice[0].breakeven_rounds / 2.0;
  auto cost = apply_advice(allocator_, advice, short_horizon);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 0.0);
  EXPECT_EQ(machine_.info(*buffer).node, 2u);

  // Horizon past break-even: migrated.
  AdvisorOptions long_horizon;
  long_horizon.expected_future_rounds = advice[0].breakeven_rounds * 2.0;
  cost = apply_advice(allocator_, advice, long_horizon);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(*cost, 0.0);
  EXPECT_EQ(machine_.info(*buffer).node, 0u);
}

TEST_F(AdvisorTest, MigratedRoundIsActuallyFaster) {
  auto buffer = machine_.allocate(2 * kGiB, 2, "hot", 4096);
  ASSERT_TRUE(buffer.ok());
  auto before = run_round(*buffer);
  const double slow_ns = before->clock_ns();
  auto advice = advise_migrations(allocator_, *before,
                                  machine_.topology().numa_node(0)->cpuset());
  ASSERT_FALSE(advice.empty());
  AdvisorOptions options;
  options.expected_future_rounds = 1e9;  // force the move
  ASSERT_TRUE(apply_advice(allocator_, advice, options).ok());
  auto after = run_round(*buffer);
  EXPECT_LT(after->clock_ns(), slow_ns * 0.6);
  // The advisor's benefit estimate matches the observed saving within 25%.
  EXPECT_NEAR(advice[0].benefit_per_round_ns, slow_ns - after->clock_ns(),
              0.25 * (slow_ns - after->clock_ns()));
}

TEST_F(AdvisorTest, SkipsWhenDestinationIsFull) {
  ASSERT_TRUE(allocator_.mem_alloc([&] {
                          AllocRequest r;
                          r.bytes = 192 * kGiB;
                          r.attribute = attr::kLatency;
                          r.initiator = machine_.topology().numa_node(0)->cpuset();
                          r.label = "filler";
                          return r;
                        }())
                  .ok());
  auto buffer = machine_.allocate(2 * kGiB, 2, "hot", 4096);
  ASSERT_TRUE(buffer.ok());
  auto exec = run_round(*buffer);
  auto advice = advise_migrations(allocator_, *exec,
                                  machine_.topology().numa_node(0)->cpuset());
  EXPECT_TRUE(advice.empty());  // DRAM full, nowhere better to go
}

}  // namespace
}  // namespace hetmem::alloc
