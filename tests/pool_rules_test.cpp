// Tests for the pooling suballocator and the FLEXMALLOC-style location
// rules.
#include <gtest/gtest.h>

#include "hetmem/alloc/location_rules.hpp"
#include "hetmem/alloc/pool.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::alloc {
namespace {

using support::Errc;
using support::kGiB;
using support::kMiB;

class PoolTest : public ::testing::Test {
 protected:
  // KNL cluster: 4 GiB HBM + 24 GiB DRAM.
  PoolTest()
      : machine_(topo::knl_snc4_flat()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_) {
    hmat::GenerateOptions options;
    options.local_only = false;
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology(), options))
            .ok());
  }

  PoolOptions bandwidth_pool() {
    PoolOptions options;
    options.attribute = attr::kBandwidth;
    options.block_bytes = 64 * kMiB;
    options.blocks_per_slab = 8;  // 512 MiB slabs
    return options;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  HeterogeneousAllocator allocator_;
};

TEST_F(PoolTest, BlocksComeFromAttributePlacedSlabs) {
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(),
            bandwidth_pool());
  auto block = pool.allocate();
  ASSERT_TRUE(block.ok());
  auto node = pool.node_of(*block);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(machine_.topology().numa_node(*node)->memory_kind(),
            topo::MemoryKind::kHBM);
  EXPECT_EQ(pool.stats().slabs_created, 1u);
  EXPECT_EQ(pool.stats().blocks_live, 1u);
}

TEST_F(PoolTest, SlabIsSharedUntilFull) {
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(),
            bandwidth_pool());
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.allocate().ok());
  }
  EXPECT_EQ(pool.stats().slabs_created, 1u);
  ASSERT_TRUE(pool.allocate().ok());  // ninth block: second slab
  EXPECT_EQ(pool.stats().slabs_created, 2u);
}

TEST_F(PoolTest, FreeReusesBlocks) {
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(),
            bandwidth_pool());
  auto block = pool.allocate();
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(pool.free(*block).ok());
  EXPECT_EQ(pool.stats().blocks_live, 0u);
  auto again = pool.allocate();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().slabs_created, 1u);  // no new slab needed
}

TEST_F(PoolTest, DoubleFreeRejected) {
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(),
            bandwidth_pool());
  auto block = pool.allocate();
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(pool.free(*block).ok());
  auto status = pool.free(*block);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kInvalidArgument);
  EXPECT_FALSE(pool.free(PoolBlock{}).ok());
}

TEST_F(PoolTest, PoolSpillsDownTheRankingWhenFastNodeFills) {
  // 4 GiB HBM = 8 slabs of 512 MiB. The ninth slab lands on DRAM.
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(),
            bandwidth_pool());
  std::vector<PoolBlock> blocks;
  for (unsigned i = 0; i < 9 * 8; ++i) {
    auto block = pool.allocate();
    ASSERT_TRUE(block.ok());
    blocks.push_back(*block);
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.slabs_created, 9u);
  EXPECT_EQ(stats.live_per_node[4], 64u);  // HBM full
  EXPECT_EQ(stats.live_per_node[0], 8u);   // spilled slab on DRAM
}

TEST_F(PoolTest, ReleaseEmptySlabsReturnsMemory) {
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(),
            bandwidth_pool());
  std::vector<PoolBlock> blocks;
  for (unsigned i = 0; i < 16; ++i) {
    auto block = pool.allocate();
    ASSERT_TRUE(block.ok());
    blocks.push_back(*block);
  }
  const std::uint64_t used_before = machine_.used_bytes(4);
  // Free the second slab's blocks entirely.
  for (unsigned i = 8; i < 16; ++i) ASSERT_TRUE(pool.free(blocks[i]).ok());
  EXPECT_EQ(pool.release_empty_slabs(), 1u);
  EXPECT_EQ(machine_.used_bytes(4), used_before - 8ull * 64 * kMiB);
  // The first slab still works.
  EXPECT_TRUE(pool.allocate().ok());
}

TEST_F(PoolTest, DestructorFreesEverything) {
  {
    Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(),
              bandwidth_pool());
    ASSERT_TRUE(pool.allocate().ok());
    EXPECT_GT(machine_.used_bytes(4), 0u);
  }
  EXPECT_EQ(machine_.used_bytes(4), 0u);
}

// --- per-thread magazines (opt-in via PoolOptions::magazine_blocks) ---

TEST_F(PoolTest, MagazineRoundTripKeepsStatsExact) {
  PoolOptions options = bandwidth_pool();
  options.magazine_blocks = 4;
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(), options);

  std::vector<PoolBlock> blocks;
  for (unsigned i = 0; i < 6; ++i) {
    auto block = pool.allocate();
    ASSERT_TRUE(block.ok());
    blocks.push_back(*block);
  }
  PoolStats stats = pool.stats();
  EXPECT_EQ(stats.blocks_allocated, 6u);
  EXPECT_EQ(stats.blocks_live, 6u);
  // App-level accounting counts magazine frees immediately, even though the
  // blocks only reach the slab free list at flush time.
  for (const PoolBlock& block : blocks) ASSERT_TRUE(pool.free(block).ok());
  stats = pool.stats();
  EXPECT_EQ(stats.blocks_freed, 6u);
  EXPECT_EQ(stats.blocks_live, 0u);
  for (std::uint64_t live : stats.live_per_node) EXPECT_EQ(live, 0u);
}

TEST_F(PoolTest, MagazineDetectsDoubleFreeOfCachedBlock) {
  PoolOptions options = bandwidth_pool();
  options.magazine_blocks = 4;
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(), options);
  auto block = pool.allocate();
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(pool.free(*block).ok());
  auto second = pool.free(*block);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Errc::kInvalidArgument);
}

TEST_F(PoolTest, MagazineCachedBlocksPinTheirSlab) {
  PoolOptions options = bandwidth_pool();
  options.magazine_blocks = 4;
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(), options);
  auto block = pool.allocate();
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(pool.free(*block).ok());
  // The freed block sits in this thread's magazine: the slab still counts
  // as live and must survive compaction until the magazine is flushed.
  EXPECT_EQ(pool.release_empty_slabs(), 0u);
  pool.flush_thread_magazine();
  EXPECT_EQ(pool.release_empty_slabs(), 1u);
}

TEST_F(PoolTest, MagazineReusesBlocksWithoutTouchingSlabs) {
  PoolOptions options = bandwidth_pool();
  options.magazine_blocks = 4;
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(), options);
  auto first = pool.allocate();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(pool.free(*first).ok());
  // LIFO magazine: the very next allocate returns the same block.
  auto second = pool.allocate();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->slab, first->slab);
  EXPECT_EQ(second->index, first->index);
  ASSERT_TRUE(pool.free(*second).ok());
  pool.flush_thread_magazine();
}

TEST_F(PoolTest, MagazineOverflowFlushesHalfBatch) {
  PoolOptions options = bandwidth_pool();
  options.magazine_blocks = 4;
  Pool pool(allocator_, machine_.topology().numa_node(0)->cpuset(), options);
  // Fill the magazine past capacity: the 5th free triggers a half flush
  // (keep 2), so everything still balances and nothing is lost.
  std::vector<PoolBlock> blocks;
  for (unsigned i = 0; i < 5; ++i) {
    auto block = pool.allocate();
    ASSERT_TRUE(block.ok());
    blocks.push_back(*block);
  }
  for (const PoolBlock& block : blocks) ASSERT_TRUE(pool.free(block).ok());
  EXPECT_EQ(pool.stats().blocks_live, 0u);
  pool.flush_thread_magazine();
  EXPECT_EQ(pool.release_empty_slabs(), 1u);
}

// --- location rules ---

TEST(GlobMatch, Basics) {
  EXPECT_TRUE(LocationRules::glob_match("abc", "abc"));
  EXPECT_FALSE(LocationRules::glob_match("abc", "abd"));
  EXPECT_TRUE(LocationRules::glob_match("*", "anything"));
  EXPECT_TRUE(LocationRules::glob_match("g500.*", "g500.parents"));
  EXPECT_FALSE(LocationRules::glob_match("g500.*", "stream.a"));
  EXPECT_TRUE(LocationRules::glob_match("*.parents", "g500.parents"));
  EXPECT_TRUE(LocationRules::glob_match("g*par*", "g500.parents"));
  EXPECT_FALSE(LocationRules::glob_match("", "x"));
  EXPECT_TRUE(LocationRules::glob_match("", ""));
  EXPECT_TRUE(LocationRules::glob_match("**", "x"));
}

class RulesTest : public ::testing::Test {
 protected:
  RulesTest()
      : machine_(topo::xeon_clx_1lm()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_) {
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology())).ok());
  }
  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  HeterogeneousAllocator allocator_;
};

TEST_F(RulesTest, FirstMatchWins) {
  LocationRules rules;
  rules.add("g500.parents", attr::kLatency);
  rules.add("g500.*", attr::kBandwidth);
  rules.add("*", attr::kCapacity);
  EXPECT_EQ(rules.match("g500.parents"), attr::kLatency);
  EXPECT_EQ(rules.match("g500.targets"), attr::kBandwidth);
  EXPECT_EQ(rules.match("anything-else"), attr::kCapacity);
}

TEST_F(RulesTest, NoMatchIsNullopt) {
  LocationRules rules;
  rules.add("g500.*", attr::kLatency);
  EXPECT_FALSE(rules.match("stream.a").has_value());
}

TEST_F(RulesTest, SerializeParseRoundTrip) {
  LocationRules rules;
  rules.add("g500.parents", attr::kLatency);
  rules.add("stream.*", attr::kBandwidth);
  rules.add("*", attr::kCapacity);
  const std::string text = rules.serialize(registry_);
  auto parsed = LocationRules::parse(text, registry_);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->match("g500.parents"), attr::kLatency);
  EXPECT_EQ(parsed->match("stream.b"), attr::kBandwidth);
  EXPECT_EQ(parsed->match("x"), attr::kCapacity);
}

TEST_F(RulesTest, ParseRejectsBadLines) {
  auto missing_attr = LocationRules::parse("pattern-only\n", registry_);
  ASSERT_FALSE(missing_attr.ok());
  EXPECT_EQ(missing_attr.error().code, Errc::kParseError);
  auto unknown_attr = LocationRules::parse("x NoSuchAttribute\n", registry_);
  ASSERT_FALSE(unknown_attr.ok());
  // Comments and blanks are fine.
  auto ok = LocationRules::parse("# comment\n\n", registry_);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 0u);
}

TEST_F(RulesTest, ParseResolvesCustomAttributes) {
  auto custom = registry_.register_attribute("MyMetric",
                                             attr::Polarity::kHigherFirst, true);
  ASSERT_TRUE(custom.ok());
  auto rules = LocationRules::parse("special.* MyMetric\n", registry_);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->match("special.buffer"), *custom);
}

TEST_F(RulesTest, AllocByLocationAppliesTheRule) {
  LocationRules rules;
  rules.add("hot.*", attr::kLatency);
  const support::Bitmap initiator = machine_.topology().numa_node(0)->cpuset();
  auto hot = rules.alloc_by_location(allocator_, support::kGiB, initiator,
                                     "hot.index");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->node, 0u);  // DRAM (latency-best)
  auto cold = rules.alloc_by_location(allocator_, support::kGiB, initiator,
                                      "cold.scratch", attr::kCapacity);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(machine_.topology().numa_node(cold->node)->memory_kind(),
            topo::MemoryKind::kNVDIMM);  // fallback attribute
}

}  // namespace
}  // namespace hetmem::alloc
