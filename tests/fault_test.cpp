// Fault injector unit tests: firing semantics (probability, max_count,
// burst), per-site stream independence, preset wiring, HMAT text corruption,
// and — the property everything else leans on — seed determinism of the
// schedule (docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include "hetmem/fault/fault.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/support/str.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::fault {
namespace {

TEST(FaultSpecTest, UnconfiguredSiteNeverFires) {
  FaultInjector injector(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.should_fail("nobody.configured.me"));
  }
  EXPECT_EQ(injector.consultations("nobody.configured.me"), 1000u);
  EXPECT_EQ(injector.injected("nobody.configured.me"), 0u);
  EXPECT_EQ(injector.total_injected(), 0u);
  EXPECT_TRUE(injector.schedule().empty());
}

TEST(FaultSpecTest, ProbabilityZeroAndOne) {
  FaultInjector injector(42);
  injector.configure("never", {.probability = 0.0});
  injector.configure("always", {.probability = 1.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.should_fail("never"));
    EXPECT_TRUE(injector.should_fail("always"));
  }
  EXPECT_EQ(injector.injected("always"), 100u);
  EXPECT_EQ(injector.total_injected(), 100u);
}

TEST(FaultSpecTest, MaxCountCapsInjections) {
  FaultInjector injector(7);
  injector.configure("capped", {.probability = 1.0, .max_count = 3});
  unsigned fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (injector.should_fail("capped")) ++fired;
  }
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(injector.injected("capped"), 3u);
  EXPECT_EQ(injector.consultations("capped"), 50u);
}

TEST(FaultSpecTest, BurstKeepsFiringConsecutively) {
  FaultInjector injector(7);
  // probability 1 + burst 4: fires on every consultation anyway, but the
  // burst bookkeeping must not over- or under-count.
  injector.configure("bursty", {.probability = 1.0, .max_count = 4, .burst = 4});
  EXPECT_TRUE(injector.should_fail("bursty"));   // arms the burst
  EXPECT_TRUE(injector.should_fail("bursty"));   // burst continuation
  EXPECT_TRUE(injector.should_fail("bursty"));
  EXPECT_TRUE(injector.should_fail("bursty"));
  EXPECT_FALSE(injector.should_fail("bursty"));  // max_count reached
  EXPECT_EQ(injector.injected("bursty"), 4u);
}

TEST(FaultSpecTest, BurstContinuesAfterLowProbabilityTrigger) {
  // With a tiny probability the only realistic way to see consecutive fires
  // is the burst machinery.
  FaultInjector injector(1234);
  injector.configure("rare", {.probability = 0.02, .burst = 3});
  bool saw_burst = false;
  int consecutive = 0;
  for (int i = 0; i < 5000 && !saw_burst; ++i) {
    if (injector.should_fail("rare")) {
      if (++consecutive >= 3) saw_burst = true;
    } else {
      consecutive = 0;
    }
  }
  EXPECT_TRUE(saw_burst) << "burst=3 should produce 3 consecutive fires";
}

TEST(FaultSpecTest, ProbabilityRoughlyHonored) {
  FaultInjector injector(99);
  injector.configure("coin", {.probability = 0.3});
  unsigned fired = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (injector.should_fail("coin")) ++fired;
  }
  const double rate = static_cast<double>(fired) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultDeterminismTest, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    FaultInjector injector(seed);
    injector.configure("a", {.probability = 0.3});
    injector.configure("b", {.probability = 0.1, .burst = 2});
    for (int i = 0; i < 500; ++i) {
      (void)injector.should_fail("a");
      (void)injector.should_fail("b");
    }
    return injector.schedule_fingerprint();
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultDeterminismTest, SiteStreamsIndependentOfInterleaving) {
  // Consult "a" and "b" in different interleavings: each site's per-site
  // firing sequence must be identical because streams derive from
  // (seed, name), not from touch order.
  auto per_site = [](std::uint64_t seed, bool a_first) {
    FaultInjector injector(seed);
    injector.configure("a", {.probability = 0.4});
    injector.configure("b", {.probability = 0.4});
    std::string a_fires, b_fires;
    if (a_first) {
      for (int i = 0; i < 200; ++i) a_fires += injector.should_fail("a") ? '1' : '0';
      for (int i = 0; i < 200; ++i) b_fires += injector.should_fail("b") ? '1' : '0';
    } else {
      for (int i = 0; i < 200; ++i) b_fires += injector.should_fail("b") ? '1' : '0';
      for (int i = 0; i < 200; ++i) a_fires += injector.should_fail("a") ? '1' : '0';
    }
    return std::make_pair(a_fires, b_fires);
  };
  EXPECT_EQ(per_site(11, true), per_site(11, false));
}

TEST(FaultDeterminismTest, NoiseFactorDoesNotDesyncStream) {
  // Whether or not the noise site fires, the draw count per consultation is
  // constant, so two runs differing only in sigma keep identical firing
  // sequences for a sibling site.
  auto sibling_fires = [](double sigma) {
    FaultInjector injector(5);
    injector.configure("noise", {.probability = 0.5, .noise_sigma = sigma});
    injector.configure("sibling", {.probability = 0.5});
    std::string fires;
    for (int i = 0; i < 100; ++i) {
      (void)injector.noise_factor("noise");
      fires += injector.should_fail("sibling") ? '1' : '0';
    }
    return fires;
  };
  EXPECT_EQ(sibling_fires(0.0), sibling_fires(0.5));
}

TEST(FaultNoiseTest, FactorIsOneWhenQuietAndBoundedWhenFiring) {
  FaultInjector quiet(3);
  quiet.configure("noise", {.probability = 0.0, .noise_sigma = 0.5});
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(quiet.noise_factor("noise"), 1.0);
  }

  FaultInjector loud(3);
  loud.configure("noise", {.probability = 1.0, .noise_sigma = 0.2});
  bool saw_off_one = false;
  for (int i = 0; i < 200; ++i) {
    const double factor = loud.noise_factor("noise");
    EXPECT_GE(factor, 0.8 - 1e-12);
    EXPECT_LE(factor, 1.2 + 1e-12);
    if (factor != 1.0) saw_off_one = true;
  }
  EXPECT_TRUE(saw_off_one);
}

TEST(FaultPresetTest, AllNamesConstructAndNoneIsQuiet) {
  for (const char* name : FaultInjector::preset_names()) {
    FaultInjector injector = FaultInjector::preset(name, 77);
    EXPECT_EQ(injector.seed(), 77u) << name;
  }
  FaultInjector none = FaultInjector::preset("none", 1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(none.should_fail(site::kMachineAllocTransient));
  }
  FaultInjector storm = FaultInjector::preset("alloc-storm", 1);
  unsigned fired = 0;
  for (int i = 0; i < 200; ++i) {
    if (storm.should_fail(site::kMachineAllocTransient)) ++fired;
  }
  EXPECT_GT(fired, 50u);  // p=0.5 with burst 3
  // The storm only targets allocation.
  EXPECT_FALSE(storm.should_fail(site::kHmatDropEntry));
}

TEST(HmatCorruptionTest, DeterministicForSameSeed) {
  const std::string text = hmat::serialize(hmat::generate(topo::xeon_clx_snc_1lm()));
  auto corrupt = [&](std::uint64_t seed) {
    FaultInjector injector = FaultInjector::preset("hmat-chaos", seed);
    return corrupt_hmat_text(text, injector);
  };
  const HmatCorruption a = corrupt(31);
  const HmatCorruption b = corrupt(31);
  const HmatCorruption c = corrupt(32);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.total_mutations(), b.total_mutations());
  EXPECT_NE(a.text, c.text);  // astronomically unlikely to collide
}

TEST(HmatCorruptionTest, MutationCountersMatchTextDamage) {
  const hmat::HmatTable table = hmat::generate(topo::xeon_clx_snc_1lm());
  const std::string text = hmat::serialize(table);
  FaultInjector injector = FaultInjector::preset("hmat-chaos", 2024);
  const HmatCorruption corruption = corrupt_hmat_text(text, injector);
  EXPECT_GT(corruption.total_mutations(), 0u);

  // Record-count arithmetic: original records - dropped + duplicated
  // = non-comment lines in the corrupted text.
  std::size_t original_records = 0, corrupted_records = 0;
  for (std::string_view line : support::split(text, '\n')) {
    if (!line.empty() && line.front() != '#') ++original_records;
  }
  for (std::string_view line : support::split(corruption.text, '\n')) {
    if (!line.empty() && line.front() != '#') ++corrupted_records;
  }
  EXPECT_EQ(corrupted_records,
            original_records - corruption.lines_dropped + corruption.duplicates_added);
}

TEST(HmatCorruptionTest, CommentsSurviveUntouched) {
  const std::string text = "# hetmem-hmat v1\n# keep me\nlatency access initiator=0-3 target=0 value_ns=100\n";
  FaultInjector injector = FaultInjector::preset("hmat-chaos", 5);
  const HmatCorruption corruption = corrupt_hmat_text(text, injector);
  EXPECT_NE(corruption.text.find("# hetmem-hmat v1"), std::string::npos);
  EXPECT_NE(corruption.text.find("# keep me"), std::string::npos);
}

TEST(HmatCorruptionTest, CorruptedTextParsesLenientlyWithLineDiagnostics) {
  const std::string text = hmat::serialize(hmat::generate(topo::xeon_clx_snc_1lm()));
  bool saw_error_diagnostic = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultInjector injector = FaultInjector::preset("hmat-chaos", seed);
    const HmatCorruption corruption = corrupt_hmat_text(text, injector);
    const hmat::ParseReport report = hmat::parse_lenient(corruption.text);
    for (const hmat::Diagnostic& diagnostic : report.diagnostics) {
      EXPECT_GT(diagnostic.line, 0u) << diagnostic.message;
      if (!diagnostic.warning) saw_error_diagnostic = true;
    }
    // Garbled values and truncations must surface as error diagnostics, not
    // silently parse.
    if (corruption.values_garbled > 0) {
      EXPECT_GT(report.error_count(), 0u) << "seed " << seed;
    }
  }
  EXPECT_TRUE(saw_error_diagnostic);
}

}  // namespace
}  // namespace hetmem::fault
