#include "hetmem/simmem/perf_model.hpp"

#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::sim {
namespace {

using support::gb_per_s;
using support::kGiB;

TEST(KindDefaults, XeonDramMatchesMeasuredLiterature) {
  const NodePerf perf = MachinePerfModel::kind_defaults(topo::MemoryKind::kDRAM);
  EXPECT_NEAR(perf.idle_latency_ns, 285.0, 1.0);
  EXPECT_NEAR(perf.read_bw, gb_per_s(80.0), 1e9);
}

TEST(KindDefaults, NvdimmIsSlowerInEveryDimension) {
  const NodePerf dram = MachinePerfModel::kind_defaults(topo::MemoryKind::kDRAM);
  const NodePerf nvdimm =
      MachinePerfModel::kind_defaults(topo::MemoryKind::kNVDIMM);
  EXPECT_GT(nvdimm.idle_latency_ns, dram.idle_latency_ns);
  EXPECT_LT(nvdimm.read_bw, dram.read_bw);
  EXPECT_LT(nvdimm.write_bw, nvdimm.read_bw);  // Optane write asymmetry
  ASSERT_TRUE(nvdimm.device_buffer.has_value());
}

TEST(CalibratedFor, KnlDramGetsClusterScaleConstants) {
  topo::Topology topology = topo::knl_snc4_flat();
  MachinePerfModel model = MachinePerfModel::calibrated_for(topology);
  const NodePerf& dram = model.node(0);  // cluster DRAM
  const NodePerf& hbm = model.node(4);   // cluster MCDRAM
  // Latencies similar (paper §III-B2), bandwidth very different (§VI-A).
  EXPECT_NEAR(dram.idle_latency_ns / hbm.idle_latency_ns, 1.0, 0.15);
  EXPECT_GT(hbm.read_bw / dram.read_bw, 2.0);
}

TEST(CalibratedFor, XeonDramKeepsBigSocketConstants) {
  topo::Topology topology = topo::xeon_clx_1lm();
  MachinePerfModel model = MachinePerfModel::calibrated_for(topology);
  EXPECT_NEAR(model.node(0).read_bw, gb_per_s(80.0), 1e9);
  EXPECT_NEAR(model.node(2).idle_latency_ns, 860.0, 1.0);
}

TEST(CalibratedFor, MemorySideCachePerfAttached) {
  topo::Topology topology = topo::xeon_clx_2lm();
  MachinePerfModel model = MachinePerfModel::calibrated_for(topology);
  ASSERT_TRUE(model.node(0).ms_cache.has_value());
  EXPECT_EQ(model.node(0).ms_cache->size_bytes, 192 * kGiB);
}

// --- effective(): the working-set/locality resolution ---

class EffectiveTest : public ::testing::Test {
 protected:
  EffectiveTest()
      : topology_(topo::xeon_clx_1lm()),
        model_(MachinePerfModel::calibrated_for(topology_)) {}
  topo::Topology topology_;
  MachinePerfModel model_;
};

TEST_F(EffectiveTest, NvdimmNominalBelowKnee) {
  // 16 GiB working set: inside the device buffer regime.
  const EffectiveNodePerf eff = model_.effective(2, 16 * kGiB, true);
  EXPECT_NEAR(eff.read_bw, gb_per_s(40.0), 1e9);
  EXPECT_NEAR(eff.latency_ns, 860.0, 1.0);
}

TEST_F(EffectiveTest, NvdimmDegradesBeyondKnee) {
  const EffectiveNodePerf small = model_.effective(2, 16 * kGiB, true);
  const EffectiveNodePerf large = model_.effective(2, 64 * kGiB, true);
  EXPECT_LT(large.read_bw, small.read_bw * 0.6);
  EXPECT_LT(large.write_bw, small.write_bw * 0.5);
  EXPECT_GT(large.latency_ns, small.latency_ns * 1.8);
}

TEST_F(EffectiveTest, DegradationSlidesGentlyWithSize) {
  const EffectiveNodePerf at64 = model_.effective(2, 64 * kGiB, true);
  const EffectiveNodePerf at224 = model_.effective(2, 224 * kGiB, true);
  EXPECT_LT(at224.read_bw, at64.read_bw);
  // ...but not catastrophically: the slide exponent is small.
  EXPECT_GT(at224.read_bw, at64.read_bw * 0.8);
}

TEST_F(EffectiveTest, BandwidthMonotoneNonIncreasingInWorkingSet) {
  double previous = 1e18;
  for (std::uint64_t ws = kGiB; ws <= 512 * kGiB; ws *= 2) {
    const EffectiveNodePerf eff = model_.effective(2, ws, true);
    EXPECT_LE(eff.read_bw, previous + 1.0);
    previous = eff.read_bw;
  }
}

TEST_F(EffectiveTest, LatencyMonotoneNonDecreasingInWorkingSet) {
  double previous = 0.0;
  for (std::uint64_t ws = kGiB; ws <= 512 * kGiB; ws *= 2) {
    const EffectiveNodePerf eff = model_.effective(2, ws, true);
    EXPECT_GE(eff.latency_ns, previous - 1e-9);
    previous = eff.latency_ns;
  }
}

TEST_F(EffectiveTest, RemoteAccessCostsMore) {
  const EffectiveNodePerf local = model_.effective(0, kGiB, true);
  const EffectiveNodePerf remote = model_.effective(0, kGiB, false);
  EXPECT_GT(remote.latency_ns, local.latency_ns * 1.3);
  EXPECT_LT(remote.read_bw, local.read_bw * 0.7);
  EXPECT_LT(remote.write_bw, local.write_bw * 0.7);
}

TEST(EffectiveMsCache, SmallWorkingSetRunsAtCacheSpeed) {
  topo::Topology topology = topo::xeon_clx_2lm();
  MachinePerfModel model = MachinePerfModel::calibrated_for(topology);
  // Working set far below the 192 GiB DRAM cache: near-DRAM behavior.
  const EffectiveNodePerf cached = model.effective(0, 8 * kGiB, true);
  EXPECT_LT(cached.latency_ns, 350.0);
  EXPECT_GT(cached.read_bw, gb_per_s(60.0));
}

TEST(EffectiveMsCache, HugeWorkingSetFallsToBackingSpeed) {
  topo::Topology topology = topo::xeon_clx_2lm();
  MachinePerfModel model = MachinePerfModel::calibrated_for(topology);
  const EffectiveNodePerf thrashing = model.effective(0, 700 * kGiB, true);
  const EffectiveNodePerf cached = model.effective(0, 8 * kGiB, true);
  EXPECT_GT(thrashing.latency_ns, cached.latency_ns * 2.0);
  EXPECT_LT(thrashing.read_bw, cached.read_bw * 0.6);
}

TEST(EffectiveMsCache, HitRateScalesWithCacheResidency) {
  topo::Topology topology = topo::knl_snc4_hybrid50();
  MachinePerfModel model = MachinePerfModel::calibrated_for(topology);
  // Node 0: 12 GiB DRAM behind a 2 GiB MCDRAM cache. On KNL the MCDRAM
  // cache's latency matches DRAM's (paper §III-B2) — the win is bandwidth,
  // which fades as residency drops.
  const EffectiveNodePerf half = model.effective(0, 4 * kGiB, true);
  const EffectiveNodePerf full = model.effective(0, kGiB, true);
  EXPECT_GT(full.read_bw, half.read_bw * 1.2);
}

TEST(MachinePerfModelTest, ManualConstruction) {
  MachinePerfModel model(2);
  NodePerf perf;
  perf.idle_latency_ns = 50.0;
  perf.read_bw = gb_per_s(10.0);
  perf.write_bw = gb_per_s(10.0);
  perf.per_thread_read_bw = gb_per_s(10.0);
  perf.per_thread_write_bw = gb_per_s(10.0);
  model.set_node(1, perf);
  EXPECT_DOUBLE_EQ(model.node(1).idle_latency_ns, 50.0);
  EXPECT_EQ(model.node_count(), 2u);
}

}  // namespace
}  // namespace hetmem::sim
