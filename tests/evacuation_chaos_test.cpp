// Evacuation chaos: the self-healing loop (HealthMonitor -> QuarantineList ->
// Evacuator) composed with the full stack under seeded fault schedules
// (docs/RESILIENCE.md "Health & evacuation"). The contract: a node failing
// MID-RUN — including going offline outright — never crashes the workload or
// changes its numerical answer; live buffers drain off the failing node
// exactly once; and the whole health narrative (transition log + evacuation
// decision log) replays byte-identically for a fixed seed.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/health/evacuator.hpp"
#include "hetmem/health/health.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem {
namespace {

using support::kMiB;

support::Bitmap first_initiator(const topo::Topology& topology) {
  for (const topo::Object* node : topology.numa_nodes()) {
    if (!node->cpuset().empty()) return node->cpuset();
  }
  return {};
}

apps::StreamConfig small_stream() {
  apps::StreamConfig config;
  config.declared_total_bytes = 96 * kMiB;
  config.backing_elements = 1u << 14;
  config.threads = 4;
  config.iterations = 6;
  return config;
}

runtime::RuntimePolicyOptions health_policy_options() {
  runtime::RuntimePolicyOptions options;
  options.sampler.phases_per_epoch = 2;  // triad + barrier
  options.classifier.ema_alpha = 1.0;
  options.classifier.hysteresis_epochs = 1;
  return options;
}

struct EvacChaosOutcome {
  double stream_checksum = 0.0;
  std::string transition_log;
  std::string evac_log;
  std::string fault_fingerprint;
  unsigned victim = 0;
  bool victim_drained = false;
  health::HealthState victim_state = health::HealthState::kHealthy;
  std::uint64_t evac_moved = 0;
  std::map<std::uint32_t, unsigned> moved_counts;  // buffer -> kMoved count
};

/// STREAM on xeon_clx_snc_1lm with the health loop in the epoch hook.
/// `fault_preset` drives the machine's fault schedule; when `force_offline`
/// is set, the node that array `a` landed on is additionally forced offline
/// at a fixed epoch — the deterministic "node dies mid-run" scenario.
void run_stream_evac_chaos(const char* fault_preset, std::uint64_t seed,
                           bool force_offline, EvacChaosOutcome* out) {
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  const support::Bitmap initiator = first_initiator(machine.topology());
  ASSERT_FALSE(initiator.empty());

  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology())).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);
  allocator.set_retry_policy({.max_transient_retries = 8});

  fault::FaultInjector injector = fault::FaultInjector::preset(fault_preset, seed);
  machine.set_fault_injector(&injector);

  apps::BufferPlacement placement;
  placement.attribute = attr::kBandwidth;
  placement.attribute_rescue = true;
  auto runner = apps::StreamRunner::create(machine, &allocator, initiator,
                                           small_stream(), placement);
  ASSERT_TRUE(runner.ok()) << fault_preset << " seed " << seed;
  // Array `a` is the first allocation the runner traced — its node is the
  // victim the forced scenario kills mid-run.
  const auto trace = allocator.trace();
  ASSERT_FALSE(trace.empty());
  const unsigned victim = trace.front().node;
  out->victim = victim;

  runtime::RuntimePolicy policy(allocator, initiator, health_policy_options());
  health::HealthMonitor monitor(machine, registry);
  health::Evacuator evacuator(allocator, policy.mutable_engine(), initiator);
  if (force_offline) {
    // attach_health's loop, plus the deterministic mid-run kill: the victim
    // goes offline right before the epoch-2 poll observes it.
    policy.set_epoch_hook([&, victim](std::uint64_t epoch, unsigned threads) {
      if (epoch == 2) {
        EXPECT_TRUE(machine.set_node_online(victim, false).ok());
      }
      monitor.poll();
      double paid_ns = 0.0;
      for (unsigned node : monitor.nodes_needing_evacuation()) {
        paid_ns += evacuator.drain_epoch(epoch, node, monitor.state(node),
                                         threads, &policy.classifier());
      }
      return paid_ns;
    });
  } else {
    health::attach_health(policy, monitor, evacuator);
  }
  policy.attach((*runner)->exec(), [&] { (*runner)->refresh_arrays(); });

  auto result = (*runner)->run_triad();
  ASSERT_TRUE(result.ok()) << fault_preset << " seed " << seed << ": "
                           << result.error().to_string();
  machine.set_fault_injector(nullptr);

  out->stream_checksum = result->checksum;
  out->transition_log = monitor.render_transition_log();
  out->evac_log = evacuator.render_log();
  out->fault_fingerprint = injector.schedule_fingerprint();
  out->victim_drained = evacuator.drained(victim);
  out->victim_state = monitor.state(victim);
  out->evac_moved = evacuator.stats().moved;
  for (const health::EvacDecision& decision : evacuator.decisions()) {
    if (decision.verdict == health::EvacVerdict::kMoved) {
      ++out->moved_counts[decision.buffer.index];
    }
  }
}

double clean_stream_checksum() {
  sim::SimMachine clean(topo::xeon_clx_snc_1lm());
  apps::BufferPlacement forced;
  forced.forced_node = 0;
  auto runner = apps::StreamRunner::create(
      clean, nullptr, first_initiator(clean.topology()), small_stream(),
      forced);
  EXPECT_TRUE(runner.ok());
  auto result = (*runner)->run_triad();
  EXPECT_TRUE(result.ok());
  return result.ok() ? result->checksum : 0.0;
}

// Every fault preset x three seeds: the health loop rides along and the
// workload completes with the clean answer no matter what the schedule
// quarantines, degrades, or kills (the CI chaos lane runs this matrix).
class EvacuationChaosTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EvacuationChaosTest, StreamSurvivesHealthChaosWithValidResults) {
  const char* preset =
      fault::FaultInjector::preset_names()[static_cast<std::size_t>(
          std::get<0>(GetParam()))];
  const std::uint64_t seed = std::get<1>(GetParam());
  EvacChaosOutcome outcome;
  run_stream_evac_chaos(preset, seed, /*force_offline=*/false, &outcome);
  ASSERT_FALSE(HasFatalFailure());

  EXPECT_DOUBLE_EQ(outcome.stream_checksum, clean_stream_checksum())
      << preset << " seed " << seed << ": health chaos changed the answer";
  // Evacuation exactly-once: however the schedule played out, no live buffer
  // was evacuation-migrated twice.
  for (const auto& [buffer, count] : outcome.moved_counts) {
    EXPECT_LE(count, 1u) << preset << " seed " << seed << " buffer " << buffer
                         << "\n" << outcome.evac_log;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultPresetsTimesSeeds, EvacuationChaosTest,
    ::testing::Combine(
        ::testing::Range(
            0, static_cast<int>(fault::FaultInjector::preset_names().size())),
        ::testing::Values(101, 202, 303)),
    [](const ::testing::TestParamInfo<EvacuationChaosTest::ParamType>& param) {
      std::string name = fault::FaultInjector::preset_names()[
          static_cast<std::size_t>(std::get<0>(param.param))];
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(param.param));
    });

// The acceptance scenario: under the heavy preset, the node holding STREAM's
// array `a` is forced offline mid-run. Every live buffer on it must drain
// (exactly once), the checksum must match a clean run, and the same seed
// must replay the health narrative byte-for-byte.
TEST(EvacuationChaosAcceptanceTest, MidRunNodeLossDrainsExactlyOnceAndReplays) {
  EvacChaosOutcome first;
  run_stream_evac_chaos("heavy", 4242, /*force_offline=*/true, &first);
  ASSERT_FALSE(HasFatalFailure());

  EXPECT_EQ(first.victim_state, health::HealthState::kOffline);
  EXPECT_TRUE(first.victim_drained)
      << "node " << first.victim << " still holds live buffers\n"
      << first.evac_log;
  EXPECT_GE(first.evac_moved, 1u) << first.evac_log;
  for (const auto& [buffer, count] : first.moved_counts) {
    EXPECT_EQ(count, 1u) << "buffer " << buffer << " evacuated " << count
                         << " times\n" << first.evac_log;
  }
  EXPECT_NE(first.transition_log.find("machine reports node offline"),
            std::string::npos)
      << first.transition_log;
  EXPECT_DOUBLE_EQ(first.stream_checksum, clean_stream_checksum())
      << "mid-run evacuation changed the answer";

  // Same-seed replay: byte-identical fault schedule, health transitions,
  // and evacuation decisions — a chaos failure stays debuggable.
  EvacChaosOutcome second;
  run_stream_evac_chaos("heavy", 4242, /*force_offline=*/true, &second);
  ASSERT_FALSE(HasFatalFailure());
  EXPECT_EQ(first.fault_fingerprint, second.fault_fingerprint);
  EXPECT_EQ(first.transition_log, second.transition_log);
  EXPECT_EQ(first.evac_log, second.evac_log);
  EXPECT_DOUBLE_EQ(first.stream_checksum, second.stream_checksum);

  // A different seed draws a different schedule (the logs may or may not
  // differ — the fingerprint must).
  EvacChaosOutcome other;
  run_stream_evac_chaos("heavy", 4243, /*force_offline=*/true, &other);
  ASSERT_FALSE(HasFatalFailure());
  EXPECT_NE(first.fault_fingerprint, other.fault_fingerprint);
}

// Graph500 under the heavy preset with the health loop attached: BFS must
// produce a tree that validates even when health chaos relocates the graph
// mid-search.
TEST(EvacuationChaosAcceptanceTest, Graph500ValidatesUnderHealthChaos) {
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  const support::Bitmap initiator = first_initiator(machine.topology());
  ASSERT_FALSE(initiator.empty());
  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology())).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);
  allocator.set_retry_policy({.max_transient_retries = 8});
  fault::FaultInjector injector = fault::FaultInjector::preset("heavy", 31337);
  machine.set_fault_injector(&injector);

  apps::Graph500Config config;
  config.scale_declared = 16;
  config.scale_backing = 12;
  config.threads = 4;
  config.num_roots = 2;
  apps::Graph500Placement placement =
      apps::Graph500Placement::by_attribute(attr::kLatency);
  placement.graph.attribute_rescue = true;
  placement.parents.attribute_rescue = true;
  placement.frontier.attribute_rescue = true;
  auto runner = apps::Graph500Runner::create(machine, &allocator, initiator,
                                             config, placement);
  ASSERT_TRUE(runner.ok());

  runtime::RuntimePolicy policy(allocator, initiator, health_policy_options());
  health::HealthMonitor monitor(machine, registry);
  health::Evacuator evacuator(allocator, policy.mutable_engine(), initiator);
  health::attach_health(policy, monitor, evacuator);
  policy.attach((*runner)->exec(), [&] { (*runner)->refresh_arrays(); });

  auto result = (*runner)->run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_GT(result->harmonic_mean_teps, 0.0);
  EXPECT_TRUE((*runner)->validate_last_tree().ok())
      << "health chaos corrupted the BFS answer";
  machine.set_fault_injector(nullptr);
}

}  // namespace
}  // namespace hetmem
