// Property/fuzz tests: long random operation sequences against shadow
// models. These catch accounting drift that example-based tests miss —
// the allocator, machine, and pool must agree with a naive reimplementation
// after thousands of interleaved alloc/free/migrate/reserve operations.
#include <gtest/gtest.h>

#include <map>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/alloc/pool.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/support/rng.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::alloc {
namespace {

using support::kMiB;
using support::Xoshiro256;

class AllocatorFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorFuzzTest, AccountingMatchesShadowModel) {
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  attr::MemAttrRegistry registry(machine.topology());
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology(), options)).ok());
  HeterogeneousAllocator allocator(machine, registry);

  const std::size_t node_count = machine.topology().numa_nodes().size();
  // Shadow: declared bytes per node, and per live buffer.
  std::vector<std::uint64_t> shadow_used(node_count, 0);
  std::vector<std::uint64_t> shadow_reserved(node_count, 0);
  struct Live {
    sim::BufferId id;
    std::uint64_t bytes;
    unsigned node;
  };
  std::vector<Live> live;

  Xoshiro256 rng(GetParam());
  const attr::AttrId attrs[] = {attr::kCapacity, attr::kLatency,
                                attr::kBandwidth, attr::kLocality};

  for (int step = 0; step < 3000; ++step) {
    const unsigned op = static_cast<unsigned>(rng.next_below(100));
    if (op < 45 || live.empty()) {
      // Allocate 1..64 MiB with a random attribute & locality.
      AllocRequest request;
      request.bytes = (1 + rng.next_below(64)) * kMiB;
      request.attribute = attrs[rng.next_below(4)];
      const unsigned locality_node =
          static_cast<unsigned>(rng.next_below(node_count));
      request.initiator =
          machine.topology().numa_node(locality_node)->cpuset();
      request.policy = rng.next_below(2) == 0 ? Policy::kRankedFallback
                                              : Policy::kPreferredThenDefault;
      request.label = "fuzz" + std::to_string(step);
      auto allocation = allocator.mem_alloc(request);
      if (allocation.ok()) {
        shadow_used[allocation->node] += request.bytes;
        live.push_back(Live{allocation->buffer, request.bytes, allocation->node});
      }
    } else if (op < 75) {
      // Free a random live buffer.
      const std::size_t index = rng.next_below(live.size());
      ASSERT_TRUE(allocator.mem_free(live[index].id).ok());
      shadow_used[live[index].node] -= live[index].bytes;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    } else if (op < 90) {
      // Migrate a random live buffer to a random node.
      const std::size_t index = rng.next_below(live.size());
      const unsigned destination =
          static_cast<unsigned>(rng.next_below(node_count));
      auto cost = allocator.migrate(live[index].id, destination);
      if (cost.ok()) {
        shadow_used[live[index].node] -= live[index].bytes;
        shadow_used[destination] += live[index].bytes;
        live[index].node = destination;
      }
    } else if (op < 95) {
      // Reserve a little somewhere.
      const unsigned node = static_cast<unsigned>(rng.next_below(node_count));
      const std::uint64_t bytes = (1 + rng.next_below(16)) * kMiB;
      if (allocator.reserve(node, bytes).ok()) shadow_reserved[node] += bytes;
    } else {
      // Release some reservation.
      const unsigned node = static_cast<unsigned>(rng.next_below(node_count));
      const std::uint64_t bytes = (1 + rng.next_below(16)) * kMiB;
      const std::uint64_t released = std::min(shadow_reserved[node], bytes);
      allocator.release_reservation(node, bytes);
      shadow_reserved[node] -= released;
    }

    // Invariants, every step.
    for (unsigned node = 0; node < node_count; ++node) {
      ASSERT_EQ(machine.used_bytes(node), shadow_used[node])
          << "step " << step << " node " << node;
      ASSERT_EQ(allocator.reserved_bytes(node), shadow_reserved[node]);
      ASSERT_LE(machine.used_bytes(node), machine.capacity_bytes(node));
    }
  }

  // Stats are consistent with what we observed.
  EXPECT_EQ(allocator.stats().allocations - allocator.stats().frees,
            live.size());
  // Drain everything; all capacity returns.
  for (const Live& buffer : live) {
    ASSERT_TRUE(allocator.mem_free(buffer.id).ok());
  }
  for (unsigned node = 0; node < node_count; ++node) {
    EXPECT_EQ(machine.used_bytes(node), 0u);
  }
}

TEST_P(AllocatorFuzzTest, PoolMatchesShadowFreeList) {
  sim::SimMachine machine(topo::knl_snc4_flat());
  attr::MemAttrRegistry registry(machine.topology());
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology(), options)).ok());
  HeterogeneousAllocator allocator(machine, registry);

  PoolOptions pool_options;
  pool_options.attribute = attr::kBandwidth;
  pool_options.block_bytes = 8 * kMiB;
  pool_options.blocks_per_slab = 16;
  Pool pool(allocator, machine.topology().numa_node(0)->cpuset(), pool_options);

  Xoshiro256 rng(GetParam() * 31 + 7);
  std::vector<PoolBlock> live;
  std::uint64_t allocated = 0, freed = 0;
  for (int step = 0; step < 2000; ++step) {
    if (rng.next_below(100) < 55 || live.empty()) {
      auto block = pool.allocate();
      ASSERT_TRUE(block.ok());
      ++allocated;
      live.push_back(*block);
    } else {
      const std::size_t index = rng.next_below(live.size());
      ASSERT_TRUE(pool.free(live[index]).ok());
      ++freed;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    }
    const PoolStats stats = pool.stats();
    ASSERT_EQ(stats.blocks_allocated, allocated);
    ASSERT_EQ(stats.blocks_freed, freed);
    ASSERT_EQ(stats.blocks_live, live.size());
    // Machine charge == slabs x slab size.
    const std::uint64_t slab_bytes =
        pool_options.block_bytes * pool_options.blocks_per_slab;
    std::uint64_t total_used = 0;
    for (unsigned node = 0;
         node < machine.topology().numa_nodes().size(); ++node) {
      total_used += machine.used_bytes(node);
    }
    ASSERT_EQ(total_used % slab_bytes, 0u);
    ASSERT_GE(total_used / slab_bytes, (live.size() + 15) / 16 > 0 ? 1u : 0u);
  }
  // No block handle was ever duplicated among live blocks.
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
  for (const PoolBlock& block : live) {
    const auto key = std::make_pair(block.slab, block.index);
    ASSERT_EQ(++seen[key], 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzzTest,
                         ::testing::Values(11, 23, 47, 101));

// Fault-schedule fuzz (docs/RESILIENCE.md): 1000 seeded random schedules of
// transient failures and node offlining, each driving a short random
// alloc/free sequence. Whatever the injector does, the books must balance —
// every success is charged exactly once, every free returns it, nothing
// over-commits a node, and draining restores a pristine machine.
TEST(FaultScheduleFuzzTest, BooksBalanceUnderAThousandFaultSchedules) {
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    sim::SimMachine machine(topo::knl_snc4_flat());
    attr::MemAttrRegistry registry(machine.topology());
    hmat::GenerateOptions options;
    options.local_only = false;
    ASSERT_TRUE(
        hmat::load_into(registry, hmat::generate(machine.topology(), options))
            .ok());
    HeterogeneousAllocator allocator(machine, registry);

    // Draw the fault schedule itself from the seed: transient failures with
    // random intensity, and (rarely) one sticky node-offline event.
    Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ull + 1);
    fault::FaultInjector injector(seed);
    injector.configure(
        fault::site::kMachineAllocTransient,
        {.probability = 0.05 + 0.45 * rng.next_double(),
         .burst = 1 + static_cast<unsigned>(rng.next_below(3))});
    injector.configure(fault::site::kMachineNodeOffline,
                       {.probability = 0.02, .max_count = 1});
    machine.set_fault_injector(&injector);

    const std::size_t node_count = machine.topology().numa_nodes().size();
    std::vector<std::uint64_t> shadow_used(node_count, 0);
    struct Live {
      sim::BufferId id;
      std::uint64_t bytes;
      unsigned node;
    };
    std::vector<Live> live;
    std::uint64_t successes = 0, frees = 0;

    const attr::AttrId attrs[] = {attr::kCapacity, attr::kLatency,
                                  attr::kBandwidth};
    const int ops = 40 + static_cast<int>(rng.next_below(21));
    for (int step = 0; step < ops; ++step) {
      if (rng.next_below(100) < 60 || live.empty()) {
        AllocRequest request;
        request.bytes = (1 + rng.next_below(32)) * kMiB;
        request.attribute = attrs[rng.next_below(3)];
        request.initiator =
            machine.topology()
                .numa_node(static_cast<unsigned>(rng.next_below(node_count)))
                ->cpuset();
        request.attribute_rescue = rng.next_below(2) == 0;
        request.label = "ffuzz";
        auto allocation = allocator.mem_alloc(request);
        if (allocation.ok()) {
          ++successes;
          shadow_used[allocation->node] += request.bytes;
          live.push_back(
              Live{allocation->buffer, request.bytes, allocation->node});
        }
        // Failure is a legal outcome under faults; it must just not leak.
      } else {
        const std::size_t index = rng.next_below(live.size());
        ASSERT_TRUE(allocator.mem_free(live[index].id).ok())
            << "seed " << seed << " step " << step;
        ++frees;
        shadow_used[live[index].node] -= live[index].bytes;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
      }
      for (unsigned node = 0; node < node_count; ++node) {
        ASSERT_EQ(machine.used_bytes(node), shadow_used[node])
            << "seed " << seed << " step " << step << " node " << node;
        ASSERT_LE(machine.used_bytes(node), machine.capacity_bytes(node))
            << "seed " << seed << ": over-commit on node " << node;
      }
    }

    // Alloc/free balance: stats agree with the ground truth we kept.
    ASSERT_EQ(allocator.stats().allocations, successes) << "seed " << seed;
    ASSERT_EQ(allocator.stats().frees, frees) << "seed " << seed;
    ASSERT_EQ(successes - frees, live.size()) << "seed " << seed;

    // Drain: every byte comes back, even on nodes the schedule took offline.
    for (const Live& buffer : live) {
      ASSERT_TRUE(allocator.mem_free(buffer.id).ok()) << "seed " << seed;
    }
    for (unsigned node = 0; node < node_count; ++node) {
      ASSERT_EQ(machine.used_bytes(node), 0u) << "seed " << seed;
    }
    ASSERT_EQ(machine.live_buffer_count(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hetmem::alloc
