// Telemetry transport tests: SPSC ring semantics, the rings-vs-legacy-merge
// bit-exactness contract, overflow recovery, reader independence, and the
// batched power fold (docs/PERF.md "Telemetry rings", docs/CONCURRENCY.md).
//
// The load-bearing claim is exactness, not approximation: every merged
// counter an epoch consumer sees through the rings must be bit-identical to
// what the legacy O(threads x buffers) merge produced, or decision logs
// would stop replaying byte-for-byte.
#include "hetmem/simmem/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "hetmem/simmem/exec.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::sim {
namespace {

using support::kMiB;

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_traffic_bitwise_equal(const BufferTraffic& a,
                                  const BufferTraffic& b) {
  EXPECT_TRUE(same_bits(a.reads, b.reads));
  EXPECT_TRUE(same_bits(a.writes, b.writes));
  EXPECT_TRUE(same_bits(a.llc_misses, b.llc_misses));
  EXPECT_TRUE(same_bits(a.memory_bytes, b.memory_bytes));
  EXPECT_TRUE(same_bits(a.random_accesses, b.random_accesses));
  EXPECT_TRUE(same_bits(a.random_misses, b.random_misses));
}

// ---------------------------------------------------------------------------
// Ring semantics
// ---------------------------------------------------------------------------

TEST(TelemetryRing, PushPopIsFifoAndLossless) {
  TelemetryRing ring(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    TelemetryRecord record;
    record.buffer = i;
    record.cumulative.reads = 1.0 + i;
    record.cumulative.memory_bytes = 64.0 * (i + 1);
    ASSERT_TRUE(ring.try_push(record));
  }
  EXPECT_EQ(ring.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    TelemetryRecord out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.buffer, i);
    EXPECT_TRUE(same_bits(out.cumulative.reads, 1.0 + i));
    EXPECT_TRUE(same_bits(out.cumulative.memory_bytes, 64.0 * (i + 1)));
  }
  TelemetryRecord out;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TelemetryRing, CapacityRoundsUpAndFullPushFails) {
  TelemetryRing ring(5);  // rounded up to 8
  EXPECT_EQ(ring.capacity(), 8u);
  TelemetryRecord record;
  for (std::uint32_t i = 0; i < 8; ++i) {
    record.buffer = i;
    ASSERT_TRUE(ring.try_push(record));
  }
  record.buffer = 99;
  EXPECT_FALSE(ring.try_push(record));  // full: producer must back off
  ring.note_overflow();
  EXPECT_TRUE(ring.consume_overflow());
  EXPECT_FALSE(ring.consume_overflow());  // returns-and-clears
  // Popping one slot makes room again; the ring keeps working after overflow.
  TelemetryRecord out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.buffer, 0u);
  EXPECT_TRUE(ring.try_push(record));
}

TEST(TelemetryRing, PopBatchDrainsInOrderAcrossChunks) {
  TelemetryRing ring(16);
  for (std::uint32_t i = 0; i < 10; ++i) {
    TelemetryRecord record;
    record.buffer = i;
    ASSERT_TRUE(ring.try_push(record));
  }
  TelemetryRecord chunk[4];
  std::vector<std::uint32_t> seen;
  for (std::size_t popped = ring.pop_batch(chunk, 4); popped > 0;
       popped = ring.pop_batch(chunk, 4)) {
    for (std::size_t i = 0; i < popped; ++i) seen.push_back(chunk[i].buffer);
  }
  ASSERT_EQ(seen.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(ring.pop_batch(chunk, 4), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (picked up by the CI TSan stress lane)
// ---------------------------------------------------------------------------

TEST(TelemetryConcurrency, DrainRacesProducer) {
  // One producer hammers the ring while the consumer drains concurrently —
  // the acquire/release head/tail protocol must hand every record over
  // exactly once, in order, with no torn payloads. This is the ring's
  // advertised guarantee (docs/CONCURRENCY.md) and the TSan lane's prey.
  constexpr std::uint64_t kRecords = 200000;
  TelemetryRing ring(64);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      TelemetryRecord record;
      record.buffer = static_cast<std::uint32_t>(i % 7);
      record.cumulative.reads = static_cast<double>(i + 1);
      record.cumulative.memory_bytes = 64.0 * static_cast<double>(i + 1);
      while (!ring.try_push(record)) std::this_thread::yield();
    }
  });

  TelemetryRecord chunk[32];
  std::uint64_t received = 0;
  while (received < kRecords) {
    const std::size_t popped = ring.pop_batch(chunk, 32);
    if (popped == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < popped; ++i) {
      // Records arrive in push order with fully-visible payloads: the i-th
      // record ever received carries reads == i+1 and a matching byte count.
      ++received;
      ASSERT_TRUE(same_bits(chunk[i].cumulative.reads,
                            static_cast<double>(received)));
      ASSERT_TRUE(same_bits(chunk[i].cumulative.memory_bytes,
                            64.0 * static_cast<double>(received)));
      ASSERT_EQ(chunk[i].buffer, (received - 1) % 7);
    }
  }
  producer.join();
  EXPECT_EQ(received, kRecords);
  EXPECT_EQ(ring.pop_batch(chunk, 32), 0u);
}

TEST(SharedTrafficConcurrency, ContendedRecordsSumExactly) {
  // The shared-atomic baseline must at least be *correct* under contention
  // (it is the strawman bench/ablation_overhead measures against): adding
  // 1.0 is exact in double arithmetic at these magnitudes, so the CAS loops
  // must land every single add.
  constexpr unsigned kThreads = 4;
  constexpr unsigned kAdds = 20000;
  SharedTrafficTable table(2);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&table] {
      BufferTraffic delta;
      delta.reads = 1.0;
      delta.memory_bytes = 64.0;
      for (unsigned i = 0; i < kAdds; ++i) table.record(i % 2, delta);
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double per_buffer = kThreads * (kAdds / 2.0);
  EXPECT_TRUE(same_bits(table.read(0).reads, per_buffer));
  EXPECT_TRUE(same_bits(table.read(1).reads, per_buffer));
  EXPECT_TRUE(same_bits(table.read(0).memory_bytes, 64.0 * per_buffer));
}

// ---------------------------------------------------------------------------
// Rings vs legacy merge: the bit-exactness contract
// ---------------------------------------------------------------------------

constexpr unsigned kThreads = 4;

/// Mixed multi-buffer workload; thread t touches a rotating window of
/// buffers with thread- and phase-dependent traffic so the merged counters
/// exercise genuine multi-thread summation, not a single writer.
struct ModeRun {
  std::vector<BufferTraffic> merged;
  std::vector<std::pair<std::uint32_t, BufferTraffic>> deltas;
};

ModeRun run_mode(TelemetryMode mode, unsigned read_every) {
  SimMachine machine(topo::xeon_clx_1lm());
  std::vector<BufferId> buffers;
  for (unsigned i = 0; i < 8; ++i) {
    auto buffer = machine.allocate(16 * kMiB, 0, "buf" + std::to_string(i),
                                   4096);
    EXPECT_TRUE(buffer.ok());
    buffers.push_back(*buffer);
  }
  ExecutionContext exec(machine, machine.topology().numa_node(0)->cpuset(),
                        kThreads);
  exec.set_telemetry_mode(mode);
  TelemetryReader reader;
  ModeRun run;
  for (unsigned phase = 0; phase < 9; ++phase) {
    exec.run_phase(
        "mix", kThreads,
        [&](ThreadCtx& ctx, unsigned thread, std::size_t begin,
            std::size_t end) {
          if (begin >= end) return;
          for (unsigned k = 0; k < 3; ++k) {
            const BufferId id = buffers[(thread + k + phase) % buffers.size()];
            ctx.record_seq_read(0, id, (1.0 + thread) * (1u << k) * 4096.0,
                                1.0);
            if (k == 0) {
              ctx.record_seq_write(0, id, 1024.0 * (phase + 1), 1.0);
              ctx.record_rand_read(0, id, 100.0 * (thread + 1), 0.25);
            }
          }
        });
    if ((phase + 1) % read_every == 0) {
      exec.read_traffic_deltas(
          reader, [&run](std::uint32_t buffer, const BufferTraffic& delta) {
            run.deltas.emplace_back(buffer, delta);
          });
    }
  }
  run.merged = exec.merged_buffer_traffic();
  return run;
}

TEST(TelemetryModes, RingsMatchLegacyMergeBitwise) {
  for (unsigned read_every : {1u, 3u}) {
    const ModeRun rings = run_mode(TelemetryMode::kRings, read_every);
    const ModeRun legacy = run_mode(TelemetryMode::kLegacyMerge, read_every);
    ASSERT_EQ(rings.merged.size(), legacy.merged.size());
    for (std::size_t b = 0; b < rings.merged.size(); ++b) {
      expect_traffic_bitwise_equal(rings.merged[b], legacy.merged[b]);
    }
    // The epoch-boundary delta stream — what samplers and recorders actually
    // consume — must also be identical: same buffers, same order, same bits.
    ASSERT_EQ(rings.deltas.size(), legacy.deltas.size())
        << "read_every " << read_every;
    for (std::size_t i = 0; i < rings.deltas.size(); ++i) {
      EXPECT_EQ(rings.deltas[i].first, legacy.deltas[i].first);
      expect_traffic_bitwise_equal(rings.deltas[i].second,
                                   legacy.deltas[i].second);
    }
    EXPECT_FALSE(rings.deltas.empty());
  }
}

TEST(TelemetryModes, OverflowFallbackLosesNothing) {
  // A single thread touching more buffers than its ring holds (capacity
  // 1024) forces the overflow path: the producer stops publishing and the
  // drain reads the thread's cumulative counters directly. The result must
  // still be bit-identical to the legacy merge — overflow degrades cost,
  // never correctness.
  auto run = [](TelemetryMode mode) {
    SimMachine machine(topo::xeon_clx_1lm());
    std::vector<BufferId> buffers;
    for (unsigned i = 0; i < 1500; ++i) {
      auto buffer = machine.allocate(64 * 1024, 0, "o" + std::to_string(i),
                                     4096);
      EXPECT_TRUE(buffer.ok());
      buffers.push_back(*buffer);
    }
    ExecutionContext exec(machine, machine.topology().numa_node(0)->cpuset(),
                          1);
    exec.set_telemetry_mode(mode);
    exec.run_phase("flood", 1,
                   [&](ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     for (std::size_t i = 0; i < buffers.size(); ++i) {
                       ctx.record_seq_read(0, buffers[i],
                                           4096.0 * (1.0 + (i % 5)), 1.0);
                     }
                   });
    return exec.merged_buffer_traffic();
  };
  const auto rings = run(TelemetryMode::kRings);
  const auto legacy = run(TelemetryMode::kLegacyMerge);
  ASSERT_EQ(rings.size(), legacy.size());
  std::size_t nonzero = 0;
  for (std::size_t b = 0; b < rings.size(); ++b) {
    expect_traffic_bitwise_equal(rings[b], legacy[b]);
    if (rings[b].reads > 0.0) ++nonzero;
  }
  EXPECT_GE(nonzero, 1500u);  // nothing was dropped on overflow
}

TEST(TelemetryReaders, IndependentCadencesSeeTheSameTotals) {
  // Two consumers with different epoch cadences cursor into the same
  // journal; each must accumulate the identical cumulative totals — readers
  // share no diff state, so one's read never shrinks the other's deltas.
  SimMachine machine(topo::xeon_clx_1lm());
  auto buffer = machine.allocate(64 * kMiB, 0, "shared", 4096);
  ASSERT_TRUE(buffer.ok());
  ExecutionContext exec(machine, machine.topology().numa_node(0)->cpuset(),
                        kThreads);
  TelemetryReader every_phase;
  TelemetryReader at_end;
  double frequent_total = 0.0;
  for (unsigned phase = 0; phase < 6; ++phase) {
    exec.run_phase("p", kThreads,
                   [&](ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     ctx.record_seq_read(0, *buffer, 8.0 * kMiB, 1.0);
                   });
    exec.read_traffic_deltas(
        every_phase, [&](std::uint32_t, const BufferTraffic& delta) {
          frequent_total += delta.memory_bytes;
        });
  }
  double lump_total = 0.0;
  exec.read_traffic_deltas(at_end,
                           [&](std::uint32_t, const BufferTraffic& delta) {
                             lump_total += delta.memory_bytes;
                           });
  const auto merged = exec.merged_buffer_traffic();
  EXPECT_TRUE(same_bits(lump_total, merged[buffer->index].memory_bytes));
  EXPECT_GT(frequent_total, 0.0);
  EXPECT_NEAR(frequent_total, lump_total, lump_total * 1e-12);
}

// ---------------------------------------------------------------------------
// Batched power fold
// ---------------------------------------------------------------------------

TEST(MachinePowerBatch, MatchesSequentialFoldBitwise) {
  // record_node_traffic_batch advertises "bit-identical to count individual
  // calls" — same EMA updates in the same node order under one lock.
  SimMachine sequential(topo::xeon_clx_1lm());
  SimMachine batched(topo::xeon_clx_1lm());
  const std::size_t nodes = sequential.topology().numa_nodes().size();
  ASSERT_GE(nodes, 2u);
  std::vector<std::uint64_t> reads(nodes);
  std::vector<std::uint64_t> writes(nodes);
  for (unsigned interval = 1; interval <= 3; ++interval) {
    for (std::size_t n = 0; n < nodes; ++n) {
      reads[n] = (n + 1) * 128 * kMiB * interval;
      writes[n] = (n + 1) * 32 * kMiB;
    }
    const double interval_ns = 1e6 * interval;
    for (std::size_t n = 0; n < nodes; ++n) {
      sequential.record_node_traffic(static_cast<unsigned>(n), reads[n],
                                     writes[n], interval_ns);
    }
    batched.record_node_traffic_batch(reads.data(), writes.data(), nodes,
                                      interval_ns);
    for (std::size_t n = 0; n < nodes; ++n) {
      EXPECT_TRUE(same_bits(sequential.power_draw_watts(
                                static_cast<unsigned>(n)),
                            batched.power_draw_watts(static_cast<unsigned>(n))))
          << "node " << n << " interval " << interval;
    }
  }
  EXPECT_GT(batched.power_draw_watts(0), 0.0);
}

}  // namespace
}  // namespace hetmem::sim
