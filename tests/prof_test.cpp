#include "hetmem/prof/profiler.hpp"

#include <gtest/gtest.h>

#include "hetmem/simmem/array.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::prof {
namespace {

using support::kGiB;
using support::kMiB;

/// Xeon package 0 with two buffers: a streaming one on DRAM and a
/// pointer-chased one on NVDIMM, sized to defeat the LLC.
class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() : machine_(topo::xeon_clx_1lm()) {
    machine_.set_llc_bytes(27 * kMiB);
    stream_id_ = *machine_.allocate(8 * kGiB, 0, "stream.data", 4096);
    chase_id_ = *machine_.allocate(8 * kGiB, 2, "graph.parents", 4096);
    exec_ = std::make_unique<sim::ExecutionContext>(
        machine_, machine_.topology().numa_node(0)->cpuset(), 4);
  }

  void run_streaming_phase(double bytes) {
    sim::Array<double> array(machine_, stream_id_);
    exec_->run_phase("stream", 4,
                     [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                         std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         array.record_bulk_read(ctx, bytes / 4);
                       }
                     });
  }

  void run_chasing_phase(double accesses) {
    sim::Array<std::uint32_t> array(machine_, chase_id_);
    exec_->run_phase("chase", 4,
                     [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                         std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         array.record_bulk_random_reads(ctx, accesses / 4);
                       }
                     });
  }

  sim::SimMachine machine_;
  sim::BufferId stream_id_, chase_id_;
  std::unique_ptr<sim::ExecutionContext> exec_;
};

TEST_F(ProfilerTest, EmptyRunYieldsZeroSummary) {
  const BoundnessSummary summary = summarize(*exec_);
  EXPECT_DOUBLE_EQ(summary.dram_bound_pct, 0.0);
  EXPECT_DOUBLE_EQ(summary.pmem_bw_bound_pct, 0.0);
  EXPECT_FALSE(summary.latency_flagged());
  EXPECT_FALSE(summary.bandwidth_flagged());
  EXPECT_TRUE(profile_buffers(*exec_).empty());
}

TEST_F(ProfilerTest, StreamingRunIsDramBandwidthBound) {
  run_streaming_phase(64e9);
  const BoundnessSummary summary = summarize(*exec_);
  EXPECT_GT(summary.dram_bw_bound_pct, 90.0);
  EXPECT_LT(summary.pmem_bw_bound_pct, 1.0);
  EXPECT_TRUE(summary.bandwidth_flagged());
}

TEST_F(ProfilerTest, ChasingRunIsPmemLatencyBound) {
  run_chasing_phase(4e6);
  const BoundnessSummary summary = summarize(*exec_);
  EXPECT_GT(summary.pmem_bound_pct, 20.0);
  EXPECT_TRUE(summary.latency_flagged());
  EXPECT_LT(summary.dram_bw_bound_pct, 1.0);
}

TEST_F(ProfilerTest, MixedRunAttributesBothKinds) {
  run_streaming_phase(64e9);
  run_chasing_phase(4e6);
  const BoundnessSummary summary = summarize(*exec_);
  EXPECT_GT(summary.dram_bw_bound_pct, 10.0);
  EXPECT_GT(summary.pmem_bound_pct, 5.0);
}

TEST_F(ProfilerTest, BufferProfilesOrderedByTraffic) {
  run_streaming_phase(64e9);
  run_chasing_phase(1e5);  // much less traffic
  auto profiles = profile_buffers(*exec_);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].label, "stream.data");
  EXPECT_GT(profiles[0].memory_bytes, profiles[1].memory_bytes);
}

TEST_F(ProfilerTest, SensitivityClassification) {
  run_streaming_phase(64e9);
  run_chasing_phase(1e8);
  auto profiles = profile_buffers(*exec_);
  ASSERT_EQ(profiles.size(), 2u);
  for (const BufferProfile& profile : profiles) {
    if (profile.label == "stream.data") {
      EXPECT_EQ(profile.sensitivity, Sensitivity::kBandwidth);
      EXPECT_LT(profile.random_fraction, 0.01);
    } else {
      EXPECT_EQ(profile.sensitivity, Sensitivity::kLatency);
      EXPECT_GT(profile.random_fraction, 0.99);
    }
  }
}

TEST_F(ProfilerTest, TinyTrafficBuffersAreInsensitive) {
  run_streaming_phase(64e9);
  // Chase contributes < 1% of total memory traffic.
  run_chasing_phase(100.0);
  auto profiles = profile_buffers(*exec_);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[1].label, "graph.parents");
  EXPECT_EQ(profiles[1].sensitivity, Sensitivity::kInsensitive);
}

TEST_F(ProfilerTest, AllocationHints) {
  EXPECT_EQ(allocation_hint(Sensitivity::kLatency), attr::kLatency);
  EXPECT_EQ(allocation_hint(Sensitivity::kBandwidth), attr::kBandwidth);
  EXPECT_EQ(allocation_hint(Sensitivity::kInsensitive), attr::kCapacity);
}

TEST_F(ProfilerTest, RenderSummaryShowsFlags) {
  run_chasing_phase(4e6);
  const std::string out = render_summary(summarize(*exec_));
  EXPECT_NE(out.find("PMem Bound"), std::string::npos);
  EXPECT_NE(out.find("FLAG: latency issue"), std::string::npos);
  EXPECT_NE(out.find("% of clockticks"), std::string::npos);
}

TEST_F(ProfilerTest, RenderHotBuffersTable) {
  run_streaming_phase(1e9);
  run_chasing_phase(1e6);
  const std::string out = render_hot_buffers(profile_buffers(*exec_));
  EXPECT_NE(out.find("stream.data"), std::string::npos);
  EXPECT_NE(out.find("graph.parents"), std::string::npos);
  EXPECT_NE(out.find("LLC Miss Count"), std::string::npos);
}

TEST_F(ProfilerTest, RenderHotBuffersHonorsTopN) {
  run_streaming_phase(1e9);
  run_chasing_phase(1e6);
  const std::string out = render_hot_buffers(profile_buffers(*exec_), 1);
  EXPECT_NE(out.find("stream.data"), std::string::npos);
  EXPECT_EQ(out.find("graph.parents"), std::string::npos);
}

TEST_F(ProfilerTest, ThresholdsConfigurable) {
  run_streaming_phase(64e9);
  ProfileOptions options;
  options.bw_bound_utilization = 1.01;  // unreachable
  const BoundnessSummary summary = summarize(*exec_, options);
  EXPECT_DOUBLE_EQ(summary.dram_bw_bound_pct, 0.0);
}

TEST_F(ProfilerTest, TimelineShowsReadAndWriteBars) {
  run_streaming_phase(8e9);
  run_chasing_phase(1e6);
  const std::string out = render_timeline(*exec_);
  EXPECT_NE(out.find("bandwidth over time"), std::string::npos);
  EXPECT_NE(out.find("stream"), std::string::npos);
  EXPECT_NE(out.find("chase"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);  // read bar in the stream row
}

TEST_F(ProfilerTest, TimelineEmptyRun) {
  EXPECT_NE(render_timeline(*exec_).find("no phases"), std::string::npos);
}

TEST_F(ProfilerTest, TimelineCoalescesLongRuns) {
  for (int i = 0; i < 100; ++i) run_streaming_phase(1e8);
  const std::string out = render_timeline(*exec_, /*max_phases=*/10);
  // At most 10 sample rows + header.
  std::size_t rows = 0;
  for (char c : out) rows += c == '\n';
  EXPECT_LE(rows, 12u);
}

TEST(SensitivityName, AllValuesNamed) {
  EXPECT_STREQ(sensitivity_name(Sensitivity::kLatency), "latency");
  EXPECT_STREQ(sensitivity_name(Sensitivity::kBandwidth), "bandwidth");
  EXPECT_STREQ(sensitivity_name(Sensitivity::kInsensitive), "insensitive");
}

}  // namespace
}  // namespace hetmem::prof
