#include "hetmem/ident/ident.hpp"

#include <gtest/gtest.h>

#include "hetmem/hmat/hmat.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::ident {
namespace {

std::vector<NodeClassification> classify_via_probe(topo::Topology topology) {
  sim::SimMachine machine(std::move(topology));
  attr::MemAttrRegistry registry(machine.topology());
  probe::ProbeOptions options;
  options.backing_bytes = 64 * 1024;
  options.chase_accesses = 1500;
  options.buffer_bytes = 128ull * 1024 * 1024;
  options.include_remote = false;
  auto report = probe::discover(machine, options);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(probe::feed_registry(registry, *report).ok());
  return classify(registry);
}

TEST(ExpectedGuess, CoversEveryKind) {
  EXPECT_EQ(expected_guess(topo::MemoryKind::kDRAM), KindGuess::kNormal);
  EXPECT_EQ(expected_guess(topo::MemoryKind::kHBM), KindGuess::kFastSmall);
  EXPECT_EQ(expected_guess(topo::MemoryKind::kNVDIMM), KindGuess::kSlowBig);
  EXPECT_EQ(expected_guess(topo::MemoryKind::kNAM), KindGuess::kFar);
}

TEST(Classify, XeonFromMeasuredValues) {
  auto result = classify_via_probe(topo::xeon_clx_1lm());
  ASSERT_EQ(result.size(), 4u);
  EXPECT_EQ(result[0].guess, KindGuess::kNormal);   // DRAM
  EXPECT_EQ(result[1].guess, KindGuess::kNormal);   // DRAM
  EXPECT_EQ(result[2].guess, KindGuess::kSlowBig);  // NVDIMM
  EXPECT_EQ(result[3].guess, KindGuess::kSlowBig);
  for (const NodeClassification& c : result) {
    EXPECT_GT(c.confidence, 0.0);
    EXPECT_FALSE(c.rationale.empty());
  }
}

TEST(Classify, KnlSeparatesHbmFromDram) {
  auto result = classify_via_probe(topo::knl_snc4_flat());
  ASSERT_EQ(result.size(), 8u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(result[i].guess, KindGuess::kNormal) << "DRAM node " << i;
    EXPECT_EQ(result[i + 4].guess, KindGuess::kFastSmall) << "HBM node " << i;
  }
}

TEST(Classify, NoValuesMeansUnknown) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);  // capacity only, no perf
  auto result = classify(registry);
  for (const NodeClassification& c : result) {
    EXPECT_EQ(c.guess, KindGuess::kUnknown);
  }
  EXPECT_EQ(agreement_with_ground_truth(topology, result), 0.0);
}

// Cross-preset: classification from advertised HMAT values matches ground
// truth on every platform the paper depicts.
class IdentAgreementTest : public ::testing::TestWithParam<topo::NamedTopology> {};

TEST_P(IdentAgreementTest, AdvertisedValuesIdentifyKinds) {
  topo::Topology topology = GetParam().factory();
  attr::MemAttrRegistry registry(topology);
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(hmat::load_into(registry, hmat::generate(topology, options)).ok());
  auto result = classify(registry);
  if (std::string(GetParam().name) == "xeon_clx_2lm") {
    // 2-Level-Memory is the documented exception: NVDIMM hidden behind a
    // DRAM cache genuinely behaves like normal memory — the paper's
    // footnote 22/23 point that memory-side caches make observed
    // performance differ from the node's own identity.
    for (const NodeClassification& c : result) {
      EXPECT_EQ(c.guess, KindGuess::kNormal) << render(topology, result);
    }
    return;
  }
  const double agreement = agreement_with_ground_truth(topology, result);
  EXPECT_GE(agreement, 0.99) << render(topology, result);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, IdentAgreementTest, ::testing::ValuesIn(topo::all_presets()),
    [](const ::testing::TestParamInfo<topo::NamedTopology>& info) {
      return info.param.name;
    });

TEST(Render, MentionsGuessAndTruth) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(hmat::load_into(registry, hmat::generate(topology, options)).ok());
  const std::string out = render(topology, classify(registry));
  EXPECT_NE(out.find("slow-big"), std::string::npos);
  EXPECT_NE(out.find("[truth: NVDIMM]"), std::string::npos);
  EXPECT_NE(out.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace hetmem::ident
