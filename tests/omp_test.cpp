#include "hetmem/omp/omp_spaces.hpp"

#include <gtest/gtest.h>

#include "hetmem/hmat/hmat.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::omp {
namespace {

using support::Errc;
using support::kGiB;

class OmpTest : public ::testing::Test {
 protected:
  // KNL cluster: HBM node 4 (4 GiB), DRAM node 0 (24 GiB).
  OmpTest()
      : machine_(topo::knl_snc4_flat()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_),
        runtime_(allocator_) {
    hmat::GenerateOptions options;
    options.local_only = false;
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology(), options))
            .ok());
  }

  support::Bitmap thread_place() {
    return machine_.topology().numa_node(0)->cpuset();
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  alloc::HeterogeneousAllocator allocator_;
  OmpRuntime runtime_;
};

TEST_F(OmpTest, SpaceNamesAndAttributes) {
  EXPECT_STREQ(mem_space_name(MemSpace::kHighBandwidth), "omp_high_bw_mem_space");
  EXPECT_EQ(space_attribute(MemSpace::kHighBandwidth), attr::kBandwidth);
  EXPECT_EQ(space_attribute(MemSpace::kLowLatency), attr::kLatency);
  EXPECT_EQ(space_attribute(MemSpace::kLargeCap), attr::kCapacity);
  EXPECT_EQ(space_attribute(MemSpace::kDefault), attr::kLocality);
}

TEST_F(OmpTest, PredefinedAllocatorsExist) {
  for (MemSpace space : {MemSpace::kDefault, MemSpace::kLargeCap,
                         MemSpace::kConst, MemSpace::kHighBandwidth,
                         MemSpace::kLowLatency}) {
    const OmpAllocator* info = runtime_.allocator_info(runtime_.predefined(space));
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->space, space);
  }
  EXPECT_EQ(runtime_.allocator_info(999), nullptr);
}

TEST_F(OmpTest, HighBwAllocLandsOnHbm) {
  auto buffer = runtime_.allocate(
      kGiB, runtime_.predefined(MemSpace::kHighBandwidth), thread_place());
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(machine_.topology().numa_node(machine_.info(*buffer).node)->memory_kind(),
            topo::MemoryKind::kHBM);
}

TEST_F(OmpTest, LowLatAllocLandsOnDram) {
  auto buffer = runtime_.allocate(
      kGiB, runtime_.predefined(MemSpace::kLowLatency), thread_place());
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(machine_.info(*buffer).node, 0u);
}

TEST_F(OmpTest, PortableAcrossMachines) {
  // The same omp_high_bw_mem_space request on the Xeon (no HBM) returns its
  // best-bandwidth memory, the DRAM — nothing to change in user code.
  sim::SimMachine xeon(topo::xeon_clx_1lm());
  attr::MemAttrRegistry registry(xeon.topology());
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(hmat::load_into(registry, hmat::generate(xeon.topology(), options)).ok());
  alloc::HeterogeneousAllocator allocator(xeon, registry);
  OmpRuntime runtime(allocator);
  auto buffer =
      runtime.allocate(kGiB, runtime.predefined(MemSpace::kHighBandwidth),
                       xeon.topology().numa_node(0)->cpuset());
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(xeon.topology().numa_node(xeon.info(*buffer).node)->memory_kind(),
            topo::MemoryKind::kDRAM);
}

TEST_F(OmpTest, DefaultFallbackSpillsToDefaultSpace) {
  // Exhaust the 4 GiB HBM, then ask for more with the default trait.
  ASSERT_TRUE(runtime_
                  .allocate(4 * kGiB,
                            runtime_.predefined(MemSpace::kHighBandwidth),
                            thread_place())
                  .ok());
  auto spill = runtime_.allocate(
      kGiB, runtime_.predefined(MemSpace::kHighBandwidth), thread_place());
  ASSERT_TRUE(spill.ok());
  EXPECT_EQ(machine_.info(*spill).node, 0u);  // default space: local DRAM
}

TEST_F(OmpTest, NullFallbackReturnsError) {
  auto handle = runtime_.init_allocator(
      MemSpace::kHighBandwidth,
      AllocatorTraits{.fallback = FallbackTrait::kNullFb, .alignment = 64});
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(runtime_.allocate(4 * kGiB, *handle, thread_place()).ok());
  auto spill = runtime_.allocate(kGiB, *handle, thread_place());
  ASSERT_FALSE(spill.ok());
  EXPECT_EQ(spill.error().code, Errc::kOutOfCapacity);
}

TEST_F(OmpTest, AbortFallbackSurfacesDistinctError) {
  auto handle = runtime_.init_allocator(
      MemSpace::kHighBandwidth,
      AllocatorTraits{.fallback = FallbackTrait::kAbortFb, .alignment = 64});
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(runtime_.allocate(4 * kGiB, *handle, thread_place()).ok());
  auto spill = runtime_.allocate(kGiB, *handle, thread_place());
  ASSERT_FALSE(spill.ok());
  EXPECT_EQ(spill.error().code, Errc::kInternal);
  EXPECT_NE(spill.error().message.find("abort_fb"), std::string::npos);
}

TEST_F(OmpTest, AlignmentTraitPadsTheCharge) {
  auto handle = runtime_.init_allocator(
      MemSpace::kLowLatency,
      AllocatorTraits{.fallback = FallbackTrait::kNullFb, .alignment = 4096});
  ASSERT_TRUE(handle.ok());
  auto buffer = runtime_.allocate(100, *handle, thread_place());
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(machine_.info(*buffer).declared_bytes, 4096u);
}

TEST_F(OmpTest, AlignmentMustBePowerOfTwo) {
  auto bad = runtime_.init_allocator(
      MemSpace::kDefault,
      AllocatorTraits{.fallback = FallbackTrait::kNullFb, .alignment = 48});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kInvalidArgument);
}

TEST_F(OmpTest, FreeRoundTrip) {
  auto buffer = runtime_.allocate(
      kGiB, runtime_.predefined(MemSpace::kHighBandwidth), thread_place());
  ASSERT_TRUE(buffer.ok());
  const std::uint64_t used = machine_.used_bytes(4);
  ASSERT_TRUE(runtime_.deallocate(*buffer).ok());
  EXPECT_EQ(machine_.used_bytes(4), used - kGiB);
  EXPECT_FALSE(runtime_.deallocate(*buffer).ok());
}

TEST_F(OmpTest, UnknownHandleRejected) {
  auto buffer = runtime_.allocate(kGiB, 12345, thread_place());
  ASSERT_FALSE(buffer.ok());
  EXPECT_EQ(buffer.error().code, Errc::kInvalidArgument);
}

}  // namespace
}  // namespace hetmem::omp
