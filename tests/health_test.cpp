// Self-healing memory targets (docs/RESILIENCE.md "Health & evacuation"):
// the HealthMonitor's per-node state machine, quarantine-aware ranking
// composition, allocator admission control (backpressure), the fault-site
// catalog, and the Evacuator's budgeted drains. The HealthConcurrency suite
// runs under the CI TSan lane: allocation threads race quarantine
// transitions and evacuation without torn rankings or double-migration.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/health/evacuator.hpp"
#include "hetmem/health/health.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem {
namespace {

using support::kGiB;
using support::kMiB;

sim::BufferTraffic streaming_traffic(double bytes) {
  sim::BufferTraffic traffic;
  traffic.reads = bytes / 64.0;
  traffic.llc_misses = bytes / 64.0;
  traffic.memory_bytes = bytes;
  return traffic;
}

sim::BufferTraffic random_traffic(double misses) {
  sim::BufferTraffic traffic;
  traffic.reads = misses;
  traffic.llc_misses = misses;
  traffic.random_accesses = misses;
  traffic.random_misses = misses;
  traffic.memory_bytes = misses * 64.0;
  return traffic;
}

runtime::Epoch make_epoch(
    std::uint64_t index,
    std::vector<std::pair<std::uint32_t, sim::BufferTraffic>> samples) {
  runtime::Epoch epoch;
  epoch.index = index;
  epoch.duration_ns = 1e9;
  for (auto& [buffer, traffic] : samples) {
    epoch.total_memory_bytes += traffic.memory_bytes;
    epoch.samples.push_back(
        runtime::EpochSample{sim::BufferId{buffer}, traffic});
  }
  return epoch;
}

runtime::ClassifierOptions immediate_classifier() {
  runtime::ClassifierOptions options;
  options.ema_alpha = 1.0;
  options.hysteresis_epochs = 1;
  return options;
}

class HealthTest : public ::testing::Test {
 protected:
  HealthTest()
      : machine_(topo::xeon_clx_1lm()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_),
        initiator_(machine_.topology().numa_node(0)->cpuset()) {
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology())).ok());
  }

  unsigned nvdimm_node() const {
    for (const topo::Object* node : machine_.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        return node->logical_index();
      }
    }
    return 0;
  }

  std::size_t node_count() const {
    return machine_.topology().numa_nodes().size();
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  alloc::HeterogeneousAllocator allocator_;
  support::Bitmap initiator_;
};

// ---------------------------------------------------------------------------
// HealthMonitor state machine
// ---------------------------------------------------------------------------

TEST_F(HealthTest, DegradedNodeEscalatesThenRecoversThroughProbation) {
  health::HealthMonitor monitor(machine_, registry_);
  ASSERT_TRUE(machine_.set_node_degraded(0, true).ok());

  // Degraded regime = fault evidence every poll: suspect on the first,
  // quarantined after faulty_polls_to_quarantine consecutive faulty polls.
  monitor.poll();
  EXPECT_EQ(monitor.state(0), health::HealthState::kSuspect);
  EXPECT_EQ(monitor.quarantine().verdict(0),
            health::PlacementVerdict::kNormal)
      << "suspect must not affect placement yet";
  monitor.poll();
  EXPECT_EQ(monitor.state(0), health::HealthState::kQuarantined);
  EXPECT_EQ(monitor.quarantine().verdict(0),
            health::PlacementVerdict::kDeprioritize);

  // Stays quarantined while the regime persists.
  monitor.poll();
  EXPECT_EQ(monitor.state(0), health::HealthState::kQuarantined);

  // Recovery is one state per clean streak: quarantined -> suspect
  // (re-probation) -> healthy, clean_polls_to_recover polls each.
  ASSERT_TRUE(machine_.set_node_degraded(0, false).ok());
  for (unsigned i = 0; i < monitor.options().clean_polls_to_recover; ++i) {
    EXPECT_EQ(monitor.state(0), health::HealthState::kQuarantined);
    monitor.poll();
  }
  EXPECT_EQ(monitor.state(0), health::HealthState::kSuspect);
  for (unsigned i = 0; i < monitor.options().clean_polls_to_recover; ++i) {
    monitor.poll();
  }
  EXPECT_EQ(monitor.state(0), health::HealthState::kHealthy);
  EXPECT_EQ(monitor.quarantine().verdict(0),
            health::PlacementVerdict::kNormal);

  const std::string log = monitor.render_transition_log();
  EXPECT_NE(log.find("healthy -> suspect"), std::string::npos) << log;
  EXPECT_NE(log.find("suspect -> quarantined"), std::string::npos) << log;
  EXPECT_NE(log.find("quarantined -> suspect"), std::string::npos) << log;
  EXPECT_NE(log.find("re-probation"), std::string::npos) << log;
}

TEST_F(HealthTest, ErrorBurstJumpsStraightToQuarantine) {
  health::HealthMonitor monitor(machine_, registry_);
  fault::FaultInjector injector(77);
  injector.configure(fault::site::kMachineAllocTransient,
                     {.probability = 1.0});
  machine_.set_fault_injector(&injector);
  // Every allocation attempt fails with an injected transient, each adding
  // one to the node's transient_faults telemetry.
  for (unsigned i = 0; i < monitor.options().quarantine_errors; ++i) {
    EXPECT_FALSE(machine_.allocate(kMiB, 0, "doomed").ok());
  }
  machine_.set_fault_injector(nullptr);

  monitor.poll();
  EXPECT_EQ(monitor.state(0), health::HealthState::kQuarantined);
  ASSERT_FALSE(monitor.transitions().empty());
  const health::HealthTransition& transition = monitor.transitions().back();
  EXPECT_EQ(transition.from, health::HealthState::kHealthy);
  EXPECT_EQ(transition.to, health::HealthState::kQuarantined);
  EXPECT_NE(transition.reason.find("error burst"), std::string::npos)
      << transition.reason;
}

TEST_F(HealthTest, OfflineIsDetectedAndReturnEntersProbation) {
  health::HealthMonitor monitor(machine_, registry_);
  const std::uint64_t before = registry_.generation();
  ASSERT_TRUE(machine_.set_node_online(1, false).ok());
  monitor.poll();
  EXPECT_EQ(monitor.state(1), health::HealthState::kOffline);
  EXPECT_EQ(monitor.quarantine().verdict(1),
            health::PlacementVerdict::kExclude);
  EXPECT_GT(registry_.generation(), before)
      << "every transition must invalidate cached rankings";

  // An excluded node disappears from every ranking composition.
  const auto query = attr::Initiator::from_cpuset(initiator_);
  for (const attr::TargetValue& target :
       registry_.targets_ranked(attr::kCapacity, query)) {
    EXPECT_NE(target.target->logical_index(), 1u);
  }

  // Back online: re-probation through quarantined, never straight to healthy.
  ASSERT_TRUE(machine_.set_node_online(1, true).ok());
  monitor.poll();
  EXPECT_EQ(monitor.state(1), health::HealthState::kQuarantined);
  EXPECT_NE(monitor.render_transition_log().find("probation"),
            std::string::npos);
}

TEST_F(HealthTest, MonitorInstallsAndUninstallsQuarantineList) {
  EXPECT_EQ(registry_.quarantine_list(), nullptr);
  {
    health::HealthMonitor monitor(machine_, registry_);
    EXPECT_EQ(registry_.quarantine_list(), &monitor.quarantine());
  }
  EXPECT_EQ(registry_.quarantine_list(), nullptr)
      << "destroyed monitor must uninstall its list";
}

// ---------------------------------------------------------------------------
// QuarantineList + ranking composition (registry-level)
// ---------------------------------------------------------------------------

TEST_F(HealthTest, QuarantinedTargetsSinkAndExcludedVanish) {
  health::QuarantineList list(node_count());
  EXPECT_TRUE(list.all_clear());
  EXPECT_EQ(list.verdict(999), health::PlacementVerdict::kNormal)
      << "out-of-range nodes read as normal";
  registry_.set_quarantine_list(&list);

  const auto query = attr::Initiator::from_cpuset(initiator_);
  const auto baseline = registry_.targets_ranked(attr::kBandwidth, query);
  ASSERT_GE(baseline.size(), 2u);
  const unsigned best = baseline.front().target->logical_index();

  // Deprioritize: the former best target sinks to the bottom of the same
  // ranking, and best_target picks the runner-up.
  list.set(best, health::PlacementVerdict::kDeprioritize);
  registry_.invalidate_rankings();
  auto ranked = registry_.targets_ranked(attr::kBandwidth, query);
  ASSERT_EQ(ranked.size(), baseline.size());
  EXPECT_EQ(ranked.back().target->logical_index(), best);
  auto top = registry_.best_target(attr::kBandwidth, query);
  ASSERT_TRUE(top.ok());
  EXPECT_NE(top->target->logical_index(), best);

  // Cached rankings agree bit-for-bit with the uncached composition.
  auto cached = registry_.targets_ranked_cached(attr::kBandwidth, query);
  ASSERT_EQ(cached->targets.size(), ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(cached->targets[i].target, ranked[i].target);
    EXPECT_EQ(cached->targets[i].value, ranked[i].value);
  }

  // Exclude: the target vanishes from plain and resilient rankings alike.
  list.set(best, health::PlacementVerdict::kExclude);
  registry_.invalidate_rankings();
  for (const attr::TargetValue& target :
       registry_.targets_ranked(attr::kBandwidth, query)) {
    EXPECT_NE(target.target->logical_index(), best);
  }
  for (const attr::TargetValue& target :
       registry_.targets_ranked_resilient(attr::kBandwidth, query)) {
    EXPECT_NE(target.target->logical_index(), best);
  }

  list.set(best, health::PlacementVerdict::kNormal);
  registry_.invalidate_rankings();
  auto restored = registry_.targets_ranked(attr::kBandwidth, query);
  ASSERT_EQ(restored.size(), baseline.size());
  EXPECT_EQ(restored.front().target->logical_index(), best);
  registry_.set_quarantine_list(nullptr);
}

// ---------------------------------------------------------------------------
// Allocator: admission control + offline rescue skip
// ---------------------------------------------------------------------------

TEST_F(HealthTest, AllTargetsQuarantinedBackpressuresThenRecovers) {
  health::HealthMonitor monitor(machine_, registry_);
  for (unsigned node = 0; node < node_count(); ++node) {
    ASSERT_TRUE(machine_.set_node_degraded(node, true).ok());
  }
  monitor.poll();
  monitor.poll();
  for (unsigned node = 0; node < node_count(); ++node) {
    ASSERT_EQ(monitor.state(node), health::HealthState::kQuarantined);
  }

  alloc::AllocRequest request;
  request.bytes = 64 * kMiB;
  request.attribute = attr::kCapacity;
  request.initiator = initiator_;
  request.label = "gated";
  request.admission_control = true;

  // Admission control on: capacity exists but every target is unhealthy, so
  // the request fails with a clean kBackpressure (not kOutOfCapacity).
  auto gated = allocator_.mem_alloc(request);
  ASSERT_FALSE(gated.ok());
  EXPECT_EQ(gated.error().code, support::Errc::kBackpressure)
      << gated.error().to_string();
  EXPECT_NE(gated.error().message.find("quarantined"), std::string::npos);
  EXPECT_GE(allocator_.stats().backpressure_rejections, 1u);

  // Best-effort callers still land (degraded placement beats failure).
  request.admission_control = false;
  request.label = "best-effort";
  auto best_effort = allocator_.mem_alloc(request);
  ASSERT_TRUE(best_effort.ok());
  ASSERT_TRUE(allocator_.mem_free(best_effort->buffer).ok());

  // Re-probation: clean polls walk every node back to healthy, after which
  // the gated request succeeds — the allocator recovered without restart.
  for (unsigned node = 0; node < node_count(); ++node) {
    ASSERT_TRUE(machine_.set_node_degraded(node, false).ok());
  }
  for (unsigned i = 0; i < 2 * monitor.options().clean_polls_to_recover; ++i) {
    monitor.poll();
  }
  for (unsigned node = 0; node < node_count(); ++node) {
    ASSERT_EQ(monitor.state(node), health::HealthState::kHealthy);
  }
  request.admission_control = true;
  request.label = "recovered";
  auto recovered = allocator_.mem_alloc(request);
  ASSERT_TRUE(recovered.ok()) << recovered.error().to_string();
  EXPECT_TRUE(allocator_.mem_free(recovered->buffer).ok());
}

TEST_F(HealthTest, AdmissionFastFailSkipsRankingWalkWhenNothingIsHealthy) {
  // Zero healthy capacity must fail BEFORE the ranking machinery runs: the
  // fast-fail is the allocator's overload floor, and walking (or warming)
  // rankings for a request that cannot land anywhere would burn cycles
  // exactly when the machine is sickest.
  health::QuarantineList list(node_count());
  registry_.set_quarantine_list(&list);
  for (unsigned node = 0; node < node_count(); ++node) {
    list.set(node, health::PlacementVerdict::kExclude);
  }

  registry_.reset_ranking_cache_stats();
  alloc::AllocRequest request;
  request.bytes = 64 * kMiB;
  request.attribute = attr::kCapacity;
  request.initiator = initiator_;
  request.label = "fast-fail";
  request.admission_control = true;
  auto gated = allocator_.mem_alloc(request);
  ASSERT_FALSE(gated.ok());
  EXPECT_EQ(gated.error().code, support::Errc::kBackpressure)
      << gated.error().to_string();
  EXPECT_NE(gated.error().message.find("quarantined"), std::string::npos);

  const auto cache = registry_.ranking_cache_stats();
  EXPECT_EQ(cache.hits + cache.misses, 0u)
      << "fast-fail must not touch the ranking cache";
  const auto stats = allocator_.stats();
  EXPECT_GE(stats.backpressure_health, 1u);
  EXPECT_EQ(stats.backpressure_rejections,
            stats.backpressure_health + stats.backpressure_quota +
                stats.backpressure_shed);
  registry_.set_quarantine_list(nullptr);
}

TEST_F(HealthTest, AdmissionControlRoutesAroundQuarantinedTarget) {
  health::QuarantineList list(node_count());
  registry_.set_quarantine_list(&list);
  const auto query = attr::Initiator::from_cpuset(initiator_);
  const auto baseline = registry_.targets_ranked(attr::kCapacity, query);
  ASSERT_GE(baseline.size(), 2u);
  const unsigned best = baseline.front().target->logical_index();
  list.set(best, health::PlacementVerdict::kDeprioritize);
  registry_.invalidate_rankings();

  alloc::AllocRequest request;
  request.bytes = 64 * kMiB;
  request.attribute = attr::kCapacity;
  request.initiator = initiator_;
  request.label = "routed";
  request.admission_control = true;
  auto allocation = allocator_.mem_alloc(request);
  ASSERT_TRUE(allocation.ok()) << allocation.error().to_string();
  EXPECT_NE(allocation->node, best)
      << "admission control must withhold the quarantined target";
  EXPECT_EQ(allocator_.stats().backpressure_rejections, 0u);
  EXPECT_TRUE(allocator_.mem_free(allocation->buffer).ok());
  registry_.set_quarantine_list(nullptr);
}

TEST_F(HealthTest, RescuePathSkipsOfflineTargetEarly) {
  // No monitor installed: the ranking itself still lists the node, but the
  // allocator's walk checks node_online() first and reports "offline"
  // instead of probing a dead target as if it were merely full.
  const auto query = attr::Initiator::from_cpuset(initiator_);
  const auto baseline = registry_.targets_ranked(attr::kBandwidth, query);
  ASSERT_GE(baseline.size(), 2u);
  const unsigned best = baseline.front().target->logical_index();
  ASSERT_TRUE(machine_.set_node_online(best, false).ok());

  alloc::AllocRequest request;
  request.bytes = 64 * kMiB;
  request.attribute = attr::kBandwidth;
  request.initiator = initiator_;
  request.label = "fallback";
  auto fallback = allocator_.mem_alloc(request);
  ASSERT_TRUE(fallback.ok()) << fallback.error().to_string();
  EXPECT_NE(fallback->node, best);
  EXPECT_TRUE(fallback->fell_back);
  EXPECT_TRUE(allocator_.mem_free(fallback->buffer).ok());

  request.policy = alloc::Policy::kStrict;
  request.label = "strict";
  auto strict = allocator_.mem_alloc(request);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.error().message.find("offline"), std::string::npos)
      << strict.error().to_string();
  ASSERT_TRUE(machine_.set_node_online(best, true).ok());
}

// ---------------------------------------------------------------------------
// Fault-site catalog (fault::all_sites)
// ---------------------------------------------------------------------------

TEST(FaultSiteCatalogTest, EveryBuiltInSiteIsListedExactlyOnce) {
  const std::vector<const char*> constants = {
      fault::site::kMachineAllocTransient, fault::site::kMachineNodeOffline,
      fault::site::kMachineMigrateTransient, fault::site::kMachineEccBurst,
      fault::site::kMachineNodeDegraded, fault::site::kMachinePowerThrottle,
      fault::site::kMachineMigrateStall, fault::site::kRuntimeEpochOverrun,
      fault::site::kProbeFail,
      fault::site::kProbeNoise, fault::site::kHmatDropEntry,
      fault::site::kHmatFlipAccess, fault::site::kHmatTruncateLine,
      fault::site::kHmatDuplicateEntry, fault::site::kHmatGarbleValue};
  const std::vector<fault::SiteInfo>& sites = fault::all_sites();
  EXPECT_EQ(sites.size(), constants.size());
  std::set<std::string> names;
  for (const fault::SiteInfo& info : sites) {
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate site " << info.name;
    EXPECT_FALSE(std::string(info.consulted_by).empty()) << info.name;
    EXPECT_FALSE(std::string(info.effect).empty()) << info.name;
  }
  for (const char* constant : constants) {
    EXPECT_TRUE(names.count(constant)) << constant << " missing from catalog";
  }
}

TEST(FaultSiteCatalogTest, HeavyPresetArmsHealthTelemetrySites) {
  fault::FaultInjector heavy = fault::FaultInjector::preset("heavy", 9);
  fault::FaultInjector none = fault::FaultInjector::preset("none", 9);
  for (int i = 0; i < 2000; ++i) {
    (void)heavy.should_fail(fault::site::kMachineEccBurst);
    (void)heavy.should_fail(fault::site::kMachineNodeDegraded);
    (void)none.should_fail(fault::site::kMachineEccBurst);
  }
  EXPECT_GT(heavy.injected(fault::site::kMachineEccBurst), 0u);
  EXPECT_GT(heavy.injected(fault::site::kMachineNodeDegraded), 0u);
  EXPECT_EQ(none.total_injected(), 0u);
}

// ---------------------------------------------------------------------------
// Evacuator
// ---------------------------------------------------------------------------

class EvacuatorTest : public HealthTest {
 protected:
  EvacuatorTest()
      : engine_(allocator_, initiator_, {}),
        evacuator_(allocator_, engine_, initiator_) {}

  std::map<std::uint32_t, unsigned> moved_counts() const {
    std::map<std::uint32_t, unsigned> counts;
    for (const health::EvacDecision& decision : evacuator_.decisions()) {
      if (decision.verdict == health::EvacVerdict::kMoved) {
        ++counts[decision.buffer.index];
      }
    }
    return counts;
  }

  runtime::MigrationEngine engine_;
  health::Evacuator evacuator_;
};

TEST_F(EvacuatorTest, OfflineDrainMovesEverythingMostCriticalFirst) {
  const unsigned slow = nvdimm_node();
  auto chased = machine_.allocate(kGiB, slow, "evac.random", 4096);
  auto streamed = machine_.allocate(kGiB, slow, "evac.stream", 4096);
  auto untracked = machine_.allocate(kGiB, slow, "evac.untracked", 4096);
  ASSERT_TRUE(chased.ok() && streamed.ok() && untracked.ok());

  runtime::OnlineClassifier classifier(immediate_classifier());
  classifier.observe(make_epoch(0, {{chased->index, random_traffic(4e6)},
                                    {streamed->index,
                                     streaming_traffic(1e9)}}));
  ASSERT_EQ(classifier.committed(*chased), prof::Sensitivity::kLatency);
  ASSERT_EQ(classifier.committed(*streamed), prof::Sensitivity::kBandwidth);

  ASSERT_TRUE(machine_.set_node_online(slow, false).ok());
  const double paid =
      evacuator_.drain_epoch(0, slow, health::HealthState::kOffline, 4,
                             &classifier);
  EXPECT_GT(paid, 0.0);
  EXPECT_TRUE(evacuator_.drained(slow));
  EXPECT_EQ(evacuator_.stats().moved, 3u);
  for (sim::BufferId buffer : {*chased, *streamed, *untracked}) {
    EXPECT_NE(machine_.info(buffer).node, slow);
    EXPECT_TRUE(machine_.node_online(machine_.info(buffer).node));
  }
  // Criticality order: latency before bandwidth before untracked.
  ASSERT_EQ(evacuator_.decisions().size(), 3u);
  EXPECT_EQ(evacuator_.decisions()[0].buffer.index, chased->index);
  EXPECT_EQ(evacuator_.decisions()[1].buffer.index, streamed->index);
  EXPECT_EQ(evacuator_.decisions()[2].buffer.index, untracked->index);
  // Exactly once per buffer, and the repeat drain is a no-op.
  for (const auto& [buffer, count] : moved_counts()) {
    EXPECT_EQ(count, 1u) << "buffer " << buffer;
  }
  evacuator_.drain_epoch(1, slow, health::HealthState::kOffline, 4,
                         &classifier);
  EXPECT_EQ(evacuator_.stats().moved, 3u);
}

TEST_F(EvacuatorTest, QuarantinedDrainMovesHotKeepsColdAndGatesBreakeven) {
  const unsigned slow = nvdimm_node();
  auto hot = machine_.allocate(kGiB, slow, "evac.hot", 4096);
  auto barely = machine_.allocate(2 * kGiB, slow, "evac.barely", 4096);
  auto untracked = machine_.allocate(kGiB, slow, "evac.cold", 4096);
  ASSERT_TRUE(hot.ok() && barely.ok() && untracked.ok());

  runtime::OnlineClassifier classifier(immediate_classifier());
  // hot: enough traffic to amortize its copy within the horizon;
  // barely: tracked but nearly idle — a 2 GiB copy can never break even.
  classifier.observe(make_epoch(0, {{hot->index, random_traffic(5e7)},
                                    {barely->index, random_traffic(1e3)}}));

  evacuator_.drain_epoch(0, slow, health::HealthState::kQuarantined, 4,
                         &classifier);
  EXPECT_NE(machine_.info(*hot).node, slow) << evacuator_.render_log();
  EXPECT_EQ(machine_.info(*barely).node, slow);
  EXPECT_EQ(machine_.info(*untracked).node, slow);
  EXPECT_EQ(evacuator_.stats().moved, 1u);

  bool breakeven_logged = false, cold_logged = false;
  for (const health::EvacDecision& decision : evacuator_.decisions()) {
    if (decision.buffer.index == barely->index) {
      EXPECT_EQ(decision.verdict, health::EvacVerdict::kRejectedBreakeven);
      breakeven_logged = true;
    }
    if (decision.buffer.index == untracked->index) {
      EXPECT_EQ(decision.verdict, health::EvacVerdict::kSkippedCold);
      cold_logged = true;
    }
  }
  EXPECT_TRUE(breakeven_logged && cold_logged) << evacuator_.render_log();

  // Offline escalation: the gate lifts and the stragglers drain urgently.
  ASSERT_TRUE(machine_.set_node_online(slow, false).ok());
  evacuator_.drain_epoch(1, slow, health::HealthState::kOffline, 4,
                         &classifier);
  EXPECT_TRUE(evacuator_.drained(slow)) << evacuator_.render_log();
}

TEST_F(EvacuatorTest, DrainSharesEngineBudgetAndRetriesNextEpoch) {
  runtime::MigrationEngine tight(allocator_, initiator_,
                                 {.epoch_budget_bytes = 2 * kGiB});
  health::Evacuator evacuator(allocator_, tight, initiator_);
  const unsigned slow = nvdimm_node();
  auto first = machine_.allocate(2 * kGiB, slow, "evac.a", 4096);
  auto second = machine_.allocate(2 * kGiB, slow, "evac.b", 4096);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(machine_.set_node_online(slow, false).ok());

  evacuator.drain_epoch(0, slow, health::HealthState::kOffline, 4);
  EXPECT_EQ(evacuator.stats().moved, 1u);
  EXPECT_EQ(evacuator.stats().deferred, 1u);
  EXPECT_EQ(tight.budget_remaining(0), 0u);

  // Level-triggered: the deferred buffer drains when the next epoch's
  // budget opens.
  evacuator.drain_epoch(1, slow, health::HealthState::kOffline, 4);
  EXPECT_EQ(evacuator.stats().moved, 2u);
  EXPECT_TRUE(evacuator.drained(slow));
}

TEST_F(EvacuatorTest, NoHealthyTargetIsReportedNotForced) {
  auto buffer = machine_.allocate(kGiB, 0, "evac.stranded", 4096);
  ASSERT_TRUE(buffer.ok());
  for (unsigned node = 0; node < node_count(); ++node) {
    ASSERT_TRUE(machine_.set_node_online(node, false).ok());
  }
  evacuator_.drain_epoch(0, 0, health::HealthState::kOffline, 4);
  EXPECT_EQ(evacuator_.stats().moved, 0u);
  EXPECT_EQ(machine_.info(*buffer).node, 0u);
  ASSERT_FALSE(evacuator_.decisions().empty());
  EXPECT_EQ(evacuator_.decisions().back().verdict,
            health::EvacVerdict::kRejectedNoTarget);
}

TEST_F(EvacuatorTest, HealthyAndSuspectNodesAreNeverDrained) {
  auto buffer = machine_.allocate(kGiB, 0, "evac.stay", 4096);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(evacuator_.drain_epoch(0, 0, health::HealthState::kHealthy, 4),
            0.0);
  EXPECT_EQ(evacuator_.drain_epoch(0, 0, health::HealthState::kSuspect, 4),
            0.0);
  EXPECT_TRUE(evacuator_.decisions().empty());
  EXPECT_EQ(machine_.info(*buffer).node, 0u);
}

// ---------------------------------------------------------------------------
// attach_health: policy-integrated poll + drain, end to end
// ---------------------------------------------------------------------------

TEST_F(HealthTest, AttachHealthEvacuatesMidRunNodeLoss) {
  auto buffer = machine_.allocate(kGiB, 0, "hot.app", 1u << 16);
  ASSERT_TRUE(buffer.ok());
  sim::Array<double> array(machine_, *buffer);
  sim::ExecutionContext exec(machine_, initiator_, 4);

  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 1.0;
  options.classifier.hysteresis_epochs = 1;
  runtime::RuntimePolicy policy(allocator_, initiator_, options);
  health::HealthMonitor monitor(machine_, registry_);
  health::Evacuator evacuator(allocator_, policy.mutable_engine(), initiator_);
  health::attach_health(policy, monitor, evacuator);
  unsigned refreshes = 0;
  policy.attach(exec, [&] {
    array.refresh_model();
    ++refreshes;
  });

  for (unsigned phase = 0; phase < 12; ++phase) {
    if (phase == 6) {
      ASSERT_TRUE(machine_.set_node_online(0, false).ok());
    }
    exec.run_phase("hot", 4,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     array.record_bulk_random_reads(ctx, 4e6);
                   });
  }

  // The hook noticed the loss, drained the buffer to a live node, and the
  // post-migration callback refreshed the application's view.
  EXPECT_EQ(monitor.state(0), health::HealthState::kOffline);
  EXPECT_NE(machine_.info(*buffer).node, 0u) << evacuator.render_log();
  EXPECT_TRUE(machine_.node_online(machine_.info(*buffer).node));
  EXPECT_TRUE(evacuator.drained(0));
  EXPECT_EQ(evacuator.stats().moved, 1u);
  EXPECT_GE(refreshes, 1u);
  EXPECT_GE(allocator_.stats().migrations, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan lane): allocators race quarantine + evacuation
// ---------------------------------------------------------------------------

TEST(HealthConcurrency, AllocatorsRaceQuarantineTransitionsAndEvacuation) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology())).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);
  allocator.set_trace_enabled(false);
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();

  health::HealthMonitor monitor(machine, registry);
  runtime::MigrationEngine engine(allocator, initiator, {});
  health::Evacuator evacuator(allocator, engine, initiator);

  constexpr unsigned kWorkers = 6;
  constexpr unsigned kIterations = 200;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> backpressures{0};
  std::vector<std::thread> threads;

  // Workers allocate/free and read rankings while the control thread flips
  // node 1's health and drains it. Invariants checked per reader: the
  // generation is monotone, and no snapshot contains a node the reader can
  // prove was excluded before the snapshot's generation (TSan checks the
  // rest: no torn rankings, no data races on the verdict array).
  for (unsigned tid = 0; tid < kWorkers; ++tid) {
    threads.emplace_back([&, tid] {
      const auto query = attr::Initiator::from_cpuset(initiator);
      std::uint64_t last_generation = 0;
      for (unsigned i = 0; i < kIterations; ++i) {
        const std::uint64_t generation = registry.generation();
        EXPECT_GE(generation, last_generation);
        last_generation = generation;

        auto snapshot = registry.targets_ranked_cached(attr::kCapacity, query);
        EXPECT_FALSE(snapshot->targets.empty());

        alloc::AllocRequest request;
        request.bytes = (1 + i % 8) * kMiB;
        request.attribute =
            i % 2 == 0 ? attr::kCapacity : attr::kBandwidth;
        request.initiator = initiator;
        request.label = "w" + std::to_string(tid);
        request.admission_control = (i % 3 == 0);
        request.attribute_rescue = true;
        auto allocation = allocator.mem_alloc(request);
        if (allocation.ok()) {
          EXPECT_TRUE(machine.node_online(allocation->node));
          EXPECT_TRUE(allocator.mem_free(allocation->buffer).ok());
        } else if (allocation.error().code ==
                   support::Errc::kBackpressure) {
          backpressures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread control([&] {
    std::uint64_t epoch = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(machine.set_node_degraded(1, true).ok());
      monitor.poll();
      monitor.poll();  // degraded for two polls -> quarantined
      if (epoch % 4 == 3) (void)machine.set_node_online(1, false);
      monitor.poll();
      for (unsigned node : monitor.nodes_needing_evacuation()) {
        evacuator.drain_epoch(epoch, node, monitor.state(node), 4);
      }
      (void)machine.set_node_online(1, true);
      ASSERT_TRUE(machine.set_node_degraded(1, false).ok());
      for (unsigned i = 0; i <= monitor.options().clean_polls_to_recover * 2;
           ++i) {
        monitor.poll();
      }
      ++epoch;
    }
  });

  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_release);
  control.join();

  // The transition log narrates a sane sequence: every edge is one the
  // state machine allows, and the ranking generation only ever grew.
  for (const health::HealthTransition& t : monitor.transitions()) {
    EXPECT_NE(t.from, t.to);
  }
  // No worker buffer was migrated: workers free their own allocations and
  // the evacuator only ever drains live buffers off node 1, each at most
  // once per stay (no double-migration of the same live buffer).
  std::map<std::uint32_t, unsigned> moved;
  for (const health::EvacDecision& decision : evacuator.decisions()) {
    if (decision.verdict == health::EvacVerdict::kMoved) {
      ++moved[decision.buffer.index];
    }
  }
  for (const auto& [buffer, count] : moved) {
    EXPECT_LE(count, 1u) << "buffer " << buffer << " double-migrated";
  }
}

}  // namespace
}  // namespace hetmem
