#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::topo {
namespace {

using support::Bitmap;

TEST(LocalNumaNodes, ExactMatchesOnlyIdenticalLocality) {
  Topology topology = xeon_clx_snc_1lm();
  const Bitmap snc0 = topology.numa_node(0)->cpuset();  // first SNC
  auto exact = topology.local_numa_nodes(snc0, LocalityFlags::kExact);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0]->logical_index(), 0u);
}

TEST(LocalNumaNodes, LargerLocalityIncludesPackageNodes) {
  Topology topology = xeon_clx_snc_1lm();
  const Bitmap snc0 = topology.numa_node(0)->cpuset();
  auto nodes = topology.local_numa_nodes(snc0, LocalityFlags::kLargerLocality);
  // SNC DRAM (exact) + package NVDIMM (larger locality).
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0]->logical_index(), 0u);
  EXPECT_EQ(nodes[1]->logical_index(), 2u);
}

TEST(LocalNumaNodes, SmallerLocalityIncludesContainedNodes) {
  Topology topology = xeon_clx_snc_1lm();
  // Initiator = whole package 0: its SNC DRAMs have smaller localities.
  const Bitmap package0 = topology.numa_node(2)->cpuset();
  auto nodes = topology.local_numa_nodes(package0, LocalityFlags::kSmallerLocality);
  ASSERT_EQ(nodes.size(), 3u);  // DRAM L#0, L#1 and the NVDIMM itself (exact)
}

TEST(LocalNumaNodes, IntersectingIsTheUnionOfBoth) {
  Topology topology = xeon_clx_snc_1lm();
  const Bitmap snc0 = topology.numa_node(0)->cpuset();
  auto nodes = topology.local_numa_nodes(snc0, LocalityFlags::kIntersecting);
  EXPECT_EQ(nodes.size(), 2u);
}

TEST(LocalNumaNodes, SingleCoreInitiatorSeesItsClusterNodes) {
  Topology topology = knl_snc4_flat();
  const Object* pu0 = topology.pus().front();
  auto nodes = topology.local_numa_nodes(pu0->cpuset());
  ASSERT_EQ(nodes.size(), 2u);  // cluster DRAM + cluster HBM
  EXPECT_EQ(nodes[0]->memory_kind(), MemoryKind::kDRAM);
  EXPECT_EQ(nodes[1]->memory_kind(), MemoryKind::kHBM);
}

TEST(LocalNumaNodes, EmptyInitiatorMatchesNothing) {
  Topology topology = knl_snc4_flat();
  EXPECT_TRUE(topology.local_numa_nodes(Bitmap{}).empty());
}

TEST(LocalNumaNodes, AllFlagIgnoresLocality) {
  Topology topology = knl_snc4_flat();
  auto nodes = topology.local_numa_nodes(Bitmap{}, LocalityFlags::kAll);
  EXPECT_EQ(nodes.size(), topology.numa_nodes().size());
}

TEST(LocalNumaNodes, CrossClusterInitiatorMatchesNothingExact) {
  Topology topology = knl_snc4_flat();
  // Bits straddling two clusters: no node has that exact locality and none
  // contains it... but the union of both clusters intersects each.
  Bitmap straddle;
  straddle.set(0);    // cluster 0
  straddle.set(100);  // cluster 1 (64 PUs per cluster)
  EXPECT_TRUE(topology.local_numa_nodes(straddle, LocalityFlags::kExact).empty());
  auto intersecting =
      topology.local_numa_nodes(straddle, LocalityFlags::kIntersecting);
  EXPECT_EQ(intersecting.size(), 4u);  // both clusters' DRAM + HBM
}

TEST(CoveringObject, FindsDeepestEnclosingObject) {
  Topology topology = xeon_clx_snc_1lm();
  const Object* pu0 = topology.pus().front();
  const Object* covering = topology.covering_object(pu0->cpuset());
  ASSERT_NE(covering, nullptr);
  EXPECT_EQ(covering->type(), ObjType::kPU);

  const Bitmap snc0 = topology.numa_node(0)->cpuset();
  covering = topology.covering_object(snc0);
  ASSERT_NE(covering, nullptr);
  EXPECT_EQ(covering->type(), ObjType::kGroup);
}

TEST(CoveringObject, StraddlingCpusetFindsCommonAncestor) {
  Topology topology = xeon_clx_snc_1lm();
  const Bitmap both_sncs =
      topology.numa_node(0)->cpuset() | topology.numa_node(1)->cpuset();
  const Object* covering = topology.covering_object(both_sncs);
  ASSERT_NE(covering, nullptr);
  EXPECT_EQ(covering->type(), ObjType::kPackage);
}

TEST(CoveringObject, EmptyOrForeignCpusetReturnsNull) {
  Topology topology = xeon_clx_snc_1lm();
  EXPECT_EQ(topology.covering_object(Bitmap{}), nullptr);
  Bitmap foreign;
  foreign.set(10000);
  EXPECT_EQ(topology.covering_object(foreign), nullptr);
}

TEST(ObjectsOfType, CountsMatchPresets) {
  Topology topology = xeon_clx_snc_1lm();
  EXPECT_EQ(topology.objects_of_type(ObjType::kPackage).size(), 2u);
  EXPECT_EQ(topology.objects_of_type(ObjType::kGroup).size(), 4u);
  EXPECT_EQ(topology.objects_of_type(ObjType::kCore).size(), 40u);
  EXPECT_EQ(topology.objects_of_type(ObjType::kPU).size(), 80u);
  EXPECT_EQ(topology.objects_of_type(ObjType::kNUMANode).size(), 6u);
}

TEST(NumaNodeLookup, ByLogicalAndOsIndex) {
  Topology topology = xeon_clx_snc_1lm();
  EXPECT_EQ(topology.numa_node(2)->memory_kind(), MemoryKind::kNVDIMM);
  EXPECT_EQ(topology.numa_node(99), nullptr);
  const Object* by_os = topology.numa_node_by_os_index(5);
  ASSERT_NE(by_os, nullptr);
  EXPECT_EQ(by_os->memory_kind(), MemoryKind::kNVDIMM);
  EXPECT_EQ(topology.numa_node_by_os_index(99), nullptr);
}

TEST(TotalMemory, SumsAllNodes) {
  Topology topology = xeon_clx_snc_1lm();
  // 4 x 96 GiB DRAM + 2 x 768 GiB NVDIMM.
  EXPECT_EQ(topology.total_memory_bytes(),
            (4ull * 96 + 2ull * 768) * support::kGiB);
}

}  // namespace
}  // namespace hetmem::topo
