// Online memory-management runtime: epoch sampling, live reclassification,
// budgeted migration, and the RuntimePolicy façade — including the chaos
// contract (docs/RUNTIME.md): runtime-managed workloads complete with
// validated results under fault injection, and the decision log replays
// byte-identically for a fixed seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/prof/profiler.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/trace/trace.hpp"

namespace hetmem {
namespace {

using support::kGiB;
using support::kMiB;

support::Bitmap first_initiator(const topo::Topology& topology) {
  for (const topo::Object* node : topology.numa_nodes()) {
    if (!node->cpuset().empty()) return node->cpuset();
  }
  return {};
}

/// Synthetic traffic shapes for classifier/engine tests.
sim::BufferTraffic streaming_traffic(double bytes) {
  sim::BufferTraffic traffic;
  traffic.reads = bytes / 64.0;
  traffic.llc_misses = bytes / 64.0;
  traffic.memory_bytes = bytes;
  return traffic;
}

sim::BufferTraffic random_traffic(double misses) {
  sim::BufferTraffic traffic;
  traffic.reads = misses;
  traffic.llc_misses = misses;
  traffic.random_accesses = misses;
  traffic.random_misses = misses;
  traffic.memory_bytes = misses * 64.0;
  return traffic;
}

runtime::ClassifierOptions classifier_options(double alpha,
                                              unsigned hysteresis = 3) {
  runtime::ClassifierOptions options;
  options.ema_alpha = alpha;
  options.hysteresis_epochs = hysteresis;
  return options;
}

/// Hand-built epoch; samples must be given in ascending buffer index.
runtime::Epoch make_epoch(
    std::uint64_t index,
    std::vector<std::pair<std::uint32_t, sim::BufferTraffic>> samples) {
  runtime::Epoch epoch;
  epoch.index = index;
  epoch.duration_ns = 1e9;
  for (auto& [buffer, traffic] : samples) {
    epoch.total_memory_bytes += traffic.memory_bytes;
    epoch.samples.push_back(
        runtime::EpochSample{sim::BufferId{buffer}, traffic});
  }
  return epoch;
}

// ---------------------------------------------------------------------------
// EpochSampler
// ---------------------------------------------------------------------------

class EpochSamplerTest : public ::testing::Test {
 protected:
  EpochSamplerTest() : machine_(topo::xeon_clx_1lm()) {}
  sim::SimMachine machine_;
};

TEST_F(EpochSamplerTest, EmitsDeltasEveryNPhases) {
  auto buffer = machine_.allocate(256 * kMiB, 0, "sampled", 4096);
  ASSERT_TRUE(buffer.ok());
  sim::Array<double> array(machine_, *buffer);
  sim::ExecutionContext exec(machine_, machine_.topology().numa_node(0)->cpuset(),
                             4);

  runtime::EpochSampler sampler({.phases_per_epoch = 2});
  std::optional<runtime::Epoch> epoch;
  for (unsigned phase = 0; phase < 4; ++phase) {
    exec.run_phase("p", 4,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     array.record_bulk_read(ctx, 64.0 * kMiB);
                   });
    auto maybe = sampler.on_phase(exec);
    if (phase % 2 == 0) {
      EXPECT_FALSE(maybe.has_value()) << "phase " << phase;
    } else {
      ASSERT_TRUE(maybe.has_value()) << "phase " << phase;
      epoch = maybe;
      // Each epoch covers exactly two identical phases: the second epoch's
      // delta must match the first, not the cumulative counters.
      ASSERT_EQ(epoch->samples.size(), 1u);
      EXPECT_EQ(epoch->samples[0].buffer.index, buffer->index);
      const double per_epoch = epoch->total_memory_bytes;
      const auto merged = exec.merged_buffer_traffic();
      EXPECT_NEAR(per_epoch * (phase == 1 ? 1.0 : 2.0),
                  merged[buffer->index].memory_bytes,
                  merged[buffer->index].memory_bytes * 1e-9);
    }
  }
  EXPECT_EQ(sampler.epochs_emitted(), 2u);
}

TEST_F(EpochSamplerTest, SubsamplingIsDeterministicAndClose) {
  auto buffer = machine_.allocate(kGiB, 0, "sampled", 4096);
  ASSERT_TRUE(buffer.ok());
  sim::Array<double> array(machine_, *buffer);
  sim::ExecutionContext exec(machine_, machine_.topology().numa_node(0)->cpuset(),
                             4);

  runtime::EpochSampler exact({.sample_period = 1.0});
  runtime::EpochSampler coarse_a({.sample_period = 100.0, .seed = 99});
  runtime::EpochSampler coarse_b({.sample_period = 100.0, .seed = 99});

  exec.run_phase("p", 4,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   if (begin >= end) return;
                   array.record_bulk_read(ctx, 256.0 * kMiB);
                   array.record_bulk_random_reads(ctx, 1e6);
                 });

  auto exact_epoch = exact.on_phase(exec);
  auto epoch_a = coarse_a.on_phase(exec);
  auto epoch_b = coarse_b.on_phase(exec);
  ASSERT_TRUE(exact_epoch.has_value());
  ASSERT_TRUE(epoch_a.has_value());
  ASSERT_TRUE(epoch_b.has_value());

  // Same seed, same inputs -> bit-identical estimates (decision replay).
  ASSERT_EQ(epoch_a->samples.size(), 1u);
  ASSERT_EQ(epoch_b->samples.size(), 1u);
  const sim::BufferTraffic& a = epoch_a->samples[0].traffic;
  const sim::BufferTraffic& b = epoch_b->samples[0].traffic;
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.random_misses, b.random_misses);

  // 1/100 subsampling stays within a few percent on large counters.
  const sim::BufferTraffic& full = exact_epoch->samples[0].traffic;
  EXPECT_NEAR(a.memory_bytes, full.memory_bytes, full.memory_bytes * 0.05);
  EXPECT_NEAR(a.random_misses, full.random_misses,
              full.random_misses * 0.05 + 100.0);
  // Ratio invariant the classifier divides by survives quantization.
  EXPECT_LE(a.random_misses, a.llc_misses);
}

// ---------------------------------------------------------------------------
// OnlineClassifier
// ---------------------------------------------------------------------------

TEST(OnlineClassifierTest, FirstSightCommitsImmediately) {
  runtime::OnlineClassifier classifier(classifier_options(1.0, 1));
  auto commits =
      classifier.observe(make_epoch(0, {{0, random_traffic(1e6)}}));
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].current, prof::Sensitivity::kLatency);
  EXPECT_EQ(classifier.committed(sim::BufferId{0}),
            prof::Sensitivity::kLatency);
}

TEST(OnlineClassifierTest, HysteresisDelaysCommitForKEpochs) {
  runtime::OnlineClassifier classifier(classifier_options(1.0, 3));
  classifier.observe(make_epoch(0, {{0, streaming_traffic(1e9)}}));
  ASSERT_EQ(classifier.committed(sim::BufferId{0}),
            prof::Sensitivity::kBandwidth);

  // Behavior flips to pointer chasing: commit only on the 3rd consecutive
  // disagreeing epoch.
  EXPECT_TRUE(classifier.observe(make_epoch(1, {{0, random_traffic(1e7)}}))
                  .empty());
  EXPECT_TRUE(classifier.observe(make_epoch(2, {{0, random_traffic(1e7)}}))
                  .empty());
  auto commits =
      classifier.observe(make_epoch(3, {{0, random_traffic(1e7)}}));
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].previous, prof::Sensitivity::kBandwidth);
  EXPECT_EQ(commits[0].current, prof::Sensitivity::kLatency);
}

TEST(OnlineClassifierTest, AlternatingBehaviorNeverCommits) {
  runtime::OnlineClassifier classifier(classifier_options(1.0, 2));
  classifier.observe(make_epoch(0, {{0, streaming_traffic(1e9)}}));

  // Ping-pong workload: the disagreement streak resets every time the
  // instantaneous verdict returns to the committed one, so the buffer never
  // reclassifies (and the engine never migrates it back and forth).
  for (std::uint64_t epoch = 1; epoch <= 8; ++epoch) {
    const sim::BufferTraffic traffic =
        epoch % 2 == 1 ? random_traffic(1e7) : streaming_traffic(1e9);
    EXPECT_TRUE(classifier.observe(make_epoch(epoch, {{0, traffic}})).empty())
        << "epoch " << epoch;
  }
  EXPECT_EQ(classifier.committed(sim::BufferId{0}),
            prof::Sensitivity::kBandwidth);
}

TEST(OnlineClassifierTest, IdleBuffersDecayToInsensitive) {
  runtime::OnlineClassifier classifier(classifier_options(0.5, 1));
  classifier.observe(make_epoch(0, {{0, streaming_traffic(1e9)},
                                    {1, streaming_traffic(1e9)}}));
  ASSERT_EQ(classifier.committed(sim::BufferId{0}),
            prof::Sensitivity::kBandwidth);

  // Buffer 0 goes idle while buffer 1 stays hot: its EMA share decays below
  // the insensitive threshold and the verdict follows.
  bool reclassified = false;
  for (std::uint64_t epoch = 1; epoch <= 16 && !reclassified; ++epoch) {
    for (const runtime::Reclassification& commit :
         classifier.observe(make_epoch(epoch, {{1, streaming_traffic(1e9)}}))) {
      if (commit.buffer.index == 0) {
        EXPECT_EQ(commit.current, prof::Sensitivity::kInsensitive);
        reclassified = true;
      }
    }
  }
  EXPECT_TRUE(reclassified);
}

// ---------------------------------------------------------------------------
// Hysteresis under synthetic phase shifts (trace::synthesize_*)
// ---------------------------------------------------------------------------

/// Runs a synthetic trace's raw epochs through a classifier and returns
/// (epoch, reclassification) pairs for buffer 0.
std::vector<std::pair<std::uint64_t, runtime::Reclassification>>
observe_trace(runtime::OnlineClassifier& classifier,
              const trace::Trace& synthetic) {
  std::vector<std::pair<std::uint64_t, runtime::Reclassification>> commits;
  for (const runtime::Epoch& epoch : synthetic.epochs) {
    for (const runtime::Reclassification& commit :
         classifier.observe(epoch)) {
      commits.emplace_back(epoch.index, commit);
    }
  }
  return commits;
}

TEST(HysteresisPhaseShiftTest, SquareWaveWithinHysteresisWindowNeverOscillates) {
  // Behavior flips faster than the K-epoch hysteresis window can confirm:
  // after the initial commit the classifier must hold its verdict — the
  // disagreement streak resets before reaching K every time.
  trace::SynthOptions options;
  options.epochs = 24;
  for (unsigned half_period : {1u, 2u}) {
    runtime::OnlineClassifier classifier(classifier_options(1.0, 3));
    const trace::Trace synthetic =
        trace::synthesize_square(sim::BufferId{0}, half_period, options);
    const auto commits = observe_trace(classifier, synthetic);
    ASSERT_EQ(commits.size(), 1u) << "half_period " << half_period;
    EXPECT_EQ(commits[0].first, 0u);
    EXPECT_EQ(classifier.committed(sim::BufferId{0}),
              prof::Sensitivity::kBandwidth)
        << "half_period " << half_period;
  }
}

TEST(HysteresisPhaseShiftTest, SustainedSquareWaveCommitsWithinKPlusOne) {
  // Flips slower than the window (half period 8 >> K=3) must all commit,
  // each within K+1 epochs of the flip — even with EMA smoothing lagging
  // the instantaneous counters.
  constexpr unsigned kHysteresis = 3;
  trace::SynthOptions options;
  options.epochs = 32;
  runtime::OnlineClassifier classifier(
      classifier_options(0.85, kHysteresis));
  const trace::Trace synthetic =
      trace::synthesize_square(sim::BufferId{0}, 8, options);
  const auto commits = observe_trace(classifier, synthetic);

  // Initial commit at epoch 0, then one per flip at epochs 8, 16, 24.
  ASSERT_EQ(commits.size(), 4u);
  EXPECT_EQ(commits[0].first, 0u);
  EXPECT_EQ(commits[0].second.current, prof::Sensitivity::kBandwidth);
  const std::uint64_t flips[] = {8, 16, 24};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(commits[i + 1].first, flips[i]) << "flip " << flips[i];
    EXPECT_LE(commits[i + 1].first, flips[i] + kHysteresis + 1)
        << "flip " << flips[i];
    EXPECT_EQ(commits[i + 1].second.current,
              i % 2 == 0 ? prof::Sensitivity::kLatency
                         : prof::Sensitivity::kBandwidth);
  }
}

TEST(HysteresisPhaseShiftTest, RampReclassifiesOnceWithinKPlusOneOfCrossing) {
  // Gradual drift from streaming to pointer chasing: exactly one
  // reclassification, within K+1 epochs of the first epoch whose
  // random-miss ratio crosses the shared 0.5 threshold — no flapping on
  // the way up.
  constexpr unsigned kHysteresis = 3;
  trace::SynthOptions options;
  options.epochs = 24;
  const trace::Trace synthetic =
      trace::synthesize_ramp(sim::BufferId{0}, 6, 8, options);

  std::uint64_t crossing = 0;
  for (const runtime::Epoch& epoch : synthetic.epochs) {
    const sim::BufferTraffic& traffic = epoch.samples[0].traffic;
    if (traffic.random_misses / traffic.llc_misses >= 0.5) {
      crossing = epoch.index;
      break;
    }
  }
  ASSERT_GT(crossing, 6u);  // the ramp, not the flat lead-in, crosses

  runtime::OnlineClassifier classifier(
      classifier_options(1.0, kHysteresis));
  const auto commits = observe_trace(classifier, synthetic);
  ASSERT_EQ(commits.size(), 2u);
  EXPECT_EQ(commits[0].second.current, prof::Sensitivity::kBandwidth);
  EXPECT_EQ(commits[1].second.previous, prof::Sensitivity::kBandwidth);
  EXPECT_EQ(commits[1].second.current, prof::Sensitivity::kLatency);
  EXPECT_GE(commits[1].first, crossing);
  EXPECT_LE(commits[1].first, crossing + kHysteresis + 1);
}

// ---------------------------------------------------------------------------
// Shared thresholds: offline prof and online runtime must agree
// ---------------------------------------------------------------------------

TEST(SharedThresholds, OfflineAndOnlineClassifyIdenticalTrafficIdentically) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();
  auto streamed = machine.allocate(2 * kGiB, 0, "hot.stream", 4096);
  auto chased = machine.allocate(kGiB, 0, "hot.random", 4096);
  auto cold = machine.allocate(kGiB, 2, "cold", 4096);
  ASSERT_TRUE(streamed.ok() && chased.ok() && cold.ok());
  sim::Array<double> stream_array(machine, *streamed);
  sim::Array<double> chase_array(machine, *chased);
  sim::Array<double> cold_array(machine, *cold);

  sim::ExecutionContext exec(machine, initiator, 4);
  exec.run_phase("mixed", 4,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   if (begin >= end) return;
                   stream_array.record_bulk_read(ctx, 512.0 * kMiB);
                   chase_array.record_bulk_random_reads(ctx, 4e6);
                   cold_array.record_bulk_read(ctx, 64.0 * support::kKiB);
                 });

  // Offline: the profiler's per-buffer verdicts over the finished run.
  std::vector<prof::Sensitivity> offline(3, prof::Sensitivity::kInsensitive);
  for (const prof::BufferProfile& profile : prof::profile_buffers(exec)) {
    ASSERT_LT(profile.buffer.index, 3u);
    offline[profile.buffer.index] = profile.sensitivity;
  }
  EXPECT_EQ(offline[streamed->index], prof::Sensitivity::kBandwidth);
  EXPECT_EQ(offline[chased->index], prof::Sensitivity::kLatency);
  EXPECT_EQ(offline[cold->index], prof::Sensitivity::kInsensitive);

  // Online: one exact epoch over the same window, no smoothing.
  runtime::EpochSampler sampler;
  runtime::OnlineClassifier classifier(classifier_options(1.0, 1));
  auto epoch = sampler.on_phase(exec);
  ASSERT_TRUE(epoch.has_value());
  classifier.observe(*epoch);
  for (std::uint32_t index = 0; index < 3; ++index) {
    EXPECT_EQ(classifier.committed(sim::BufferId{index}), offline[index])
        << "buffer " << index
        << ": offline and online classification diverged";
  }
}

// ---------------------------------------------------------------------------
// MigrationEngine
// ---------------------------------------------------------------------------

class MigrationEngineTest : public ::testing::Test {
 protected:
  MigrationEngineTest()
      : machine_(topo::xeon_clx_1lm()),
        registry_(machine_.topology()),
        allocator_(machine_, registry_),
        initiator_(machine_.topology().numa_node(0)->cpuset()) {
    EXPECT_TRUE(
        hmat::load_into(registry_, hmat::generate(machine_.topology())).ok());
  }

  unsigned nvdimm_node() const {
    for (const topo::Object* node : machine_.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        return node->logical_index();
      }
    }
    return 0;
  }

  sim::SimMachine machine_;
  attr::MemAttrRegistry registry_;
  alloc::HeterogeneousAllocator allocator_;
  support::Bitmap initiator_;
};

TEST_F(MigrationEngineTest, BudgetDefersAndLevelTriggerRetries) {
  const unsigned slow = nvdimm_node();
  auto first = machine_.allocate(2 * kGiB, slow, "hot.a", 4096);
  auto second = machine_.allocate(2 * kGiB, slow, "hot.b", 4096);
  ASSERT_TRUE(first.ok() && second.ok());

  runtime::OnlineClassifier classifier(classifier_options(1.0, 1));
  classifier.observe(make_epoch(0, {{first->index, random_traffic(5e7)},
                                    {second->index, random_traffic(5e7)}}));

  runtime::MigrationEngine engine(allocator_, initiator_,
                                  {.epoch_budget_bytes = 2 * kGiB});
  engine.run_epoch(0, classifier, 4);

  // Both buffers want DRAM; the budget only covers one per epoch.
  EXPECT_EQ(engine.stats().accepted, 1u);
  EXPECT_EQ(machine_.info(*first).node, 0u);
  EXPECT_EQ(machine_.info(*second).node, slow);
  bool budget_rejection = false;
  for (const runtime::Decision& decision : engine.decisions()) {
    if (decision.verdict == runtime::Verdict::kRejectedBudget) {
      budget_rejection = true;
    }
  }
  EXPECT_TRUE(budget_rejection);

  // Level-triggered: the deferred move is retried (and now fits).
  engine.run_epoch(1, classifier, 4);
  EXPECT_EQ(engine.stats().accepted, 2u);
  EXPECT_EQ(machine_.info(*second).node, 0u);
  EXPECT_LE(engine.max_epoch_migrated_bytes(), 2 * kGiB);
}

TEST_F(MigrationEngineTest, BreakevenGateRejectsColdMoves) {
  const unsigned slow = nvdimm_node();
  auto buffer = machine_.allocate(2 * kGiB, slow, "barely.warm", 4096);
  ASSERT_TRUE(buffer.ok());

  // Hot enough to classify latency-sensitive, far too cold to amortize a
  // 2 GiB migration within the horizon.
  runtime::OnlineClassifier classifier(classifier_options(1.0, 1));
  classifier.observe(make_epoch(0, {{buffer->index, random_traffic(1e5)}}));

  runtime::MigrationEngine engine(allocator_, initiator_, {});
  engine.run_epoch(0, classifier, 4);

  EXPECT_EQ(engine.stats().accepted, 0u);
  EXPECT_EQ(machine_.info(*buffer).node, slow);
  ASSERT_FALSE(engine.decisions().empty());
  EXPECT_EQ(engine.decisions().back().verdict,
            runtime::Verdict::kRejectedBreakeven);
}

TEST_F(MigrationEngineTest, EvictsColdBufferToMakeRoom) {
  const unsigned slow = nvdimm_node();
  const std::uint64_t dram_capacity =
      machine_.topology().numa_node(0)->capacity_bytes();
  // Fill DRAM so the hot buffer only fits by displacing the cold one.
  auto hog = machine_.allocate(dram_capacity - 3 * kGiB, 0, "hog", 4096);
  auto cold = machine_.allocate(2 * kGiB, 0, "cold", 4096);
  auto hot = machine_.allocate(2 * kGiB, slow, "hot", 4096);
  ASSERT_TRUE(hog.ok() && cold.ok() && hot.ok());

  sim::BufferTraffic trickle = streaming_traffic(1e6);  // < 1% share
  runtime::OnlineClassifier classifier(classifier_options(1.0, 1));
  classifier.observe(make_epoch(0, {{cold->index, trickle},
                                    {hot->index, random_traffic(1e8)}}));
  ASSERT_EQ(classifier.committed(*cold), prof::Sensitivity::kInsensitive);
  ASSERT_EQ(classifier.committed(*hot), prof::Sensitivity::kLatency);

  runtime::MigrationEngine engine(allocator_, initiator_, {});
  engine.run_epoch(0, classifier, 4);

  EXPECT_EQ(machine_.info(*hot).node, 0u);
  EXPECT_EQ(machine_.info(*cold).node, slow);
  EXPECT_EQ(machine_.info(*hog).node, 0u);  // untracked: never evicted
  EXPECT_EQ(engine.stats().accepted, 1u);
  EXPECT_EQ(engine.stats().evicted, 1u);

  // Telemetry: the eviction names the move it made room for.
  bool eviction_logged = false;
  for (const runtime::Decision& decision : engine.decisions()) {
    if (decision.verdict == runtime::Verdict::kEvicted) {
      EXPECT_EQ(decision.buffer.index, cold->index);
      EXPECT_EQ(decision.from_node, 0u);
      EXPECT_NE(decision.reason.find("hot"), std::string::npos);
      eviction_logged = true;
    }
  }
  EXPECT_TRUE(eviction_logged);
}

TEST_F(MigrationEngineTest, DisabledEvictionsRejectInstead) {
  const unsigned slow = nvdimm_node();
  const std::uint64_t dram_capacity =
      machine_.topology().numa_node(0)->capacity_bytes();
  auto hog = machine_.allocate(dram_capacity - 3 * kGiB, 0, "hog", 4096);
  auto cold = machine_.allocate(2 * kGiB, 0, "cold", 4096);
  auto hot = machine_.allocate(2 * kGiB, slow, "hot", 4096);
  ASSERT_TRUE(hog.ok() && cold.ok() && hot.ok());

  runtime::OnlineClassifier classifier(classifier_options(1.0, 1));
  classifier.observe(make_epoch(0, {{cold->index, streaming_traffic(1e6)},
                                    {hot->index, random_traffic(1e8)}}));

  runtime::MigrationEngine engine(allocator_, initiator_,
                                  {.allow_evictions = false});
  engine.run_epoch(0, classifier, 4);
  EXPECT_EQ(engine.stats().accepted, 0u);
  EXPECT_EQ(engine.stats().evicted, 0u);
  EXPECT_EQ(machine_.info(*hot).node, slow);
}

// ---------------------------------------------------------------------------
// RuntimePolicy end-to-end: phase-flipping workload
// ---------------------------------------------------------------------------

struct FlipOutcome {
  double clock_ns = 0.0;
  unsigned node_stream = 0;
  unsigned node_random = 0;
  std::uint64_t accepted = 0;
  std::string decision_log;
};

/// STREAM-then-BFS phase flip on a DRAM-squeezed Xeon: only one of the two
/// 2 GiB buffers fits in fast memory at a time, and which one matters flips
/// mid-run. `with_policy` false = static worst case (everything on NVDIMM).
FlipOutcome run_flip_workload(bool with_policy,
                              runtime::RuntimePolicyOptions options = {}) {
  FlipOutcome outcome;
  sim::SimMachine machine(topo::xeon_clx_1lm());
  attr::MemAttrRegistry registry(machine.topology());
  EXPECT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology())).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();

  unsigned slow = 0;
  for (const topo::Object* node : machine.topology().numa_nodes()) {
    if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
      slow = node->logical_index();
    }
  }
  const std::uint64_t dram_capacity =
      machine.topology().numa_node(0)->capacity_bytes();
  auto hog = machine.allocate(dram_capacity - 3 * kGiB, 0, "hog", 4096);
  auto streamed = machine.allocate(2 * kGiB, slow, "flip.stream", 1u << 16);
  auto chased = machine.allocate(2 * kGiB, slow, "flip.random", 1u << 16);
  EXPECT_TRUE(hog.ok() && streamed.ok() && chased.ok());

  sim::Array<double> stream_array(machine, *streamed);
  sim::Array<double> chase_array(machine, *chased);
  sim::ExecutionContext exec(machine, initiator, 4);

  runtime::RuntimePolicy policy(allocator, initiator, options);
  if (with_policy) {
    policy.attach(exec, [&] {
      stream_array.refresh_model();
      chase_array.refresh_model();
    });
  }

  for (unsigned phase = 0; phase < 12; ++phase) {
    exec.run_phase("part1.stream", 4,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     stream_array.record_bulk_read(ctx, 512.0 * kMiB);
                   });
  }
  for (unsigned phase = 0; phase < 12; ++phase) {
    exec.run_phase("part2.random", 4,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     chase_array.record_bulk_random_reads(ctx, 4e6);
                   });
  }

  outcome.clock_ns = exec.clock_ns();
  outcome.node_stream = machine.info(*streamed).node;
  outcome.node_random = machine.info(*chased).node;
  outcome.accepted = policy.engine().stats().accepted;
  outcome.decision_log = policy.render_decision_log();
  return outcome;
}

runtime::RuntimePolicyOptions flip_policy_options() {
  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 0.6;
  options.classifier.hysteresis_epochs = 2;
  // The part-2 promotion has to pay for an eviction plus a 2 GiB move; a
  // 12-epoch phase amortizes it, the default 10-epoch horizon would not.
  options.engine.expected_future_epochs = 50.0;
  return options;
}

TEST(RuntimePolicyTest, PhaseFlipMigratesAndBeatsStaticWorst) {
  const FlipOutcome worst = run_flip_workload(false);
  const FlipOutcome online = run_flip_workload(true, flip_policy_options());

  // The runtime promoted the stream buffer during part 1, then evicted it
  // and promoted the chase buffer when the hot set flipped.
  EXPECT_GE(online.accepted, 2u);
  EXPECT_EQ(online.node_random, 0u) << online.decision_log;
  EXPECT_NE(online.node_stream, 0u) << online.decision_log;
  EXPECT_LT(online.clock_ns, worst.clock_ns);
}

TEST(RuntimePolicyTest, DecisionLogReplaysByteIdentically) {
  const FlipOutcome first = run_flip_workload(true, flip_policy_options());
  const FlipOutcome second = run_flip_workload(true, flip_policy_options());
  EXPECT_FALSE(first.decision_log.empty());
  EXPECT_EQ(first.decision_log, second.decision_log);
}

TEST(RuntimePolicyTest, SubsampledDecisionsMatchExactOnes) {
  // The ablation claim: placement decisions survive 1/10 - 1/100 sampling.
  auto accepted_moves = [](const FlipOutcome& outcome) {
    std::vector<std::string> moves;
    std::istringstream lines(outcome.decision_log);
    for (std::string line; std::getline(lines, line);) {
      if (line.find(" accepted ") != std::string::npos ||
          line.find(" evicted ") != std::string::npos) {
        moves.push_back(line.substr(0, line.find(" benefit")));
      }
    }
    return moves;
  };
  runtime::RuntimePolicyOptions exact = flip_policy_options();
  runtime::RuntimePolicyOptions tenth = flip_policy_options();
  tenth.sampler.sample_period = 10.0;
  runtime::RuntimePolicyOptions hundredth = flip_policy_options();
  hundredth.sampler.sample_period = 100.0;

  const auto exact_moves = accepted_moves(run_flip_workload(true, exact));
  EXPECT_EQ(accepted_moves(run_flip_workload(true, tenth)), exact_moves);
  EXPECT_EQ(accepted_moves(run_flip_workload(true, hundredth)), exact_moves);
}

TEST(RuntimePolicyTest, StableWorkloadNeverMigratesEvenWithoutHysteresis) {
  // Attribute-placed STREAM is already on its best target; with hysteresis
  // disabled entirely (commit on first disagreement) the engine must still
  // stay quiet — the acceptance bar for "no ping-ponging at rest".
  sim::SimMachine machine(topo::xeon_clx_1lm());
  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology())).ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);
  const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();

  apps::StreamConfig config;
  config.declared_total_bytes = 3 * kGiB;
  config.backing_elements = 1u << 14;
  config.threads = 4;
  config.iterations = 6;
  apps::BufferPlacement placement;
  placement.attribute = attr::kBandwidth;
  auto runner =
      apps::StreamRunner::create(machine, &allocator, initiator, config,
                                 placement);
  ASSERT_TRUE(runner.ok());

  runtime::RuntimePolicyOptions options;
  options.sampler.phases_per_epoch = 2;  // triad + barrier
  options.classifier.hysteresis_epochs = 1;
  runtime::RuntimePolicy policy(allocator, initiator, options);
  policy.attach((*runner)->exec(), [&] { (*runner)->refresh_arrays(); });

  ASSERT_TRUE((*runner)->run_triad().ok());
  EXPECT_EQ(policy.engine().stats().accepted, 0u);
  EXPECT_EQ(policy.engine().stats().evicted, 0u);
  EXPECT_EQ(allocator.stats().migrations, 0u);
}

// ---------------------------------------------------------------------------
// Chaos composition (PR 1): runtime-managed workloads under fault injection
// ---------------------------------------------------------------------------

struct RuntimeChaosOutcome {
  double stream_checksum = 0.0;
  std::string stream_log;
  std::string bfs_log;
  std::uint64_t migrations = 0;
};

/// Full chaos pipeline with the online runtime attached: corrupted HMAT ->
/// lenient parse -> probe under faults -> resilient allocator -> STREAM and
/// Graph500 placed by *Capacity* (deliberately slow) with RuntimePolicy
/// promoting the hot buffers mid-run, migrations included in the fault
/// schedule.
void run_runtime_chaos(topo::Topology (*factory)(), std::uint64_t seed,
                       RuntimeChaosOutcome* out) {
  sim::SimMachine machine(factory());
  const support::Bitmap initiator = first_initiator(machine.topology());
  ASSERT_FALSE(initiator.empty());

  fault::FaultInjector injector = fault::FaultInjector::preset("heavy", seed);
  const std::string clean_text =
      hmat::serialize(hmat::generate(machine.topology()));
  const fault::HmatCorruption corruption =
      fault::corrupt_hmat_text(clean_text, injector);
  const hmat::ParseReport report = hmat::parse_lenient(corruption.text);

  attr::MemAttrRegistry registry(machine.topology());
  ASSERT_TRUE(hmat::load_into(registry, report.table).ok());

  machine.set_fault_injector(&injector);
  probe::ProbeOptions probe_options;
  probe_options.buffer_bytes = 64 * kMiB;
  probe_options.backing_bytes = 64 * 1024;
  probe_options.chase_accesses = 1000;
  probe_options.threads = 4;
  probe_options.include_remote = false;
  probe_options.faults = &injector;
  probe_options.repeats = 2;
  auto discovery = probe::discover(machine, probe_options);
  ASSERT_TRUE(discovery.ok());
  ASSERT_TRUE(probe::feed_registry(registry, *discovery).ok());

  alloc::HeterogeneousAllocator allocator(machine, registry);
  allocator.set_retry_policy({.max_transient_retries = 8});

  runtime::RuntimePolicyOptions options;
  options.sampler.phases_per_epoch = 2;
  options.classifier.ema_alpha = 1.0;
  options.classifier.hysteresis_epochs = 1;

  // STREAM parked on the Capacity target: the runtime has to earn its keep
  // by promoting the arrays while migrate() randomly throws transients.
  apps::StreamConfig stream_config;
  stream_config.declared_total_bytes = 96 * kMiB;
  stream_config.backing_elements = 1u << 14;
  stream_config.threads = 4;
  stream_config.iterations = 4;
  apps::BufferPlacement capacity_placement;
  capacity_placement.attribute = attr::kCapacity;
  capacity_placement.attribute_rescue = true;
  auto stream_runner = apps::StreamRunner::create(
      machine, &allocator, initiator, stream_config, capacity_placement);
  ASSERT_TRUE(stream_runner.ok()) << "seed " << seed;
  runtime::RuntimePolicy stream_policy(allocator, initiator, options);
  stream_policy.attach((*stream_runner)->exec(),
                       [&] { (*stream_runner)->refresh_arrays(); });
  auto stream_result = (*stream_runner)->run_triad();
  ASSERT_TRUE(stream_result.ok()) << "seed " << seed;
  out->stream_checksum = stream_result->checksum;
  out->stream_log = stream_policy.render_decision_log();

  apps::Graph500Config bfs_config;
  bfs_config.scale_declared = 16;
  bfs_config.scale_backing = 12;
  bfs_config.threads = 4;
  bfs_config.num_roots = 2;
  apps::Graph500Placement bfs_placement;
  bfs_placement.graph = capacity_placement;
  bfs_placement.parents = capacity_placement;
  bfs_placement.frontier = capacity_placement;
  auto bfs_runner = apps::Graph500Runner::create(machine, &allocator, initiator,
                                                 bfs_config, bfs_placement);
  ASSERT_TRUE(bfs_runner.ok()) << "seed " << seed;
  runtime::RuntimePolicy bfs_policy(allocator, initiator, options);
  bfs_policy.attach((*bfs_runner)->exec(),
                    [&] { (*bfs_runner)->refresh_arrays(); });
  auto bfs_result = (*bfs_runner)->run();
  ASSERT_TRUE(bfs_result.ok()) << "seed " << seed;
  EXPECT_TRUE((*bfs_runner)->validate_last_tree().ok()) << "seed " << seed;
  out->bfs_log = bfs_policy.render_decision_log();
  out->migrations = allocator.stats().migrations;
}

TEST(RuntimeChaosTest, WorkloadsCompleteAndDecisionLogReplays) {
  const struct {
    const char* name;
    topo::Topology (*factory)();
  } presets[] = {{"xeon_clx_1lm", topo::xeon_clx_1lm},
                 {"knl_snc4_flat", topo::knl_snc4_flat}};
  for (const auto& preset : presets) {
    SCOPED_TRACE(preset.name);
    for (std::uint64_t seed : {11ull, 12057ull}) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      RuntimeChaosOutcome first, second;
      run_runtime_chaos(preset.factory, seed, &first);
      if (::testing::Test::HasFatalFailure()) return;
      run_runtime_chaos(preset.factory, seed, &second);
      if (::testing::Test::HasFatalFailure()) return;

      // Identical seed -> byte-identical decision telemetry.
      EXPECT_EQ(first.stream_log, second.stream_log);
      EXPECT_EQ(first.bfs_log, second.bfs_log);
      EXPECT_EQ(first.stream_checksum, second.stream_checksum);

      // Migration never corrupts the arithmetic: checksum matches a clean
      // fault-free run of the same STREAM instance.
      sim::SimMachine clean(preset.factory());
      const support::Bitmap initiator = first_initiator(clean.topology());
      apps::StreamConfig stream_config;
      stream_config.declared_total_bytes = 96 * kMiB;
      stream_config.backing_elements = 1u << 14;
      stream_config.threads = 4;
      stream_config.iterations = 4;
      apps::BufferPlacement forced;
      forced.forced_node = 0;
      auto reference = apps::StreamRunner::create(clean, nullptr, initiator,
                                                  stream_config, forced);
      ASSERT_TRUE(reference.ok());
      auto reference_result = (*reference)->run_triad();
      ASSERT_TRUE(reference_result.ok());
      EXPECT_EQ(first.stream_checksum, reference_result->checksum);
    }
  }
}

}  // namespace
}  // namespace hetmem
