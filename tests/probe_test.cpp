#include "hetmem/probe/probe.hpp"

#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::probe {
namespace {

using support::Bitmap;
using support::gb_per_s;

ProbeOptions fast_options() {
  ProbeOptions options;
  options.backing_bytes = 64 * 1024;
  options.chase_accesses = 2000;
  return options;
}

class ProbeTest : public ::testing::Test {
 protected:
  ProbeTest() : machine_(topo::xeon_clx_1lm()) {}

  Bitmap package0() { return machine_.topology().numa_node(0)->cpuset(); }

  sim::SimMachine machine_;
};

TEST_F(ProbeTest, DramMeasurementMatchesCalibration) {
  auto m = measure(machine_, package0(), 0, fast_options());
  ASSERT_TRUE(m.ok()) << m.error().to_string();
  // Probe uses a 1 GiB buffer: nominal constants, no knee.
  EXPECT_NEAR(m->read_bandwidth_bps, gb_per_s(80.0), gb_per_s(2.0));
  EXPECT_NEAR(m->write_bandwidth_bps, gb_per_s(70.0), gb_per_s(2.0));
  EXPECT_NEAR(m->latency_ns, 285.0, 15.0);
  // Copy mixes reads and writes: between the two single-direction figures.
  EXPECT_LT(m->bandwidth_bps, m->read_bandwidth_bps);
}

TEST_F(ProbeTest, NvdimmSlowerThanDramOnEveryMetric) {
  auto dram = measure(machine_, package0(), 0, fast_options());
  auto nvdimm = measure(machine_, package0(), 2, fast_options());
  ASSERT_TRUE(dram.ok());
  ASSERT_TRUE(nvdimm.ok());
  EXPECT_GT(dram->bandwidth_bps, nvdimm->bandwidth_bps * 1.5);
  EXPECT_LT(dram->latency_ns, nvdimm->latency_ns / 2.0);
}

TEST_F(ProbeTest, RemoteMeasurementWorseThanLocal) {
  // Package 1's cores probing package 0's DRAM.
  const Bitmap remote_initiator = machine_.topology().numa_node(1)->cpuset();
  auto local = measure(machine_, package0(), 0, fast_options());
  auto remote = measure(machine_, remote_initiator, 0, fast_options());
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(remote.ok());
  EXPECT_GT(remote->latency_ns, local->latency_ns * 1.3);
  EXPECT_LT(remote->bandwidth_bps, local->bandwidth_bps);
}

TEST_F(ProbeTest, MeasurementLeavesNoAllocationBehind) {
  const std::uint64_t used_before = machine_.used_bytes(0);
  ASSERT_TRUE(measure(machine_, package0(), 0, fast_options()).ok());
  EXPECT_EQ(machine_.used_bytes(0), used_before);
}

TEST_F(ProbeTest, MeasureValidatesArguments) {
  EXPECT_FALSE(measure(machine_, package0(), 99, fast_options()).ok());
  EXPECT_FALSE(measure(machine_, Bitmap{}, 0, fast_options()).ok());
}

TEST_F(ProbeTest, DiscoverCoversLocalPairsAndFeedsRegistry) {
  ProbeOptions options = fast_options();
  options.include_remote = false;
  auto report = discover(machine_, options);
  ASSERT_TRUE(report.ok());
  // 2 distinct localities x 2 local nodes each.
  EXPECT_EQ(report->measurements.size(), 4u);

  attr::MemAttrRegistry registry(machine_.topology());
  ASSERT_TRUE(feed_registry(registry, *report).ok());
  EXPECT_TRUE(registry.has_values(attr::kBandwidth));
  EXPECT_TRUE(registry.has_values(attr::kLatency));
  EXPECT_TRUE(registry.has_values(attr::kReadBandwidth));

  // The ranking the allocator will use: DRAM first for latency.
  const auto initiator = attr::Initiator::from_cpuset(package0());
  auto best = registry.best_target(attr::kLatency, initiator);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->target->memory_kind(), topo::MemoryKind::kDRAM);
}

TEST_F(ProbeTest, DiscoverWithRemotePairsMeasuresEverything) {
  ProbeOptions options = fast_options();
  options.include_remote = true;
  auto report = discover(machine_, options);
  ASSERT_TRUE(report.ok());
  // 2 localities x 4 nodes.
  EXPECT_EQ(report->measurements.size(), 8u);
}

TEST_F(ProbeTest, TriadAttributeCombinesReadAndWrite) {
  auto report = discover(machine_, fast_options());
  ASSERT_TRUE(report.ok());
  attr::MemAttrRegistry registry(machine_.topology());
  ASSERT_TRUE(feed_registry(registry, *report).ok());
  auto triad = register_triad_attribute(registry, *report);
  ASSERT_TRUE(triad.ok());
  EXPECT_EQ(registry.info(*triad).name, "StreamTriad");

  const topo::Object& dram = *machine_.topology().numa_node(0);
  const auto initiator = attr::Initiator::from_cpuset(package0());
  auto value = registry.value(*triad, dram, initiator);
  ASSERT_TRUE(value.ok());
  // Triad mix of 80 R / 70 W: 24/(16/80+8/70) ~ 76.4 GB/s.
  EXPECT_NEAR(*value, gb_per_s(76.4), gb_per_s(3.0));
  // Re-registering the same name fails cleanly.
  EXPECT_FALSE(register_triad_attribute(registry, *report).ok());
}

TEST_F(ProbeTest, KnlProbeRanksHbmAboveDramForBandwidthOnly) {
  sim::SimMachine knl(topo::knl_snc4_flat());
  auto report = discover(knl, fast_options());
  ASSERT_TRUE(report.ok());
  attr::MemAttrRegistry registry(knl.topology());
  ASSERT_TRUE(feed_registry(registry, *report).ok());

  const auto initiator =
      attr::Initiator::from_cpuset(knl.topology().numa_node(0)->cpuset());
  auto best_bw = registry.best_target(attr::kBandwidth, initiator);
  ASSERT_TRUE(best_bw.ok());
  EXPECT_EQ(best_bw->target->memory_kind(), topo::MemoryKind::kHBM);
  // Latencies are close on KNL: whichever wins, the margin is small.
  auto best_lat = registry.best_target(attr::kLatency, initiator);
  ASSERT_TRUE(best_lat.ok());
  auto dram_lat = registry.value(attr::kLatency,
                                 *knl.topology().numa_node(0), initiator);
  auto hbm_lat = registry.value(attr::kLatency,
                                *knl.topology().numa_node(4), initiator);
  ASSERT_TRUE(dram_lat.ok());
  ASSERT_TRUE(hbm_lat.ok());
  EXPECT_NEAR(*dram_lat / *hbm_lat, 1.0, 0.2);
}

TEST_F(ProbeTest, ReportToStringListsEveryMeasurement) {
  auto report = discover(machine_, fast_options());
  ASSERT_TRUE(report.ok());
  const std::string text = report_to_string(*report, machine_.topology());
  EXPECT_NE(text.find("DRAM"), std::string::npos);
  EXPECT_NE(text.find("NVDIMM"), std::string::npos);
  EXPECT_NE(text.find("GB/s"), std::string::npos);
}

}  // namespace
}  // namespace hetmem::probe
