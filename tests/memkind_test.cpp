#include "hetmem/memkind/memkind.hpp"

#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::memkind {
namespace {

using support::Errc;
using support::kGiB;

TEST(KindName, AllNamed) {
  EXPECT_STREQ(kind_name(Kind::kHbw), "MEMKIND_HBW");
  EXPECT_STREQ(kind_name(Kind::kDaxPreferred), "MEMKIND_DAX_KMEM_PREFERRED");
}

class MemkindKnlTest : public ::testing::Test {
 protected:
  MemkindKnlTest() : machine_(topo::knl_snc4_flat()), shim_(machine_) {}
  support::Bitmap cluster0() { return machine_.topology().numa_node(0)->cpuset(); }
  sim::SimMachine machine_;
  MemkindShim shim_;
};

TEST_F(MemkindKnlTest, Availability) {
  EXPECT_TRUE(shim_.available(Kind::kDefault));
  EXPECT_TRUE(shim_.available(Kind::kHbw));
  EXPECT_FALSE(shim_.available(Kind::kDax));  // no NVDIMM on KNL
}

TEST_F(MemkindKnlTest, HbwGoesToLocalMcdram) {
  auto buffer = shim_.malloc(kGiB, Kind::kHbw, cluster0());
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(machine_.info(*buffer).node, 4u);  // cluster 0's MCDRAM
}

TEST_F(MemkindKnlTest, DefaultGoesToLowestLocalNode) {
  auto buffer = shim_.malloc(kGiB, Kind::kDefault, cluster0());
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(machine_.info(*buffer).node, 0u);
}

TEST_F(MemkindKnlTest, HbwFailsWhenMcdramFull) {
  ASSERT_TRUE(shim_.malloc(4 * kGiB, Kind::kHbw, cluster0()).ok());
  auto overflow = shim_.malloc(kGiB, Kind::kHbw, cluster0());
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.error().code, Errc::kOutOfCapacity);
}

TEST_F(MemkindKnlTest, HbwAllUsesRemoteMcdramWhenLocalFull) {
  ASSERT_TRUE(shim_.malloc(4 * kGiB, Kind::kHbw, cluster0()).ok());
  auto remote = shim_.malloc(kGiB, Kind::kHbwAll, cluster0());
  ASSERT_TRUE(remote.ok());
  const unsigned node = machine_.info(*remote).node;
  EXPECT_GE(node, 5u);  // another cluster's MCDRAM
  EXPECT_EQ(machine_.topology().numa_node(node)->memory_kind(),
            topo::MemoryKind::kHBM);
}

TEST_F(MemkindKnlTest, HbwPreferredSpillsToDram) {
  ASSERT_TRUE(shim_.malloc(4 * kGiB, Kind::kHbw, cluster0()).ok());
  auto spill = shim_.malloc(kGiB, Kind::kHbwPreferred, cluster0());
  ASSERT_TRUE(spill.ok());
  EXPECT_EQ(machine_.info(*spill).node, 0u);
}

TEST_F(MemkindKnlTest, FreeRoundTrip) {
  auto buffer = shim_.malloc(kGiB, Kind::kHbw, cluster0());
  ASSERT_TRUE(buffer.ok());
  ASSERT_TRUE(shim_.free(*buffer).ok());
  EXPECT_EQ(machine_.used_bytes(4), 0u);
}

// The paper's §II-D point, as a test: the SAME memkind call that works on
// KNL fails outright on the DRAM+NVDIMM Xeon, because the API names a
// technology the machine does not have.
TEST(MemkindPortability, HbwFailsOnXeon) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  MemkindShim shim(machine);
  EXPECT_FALSE(shim.available(Kind::kHbw));
  auto buffer = shim.malloc(kGiB, Kind::kHbw,
                            machine.topology().numa_node(0)->cpuset());
  ASSERT_FALSE(buffer.ok());
  EXPECT_EQ(buffer.error().code, Errc::kUnsupported);
}

TEST(MemkindPortability, DaxWorksOnXeonOnly) {
  sim::SimMachine xeon(topo::xeon_clx_1lm());
  MemkindShim xeon_shim(xeon);
  auto buffer = xeon_shim.malloc(kGiB, Kind::kDax,
                                 xeon.topology().numa_node(0)->cpuset());
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(xeon.topology().numa_node(xeon.info(*buffer).node)->memory_kind(),
            topo::MemoryKind::kNVDIMM);

  sim::SimMachine knl(topo::knl_snc4_flat());
  MemkindShim knl_shim(knl);
  auto fail = knl_shim.malloc(kGiB, Kind::kDax,
                              knl.topology().numa_node(0)->cpuset());
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, Errc::kUnsupported);
}

TEST(MemkindPortability, HighestCapacityAlwaysWorks) {
  for (const topo::NamedTopology& preset : topo::all_presets()) {
    sim::SimMachine machine(preset.factory());
    MemkindShim shim(machine);
    auto buffer = shim.malloc(kGiB, Kind::kHighestCapacity,
                              machine.topology().pus().front()->cpuset());
    ASSERT_TRUE(buffer.ok()) << preset.name;
    // It picked the biggest node, wherever that is.
    std::uint64_t best = 0;
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      best = std::max(best, node->capacity_bytes());
    }
    EXPECT_EQ(machine.topology()
                  .numa_node(machine.info(*buffer).node)
                  ->capacity_bytes(),
              best)
        << preset.name;
  }
}

}  // namespace
}  // namespace hetmem::memkind
