// Concurrency stress and race tests for the allocation path
// (docs/CONCURRENCY.md). Designed to run clean under ThreadSanitizer: the CI
// TSan lane executes this binary three times, and any data race in the
// machine's sharded arenas, the allocator's atomic statistics, or the
// registry's reader/writer locking fails the run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/alloc/pool.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/rng.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/tenant/tenant.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem {
namespace {

using support::kGiB;
using support::kMiB;

// Modest by default so the suite stays fast in sanitizer builds; the
// invariants are interleaving-sensitive, not volume-sensitive.
constexpr unsigned kThreads = 8;
constexpr unsigned kBuffersPerThread = 64;

struct OwnedBuffer {
  sim::BufferId id;
  unsigned node = 0;
  std::uint64_t bytes = 0;
  bool live = false;
};

// --- machine-level stress: alloc/free/migrate/query under a phase barrier ---

// Each thread owns its buffers exclusively; after every barrier one thread
// checks the global invariants while everyone else waits (all threads
// quiescent), then a second barrier releases the next phase.
TEST(MachineConcurrency, PhasedStressKeepsCapacityAccountingExact) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const std::size_t nodes = machine.topology().numa_nodes().size();

  std::vector<std::vector<OwnedBuffer>> owned(kThreads);
  std::barrier barrier(kThreads);

  auto check_invariants = [&] {
    std::vector<std::uint64_t> expected(nodes, 0);
    std::size_t expected_live = 0;
    for (const auto& per_thread : owned) {
      for (const OwnedBuffer& buffer : per_thread) {
        if (!buffer.live) continue;
        expected[buffer.node] += buffer.bytes;
        ++expected_live;
        const sim::BufferInfo info = machine.info(buffer.id);
        EXPECT_FALSE(info.freed);
        EXPECT_EQ(info.node, buffer.node);
        EXPECT_EQ(info.declared_bytes, buffer.bytes);
      }
    }
    EXPECT_EQ(machine.live_buffer_count(), expected_live);
    for (unsigned n = 0; n < nodes; ++n) {
      EXPECT_EQ(machine.used_bytes(n), expected[n]) << "node " << n;
      EXPECT_LE(machine.used_bytes(n), machine.capacity_bytes(n)) << "node " << n;
    }
  };

  auto worker = [&](unsigned tid) {
    support::Xoshiro256 rng(0x5eed0000 + tid);
    auto pick_node = [&] {
      return static_cast<unsigned>(rng.next_below(nodes));
    };

    // Phase 1: allocate. Sizes stay tiny relative to capacity so success
    // never depends on the interleaving.
    for (unsigned b = 0; b < kBuffersPerThread; ++b) {
      OwnedBuffer buffer;
      buffer.node = pick_node();
      buffer.bytes = (1 + rng.next_below(16)) * kMiB;
      auto id = machine.allocate(buffer.bytes, buffer.node,
                                 "t" + std::to_string(tid) + ".b" +
                                     std::to_string(b),
                                 /*backing_bytes=*/64);
      ASSERT_TRUE(id.ok()) << id.error().to_string();
      buffer.id = *id;
      buffer.live = true;
      owned[tid].push_back(buffer);
    }
    barrier.arrive_and_wait();
    if (tid == 0) check_invariants();
    barrier.arrive_and_wait();

    // Phase 2: migrate half, query the rest (info() is lock-free).
    for (OwnedBuffer& buffer : owned[tid]) {
      if (rng.next_below(2) == 0) {
        const unsigned destination = pick_node();
        auto status = machine.migrate(buffer.id, destination);
        ASSERT_TRUE(status.ok()) << status.error().to_string();
        buffer.node = destination;
      } else {
        const sim::BufferInfo info = machine.info(buffer.id);
        EXPECT_EQ(info.declared_bytes, buffer.bytes);
      }
    }
    barrier.arrive_and_wait();
    if (tid == 0) check_invariants();
    barrier.arrive_and_wait();

    // Phase 3: free every other buffer.
    for (std::size_t b = 0; b < owned[tid].size(); b += 2) {
      auto status = machine.free(owned[tid][b].id);
      ASSERT_TRUE(status.ok()) << status.error().to_string();
      owned[tid][b].live = false;
    }
    barrier.arrive_and_wait();
    if (tid == 0) check_invariants();
    barrier.arrive_and_wait();

    // Phase 4: free the rest.
    for (OwnedBuffer& buffer : owned[tid]) {
      if (!buffer.live) continue;
      ASSERT_TRUE(machine.free(buffer.id).ok());
      buffer.live = false;
    }
    barrier.arrive_and_wait();
    if (tid == 0) check_invariants();
  };

  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) threads.emplace_back(worker, tid);
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(machine.live_buffer_count(), 0u);
  for (unsigned n = 0; n < nodes; ++n) EXPECT_EQ(machine.used_bytes(n), 0u);
}

// N racing frees of one buffer: exactly one wins, capacity is released once.
TEST(MachineConcurrency, RacingFreesSucceedExactlyOnce) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  for (unsigned round = 0; round < 50; ++round) {
    auto id = machine.allocate(kMiB, 0, "contested", 64);
    ASSERT_TRUE(id.ok());

    std::atomic<unsigned> successes{0};
    std::barrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&] {
        barrier.arrive_and_wait();
        if (machine.free(*id).ok()) successes.fetch_add(1);
      });
    }
    for (std::thread& thread : threads) thread.join();

    EXPECT_EQ(successes.load(), 1u);
    EXPECT_EQ(machine.used_bytes(0), 0u);
    EXPECT_EQ(machine.live_buffer_count(), 0u);
  }
}

// Racing migrate vs free of the same buffer: every outcome must be
// well-defined — the buffer ends freed, capacity lands at zero everywhere,
// and the migrate either completed first or failed cleanly.
TEST(MachineConcurrency, MigrateRacingFreeIsWellDefined) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  for (unsigned round = 0; round < 200; ++round) {
    auto id = machine.allocate(kMiB, 0, "mover", 64);
    ASSERT_TRUE(id.ok());

    std::barrier barrier(2);
    std::thread freer([&] {
      barrier.arrive_and_wait();
      EXPECT_TRUE(machine.free(*id).ok());
    });
    std::thread migrator([&] {
      barrier.arrive_and_wait();
      auto status = machine.migrate(*id, 1);
      if (!status.ok()) {
        EXPECT_EQ(status.error().code, support::Errc::kInvalidArgument);
      }
    });
    freer.join();
    migrator.join();

    EXPECT_TRUE(machine.info(*id).freed);
    EXPECT_EQ(machine.used_bytes(0), 0u);
    EXPECT_EQ(machine.used_bytes(1), 0u);
    EXPECT_EQ(machine.live_buffer_count(), 0u);
  }
}

// Allocation storm at the capacity boundary with a concurrent sampler:
// used_bytes must never exceed capacity at any observable instant, and the
// post-storm accounting must equal the sum of successful allocations.
TEST(MachineConcurrency, CapacityIsNeverOversubscribed) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const std::uint64_t capacity = machine.capacity_bytes(0);
  const std::uint64_t chunk = capacity / 100;  // ~100 fit; 8 threads fight

  std::atomic<bool> done{false};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_LE(machine.used_bytes(0), capacity);
    }
  });

  std::atomic<std::uint64_t> allocated_bytes{0};
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (unsigned b = 0; b < 40; ++b) {
        auto id = machine.allocate(chunk, 0,
                                   "storm.t" + std::to_string(tid), 64);
        if (id.ok()) allocated_bytes.fetch_add(chunk);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  done.store(true, std::memory_order_release);
  sampler.join();

  // 8 threads x 40 requests = 320 > 100 slots: the boundary was contested.
  EXPECT_EQ(machine.used_bytes(0), allocated_bytes.load());
  EXPECT_LE(machine.used_bytes(0), capacity);
  EXPECT_GT(machine.used_bytes(0), capacity - chunk);  // storm filled the node
}

// --- allocator-level stress: stats, trace, and retry accounting ---

struct AllocatorFixture {
  AllocatorFixture()
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry) {
    hmat::GenerateOptions options;
    options.local_only = false;
    EXPECT_TRUE(
        hmat::load_into(registry, hmat::generate(machine.topology(), options))
            .ok());
  }
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
};

TEST(AllocatorConcurrency, StatsAndTraceStayConsistentUnderStress) {
  AllocatorFixture f;
  const support::Bitmap initiator = f.machine.topology().numa_node(0)->cpuset();

  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      support::Xoshiro256 rng(0xa110c + tid);
      std::vector<sim::BufferId> live;
      for (unsigned op = 0; op < 200; ++op) {
        const std::uint64_t roll = rng.next_below(10);
        if (roll < 6 || live.empty()) {
          alloc::AllocRequest request;
          request.bytes = (1 + rng.next_below(8)) * kMiB;
          request.attribute =
              roll % 2 == 0 ? attr::kBandwidth : attr::kLatency;
          request.initiator = initiator;
          request.backing_bytes = 64;
          request.label = "stress.t" + std::to_string(tid);
          auto allocation = f.allocator.mem_alloc(request);
          ASSERT_TRUE(allocation.ok()) << allocation.error().to_string();
          live.push_back(allocation->buffer);
        } else if (roll < 8) {
          const std::size_t victim = rng.next_below(live.size());
          ASSERT_TRUE(f.allocator.mem_free(live[victim]).ok());
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        } else {
          const std::size_t victim = rng.next_below(live.size());
          const unsigned destination = static_cast<unsigned>(rng.next_below(
              f.machine.topology().numa_nodes().size()));
          auto cost = f.allocator.migrate(live[victim], destination);
          ASSERT_TRUE(cost.ok()) << cost.error().to_string();
        }
      }
      for (sim::BufferId id : live) ASSERT_TRUE(f.allocator.mem_free(id).ok());
    });
  }
  for (std::thread& thread : threads) thread.join();

  const alloc::AllocatorStats stats = f.allocator.stats();
  EXPECT_EQ(stats.allocations, stats.frees);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(f.machine.live_buffer_count(), 0u);

  // The trace recorded every event exactly once (the mutex lost none).
  std::uint64_t traced_allocs = 0, traced_frees = 0, traced_migrations = 0;
  for (const alloc::TraceEvent& event : f.allocator.trace()) {
    switch (event.kind) {
      case alloc::TraceEvent::Kind::kAlloc: ++traced_allocs; break;
      case alloc::TraceEvent::Kind::kFree: ++traced_frees; break;
      case alloc::TraceEvent::Kind::kMigrate: ++traced_migrations; break;
      case alloc::TraceEvent::Kind::kFail: break;
    }
  }
  EXPECT_EQ(traced_allocs, stats.allocations);
  EXPECT_EQ(traced_frees, stats.frees);
  EXPECT_EQ(traced_migrations, stats.migrations);
}

// Regression (previously racy): transient-retry accounting under concurrent
// mem_alloc. With an effectively unlimited retry budget every injected
// transient failure is retried, so the allocator's atomic counter must equal
// the injector's own (mutex-guarded) injection count exactly. The old
// unsynchronized `++stats_.transient_retries` lost increments here.
TEST(AllocatorConcurrency, TransientRetryAccountingIsExactUnderStorm) {
  AllocatorFixture f;
  fault::FaultInjector injector =
      fault::FaultInjector::preset("alloc-storm", 0xdeed);
  f.machine.set_fault_injector(&injector);
  f.allocator.set_retry_policy(alloc::RetryPolicy{1u << 20});
  const support::Bitmap initiator = f.machine.topology().numa_node(0)->cpuset();

  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (unsigned op = 0; op < 200; ++op) {
        alloc::AllocRequest request;
        request.bytes = kMiB;
        request.attribute = attr::kLatency;
        request.initiator = initiator;
        request.backing_bytes = 64;
        request.label = "storm.t" + std::to_string(tid);
        auto allocation = f.allocator.mem_alloc(request);
        ASSERT_TRUE(allocation.ok()) << allocation.error().to_string();
        ASSERT_TRUE(f.allocator.mem_free(allocation->buffer).ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::uint64_t injected =
      injector.injected(fault::site::kMachineAllocTransient);
  EXPECT_GT(injected, 0u);  // the storm preset actually fired
  EXPECT_EQ(f.allocator.stats().transient_retries, injected);
  EXPECT_EQ(f.allocator.stats().allocations, kThreads * 200u);
}

// Reservations: racing mem_alloc_reserved calls can never spend the same
// reserved bytes twice.
TEST(AllocatorConcurrency, ReservationIsConsumedAtMostOnce) {
  AllocatorFixture f;
  constexpr unsigned kSlots = 10;
  ASSERT_TRUE(f.allocator.reserve(0, kSlots * kGiB).ok());

  std::atomic<unsigned> successes{0};
  std::barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      barrier.arrive_and_wait();
      for (unsigned b = 0; b < kSlots; ++b) {
        auto allocation = f.allocator.mem_alloc_reserved(
            0, kGiB, "rsv.t" + std::to_string(tid), 64);
        if (allocation.ok()) successes.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(successes.load(), kSlots);  // 80 attempts, 10 reserved slots
  EXPECT_EQ(f.allocator.reserved_bytes(0), 0u);
  EXPECT_EQ(f.machine.used_bytes(0), kSlots * kGiB);
}

// --- seeded-interleaving fuzz: same-seed replay determinism ---

// Thread t's operation sequence is a pure function of (seed, t); threads own
// their buffers and the workload stays far below every node's capacity, so
// the final machine state cannot depend on how the threads interleaved. Two
// runs with the same seed must produce identical state fingerprints.
std::string run_seeded_schedule(std::uint64_t seed) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const std::size_t nodes = machine.topology().numa_nodes().size();

  std::vector<std::vector<OwnedBuffer>> owned(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      support::Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ull * (tid + 1)));
      for (unsigned op = 0; op < 300; ++op) {
        const std::uint64_t roll = rng.next_below(10);
        auto& mine = owned[tid];
        const bool any_live =
            std::any_of(mine.begin(), mine.end(),
                        [](const OwnedBuffer& b) { return b.live; });
        if (roll < 5 || !any_live) {
          OwnedBuffer buffer;
          buffer.node = static_cast<unsigned>(rng.next_below(nodes));
          buffer.bytes = (1 + rng.next_below(4)) * kMiB;
          auto id = machine.allocate(
              buffer.bytes, buffer.node,
              "fuzz.t" + std::to_string(tid) + ".op" + std::to_string(op), 64);
          ASSERT_TRUE(id.ok());
          buffer.id = *id;
          buffer.live = true;
          mine.push_back(buffer);
        } else if (roll < 8) {
          const std::size_t pick = rng.next_below(mine.size());
          OwnedBuffer& buffer = mine[pick];
          if (!buffer.live) continue;
          const unsigned destination =
              static_cast<unsigned>(rng.next_below(nodes));
          ASSERT_TRUE(machine.migrate(buffer.id, destination).ok());
          buffer.node = destination;
        } else {
          const std::size_t pick = rng.next_below(mine.size());
          OwnedBuffer& buffer = mine[pick];
          if (!buffer.live) continue;
          ASSERT_TRUE(machine.free(buffer.id).ok());
          buffer.live = false;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Fingerprint: every thread's surviving (label, node, bytes) triples in
  // thread order (per-thread order is deterministic), plus per-node usage.
  std::string fingerprint;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    for (const OwnedBuffer& buffer : owned[tid]) {
      if (!buffer.live) continue;
      const sim::BufferInfo info = machine.info(buffer.id);
      fingerprint += info.label + "@" + std::to_string(info.node) + ":" +
                     std::to_string(info.declared_bytes) + "\n";
    }
  }
  for (unsigned n = 0; n < nodes; ++n) {
    fingerprint += "node" + std::to_string(n) + "=" +
                   std::to_string(machine.used_bytes(n)) + "\n";
  }
  return fingerprint;
}

TEST(InterleavingFuzz, SameSeedReplaysToIdenticalFinalState) {
  for (std::uint64_t seed : {1ull, 42ull, 0xfeedfaceull}) {
    const std::string first = run_seeded_schedule(seed);
    const std::string second = run_seeded_schedule(seed);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(InterleavingFuzz, DifferentSeedsDiverge) {
  EXPECT_NE(run_seeded_schedule(7), run_seeded_schedule(8));
}

// --- ranking cache: readers vs an invalidating writer (docs/PERF.md) ---

// The writer rewrites every node's Bandwidth value to base(node) * g for
// generation g; readers rank through the *cache*. Two failure modes are
// hunted here: a torn snapshot (values from two different g in one ranking)
// and stale-after-publish (a reader observing registry generation G must
// never be served a snapshot older than G — the acquire on generation()
// orders the subsequent cache lookup).
TEST(RankingCacheConcurrency, CachedReadersNeverSeeTornOrStaleRankings) {
  topo::Topology topology = topo::xeon_clx_1lm();
  attr::MemAttrRegistry registry(topology);
  const auto& nodes = topology.numa_nodes();
  const auto initiator =
      attr::Initiator::from_cpuset(topology.pus().front()->cpuset());

  auto base = [](unsigned node) { return 100.0 * (node + 1); };
  constexpr unsigned kGenerations = 300;
  for (unsigned n = 0; n < nodes.size(); ++n) {
    ASSERT_TRUE(
        registry.set_value(attr::kBandwidth, *nodes[n], initiator, base(n))
            .ok());
  }

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (unsigned g = 2; g <= kGenerations; ++g) {
      for (unsigned n = 0; n < nodes.size(); ++n) {
        ASSERT_TRUE(registry
                        .set_value(attr::kBandwidth, *nodes[n], initiator,
                                   base(n) * g)
                        .ok());
      }
      if (g % 16 == 0) registry.invalidate_rankings();
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (unsigned r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      do {
        const std::uint64_t observed = registry.generation();
        const attr::RankingSnapshot snapshot =
            registry.targets_ranked_cached(attr::kBandwidth, initiator);
        ASSERT_FALSE(snapshot->targets.empty());
        // Not torn: every value in the snapshot comes from the same written
        // generation g (base(node) * g for one g across all entries).
        double g = 0.0;
        for (const attr::TargetValue& tv : snapshot->targets) {
          const double ratio = tv.value / base(tv.target->logical_index());
          const double rounded = std::round(ratio);
          ASSERT_NEAR(ratio, rounded, 1e-9) << "torn value " << tv.value;
          if (g == 0.0) {
            g = rounded;
          } else {
            ASSERT_EQ(g, rounded) << "snapshot mixes generations";
          }
        }
        // Not stale-after-publish: the snapshot may not predate the
        // registry generation the reader had already observed.
        ASSERT_GE(snapshot->generation, observed);
      } while (!writer_done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  // Quiescent: the cache must converge on exactly the final values.
  const attr::RankingSnapshot final_snapshot =
      registry.targets_ranked_cached(attr::kBandwidth, initiator);
  const std::vector<attr::TargetValue> uncached =
      registry.targets_ranked(attr::kBandwidth, initiator);
  ASSERT_EQ(final_snapshot->targets.size(), uncached.size());
  for (std::size_t i = 0; i < uncached.size(); ++i) {
    EXPECT_EQ(final_snapshot->targets[i].target, uncached[i].target);
    EXPECT_EQ(final_snapshot->targets[i].value, uncached[i].value);
  }
}

// --- pool magazines: thread-exit flush returns every block exactly once ---

// Worker threads allocate and free through their magazines and exit with
// warm magazines (cached blocks). The exit hook must hand every cached
// block back exactly once: afterwards the pool's live count equals exactly
// the handles the workers reported as still-live, every remaining block can
// be freed exactly once more, and a full drain re-allocates each (slab,
// index) pair at most once — a double-returned block would surface as a
// duplicate handle here.
TEST(PoolMagazineConcurrency, ThreadExitFlushReturnsEveryBlockExactlyOnce) {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  attr::MemAttrRegistry registry(machine.topology());
  hmat::GenerateOptions options;
  options.local_only = false;
  ASSERT_TRUE(
      hmat::load_into(registry, hmat::generate(machine.topology(), options))
          .ok());
  alloc::HeterogeneousAllocator allocator(machine, registry);
  allocator.set_trace_enabled(false);

  alloc::PoolOptions pool_options;
  pool_options.attribute = attr::kBandwidth;
  pool_options.block_bytes = 64 * support::kKiB;
  pool_options.blocks_per_slab = 64;
  pool_options.magazine_blocks = 16;
  alloc::Pool pool(allocator, machine.topology().numa_node(0)->cpuset(),
                   pool_options, "mag.exit");

  constexpr unsigned kWorkers = 8;
  constexpr unsigned kOpsPerWorker = 400;
  std::vector<std::vector<alloc::PoolBlock>> survivors(kWorkers);
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      support::SplitMix64 rng(0x9000 + w);
      std::vector<alloc::PoolBlock> held;
      for (unsigned op = 0; op < kOpsPerWorker; ++op) {
        if (held.empty() || rng.next() % 2 == 0) {
          auto block = pool.allocate();
          ASSERT_TRUE(block.ok());
          held.push_back(*block);
        } else {
          ASSERT_TRUE(pool.free(held.back()).ok());
          held.pop_back();
        }
      }
      // Keep a few live across thread exit; free the rest into the
      // magazine so it is warm when the exit flush runs.
      while (held.size() > 3) {
        ASSERT_TRUE(pool.free(held.back()).ok());
        held.pop_back();
      }
      survivors[w] = std::move(held);
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Exit flushes ran: live blocks == exactly the survivors.
  std::size_t live = 0;
  for (const auto& held : survivors) live += held.size();
  alloc::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.blocks_live, live);
  EXPECT_EQ(stats.blocks_allocated - stats.blocks_freed, live);

  // Every survivor frees exactly once more (a lost block would already have
  // been pushed back and trip the double-free scan at flush time).
  for (const auto& held : survivors) {
    for (alloc::PoolBlock block : held) {
      ASSERT_TRUE(pool.free(block).ok());
    }
  }
  pool.flush_thread_magazine();
  stats = pool.stats();
  EXPECT_EQ(stats.blocks_live, 0u);

  // Exactly-once: drain the whole pool without growing it; every (slab,
  // index) pair may appear at most once. A block returned twice by the exit
  // flush would be handed out twice here.
  const std::uint64_t capacity =
      stats.slabs_created * pool_options.blocks_per_slab;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  std::vector<alloc::PoolBlock> drained;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    auto block = pool.allocate();
    ASSERT_TRUE(block.ok());
    ASSERT_TRUE(seen.emplace(block->slab, block->index).second)
        << "block handed out twice after exit flush";
    drained.push_back(*block);
  }
  EXPECT_EQ(pool.stats().slabs_created, stats.slabs_created)
      << "drain should not have grown the pool";
  for (alloc::PoolBlock block : drained) ASSERT_TRUE(pool.free(block).ok());
  pool.flush_thread_magazine();
}

// --- tenant lifecycle races: quota refunds are exactly-once (TSan lane) ---

// Worker threads allocate and free under a shared tenant handle while the
// main thread deregisters the tenant mid-storm. Invariants:
//   - a deregistered tenant's outstanding buffers keep refunding on free
//     (the quota returns to exactly zero — no double refund, no leak);
//   - allocations that race the deregistration either succeed (and are
//     charged) or fail cleanly with kInvalidArgument/kBackpressure;
//   - the registry's exactly-once contract holds: the second deregister
//     reports kNotFound even when frees are still in flight.
TEST(TenantConcurrency, DeregistrationRefundsQuotaExactlyOnce) {
  AllocatorFixture f;
  tenant::TenantRegistry tenants;
  f.allocator.set_tenant_registry(&tenants);
  const support::Bitmap initiator = f.machine.topology().numa_node(0)->cpuset();

  tenant::TenantQuota quota;
  quota.total_cap_bytes = 32 * kGiB;
  auto registered =
      tenants.register_tenant("racer", tenant::Priority::kNormal, quota);
  ASSERT_TRUE(registered.ok());
  tenant::TenantHandle handle = *registered;

  std::atomic<bool> start{false};
  std::atomic<std::uint64_t> refused{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<sim::BufferId>> survivors(kThreads);
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      while (!start.load(std::memory_order_acquire)) {}
      support::Xoshiro256 rng(0x7e4a47 + tid);
      std::vector<sim::BufferId> live;
      for (unsigned op = 0; op < 128; ++op) {
        if (rng.next_below(2) == 0 || live.empty()) {
          alloc::AllocRequest request;
          request.bytes = (1 + rng.next_below(4)) * kMiB;
          request.attribute = attr::kLatency;
          request.initiator = initiator;
          request.backing_bytes = 64;
          request.label = "tenant.t" + std::to_string(tid);
          request.tenant = handle;
          auto allocation = f.allocator.mem_alloc(request);
          if (allocation.ok()) {
            live.push_back(allocation->buffer);
          } else {
            // Racing the deregistration: only the two clean refusals are
            // acceptable — never a crash, never a charged-but-failed state.
            ASSERT_TRUE(allocation.error().code ==
                            support::Errc::kInvalidArgument ||
                        allocation.error().code == support::Errc::kBackpressure)
                << allocation.error().to_string();
            refused.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          ASSERT_TRUE(f.allocator.mem_free(live.back()).ok());
          live.pop_back();
        }
      }
      survivors[tid] = std::move(live);
    });
  }
  start.store(true, std::memory_order_release);
  // Let the storm run, then yank the tenant out from under it.
  std::this_thread::yield();
  ASSERT_TRUE(tenants.deregister_tenant(handle).ok());
  EXPECT_EQ(tenants.deregister_tenant(handle).error().code,
            support::Errc::kNotFound)
      << "second deregistration must observe exactly-once semantics";
  for (std::thread& thread : threads) thread.join();

  // Every surviving buffer is still charged; each free refunds exactly once.
  std::uint64_t outstanding = 0;
  for (const auto& per_thread : survivors) {
    for (sim::BufferId id : per_thread) {
      outstanding += f.machine.info(id).declared_bytes;
    }
  }
  EXPECT_EQ(handle->used_bytes(), outstanding);
  for (const auto& per_thread : survivors) {
    for (sim::BufferId id : per_thread) {
      ASSERT_TRUE(f.allocator.mem_free(id).ok());
    }
  }
  EXPECT_EQ(handle->used_bytes(), 0u)
      << "refunds must balance charges exactly (no double refund, no leak)";
  EXPECT_FALSE(handle->live());

  // New allocations under the dead handle are refused deterministically.
  alloc::AllocRequest late;
  late.bytes = kMiB;
  late.attribute = attr::kLatency;
  late.initiator = initiator;
  late.label = "late";
  late.tenant = handle;
  auto refused_late = f.allocator.mem_alloc(late);
  ASSERT_FALSE(refused_late.ok());
  EXPECT_EQ(refused_late.error().code, support::Errc::kInvalidArgument);
  EXPECT_EQ(f.machine.live_buffer_count(), 0u);
}

// Registry churn: registrations, lookups, and deregistrations from many
// threads never corrupt the live set or reuse an id.
TEST(TenantConcurrency, RegistryChurnKeepsIdsUniqueAndLiveSetConsistent) {
  tenant::TenantRegistry tenants;
  std::vector<std::thread> threads;
  std::vector<std::vector<tenant::TenantId>> ids(kThreads);
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (unsigned i = 0; i < 64; ++i) {
        const std::string name =
            "churn." + std::to_string(tid) + "." + std::to_string(i);
        auto handle = tenants.register_tenant(
            name, static_cast<tenant::Priority>(i % 3));
        ASSERT_TRUE(handle.ok());
        ids[tid].push_back((*handle)->id());
        EXPECT_EQ(tenants.find(name), *handle);
        if (i % 2 == 0) {
          ASSERT_TRUE(tenants.deregister_tenant(*handle).ok());
          EXPECT_EQ(tenants.find(name), nullptr);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::set<tenant::TenantId> unique;
  for (const auto& per_thread : ids) {
    for (tenant::TenantId id : per_thread) {
      ASSERT_TRUE(unique.insert(id).second) << "tenant id reused";
    }
  }
  EXPECT_EQ(tenants.live_count(), kThreads * 32u);
}

}  // namespace
}  // namespace hetmem
