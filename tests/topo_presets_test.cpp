#include "hetmem/topo/presets.hpp"

#include <gtest/gtest.h>

#include "hetmem/support/units.hpp"

namespace hetmem::topo {
namespace {

using support::kGiB;
using support::kTiB;

// --- parameterized invariants over every preset ---

class PresetInvariantsTest : public ::testing::TestWithParam<NamedTopology> {};

TEST_P(PresetInvariantsTest, Validates) {
  Topology topology = GetParam().factory();
  auto status = topology.validate();
  EXPECT_TRUE(status.ok()) << status.error().to_string();
}

TEST_P(PresetInvariantsTest, LogicalIndicesDenseAndSorted) {
  Topology topology = GetParam().factory();
  for (std::size_t i = 0; i < topology.numa_nodes().size(); ++i) {
    EXPECT_EQ(topology.numa_nodes()[i]->logical_index(), i);
    EXPECT_EQ(topology.numa_nodes()[i]->os_index(), i)
        << "presets attach nodes in OS order";
  }
}

TEST_P(PresetInvariantsTest, EveryNumaNodeHasLocality) {
  Topology topology = GetParam().factory();
  for (const Object* node : topology.numa_nodes()) {
    // NAM nodes are machine-local, so even they cover all PUs.
    EXPECT_FALSE(node->cpuset().empty())
        << "node L#" << node->logical_index() << " has empty locality";
    EXPECT_TRUE(node->cpuset().is_subset_of(topology.complete_cpuset()));
    EXPECT_GT(node->capacity_bytes(), 0u);
  }
}

TEST_P(PresetInvariantsTest, EveryPuHasAtLeastOneLocalNode) {
  Topology topology = GetParam().factory();
  for (const Object* pu : topology.pus()) {
    auto local = topology.local_numa_nodes(pu->cpuset());
    EXPECT_FALSE(local.empty()) << "PU L#" << pu->logical_index();
  }
}

TEST_P(PresetInvariantsTest, CoveringObjectOfFullCpusetCoversAllPus) {
  Topology topology = GetParam().factory();
  // On single-package machines the deepest object with the full cpuset is
  // the package, not the machine — only the cpuset itself is guaranteed.
  const Object* covering = topology.covering_object(topology.complete_cpuset());
  ASSERT_NE(covering, nullptr);
  EXPECT_TRUE(covering->cpuset() == topology.complete_cpuset());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetInvariantsTest, ::testing::ValuesIn(all_presets()),
    [](const ::testing::TestParamInfo<NamedTopology>& info) {
      return info.param.name;
    });

// --- per-preset shape checks against the paper's figures ---

TEST(KnlSnc4Flat, MatchesSection6Setup) {
  Topology topology = knl_snc4_flat();
  EXPECT_EQ(topology.pus().size(), 64u * 4);  // 64 cores x 4 threads
  ASSERT_EQ(topology.numa_nodes().size(), 8u);
  // DRAM nodes 0-3, MCDRAM 4-7 (footnote 21 numbering).
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(topology.numa_node(i)->memory_kind(), MemoryKind::kDRAM);
    EXPECT_EQ(topology.numa_node(i)->capacity_bytes(), 24 * kGiB);
    EXPECT_EQ(topology.numa_node(i + 4)->memory_kind(), MemoryKind::kHBM);
    EXPECT_EQ(topology.numa_node(i + 4)->capacity_bytes(), 4 * kGiB);
  }
  // Each cluster's DRAM and HBM share a 64-PU locality.
  EXPECT_TRUE(topology.numa_node(0)->cpuset() == topology.numa_node(4)->cpuset());
  EXPECT_EQ(topology.numa_node(0)->cpuset().count(), 64u);
}

TEST(KnlSnc4Hybrid50, HasMemorySideCaches) {
  Topology topology = knl_snc4_hybrid50();
  EXPECT_EQ(topology.pus().size(), 72u * 4);
  unsigned cached = 0;
  for (const Object* node : topology.numa_nodes()) {
    if (node->memory_side_cache().has_value()) {
      ++cached;
      EXPECT_EQ(node->memory_kind(), MemoryKind::kDRAM);
      EXPECT_EQ(node->memory_side_cache()->size_bytes, 2 * kGiB);
    }
  }
  EXPECT_EQ(cached, 4u);
}

TEST(XeonClxSnc1lm, MatchesFigure2) {
  Topology topology = xeon_clx_snc_1lm();
  EXPECT_EQ(topology.pus().size(), 2u * 20 * 2);
  ASSERT_EQ(topology.numa_nodes().size(), 6u);
  // Fig. 5 node order: 0,1 DRAM / 2 NVDIMM / 3,4 DRAM / 5 NVDIMM.
  const MemoryKind expected[] = {MemoryKind::kDRAM, MemoryKind::kDRAM,
                                 MemoryKind::kNVDIMM, MemoryKind::kDRAM,
                                 MemoryKind::kDRAM, MemoryKind::kNVDIMM};
  for (unsigned i = 0; i < 6; ++i) {
    EXPECT_EQ(topology.numa_node(i)->memory_kind(), expected[i]) << "node " << i;
  }
  EXPECT_EQ(topology.numa_node(0)->capacity_bytes(), 96 * kGiB);
  EXPECT_EQ(topology.numa_node(2)->capacity_bytes(), 768 * kGiB);
  // NVDIMM locality covers the whole package (both SNCs).
  EXPECT_EQ(topology.numa_node(2)->cpuset().count(), 40u);
  EXPECT_TRUE(topology.numa_node(0)->cpuset().is_subset_of(
      topology.numa_node(2)->cpuset()));
}

TEST(XeonClx1lm, Section6MachineWithoutSnc) {
  Topology topology = xeon_clx_1lm();
  ASSERT_EQ(topology.numa_nodes().size(), 4u);
  EXPECT_EQ(topology.numa_node(0)->memory_kind(), MemoryKind::kDRAM);
  EXPECT_EQ(topology.numa_node(0)->capacity_bytes(), 192 * kGiB);
  EXPECT_EQ(topology.numa_node(2)->memory_kind(), MemoryKind::kNVDIMM);
  EXPECT_EQ(topology.numa_node(2)->capacity_bytes(), 768 * kGiB);
  // DRAM and NVDIMM of one package share locality (20 cores x 2 threads).
  EXPECT_TRUE(topology.numa_node(0)->cpuset() == topology.numa_node(2)->cpuset());
  EXPECT_EQ(topology.numa_node(0)->cpuset().count(), 40u);
}

TEST(XeonClx2lm, NvdimmBehindDramCache) {
  Topology topology = xeon_clx_2lm();
  ASSERT_EQ(topology.numa_nodes().size(), 2u);
  for (const Object* node : topology.numa_nodes()) {
    EXPECT_EQ(node->memory_kind(), MemoryKind::kNVDIMM);
    ASSERT_TRUE(node->memory_side_cache().has_value());
    EXPECT_EQ(node->memory_side_cache()->size_bytes, 192 * kGiB);
  }
}

TEST(FictitiousFig3, FourKindsOfMemory) {
  Topology topology = fictitious_fig3();
  unsigned dram = 0, hbm = 0, nvdimm = 0, nam = 0;
  for (const Object* node : topology.numa_nodes()) {
    switch (node->memory_kind()) {
      case MemoryKind::kDRAM: ++dram; break;
      case MemoryKind::kHBM: ++hbm; break;
      case MemoryKind::kNVDIMM: ++nvdimm; break;
      case MemoryKind::kNAM: ++nam; break;
      default: break;
    }
  }
  EXPECT_EQ(dram, 2u);
  EXPECT_EQ(hbm, 4u);
  EXPECT_EQ(nvdimm, 2u);
  EXPECT_EQ(nam, 1u);

  // A core in an SNC sees 4 local nodes: its HBM, the package DRAM and
  // NVDIMM, and the machine NAM (paper §III: "4 local NUMA nodes").
  const Object* pu0 = topology.pus().front();
  auto local = topology.local_numa_nodes(pu0->cpuset());
  EXPECT_EQ(local.size(), 4u);
}

TEST(FictitiousFig3, NamIsMachineWide) {
  Topology topology = fictitious_fig3();
  const Object* nam = nullptr;
  for (const Object* node : topology.numa_nodes()) {
    if (node->memory_kind() == MemoryKind::kNAM) nam = node;
  }
  ASSERT_NE(nam, nullptr);
  EXPECT_TRUE(nam->cpuset() == topology.complete_cpuset());
  EXPECT_EQ(nam->capacity_bytes(), 4 * kTiB);
}

TEST(FugakuLike, HbmOnlyNoTradeOff) {
  Topology topology = fugaku_like();
  ASSERT_EQ(topology.numa_nodes().size(), 4u);
  for (const Object* node : topology.numa_nodes()) {
    EXPECT_EQ(node->memory_kind(), MemoryKind::kHBM);
  }
  // One local node per CMG core: nothing to choose between.
  const Object* pu0 = topology.pus().front();
  EXPECT_EQ(topology.local_numa_nodes(pu0->cpuset()).size(), 1u);
}

TEST(Power9V100, GpuMemoryVisibleAsHostNode) {
  Topology topology = power9_v100();
  unsigned gpu = 0;
  for (const Object* node : topology.numa_nodes()) {
    gpu += node->memory_kind() == MemoryKind::kGPU;
  }
  EXPECT_EQ(gpu, 2u);
}

}  // namespace
}  // namespace hetmem::topo
