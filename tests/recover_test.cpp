// Crash resilience (docs/RECOVERY.md): snapshot/restore byte-identity,
// never-partial-restore rejection of damaged files, watchdog verdicts, and
// circuit-breaker trip/probe/reclose schedules.
//
// The determinism claims are exact, in the style of tests/trace_test.cpp:
// a run that is killed at epoch N, snapshotted, restored into an
// identically-prepared testbed and continued must render the SAME decision
// log, byte for byte, as a run that was never interrupted — including the
// sampler's stochastic-rounding streams (exact, 1/10-subsampled, and
// adaptive-period variants).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/recover/breaker.hpp"
#include "hetmem/recover/snapshot.hpp"
#include "hetmem/recover/supervisor.hpp"
#include "hetmem/recover/watchdog.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/rng.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/tenant/tenant.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/trace/trace.hpp"

namespace {

using namespace hetmem;
using support::kGiB;
using support::kMiB;

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kBufferBytes = 1 * kGiB;

/// Identically-constructible testbed (tests/trace_test.cpp's Scenario):
/// Xeon with squeezed fast memory and three 1 GiB buffers parked on the
/// NVDIMM node, so every instance has the same buffer ids, placements and
/// rankings — the precondition for a restored run continuing byte-for-byte.
struct Scenario {
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  support::Bitmap initiator;
  unsigned fast = 0;
  unsigned slow = 0;
  std::vector<sim::BufferId> buffers;
  bool ok = false;

  Scenario()
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry),
        initiator(machine.topology().numa_node(0)->cpuset()) {
    if (!hmat::load_into(registry, hmat::generate(machine.topology())).ok()) {
      return;
    }
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        slow = node->logical_index();
      }
    }
    const std::uint64_t headroom = kBufferBytes + kBufferBytes / 2;
    const std::uint64_t fast_free = machine.available_bytes(fast);
    if (fast_free > headroom) {
      auto hog =
          machine.allocate(fast_free - headroom, fast, "resident.hog", 4096);
      if (!hog.ok()) return;
    }
    for (unsigned i = 0; i < 3; ++i) {
      auto buffer = machine.allocate(kBufferBytes, slow,
                                     "seg" + std::to_string(i), 1u << 16);
      if (!buffer.ok()) return;
      buffers.push_back(*buffer);
    }
    ok = true;
  }
};

runtime::RuntimePolicyOptions scenario_options() {
  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  return options;
}

trace::Trace rotation_trace(unsigned epochs) {
  Scenario probe;
  EXPECT_TRUE(probe.ok);
  trace::SynthOptions synth;
  synth.epochs = epochs;
  return trace::synthesize_rotation(probe.buffers, 6, 0.002, synth);
}

/// A trace holding `trace`'s epochs in [begin, end).
trace::Trace slice(const trace::Trace& trace, std::size_t begin,
                   std::size_t end) {
  trace::Trace out = trace;
  out.epochs.assign(trace.epochs.begin() + static_cast<std::ptrdiff_t>(begin),
                    trace.epochs.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

// ---------------------------------------------------------------------------
// Format: round trip, rejection of damage
// ---------------------------------------------------------------------------

/// Builds a snapshot with every section populated: buffers (live, migrated,
/// freed), tenants (live and dead), policy mid-run, armed fault sites, and
/// supervisor state.
recover::Snapshot rich_snapshot(Scenario& scenario, fault::FaultInjector& faults,
                                runtime::RuntimePolicy& policy,
                                recover::Supervisor& supervisor) {
  recover::CaptureSources sources;
  sources.machine = &scenario.machine;
  sources.allocator = &scenario.allocator;
  sources.policy = &policy;
  sources.faults = &faults;
  sources.supervisor = &supervisor;
  sources.machine_preset = "xeon_clx_1lm";
  return recover::capture(sources);
}

TEST(SnapshotFormatTest, SerializeParseIsAFixedPoint) {
  Scenario scenario;
  ASSERT_TRUE(scenario.ok);
  fault::FaultInjector faults(42);
  fault::FaultSpec spec;
  spec.probability = 0.25;
  faults.configure(fault::site::kMachineMigrateTransient, spec);
  for (int i = 0; i < 10; ++i) {
    (void)faults.should_fail(fault::site::kMachineMigrateTransient);
  }
  runtime::RuntimePolicyOptions options = scenario_options();
  options.sampler.sample_period = 10.0;
  runtime::RuntimePolicy policy(scenario.allocator, scenario.initiator,
                                options);
  recover::Supervisor supervisor(&faults);
  supervisor.attach(policy);
  trace::TraceReplayer replayer(policy);
  (void)replayer.replay(rotation_trace(12));

  const recover::Snapshot snap =
      rich_snapshot(scenario, faults, policy, supervisor);
  const std::string text = recover::serialize(snap);
  EXPECT_EQ(text.rfind("hetmem-snap/1\n", 0), 0u);

  auto parsed = recover::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  // Fixed point: serializing the parse reproduces the exact text — which
  // covers bit-exactness of every hexfloat field in one stroke.
  EXPECT_EQ(recover::serialize(*parsed), text);
  EXPECT_EQ(parsed->buffers_total, scenario.machine.total_buffer_count());
  EXPECT_EQ(parsed->decision_log, policy.engine().render_decision_log());
  EXPECT_TRUE(parsed->has_faults);
  EXPECT_EQ(parsed->fault_seed, 42u);
  EXPECT_TRUE(parsed->has_supervisor);
}

TEST(SnapshotFormatTest, RejectsTruncatedBitFlippedAndVersionBumpedFiles) {
  Scenario scenario;
  ASSERT_TRUE(scenario.ok);
  recover::CaptureSources sources;
  sources.machine = &scenario.machine;
  sources.allocator = &scenario.allocator;
  const std::string text = recover::serialize(recover::capture(sources));
  ASSERT_TRUE(recover::parse(text).ok());

  // Empty and foreign headers.
  EXPECT_FALSE(recover::parse("").ok());
  auto bumped = recover::parse("hetmem-snap/2\nend\n");
  ASSERT_FALSE(bumped.ok());
  EXPECT_NE(bumped.error().message.find("unsupported snapshot header"),
            std::string::npos);
  EXPECT_NE(bumped.error().message.find("line 1"), std::string::npos);

  // Truncation anywhere — mid-line, mid-record, before the sentinel — is
  // rejected, never partially accepted.
  for (const std::size_t keep :
       {text.size() - 4, text.size() / 2, text.size() / 3}) {
    auto truncated = recover::parse(text.substr(0, keep));
    EXPECT_FALSE(truncated.ok()) << "kept " << keep << " bytes";
  }
  auto no_end = recover::parse(text.substr(0, text.size() - 4));
  ASSERT_FALSE(no_end.ok());
  EXPECT_NE(no_end.error().message.find("truncated"), std::string::npos);

  // A single flipped digit still parses line-by-line but fails the
  // checksum — the tripwire for corruption that stays syntactically valid.
  std::string flipped = text;
  const std::size_t digit = flipped.find("astats ") + 7;
  flipped[digit] = flipped[digit] == '1' ? '2' : '1';
  auto corrupt = recover::parse(flipped);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.error().message.find("checksum mismatch"),
            std::string::npos);

  // Malformed records carry line diagnostics.
  auto garbled =
      recover::parse("hetmem-snap/1\nmachine two 0x0p+0\nend\n");
  ASSERT_FALSE(garbled.ok());
  EXPECT_NE(garbled.error().message.find("parse error at line 2"),
            std::string::npos);
  auto unknown = recover::parse("hetmem-snap/1\nbogus 1\nend\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().message.find("unknown record"),
            std::string::npos);
}

TEST(SnapshotFormatTest, RestoreRefusesMismatchedTopologyWithoutMutating) {
  Scenario scenario;
  ASSERT_TRUE(scenario.ok);
  recover::CaptureSources sources;
  sources.machine = &scenario.machine;
  sources.allocator = &scenario.allocator;
  recover::Snapshot snap = recover::capture(sources);
  snap.node_count += 1;  // a snapshot from some other machine shape

  sim::SimMachine other(topo::xeon_clx_1lm());
  attr::MemAttrRegistry registry(other.topology());
  alloc::HeterogeneousAllocator allocator(other, registry);
  recover::RestoreTargets targets;
  targets.machine = &other;
  targets.allocator = &allocator;
  const support::Status refused = recover::restore(snap, targets);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.error().message.find("topology mismatch"),
            std::string::npos);
  EXPECT_EQ(other.total_buffer_count(), 0u) << "nothing may be applied";
}

// ---------------------------------------------------------------------------
// The determinism gate: kill, restore, continue — byte-identical logs
// ---------------------------------------------------------------------------

/// Runs the full gate for one sampler configuration: the uninterrupted log
/// must equal the log of a run snapshotted (through TEXT, not in-memory
/// state) at `kill_epoch` and continued in a fresh identically-prepared
/// testbed.
void expect_restore_continues_byte_identically(
    const runtime::RuntimePolicyOptions& options, unsigned epochs,
    std::size_t kill_epoch) {
  const trace::Trace trace = rotation_trace(epochs);

  Scenario uninterrupted;
  ASSERT_TRUE(uninterrupted.ok);
  runtime::RuntimePolicy reference(uninterrupted.allocator,
                                   uninterrupted.initiator, options);
  trace::TraceReplayer ref_replayer(reference);
  (void)ref_replayer.replay(trace);
  const std::string want = reference.render_decision_log();
  ASSERT_FALSE(want.empty());

  // The crashing run: replay the prefix, snapshot, and "die".
  std::string text;
  {
    Scenario victim;
    ASSERT_TRUE(victim.ok);
    runtime::RuntimePolicy policy(victim.allocator, victim.initiator,
                                  options);
    trace::TraceReplayer replayer(policy);
    (void)replayer.replay(slice(trace, 0, kill_epoch));
    recover::CaptureSources sources;
    sources.machine = &victim.machine;
    sources.allocator = &victim.allocator;
    sources.policy = &policy;
    text = recover::serialize(recover::capture(sources));
  }

  // The restored run: fresh identical testbed, restore from the text,
  // continue with the remaining epochs.
  auto snap = recover::parse(text);
  ASSERT_TRUE(snap.ok()) << snap.error().message;
  Scenario restored;
  ASSERT_TRUE(restored.ok);
  runtime::RuntimePolicy policy(restored.allocator, restored.initiator,
                                options);
  recover::RestoreTargets targets;
  targets.machine = &restored.machine;
  targets.allocator = &restored.allocator;
  targets.policy = &policy;
  const support::Status applied = recover::restore(*snap, targets);
  ASSERT_TRUE(applied.ok()) << applied.error().message;
  trace::TraceReplayer replayer(policy);
  (void)replayer.replay(slice(trace, kill_epoch, trace.epochs.size()));

  EXPECT_EQ(policy.render_decision_log(), want);
  EXPECT_EQ(policy.engine().stats().accepted,
            reference.engine().stats().accepted);
}

TEST(SnapshotRestoreTest, ExactSamplingContinuesByteIdentically) {
  expect_restore_continues_byte_identically(scenario_options(), 24, 11);
}

TEST(SnapshotRestoreTest, SubsampledRngCursorsContinueByteIdentically) {
  // 1/10 subsampling consumes stochastic-rounding draws per sample: the
  // restored RNG cursors must resume mid-stream, not restart.
  runtime::RuntimePolicyOptions options = scenario_options();
  options.sampler.sample_period = 10.0;
  expect_restore_continues_byte_identically(options, 24, 13);
}

TEST(SnapshotRestoreTest, AdaptivePeriodLogContinuesByteIdentically) {
  // Adaptive mode: the controller's walked period trajectory (and its log,
  // which the policy renders) is part of the state.
  runtime::RuntimePolicyOptions options = scenario_options();
  options.sampler.sample_period = 2.0;
  options.sampler.adaptive = true;
  options.sampler.max_sample_period = 64.0;
  options.sampler.overhead_budget_fraction = 0.01;
  options.sampler.cost_model = [](const runtime::Epoch& epoch) {
    const double period =
        epoch.sample_period > 0.0 ? epoch.sample_period : 1.0;
    return epoch.duration_ns * 0.04 / period;
  };
  expect_restore_continues_byte_identically(options, 24, 9);
}

TEST(SnapshotRestoreTest, TenantChargesAndDeadTenantsSurvive) {
  Scenario scenario;
  ASSERT_TRUE(scenario.ok);
  tenant::TenantRegistry tenants;
  scenario.allocator.set_tenant_registry(&tenants);
  auto live = tenants.register_tenant("live", tenant::Priority::kNormal,
                                      tenant::TenantQuota{});
  ASSERT_TRUE(live.ok());
  auto doomed = tenants.register_tenant("doomed", tenant::Priority::kBestEffort,
                                        tenant::TenantQuota{});
  ASSERT_TRUE(doomed.ok());
  alloc::AllocRequest request;
  request.bytes = 64 * kMiB;
  request.initiator = scenario.initiator;
  request.label = "charged";
  request.tenant = *live;
  auto held = scenario.allocator.mem_alloc(request);
  ASSERT_TRUE(held.ok());
  // The doomed tenant holds a charge when it dies: its buffer stays live
  // and keeps the quota charged through the allocator's handle.
  alloc::AllocRequest doomed_request = request;
  doomed_request.bytes = 32 * kMiB;
  doomed_request.label = "orphaned";
  doomed_request.tenant = *doomed;
  auto orphaned = scenario.allocator.mem_alloc(doomed_request);
  ASSERT_TRUE(orphaned.ok());
  ASSERT_TRUE(tenants.deregister_tenant(*doomed).ok());

  recover::CaptureSources sources;
  sources.machine = &scenario.machine;
  sources.allocator = &scenario.allocator;
  sources.tenants = &tenants;
  auto snap = recover::parse(recover::serialize(recover::capture(sources)));
  ASSERT_TRUE(snap.ok()) << snap.error().message;

  Scenario fresh;
  ASSERT_TRUE(fresh.ok);
  tenant::TenantRegistry fresh_tenants;
  fresh.allocator.set_tenant_registry(&fresh_tenants);
  // Re-create the untracked allocation so the machines match slot-for-slot
  // (the allocator-owned buffer is restored by the charge-adoption pass).
  alloc::AllocRequest replayed = request;
  replayed.tenant = nullptr;
  auto placeholder = fresh.allocator.mem_alloc(replayed);
  ASSERT_TRUE(placeholder.ok());
  alloc::AllocRequest replay_orphan = doomed_request;
  replay_orphan.tenant = nullptr;
  auto orphan_placeholder = fresh.allocator.mem_alloc(replay_orphan);
  ASSERT_TRUE(orphan_placeholder.ok());
  recover::RestoreTargets targets;
  targets.machine = &fresh.machine;
  targets.allocator = &fresh.allocator;
  targets.tenants = &fresh_tenants;
  const support::Status applied = recover::restore(*snap, targets);
  ASSERT_TRUE(applied.ok()) << applied.error().message;

  tenant::TenantHandle restored_live = fresh_tenants.find("live");
  ASSERT_NE(restored_live, nullptr);
  EXPECT_EQ(restored_live->used_bytes(), 64 * kMiB)
      << "the live buffer's charge was re-adopted";
  EXPECT_EQ(fresh_tenants.find("doomed"), nullptr)
      << "dead tenants stay deregistered";
  // ... but the dead tenant's outstanding charge survives through the
  // allocator's handle, exactly as it would have in the original process.
  const tenant::TenantHandle orphan_owner =
      fresh.allocator.tenant_of(orphaned->buffer);
  ASSERT_NE(orphan_owner, nullptr);
  EXPECT_EQ(orphan_owner->name(), "doomed");
  EXPECT_FALSE(orphan_owner->live());
  EXPECT_EQ(orphan_owner->used_bytes(), 32 * kMiB);
  // The id space never rewinds: a new tenant gets a fresh id.
  auto next = fresh_tenants.register_tenant("after", tenant::Priority::kNormal,
                                            tenant::TenantQuota{});
  ASSERT_TRUE(next.ok());
  EXPECT_GT((*next)->id(), (*doomed)->id());
}

// ---------------------------------------------------------------------------
// Circuit breaker: state machine and deterministic schedules
// ---------------------------------------------------------------------------

recover::BreakerOptions tight_breaker() {
  recover::BreakerOptions options;
  options.failures_to_open = 3;
  options.successes_to_close = 2;
  options.cooldown_epochs = 2;
  return options;
}

TEST(CircuitBreakerTest, OpensAfterKFailuresProbesAndRecloses) {
  recover::CircuitBreaker breaker("migration", tight_breaker());
  EXPECT_EQ(breaker.state(), recover::BreakerState::kClosed);
  // K - 1 failures: still closed; a success resets the streak.
  breaker.on_failure(1);
  breaker.on_failure(2);
  breaker.on_success(3);
  breaker.on_failure(4);
  breaker.on_failure(5);
  EXPECT_EQ(breaker.state(), recover::BreakerState::kClosed);
  breaker.on_failure(6);
  EXPECT_EQ(breaker.state(), recover::BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().opens, 1u);

  // First cooldown window is exactly cooldown_epochs (full jitter over an
  // un-grown window collapses to the floor): the probe lands at trip + 2.
  EXPECT_FALSE(breaker.allow(7));
  EXPECT_EQ(breaker.stats().skipped, 1u);
  EXPECT_TRUE(breaker.allow(8));  // probe
  EXPECT_EQ(breaker.state(), recover::BreakerState::kHalfOpen);
  breaker.on_success(8);
  EXPECT_EQ(breaker.state(), recover::BreakerState::kHalfOpen);
  breaker.on_success(9);
  EXPECT_EQ(breaker.state(), recover::BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().recloses, 1u);
  EXPECT_FALSE(breaker.render_log().empty());
}

TEST(CircuitBreakerTest, FailedProbeReopensWithGrownWindow) {
  recover::CircuitBreaker breaker("migration", tight_breaker());
  for (std::uint64_t e = 1; e <= 3; ++e) breaker.on_failure(e);
  ASSERT_EQ(breaker.state(), recover::BreakerState::kOpen);
  ASSERT_TRUE(breaker.allow(5));  // past the 2-epoch cooldown: probe
  breaker.on_failure(5);          // probe fails
  EXPECT_EQ(breaker.state(), recover::BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().opens, 2u);
  // The second window is jittered over a grown range but never below the
  // floor and never beyond floor * multiplier.
  const recover::CircuitBreaker::State state = breaker.export_state();
  EXPECT_GE(state.reopen_at_epoch, 5u + 2u);
  EXPECT_LE(state.reopen_at_epoch, 5u + 4u);
}

TEST(CircuitBreakerTest, ScheduleIsDeterministicPerSeedAndSurvivesRestore) {
  for (const std::uint64_t seed : {7ull, 99ull, 0xabcdefull}) {
    recover::BreakerOptions options = tight_breaker();
    options.backoff.seed = seed;
    recover::CircuitBreaker a("migration", options);
    recover::CircuitBreaker b("migration", options);
    recover::CircuitBreaker resumed("migration", options);
    // Drive a and b through an identical failure-heavy history; restore
    // `resumed` from a's mid-point state and continue in lockstep.
    for (std::uint64_t epoch = 0; epoch < 40; ++epoch) {
      if (epoch == 20) resumed.restore_state(a.export_state());
      const bool failing = epoch % 7 != 6;
      auto drive = [&](recover::CircuitBreaker& breaker) {
        if (!breaker.allow(epoch)) return;
        if (failing) {
          breaker.on_failure(epoch);
        } else {
          breaker.on_success(epoch);
        }
      };
      drive(a);
      drive(b);
      if (epoch >= 20) drive(resumed);
    }
    EXPECT_EQ(a.render_log(), b.render_log()) << "seed " << seed;
    EXPECT_EQ(a.export_state().reopen_at_epoch,
              resumed.export_state().reopen_at_epoch)
        << "seed " << seed;
    EXPECT_EQ(a.stats().opens, resumed.stats().opens) << "seed " << seed;
    EXPECT_GE(a.stats().opens, 2u) << "the history must actually trip";
  }
}

// ---------------------------------------------------------------------------
// Watchdog verdicts
// ---------------------------------------------------------------------------

TEST(WatchdogTest, DetectsStallSignatureAndDeadline) {
  recover::WatchdogOptions options;
  options.epoch_deadline_ns = 1000.0;
  options.stall_epochs_to_trip = 2;
  recover::Watchdog watchdog(nullptr, options);

  runtime::EngineStats engine;
  // Progress without failures: healthy.
  engine.accepted = 1;
  auto verdict = watchdog.observe_epoch(0, 500.0, engine);
  EXPECT_TRUE(verdict.healthy());
  EXPECT_TRUE(verdict.migration_active);

  // Failures without progress: failing immediately, stalled on the 2nd.
  engine.failed = 3;
  verdict = watchdog.observe_epoch(1, 500.0, engine);
  EXPECT_TRUE(verdict.migration_failing);
  EXPECT_FALSE(verdict.migration_stalled);
  engine.failed = 6;
  verdict = watchdog.observe_epoch(2, 500.0, engine);
  EXPECT_TRUE(verdict.migration_stalled);
  EXPECT_EQ(watchdog.stats().migration_stall_trips, 1u);

  // Progress resets the streak; a deadline overrun is flagged on its own.
  engine.accepted = 2;
  verdict = watchdog.observe_epoch(3, 1500.0, engine);
  EXPECT_FALSE(verdict.migration_failing);
  EXPECT_TRUE(verdict.epoch_overrun);
  EXPECT_EQ(watchdog.stats().overruns, 1u);
}

TEST(WatchdogTest, InjectedOverrunAndRestoredBaselines) {
  fault::FaultInjector faults(7);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.max_count = 1;
  faults.configure(fault::site::kRuntimeEpochOverrun, spec);
  recover::Watchdog watchdog(&faults);
  runtime::EngineStats engine;
  EXPECT_TRUE(watchdog.observe_epoch(0, 0.0, engine).epoch_overrun);
  EXPECT_FALSE(watchdog.observe_epoch(1, 0.0, engine).epoch_overrun)
      << "max_count exhausts the site";

  // Restore on a fresh watchdog: the cumulative-counter baseline rides
  // along, so the first post-restore epoch sees a delta, not a cliff.
  engine.failed = 100;
  (void)watchdog.observe_epoch(2, 0.0, engine);
  recover::Watchdog resumed(nullptr);
  resumed.restore_state(watchdog.export_state());
  engine.accepted = 1;  // progress alongside the old failure count
  const auto verdict = resumed.observe_epoch(3, 0.0, engine);
  EXPECT_FALSE(verdict.migration_failing)
      << "failed stayed at 100: no new failures after restore";
}

// ---------------------------------------------------------------------------
// Supervisor: a wedged migration path degrades to placement-only service
// ---------------------------------------------------------------------------

TEST(SupervisorTest, MigrationStallOpensBreakerThenProbesAndRecloses) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Scenario scenario;
    ASSERT_TRUE(scenario.ok);
    fault::FaultInjector faults(seed);
    scenario.machine.set_fault_injector(&faults);

    runtime::RuntimePolicy policy(scenario.allocator, scenario.initiator,
                                  scenario_options());
    recover::SupervisorOptions options;
    options.migration_breaker.failures_to_open = 3;
    options.migration_breaker.successes_to_close = 2;
    options.migration_breaker.cooldown_epochs = 2;
    recover::Supervisor supervisor(&faults, options);
    supervisor.attach(policy);
    trace::TraceReplayer replayer(policy);
    const trace::Trace trace = rotation_trace(48);

    // Phase 1: a permanently wedged migration path. Every attempt fails,
    // the watchdog sees failures-without-progress, and the breaker opens
    // within K = 3 failing epochs.
    fault::FaultSpec stall;
    stall.probability = 1.0;
    faults.configure(fault::site::kMachineMigrateStall, stall);
    (void)replayer.replay(slice(trace, 0, 12));
    EXPECT_GE(supervisor.migration_breaker().stats().opens, 1u)
        << "seed " << seed;
    EXPECT_GT(supervisor.migration_breaker().stats().skipped, 0u)
        << "open epochs must short-circuit the engine pass (seed " << seed
        << ")";
    EXPECT_GT(policy.engine().stats().failed, 0u);

    // Placement-only service stayed up the whole time: the classifier kept
    // observing epochs even while the engine was gated off.
    EXPECT_GT(policy.sampler().epochs_emitted(), 0u);

    // Phase 2: the stall clears; the next half-open probe succeeds and the
    // breaker recloses after the clean streak.
    fault::FaultSpec clear;
    clear.probability = 0.0;
    faults.configure(fault::site::kMachineMigrateStall, clear);
    (void)replayer.replay(slice(trace, 12, 48));
    EXPECT_GE(supervisor.migration_breaker().stats().recloses, 1u)
        << "seed " << seed;
    EXPECT_EQ(supervisor.migration_breaker().state(),
              recover::BreakerState::kClosed)
        << "seed " << seed;
  }
}

TEST(SupervisorTest, BreakerLookupAndLog) {
  recover::Supervisor supervisor;
  EXPECT_NE(supervisor.breaker("migration"), nullptr);
  EXPECT_NE(supervisor.breaker("evacuation"), nullptr);
  EXPECT_EQ(supervisor.breaker("nonsense"), nullptr);
  EXPECT_TRUE(supervisor.render_log().empty());
}

// ---------------------------------------------------------------------------
// Kill-at-random-epoch chaos (named for the TSan lane's
// `ctest -R 'Concurrency|InterleavingFuzz'` chaos set)
// ---------------------------------------------------------------------------

TEST(RecoveryConcurrencyTest, KillAtRandomEpochRestoresAcrossThreeSeeds) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    support::Xoshiro256 rng(seed);
    const unsigned kill_after = 2 + static_cast<unsigned>(rng.next_below(6));

    // The "daemon": a live multithreaded workload with an attached policy.
    Scenario victim;
    ASSERT_TRUE(victim.ok);
    sim::Array<double> streamed(victim.machine, victim.buffers[0]);
    sim::Array<double> chased(victim.machine, victim.buffers[1]);
    sim::ExecutionContext exec(victim.machine, victim.initiator, kThreads);
    runtime::RuntimePolicy policy(victim.allocator, victim.initiator,
                                  scenario_options());
    policy.attach(exec, [&] {
      streamed.refresh_model();
      chased.refresh_model();
    });
    auto run_phases = [&](unsigned count) {
      for (unsigned phase = 0; phase < count; ++phase) {
        exec.run_phase("stream", kThreads,
                       [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                           std::size_t end) {
                         if (begin >= end) return;
                         streamed.record_bulk_read(ctx, 256.0 * kMiB);
                         chased.record_bulk_random_reads(ctx, 1e6);
                       });
      }
    };
    run_phases(kill_after);

    // Kill: serialize between epochs, drop the whole testbed on the floor.
    recover::CaptureSources sources;
    sources.machine = &victim.machine;
    sources.allocator = &victim.allocator;
    sources.policy = &policy;
    const std::string text = recover::serialize(recover::capture(sources));
    const alloc::AllocatorStats at_kill = victim.allocator.stats();
    const std::size_t live_at_kill = victim.machine.live_buffer_count();

    // Restore into a fresh identically-prepared testbed and keep serving.
    auto snap = recover::parse(text);
    ASSERT_TRUE(snap.ok()) << snap.error().message;
    Scenario restored;
    ASSERT_TRUE(restored.ok);
    sim::Array<double> streamed2(restored.machine, restored.buffers[0]);
    sim::Array<double> chased2(restored.machine, restored.buffers[1]);
    sim::ExecutionContext exec2(restored.machine, restored.initiator,
                                kThreads);
    runtime::RuntimePolicy policy2(restored.allocator, restored.initiator,
                                   scenario_options());
    policy2.attach(exec2, [&] {
      streamed2.refresh_model();
      chased2.refresh_model();
    });
    recover::RestoreTargets targets;
    targets.machine = &restored.machine;
    targets.allocator = &restored.allocator;
    targets.policy = &policy2;
    const support::Status applied = recover::restore(*snap, targets);
    ASSERT_TRUE(applied.ok()) << applied.error().message;

    EXPECT_EQ(restored.machine.live_buffer_count(), live_at_kill)
        << "seed " << seed;
    EXPECT_EQ(restored.allocator.stats().allocations, at_kill.allocations)
        << "seed " << seed;
    EXPECT_EQ(policy2.sampler().epochs_emitted(),
              policy.sampler().epochs_emitted())
        << "seed " << seed;
    const std::string log_at_kill = policy.engine().render_decision_log();
    EXPECT_EQ(policy2.engine().render_decision_log(), log_at_kill)
        << "seed " << seed;

    const std::uint64_t epochs_before = policy2.sampler().epochs_emitted();
    for (unsigned phase = 0; phase < 4; ++phase) {
      exec2.run_phase("stream", kThreads,
                      [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                          std::size_t end) {
                        if (begin >= end) return;
                        streamed2.record_bulk_read(ctx, 256.0 * kMiB);
                        chased2.record_bulk_random_reads(ctx, 1e6);
                      });
    }
    EXPECT_GT(policy2.sampler().epochs_emitted(), epochs_before)
        << "the restored service keeps emitting epochs (seed " << seed << ")";
  }
}

}  // namespace
