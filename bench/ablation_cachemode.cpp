// Ablation A10 (paper §II-A/§II-B): hardware-managed cache mode vs
// explicitly managed flat mode — the performance/productivity trade-off
// that motivates the whole paper.
//
// STREAM Triad on the KNL in Quadrant/Cache mode (MCDRAM as a 16 GiB
// hardware cache, zero application changes) vs SNC-4 Flat mode with the
// Bandwidth criterion (one-line application change through this library):
//  - small arrays: cache mode is automatically fast (resident in MCDRAM);
//  - large arrays: the cache thrashes and Flat+attributes keeps whatever
//    fits in MCDRAM at full speed ("its performance may be lower than the
//    Flat mode if the application memory allocations are carefully tuned").
// The same comparison on the Xeon: 2-Level-Memory vs 1LM with attributes.
#include "common.hpp"

#include "hetmem/apps/stream.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

double run_forced(sim::SimMachine& machine, unsigned node,
                  std::uint64_t total_bytes, unsigned threads) {
  apps::StreamConfig config;
  config.declared_total_bytes = total_bytes;
  config.backing_elements = 1u << 16;
  config.threads = threads;
  config.iterations = 3;
  apps::BufferPlacement placement;
  placement.forced_node = node;
  auto runner = apps::StreamRunner::create(
      machine, nullptr, machine.topology().numa_node(0)->cpuset(), config,
      placement);
  if (!runner.ok()) return 0.0;
  auto result = (*runner)->run_triad();
  return result.ok() ? result->triad_bytes_per_second / 1e9 : 0.0;
}

double run_by_bandwidth(bench::Testbed& bed, std::uint64_t total_bytes,
                        unsigned threads) {
  apps::StreamConfig config;
  config.declared_total_bytes = total_bytes;
  config.backing_elements = 1u << 16;
  config.threads = threads;
  config.iterations = 3;
  apps::BufferPlacement placement;
  placement.attribute = attr::kBandwidth;
  auto runner = apps::StreamRunner::create(
      *bed.machine, bed.allocator.get(),
      bed.topology().numa_node(0)->cpuset(), config, placement);
  if (!runner.ok()) return 0.0;
  auto result = (*runner)->run_triad();
  return result.ok() ? result->triad_bytes_per_second / 1e9 : 0.0;
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Ablation A10: hardware cache mode vs flat mode + attributes "
      "(STREAM Triad GB/s)").c_str());

  {
    support::TextTable table({"Array footprint", "KNL Cache mode (automatic)",
                              "KNL Flat + Bandwidth attr"});
    for (double gib : {4.0, 12.0, 48.0}) {
      const auto bytes = static_cast<std::uint64_t>(gib * static_cast<double>(kGiB));
      sim::SimMachine cache_mode(topo::knl_quadrant_cache());
      cache_mode.set_llc_bytes(32ull * 1024 * 1024);
      const double cached = run_forced(cache_mode, 0, bytes, 64);

      // Flat mode: 4 clusters used together via 4x16 threads is beyond this
      // harness; compare one cluster's share (16 threads, bytes/4) scaled
      // by 4 — the per-cluster allocator decision is what differs.
      bench::Testbed flat = bench::make_knl();
      const double flat_rate = 4.0 * run_by_bandwidth(flat, bytes / 4, 16);

      table.add_row({support::format_fixed(gib, 1) + " GiB",
                     support::format_fixed(cached, 1),
                     support::format_fixed(flat_rate, 1)});
    }
    std::printf("KNL (16GiB MCDRAM cache vs 4x4GiB flat MCDRAM):\n%s",
                table.render().c_str());
  }

  {
    support::TextTable table({"Array footprint", "Xeon 2LM (automatic)",
                              "Xeon 1LM + Bandwidth attr"});
    for (double gib : {22.4, 89.4, 350.0}) {
      const auto bytes = static_cast<std::uint64_t>(gib * static_cast<double>(kGiB));
      sim::SimMachine two_level(topo::xeon_clx_2lm());
      const double cached = run_forced(two_level, 0, bytes, 20);

      bench::Testbed one_level = bench::make_xeon();
      const double flat_rate = run_by_bandwidth(one_level, bytes, 20);
      table.add_row({support::format_fixed(gib, 1) + " GiB",
                     support::format_fixed(cached, 1),
                     support::format_fixed(flat_rate, 1)});
    }
    std::printf("\nXeon (192GB DRAM cache over NVDIMM vs explicit 1LM):\n%s",
                table.render().c_str());
  }

  std::printf(
      "\nShape check: cache mode matches tuned flat placement while the\n"
      "working set is cache-resident, then collapses once it thrashes —\n"
      "while the attribute-tuned flat allocation degrades gracefully (it\n"
      "keeps what fits on the fast tier and falls back knowingly). This is\n"
      "the productivity-vs-performance trade-off of paper sec. II-A/II-B.\n");
  return 0;
}
