// Power-aware placement ablation: BENCH_power.json (docs/POWER.md).
//
// Two deterministic scenarios on the KNL SNC-4 machine (4x 24 GiB DRAM +
// 4x 4 GiB MCDRAM, static floor 15.2 W under the docs/POWER.md calibration),
// everything computed from the perf/power models — no wall clock, no RNG;
// the same binary writes the same JSON every run.
//
//   cap        six 1 GiB streaming buffers placed one at a time, traffic
//              modeled between placements (an occupied node streams at its
//              effective read bandwidth). "plain" first-fits the bandwidth
//              ranking and ignores the watt budget; "aware" places through
//              PowerGovernor::placement_ranking and runs the governor each
//              epoch, so placement flips to bandwidth-per-watt near the cap
//              and the governor drains the over-budget node.
//   throttle   a hot MCDRAM node pushes draw over the cap while its only
//              drain destination is full: the governor's offender streak
//              escalates to thermal-throttle events, the HealthMonitor
//              quarantines the node (rankings sink it), freeing the
//              destination lets the drain evacuate the buffers, and the
//              clean-streak hysteresis walks the node back to healthy.
//
// Gates (--check exits 1 when any fails):
//   cap        the plain placement breaches the cap while the governed one
//              lands under it — or, if plain happens to fit, the governed
//              placement must win >= 10% bandwidth-per-watt;
//   throttle   sustained over-cap pressure produced throttle events and a
//              quarantine, AND the quarantined node sank to the bottom of
//              the resilient bandwidth ranking;
//   evacuate   once the destination had room, the governor drained every
//              hot buffer off the throttled node through the shared engine
//              budget;
//   recover    with pressure gone the node returned to healthy, the ranking
//              restored it, and machine draw settled under the cap.
//
// Usage: ablation_power [--out FILE] [--check]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "hetmem/health/health.hpp"
#include "hetmem/power/governor.hpp"
#include "hetmem/power/power.hpp"
#include "hetmem/runtime/engine.hpp"
#include "hetmem/simmem/perf_model.hpp"

namespace {

using namespace hetmem;
using support::kGiB;
using support::kMiB;

struct Testbed {
  Testbed()
      : machine(topo::knl_snc4_flat()),
        registry(machine.topology()),
        allocator(machine, registry),
        initiator(machine.topology().numa_node(0)->cpuset()),
        engine(allocator, initiator, {}) {
    (void)hmat::load_into(registry, hmat::generate(machine.topology()));
    (void)power::feed_registry(registry, machine);
    allocator.set_trace_enabled(false);
  }

  [[nodiscard]] unsigned cluster0_dram() const { return 0; }
  [[nodiscard]] unsigned cluster0_hbm() const {
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kHBM &&
          node->cpuset().intersects(initiator)) {
        return node->logical_index();
      }
    }
    return 0;
  }

  [[nodiscard]] double saturated_read_bw(unsigned node) const {
    return machine.perf_model().effective(node, kGiB, true).read_bw;
  }

  /// Saturated dynamic watts of one node: read bandwidth * read energy.
  [[nodiscard]] double saturated_dynamic_watts(unsigned node) const {
    return saturated_read_bw(node) *
           machine.perf_model().node_power(node).read_nj_per_byte * 1e-9;
  }

  [[nodiscard]] double machine_draw() const {
    double total = 0.0;
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      total += machine.power_draw_watts(node->logical_index());
    }
    return total;
  }

  /// One modeled second of workload: every node holding a hot buffer
  /// streams at its effective read bandwidth; idle nodes record zero
  /// traffic so their EMA decays.
  void traffic_epoch(const std::vector<sim::BufferId>& hot) {
    std::vector<std::uint64_t> read(machine.topology().numa_nodes().size(), 0);
    for (sim::BufferId buffer : hot) {
      const sim::BufferInfo info = machine.info(buffer);
      if (info.freed) continue;
      read[info.node] =
          static_cast<std::uint64_t>(saturated_read_bw(info.node));
    }
    for (unsigned node = 0; node < read.size(); ++node) {
      machine.record_node_traffic(node, read[node], 0, 1e9);
    }
  }

  /// Sum of effective read bandwidth over nodes holding a hot buffer — the
  /// node-saturation model of the workload's aggregate bandwidth.
  [[nodiscard]] double aggregate_bw(const std::vector<sim::BufferId>& hot) const {
    std::vector<bool> occupied(machine.topology().numa_nodes().size(), false);
    double total = 0.0;
    for (sim::BufferId buffer : hot) {
      const sim::BufferInfo info = machine.info(buffer);
      if (info.freed || occupied[info.node]) continue;
      occupied[info.node] = true;
      total += saturated_read_bw(info.node);
    }
    return total;
  }

  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  support::Bitmap initiator;
  runtime::MigrationEngine engine;
};

/// The cap both scenarios use: static floor plus half of one saturated
/// MCDRAM stream. Room for DRAM-resident work, not for a hot MCDRAM node.
double pick_cap(const Testbed& bed) {
  double floor = 0.0;
  for (const topo::Object* node : bed.machine.topology().numa_nodes()) {
    floor += bed.machine.power_draw_watts(node->logical_index());
  }
  return floor + 0.5 * bed.saturated_dynamic_watts(bed.cluster0_hbm());
}

constexpr int kBuffers = 6;
constexpr int kSettleEpochs = 8;

struct CapResult {
  double cap_watts = 0.0;
  double final_draw_watts = 0.0;
  double aggregate_gbps = 0.0;
  double bw_per_watt = 0.0;  // GB/s per watt
  std::uint64_t governor_drains = 0;
  std::vector<unsigned> placement;  // landing node per buffer, in order
};

/// Places kBuffers streaming buffers one at a time with a traffic epoch in
/// between, `governed` deciding whether the PowerGovernor both ranks the
/// placement and runs each epoch.
CapResult run_cap_scenario(bool governed) {
  Testbed bed;
  CapResult result;
  result.cap_watts = pick_cap(bed);
  bed.machine.set_power_cap_watts(result.cap_watts);
  power::PowerGovernor governor(bed.allocator, bed.engine, bed.initiator);

  const attr::Initiator initiator = attr::Initiator::from_cpuset(bed.initiator);
  std::vector<sim::BufferId> hot;
  std::uint64_t epoch = 0;
  for (int i = 0; i < kBuffers; ++i) {
    const std::vector<attr::TargetValue> ranking =
        governed ? governor.placement_ranking(attr::kBandwidth)
                 : bed.registry.targets_ranked(attr::kBandwidth, initiator);
    for (const attr::TargetValue& target : ranking) {
      const unsigned node = target.target->logical_index();
      if (bed.machine.available_bytes(node) < kGiB) continue;
      auto buffer = bed.machine.allocate(kGiB, node,
                                         "stream." + std::to_string(i), 4096);
      if (!buffer.ok()) continue;
      hot.push_back(*buffer);
      result.placement.push_back(node);
      break;
    }
    bed.traffic_epoch(hot);
    if (governed) (void)governor.run_epoch(++epoch, 16);
  }
  for (int i = 0; i < kSettleEpochs; ++i) {
    bed.traffic_epoch(hot);
    if (governed) (void)governor.run_epoch(++epoch, 16);
  }

  result.final_draw_watts = bed.machine_draw();
  result.aggregate_gbps = bed.aggregate_bw(hot) / 1e9;
  result.bw_per_watt = result.final_draw_watts > 0.0
                           ? result.aggregate_gbps / result.final_draw_watts
                           : 0.0;
  result.governor_drains = governor.stats().drained_buffers;
  return result;
}

struct EpochRow {
  std::uint64_t epoch = 0;
  double draw_watts = 0.0;
  health::HealthState state = health::HealthState::kHealthy;
  std::uint64_t throttle_events = 0;  // cumulative, governor's count
};

struct ThrottleResult {
  double cap_watts = 0.0;
  unsigned victim = 0;
  std::vector<EpochRow> timeline;
  std::uint64_t throttle_events = 0;
  std::uint64_t telemetry_events = 0;
  std::uint64_t drained_buffers = 0;
  bool reached_quarantine = false;
  bool sank_while_quarantined = false;
  bool victim_clear = false;
  bool recovered_healthy = false;
  bool ranking_restored = false;
  double final_draw_watts = 0.0;
  std::string governor_log;
};

/// True when `node` ranks last among the resilient bandwidth targets.
bool ranks_last(const Testbed& bed, unsigned node) {
  const auto ranked = bed.registry.targets_ranked_resilient(
      attr::kBandwidth, attr::Initiator::from_cpuset(bed.initiator),
      topo::LocalityFlags::kIntersecting);
  return !ranked.empty() && ranked.back().target->logical_index() == node;
}

ThrottleResult run_throttle_scenario() {
  Testbed bed;
  ThrottleResult result;
  result.cap_watts = pick_cap(bed);
  bed.machine.set_power_cap_watts(result.cap_watts);

  const unsigned hbm = bed.cluster0_hbm();
  const unsigned dram = bed.cluster0_dram();
  result.victim = hbm;

  // Resident workload fills the only intersecting drain destination.
  const std::uint64_t fill = bed.machine.available_bytes(dram) - 512 * kMiB;
  auto filler = bed.machine.allocate(fill, dram, "resident", 4096);
  if (!filler.ok()) return result;

  std::vector<sim::BufferId> hot;
  for (int i = 0; i < 2; ++i) {
    auto buffer =
        bed.machine.allocate(kGiB, hbm, "hot." + std::to_string(i), 4096);
    if (buffer.ok()) hot.push_back(*buffer);
  }

  health::HealthMonitor monitor(bed.machine, bed.registry);
  power::PowerGovernor governor(bed.allocator, bed.engine, bed.initiator);

  bool quarantined_checked = false;
  for (std::uint64_t epoch = 1; epoch <= 16; ++epoch) {
    if (epoch == 7) (void)bed.machine.free(*filler);  // phase ends: room opens
    bed.traffic_epoch(hot);
    (void)governor.run_epoch(epoch, 16);
    (void)monitor.poll();
    EpochRow row;
    row.epoch = epoch;
    row.draw_watts = bed.machine_draw();
    row.state = monitor.state(hbm);
    row.throttle_events = governor.stats().throttle_events;
    result.timeline.push_back(row);
    if (row.state == health::HealthState::kQuarantined) {
      result.reached_quarantine = true;
      if (!quarantined_checked) {
        quarantined_checked = true;
        result.sank_while_quarantined = ranks_last(bed, hbm);
      }
    }
  }

  result.throttle_events = governor.stats().throttle_events;
  result.telemetry_events =
      bed.machine.node_telemetry(hbm).thermal_throttle_events;
  result.drained_buffers = governor.stats().drained_buffers;
  result.victim_clear = bed.machine.live_buffers_on(hbm).empty();
  result.recovered_healthy =
      monitor.state(hbm) == health::HealthState::kHealthy;
  result.ranking_restored = !ranks_last(bed, hbm);
  result.final_draw_watts = bed.machine_draw();
  result.governor_log = governor.render_log();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_power.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::cerr << "usage: ablation_power [--out FILE] [--check]\n";
      return 2;
    }
  }

  const CapResult plain = run_cap_scenario(/*governed=*/false);
  const CapResult aware = run_cap_scenario(/*governed=*/true);
  const ThrottleResult episode = run_throttle_scenario();

  const bool plain_breaches = plain.final_draw_watts > plain.cap_watts;
  const bool cap_ok = plain_breaches &&
                      aware.final_draw_watts <= aware.cap_watts;
  const bool tradeoff_ok =
      plain_breaches || aware.bw_per_watt >= 1.1 * plain.bw_per_watt;
  const bool throttle_ok = episode.throttle_events >= 1 &&
                           episode.telemetry_events >= 1 &&
                           episode.reached_quarantine &&
                           episode.sank_while_quarantined;
  const bool evacuate_ok =
      episode.drained_buffers >= 2 && episode.victim_clear;
  const bool recover_ok = episode.recovered_healthy &&
                          episode.ranking_restored &&
                          episode.final_draw_watts <= episode.cap_watts;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 2;
  }
  bench::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("hetmem.bench.power/1");
  json.key("fixture").value("knl_snc4_flat");
  json.key("cap_watts").value(plain.cap_watts);
  json.key("cap").begin_object();
  for (const auto* pair : {&plain, &aware}) {
    json.key(pair == &plain ? "plain" : "aware").begin_object();
    json.key("final_draw_watts").value(pair->final_draw_watts);
    json.key("aggregate_gbps").value(pair->aggregate_gbps);
    json.key("gbps_per_watt").value(pair->bw_per_watt);
    json.key("governor_drains").value(pair->governor_drains);
    json.key("placement").begin_array();
    for (unsigned node : pair->placement) json.value(node);
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.key("throttle").begin_object();
  json.key("victim").value(episode.victim);
  json.key("throttle_events").value(episode.throttle_events);
  json.key("telemetry_events").value(episode.telemetry_events);
  json.key("drained_buffers").value(episode.drained_buffers);
  json.key("final_draw_watts").value(episode.final_draw_watts);
  json.key("timeline").begin_array();
  for (const EpochRow& row : episode.timeline) {
    json.begin_object();
    json.key("epoch").value(row.epoch);
    json.key("draw_watts").value(row.draw_watts);
    json.key("state").value(health::health_state_name(row.state));
    json.key("throttle_events").value(row.throttle_events);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("gates").begin_object();
  json.key("cap").value(cap_ok);
  json.key("tradeoff").value(tradeoff_ok);
  json.key("throttle").value(throttle_ok);
  json.key("evacuate").value(evacuate_ok);
  json.key("recover").value(recover_ok);
  json.end_object();
  json.end_object();
  out << '\n';
  out.close();

  std::cout << "wrote " << out_path << "\n";
  std::cout << "cap " << support::format_fixed(plain.cap_watts, 1)
            << " W: plain " << support::format_fixed(plain.final_draw_watts, 1)
            << " W @ " << support::format_fixed(plain.aggregate_gbps, 1)
            << " GB/s, governed "
            << support::format_fixed(aware.final_draw_watts, 1) << " W @ "
            << support::format_fixed(aware.aggregate_gbps, 1) << " GB/s ("
            << aware.governor_drains << " drain(s))\n";
  std::cout << "throttle episode: " << episode.throttle_events
            << " throttle event(s), victim node " << episode.victim << " "
            << (episode.reached_quarantine ? "quarantined" : "NOT quarantined")
            << ", " << episode.drained_buffers << " buffer(s) evacuated, "
            << (episode.recovered_healthy ? "recovered" : "NOT recovered")
            << "\n";
  std::cout << "gates: cap " << (cap_ok ? "ok" : "FAIL") << ", tradeoff "
            << (tradeoff_ok ? "ok" : "FAIL") << ", throttle "
            << (throttle_ok ? "ok" : "FAIL") << ", evacuate "
            << (evacuate_ok ? "ok" : "FAIL") << ", recover "
            << (recover_ok ? "ok" : "FAIL") << "\n";

  const bool all_ok =
      cap_ok && tradeoff_ok && throttle_ok && evacuate_ok && recover_ok;
  if (!all_ok) {
    std::cout << "governor decisions:\n" << episode.governor_log;
  }
  if (check && !all_ok) {
    std::cerr << "FAIL: power ablation gates did not hold\n";
    return 1;
  }
  return 0;
}
