// Multi-tenant overload stress harness: BENCH_tenants.json.
//
// Sixteen mixed-priority tenants (3 critical, 5 normal, 8 best-effort — one
// of them a noisy neighbor with a huge appetite and a hard total cap) share
// one xeon_clx_1lm machine through the tenant-aware admission path
// (docs/TENANCY.md). Everything is deterministic: fixed chunk schedules,
// modeled (perf-model) throughput instead of wall time, and a seeded
// Backoff for the retry-convergence gate — the same binary produces the
// same JSON every run.
//
// Gates (--check exits 1 when any fails):
//   isolation   every critical tenant's modeled throughput under full
//               contention stays >= 90% of its isolated-run throughput;
//   fairness    every tenant holds >= 90% of min(its demand, its weighted
//               fair share of the machine) — the noisy neighbor cannot
//               starve anyone, and its own cap holds;
//   degradation under real memory pressure best-effort requests are shed
//               with machine-readable retry-after hints that converge under
//               jittered backoff while critical requests keep placing;
//   arbitration the GlobalArbiter's migration slices order by priority.
//
// Usage: stress_tenants [--out FILE] [--check]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "hetmem/simmem/perf_model.hpp"
#include "hetmem/runtime/engine.hpp"
#include "hetmem/tenant/arbiter.hpp"
#include "hetmem/tenant/backoff.hpp"
#include "hetmem/tenant/tenant.hpp"

namespace {

using namespace hetmem;
using support::kGiB;

constexpr std::uint64_t kChunk = kGiB;

struct TenantSpec {
  std::string name;
  tenant::Priority priority = tenant::Priority::kNormal;
  double share_weight = 1.0;
  std::uint64_t total_cap = UINT64_MAX;   // UINT64_MAX = unlimited
  std::uint64_t dram_cap = UINT64_MAX;
  std::uint64_t demand_bytes = 0;
  std::uint64_t chunk_bytes = kChunk;
  unsigned package = 0;  // which socket's cpuset anchors its requests
};

// 3 critical + 5 normal + 8 best-effort; be.0 is the noisy neighbor. The
// schedule is sized so that critical demand always fits the DRAM left over
// by the others' DRAM tier caps — the gates measure policy, not luck.
std::vector<TenantSpec> make_specs() {
  std::vector<TenantSpec> specs;
  for (unsigned i = 0; i < 3; ++i) {
    specs.push_back({"crit." + std::to_string(i), tenant::Priority::kCritical,
                     4.0, UINT64_MAX, UINT64_MAX, 64 * kGiB, kChunk, i % 2});
  }
  for (unsigned i = 0; i < 5; ++i) {
    specs.push_back({"norm." + std::to_string(i), tenant::Priority::kNormal,
                     2.0, UINT64_MAX, 8 * kGiB, 40 * kGiB, kChunk, i % 2});
  }
  for (unsigned i = 0; i < 8; ++i) {
    TenantSpec spec{"be." + std::to_string(i), tenant::Priority::kBestEffort,
                    1.0, UINT64_MAX, 4 * kGiB, 30 * kGiB, kChunk, i % 2};
    if (i == 0) {
      // Noisy neighbor: wants 600 GiB, capped at 512 GiB, 4 GiB bites.
      spec.demand_bytes = 600 * kGiB;
      spec.total_cap = 512 * kGiB;
      spec.chunk_bytes = 4 * kGiB;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct Testbed {
  Testbed()
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry) {
    hmat::GenerateOptions options;
    options.local_only = false;
    (void)hmat::load_into(registry, hmat::generate(machine.topology(), options));
    allocator.set_trace_enabled(false);
    allocator.set_tenant_registry(&tenants);
  }

  support::Bitmap initiator(unsigned package) const {
    // Node 0 is socket 0's DRAM, node 1 socket 1's.
    return machine.topology().numa_node(package)->cpuset();
  }

  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  tenant::TenantRegistry tenants;
};

struct TenantRun {
  TenantSpec spec;
  tenant::TenantHandle handle;
  std::uint64_t held_bytes = 0;
  std::uint64_t refused = 0;
  // Modeled service time: sum over placed chunks of bytes / effective
  // read bandwidth on the landing node. Throughput = held / service_time.
  double service_seconds = 0.0;
};

alloc::AllocRequest chunk_request(const Testbed& bed, const TenantRun& run) {
  alloc::AllocRequest request;
  request.bytes = run.spec.chunk_bytes;
  request.attribute = attr::kLatency;
  request.initiator = bed.initiator(run.spec.package);
  request.backing_bytes = 64;
  request.label = run.spec.name;
  request.tenant = run.handle;
  return request;
}

// One admission attempt; on success the modeled cost of reading the chunk
// once from its landing node is charged into the tenant's service time.
bool place_chunk(Testbed& bed, TenantRun& run) {
  auto allocation = bed.allocator.mem_alloc(chunk_request(bed, run));
  if (!allocation.ok()) {
    ++run.refused;
    return false;
  }
  const bool local = bed.initiator(run.spec.package)
                         .is_subset_of(bed.machine.topology()
                                           .numa_node(allocation->node)
                                           ->cpuset());
  const sim::EffectiveNodePerf perf = bed.machine.perf_model().effective(
      allocation->node, run.spec.chunk_bytes, local);
  run.held_bytes += run.spec.chunk_bytes;
  run.service_seconds +=
      static_cast<double>(run.spec.chunk_bytes) / perf.read_bw;
  return true;
}

double throughput_gbps(const TenantRun& run) {
  return run.service_seconds > 0.0
             ? static_cast<double>(run.held_bytes) / run.service_seconds / 1e9
             : 0.0;
}

tenant::TenantQuota quota_for(const TenantSpec& spec) {
  tenant::TenantQuota quota;
  quota.total_cap_bytes = spec.total_cap;
  quota.tier_cap_bytes[tenant::tier_index(topo::MemoryKind::kDRAM)] =
      spec.dram_cap;
  quota.share_weight = spec.share_weight;
  return quota;
}

// A critical tenant alone on a fresh machine: the isolation baseline.
double isolated_throughput(const TenantSpec& spec) {
  Testbed bed;
  TenantRun run;
  run.spec = spec;
  auto handle =
      bed.tenants.register_tenant(spec.name, spec.priority, quota_for(spec));
  if (!handle.ok()) return 0.0;
  run.handle = *handle;
  for (std::uint64_t placed = 0; placed < spec.demand_bytes;
       placed += spec.chunk_bytes) {
    if (!place_chunk(bed, run)) break;
  }
  return throughput_gbps(run);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_tenants.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::cerr << "usage: stress_tenants [--out FILE] [--check]\n";
      return 2;
    }
  }

  // --- Phase A: isolated criticals (the 90% baseline) --------------------
  const std::vector<TenantSpec> specs = make_specs();
  std::vector<double> isolated;
  for (const TenantSpec& spec : specs) {
    if (spec.priority == tenant::Priority::kCritical) {
      isolated.push_back(isolated_throughput(spec));
    }
  }

  // --- Phase B: all sixteen contend, round-robin -------------------------
  Testbed bed;
  std::vector<TenantRun> runs;
  for (const TenantSpec& spec : specs) {
    TenantRun run;
    run.spec = spec;
    auto handle =
        bed.tenants.register_tenant(spec.name, spec.priority, quota_for(spec));
    if (!handle.ok()) {
      std::cerr << "register " << spec.name << ": "
                << handle.error().to_string() << "\n";
      return 2;
    }
    run.handle = *handle;
    runs.push_back(std::move(run));
  }
  bool demand_left = true;
  while (demand_left) {
    demand_left = false;
    for (TenantRun& run : runs) {
      if (run.held_bytes + run.refused * run.spec.chunk_bytes >=
          run.spec.demand_bytes) {
        continue;
      }
      (void)place_chunk(bed, run);
      demand_left = true;
    }
  }

  // Gate: isolation. Modeled throughput under contention per critical
  // tenant vs its isolated baseline.
  bool isolation_ok = true;
  std::vector<double> contended_crit;
  std::size_t crit_index = 0;
  for (const TenantRun& run : runs) {
    if (run.spec.priority != tenant::Priority::kCritical) continue;
    const double contended = throughput_gbps(run);
    contended_crit.push_back(contended);
    if (contended < 0.9 * isolated[crit_index]) isolation_ok = false;
    ++crit_index;
  }

  // Gate: fairness. held >= 90% of min(demand, weighted share of machine).
  std::uint64_t machine_bytes = 0;
  for (const topo::Object* node : bed.machine.topology().numa_nodes()) {
    machine_bytes += node->capacity_bytes();
  }
  bool fairness_ok = true;
  std::vector<std::uint64_t> fair_floors;
  for (const TenantRun& run : runs) {
    const double share = bed.tenants.share_fraction(run.handle);
    const auto fair_bytes = static_cast<std::uint64_t>(
        share * static_cast<double>(machine_bytes));
    const std::uint64_t floor =
        std::min(run.spec.demand_bytes, fair_bytes) * 9 / 10;
    fair_floors.push_back(floor);
    if (run.held_bytes < floor) fairness_ok = false;
  }
  // The noisy neighbor's own cap must have held (its refusals are quota
  // rejections, nobody else's are).
  bool caps_ok = runs[8].handle->stats().quota_rejections > 0 &&
                 runs[8].held_bytes <= 512 * kGiB;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i != 8 && runs[i].handle->stats().quota_rejections != 0) {
      caps_ok = false;
    }
  }

  // --- Phase C: real pressure — shed, hint, converge ---------------------
  // Untenanted filler drives the healthy free fraction under the shed
  // threshold (0.12), then a best-effort request must be refused with a
  // structured hint while a critical one still places. Freeing filler
  // between retries models the machine recovering; the jittered backoff
  // schedule must land the request in a handful of attempts.
  std::vector<sim::BufferId> filler;
  {
    alloc::AllocRequest fill;
    fill.bytes = 32 * kGiB;
    fill.attribute = attr::kCapacity;
    fill.initiator = bed.initiator(0);
    fill.backing_bytes = 64;
    fill.label = "pressure.filler";
    while (bed.allocator.healthy_free_fraction() > 0.10) {
      bool placed = false;
      for (unsigned package = 0; package < 2 && !placed; ++package) {
        fill.initiator = bed.initiator((filler.size() + package) % 2);
        if (auto chunk = bed.allocator.mem_alloc(fill); chunk.ok()) {
          filler.push_back(chunk->buffer);
          placed = true;
        }
      }
      if (!placed) break;  // both sockets out of 32 GiB holes
    }
  }
  const auto level = bed.allocator.overload_level();

  TenantRun& best = runs[9];   // be.1: a well-behaved best-effort tenant
  TenantRun& crit = runs[0];
  auto shed = bed.allocator.mem_alloc(chunk_request(bed, best));
  const bool shed_refused = !shed.ok() &&
                            shed.error().code == support::Errc::kBackpressure;
  const std::uint64_t hint =
      shed_refused ? shed.error().retry_after_ms : 0;
  const bool hint_ok =
      shed_refused && hint > 0 &&
      tenant::parse_retry_after_ms(shed.error().message) == hint;

  bool critical_places_under_pressure = false;
  if (auto placed = bed.allocator.mem_alloc(chunk_request(bed, crit));
      placed.ok()) {
    critical_places_under_pressure = true;
    (void)bed.allocator.mem_free(placed->buffer);
  }

  // Convergence: jittered backoff around the hint, machine recovering one
  // filler chunk per attempt.
  tenant::BackoffOptions backoff_options;
  backoff_options.seed = 9;  // any fixed seed; determinism is the point
  tenant::Backoff backoff(backoff_options);
  std::uint64_t waited_ms = 0;
  unsigned attempts = 0;
  bool converged = false;
  std::uint64_t next_hint = hint;
  while (shed_refused && attempts < 8) {
    waited_ms += backoff.next_delay_ms(next_hint);
    ++attempts;
    if (!filler.empty()) {
      (void)bed.allocator.mem_free(filler.back());
      filler.pop_back();
    }
    auto retry = bed.allocator.mem_alloc(chunk_request(bed, best));
    if (retry.ok()) {
      converged = true;
      (void)bed.allocator.mem_free(retry->buffer);
      break;
    }
    next_hint = retry.error().retry_after_ms;
  }
  const bool degradation_ok = shed_refused && hint_ok &&
                              critical_places_under_pressure && converged &&
                              waited_ms < 2000;

  // --- Arbitration: migration slices order by priority --------------------
  tenant::GlobalArbiter arbiter(bed.tenants);
  runtime::EngineOptions engine_options;
  engine_options.epoch_budget_bytes = kGiB;
  runtime::MigrationEngine engine(bed.allocator, bed.initiator(0),
                                  engine_options);
  engine.set_arbiter(&arbiter);
  arbiter.begin_epoch(1, engine_options.epoch_budget_bytes);
  const std::uint64_t crit_slice = arbiter.slice_remaining(crit.handle->id());
  const std::uint64_t best_slice = arbiter.slice_remaining(best.handle->id());
  const bool arbitration_ok = crit_slice > best_slice && best_slice > 0;

  const alloc::AllocatorStats stats = bed.allocator.stats();
  const bool counters_ok =
      stats.backpressure_rejections ==
          stats.backpressure_health + stats.backpressure_quota +
              stats.backpressure_shed &&
      stats.backpressure_shed >= 1 && stats.backpressure_quota >= 1;

  // --- Report -------------------------------------------------------------
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 2;
  }
  bench::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("hetmem.bench.tenants/1");
  json.key("fixture").value("xeon_clx_1lm");
  json.key("tenants").begin_array();
  crit_index = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TenantRun& run = runs[i];
    const tenant::TenantStats tstats = run.handle->stats();
    json.begin_object();
    json.key("name").value(run.spec.name);
    json.key("priority").value(tenant::priority_name(run.spec.priority));
    json.key("share_weight").value(run.spec.share_weight);
    json.key("demand_bytes").value(run.spec.demand_bytes);
    json.key("held_bytes").value(run.held_bytes);
    json.key("fair_floor_bytes").value(fair_floors[i]);
    json.key("modeled_gbps").value(throughput_gbps(run));
    if (run.spec.priority == tenant::Priority::kCritical) {
      json.key("isolated_gbps").value(isolated[crit_index]);
      ++crit_index;
    }
    json.key("admitted").value(tstats.admitted);
    json.key("spilled").value(tstats.spilled);
    json.key("shed").value(tstats.shed);
    json.key("quota_rejections").value(tstats.quota_rejections);
    json.end_object();
  }
  json.end_array();
  json.key("pressure").begin_object();
  json.key("overload_level").value(tenant::overload_level_name(level));
  json.key("shed_hint_ms").value(hint);
  json.key("backoff_attempts").value(attempts);
  json.key("backoff_waited_ms").value(waited_ms);
  json.end_object();
  json.key("arbiter").begin_object();
  json.key("critical_slice_bytes").value(crit_slice);
  json.key("best_effort_slice_bytes").value(best_slice);
  json.end_object();
  json.key("gates").begin_object();
  json.key("isolation").value(isolation_ok);
  json.key("fairness").value(fairness_ok);
  json.key("caps").value(caps_ok);
  json.key("degradation").value(degradation_ok);
  json.key("arbitration").value(arbitration_ok);
  json.key("counters").value(counters_ok);
  json.end_object();
  json.end_object();
  out << '\n';
  out.close();

  std::cout << "wrote " << out_path << "\n";
  std::cout << "isolation: " << (isolation_ok ? "ok" : "FAIL")
            << ", fairness: " << (fairness_ok ? "ok" : "FAIL")
            << ", caps: " << (caps_ok ? "ok" : "FAIL")
            << ", degradation: " << (degradation_ok ? "ok" : "FAIL")
            << ", arbitration: " << (arbitration_ok ? "ok" : "FAIL")
            << ", counters: " << (counters_ok ? "ok" : "FAIL") << "\n";
  std::cout << "overload level under pressure: "
            << tenant::overload_level_name(level) << ", shed hint " << hint
            << " ms, converged after " << attempts << " attempt(s), "
            << waited_ms << " ms simulated wait\n";

  const bool all_ok = isolation_ok && fairness_ok && caps_ok &&
                      degradation_ok && arbitration_ok && counters_ok;
  if (check && !all_ok) {
    std::cerr << "FAIL: tenant stress gates did not hold\n";
    return 1;
  }
  return 0;
}
