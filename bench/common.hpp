// Shared setup for the bench harnesses: the two §VI machines with their
// attribute registries populated the way the paper does it (HMAT where the
// firmware provides values, benchmarking for the rest).
#pragma once

#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/table.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace hetmem::bench {

struct Testbed {
  std::unique_ptr<sim::SimMachine> machine;
  std::unique_ptr<attr::MemAttrRegistry> registry;
  std::unique_ptr<alloc::HeterogeneousAllocator> allocator;

  [[nodiscard]] const topo::Topology& topology() const {
    return machine->topology();
  }
};

/// §VI Xeon server: 2x Cascade Lake 6230, SNC off, NVDIMMs in 1LM.
/// Attributes: firmware HMAT + probe-measured values.
inline Testbed make_xeon() {
  Testbed bed;
  bed.machine = std::make_unique<sim::SimMachine>(topo::xeon_clx_1lm());
  bed.machine->set_llc_bytes(static_cast<std::uint64_t>(27.5 * 1024 * 1024));
  bed.registry = std::make_unique<attr::MemAttrRegistry>(bed.topology());

  probe::ProbeOptions options;
  options.backing_bytes = 64 * 1024;
  options.chase_accesses = 4000;
  options.threads = 16;
  auto report = probe::discover(*bed.machine, options);
  if (report.ok()) (void)probe::feed_registry(*bed.registry, *report);

  bed.allocator = std::make_unique<alloc::HeterogeneousAllocator>(*bed.machine,
                                                                  *bed.registry);
  return bed;
}

/// §VI KNL server: Xeon Phi 7230 SNC-4 Flat. KNL has no LLC; the analytic
/// cache model uses the aggregated cluster L2 (16 x 0.5 MiB).
inline Testbed make_knl() {
  Testbed bed;
  bed.machine = std::make_unique<sim::SimMachine>(topo::knl_snc4_flat());
  bed.machine->set_llc_bytes(8 * 1024 * 1024);
  bed.registry = std::make_unique<attr::MemAttrRegistry>(bed.topology());

  probe::ProbeOptions options;
  options.backing_bytes = 64 * 1024;
  options.chase_accesses = 4000;
  options.threads = 16;
  options.buffer_bytes = 256ull * 1024 * 1024;  // fits the 4 GiB MCDRAM
  auto report = probe::discover(*bed.machine, options);
  if (report.ok()) (void)probe::feed_registry(*bed.registry, *report);

  bed.allocator = std::make_unique<alloc::HeterogeneousAllocator>(*bed.machine,
                                                                  *bed.registry);
  return bed;
}

/// "3.423" style TEPSe+8 cell.
inline std::string teps_e8(double teps) {
  return support::format_fixed(teps / 1e8, 3);
}

/// "31.59" style GB/s cell.
inline std::string gbps(double bytes_per_second) {
  return support::format_fixed(bytes_per_second / 1e9, 2);
}

/// Minimal streaming JSON emitter shared by the machine-readable bench
/// harnesses (report_json today, the ablation benches as they adopt the
/// BENCH_*.json format). Deterministic output: fixed number formatting, no
/// locale, insertion order preserved. Usage:
///
///   JsonWriter json(out);
///   json.begin_object();
///   json.key("name").value("hotpath");
///   json.key("runs").begin_array();
///   ... json.end_array();
///   json.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(const std::string& name) {
    separate();
    write_string(name);
    out_ << ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& text) {
    separate();
    write_string(text);
    return *this;
  }
  JsonWriter& value(const char* text) { return value(std::string(text)); }
  JsonWriter& value(bool flag) {
    separate();
    out_ << (flag ? "true" : "false");
    return *this;
  }
  JsonWriter& value(std::uint64_t number) {
    separate();
    out_ << number;
    return *this;
  }
  JsonWriter& value(std::int64_t number) {
    separate();
    out_ << number;
    return *this;
  }
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(unsigned number) {
    return value(static_cast<std::uint64_t>(number));
  }
  /// Fixed three-decimal formatting so diffs between runs are meaningful.
  JsonWriter& value(double number) {
    separate();
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", number);
    out_ << buffer;
    return *this;
  }

 private:
  JsonWriter& open(char bracket) {
    separate();
    out_ << bracket;
    need_comma_.push_back(false);
    return *this;
  }
  JsonWriter& close(char bracket) {
    out_ << bracket;
    need_comma_.pop_back();
    return *this;
  }
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ << ',';
      need_comma_.back() = true;
    }
  }
  void write_string(const std::string& text) {
    out_ << '"';
    for (char c : text) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default: out_ << c; break;
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> need_comma_;
  bool pending_value_ = false;
};

}  // namespace hetmem::bench
