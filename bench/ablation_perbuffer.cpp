// Ablation A9: per-buffer criteria vs whole-process placement (the paper's
// §II-E proposal, quantified — plus the §VII ordering hazard).
//
// SpMV on the Xeon with a 150 GiB matrix + 60 GiB gathered vector: the
// footprint exceeds the 192 GB DRAM node, so SOMETHING must live on NVDIMM
// and the question is what. Whole-process placement has no good answer;
// FCFS per-buffer attributes let the streaming matrix hog the DRAM and
// exile the latency-critical x vector; prioritized per-buffer placement
// gives x the DRAM latency and streams the matrix from NVDIMM — each
// buffer on the memory its access pattern wants.
#include "common.hpp"

#include "hetmem/apps/spmv.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

apps::SpmvConfig config() {
  apps::SpmvConfig c;
  c.matrix_bytes = 150ull * kGiB;
  c.vector_bytes = 60ull * kGiB;
  c.backing_rows = 1u << 14;
  c.threads = 16;
  c.iterations = 3;
  return c;
}

void run_case(bench::Testbed& bed, const char* name,
              const apps::SpmvPlacement& placement, support::TextTable& table,
              bool needs_allocator) {
  auto runner = apps::SpmvRunner::create(
      *bed.machine, needs_allocator ? bed.allocator.get() : nullptr,
      bed.topology().numa_node(0)->cpuset(), config(), placement);
  if (!runner.ok()) {
    table.add_row({name, "-", "-", "-",
                   "(" + std::string(support::errc_name(runner.error().code)) +
                       ")"});
    return;
  }
  auto result = (*runner)->run();
  if (!result.ok()) {
    table.add_row({name, "-", "-", "-", "(run failed)"});
    return;
  }
  table.add_row(
      {name,
       std::string(topo::memory_kind_name(
           bed.topology().numa_node(result->matrix_node)->memory_kind())),
       std::string(topo::memory_kind_name(
           bed.topology().numa_node(result->x_node)->memory_kind())),
       support::format_fixed(result->seconds, 1) + " s",
       support::format_fixed(result->gflops, 2)});
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Ablation A9: per-buffer placement of SpMV (Xeon: 192GB DRAM + 768GB "
      "NVDIMM; 150GiB matrix + 60GiB vector does not fit DRAM)").c_str());

  support::TextTable table(
      {"Placement", "matrix on", "x on", "sim. time", "GFLOP/s"});
  {
    bench::Testbed bed = bench::make_xeon();
    run_case(bed, "whole process on DRAM", apps::SpmvPlacement::all_on_node(0),
             table, false);  // does not fit: the paper's blank cell
  }
  {
    bench::Testbed bed = bench::make_xeon();
    run_case(bed, "whole process on NVDIMM",
             apps::SpmvPlacement::all_on_node(2), table, false);
  }
  {
    // FCFS per-buffer attributes: the matrix allocates first, takes the
    // DRAM, and the latency-critical x spills to NVDIMM (§VII inversion).
    bench::Testbed bed = bench::make_xeon();
    run_case(bed, "per-buffer, FCFS order", apps::SpmvPlacement::per_buffer(),
             table, true);
  }
  {
    // Prioritized placement (what plan_placements computes for these
    // sizes): x gets the DRAM, the matrix streams from NVDIMM.
    bench::Testbed bed = bench::make_xeon();
    apps::SpmvPlacement planned;
    planned.matrix.forced_node = 2;
    planned.x.forced_node = 0;
    planned.y.forced_node = 0;
    run_case(bed, "per-buffer, prioritized", planned, table, false);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: whole-on-DRAM cannot allocate; whole-on-NVDIMM pays\n"
      "860ns on every gather; FCFS per-buffer wastes the DRAM on the\n"
      "bandwidth-tolerant matrix; prioritized per-buffer is ~5x faster —\n"
      "buffers have individual affinities (sec. II-E) and hot ones must be\n"
      "placed first (sec. VII).\n");
  return 0;
}
