// Reproduces Table IV: VTune-style execution summary for Graph500 and
// STREAM Triad with memory on DRAM vs NVDIMM (Xeon testbed).
//
// Paper shape: Graph500 is flagged DRAM/PMem *Bound* (latency) with ~0%
// bandwidth-bound time; STREAM is flagged *Bandwidth Bound* on whichever
// kind holds its arrays.
#include "common.hpp"

#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/prof/profiler.hpp"

using namespace hetmem;

namespace {

prof::BoundnessSummary run_graph500(bench::Testbed& bed, unsigned node) {
  apps::Graph500Config config;
  config.scale_declared = 26;
  config.scale_backing = 15;
  config.threads = 16;
  config.num_roots = 3;
  config.compute_ns_per_edge = 16.0;
  config.mlp = 8.0;
  auto runner = apps::Graph500Runner::create(
      *bed.machine, nullptr, bed.topology().numa_node(0)->cpuset(), config,
      apps::Graph500Placement::all_on_node(node));
  if (!runner.ok()) return {};
  if (auto result = (*runner)->run(); !result.ok()) return {};
  return prof::summarize((*runner)->exec());
}

prof::BoundnessSummary run_stream(bench::Testbed& bed, unsigned node) {
  apps::StreamConfig config;
  config.declared_total_bytes = 22ull * support::kGiB;
  config.backing_elements = 1u << 16;
  config.threads = 20;
  config.iterations = 5;
  apps::BufferPlacement placement;
  placement.forced_node = node;
  auto runner = apps::StreamRunner::create(
      *bed.machine, nullptr, bed.topology().numa_node(0)->cpuset(), config,
      placement);
  if (!runner.ok()) return {};
  if (auto result = (*runner)->run_triad(); !result.ok()) return {};
  return prof::summarize((*runner)->exec());
}

std::string pct(double value) { return support::format_fixed(value, 1) + "%"; }

}  // namespace

int main() {
  bench::Testbed bed = bench::make_xeon();

  std::printf("%s",
              support::banner("Table IV: profiler execution summary "
                              "(Xeon; paper values in brackets)").c_str());
  support::TextTable table({"Application", "Target", "DRAM Bound (clk)",
                            "PMem Bound (clk)", "DRAM BW Bound (time)",
                            "PMem BW Bound (time)"});

  struct Row {
    const char* app;
    const char* target;
    prof::BoundnessSummary summary;
    const char* paper[4];
  };
  const Row rows[] = {
      {"Graph500", "DRAM", run_graph500(bed, 0),
       {"29.0%", "0.0%", "0.0%", "0.0%"}},
      {"Graph500", "NVDIMM", run_graph500(bed, 2),
       {"63.0%", "60.9%", "0.0%", "0.0%"}},
      {"STREAM Triad", "DRAM", run_stream(bed, 0),
       {"63.3%", "0.0%", "80.4%", "0.0%"}},
      {"STREAM Triad", "NVDIMM", run_stream(bed, 2),
       {"43.7%", "17.0%", "0.3%", "2.1%"}},
  };
  for (const Row& row : rows) {
    table.add_row({row.app, row.target,
                   pct(row.summary.dram_bound_pct) + " [" + row.paper[0] + "]",
                   pct(row.summary.pmem_bound_pct) + " [" + row.paper[1] + "]",
                   pct(row.summary.dram_bw_bound_pct) + " [" + row.paper[2] + "]",
                   pct(row.summary.pmem_bw_bound_pct) + " [" + row.paper[3] + "]"});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nVTune-style flags:\n");
  for (const Row& row : rows) {
    std::printf("  %-12s on %-6s -> %s%s\n", row.app, row.target,
                row.summary.latency_flagged() ? "[latency issue] " : "",
                row.summary.bandwidth_flagged() ? "[bandwidth issue]" : "");
  }
  std::printf(
      "\nShape check: Graph500 raises the latency flag (Bound %% high, BW\n"
      "Bound ~0); STREAM raises the bandwidth flag on its resident kind.\n");
  return 0;
}
