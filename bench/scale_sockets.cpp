// Multi-socket scaling (paper §VIII: "management of many available
// memories, local or not").
//
// 40 ranks distributed over both Xeon sockets with topo::distribute(), each
// streaming its own buffer. Two placements:
//  (a) everything on socket 0's DRAM — half the ranks pay remote bandwidth
//      and all traffic funnels through one memory controller;
//  (b) each rank's buffer placed by the Bandwidth attribute *from that
//      rank's own locality* — the per-rank best_target answer.
// Placement (b) is what a runtime gets by passing each thread's cpuset as
// the initiator — locality falls out of the API with no extra code.
#include "common.hpp"

#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/topo/distrib.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

constexpr unsigned kRanks = 40;

struct Workload {
  std::vector<sim::BufferId> buffers;  // one per rank
};

double run_stream(bench::Testbed& bed, const Workload& workload,
                  const std::vector<support::Bitmap>& ranks) {
  sim::ExecutionContext exec(*bed.machine, bed.topology().complete_cpuset(),
                             kRanks);
  if (!exec.set_thread_localities(ranks).ok()) return 0.0;
  std::vector<sim::Array<double>> arrays;
  arrays.reserve(kRanks);
  for (sim::BufferId id : workload.buffers) {
    arrays.emplace_back(*bed.machine, id);
  }
  exec.run_phase("stream", kRanks,
                 [&](sim::ThreadCtx& ctx, unsigned thread, std::size_t begin,
                     std::size_t end) {
                   if (begin >= end) return;
                   arrays[thread].record_bulk_read(ctx, 2e9);
                 });
  const double total_bytes = 2e9 * kRanks;
  return total_bytes / (exec.clock_ns() / 1e9) / 1e9;  // GB/s aggregate
}

Workload place_all_on(bench::Testbed& bed, unsigned node) {
  Workload workload;
  for (unsigned rank = 0; rank < kRanks; ++rank) {
    auto buffer = bed.machine->allocate(2 * kGiB, node,
                                        "rank" + std::to_string(rank), 4096);
    if (buffer.ok()) workload.buffers.push_back(*buffer);
  }
  return workload;
}

Workload place_by_attribute(bench::Testbed& bed,
                            const std::vector<support::Bitmap>& ranks,
                            attr::AttrId attribute) {
  Workload workload;
  for (unsigned rank = 0; rank < kRanks; ++rank) {
    alloc::AllocRequest request;
    request.bytes = 2 * kGiB;
    request.attribute = attribute;
    request.initiator = ranks[rank];  // the rank's own locality
    request.label = "rank" + std::to_string(rank);
    request.backing_bytes = 4096;
    auto allocation = bed.allocator->mem_alloc(request);
    if (allocation.ok()) workload.buffers.push_back(allocation->buffer);
  }
  return workload;
}

void free_all(bench::Testbed& bed, Workload& workload) {
  for (sim::BufferId id : workload.buffers) (void)bed.machine->free(id);
  workload.buffers.clear();
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Multi-socket scaling: 40 ranks over both Xeon sockets "
      "(aggregate stream GB/s)").c_str());

  bench::Testbed bed = bench::make_xeon();
  const std::vector<support::Bitmap> ranks =
      topo::distribute(bed.topology(), kRanks);

  support::TextTable table({"Placement", "aggregate GB/s", "note"});
  {
    Workload workload = place_all_on(bed, 0);
    const double rate = run_stream(bed, workload, ranks);
    table.add_row({"all buffers on socket-0 DRAM",
                   support::format_fixed(rate, 1),
                   "one controller, half the ranks remote"});
    free_all(bed, workload);
  }
  {
    Workload workload = place_by_attribute(bed, ranks, attr::kBandwidth);
    const double rate = run_stream(bed, workload, ranks);
    table.add_row({"per-rank Bandwidth attribute",
                   support::format_fixed(rate, 1),
                   "each rank on its local DRAM"});
    free_all(bed, workload);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: letting each rank's own cpuset be the initiator\n"
      "triples aggregate bandwidth here — both controllers work and no\n"
      "rank crosses the socket link. No placement logic was written: the\n"
      "locality decision IS the attributes API (paper sec. VIII).\n");
  return 0;
}
