// Reproduces Equations 1-3: the per-criterion memory orderings
//   Eq.1  HBM_BW   > DRAM_BW  > NVDIMM_BW
//   Eq.2  DRAM_Lat ~= HBM_Lat > NVDIMM_Lat   (priority order)
//   Eq.3  NVDIMM_Cap > DRAM_Cap > HBM_Cap
// printed as the actual targets_ranked() output on every preset platform,
// from both discovery sources.
#include "common.hpp"

using namespace hetmem;

namespace {

void print_rankings(const attr::MemAttrRegistry& registry,
                    const topo::Topology& topology) {
  const topo::Object* pu0 = topology.pus().front();
  const auto initiator = attr::Initiator::from_cpuset(pu0->cpuset());
  struct Criterion {
    const char* name;
    attr::AttrId attr;
  };
  for (const Criterion& criterion :
       {Criterion{"Bandwidth (eq.1)", attr::kBandwidth},
        Criterion{"Latency   (eq.2)", attr::kLatency},
        Criterion{"Capacity  (eq.3)", attr::kCapacity}}) {
    auto ranked = registry.targets_ranked(criterion.attr, initiator);
    std::printf("  %-17s:", criterion.name);
    if (ranked.empty()) {
      std::printf(" (no values)\n");
      continue;
    }
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      std::printf("%s %s(L#%u)", i == 0 ? "" : "  >",
                  topo::memory_kind_name(ranked[i].target->memory_kind()),
                  ranked[i].target->logical_index());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  for (const topo::NamedTopology& preset : topo::all_presets()) {
    std::printf("%s", support::banner(preset.name).c_str());

    sim::SimMachine machine(preset.factory());
    const topo::Topology& topology = machine.topology();

    std::printf("from firmware HMAT:\n");
    attr::MemAttrRegistry from_hmat(topology);
    hmat::GenerateOptions options;
    options.local_only = false;
    (void)hmat::load_into(from_hmat, hmat::generate(topology, options));
    print_rankings(from_hmat, topology);

    std::printf("from benchmarking:\n");
    attr::MemAttrRegistry from_probe(topology);
    probe::ProbeOptions probe_options;
    probe_options.backing_bytes = 64 * 1024;
    probe_options.chase_accesses = 1500;
    probe_options.buffer_bytes = 128ull * 1024 * 1024;  // fits every node
    auto report = probe::discover(machine, probe_options);
    if (report.ok()) (void)probe::feed_registry(from_probe, *report);
    print_rankings(from_probe, topology);
  }
  std::printf(
      "\nShape check: on every platform with several kinds, bandwidth ranks\n"
      "HBM > DRAM > NVDIMM (> NAM), latency ranks DRAM first and NVDIMM/NAM\n"
      "last, and capacity ranks the big slow memories first — and the two\n"
      "discovery sources agree on the order.\n");
  return 0;
}
