// Ablation A3 (paper §VII): when is migrating a buffer to faster memory
// worth its cost?
//
// A latency-bound kernel runs for N phases over a buffer that starts on
// NVDIMM. We compare: stay on NVDIMM, migrate to DRAM first (paying the
// modeled page-migration cost), for several run lengths — the crossover is
// where migration amortizes, the paper's "should likely be avoided unless
// the application behavior changes significantly".
#include "common.hpp"

#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"

using namespace hetmem;

namespace {

/// Simulated ns for `phases` rounds of dependent access over the buffer.
double run_kernel(bench::Testbed& bed, sim::BufferId buffer, unsigned phases) {
  sim::ExecutionContext exec(*bed.machine,
                             bed.topology().numa_node(0)->cpuset(), 16);
  exec.set_mlp(8.0);
  sim::Array<std::uint32_t> array(*bed.machine, buffer);
  array.refresh_model();
  for (unsigned p = 0; p < phases; ++p) {
    exec.run_phase("kernel", 16,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       array.record_bulk_random_reads(ctx, 200000.0);
                     }
                   });
  }
  return exec.clock_ns();
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Ablation A3: migration cost vs benefit (2GiB buffer, NVDIMM->DRAM, "
      "Xeon)").c_str());

  support::TextTable table({"Phases", "stay on NVDIMM (ms)",
                            "migrate + run on DRAM (ms)", "verdict"});
  for (unsigned phases : {1u, 4u, 16u, 32u, 64u, 128u, 256u}) {
    bench::Testbed stay_bed = bench::make_xeon();
    auto stay_buffer =
        stay_bed.machine->allocate(2ull * support::kGiB, 2, "data", 4096);
    if (!stay_buffer.ok()) return 1;
    const double stay_ns = run_kernel(stay_bed, *stay_buffer, phases);

    bench::Testbed move_bed = bench::make_xeon();
    auto move_buffer =
        move_bed.machine->allocate(2ull * support::kGiB, 2, "data", 4096);
    if (!move_buffer.ok()) return 1;
    auto migration_cost = move_bed.allocator->migrate(*move_buffer, 0);
    if (!migration_cost.ok()) return 1;
    const double move_ns =
        *migration_cost + run_kernel(move_bed, *move_buffer, phases);

    table.add_row({std::to_string(phases),
                   support::format_fixed(stay_ns / 1e6, 2),
                   support::format_fixed(move_ns / 1e6, 2),
                   move_ns < stay_ns ? "migrate" : "stay"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: migration only pays off past a crossover number of\n"
      "phases; for short runs the page-migration overhead dominates\n"
      "(paper sec. VII: 'quite expensive in operating systems').\n");
  return 0;
}
