// Machine-readable hot-path baseline: BENCH_hotpath.json.
//
// Runs the cached-vs-uncached allocation curves and the magazine-vs-mutex
// pool curves at fixed per-thread iteration counts and emits one JSON
// document (schema hetmem.bench.hotpath/1) so future PRs have a perf
// trajectory to diff against. Decision counts are deterministic — the same
// binary produces the same allocation/fallback/hit totals every run; only
// the nanosecond timings move. docs/PERF.md describes how to read it.
//
// Usage: report_json [--out FILE] [--check]
//   --out FILE   write JSON to FILE (default BENCH_hotpath.json)
//   --check      exit 1 unless the cached path beats the uncached baseline
//                at 8 threads (the CI perf-smoke gate)
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "hetmem/alloc/pool.hpp"

namespace {

using namespace hetmem;

constexpr std::uint64_t kIterationsPerThread = 20000;
constexpr unsigned kThreadCounts[] = {1, 2, 4, 8, 16};

struct Testbed {
  Testbed()
      : machine(topo::xeon_clx_snc_1lm()),
        registry(machine.topology()),
        allocator(machine, registry) {
    hmat::GenerateOptions options;
    options.local_only = false;
    (void)hmat::load_into(registry, hmat::generate(machine.topology(), options));
    allocator.set_trace_enabled(false);
  }
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
};

struct RunResult {
  std::string name;
  unsigned threads = 1;
  std::uint64_t total_ops = 0;
  std::uint64_t elapsed_ns = 0;
  double mops_per_sec = 0.0;
  bool has_cache_stats = false;
  double cache_hit_rate = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool has_decisions = false;
  std::uint64_t allocations = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t failures = 0;
  std::uint64_t rescues = 0;
};

template <typename WorkerFn>
RunResult timed_run(std::string name, unsigned threads, WorkerFn&& worker) {
  RunResult result;
  result.name = std::move(name);
  result.threads = threads;
  result.total_ops = kIterationsPerThread * threads;

  std::vector<std::thread> pool;
  pool.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&worker] {
      for (std::uint64_t i = 0; i < kIterationsPerThread; ++i) worker();
    });
  }
  for (std::thread& thread : pool) thread.join();
  const auto stop = std::chrono::steady_clock::now();

  result.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
  if (result.elapsed_ns > 0) {
    result.mops_per_sec = static_cast<double>(result.total_ops) * 1e3 /
                          static_cast<double>(result.elapsed_ns);
  }
  return result;
}

alloc::AllocRequest standard_request(const Testbed& bed) {
  alloc::AllocRequest request;
  request.bytes = 4096;
  request.attribute = attr::kLatency;
  request.initiator = bed.machine.topology().numa_node(0)->cpuset();
  request.backing_bytes = 64;
  request.label = "bench.json";
  return request;
}

RunResult run_mem_alloc(unsigned threads, bool cached) {
  Testbed bed;
  bed.registry.set_ranking_cache_enabled(cached);
  bed.registry.reset_ranking_cache_stats();
  const alloc::AllocRequest request = standard_request(bed);

  RunResult result = timed_run(
      cached ? "mem_alloc_cached" : "mem_alloc_uncached", threads, [&] {
        auto allocation = bed.allocator.mem_alloc(request);
        if (allocation.ok()) (void)bed.allocator.mem_free(allocation->buffer);
      });

  if (cached) {
    const attr::RankingCacheStats stats = bed.registry.ranking_cache_stats();
    result.has_cache_stats = true;
    result.cache_hits = stats.hits;
    result.cache_misses = stats.misses;
    result.cache_hit_rate = stats.hit_rate();
  }
  const alloc::AllocatorStats stats = bed.allocator.stats();
  result.has_decisions = true;
  result.allocations = stats.allocations;
  result.fallbacks = stats.fallbacks;
  result.failures = stats.failures;
  result.rescues = stats.attribute_rescues;
  return result;
}

RunResult run_pool(unsigned threads, unsigned magazine_blocks) {
  Testbed bed;
  alloc::PoolOptions options;
  options.attribute = attr::kLatency;
  options.block_bytes = 4096;
  options.blocks_per_slab = 4096;
  options.magazine_blocks = magazine_blocks;
  alloc::Pool pool(bed.allocator, bed.machine.topology().numa_node(0)->cpuset(),
                   options, "bench.json.pool");

  return timed_run(magazine_blocks > 0 ? "pool_magazine" : "pool_mutex",
                   threads, [&] {
                     auto block = pool.allocate();
                     if (block.ok()) (void)pool.free(*block);
                   });
}

void emit_run(bench::JsonWriter& json, const RunResult& run) {
  json.begin_object();
  json.key("name").value(run.name);
  json.key("threads").value(run.threads);
  json.key("total_ops").value(run.total_ops);
  json.key("elapsed_ns").value(run.elapsed_ns);
  json.key("mops_per_sec").value(run.mops_per_sec);
  if (run.has_cache_stats) {
    json.key("cache").begin_object();
    json.key("hits").value(run.cache_hits);
    json.key("misses").value(run.cache_misses);
    json.key("hit_rate").value(run.cache_hit_rate);
    json.end_object();
  }
  if (run.has_decisions) {
    json.key("decisions").begin_object();
    json.key("allocations").value(run.allocations);
    json.key("fallbacks").value(run.fallbacks);
    json.key("failures").value(run.failures);
    json.key("attribute_rescues").value(run.rescues);
    json.end_object();
  }
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::cerr << "usage: report_json [--out FILE] [--check]\n";
      return 2;
    }
  }

  std::vector<RunResult> runs;
  double cached_8t = 0.0;
  double uncached_8t = 0.0;
  for (unsigned threads : kThreadCounts) {
    RunResult cached = run_mem_alloc(threads, /*cached=*/true);
    RunResult uncached = run_mem_alloc(threads, /*cached=*/false);
    if (threads == 8) {
      cached_8t = cached.mops_per_sec;
      uncached_8t = uncached.mops_per_sec;
    }
    runs.push_back(std::move(cached));
    runs.push_back(std::move(uncached));
    runs.push_back(run_pool(threads, /*magazine_blocks=*/64));
    runs.push_back(run_pool(threads, /*magazine_blocks=*/0));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 2;
  }
  bench::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("hetmem.bench.hotpath/1");
  json.key("fixture").value("xeon_clx_snc_1lm");
  json.key("iterations_per_thread").value(kIterationsPerThread);
  json.key("runs").begin_array();
  for (const RunResult& run : runs) emit_run(json, run);
  json.end_array();
  json.key("gate").begin_object();
  json.key("cached_mops_at_8t").value(cached_8t);
  json.key("uncached_mops_at_8t").value(uncached_8t);
  json.key("speedup_at_8t")
      .value(uncached_8t > 0.0 ? cached_8t / uncached_8t : 0.0);
  json.end_object();
  json.end_object();
  out << '\n';
  out.close();

  std::cout << "wrote " << out_path << "\n";
  std::cout << "cached @8t: " << cached_8t << " Mops/s, uncached @8t: "
            << uncached_8t << " Mops/s, speedup: "
            << (uncached_8t > 0.0 ? cached_8t / uncached_8t : 0.0) << "x\n";
  for (const RunResult& run : runs) {
    if (run.has_cache_stats) {
      std::cout << run.name << " @" << run.threads
                << "t hit_rate=" << run.cache_hit_rate << "\n";
    }
  }

  if (check && cached_8t <= uncached_8t) {
    std::cerr << "FAIL: cached hot path is not faster than uncached at 8 "
                 "threads\n";
    return 1;
  }
  return 0;
}
