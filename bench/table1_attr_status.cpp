// Reproduces Table I: the status of memory attributes — which are always
// discoverable natively, which need firmware support, and which come from
// external sources (benchmarks / user metrics). Demonstrated live on the
// Xeon testbed by checking which attributes actually have values after each
// discovery stage.
#include "common.hpp"

using namespace hetmem;

namespace {

const char* yn(bool value) { return value ? "yes" : "-"; }

}  // namespace

int main() {
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const topo::Topology& topology = machine.topology();

  // Stage 0: fresh registry (OS-provided information only).
  attr::MemAttrRegistry native(topology);

  // Stage 1: + firmware HMAT (bandwidth/latency, local only).
  attr::MemAttrRegistry with_hmat(topology);
  (void)hmat::load_into(with_hmat, hmat::generate(topology));

  // Stage 2: + benchmarks (read/write split, remote pairs).
  attr::MemAttrRegistry with_probe(topology);
  probe::ProbeOptions options;
  options.backing_bytes = 64 * 1024;
  options.chase_accesses = 2000;
  auto report = probe::discover(machine, options);
  if (report.ok()) {
    (void)probe::feed_registry(with_probe, *report);
    (void)probe::register_triad_attribute(with_probe, *report);
  }

  std::printf("%s", support::banner(
      "Table I: status of memory attributes (live check)").c_str());
  support::TextTable table({"Attribute", "Native (OS)", "Firmware HMAT",
                            "Benchmarks", "Paper says"});
  struct Row {
    const char* name;
    const char* paper;
  };
  const Row rows[] = {
      {"Capacity", "always supported"},
      {"Locality", "always supported"},
      {"Bandwidth", "most platforms / benchmarks"},
      {"Latency", "most platforms / benchmarks"},
      {"ReadBandwidth", "some platforms / benchmarks"},
      {"WriteBandwidth", "some platforms / benchmarks"},
      {"ReadLatency", "some platforms / benchmarks"},
      {"WriteLatency", "some platforms / benchmarks"},
      {"StreamTriad", "user-specified custom metric"},
  };
  for (const Row& row : rows) {
    auto check = [&](const attr::MemAttrRegistry& registry) {
      auto id = registry.find_attribute(row.name);
      return id.ok() && registry.has_values(*id);
    };
    table.add_row({row.name, yn(check(native)), yn(check(with_hmat)),
                   yn(check(with_probe)), row.paper});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nCapacity/Locality are populated by the OS alone; Bandwidth/Latency\n"
      "arrive with firmware tables; the R/W split and custom metrics come\n"
      "from benchmarking — matching Table I.\n");
  return 0;
}
