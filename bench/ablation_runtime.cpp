// Ablation A11 (docs/RUNTIME.md): the online memory-management runtime vs
// static placement on a phase-flipping workload.
//
// Part 1 streams through buffer S (STREAM-like), part 2 pointer-chases
// through buffer R (BFS-like); fast memory only has room for one of them at
// a time, so no static placement is right for the whole run. We compare:
//
//   worst            both buffers parked on the capacity target for the
//                    whole run (whole-process-worst binding)
//   oracle-static    best clock over every feasible static placement —
//                    requires knowing the future
//   offline-advisor  run once misplaced, ask alloc::advise_migrations for a
//                    one-shot correction, rerun (the §VII loop)
//   online           runtime::RuntimePolicy attached: epoch sampling, EMA
//                    reclassification with hysteresis, budgeted migration,
//                    costs charged to the simulated clock
//
// Acceptance gates (exit nonzero when violated):
//   * online recovers >= 80% of oracle-static's advantage over worst
//   * accepted-move sequence is identical at 1/1, 1/10 and 1/100 sampling
//   * per-epoch migrated bytes never exceed the configured budget, and a
//     budget of one buffer spreads a two-buffer promotion over two epochs
//   * zero migrations on a phase-stable workload with hysteresis disabled
#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/support/table.hpp"

using namespace hetmem;
using support::kGiB;
using support::kMiB;

namespace {

constexpr unsigned kThreads = 4;
constexpr unsigned kPhasesPerPart = 24;
constexpr std::uint64_t kBufferBytes = 1 * kGiB;
constexpr std::uint64_t kFastHeadroom = kBufferBytes + kBufferBytes / 2;

support::Bitmap first_initiator(const topo::Topology& topology) {
  for (const topo::Object* node : topology.numa_nodes()) {
    if (!node->cpuset().empty()) return node->cpuset();
  }
  return {};
}

unsigned best_target(const bench::Testbed& bed, attr::AttrId attribute) {
  const auto ranked = bed.registry->targets_ranked(
      attribute,
      attr::Initiator::from_cpuset(first_initiator(bed.topology())));
  return ranked.empty() ? 0 : ranked.front().target->logical_index();
}

runtime::RuntimePolicyOptions online_options() {
  runtime::RuntimePolicyOptions options;
  // Responsive smoothing: an idled buffer's EMA share decays below the
  // insensitive threshold within ~3 epochs, so the engine can reclaim its
  // fast-memory slot quickly after the flip (the reaction lag is the main
  // recovery cost besides the migration bills themselves).
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  return options;
}

struct FlipResult {
  bool ok = false;
  double clock_ns = 0.0;
  std::uint64_t accepted = 0;
  std::uint64_t evicted = 0;
  std::uint64_t max_epoch_bytes = 0;
  std::string decision_log;
  std::vector<double> periods;  // sampler period per epoch, emission order
};

/// Runs the phase-flip workload with S on `stream_node` and R on
/// `random_node`. `online` attaches the runtime (placement then evolves).
FlipResult run_flip(bench::Testbed& bed, unsigned stream_node,
                    unsigned random_node, bool online,
                    runtime::RuntimePolicyOptions options = online_options()) {
  FlipResult result;
  const support::Bitmap initiator = first_initiator(bed.topology());
  const unsigned fast = best_target(bed, attr::kBandwidth);

  // Squeeze fast memory so only one of the two buffers fits at a time.
  const std::uint64_t fast_free = bed.machine->available_bytes(fast);
  if (fast_free > kFastHeadroom) {
    auto hog = bed.machine->allocate(fast_free - kFastHeadroom, fast,
                                     "resident.hog", 4096);
    if (!hog.ok()) return result;
  }
  auto streamed =
      bed.machine->allocate(kBufferBytes, stream_node, "flip.stream", 1u << 16);
  auto chased =
      bed.machine->allocate(kBufferBytes, random_node, "flip.random", 1u << 16);
  if (!streamed.ok() || !chased.ok()) return result;

  sim::Array<double> stream_array(*bed.machine, *streamed);
  sim::Array<double> chase_array(*bed.machine, *chased);
  sim::ExecutionContext exec(*bed.machine, initiator, kThreads);

  runtime::RuntimePolicy policy(*bed.allocator, initiator, options);
  if (online) {
    policy.attach(exec, [&] {
      stream_array.refresh_model();
      chase_array.refresh_model();
    });
  }

  for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
    exec.run_phase("part1.stream", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     stream_array.record_bulk_read(ctx, 512.0 * kMiB);
                   });
  }
  for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
    exec.run_phase("part2.random", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     chase_array.record_bulk_random_reads(ctx, 4e6);
                   });
  }

  result.ok = true;
  result.clock_ns = exec.clock_ns();
  result.accepted = policy.engine().stats().accepted;
  result.evicted = policy.engine().stats().evicted;
  result.max_epoch_bytes = policy.engine().max_epoch_migrated_bytes();
  result.decision_log = policy.render_decision_log();
  result.periods = policy.sampler().period_log();
  return result;
}

/// Accepted/evicted move lines with the benefit figures stripped — the
/// placement *decisions*, invariant under subsampling noise.
std::vector<std::string> accepted_moves(const std::string& log) {
  std::vector<std::string> moves;
  std::istringstream lines(log);
  for (std::string line; std::getline(lines, line);) {
    if (line.find(" accepted ") != std::string::npos ||
        line.find(" evicted ") != std::string::npos) {
      moves.push_back(line.substr(0, line.find(" benefit")));
    }
  }
  return moves;
}

std::string ms(double ns) { return support::format_fixed(ns / 1e6, 1); }

bool run_testbed(const char* name,
                 const std::function<bench::Testbed()>& make) {
  bool pass = true;
  {
    bench::Testbed probe_bed = make();
    std::printf("\n== %s (fast=node %u, slow=node %u) ==\n", name,
                best_target(probe_bed, attr::kBandwidth),
                best_target(probe_bed, attr::kCapacity));
  }

  // Static variants: every feasible (S, R) placement over {fast, slow}.
  double worst_ns = 0.0, oracle_ns = 0.0;
  support::TextTable table({"variant", "S node", "R node", "clock (ms)",
                            "moves"});
  {
    bench::Testbed bed = make();
    const unsigned fast = best_target(bed, attr::kBandwidth);
    const unsigned slow = best_target(bed, attr::kCapacity);
    for (unsigned stream_node : {slow, fast}) {
      for (unsigned random_node : {slow, fast}) {
        bench::Testbed static_bed = make();
        FlipResult result =
            run_flip(static_bed, stream_node, random_node, false);
        if (!result.ok) continue;  // infeasible (both in squeezed fast mem)
        table.add_row({"static", std::to_string(stream_node),
                       std::to_string(random_node), ms(result.clock_ns), "0"});
        if (stream_node == slow && random_node == slow) {
          worst_ns = result.clock_ns;
        }
        if (oracle_ns == 0.0 || result.clock_ns < oracle_ns) {
          oracle_ns = result.clock_ns;
        }
      }
    }

  }

  // Offline advisor: run misplaced while keeping the exec alive, advise,
  // apply the one-shot advice, rerun on the corrected placement. One
  // placement for the full run: it cannot track the flip, only fix the
  // average.
  double offline_ns = 0.0;
  {
    bench::Testbed bed = make();
    const unsigned fast = best_target(bed, attr::kBandwidth);
    const unsigned slow = best_target(bed, attr::kCapacity);
    const support::Bitmap initiator = first_initiator(bed.topology());

    const std::uint64_t fast_free = bed.machine->available_bytes(fast);
    if (fast_free > kFastHeadroom) {
      auto hog = bed.machine->allocate(fast_free - kFastHeadroom, fast,
                                       "resident.hog", 4096);
      if (!hog.ok()) return false;
    }
    auto streamed =
        bed.machine->allocate(kBufferBytes, slow, "flip.stream", 1u << 16);
    auto chased =
        bed.machine->allocate(kBufferBytes, slow, "flip.random", 1u << 16);
    if (!streamed.ok() || !chased.ok()) return false;
    sim::Array<double> stream_array(*bed.machine, *streamed);
    sim::Array<double> chase_array(*bed.machine, *chased);

    sim::ExecutionContext observe_exec(*bed.machine, initiator, kThreads);
    for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
      observe_exec.run_phase("part1.stream", kThreads,
                             [&](sim::ThreadCtx& ctx, unsigned,
                                 std::size_t begin, std::size_t end) {
                               if (begin >= end) return;
                               stream_array.record_bulk_read(ctx, 512.0 * kMiB);
                             });
    }
    for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
      observe_exec.run_phase("part2.random", kThreads,
                             [&](sim::ThreadCtx& ctx, unsigned,
                                 std::size_t begin, std::size_t end) {
                               if (begin >= end) return;
                               chase_array.record_bulk_random_reads(ctx, 4e6);
                             });
    }
    alloc::AdvisorOptions advisor_options;
    advisor_options.expected_future_rounds = 1.0;  // one rerun of the run
    const auto advice = alloc::advise_migrations(*bed.allocator, observe_exec,
                                                 initiator, advisor_options);
    double migration_bill = 0.0;
    auto paid = alloc::apply_advice(*bed.allocator, advice, advisor_options);
    if (paid.ok()) migration_bill = *paid;
    stream_array.refresh_model();
    chase_array.refresh_model();

    sim::ExecutionContext replay_exec(*bed.machine, initiator, kThreads);
    for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
      replay_exec.run_phase("part1.stream", kThreads,
                            [&](sim::ThreadCtx& ctx, unsigned,
                                std::size_t begin, std::size_t end) {
                              if (begin >= end) return;
                              stream_array.record_bulk_read(ctx, 512.0 * kMiB);
                            });
    }
    for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
      replay_exec.run_phase("part2.random", kThreads,
                            [&](sim::ThreadCtx& ctx, unsigned,
                                std::size_t begin, std::size_t end) {
                              if (begin >= end) return;
                              chase_array.record_bulk_random_reads(ctx, 4e6);
                            });
    }
    offline_ns = replay_exec.clock_ns() + migration_bill;
    table.add_row({"offline-advisor", "-", "-", ms(offline_ns),
                   std::to_string(advice.size())});
  }

  // Online runtime.
  FlipResult online;
  {
    bench::Testbed bed = make();
    const unsigned slow = best_target(bed, attr::kCapacity);
    online = run_flip(bed, slow, slow, true);
    if (!online.ok) return false;
    table.add_row({"online-runtime", "-", "-", ms(online.clock_ns),
                   std::to_string(online.accepted + online.evicted)});
  }
  std::printf("%s", table.render().c_str());

  const double advantage = worst_ns - oracle_ns;
  const double recovered = worst_ns - online.clock_ns;
  const double recovery =
      advantage > 0.0 ? recovered / advantage : 1.0;
  const bool recovery_ok = recovery >= 0.80;
  std::printf(
      "recovery: online recovers %s%% of oracle-static's advantage over the "
      "worst placement [%s]\n",
      support::format_fixed(recovery * 100.0, 1).c_str(),
      recovery_ok ? "PASS" : "FAIL: < 80%");
  pass &= recovery_ok;

  // Sampling ablation: decisions must survive 1/10 and 1/100 subsampling.
  const std::vector<std::string> exact_moves =
      accepted_moves(online.decision_log);
  for (double period : {10.0, 100.0}) {
    bench::Testbed bed = make();
    const unsigned slow = best_target(bed, attr::kCapacity);
    runtime::RuntimePolicyOptions options = online_options();
    options.sampler.sample_period = period;
    FlipResult sampled = run_flip(bed, slow, slow, true, options);
    const bool same = accepted_moves(sampled.decision_log) == exact_moves;
    std::printf("sampling 1/%-3.0f: %zu moves, decision sequence %s\n", period,
                accepted_moves(sampled.decision_log).size(),
                same ? "identical to exact sampling [PASS]"
                     : "DIVERGED from exact sampling [FAIL]");
    pass &= same;
  }

  // Adaptive controller: a deterministic cost model (cost fraction =
  // 0.04 / period against the default 1% budget) walks the effective period
  // 1 -> 2 -> 4 and parks in the deadband. The invariance gate then reruns
  // at every period the controller actually chose: the decisions must match
  // exact sampling at the controller's own operating points, and in the
  // mixed-period adaptive run itself (docs/RUNTIME.md "Adaptive sampling").
  {
    bench::Testbed bed = make();
    const unsigned slow = best_target(bed, attr::kCapacity);
    runtime::RuntimePolicyOptions options = online_options();
    options.sampler.adaptive = true;
    options.sampler.cost_model = [](const runtime::Epoch& epoch) {
      return epoch.duration_ns * 0.04 /
             (epoch.sample_period > 0.0 ? epoch.sample_period : 1.0);
    };
    FlipResult adaptive = run_flip(bed, slow, slow, true, options);
    std::vector<double> chosen;
    for (double period : adaptive.periods) {
      if (std::find(chosen.begin(), chosen.end(), period) == chosen.end()) {
        chosen.push_back(period);
      }
    }
    const bool walked = chosen.size() >= 2;
    const bool adaptive_same =
        accepted_moves(adaptive.decision_log) == exact_moves;
    std::printf("adaptive run: %zu distinct controller periods, decision "
                "sequence %s\n",
                chosen.size(),
                adaptive_same && walked
                    ? "identical to exact sampling [PASS]"
                    : "DIVERGED or controller never moved [FAIL]");
    pass &= walked && adaptive_same;
    for (double period : chosen) {
      if (period <= 1.0) continue;  // exact sampling is the reference itself
      bench::Testbed fixed_bed = make();
      const unsigned fixed_slow = best_target(fixed_bed, attr::kCapacity);
      runtime::RuntimePolicyOptions fixed_options = online_options();
      fixed_options.sampler.sample_period = period;
      FlipResult sampled =
          run_flip(fixed_bed, fixed_slow, fixed_slow, true, fixed_options);
      const bool same = accepted_moves(sampled.decision_log) == exact_moves;
      std::printf("controller-chosen 1/%-3.0f: decision sequence %s\n", period,
                  same ? "identical to exact sampling [PASS]"
                       : "DIVERGED from exact sampling [FAIL]");
      pass &= same;
    }
  }
  std::printf("online decision log (exact sampling):\n%s",
              online.decision_log.c_str());
  return pass;
}

/// Budget gate: two equally hot buffers, budget for one move per epoch.
bool run_budget_section() {
  std::printf("\n== migration budget (Xeon, two hot 1 GiB buffers, "
              "1 GiB/epoch budget) ==\n");
  bench::Testbed bed = bench::make_xeon();
  const support::Bitmap initiator = first_initiator(bed.topology());
  const unsigned slow = best_target(bed, attr::kCapacity);
  auto first = bed.machine->allocate(kBufferBytes, slow, "hot.a", 1u << 16);
  auto second = bed.machine->allocate(kBufferBytes, slow, "hot.b", 1u << 16);
  if (!first.ok() || !second.ok()) return false;
  sim::Array<double> first_array(*bed.machine, *first);
  sim::Array<double> second_array(*bed.machine, *second);

  sim::ExecutionContext exec(*bed.machine, initiator, kThreads);
  runtime::RuntimePolicyOptions options = online_options();
  options.classifier.hysteresis_epochs = 1;
  options.engine.epoch_budget_bytes = kBufferBytes;
  runtime::RuntimePolicy policy(*bed.allocator, initiator, options);
  policy.attach(exec, [&] {
    first_array.refresh_model();
    second_array.refresh_model();
  });

  for (unsigned phase = 0; phase < 6; ++phase) {
    exec.run_phase("hot", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     first_array.record_bulk_random_reads(ctx, 4e6);
                     second_array.record_bulk_random_reads(ctx, 4e6);
                   });
  }
  const auto& stats = policy.engine().stats();
  const std::uint64_t max_bytes = policy.engine().max_epoch_migrated_bytes();
  const bool both_moved = stats.accepted == 2;
  const bool within_budget = max_bytes <= kBufferBytes;
  std::printf("accepted=%llu max bytes migrated in one epoch=%s (budget %s) "
              "[%s]\n",
              static_cast<unsigned long long>(stats.accepted),
              support::format_bytes(max_bytes).c_str(),
              support::format_bytes(kBufferBytes).c_str(),
              both_moved && within_budget
                  ? "PASS: spread over epochs, budget respected"
                  : "FAIL");
  return both_moved && within_budget;
}

/// Stability gate: attribute-placed stable workload, hysteresis off.
bool run_stability_section() {
  std::printf("\n== phase-stable workload, hysteresis disabled (Xeon) ==\n");
  bench::Testbed bed = bench::make_xeon();
  const support::Bitmap initiator = first_initiator(bed.topology());
  const unsigned fast = best_target(bed, attr::kBandwidth);
  auto buffer =
      bed.machine->allocate(kBufferBytes, fast, "stable.stream", 1u << 16);
  if (!buffer.ok()) return false;
  sim::Array<double> array(*bed.machine, *buffer);

  sim::ExecutionContext exec(*bed.machine, initiator, kThreads);
  runtime::RuntimePolicyOptions options = online_options();
  options.classifier.hysteresis_epochs = 1;
  runtime::RuntimePolicy policy(*bed.allocator, initiator, options);
  policy.attach(exec, [&] { array.refresh_model(); });

  for (unsigned phase = 0; phase < 12; ++phase) {
    exec.run_phase("stream", kThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     array.record_bulk_read(ctx, 512.0 * kMiB);
                   });
  }
  const bool quiet = policy.engine().stats().accepted == 0 &&
                     policy.engine().stats().evicted == 0 &&
                     bed.allocator->stats().migrations == 0;
  std::printf("migrations=%llu [%s]\n",
              static_cast<unsigned long long>(
                  bed.allocator->stats().migrations),
              quiet ? "PASS: nothing to do, nothing done" : "FAIL");
  return quiet;
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Ablation A11: online runtime vs static placement "
      "(phase-flip workload)").c_str());

  bool pass = true;
  pass &= run_testbed("Xeon CLX 1LM", bench::make_xeon);
  pass &= run_testbed("KNL SNC-4 flat", bench::make_knl);
  pass &= run_budget_section();
  pass &= run_stability_section();

  std::printf("\n%s\n", pass ? "ALL GATES PASS"
                             : "GATE VIOLATION (see FAIL lines above)");
  return pass ? 0 : 1;
}
