// Full (initiator x target) performance matrices and the derived SLIT-style
// distance table for the §VI machines — the §VIII "many available memories,
// local or not" picture. Firmware only describes local pairs; the remote
// rows here come from benchmarking, which is exactly the gap the paper says
// hwloc fills ("hwloc is still able to expose them thanks to benchmarking").
#include "common.hpp"

#include "hetmem/memattr/distances.hpp"

using namespace hetmem;

namespace {

void report(const char* title, bench::Testbed& bed) {
  std::printf("%s", support::banner(title).c_str());
  const topo::Topology& topology = bed.topology();

  // Distinct initiator localities.
  std::vector<support::Bitmap> localities;
  for (const topo::Object* node : topology.numa_nodes()) {
    bool seen = false;
    for (const support::Bitmap& existing : localities) {
      seen |= existing == node->cpuset();
    }
    if (!seen && !node->cpuset().empty()) localities.push_back(node->cpuset());
  }

  for (attr::AttrId attribute : {attr::kLatency, attr::kBandwidth}) {
    std::vector<std::string> headers = {"initiator \\ target"};
    for (const topo::Object* node : topology.numa_nodes()) {
      headers.push_back("L#" + std::to_string(node->logical_index()) + " " +
                        topo::memory_kind_name(node->memory_kind()));
    }
    support::TextTable table(std::move(headers));
    for (const support::Bitmap& locality : localities) {
      std::vector<std::string> row = {"{" + locality.to_list_string() + "}"};
      const auto initiator = attr::Initiator::from_cpuset(locality);
      for (const topo::Object* node : topology.numa_nodes()) {
        auto value = bed.registry->value(attribute, *node, initiator);
        if (!value.ok()) {
          row.push_back("-");
        } else if (attribute == attr::kLatency) {
          row.push_back(support::format_fixed(*value, 0) + "ns");
        } else {
          row.push_back(support::format_fixed(*value / 1e9, 1) + "GB/s");
        }
      }
      table.add_row(std::move(row));
    }
    std::printf("%s:\n%s", bed.registry->info(attribute).name.c_str(),
                table.render().c_str());
  }

  auto matrix = attr::DistanceMatrix::from_latencies(*bed.registry);
  if (matrix.ok()) {
    std::printf("%s", matrix->render().c_str());
    std::printf("nearest-first order from node 0's CPUs:");
    for (unsigned node : matrix->nearest_order(0)) {
      std::printf(" L#%u", node);
    }
    std::printf("\n");
  } else {
    std::printf("(distance matrix unavailable: %s)\n",
                matrix.error().to_string().c_str());
  }
}

}  // namespace

int main() {
  // Probe-fed testbeds include remote pairs (make_xeon/knl probe with
  // include_remote=true by default).
  bench::Testbed xeon = bench::make_xeon();
  report("Xeon: measured (initiator x target) matrices", xeon);
  bench::Testbed knl = bench::make_knl();
  report("KNL: measured (initiator x target) matrices", knl);
  std::printf(
      "\nShape check: remote pairs cost ~1.6x latency / ~0.5x bandwidth;\n"
      "the SLIT view answers sec. VIII's 'local NVDIMM or another DRAM?'\n"
      "directly from the nearest-first order.\n");
  return 0;
}
