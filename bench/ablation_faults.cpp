// Ablation A-F (docs/RESILIENCE.md): what fault injection costs, end to end.
//
// For each fault preset, the full pipeline runs on both §VI machines: the
// firmware HMAT text is corrupted and re-parsed leniently, discovery probes
// fail/jitter, and the machine throws transient allocation failures and node
// offlining at the resilient allocator — then STREAM and Graph500 run to
// completion and report real numbers. The table shows the degradation
// (throughput under chaos vs. a clean run) next to the resilience counters
// that explain it: fallbacks taken, transient retries spent, attribute
// rescues, probe pairs skipped, parse diagnostics.
#include "common.hpp"

#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/fault/fault.hpp"

using namespace hetmem;

namespace {

support::Bitmap first_initiator(const topo::Topology& topology) {
  for (const topo::Object* node : topology.numa_nodes()) {
    if (!node->cpuset().empty()) return node->cpuset();
  }
  return {};
}

struct Row {
  std::string stream_gbps = "-";
  std::string bfs_teps = "-";
  std::uint64_t fallbacks = 0;
  std::uint64_t retries = 0;
  std::uint64_t rescues = 0;
  std::size_t failed_pairs = 0;
  std::size_t parse_errors = 0;
  std::size_t parse_warnings = 0;
};

Row run_pipeline(sim::SimMachine& machine, const char* preset,
                 std::uint64_t seed) {
  Row row;
  fault::FaultInjector injector = fault::FaultInjector::preset(preset, seed);

  // Firmware tables, possibly corrupted; the lenient parser keeps what it can.
  const std::string clean = hmat::serialize(hmat::generate(machine.topology()));
  const fault::HmatCorruption corruption =
      fault::corrupt_hmat_text(clean, injector);
  const hmat::ParseReport report = hmat::parse_lenient(corruption.text);
  row.parse_errors = report.error_count();
  row.parse_warnings = report.warning_count();

  attr::MemAttrRegistry registry(machine.topology());
  (void)hmat::load_into(registry, report.table);

  // Discovery under probe faults.
  machine.set_fault_injector(&injector);
  probe::ProbeOptions probe_options;
  probe_options.buffer_bytes = 64 * support::kMiB;
  probe_options.backing_bytes = 64 * 1024;
  probe_options.chase_accesses = 1000;
  probe_options.threads = 4;
  probe_options.include_remote = false;
  probe_options.faults = &injector;
  probe_options.repeats = 2;
  auto discovery = probe::discover(machine, probe_options);
  if (discovery.ok()) {
    (void)probe::feed_registry(registry, *discovery);
    row.failed_pairs = discovery->failed_pairs;
  }

  alloc::HeterogeneousAllocator allocator(machine, registry);
  allocator.set_retry_policy({.max_transient_retries = 8});
  const support::Bitmap initiator = first_initiator(machine.topology());

  apps::StreamConfig stream_config;
  stream_config.declared_total_bytes = 768 * support::kMiB;
  stream_config.backing_elements = 1u << 16;
  stream_config.threads = 8;
  stream_config.iterations = 3;
  apps::BufferPlacement stream_placement;
  stream_placement.attribute = attr::kBandwidth;
  stream_placement.attribute_rescue = true;
  auto stream_runner = apps::StreamRunner::create(
      machine, &allocator, initiator, stream_config, stream_placement);
  if (stream_runner.ok()) {
    auto result = (*stream_runner)->run_triad();
    if (result.ok()) row.stream_gbps = bench::gbps(result->triad_bytes_per_second);
  }

  apps::Graph500Config bfs_config;
  bfs_config.scale_declared = 20;
  bfs_config.scale_backing = 14;
  bfs_config.threads = 8;
  bfs_config.num_roots = 2;
  apps::Graph500Placement bfs_placement =
      apps::Graph500Placement::by_attribute(attr::kLatency);
  bfs_placement.graph.attribute_rescue = true;
  bfs_placement.parents.attribute_rescue = true;
  bfs_placement.frontier.attribute_rescue = true;
  auto bfs_runner = apps::Graph500Runner::create(machine, &allocator, initiator,
                                                 bfs_config, bfs_placement);
  if (bfs_runner.ok()) {
    auto result = (*bfs_runner)->run();
    if (result.ok()) row.bfs_teps = bench::teps_e8(result->harmonic_mean_teps);
  }
  machine.set_fault_injector(nullptr);

  const alloc::AllocatorStats& stats = allocator.stats();
  row.fallbacks = stats.fallbacks;
  row.retries = stats.transient_retries;
  row.rescues = stats.attribute_rescues;
  return row;
}

}  // namespace

int main() {
  std::printf("%s",
              support::banner(
                  "Ablation A-F: fault presets x testbeds -- the resilient "
                  "pipeline (corrupt HMAT -> lenient parse -> faulty probe -> "
                  "retry/rescue allocator -> STREAM + Graph500), seed 42")
                  .c_str());

  struct Bed {
    const char* name;
    topo::Topology (*factory)();
    std::uint64_t llc;
  };
  const Bed beds[] = {
      {"KNL SNC-4 Flat", topo::knl_snc4_flat, 8ull * support::kMiB},
      {"Xeon CLX 1LM", topo::xeon_clx_1lm,
       static_cast<std::uint64_t>(27.5 * support::kMiB)},
  };

  support::TextTable table({"Testbed", "Preset", "STREAM GB/s", "TEPSe+8",
                            "fallbk", "retry", "rescue", "probe-skip",
                            "parse e/w"});
  for (const Bed& bed : beds) {
    for (const char* preset : fault::FaultInjector::preset_names()) {
      sim::SimMachine machine(bed.factory());
      machine.set_llc_bytes(bed.llc);
      const Row row = run_pipeline(machine, preset, /*seed=*/42);
      table.add_row({bed.name, preset, row.stream_gbps, row.bfs_teps,
                     std::to_string(row.fallbacks), std::to_string(row.retries),
                     std::to_string(row.rescues),
                     std::to_string(row.failed_pairs),
                     std::to_string(row.parse_errors) + "/" +
                         std::to_string(row.parse_warnings)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: \"none\" rows are the clean baseline; degraded throughput\n"
      "with nonzero retry/rescue counters is the resilience machinery paying\n"
      "for completion instead of crashing. A \"-\" cell would mean a workload\n"
      "failed to complete -- the chaos_test contract forbids it for every\n"
      "preset x topology x seed combination in tier-1.\n");
  return 0;
}
