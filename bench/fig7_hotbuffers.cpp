// Reproduces Figure 7: the Memory Access hot-object analysis.
//
//  (a) Graph500: one dominant buffer (the visited/parents BFS state touched
//      by every edge, allocated in xmalloc in the paper) with a huge LLC
//      miss count and near-100% random accesses -> latency-sensitive.
//  (b) STREAM Triad: three equal arrays, all-sequential traffic ->
//      bandwidth-sensitive; read vs write bandwidth split shown.
// Runs with memory on DRAM and on NVDIMM, like the figure's top/bottom rows.
#include "common.hpp"

#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/prof/profiler.hpp"

using namespace hetmem;

namespace {

void analyze_graph500(bench::Testbed& bed, unsigned node, const char* label) {
  apps::Graph500Config config;
  config.scale_declared = 26;
  config.scale_backing = 15;
  config.threads = 16;
  config.num_roots = 2;
  config.compute_ns_per_edge = 16.0;
  config.mlp = 8.0;
  auto runner = apps::Graph500Runner::create(
      *bed.machine, nullptr, bed.topology().numa_node(0)->cpuset(), config,
      apps::Graph500Placement::all_on_node(node));
  if (!runner.ok() || !(*runner)->run().ok()) return;
  std::printf("%s", support::banner(std::string("Graph500 on ") + label).c_str());
  std::printf("%s", prof::render_hot_buffers(
                        prof::profile_buffers((*runner)->exec())).c_str());
  std::printf("%s", prof::render_timeline((*runner)->exec()).c_str());
  std::printf("%s", prof::render_summary(prof::summarize((*runner)->exec())).c_str());
}

void analyze_stream(bench::Testbed& bed, unsigned node, const char* label) {
  apps::StreamConfig config;
  config.declared_total_bytes = 22ull * support::kGiB;
  config.backing_elements = 1u << 16;
  config.threads = 20;
  config.iterations = 5;
  apps::BufferPlacement placement;
  placement.forced_node = node;
  auto runner = apps::StreamRunner::create(
      *bed.machine, nullptr, bed.topology().numa_node(0)->cpuset(), config,
      placement);
  if (!runner.ok() || !(*runner)->run_triad().ok()) return;
  std::printf("%s",
              support::banner(std::string("STREAM Triad on ") + label).c_str());
  std::printf("%s", prof::render_hot_buffers(
                        prof::profile_buffers((*runner)->exec())).c_str());
  std::printf("%s", prof::render_timeline((*runner)->exec()).c_str());
  std::printf("%s", prof::render_summary(prof::summarize((*runner)->exec())).c_str());
}

}  // namespace

int main() {
  bench::Testbed bed = bench::make_xeon();
  analyze_graph500(bed, 0, "DRAM (fig. 7a top)");
  analyze_graph500(bed, 2, "NVDIMM (fig. 7a bottom)");
  analyze_stream(bed, 0, "DRAM (fig. 7b top)");
  analyze_stream(bed, 2, "NVDIMM (fig. 7b bottom)");
  std::printf(
      "\nShape check: the hottest Graph500 object is the BFS visited/parents\n"
      "state with dominant LLC misses and ~100%% random access (latency\n"
      "hint); STREAM's three arrays are sequential (bandwidth hint).\n");
  return 0;
}
