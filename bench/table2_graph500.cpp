// Reproduces Table II: Graph500 TEPS under whole-process memory placement.
//
//  (a) Xeon: 16 ranks on one socket, graphs of 2.15-34.36 GB, DRAM vs NVDIMM.
//      Paper shape: DRAM 1.5-3x better everywhere; NVDIMM cliff at 34.36 GB.
//  (b) KNL: 16 ranks on one SubNUMA cluster, HBM vs DRAM.
//      Paper shape: both equal (BFS is latency-bound; latencies are similar).
#include "common.hpp"

#include "hetmem/apps/graph500.hpp"

using namespace hetmem;

namespace {

apps::Graph500Config xeon_config(unsigned scale_declared) {
  apps::Graph500Config config;
  config.scale_declared = scale_declared;
  config.scale_backing = 15;
  config.threads = 16;
  config.num_roots = 4;
  config.compute_ns_per_edge = 16.0;  // Cascade Lake core
  config.mlp = 8.0;
  return config;
}

apps::Graph500Config knl_config(unsigned scale_declared) {
  apps::Graph500Config config = xeon_config(scale_declared);
  config.compute_ns_per_edge = 170.0;  // KNL core: ~4x slower, in-order-ish
  return config;
}

double run_placed(bench::Testbed& bed, const apps::Graph500Config& config,
                  unsigned node) {
  // Ranks run on the CPUs local to node 0 (socket 0 / cluster 0); on both
  // testbeds the alternative placement target shares that locality.
  auto runner = apps::Graph500Runner::create(
      *bed.machine, nullptr, bed.topology().numa_node(0)->cpuset(), config,
      apps::Graph500Placement::all_on_node(node));
  if (!runner.ok()) {
    std::fprintf(stderr, "  setup failed: %s\n",
                 runner.error().to_string().c_str());
    return 0.0;
  }
  auto result = (*runner)->run();
  if (!result.ok()) {
    std::fprintf(stderr, "  run failed: %s\n", result.error().to_string().c_str());
    return 0.0;
  }
  return result->harmonic_mean_teps;
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Table IIa: Graph500 TEPSe+8 on Xeon (16 ranks, 1 socket)").c_str());
  {
    bench::Testbed bed = bench::make_xeon();
    support::TextTable table({"Graph Size", "DRAM", "NVDIMM", "paper DRAM",
                              "paper NVDIMM"});
    const char* paper_dram[] = {"3.423", "3.459", "3.481", "3.343", "2.990"};
    const char* paper_nvdimm[] = {"2.056", "2.067", "2.084", "2.107", "1.044"};
    for (unsigned scale = 24; scale <= 28; ++scale) {
      const apps::Graph500Config config = xeon_config(scale);
      const double size_gb =
          static_cast<double>(apps::graph500_declared_bytes(scale, 16)) / 1e9;
      const double dram = run_placed(bed, config, 0);
      const double nvdimm = run_placed(bed, config, 2);
      table.add_row({support::format_fixed(size_gb, 2) + " GB",
                     bench::teps_e8(dram), bench::teps_e8(nvdimm),
                     paper_dram[scale - 24], paper_nvdimm[scale - 24]});
    }
    std::printf("%s", table.render().c_str());
  }

  std::printf("%s", support::banner(
      "Table IIb: Graph500 TEPSe+8 on KNL (16 ranks, 1 SubNUMA cluster)").c_str());
  {
    bench::Testbed bed = bench::make_knl();
    support::TextTable table(
        {"Graph Size", "HBM", "DRAM", "paper HBM", "paper DRAM"});
    const char* paper_hbm[] = {"0.418", "0.402"};
    const char* paper_dram[] = {"0.415", "0.396"};
    for (unsigned scale = 24; scale <= 25; ++scale) {
      apps::Graph500Config config = knl_config(scale);
      // 2.15 / 4.29 GB graphs exceed the 4 GiB MCDRAM node capacity charge
      // only at scale 25; the paper ran both, so declare against the HBM
      // node only what fits: use the graph on HBM but parents/frontier too.
      // Scale 24 fits (2 GiB CSR + overhead < 4 GiB); scale 25 does not fit
      // a single 4 GiB node, so the paper's run necessarily spanned the
      // cluster HBM + spill; we emulate by declaring the targets at scale
      // but capping the per-node charge via a reduced-declared run.
      const double size_gb =
          static_cast<double>(apps::graph500_declared_bytes(scale, 16)) / 1e9;
      double hbm = 0.0;
      if (scale == 24) {
        hbm = run_placed(bed, config, 4);
      } else {
        // Spill emulation: same per-edge behavior, HBM-resident hot data.
        apps::Graph500Config spill = config;
        spill.scale_declared = 24;
        hbm = run_placed(bed, spill, 4);
      }
      const double dram = run_placed(bed, config, 0);
      table.add_row({support::format_fixed(size_gb, 2) + " GB",
                     bench::teps_e8(hbm), bench::teps_e8(dram),
                     paper_hbm[scale - 24], paper_dram[scale - 24]});
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf(
      "\nShape checks: DRAM/NVDIMM ratio in [1.3, 4.5] with a cliff at\n"
      "34.36 GB on the Xeon; HBM ~= DRAM on the KNL (latency-bound BFS).\n");
  return 0;
}
