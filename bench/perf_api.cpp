// P1: google-benchmark microbenchmarks of the API hot paths.
//
// The paper positions the attributes API inside allocators and runtimes, so
// query and allocation costs must be negligible next to an actual mmap/page
// fault. These measure get_value, best_target, targets_ranked, mem_alloc+
// free round trips, and topology queries on the Fig. 2 Xeon.
#include <benchmark/benchmark.h>

#include <mutex>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/alloc/pool.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/simmem/telemetry.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"

namespace {

using namespace hetmem;

struct Fixture {
  Fixture() : machine(topo::xeon_clx_snc_1lm()), registry(machine.topology()) {
    hmat::GenerateOptions options;
    options.local_only = false;
    (void)hmat::load_into(registry, hmat::generate(machine.topology(), options));
  }
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void BM_GetValue(benchmark::State& state) {
  Fixture& f = fixture();
  const topo::Object& node = *f.machine.topology().numa_node(0);
  const auto initiator = attr::Initiator::from_cpuset(node.cpuset());
  for (auto _ : state) {
    auto value = f.registry.value(attr::kLatency, node, initiator);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_GetValue);

void BM_BestTarget(benchmark::State& state) {
  Fixture& f = fixture();
  const auto initiator = attr::Initiator::from_cpuset(
      f.machine.topology().pus().front()->cpuset());
  for (auto _ : state) {
    auto best = f.registry.best_target(attr::kBandwidth, initiator);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_BestTarget);

void BM_TargetsRanked(benchmark::State& state) {
  Fixture& f = fixture();
  const auto initiator = attr::Initiator::from_cpuset(
      f.machine.topology().pus().front()->cpuset());
  for (auto _ : state) {
    auto ranked = f.registry.targets_ranked(attr::kLatency, initiator);
    benchmark::DoNotOptimize(ranked);
  }
}
BENCHMARK(BM_TargetsRanked);

void BM_LocalNumaNodes(benchmark::State& state) {
  Fixture& f = fixture();
  const support::Bitmap cpuset = f.machine.topology().pus().front()->cpuset();
  for (auto _ : state) {
    auto nodes = f.machine.topology().local_numa_nodes(cpuset);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_LocalNumaNodes);

void BM_MemAllocFree(benchmark::State& state) {
  // Private machine: the loop mutates allocator state.
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  attr::MemAttrRegistry registry(machine.topology());
  hmat::GenerateOptions options;
  options.local_only = false;
  (void)hmat::load_into(registry, hmat::generate(machine.topology(), options));
  alloc::HeterogeneousAllocator allocator(machine, registry);

  alloc::AllocRequest request;
  request.bytes = static_cast<std::uint64_t>(state.range(0));
  request.attribute = attr::kLatency;
  request.initiator = machine.topology().numa_node(0)->cpuset();
  request.label = "bench";
  for (auto _ : state) {
    auto allocation = allocator.mem_alloc(request);
    if (allocation.ok()) (void)allocator.mem_free(allocation->buffer);
  }
}
BENCHMARK(BM_MemAllocFree)->Arg(4096)->Arg(1 << 20)->Arg(1 << 30);

// --- multithreaded scaling (docs/CONCURRENCY.md) ---
//
// The sharded allocation path (per-node atomic capacity CAS, lock-free
// buffer-table readers, atomic stats) against a naive global-lock baseline
// wrapping the same allocator behind one mutex — the curve at 1/2/4/8/16
// threads is the acceptance evidence that sharding beats the global lock.
// Tracing is disabled so the hot path is lock-free; iterations are pinned so
// every thread count does identical per-thread work.

struct ThreadedFixture {
  ThreadedFixture()
      : machine(topo::xeon_clx_snc_1lm()),
        registry(machine.topology()),
        allocator(machine, registry) {
    hmat::GenerateOptions options;
    options.local_only = false;
    (void)hmat::load_into(registry, hmat::generate(machine.topology(), options));
    allocator.set_trace_enabled(false);
  }
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
};

constexpr int kThreadedIterations = 50000;

alloc::AllocRequest threaded_request(const ThreadedFixture& f) {
  alloc::AllocRequest request;
  request.bytes = 4096;
  request.attribute = attr::kLatency;
  request.initiator = f.machine.topology().numa_node(0)->cpuset();
  request.backing_bytes = 64;
  request.label = "bench.mt";
  return request;
}

void BM_MemAllocFreeSharded(benchmark::State& state) {
  static ThreadedFixture f;  // shared across all bench threads
  const alloc::AllocRequest request = threaded_request(f);
  for (auto _ : state) {
    auto allocation = f.allocator.mem_alloc(request);
    if (allocation.ok()) (void)f.allocator.mem_free(allocation->buffer);
  }
}
BENCHMARK(BM_MemAllocFreeSharded)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

void BM_MemAllocFreeGlobalLock(benchmark::State& state) {
  static ThreadedFixture f;
  static std::mutex global_lock;
  const alloc::AllocRequest request = threaded_request(f);
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(global_lock);
    auto allocation = f.allocator.mem_alloc(request);
    if (allocation.ok()) (void)f.allocator.mem_free(allocation->buffer);
  }
}
BENCHMARK(BM_MemAllocFreeGlobalLock)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

// Read-mostly registry scaling: concurrent targets_ranked through the
// shared (reader) lock.
void BM_TargetsRankedConcurrent(benchmark::State& state) {
  Fixture& f = fixture();
  const auto initiator = attr::Initiator::from_cpuset(
      f.machine.topology().pus().front()->cpuset());
  for (auto _ : state) {
    auto ranked = f.registry.targets_ranked(attr::kLatency, initiator);
    benchmark::DoNotOptimize(ranked);
  }
}
BENCHMARK(BM_TargetsRankedConcurrent)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

// --- ranking cache: cached vs uncached hot path (docs/PERF.md) ---
//
// Same allocator, same requests; the only difference is whether
// MemAttrRegistry serves rankings from the generation-stamped cache (a
// lock-free shared_ptr load) or rebuilds them under the shared_mutex on
// every call. The 8-thread pair is the acceptance gate in CI. The cached
// run reports the hit rate as a counter (steady state must be >= 99%).

void BM_MemAllocFreeCached(benchmark::State& state) {
  static ThreadedFixture f;
  const alloc::AllocRequest request = threaded_request(f);
  f.registry.set_ranking_cache_enabled(true);
  if (state.thread_index() == 0) f.registry.reset_ranking_cache_stats();
  for (auto _ : state) {
    auto allocation = f.allocator.mem_alloc(request);
    if (allocation.ok()) (void)f.allocator.mem_free(allocation->buffer);
  }
  if (state.thread_index() == 0) {
    const attr::RankingCacheStats stats = f.registry.ranking_cache_stats();
    state.counters["hit_rate"] = stats.hit_rate();
  }
}
BENCHMARK(BM_MemAllocFreeCached)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

void BM_MemAllocFreeUncached(benchmark::State& state) {
  static ThreadedFixture f;
  const alloc::AllocRequest request = threaded_request(f);
  f.registry.set_ranking_cache_enabled(false);
  for (auto _ : state) {
    auto allocation = f.allocator.mem_alloc(request);
    if (allocation.ok()) (void)f.allocator.mem_free(allocation->buffer);
  }
}
BENCHMARK(BM_MemAllocFreeUncached)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

// Pure ranked-query scaling through the cache (no allocator around it):
// upper bound on what the snapshot path saves over BM_TargetsRankedConcurrent.
void BM_TargetsRankedCachedConcurrent(benchmark::State& state) {
  Fixture& f = fixture();
  const auto initiator = attr::Initiator::from_cpuset(
      f.machine.topology().pus().front()->cpuset());
  for (auto _ : state) {
    auto ranked = f.registry.targets_ranked_cached(attr::kLatency, initiator);
    benchmark::DoNotOptimize(ranked);
  }
}
BENCHMARK(BM_TargetsRankedCachedConcurrent)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

// --- pool magazines: per-thread cached blocks vs the pool mutex ---
//
// Same pool workload (allocate/free churn on one shared pool); magazines
// turn the steady-state path into thread-local vector ops, the baseline
// serializes every operation on the pool mutex.

alloc::PoolOptions pool_bench_options(unsigned magazine_blocks) {
  alloc::PoolOptions options;
  options.attribute = attr::kLatency;
  options.block_bytes = 4096;
  options.blocks_per_slab = 4096;
  options.magazine_blocks = magazine_blocks;
  return options;
}

void BM_PoolMagazine(benchmark::State& state) {
  static ThreadedFixture f;
  static alloc::Pool pool(f.allocator,
                          f.machine.topology().numa_node(0)->cpuset(),
                          pool_bench_options(/*magazine_blocks=*/64),
                          "bench.pool.mag");
  for (auto _ : state) {
    auto block = pool.allocate();
    if (block.ok()) (void)pool.free(*block);
  }
  pool.flush_thread_magazine();
}
BENCHMARK(BM_PoolMagazine)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

void BM_PoolMutex(benchmark::State& state) {
  static ThreadedFixture f;
  static alloc::Pool pool(f.allocator,
                          f.machine.topology().numa_node(0)->cpuset(),
                          pool_bench_options(/*magazine_blocks=*/0),
                          "bench.pool.mtx");
  for (auto _ : state) {
    auto block = pool.allocate();
    if (block.ok()) (void)pool.free(*block);
  }
}
BENCHMARK(BM_PoolMutex)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

// --- telemetry publish: per-thread SPSC rings vs shared atomic counters ---
//
// The hand-off the runtime's sampler rework is built on (docs/PERF.md,
// docs/CONCURRENCY.md): each thread publishes per-buffer traffic records
// into its OWN ring — no shared cache line on the publish path, so the
// curve stays flat from 1 to 16 threads. The baseline is the shared-atomic
// design the rings replace: all threads CAS-add into one table of per-buffer
// counters, and the 64-buffer rotation keeps them ping-ponging the same
// lines. Ring drains (pop_batch when full) are charged to the producer here
// so the comparison includes the consumer side's work.

constexpr std::uint32_t kTelemetryBuffers = 64;

void BM_TelemetryRingRecord(benchmark::State& state) {
  static sim::TelemetryRing rings[16];
  sim::TelemetryRing& ring = rings[state.thread_index()];
  sim::TelemetryRecord record;
  sim::TelemetryRecord drained[128];
  for (auto _ : state) {
    record.cumulative.reads += 1.0;
    record.cumulative.memory_bytes += 64.0;
    if (!ring.try_push(record)) {
      while (ring.pop_batch(drained, 128) > 0) {
        benchmark::DoNotOptimize(drained[0]);
      }
      (void)ring.try_push(record);
    }
    record.buffer = (record.buffer + 1) % kTelemetryBuffers;
  }
  sim::TelemetryRecord sink;
  while (ring.try_pop(sink)) benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TelemetryRingRecord)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

void BM_SharedTrafficRecord(benchmark::State& state) {
  static sim::SharedTrafficTable table(kTelemetryBuffers);
  sim::BufferTraffic delta;
  delta.reads = 1.0;
  delta.memory_bytes = 64.0;
  std::uint32_t buffer = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    table.record(buffer % kTelemetryBuffers, delta);
    ++buffer;
  }
  benchmark::DoNotOptimize(table.read(0));
}
BENCHMARK(BM_SharedTrafficRecord)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
    ->Iterations(kThreadedIterations)
    ->UseRealTime();

void BM_HmatParse(benchmark::State& state) {
  hmat::GenerateOptions options;
  options.local_only = false;
  options.read_write_split = true;
  topo::Topology topology = topo::fictitious_fig3();
  const std::string text = hmat::serialize(hmat::generate(topology, options));
  for (auto _ : state) {
    auto table = hmat::parse(text);
    benchmark::DoNotOptimize(table);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_HmatParse);

void BM_TopologyConstruction(benchmark::State& state) {
  for (auto _ : state) {
    topo::Topology topology = topo::xeon_clx_snc_1lm();
    benchmark::DoNotOptimize(topology);
  }
}
BENCHMARK(BM_TopologyConstruction);

}  // namespace

BENCHMARK_MAIN();
