// Memory characterization curves (Intel MLC-style): effective latency as a
// function of injected bandwidth load, per node kind, on the Xeon testbed.
//
// The paper's footnote 7 ("the latencies of HBM and DRAM depend on the
// concurrency load") and §VIII's precision question ("knowing that they are
// difficult to measure and can vary with the load") are both about this
// curve — it shows why a single Latency attribute value is a deliberate
// simplification, and what the loaded-latency term in the performance model
// does.
#include "common.hpp"

#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

/// One point: run a phase mixing a pointer chase with an injected stream of
/// `load_fraction` of the node's peak, report chase latency and achieved
/// bandwidth.
struct Point {
  double bandwidth_gbps = 0.0;
  double latency_ns = 0.0;
};

Point measure_point(sim::SimMachine& machine, unsigned node,
                    double load_fraction) {
  auto buffer = machine.allocate(2 * kGiB, node, "curve", 4096);
  if (!buffer.ok()) return {};
  sim::ExecutionContext exec(machine,
                             machine.topology().numa_node(0)->cpuset(), 16);
  exec.set_mlp(1.0);
  sim::Array<std::uint64_t> array(machine, *buffer);

  const double peak_bw =
      machine.perf_model().node(node).read_bw;
  constexpr double kChaseAccesses = 100000.0;
  const auto& phase = exec.run_phase(
      "point", 16, [&](sim::ThreadCtx& ctx, unsigned thread, std::size_t begin,
                       std::size_t end) {
        if (begin >= end) return;
        if (thread == 0) {
          // The latency probe.
          array.record_bulk_random_reads(ctx, kChaseAccesses);
        } else if (load_fraction > 0.0) {
          // 15 loader threads inject stream traffic sized so the phase's
          // demand approximates load_fraction of peak for its duration.
          const double chase_ns_estimate =
              kChaseAccesses * machine.perf_model().node(node).idle_latency_ns;
          const double bytes =
              peak_bw * load_fraction * (chase_ns_estimate / 1e9) / 15.0;
          array.record_bulk_read(ctx, bytes);
        }
      });

  Point point;
  const auto& stats = phase.nodes[node];
  point.bandwidth_gbps =
      (stats.read_bytes + stats.write_bytes) / (phase.sim_ns / 1e9) / 1e9;
  point.latency_ns = stats.latency_stall_ns / kChaseAccesses;
  (void)machine.free(*buffer);
  return point;
}

}  // namespace

int main() {
  bench::Testbed bed = bench::make_xeon();
  std::printf("%s", support::banner(
      "Loaded-latency curves (MLC-style): latency vs injected load, Xeon").c_str());

  for (unsigned node : {0u, 2u}) {
    const char* kind = topo::memory_kind_name(
        bed.topology().numa_node(node)->memory_kind());
    support::TextTable table({"injected load (frac. of peak)",
                              "achieved GB/s", "chase latency (ns)"});
    for (double load : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      Point point = measure_point(*bed.machine, node, load);
      table.add_row({support::format_fixed(load, 1),
                     support::format_fixed(point.bandwidth_gbps, 2),
                     support::format_fixed(point.latency_ns, 0)});
    }
    std::printf("node L#%u (%s):\n%s", node, kind, table.render().c_str());
  }
  std::printf(
      "\nShape check: latency rises superlinearly as the node approaches\n"
      "saturation — the classic loaded-latency curve. The Latency attribute\n"
      "stores one point of it; the paper's sec. VIII asks how many points\n"
      "are worth exposing.\n");
  return 0;
}
