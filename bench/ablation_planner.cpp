// Ablation A6 (paper §VII): FCFS allocation vs priority planning.
//
// Workload: four buffers on the KNL cluster — two cold scratch buffers
// allocated first, then the two hot ones (a bandwidth-bound field and a
// latency-bound index). Under FCFS the scratch grabs the 4GiB MCDRAM; the
// planner reorders by priority. We run one round of kernels under each
// placement and compare simulated time — the quantified version of the
// paper's "Late allocations of performance sensitive buffers should thus
// be moved earlier".
#include "common.hpp"

#include "hetmem/alloc/planner.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

struct Workload {
  sim::BufferId scratch_a, scratch_b, field, index;
};

double run_round(bench::Testbed& bed, const Workload& w) {
  sim::ExecutionContext exec(*bed.machine,
                             bed.topology().numa_node(0)->cpuset(), 16);
  exec.set_mlp(8.0);
  sim::Array<double> field(*bed.machine, w.field);
  sim::Array<std::uint32_t> index(*bed.machine, w.index);
  sim::Array<double> scratch(*bed.machine, w.scratch_a);

  // Hot streaming kernel over the field.
  exec.run_phase("field", 16,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     field.record_bulk_read(ctx, 8e9 / 16);
                     field.record_bulk_write(ctx, 4e9 / 16);
                   }
                 });
  // Hot dependent kernel over the index.
  exec.run_phase("index", 16,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     index.record_bulk_random_reads(ctx, 150000.0);
                   }
                 });
  // Cold touch of the scratch (rare checkpoint write).
  exec.run_phase("scratch", 16,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     scratch.record_bulk_write(ctx, 1e8 / 16);
                   }
                 });
  return exec.clock_ns() / 1e6;
}

std::string node_kind(bench::Testbed& bed, sim::BufferId buffer) {
  return topo::memory_kind_name(
      bed.topology().numa_node(bed.machine->info(buffer).node)->memory_kind());
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Ablation A6: FCFS vs priority-planned placement (KNL cluster)").c_str());

  support::TextTable table({"Strategy", "scratch", "field", "index",
                            "round time (ms)"});

  // --- FCFS: allocation order = declaration order. ---
  {
    bench::Testbed bed = bench::make_knl();
    const support::Bitmap initiator = bed.topology().numa_node(0)->cpuset();
    auto fcfs_alloc = [&](const char* label, std::uint64_t bytes,
                          attr::AttrId attribute) {
      alloc::AllocRequest request;
      request.bytes = bytes;
      request.attribute = attribute;
      request.initiator = initiator;
      request.label = label;
      request.backing_bytes = 4096;
      auto allocation = bed.allocator->mem_alloc(request);
      return allocation.ok() ? allocation->buffer : sim::BufferId{};
    };
    Workload w;
    w.scratch_a = fcfs_alloc("scratch.a", 2 * kGiB, attr::kBandwidth);
    w.scratch_b = fcfs_alloc("scratch.b", 2 * kGiB, attr::kBandwidth);
    w.field = fcfs_alloc("field", 3 * kGiB, attr::kBandwidth);
    w.index = fcfs_alloc("index", 2 * kGiB, attr::kLatency);
    const double ms = run_round(bed, w);
    table.add_row({"FCFS", node_kind(bed, w.scratch_a), node_kind(bed, w.field),
                   node_kind(bed, w.index), support::format_fixed(ms, 2)});
  }

  // --- Planned: same requests with priorities, placed by the planner. ---
  {
    bench::Testbed bed = bench::make_knl();
    const support::Bitmap initiator = bed.topology().numa_node(0)->cpuset();
    std::vector<alloc::PlannedRequest> requests = {
        {"scratch.a", 2 * kGiB, attr::kBandwidth, /*priority=*/0, 4096},
        {"scratch.b", 2 * kGiB, attr::kBandwidth, 0, 4096},
        {"field", 3 * kGiB, attr::kBandwidth, 10, 4096},
        {"index", 2 * kGiB, attr::kLatency, 5, 4096},
    };
    alloc::Plan plan = alloc::plan_placements(*bed.machine, *bed.registry,
                                              initiator, requests);
    auto buffers = alloc::execute_plan(*bed.allocator, requests, plan);
    if (!buffers.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   buffers.error().to_string().c_str());
      return 1;
    }
    Workload w{(*buffers)[0], (*buffers)[1], (*buffers)[2], (*buffers)[3]};
    const double ms = run_round(bed, w);
    table.add_row({"priority-planned", node_kind(bed, w.scratch_a),
                   node_kind(bed, w.field), node_kind(bed, w.index),
                   support::format_fixed(ms, 2)});
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: FCFS lets the cold scratch occupy the MCDRAM and the\n"
      "hot field lands on DRAM; the planner gives the MCDRAM to the field\n"
      "and the round completes faster.\n");
  return 0;
}
