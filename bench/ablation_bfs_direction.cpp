// Ablation A8: top-down vs direction-optimizing BFS on each memory kind.
//
// Beamer's direction optimization changes WHAT the hot traffic is: top-down
// hammers the visited bitmap with one dependent read per edge; bottom-up
// sweeps the bitmap sequentially and early-exits adjacency scans. That
// shifts the buffer sensitivity profile (less random, more streamed) — so
// the optimal *attribute* for the BFS state depends on the algorithm
// variant, a concrete instance of the paper's point that sensitivity comes
// from the access pattern, not the data structure (§V).
#include "common.hpp"

#include "hetmem/apps/graph500.hpp"
#include "hetmem/prof/profiler.hpp"

using namespace hetmem;

namespace {

struct RunResult {
  double teps = 0.0;
  double random_fraction = 0.0;  // of the hottest buffer's accesses
};

RunResult run(bench::Testbed& bed, unsigned node, unsigned beta) {
  apps::Graph500Config config;
  config.scale_declared = 26;
  config.scale_backing = 15;
  config.threads = 16;
  config.num_roots = 3;
  config.compute_ns_per_edge = 16.0;
  config.mlp = 8.0;
  config.direction_beta = beta;
  auto runner = apps::Graph500Runner::create(
      *bed.machine, nullptr, bed.topology().numa_node(0)->cpuset(), config,
      apps::Graph500Placement::all_on_node(node));
  if (!runner.ok()) return {};
  auto result = (*runner)->run();
  if (!result.ok()) return {};
  RunResult out;
  out.teps = result->harmonic_mean_teps;
  auto profiles = prof::profile_buffers((*runner)->exec());
  if (!profiles.empty()) out.random_fraction = profiles.front().random_fraction;
  return out;
}

}  // namespace

int main() {
  bench::Testbed bed = bench::make_xeon();
  std::printf("%s", support::banner(
      "Ablation A8: top-down vs direction-optimizing BFS (Xeon)").c_str());

  support::TextTable table({"Variant", "Memory", "TEPSe+8",
                            "hot buffer random %"});
  struct Variant {
    const char* name;
    unsigned beta;
  };
  for (const Variant& variant :
       {Variant{"top-down", 0u}, Variant{"direction-optimizing", 14u}}) {
    for (unsigned node : {0u, 2u}) {
      RunResult result = run(bed, node, variant.beta);
      table.add_row({variant.name,
                     topo::memory_kind_name(
                         bed.topology().numa_node(node)->memory_kind()),
                     support::format_fixed(result.teps / 1e8, 3),
                     support::format_fixed(100.0 * result.random_fraction, 0) +
                         "%"});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: direction optimization speeds BFS up ~4x on both kinds\n"
      "by skipping most per-edge claims, but the surviving traffic is still\n"
      "dependent loads — the hot buffer stays ~100%% random, so Latency\n"
      "remains the right allocation criterion for either variant. Sensitivity\n"
      "follows the access pattern and must be re-measured when the algorithm\n"
      "changes (paper sec. V: profiling assumes 'similar behavior').\n");
  return 0;
}
