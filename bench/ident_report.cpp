// §III-A reproduction: automatic identification of memory kinds from
// attributes alone, on every platform the paper depicts, from both
// discovery sources — the step the paper says "was missing in existing
// approaches" and "should be performed automatically during the execution".
#include "common.hpp"

#include "hetmem/ident/ident.hpp"

using namespace hetmem;

int main() {
  std::printf("%s", support::banner(
      "Memory-kind identification from performance attributes "
      "(paper sec. III-A)").c_str());

  support::TextTable summary({"Platform", "nodes", "agreement (HMAT)",
                              "agreement (probe)"});
  for (const topo::NamedTopology& preset : topo::all_presets()) {
    sim::SimMachine machine(preset.factory());
    const topo::Topology& topology = machine.topology();

    attr::MemAttrRegistry from_hmat(topology);
    hmat::GenerateOptions options;
    options.local_only = false;
    (void)hmat::load_into(from_hmat, hmat::generate(topology, options));
    auto hmat_result = ident::classify(from_hmat);

    attr::MemAttrRegistry from_probe(topology);
    probe::ProbeOptions probe_options;
    probe_options.backing_bytes = 64 * 1024;
    probe_options.chase_accesses = 1500;
    probe_options.buffer_bytes = 128ull * 1024 * 1024;
    probe_options.include_remote = false;
    auto report = probe::discover(machine, probe_options);
    std::vector<ident::NodeClassification> probe_result;
    if (report.ok() && probe::feed_registry(from_probe, *report).ok()) {
      probe_result = ident::classify(from_probe);
    }

    summary.add_row(
        {preset.name, std::to_string(topology.numa_nodes().size()),
         support::format_fixed(
             100.0 * ident::agreement_with_ground_truth(topology, hmat_result), 0) +
             "%",
         support::format_fixed(
             100.0 * ident::agreement_with_ground_truth(topology, probe_result), 0) +
             "%"});

    std::printf("%s", support::banner(preset.name).c_str());
    std::printf("from firmware tables:\n%s",
                ident::render(topology, hmat_result).c_str());
    std::printf("from benchmarking:\n%s",
                ident::render(topology, probe_result).c_str());
  }

  std::printf("%s", support::banner("Summary").c_str());
  std::printf("%s", summary.render().c_str());
  std::printf(
      "\nKnown honest misses: 2LM platforms classify as 'normal' (the DRAM\n"
      "cache hides the NVDIMM — paper fn. 22); probe-measured GPU/NAM\n"
      "latencies may swap 'far' for 'slow-big' at the boundary. The\n"
      "classifier never needed a hardwired technology list — the paper's\n"
      "requirement.\n");
  return 0;
}
