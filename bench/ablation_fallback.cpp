// Ablation A1 (paper §VII): allocator policies under capacity pressure.
//
// A stream of latency-criterion allocations slowly exhausts the small fast
// node. Strict binding starts failing; ranked fallback degrades gracefully
// down the attribute ordering; preferred-then-default rescues through the
// OS order. We count placements, failures, and where the bytes ended up —
// the "First Come First Served" behavior the paper discusses, plus the
// priority-inversion problem (late hot buffers land on slow memory).
#include "common.hpp"

using namespace hetmem;

namespace {

struct Outcome {
  unsigned on_fast = 0;
  unsigned on_slow = 0;
  unsigned failures = 0;
};

Outcome drive(bench::Testbed& bed, alloc::Policy policy, unsigned count,
              std::uint64_t bytes_each) {
  Outcome outcome;
  alloc::HeterogeneousAllocator allocator(*bed.machine, *bed.registry);
  for (unsigned i = 0; i < count; ++i) {
    alloc::AllocRequest request;
    request.bytes = bytes_each;
    request.attribute = attr::kBandwidth;
    request.initiator = bed.topology().numa_node(0)->cpuset();
    request.policy = policy;
    request.label = "buf" + std::to_string(i);
    auto allocation = allocator.mem_alloc(request);
    if (!allocation.ok()) {
      ++outcome.failures;
      continue;
    }
    if (bed.topology().numa_node(allocation->node)->memory_kind() ==
        topo::MemoryKind::kHBM) {
      ++outcome.on_fast;
    } else {
      ++outcome.on_slow;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Ablation A1: policies under capacity pressure (KNL cluster: "
      "4GiB HBM + 24GiB DRAM; 40 x 256MiB Bandwidth-criterion buffers)").c_str());

  support::TextTable table(
      {"Policy", "on HBM", "on DRAM", "failed", "behavior"});
  struct Row {
    const char* name;
    alloc::Policy policy;
    const char* behavior;
  };
  const Row rows[] = {
      {"Strict", alloc::Policy::kStrict, "fails once HBM is full"},
      {"RankedFallback", alloc::Policy::kRankedFallback,
       "degrades down the Bandwidth ranking"},
      {"PreferredThenDefault", alloc::Policy::kPreferredThenDefault,
       "same here (ranking covers all local nodes)"},
  };
  for (const Row& row : rows) {
    bench::Testbed bed = bench::make_knl();
    Outcome outcome =
        drive(bed, row.policy, /*count=*/40, 256ull * 1024 * 1024);
    table.add_row({row.name, std::to_string(outcome.on_fast),
                   std::to_string(outcome.on_slow),
                   std::to_string(outcome.failures), row.behavior});
  }
  std::printf("%s", table.render().c_str());

  std::printf("%s", support::banner(
      "FCFS priority inversion (sec. VII): a late hot buffer").c_str());
  {
    bench::Testbed bed = bench::make_knl();
    alloc::HeterogeneousAllocator allocator(*bed.machine, *bed.registry);
    const support::Bitmap initiator = bed.topology().numa_node(0)->cpuset();

    // 15 unimportant 256 MiB buffers allocated greedily with Bandwidth...
    for (unsigned i = 0; i < 15; ++i) {
      alloc::AllocRequest request;
      request.bytes = 256ull * 1024 * 1024;
      request.attribute = attr::kBandwidth;
      request.initiator = initiator;
      request.label = "cold" + std::to_string(i);
      (void)allocator.mem_alloc(request);
    }
    // ...then the actually hot buffer arrives: HBM is full.
    alloc::AllocRequest hot;
    hot.bytes = 512ull * 1024 * 1024;
    hot.attribute = attr::kBandwidth;
    hot.initiator = initiator;
    hot.label = "hot";
    auto late = allocator.mem_alloc(hot);
    if (late.ok()) {
      std::printf(
          "late hot buffer landed on %s (rank %u)%s\n",
          topo::memory_kind_name(
              bed.topology().numa_node(late->node)->memory_kind()),
          late->rank, late->fell_back ? " -- FCFS inverted its priority" : "");
      // The paper's remedy: migrate a cold buffer out and move the hot one in.
      const auto& trace = allocator.trace();
      (void)trace;
      auto cost = allocator.migrate(late->buffer, 4 /* cluster HBM */);
      if (!cost.ok()) {
        // HBM still full: evict one cold buffer first.
        std::printf("direct migration refused (%s)\n",
                    cost.error().to_string().c_str());
      }
    }
  }
  return 0;
}
