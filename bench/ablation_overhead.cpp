// Sampler-overhead ablation: BENCH_overhead.json (docs/PERF.md,
// docs/RUNTIME.md "Adaptive sampling").
//
// Measures what the telemetry-ring rework buys: the per-epoch cost of
// EpochSampler::on_phase — the snapshot-diff + subsampling work charged
// between phases — under the ring transport (drain dirty buffers only)
// versus the legacy merge-on-demand transport (merge every thread's full
// counter vector, then diff the whole buffer range). The workload is shaped
// to make the difference structural, not incidental: a wide buffer
// population (16384) of which each phase touches a sliding 64-buffer window,
// partitioned across 16 threads the way phase kernels partition their
// working set — so the legacy path scans 16384 x 16 counter rows per epoch
// while the ring path drains the ~64 records the phase actually published.
//
//   overhead   both modes run the identical window workload; sampler cost
//              is accumulated wall time around on_phase() (min of 3 reps);
//              both modes must emit identical epoch streams.
//   decisions  the phase-flip policy workload of bench/ablation_runtime run
//              in both modes; the full decision log must match byte for
//              byte (the rings change WHERE counters flow, never a bit of
//              WHAT the policy sees).
//   adaptive   the overhead controller under a deterministic cost model
//              (cost fraction 0.04 / period): the effective period walks
//              1 -> 2 -> 4 and parks in the deadband; a trace/2 recording
//              of an adaptive run replays to a byte-identical decision log.
//
// Gates (--check exits 1 when any fails):
//   speedup    rings reduce mean sampler cost per epoch by >= 10x at 16
//              threads;
//   identical  both transports emit the same epochs (count, samples, bytes)
//              and the same policy decision log;
//   adaptive   period trajectory is monotone non-decreasing under sustained
//              pressure, parks within [floor, max], and the terminal period
//              satisfies the budget under the cost model;
//   replay     live adaptive decision log == trace/2 replay decision log.
//
// Usage: ablation_overhead [--out FILE] [--check]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/trace/trace.hpp"

namespace {

using namespace hetmem;
using support::kGiB;
using support::kMiB;

constexpr unsigned kThreads = 16;
constexpr std::size_t kBuffers = 16384;
constexpr std::size_t kWindow = 64;
constexpr unsigned kPhases = 150;
constexpr std::uint64_t kSmallBuffer = 64 * 1024;
constexpr int kReps = 3;

support::Bitmap first_initiator(const topo::Topology& topology) {
  for (const topo::Object* node : topology.numa_nodes()) {
    if (!node->cpuset().empty()) return node->cpuset();
  }
  return {};
}

unsigned best_target(const bench::Testbed& bed, attr::AttrId attribute) {
  const auto ranked = bed.registry->targets_ranked(
      attribute,
      attr::Initiator::from_cpuset(first_initiator(bed.topology())));
  return ranked.empty() ? 0 : ranked.front().target->logical_index();
}

// --- overhead section -----------------------------------------------------

/// Digest of an emitted epoch stream; equal digests over exact (period 1)
/// sampling mean equal streams for this workload (sample counts and the
/// exact double sums both match bit for bit).
struct EpochDigest {
  std::uint64_t epochs = 0;
  std::uint64_t samples = 0;
  double total_bytes = 0.0;

  bool operator==(const EpochDigest&) const = default;
};

struct OverheadRun {
  double sampler_ns_total = 0.0;
  EpochDigest digest;
};

/// Runs the sliding-window workload once and accumulates the wall time the
/// sampler spends per epoch boundary.
OverheadRun run_window_workload(sim::TelemetryMode mode) {
  OverheadRun run;
  sim::SimMachine machine(topo::xeon_clx_1lm());
  const support::Bitmap initiator = first_initiator(machine.topology());

  std::vector<sim::Array<double>> arrays;
  arrays.reserve(kBuffers);
  for (std::size_t index = 0; index < kBuffers; ++index) {
    auto buffer = machine.allocate(kSmallBuffer, 0, "window.buf", 4096);
    if (!buffer.ok()) return run;
    arrays.emplace_back(machine, *buffer);
  }

  sim::ExecutionContext exec(machine, initiator, kThreads);
  exec.set_telemetry_mode(mode);
  runtime::EpochSampler sampler;  // defaults: one phase per epoch, exact

  // Initialization pass: touch every buffer once so each thread's counter
  // vector spans the whole population (as after any real init sweep), then
  // consume the epoch untimed — we measure the steady state, where the
  // window workload dirties 64 buffers per epoch out of 16384.
  exec.run_phase("init", kBuffers,
                 [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                     std::size_t end) {
                   for (std::size_t slot = begin; slot < end; ++slot) {
                     arrays[slot].record_bulk_read(ctx, 64.0);
                   }
                 });
  (void)sampler.on_phase(exec);

  for (unsigned phase = 0; phase < kPhases; ++phase) {
    const std::size_t base =
        (static_cast<std::size_t>(phase) * 17) % (kBuffers - kWindow);
    exec.run_phase("window", kWindow,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t slot = begin; slot < end; ++slot) {
                       arrays[base + slot].record_bulk_read(ctx, 4096.0);
                     }
                   });
    const auto start = std::chrono::steady_clock::now();
    std::optional<runtime::Epoch> epoch = sampler.on_phase(exec);
    run.sampler_ns_total += std::chrono::duration<double, std::nano>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    if (epoch.has_value()) {
      ++run.digest.epochs;
      run.digest.samples += epoch->samples.size();
      run.digest.total_bytes += epoch->total_memory_bytes;
    }
  }
  return run;
}

struct OverheadResult {
  double rings_ns_per_epoch = 0.0;
  double legacy_ns_per_epoch = 0.0;
  double speedup = 0.0;
  bool digests_equal = false;
};

OverheadResult run_overhead_section() {
  OverheadResult result;
  OverheadRun best_rings, best_legacy;
  for (int rep = 0; rep < kReps; ++rep) {
    OverheadRun rings = run_window_workload(sim::TelemetryMode::kRings);
    OverheadRun legacy = run_window_workload(sim::TelemetryMode::kLegacyMerge);
    if (rep == 0 || rings.sampler_ns_total < best_rings.sampler_ns_total) {
      best_rings = rings;
    }
    if (rep == 0 || legacy.sampler_ns_total < best_legacy.sampler_ns_total) {
      best_legacy = legacy;
    }
  }
  result.rings_ns_per_epoch = best_rings.sampler_ns_total / kPhases;
  result.legacy_ns_per_epoch = best_legacy.sampler_ns_total / kPhases;
  result.speedup = result.rings_ns_per_epoch > 0.0
                       ? result.legacy_ns_per_epoch / result.rings_ns_per_epoch
                       : 0.0;
  result.digests_equal = best_rings.digest == best_legacy.digest &&
                         best_rings.digest.epochs == kPhases;
  return result;
}

// --- decision-equality section --------------------------------------------

constexpr unsigned kFlipThreads = 4;
constexpr unsigned kPhasesPerPart = 24;
constexpr std::uint64_t kBufferBytes = 1 * kGiB;
constexpr std::uint64_t kFastHeadroom = kBufferBytes + kBufferBytes / 2;

runtime::RuntimePolicyOptions flip_options() {
  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  return options;
}

struct FlipRun {
  bool ok = false;
  std::string decision_log;
  std::vector<double> periods;
  trace::Trace trace;  // only filled when `record`
};

/// The ablation_runtime phase-flip workload: stream S then chase R, both
/// starting on the capacity target with fast memory squeezed to one slot.
FlipRun run_flip(sim::TelemetryMode mode, runtime::RuntimePolicyOptions options,
                 bool record) {
  FlipRun run;
  bench::Testbed bed = bench::make_xeon();
  const support::Bitmap initiator = first_initiator(bed.topology());
  const unsigned fast = best_target(bed, attr::kBandwidth);
  const unsigned slow = best_target(bed, attr::kCapacity);

  const std::uint64_t fast_free = bed.machine->available_bytes(fast);
  if (fast_free > kFastHeadroom) {
    auto hog = bed.machine->allocate(fast_free - kFastHeadroom, fast,
                                     "resident.hog", 4096);
    if (!hog.ok()) return run;
  }
  auto streamed =
      bed.machine->allocate(kBufferBytes, slow, "flip.stream", 1u << 16);
  auto chased =
      bed.machine->allocate(kBufferBytes, slow, "flip.random", 1u << 16);
  if (!streamed.ok() || !chased.ok()) return run;

  sim::Array<double> stream_array(*bed.machine, *streamed);
  sim::Array<double> chase_array(*bed.machine, *chased);
  sim::ExecutionContext exec(*bed.machine, initiator, kFlipThreads);
  exec.set_telemetry_mode(mode);

  runtime::RuntimePolicy policy(*bed.allocator, initiator, options);
  trace::TraceRecorder recorder({.workload = "overhead.flip"});
  const auto refresh = [&] {
    stream_array.refresh_model();
    chase_array.refresh_model();
  };
  if (record) {
    policy.attach(exec, refresh);  // installs post_migration, then replaced:
    recorder.attach(exec, &policy);
  } else {
    policy.attach(exec, refresh);
  }

  for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
    exec.run_phase("part1.stream", kFlipThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     stream_array.record_bulk_read(ctx, 512.0 * kMiB);
                   });
  }
  for (unsigned phase = 0; phase < kPhasesPerPart; ++phase) {
    exec.run_phase("part2.random", kFlipThreads,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     if (begin >= end) return;
                     chase_array.record_bulk_random_reads(ctx, 4e6);
                   });
  }

  run.ok = true;
  run.decision_log = policy.render_decision_log();
  run.periods = policy.sampler().period_log();
  if (record) run.trace = recorder.trace();
  return run;
}

/// Replays `recorded` on a freshly prepared identical testbed and returns
/// the replay policy's decision log.
std::string replay_decision_log(const trace::Trace& recorded,
                                runtime::RuntimePolicyOptions options) {
  bench::Testbed bed = bench::make_xeon();
  const support::Bitmap initiator = first_initiator(bed.topology());
  const unsigned fast = best_target(bed, attr::kBandwidth);
  const unsigned slow = best_target(bed, attr::kCapacity);
  const std::uint64_t fast_free = bed.machine->available_bytes(fast);
  if (fast_free > kFastHeadroom) {
    auto hog = bed.machine->allocate(fast_free - kFastHeadroom, fast,
                                     "resident.hog", 4096);
    if (!hog.ok()) return {};
  }
  auto streamed =
      bed.machine->allocate(kBufferBytes, slow, "flip.stream", 1u << 16);
  auto chased =
      bed.machine->allocate(kBufferBytes, slow, "flip.random", 1u << 16);
  if (!streamed.ok() || !chased.ok()) return {};

  runtime::RuntimePolicy policy(*bed.allocator, initiator, options);
  trace::TraceReplayer replayer(policy);
  (void)replayer.replay(recorded);
  return policy.render_decision_log();
}

// --- adaptive section -----------------------------------------------------

/// Deterministic sampler-cost model: fraction of epoch duration = 0.04 /
/// period, so the controller doubles 1 -> 2 -> 4 and parks (0.01 is inside
/// the [budget/4, budget] deadband at period 4).
double modeled_cost(const runtime::Epoch& epoch) {
  return epoch.duration_ns * 0.04 /
         (epoch.sample_period > 0.0 ? epoch.sample_period : 1.0);
}

runtime::RuntimePolicyOptions adaptive_options() {
  runtime::RuntimePolicyOptions options = flip_options();
  options.sampler.adaptive = true;
  options.sampler.cost_model = modeled_cost;
  return options;
}

struct AdaptiveResult {
  bool ok = false;
  std::vector<double> periods;
  bool monotone = true;
  bool clamped = true;
  bool budget_met = false;
  bool replay_identical = false;
};

AdaptiveResult run_adaptive_section() {
  AdaptiveResult result;
  FlipRun live = run_flip(sim::TelemetryMode::kRings, adaptive_options(),
                          /*record=*/true);
  if (!live.ok) return result;
  result.ok = true;
  result.periods = live.periods;
  for (std::size_t index = 1; index < live.periods.size(); ++index) {
    if (live.periods[index] < live.periods[index - 1]) result.monotone = false;
  }
  const runtime::SamplerOptions sampler = adaptive_options().sampler;
  for (double period : live.periods) {
    if (period < sampler.sample_period || period > sampler.max_sample_period) {
      result.clamped = false;
    }
  }
  if (!live.periods.empty()) {
    const double terminal = live.periods.back();
    result.budget_met = 0.04 / terminal <= sampler.overhead_budget_fraction;
  }

  // Byte-identical live == replay through the serialized trace/2 text.
  const std::string text = trace::serialize(live.trace);
  auto parsed = trace::parse(text);
  if (parsed.ok()) {
    result.replay_identical =
        replay_decision_log(*parsed, adaptive_options()) == live.decision_log &&
        !live.decision_log.empty();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_overhead.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::cerr << "usage: ablation_overhead [--out FILE] [--check]\n";
      return 2;
    }
  }

  const OverheadResult overhead = run_overhead_section();

  const FlipRun rings =
      run_flip(sim::TelemetryMode::kRings, flip_options(), false);
  const FlipRun legacy =
      run_flip(sim::TelemetryMode::kLegacyMerge, flip_options(), false);
  const bool decisions_identical = rings.ok && legacy.ok &&
                                   !rings.decision_log.empty() &&
                                   rings.decision_log == legacy.decision_log;

  const AdaptiveResult adaptive = run_adaptive_section();

  const bool speedup_ok = overhead.speedup >= 10.0;
  const bool identical_ok = overhead.digests_equal && decisions_identical;
  const bool adaptive_ok = adaptive.ok && adaptive.monotone &&
                           adaptive.clamped && adaptive.budget_met &&
                           adaptive.periods.size() >= 2;
  const bool replay_ok = adaptive.replay_identical;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 2;
  }
  bench::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("hetmem.bench.overhead/1");
  json.key("fixture").value("xeon_clx_1lm");
  json.key("overhead").begin_object();
  json.key("threads").value(kThreads);
  json.key("buffers").value(static_cast<std::uint64_t>(kBuffers));
  json.key("window").value(static_cast<std::uint64_t>(kWindow));
  json.key("epochs").value(kPhases);
  json.key("rings_ns_per_epoch").value(overhead.rings_ns_per_epoch);
  json.key("legacy_ns_per_epoch").value(overhead.legacy_ns_per_epoch);
  json.key("speedup").value(overhead.speedup);
  json.key("epoch_streams_identical").value(overhead.digests_equal);
  json.end_object();
  json.key("decisions").begin_object();
  json.key("rings_vs_legacy_identical").value(decisions_identical);
  json.end_object();
  json.key("adaptive").begin_object();
  json.key("periods").begin_array();
  for (double period : adaptive.periods) json.value(period);
  json.end_array();
  json.key("monotone").value(adaptive.monotone);
  json.key("clamped").value(adaptive.clamped);
  json.key("budget_met").value(adaptive.budget_met);
  json.key("replay_identical").value(adaptive.replay_identical);
  json.end_object();
  json.key("gates").begin_object();
  json.key("speedup").value(speedup_ok);
  json.key("identical").value(identical_ok);
  json.key("adaptive").value(adaptive_ok);
  json.key("replay").value(replay_ok);
  json.end_object();
  json.end_object();
  out << '\n';

  std::printf("sampler overhead at %u threads, %zu buffers (window %zu):\n",
              kThreads, kBuffers, kWindow);
  std::printf("  rings  %.0f ns/epoch\n  legacy %.0f ns/epoch\n"
              "  speedup %.1fx [%s]\n",
              overhead.rings_ns_per_epoch, overhead.legacy_ns_per_epoch,
              overhead.speedup, speedup_ok ? "PASS: >= 10x" : "FAIL: < 10x");
  std::printf("epoch streams identical: %s; decision logs identical: %s "
              "[%s]\n",
              overhead.digests_equal ? "yes" : "NO",
              decisions_identical ? "yes" : "NO",
              identical_ok ? "PASS" : "FAIL");
  std::printf("adaptive periods:");
  for (double period : adaptive.periods) std::printf(" %g", period);
  std::printf("\n  monotone=%d clamped=%d budget_met=%d [%s]\n",
              adaptive.monotone, adaptive.clamped, adaptive.budget_met,
              adaptive_ok ? "PASS" : "FAIL");
  std::printf("trace/2 live == replay: %s [%s]\n",
              adaptive.replay_identical ? "byte-identical" : "DIVERGED",
              replay_ok ? "PASS" : "FAIL");

  const bool pass = speedup_ok && identical_ok && adaptive_ok && replay_ok;
  std::printf("%s\n", pass ? "ALL GATES PASS"
                           : "GATE VIOLATION (see FAIL lines above)");
  return check && !pass ? 1 : 0;
}
