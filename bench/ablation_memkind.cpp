// Ablation A7 (paper §II-D, §IV-B): technology-named allocation (memkind)
// vs attribute-named allocation (this library), head to head.
//
// The same application intent — "this buffer wants high bandwidth", "this
// buffer wants low latency" — expressed both ways, executed unmodified on
// three machines. memkind's MEMKIND_HBW names a technology and returns
// nothing on machines without HBM; mem_alloc(Bandwidth) names a requirement
// and always returns the best the machine has. This is the paper's central
// argument rendered as a table.
#include "common.hpp"

#include "hetmem/memkind/memkind.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

std::string kind_of(const sim::SimMachine& machine, sim::BufferId buffer) {
  return topo::memory_kind_name(
      machine.topology().numa_node(machine.info(buffer).node)->memory_kind());
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Ablation A7: memkind (technology names) vs attributes "
      "(requirement names)").c_str());

  support::TextTable table({"Machine", "intent", "memkind call", "memkind got",
                            "mem_alloc criterion", "attributes got"});

  struct Platform {
    const char* name;
    topo::Topology (*factory)();
  };
  const Platform platforms[] = {
      {"KNL (DRAM+MCDRAM)", &topo::knl_snc4_flat},
      {"Xeon (DRAM+NVDIMM)", &topo::xeon_clx_1lm},
      {"Fugaku-like (HBM)", &topo::fugaku_like},
  };
  struct Intent {
    const char* description;
    memkind::Kind memkind_kind;
    attr::AttrId attribute;
  };
  const Intent intents[] = {
      {"high bandwidth", memkind::Kind::kHbw, attr::kBandwidth},
      {"low latency", memkind::Kind::kDefault, attr::kLatency},
      {"huge capacity", memkind::Kind::kHighestCapacity, attr::kCapacity},
  };

  for (const Platform& platform : platforms) {
    sim::SimMachine machine(platform.factory());
    attr::MemAttrRegistry registry(machine.topology());
    hmat::GenerateOptions options;
    options.local_only = false;
    if (!hmat::load_into(registry, hmat::generate(machine.topology(), options))
             .ok()) {
      return 1;
    }
    alloc::HeterogeneousAllocator allocator(machine, registry);
    memkind::MemkindShim shim(machine);
    const support::Bitmap initiator = machine.topology().numa_node(0)->cpuset();

    for (const Intent& intent : intents) {
      std::string memkind_result;
      auto memkind_buffer =
          shim.malloc(kGiB, intent.memkind_kind, initiator, "mk");
      if (memkind_buffer.ok()) {
        memkind_result = kind_of(machine, *memkind_buffer);
        (void)shim.free(*memkind_buffer);
      } else {
        memkind_result =
            memkind_buffer.error().code == support::Errc::kUnsupported
                ? "FAILS (no such memory)"
                : "FAILS (full)";
      }

      std::string attr_result;
      alloc::AllocRequest request;
      request.bytes = kGiB;
      request.attribute = intent.attribute;
      request.initiator = initiator;
      request.label = "attr";
      auto allocation = allocator.mem_alloc(request);
      if (allocation.ok()) {
        attr_result = kind_of(machine, allocation->buffer);
        (void)allocator.mem_free(allocation->buffer);
      } else {
        attr_result = "FAILS";
      }

      table.add_row({platform.name, intent.description,
                     memkind::kind_name(intent.memkind_kind), memkind_result,
                     registry.info(intent.attribute).name, attr_result});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: MEMKIND_HBW fails outright on the Xeon (no HBM exists)\n"
      "while mem_alloc(Bandwidth) returns its DRAM — 'our attribute specifies\n"
      "what is important for the application without hardwiring it to a\n"
      "specific kind of memories' (paper sec. IV-B). Note memkind also has no\n"
      "way to say 'low latency' at all: the closest call is MEMKIND_DEFAULT,\n"
      "which only happens to be right when the default node is the fastest.\n");
  return 0;
}
