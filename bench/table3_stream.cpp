// Reproduces Table III: STREAM Triad GB/s by optimization criterion.
//
//  (a) Xeon, 20 threads: Capacity -> NVDIMM (31.6 / 10.5 / 9.5 GB/s as the
//      footprint grows past the device-buffer knee); Latency -> DRAM
//      (~75 GB/s; the 223.5 GiB column is blank — it does not fit the
//      192 GB DRAM node, so the allocator's fallback would mix nodes).
//  (b) KNL, 16 threads: Bandwidth -> HBM (85-90 GB/s; 17.9 GiB overflows
//      the 4 GiB MCDRAM and falls back to DRAM at ~29 GB/s);
//      Latency -> DRAM (~29 GB/s).
#include "common.hpp"

#include "hetmem/apps/stream.hpp"

using namespace hetmem;

namespace {

struct Cell {
  std::string text;
  std::string target;
};

/// Runs Triad with all arrays requested via `attribute`; returns "-" when
/// any array could not be placed on the first-ranked target and
/// `dash_on_fallback` is set (the paper's blank cells).
Cell run_stream(bench::Testbed& bed, attr::AttrId attribute,
                std::uint64_t total_bytes, unsigned threads,
                double launch_overhead_ns, bool dash_on_fallback) {
  apps::StreamConfig config;
  config.declared_total_bytes = total_bytes;
  config.backing_elements = 1u << 16;
  config.threads = threads;
  config.iterations = 5;
  config.launch_overhead_ns = launch_overhead_ns;

  apps::BufferPlacement placement;
  placement.attribute = attribute;

  const support::Bitmap initiator = bed.topology().numa_node(0)->cpuset();
  auto runner = apps::StreamRunner::create(*bed.machine, bed.allocator.get(),
                                           initiator, config, placement);
  if (!runner.ok()) return {"-", "(alloc failed)"};
  auto result = (*runner)->run_triad();
  if (!result.ok()) return {"-", "(run failed)"};
  const char* kind = topo::memory_kind_name(
      bed.topology().numa_node(result->node_a)->memory_kind());
  if (dash_on_fallback && result->fell_back) {
    return {"-", std::string("(exceeds ") + kind + " capacity)"};
  }
  return {bench::gbps(result->triad_bytes_per_second), kind};
}

}  // namespace

int main() {
  const std::uint64_t kGiB = support::kGiB;

  std::printf("%s",
              support::banner("Table IIIa: STREAM Triad GB/s on Xeon "
                              "(20 threads, 1 socket)").c_str());
  {
    bench::Testbed bed = bench::make_xeon();
    struct Row {
      const char* criterion;
      attr::AttrId attribute;
      bool dash_on_fallback;
      const char* paper[3];
    };
    const Row rows[] = {
        {"Capacity", attr::kCapacity, false, {"31.59", "10.49", "9.46"}},
        {"Latency", attr::kLatency, true, {"75.06", "75.24", "-"}},
    };
    const double sizes_gib[] = {22.4, 89.4, 223.5};

    support::TextTable table({"Optimized Criteria", "Best Target", "22.4GiB",
                              "89.4GiB", "223.5GiB", "paper"});
    for (const Row& row : rows) {
      std::vector<std::string> cells = {row.criterion, "?"};
      std::string paper_cells;
      for (int i = 0; i < 3; ++i) {
        Cell cell = run_stream(
            bed, row.attribute,
            static_cast<std::uint64_t>(sizes_gib[i] * static_cast<double>(kGiB)),
            /*threads=*/20, /*launch_overhead_ns=*/40000.0,
            row.dash_on_fallback);
        if (cell.target[0] != '(') cells[1] = cell.target;
        cells.push_back(cell.text);
        paper_cells += std::string(row.paper[i]) + (i < 2 ? " / " : "");
      }
      cells.push_back(paper_cells);
      table.add_row(std::move(cells));
    }
    std::printf("%s", table.render().c_str());
  }

  std::printf("%s",
              support::banner("Table IIIb: STREAM Triad GB/s on KNL "
                              "(16 threads, 1 SubNUMA cluster)").c_str());
  {
    bench::Testbed bed = bench::make_knl();
    struct Row {
      const char* criterion;
      attr::AttrId attribute;
      const char* paper[3];
    };
    const Row rows[] = {
        {"Bandwidth", attr::kBandwidth, {"85.05", "89.90", "29.16"}},
        {"Latency", attr::kLatency, {"29.17", "29.17", "-"}},
    };
    const double sizes_gib[] = {1.1, 3.4, 17.9};

    support::TextTable table({"Optimized Criteria", "Best Target", "1.1GiB",
                              "3.4GiB", "17.9GiB", "paper"});
    for (const Row& row : rows) {
      std::vector<std::string> cells = {row.criterion, "?"};
      std::string paper_cells;
      for (int i = 0; i < 3; ++i) {
        Cell cell = run_stream(
            bed, row.attribute,
            static_cast<std::uint64_t>(sizes_gib[i] * static_cast<double>(kGiB)),
            /*threads=*/16, /*launch_overhead_ns=*/700000.0,
            /*dash_on_fallback=*/false);
        if (i == 0) cells[1] = cell.target;  // nominal target (may fall back later)
        cells.push_back(cell.text +
                        (cell.target != cells[1] ? " (" + cell.target + ")" : ""));
        paper_cells += std::string(row.paper[i]) + (i < 2 ? " / " : "");
      }
      cells.push_back(paper_cells);
      table.add_row(std::move(cells));
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nNote: at 17.9GiB the Bandwidth-criterion arrays overflow the 4GiB\n"
        "MCDRAM and the allocator falls back to cluster DRAM, matching the\n"
        "paper's 29.16 GB/s. The paper leaves Latency@17.9GiB blank (the\n"
        "24GB DRAM node was too full on their machine); our simulated node\n"
        "fits it, so the DRAM figure is shown.\n");
  }
  return 0;
}
