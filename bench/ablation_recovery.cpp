// Crash-resilience ablation (docs/RECOVERY.md): the snapshot/restore layer
// and the supervisor's circuit breakers, exercised end to end against the
// rotation testbed from tests/recover_test.cpp.
//
// Three claims, each a --check gate (exit 1 when any fails):
//   determinism   a run killed at epoch N, snapshotted THROUGH THE TEXT
//                 FORMAT, restored into a fresh identically-prepared
//                 testbed and continued renders a decision log that is
//                 byte-identical to an uninterrupted run's — for the exact,
//                 1/10-subsampled and adaptive-period sampler configs;
//   throughput    daemon-crash model on a live multithreaded workload: the
//                 phases served after crash+restore run at >= 90% of the
//                 uninterrupted run's throughput for the same phases
//                 (restore must not strand hot buffers in slow memory);
//   breaker       with machine.migrate.stall injected at p=1.0 the
//                 migration breaker opens within K failing epochs while
//                 placement-only service keeps emitting epochs, recloses
//                 after the stall clears, and renders the identical breaker
//                 log when the same seed is run twice (x3 seeds).
//
// Usage: ablation_recovery [--out FILE] [--check]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "hetmem/alloc/allocator.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/recover/snapshot.hpp"
#include "hetmem/recover/supervisor.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/units.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/trace/trace.hpp"

namespace {

using namespace hetmem;
using support::kGiB;
using support::kMiB;

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kBufferBytes = 1 * kGiB;
constexpr unsigned kTraceEpochs = 32;
constexpr unsigned kPhases = 16;
constexpr unsigned kCrashAfter = 7;

/// Identically-constructible testbed (tests/trace_test.cpp's Scenario):
/// Xeon with squeezed fast memory and three 1 GiB buffers parked on the
/// NVDIMM node — every instance has the same buffer ids, placements and
/// rankings, the precondition for byte-identical continuation.
struct Scenario {
  sim::SimMachine machine;
  attr::MemAttrRegistry registry;
  alloc::HeterogeneousAllocator allocator;
  support::Bitmap initiator;
  unsigned fast = 0;
  unsigned slow = 0;
  std::vector<sim::BufferId> buffers;
  bool ok = false;

  Scenario()
      : machine(topo::xeon_clx_1lm()),
        registry(machine.topology()),
        allocator(machine, registry),
        initiator(machine.topology().numa_node(0)->cpuset()) {
    if (!hmat::load_into(registry, hmat::generate(machine.topology())).ok()) {
      return;
    }
    for (const topo::Object* node : machine.topology().numa_nodes()) {
      if (node->memory_kind() == topo::MemoryKind::kNVDIMM) {
        slow = node->logical_index();
      }
    }
    const std::uint64_t headroom = kBufferBytes + kBufferBytes / 2;
    const std::uint64_t fast_free = machine.available_bytes(fast);
    if (fast_free > headroom) {
      auto hog =
          machine.allocate(fast_free - headroom, fast, "resident.hog", 4096);
      if (!hog.ok()) return;
    }
    for (unsigned i = 0; i < 3; ++i) {
      auto buffer = machine.allocate(kBufferBytes, slow,
                                     "seg" + std::to_string(i), 1u << 16);
      if (!buffer.ok()) return;
      buffers.push_back(*buffer);
    }
    ok = true;
  }
};

runtime::RuntimePolicyOptions scenario_options() {
  runtime::RuntimePolicyOptions options;
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  return options;
}

trace::Trace rotation_trace(unsigned epochs) {
  Scenario probe;
  trace::SynthOptions synth;
  synth.epochs = epochs;
  return trace::synthesize_rotation(probe.buffers, 6, 0.002, synth);
}

trace::Trace slice(const trace::Trace& trace, std::size_t begin,
                   std::size_t end) {
  trace::Trace out = trace;
  out.epochs.assign(trace.epochs.begin() + static_cast<std::ptrdiff_t>(begin),
                    trace.epochs.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

// ---------------------------------------------------------------------------
// Gate 1: determinism — kill, restore through text, continue
// ---------------------------------------------------------------------------

struct DeterminismResult {
  std::string config;
  bool setup_ok = false;
  bool log_identical = false;
  bool stats_identical = false;
  std::size_t kill_epoch = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t accepted = 0;
};

DeterminismResult run_determinism(const std::string& config,
                                  const runtime::RuntimePolicyOptions& options,
                                  std::size_t kill_epoch) {
  DeterminismResult result;
  result.config = config;
  result.kill_epoch = kill_epoch;
  const trace::Trace trace = rotation_trace(kTraceEpochs);

  Scenario uninterrupted;
  if (!uninterrupted.ok) return result;
  runtime::RuntimePolicy reference(uninterrupted.allocator,
                                   uninterrupted.initiator, options);
  trace::TraceReplayer ref_replayer(reference);
  (void)ref_replayer.replay(trace);
  const std::string want = reference.render_decision_log();

  // The crashing run: replay the prefix, snapshot, drop everything.
  std::string text;
  {
    Scenario victim;
    if (!victim.ok) return result;
    runtime::RuntimePolicy policy(victim.allocator, victim.initiator, options);
    trace::TraceReplayer replayer(policy);
    (void)replayer.replay(slice(trace, 0, kill_epoch));
    recover::CaptureSources sources;
    sources.machine = &victim.machine;
    sources.allocator = &victim.allocator;
    sources.policy = &policy;
    sources.machine_preset = "xeon_clx_1lm";
    text = recover::serialize(recover::capture(sources));
  }
  result.snapshot_bytes = text.size();

  auto snap = recover::parse(text);
  if (!snap.ok()) return result;
  Scenario restored;
  if (!restored.ok) return result;
  runtime::RuntimePolicy policy(restored.allocator, restored.initiator,
                                options);
  recover::RestoreTargets targets;
  targets.machine = &restored.machine;
  targets.allocator = &restored.allocator;
  targets.policy = &policy;
  if (!recover::restore(*snap, targets).ok()) return result;
  trace::TraceReplayer replayer(policy);
  (void)replayer.replay(slice(trace, kill_epoch, trace.epochs.size()));

  result.setup_ok = true;
  result.log_identical = policy.render_decision_log() == want;
  result.stats_identical =
      policy.engine().stats().accepted == reference.engine().stats().accepted &&
      policy.sampler().epochs_emitted() == reference.sampler().epochs_emitted();
  result.accepted = policy.engine().stats().accepted;
  return result;
}

std::vector<DeterminismResult> run_determinism_suite() {
  std::vector<DeterminismResult> results;
  results.push_back(run_determinism("exact", scenario_options(), 13));

  runtime::RuntimePolicyOptions subsampled = scenario_options();
  subsampled.sampler.sample_period = 10.0;
  results.push_back(run_determinism("subsampled_1_10", subsampled, 11));

  runtime::RuntimePolicyOptions adaptive = scenario_options();
  adaptive.sampler.sample_period = 2.0;
  adaptive.sampler.adaptive = true;
  adaptive.sampler.max_sample_period = 64.0;
  adaptive.sampler.overhead_budget_fraction = 0.01;
  adaptive.sampler.cost_model = [](const runtime::Epoch& epoch) {
    const double period = epoch.sample_period > 0.0 ? epoch.sample_period : 1.0;
    return epoch.duration_ns * 0.04 / period;
  };
  results.push_back(run_determinism("adaptive", adaptive, 9));
  return results;
}

// ---------------------------------------------------------------------------
// Gate 2: throughput — the daemon-crash model
// ---------------------------------------------------------------------------

/// One live multithreaded phase: a streamed scan of seg0 plus dependent
/// random reads of seg1 (the hot pair the policy promotes to fast memory).
double run_one_phase(sim::ExecutionContext& exec, sim::Array<double>& streamed,
                     sim::Array<double>& chased) {
  const sim::PhaseResult& phase = exec.run_phase(
      "serve", kThreads,
      [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin, std::size_t end) {
        if (begin >= end) return;
        streamed.record_bulk_read(ctx, 256.0 * kMiB);
        chased.record_bulk_random_reads(ctx, 1e6);
      });
  return phase.sim_ns;
}

struct ThroughputResult {
  bool ok = false;
  double uninterrupted_tail_ns = 0.0;  // phases [kCrashAfter, kPhases)
  double restored_tail_ns = 0.0;       // same phases, after crash+restore
  double ratio = 0.0;                  // uninterrupted / restored (>= 0.90)
  std::uint64_t snapshot_bytes = 0;
};

ThroughputResult run_throughput() {
  ThroughputResult result;

  // Uninterrupted reference: kPhases live phases, sum the tail.
  {
    Scenario bed;
    if (!bed.ok) return result;
    sim::Array<double> streamed(bed.machine, bed.buffers[0]);
    sim::Array<double> chased(bed.machine, bed.buffers[1]);
    sim::ExecutionContext exec(bed.machine, bed.initiator, kThreads);
    runtime::RuntimePolicy policy(bed.allocator, bed.initiator,
                                  scenario_options());
    policy.attach(exec, [&] {
      streamed.refresh_model();
      chased.refresh_model();
    });
    for (unsigned phase = 0; phase < kPhases; ++phase) {
      const double ns = run_one_phase(exec, streamed, chased);
      if (phase >= kCrashAfter) result.uninterrupted_tail_ns += ns;
    }
  }

  // The daemon: crash after kCrashAfter phases, snapshot between epochs.
  std::string text;
  {
    Scenario victim;
    if (!victim.ok) return result;
    sim::Array<double> streamed(victim.machine, victim.buffers[0]);
    sim::Array<double> chased(victim.machine, victim.buffers[1]);
    sim::ExecutionContext exec(victim.machine, victim.initiator, kThreads);
    runtime::RuntimePolicy policy(victim.allocator, victim.initiator,
                                  scenario_options());
    policy.attach(exec, [&] {
      streamed.refresh_model();
      chased.refresh_model();
    });
    for (unsigned phase = 0; phase < kCrashAfter; ++phase) {
      (void)run_one_phase(exec, streamed, chased);
    }
    recover::CaptureSources sources;
    sources.machine = &victim.machine;
    sources.allocator = &victim.allocator;
    sources.policy = &policy;
    sources.machine_preset = "xeon_clx_1lm";
    text = recover::serialize(recover::capture(sources));
  }
  result.snapshot_bytes = text.size();

  // Restore into a fresh identically-prepared testbed; serve the remaining
  // phases. Restore re-places the buffers (hot segments back in fast
  // memory), so the tail runs at full speed instead of re-learning.
  auto snap = recover::parse(text);
  if (!snap.ok()) return result;
  Scenario restored;
  if (!restored.ok) return result;
  sim::Array<double> streamed(restored.machine, restored.buffers[0]);
  sim::Array<double> chased(restored.machine, restored.buffers[1]);
  sim::ExecutionContext exec(restored.machine, restored.initiator, kThreads);
  runtime::RuntimePolicy policy(restored.allocator, restored.initiator,
                                scenario_options());
  policy.attach(exec, [&] {
    streamed.refresh_model();
    chased.refresh_model();
  });
  recover::RestoreTargets targets;
  targets.machine = &restored.machine;
  targets.allocator = &restored.allocator;
  targets.policy = &policy;
  if (!recover::restore(*snap, targets).ok()) return result;
  // Restore migrated the hot pair back to fast memory underneath the array
  // wrappers — refresh their access models before serving (the same refresh
  // a daemon's reattach hook performs).
  streamed.refresh_model();
  chased.refresh_model();
  for (unsigned phase = kCrashAfter; phase < kPhases; ++phase) {
    result.restored_tail_ns += run_one_phase(exec, streamed, chased);
  }

  // Throughput ratio == inverse time ratio for equal per-phase work.
  result.ratio = result.restored_tail_ns > 0.0
                     ? result.uninterrupted_tail_ns / result.restored_tail_ns
                     : 0.0;
  result.ok = true;
  return result;
}

// ---------------------------------------------------------------------------
// Gate 3: breakers — open under an injected stall, reclose after it clears
// ---------------------------------------------------------------------------

struct BreakerRun {
  bool ok = false;
  std::uint64_t opens = 0;
  std::uint64_t skipped = 0;
  std::uint64_t recloses = 0;
  std::uint64_t engine_failed = 0;
  std::uint64_t epochs_emitted = 0;
  bool closed_at_end = false;
  std::string breaker_log;
};

BreakerRun run_breaker_once(std::uint64_t seed) {
  BreakerRun run;
  Scenario scenario;
  if (!scenario.ok) return run;
  fault::FaultInjector faults(seed);
  scenario.machine.set_fault_injector(&faults);

  runtime::RuntimePolicy policy(scenario.allocator, scenario.initiator,
                                scenario_options());
  recover::SupervisorOptions options;
  options.migration_breaker.failures_to_open = 3;
  options.migration_breaker.successes_to_close = 2;
  options.migration_breaker.cooldown_epochs = 2;
  recover::Supervisor supervisor(&faults, options);
  supervisor.attach(policy);
  trace::TraceReplayer replayer(policy);
  const trace::Trace trace = rotation_trace(48);

  // Wedged migration path for the first 12 epochs...
  fault::FaultSpec stall;
  stall.probability = 1.0;
  faults.configure(fault::site::kMachineMigrateStall, stall);
  (void)replayer.replay(slice(trace, 0, 12));
  // ...then the stall clears and the half-open probes find daylight.
  fault::FaultSpec clear;
  clear.probability = 0.0;
  faults.configure(fault::site::kMachineMigrateStall, clear);
  (void)replayer.replay(slice(trace, 12, 48));

  run.opens = supervisor.migration_breaker().stats().opens;
  run.skipped = supervisor.migration_breaker().stats().skipped;
  run.recloses = supervisor.migration_breaker().stats().recloses;
  run.engine_failed = policy.engine().stats().failed;
  run.epochs_emitted = policy.sampler().epochs_emitted();
  run.closed_at_end =
      supervisor.migration_breaker().state() == recover::BreakerState::kClosed;
  run.breaker_log = supervisor.render_log();
  run.ok = true;
  return run;
}

struct BreakerResult {
  std::uint64_t seed = 0;
  BreakerRun run;
  bool reproducible = false;  // second run with the same seed: same log
  bool pass = false;
};

std::vector<BreakerResult> run_breaker_suite() {
  std::vector<BreakerResult> results;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    BreakerResult result;
    result.seed = seed;
    result.run = run_breaker_once(seed);
    const BreakerRun again = run_breaker_once(seed);
    result.reproducible =
        result.run.ok && again.ok && result.run.breaker_log == again.breaker_log;
    result.pass = result.run.ok && result.run.opens >= 1 &&
                  result.run.skipped > 0 && result.run.engine_failed > 0 &&
                  result.run.recloses >= 1 && result.run.closed_at_end &&
                  result.run.epochs_emitted > 0 && result.reproducible;
    results.push_back(result);
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_recovery.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::cerr << "usage: ablation_recovery [--out FILE] [--check]\n";
      return 2;
    }
  }

  const std::vector<DeterminismResult> determinism = run_determinism_suite();
  const ThroughputResult throughput = run_throughput();
  const std::vector<BreakerResult> breakers = run_breaker_suite();

  bool determinism_ok = !determinism.empty();
  for (const DeterminismResult& result : determinism) {
    determinism_ok &=
        result.setup_ok && result.log_identical && result.stats_identical;
  }
  const bool throughput_ok = throughput.ok && throughput.ratio >= 0.90;
  bool breaker_ok = !breakers.empty();
  for (const BreakerResult& result : breakers) breaker_ok &= result.pass;
  const bool all_ok = determinism_ok && throughput_ok && breaker_ok;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("hetmem.bench.recovery/1");
  json.key("config").begin_object();
  json.key("trace_epochs").value(kTraceEpochs);
  json.key("phases").value(kPhases);
  json.key("crash_after_phase").value(kCrashAfter);
  json.key("buffer_bytes").value(static_cast<std::uint64_t>(kBufferBytes));
  json.end_object();
  json.key("determinism").begin_array();
  for (const DeterminismResult& result : determinism) {
    json.begin_object();
    json.key("config").value(result.config);
    json.key("kill_epoch").value(static_cast<std::uint64_t>(result.kill_epoch));
    json.key("snapshot_bytes").value(result.snapshot_bytes);
    json.key("accepted").value(result.accepted);
    json.key("log_identical").value(result.log_identical);
    json.key("stats_identical").value(result.stats_identical);
    json.end_object();
  }
  json.end_array();
  json.key("throughput").begin_object();
  json.key("uninterrupted_tail_ms")
      .value(throughput.uninterrupted_tail_ns / 1e6);
  json.key("restored_tail_ms").value(throughput.restored_tail_ns / 1e6);
  json.key("ratio").value(throughput.ratio);
  json.key("snapshot_bytes").value(throughput.snapshot_bytes);
  json.end_object();
  json.key("breakers").begin_array();
  for (const BreakerResult& result : breakers) {
    json.begin_object();
    json.key("seed").value(result.seed);
    json.key("opens").value(result.run.opens);
    json.key("skipped").value(result.run.skipped);
    json.key("recloses").value(result.run.recloses);
    json.key("engine_failed").value(result.run.engine_failed);
    json.key("epochs_emitted").value(result.run.epochs_emitted);
    json.key("closed_at_end").value(result.run.closed_at_end);
    json.key("reproducible").value(result.reproducible);
    json.end_object();
  }
  json.end_array();
  json.key("gates").begin_object();
  json.key("determinism").value(determinism_ok);
  json.key("throughput").value(throughput_ok);
  json.key("breaker").value(breaker_ok);
  json.key("all").value(all_ok);
  json.end_object();
  json.end_object();
  out << '\n';
  out.close();

  std::cout << "wrote " << out_path << "\n";
  for (const DeterminismResult& result : determinism) {
    std::cout << "determinism[" << result.config << "]: kill@"
              << result.kill_epoch << ", snapshot "
              << support::format_bytes(result.snapshot_bytes) << ", log "
              << (result.log_identical ? "identical" : "DIVERGED")
              << ", stats "
              << (result.stats_identical ? "identical" : "DIVERGED") << "\n";
  }
  std::cout << "throughput: tail "
            << support::format_fixed(throughput.uninterrupted_tail_ns / 1e6, 2)
            << " ms uninterrupted vs "
            << support::format_fixed(throughput.restored_tail_ns / 1e6, 2)
            << " ms after crash+restore -> "
            << support::format_fixed(throughput.ratio * 100.0, 1)
            << "% (floor 90%)\n";
  for (const BreakerResult& result : breakers) {
    std::cout << "breaker seed " << result.seed << ": " << result.run.opens
              << " opens, " << result.run.skipped << " skipped, "
              << result.run.recloses << " recloses, end "
              << (result.run.closed_at_end ? "closed" : "NOT CLOSED")
              << (result.reproducible ? "" : ", NOT REPRODUCIBLE")
              << (result.pass ? "" : " -> FAIL") << "\n";
  }
  std::cout << "gates: determinism " << (determinism_ok ? "ok" : "FAIL")
            << ", throughput " << (throughput_ok ? "ok" : "FAIL")
            << ", breaker " << (breaker_ok ? "ok" : "FAIL") << "\n";
  if (check && !all_ok) return 1;
  return 0;
}
