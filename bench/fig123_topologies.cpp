// Reproduces Figures 1-3: lstopo-style renderings of the paper's platforms
// (KNL SNC4/Hybrid50, dual Xeon 6230 SNC 1LM, and the fictitious platform
// with DRAM + HBM + NVDIMM + network-attached memory).
#include <cstdio>

#include "hetmem/support/table.hpp"
#include "hetmem/topo/presets.hpp"
#include "hetmem/topo/render.hpp"

using namespace hetmem;

int main() {
  struct Figure {
    const char* title;
    topo::Topology (*factory)();
  };
  const Figure figures[] = {
      {"Figure 1: Xeon Phi in SNC4/Hybrid50 mode", &topo::knl_snc4_hybrid50},
      {"Figure 2: dual Xeon 6230, SNC on, NVDIMMs in 1-Level-Memory",
       &topo::xeon_clx_snc_1lm},
      {"Figure 3: fictitious platform with four kinds of memory",
       &topo::fictitious_fig3},
  };
  for (const Figure& figure : figures) {
    std::printf("%s", support::banner(figure.title).c_str());
    topo::Topology topology = figure.factory();
    std::printf("%s", topo::render_tree(topology).c_str());

    // The §III observation the API solves: how many local NUMA nodes a core
    // must choose between on this platform.
    const topo::Object* pu0 = topology.pus().front();
    auto local = topology.local_numa_nodes(pu0->cpuset());
    std::printf("\nA program on PU#0 has %zu local NUMA node(s):\n",
                local.size());
    for (const topo::Object* node : local) {
      std::printf("  %s\n", topo::describe_numa_node(*node).c_str());
    }
  }

  // Bonus platforms discussed in §II-C.
  std::printf("%s", support::banner(
      "SS2-C platforms: Fugaku-like (HBM only) and POWER9+V100").c_str());
  std::printf("%s\n", topo::render_tree(topo::fugaku_like()).c_str());
  std::printf("%s", topo::render_tree(topo::power9_v100()).c_str());
  return 0;
}
