// Ablation A5 (paper §VII): hybrid allocations across two kinds of memory.
//
// STREAM-style reads over a 6 GiB buffer on the KNL cluster, sweeping the
// fraction kept on MCDRAM: pure DRAM, forced splits, the allocator's own
// mem_alloc_hybrid split, and (for reference) a pure-HBM run of a smaller
// buffer. Shows (a) striping two controllers beats the slow node alone,
// (b) the allocator's automatic split lands at the capacity-feasible point,
// (c) dependent-access workloads blend latencies instead.
#include "common.hpp"

#include "hetmem/simmem/array.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/simmem/split_array.hpp"

using namespace hetmem;
using support::kGiB;

namespace {

struct Rates {
  double stream_gbps = 0.0;
  double chase_ms = 0.0;
};

Rates run_split(bench::Testbed& bed, sim::BufferId fast, sim::BufferId slow,
                double fast_fraction) {
  sim::SplitArray<std::uint32_t> split(
      sim::Array<std::uint32_t>(*bed.machine, fast),
      sim::Array<std::uint32_t>(*bed.machine, slow), fast_fraction);
  Rates rates;
  {
    sim::ExecutionContext exec(*bed.machine,
                               bed.topology().numa_node(0)->cpuset(), 16);
    exec.run_phase("stream", 16,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       split.record_bulk_read(ctx, 6e9 / 16);
                     }
                   });
    rates.stream_gbps = 6e9 / (exec.clock_ns() / 1e9) / 1e9;
  }
  {
    sim::ExecutionContext exec(*bed.machine,
                               bed.topology().numa_node(0)->cpuset(), 16);
    exec.set_mlp(8.0);
    exec.run_phase("chase", 16,
                   [&](sim::ThreadCtx& ctx, unsigned, std::size_t begin,
                       std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       split.record_bulk_random_reads(ctx, 200000.0);
                     }
                   });
    rates.chase_ms = exec.clock_ns() / 1e6;
  }
  return rates;
}

}  // namespace

int main() {
  std::printf("%s", support::banner(
      "Ablation A5: hybrid HBM/DRAM placement of a 6GiB buffer "
      "(KNL cluster: 4GiB MCDRAM + 24GiB DRAM)").c_str());

  support::TextTable table({"Placement", "HBM share", "stream GB/s",
                            "chase time (ms)"});
  bench::Testbed bed = bench::make_knl();

  // Forced splits: 0%, 33%, 66% (the capacity limit), plus the allocator's
  // own choice.
  struct Split {
    const char* name;
    double fraction;
  };
  for (const Split& split : {Split{"pure DRAM", 0.0}, Split{"1/3 on HBM", 1.0 / 3},
                             Split{"2/3 on HBM (cap limit)", 2.0 / 3}}) {
    const std::uint64_t fast_bytes =
        static_cast<std::uint64_t>(6.0 * static_cast<double>(kGiB) * split.fraction);
    const std::uint64_t slow_bytes = 6 * kGiB - fast_bytes;
    sim::BufferId fast{}, slow{};
    if (fast_bytes > 0) {
      fast = *bed.machine->allocate(fast_bytes, 4, "part.fast", 4096);
    } else {
      fast = *bed.machine->allocate(1, 4, "part.fast.stub", 64);
    }
    slow = *bed.machine->allocate(std::max<std::uint64_t>(1, slow_bytes), 0,
                                  "part.slow", 4096);
    Rates rates = run_split(bed, fast, slow, split.fraction);
    table.add_row({split.name,
                   support::format_fixed(split.fraction * 100, 0) + "%",
                   support::format_fixed(rates.stream_gbps, 1),
                   support::format_fixed(rates.chase_ms, 2)});
    (void)bed.machine->free(fast);
    (void)bed.machine->free(slow);
  }

  // The allocator's own hybrid placement.
  {
    alloc::AllocRequest request;
    request.bytes = 6 * kGiB;
    request.attribute = attr::kBandwidth;
    request.initiator = bed.topology().numa_node(0)->cpuset();
    request.label = "auto";
    request.backing_bytes = 4096;
    auto hybrid = bed.allocator->mem_alloc_hybrid(request);
    if (hybrid.ok() && hybrid->slow.valid()) {
      Rates rates = run_split(bed, hybrid->fast, hybrid->slow,
                              hybrid->fast_fraction);
      table.add_row({"mem_alloc_hybrid (auto)",
                     support::format_fixed(hybrid->fast_fraction * 100, 0) + "%",
                     support::format_fixed(rates.stream_gbps, 1),
                     support::format_fixed(rates.chase_ms, 2)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check: streaming rate grows with the HBM share (two memory\n"
      "controllers run in parallel); dependent-access time blends toward\n"
      "whichever part holds more of the buffer. The automatic split matches\n"
      "the capacity-limited 2/3 row (paper sec. VII 'at least partially').\n");
  return 0;
}
