// Ablation A2 (paper §IV-A): HMAT-advertised vs benchmark-measured values.
//
// The two sources disagree wildly on magnitudes (26 ns advertised vs 285 ns
// measured for the same DRAM) yet the API only needs them to agree on the
// *ranking* per attribute — which this ablation verifies on every preset,
// along with the magnitude gaps.
#include "common.hpp"

using namespace hetmem;

int main() {
  std::printf("%s", support::banner(
      "Ablation A2: do HMAT and benchmarking agree on rankings?").c_str());

  support::TextTable table({"Platform", "Attr", "ranking (HMAT)",
                            "ranking (probe)", "agree?"});
  unsigned agreements = 0;
  unsigned comparisons = 0;

  for (const topo::NamedTopology& preset : topo::all_presets()) {
    sim::SimMachine machine(preset.factory());
    const topo::Topology& topology = machine.topology();

    attr::MemAttrRegistry from_hmat(topology);
    hmat::GenerateOptions options;
    options.local_only = false;
    (void)hmat::load_into(from_hmat, hmat::generate(topology, options));

    attr::MemAttrRegistry from_probe(topology);
    probe::ProbeOptions probe_options;
    probe_options.backing_bytes = 64 * 1024;
    probe_options.chase_accesses = 1500;
    probe_options.buffer_bytes = 128ull * 1024 * 1024;
    auto report = probe::discover(machine, probe_options);
    if (report.ok()) (void)probe::feed_registry(from_probe, *report);

    const auto initiator =
        attr::Initiator::from_cpuset(topology.pus().front()->cpuset());
    for (attr::AttrId attribute : {attr::kBandwidth, attr::kLatency}) {
      auto render = [&](const attr::MemAttrRegistry& registry) {
        std::string out;
        for (const attr::TargetValue& tv :
             registry.targets_ranked(attribute, initiator)) {
          if (!out.empty()) out += " > ";
          out += "L#" + std::to_string(tv.target->logical_index());
        }
        return out;
      };
      const std::string hmat_order = render(from_hmat);
      const std::string probe_order = render(from_probe);
      const bool agree = hmat_order == probe_order;
      agreements += agree;
      ++comparisons;
      table.add_row({preset.name, from_hmat.info(attribute).name, hmat_order,
                     probe_order, agree ? "yes" : "NO"});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n%u/%u rankings agree.\n", agreements, comparisons);

  std::printf("%s", support::banner(
      "Magnitude gap on the Xeon (advertised vs measured, local DRAM/NVDIMM)").c_str());
  {
    sim::SimMachine machine(topo::xeon_clx_1lm());
    const topo::Topology& topology = machine.topology();
    attr::MemAttrRegistry from_hmat(topology);
    (void)hmat::load_into(from_hmat, hmat::generate(topology));
    attr::MemAttrRegistry from_probe(topology);
    probe::ProbeOptions probe_options;
    probe_options.backing_bytes = 64 * 1024;
    probe_options.chase_accesses = 3000;
    auto report = probe::discover(machine, probe_options);
    if (report.ok()) (void)probe::feed_registry(from_probe, *report);

    support::TextTable gaps({"Node", "Latency adv.", "Latency meas.",
                             "Bandwidth adv.", "Bandwidth meas."});
    for (unsigned node_index : {0u, 2u}) {
      const topo::Object& node = *topology.numa_node(node_index);
      const auto initiator = attr::Initiator::from_cpuset(node.cpuset());
      auto value = [&](const attr::MemAttrRegistry& registry, attr::AttrId id) {
        auto v = registry.value(id, node, initiator);
        return v.ok() ? *v : 0.0;
      };
      gaps.add_row(
          {std::string(topo::memory_kind_name(node.memory_kind())),
           support::format_latency_ns(value(from_hmat, attr::kLatency)),
           support::format_latency_ns(value(from_probe, attr::kLatency)),
           support::format_bandwidth(value(from_hmat, attr::kBandwidth)),
           support::format_bandwidth(value(from_probe, attr::kBandwidth))});
    }
    std::printf("%s", gaps.render().c_str());
  }
  std::printf(
      "\nConclusion: magnitudes differ up to ~10x, rankings almost always\n"
      "agree -- the API's ordinal use of attributes is robust to the\n"
      "discovery source (paper sec. IV-A2: values 'are sufficient to rank\n"
      "or compare the memories'). The residual latency disagreements are\n"
      "real phenomena: NVDIMM datasheets advertise optimistic idle latency\n"
      "(77 ns vs 860 ns loaded), and memory-side caches make observed\n"
      "performance differ from the node's own attributes (paper fn. 23).\n");
  return 0;
}
