// Reproduces Figure 5: `lstopo --memattrs` on the Figure 2 Xeon — every
// populated memory attribute with its per-node (and per-initiator) values.
//
// Matches the paper's output format and literal values: Capacity in bytes
// (96 GiB DRAM / 768 GiB NVDIMM), Bandwidth in MiB/s (131072 local DRAM /
// 78644 local NVDIMM), Latency in ns (26 / 77). Like the real machine, the
// firmware only describes LOCAL accesses (paper §IV-A1) — and the second
// half shows how benchmarking fills in the remote pairs Linux cannot.
#include <cstdio>

#include "hetmem/hmat/hmat.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/probe/probe.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/table.hpp"
#include "hetmem/topo/presets.hpp"

using namespace hetmem;

int main() {
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  const topo::Topology& topology = machine.topology();

  std::printf("%s", support::banner(
      "Figure 5: lstopo --memattrs (firmware HMAT, local accesses only)").c_str());
  {
    attr::MemAttrRegistry registry(topology);
    auto loaded = hmat::load_into(registry, hmat::generate(topology));
    if (!loaded.ok()) {
      std::fprintf(stderr, "HMAT load failed: %s\n",
                   loaded.error().to_string().c_str());
      return 1;
    }
    std::printf("%s", attr::memattrs_report(registry).c_str());
  }

  std::printf("%s", support::banner(
      "Same registry after benchmarking (remote pairs now measurable, "
      "sec. VIII)").c_str());
  {
    attr::MemAttrRegistry registry(topology);
    probe::ProbeOptions options;
    options.backing_bytes = 64 * 1024;
    options.chase_accesses = 3000;
    options.threads = 10;
    options.include_remote = true;
    auto report = probe::discover(machine, options);
    if (!report.ok()) {
      std::fprintf(stderr, "probe failed: %s\n",
                   report.error().to_string().c_str());
      return 1;
    }
    (void)probe::feed_registry(registry, *report);
    std::printf("%s", attr::memattrs_report(registry).c_str());
  }

  std::printf("%s", support::banner(
      "Serialized firmware table (the sysfs stand-in)").c_str());
  std::printf("%s", hmat::serialize(hmat::generate(topology)).c_str());
  return 0;
}
