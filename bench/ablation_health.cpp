// Ablation A-H (docs/RESILIENCE.md "Health & evacuation"): what a mid-run
// node quarantine costs, and whether the self-healing loop earns its keep.
//
// STREAM and Graph500 each run three measured phases on the SNC Xeon with
// the health loop (HealthMonitor -> QuarantineList -> Evacuator) attached:
//
//   healthy     clean baseline, buffers on their preferred node
//   quarantine  the buffers' home node starts reporting fault telemetry
//               mid-phase; the monitor escalates healthy -> suspect ->
//               quarantined and the evacuator drains hot buffers through
//               the shared migration budget while the workload keeps running
//   recovered   steady state after evacuation, home node still quarantined
//
// The acceptance gate (run by the CI chaos lane): recovered throughput must
// be >= 90% of the healthy baseline for both workloads — evacuation has to
// land buffers on targets good enough that losing a node is a blip, not a
// cliff.
#include "common.hpp"

#include <cstdio>

#include "hetmem/apps/graph500.hpp"
#include "hetmem/apps/stream.hpp"
#include "hetmem/health/evacuator.hpp"
#include "hetmem/health/health.hpp"
#include "hetmem/runtime/policy.hpp"

using namespace hetmem;

namespace {

support::Bitmap first_initiator(const topo::Topology& topology) {
  for (const topo::Object* node : topology.numa_nodes()) {
    if (!node->cpuset().empty()) return node->cpuset();
  }
  return {};
}

runtime::RuntimePolicyOptions health_policy_options() {
  runtime::RuntimePolicyOptions options;
  options.sampler.phases_per_epoch = 2;
  options.classifier.ema_alpha = 1.0;
  options.classifier.hysteresis_epochs = 1;
  return options;
}

struct PhaseRow {
  double throughput = 0.0;       // bytes/s (STREAM) or TEPS (Graph500)
  health::HealthState victim_state = health::HealthState::kHealthy;
  std::uint64_t evac_moved = 0;
  std::uint64_t evac_moved_bytes = 0;
};

struct WorkloadReport {
  const char* name = "";
  const char* unit = "";
  unsigned victim = 0;
  bool victim_clear = false;       // no live buffers left on the victim
  std::uint64_t migrations = 0;    // engine + evacuator moves combined
  std::string evac_log;
  PhaseRow phases[3];  // healthy / quarantine / recovered

  [[nodiscard]] double recovery_ratio() const {
    return phases[0].throughput > 0.0
               ? phases[2].throughput / phases[0].throughput
               : 0.0;
  }
};

constexpr const char* kPhaseNames[3] = {"healthy", "quarantine", "recovered"};

/// Runs one workload through the three phases. `run_once` executes the
/// workload and returns its throughput (0.0 on failure).
template <typename RunOnce>
void run_phases(sim::SimMachine& machine, health::HealthMonitor& monitor,
                const health::Evacuator& evacuator, unsigned victim,
                RunOnce&& run_once, WorkloadReport* report) {
  for (int phase = 0; phase < 3; ++phase) {
    if (phase == 1) (void)machine.set_node_degraded(victim, true);
    report->phases[phase].throughput = run_once();
    report->phases[phase].victim_state = monitor.state(victim);
    report->phases[phase].evac_moved = evacuator.stats().moved;
    report->phases[phase].evac_moved_bytes = evacuator.stats().moved_bytes;
  }
  (void)machine.set_node_degraded(victim, false);
}

WorkloadReport bench_stream() {
  WorkloadReport report;
  report.name = "STREAM triad";
  report.unit = "GB/s";
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  const support::Bitmap initiator = first_initiator(machine.topology());
  attr::MemAttrRegistry registry(machine.topology());
  // Fully populated table (HMAT-complete platform): evacuation needs remote
  // values to rank the SNC sibling and the far socket as destinations.
  hmat::GenerateOptions hmat_options;
  hmat_options.local_only = false;
  (void)hmat::load_into(registry,
                        hmat::generate(machine.topology(), hmat_options));
  alloc::HeterogeneousAllocator allocator(machine, registry);

  apps::StreamConfig config;
  config.declared_total_bytes = 384 * support::kMiB;
  config.backing_elements = 1u << 15;
  config.threads = 8;
  config.iterations = 5;
  apps::BufferPlacement placement;
  placement.attribute = attr::kBandwidth;
  placement.attribute_rescue = true;
  auto runner = apps::StreamRunner::create(machine, &allocator, initiator,
                                           config, placement);
  if (!runner.ok()) return report;
  report.victim = allocator.trace().front().node;

  runtime::RuntimePolicy policy(allocator, initiator, health_policy_options());
  health::HealthMonitor monitor(machine, registry);
  // Long-running job: a generous amortization horizon so the drain happens
  // within the measured window instead of waiting out the quarantine.
  health::EvacuatorOptions evac_options;
  evac_options.expected_future_epochs = 24.0;
  health::Evacuator evacuator(allocator, policy.mutable_engine(), initiator,
                              evac_options);
  health::attach_health(policy, monitor, evacuator);
  policy.attach((*runner)->exec(), [&] { (*runner)->refresh_arrays(); });

  run_phases(machine, monitor, evacuator, report.victim,
             [&]() -> double {
               auto result = (*runner)->run_triad();
               return result.ok() ? result->triad_bytes_per_second : 0.0;
             },
             &report);
  report.victim_clear = machine.live_buffers_on(report.victim).empty();
  report.migrations = allocator.stats().migrations;
  report.evac_log = evacuator.render_log();
  return report;
}

WorkloadReport bench_graph500() {
  WorkloadReport report;
  report.name = "Graph500 BFS";
  report.unit = "TEPSe+8";
  sim::SimMachine machine(topo::xeon_clx_snc_1lm());
  const support::Bitmap initiator = first_initiator(machine.topology());
  attr::MemAttrRegistry registry(machine.topology());
  // Fully populated table (HMAT-complete platform): evacuation needs remote
  // values to rank the SNC sibling and the far socket as destinations.
  hmat::GenerateOptions hmat_options;
  hmat_options.local_only = false;
  (void)hmat::load_into(registry,
                        hmat::generate(machine.topology(), hmat_options));
  alloc::HeterogeneousAllocator allocator(machine, registry);

  apps::Graph500Config config;
  config.scale_declared = 18;
  config.scale_backing = 13;
  config.threads = 8;
  config.num_roots = 2;
  apps::Graph500Placement placement =
      apps::Graph500Placement::by_attribute(attr::kLatency);
  placement.graph.attribute_rescue = true;
  placement.parents.attribute_rescue = true;
  placement.frontier.attribute_rescue = true;
  auto runner = apps::Graph500Runner::create(machine, &allocator, initiator,
                                             config, placement);
  if (!runner.ok()) return report;
  report.victim = allocator.trace().front().node;

  runtime::RuntimePolicy policy(allocator, initiator, health_policy_options());
  health::HealthMonitor monitor(machine, registry);
  // Long-running job: a generous amortization horizon so the drain happens
  // within the measured window instead of waiting out the quarantine.
  health::EvacuatorOptions evac_options;
  evac_options.expected_future_epochs = 24.0;
  health::Evacuator evacuator(allocator, policy.mutable_engine(), initiator,
                              evac_options);
  health::attach_health(policy, monitor, evacuator);
  policy.attach((*runner)->exec(), [&] { (*runner)->refresh_arrays(); });

  run_phases(machine, monitor, evacuator, report.victim,
             [&]() -> double {
               auto result = (*runner)->run();
               return result.ok() ? result->harmonic_mean_teps : 0.0;
             },
             &report);
  report.victim_clear = machine.live_buffers_on(report.victim).empty();
  report.migrations = allocator.stats().migrations;
  report.evac_log = evacuator.render_log();
  return report;
}

std::string format_throughput(const WorkloadReport& report, double value) {
  return report.unit[0] == 'G' ? bench::gbps(value) : bench::teps_e8(value);
}

}  // namespace

int main() {
  std::printf("%s",
              support::banner(
                  "Ablation A-H: mid-run node quarantine on Xeon CLX SNC -- "
                  "health loop attached (monitor -> quarantine -> budgeted "
                  "evacuation), three measured phases per workload")
                  .c_str());

  const WorkloadReport reports[] = {bench_stream(), bench_graph500()};

  support::TextTable table({"Workload", "Phase", "Throughput", "vs healthy",
                            "victim state", "evac moved", "evac MiB"});
  for (const WorkloadReport& report : reports) {
    for (int phase = 0; phase < 3; ++phase) {
      const PhaseRow& row = report.phases[phase];
      const double ratio = report.phases[0].throughput > 0.0
                               ? row.throughput / report.phases[0].throughput
                               : 0.0;
      table.add_row(
          {phase == 0 ? report.name : "", kPhaseNames[phase],
           format_throughput(report, row.throughput) + " " + report.unit,
           support::format_fixed(100.0 * ratio, 1) + "%",
           health::health_state_name(row.victim_state),
           std::to_string(row.evac_moved),
           std::to_string(row.evac_moved_bytes / support::kMiB)});
    }
  }
  std::printf("%s", table.render().c_str());

  bool pass = true;
  for (const WorkloadReport& report : reports) {
    const double ratio = report.recovery_ratio();
    // The gate is the outcome: the evacuator actually drained something AND
    // throughput came back within 10% of the healthy baseline. Cold buffers
    // may legitimately stay put under quarantine (break-even says the move
    // never pays off), so "victim fully empty" is only guaranteed for
    // offline nodes, not quarantined ones.
    const bool ok = ratio >= 0.90 && report.phases[2].evac_moved >= 1;
    std::printf("%s: node %u quarantined mid-run, %llu migration(s) "
                "(%llu by evacuator), victim %s, recovered to %.1f%% of "
                "healthy baseline -- %s\n",
                report.name, report.victim,
                static_cast<unsigned long long>(report.migrations),
                static_cast<unsigned long long>(report.phases[2].evac_moved),
                report.victim_clear ? "drained" : "still holds cold buffers",
                100.0 * ratio, ok ? "PASS (>= 90%)" : "FAIL");
    if (!ok && !report.evac_log.empty()) {
      std::printf("evacuation decisions:\n%s", report.evac_log.c_str());
    }
    pass = pass && ok;
  }
  std::printf(
      "\nReading: the quarantine row shows the transition epoch(s) -- the\n"
      "monitor escalating and the evacuator paying migration cost out of the\n"
      "shared per-epoch budget while triad/BFS keep running. The recovered\n"
      "row is the self-healed steady state: buffers re-homed, quarantined\n"
      "node idle. The 90%% gate is the acceptance bar for the health loop.\n");
  return pass ? 0 : 1;
}
