// Phase-shift ablation (docs/RUNTIME.md "Phase shifts & trace replay"):
// the online runtime vs a clairvoyant oracle on the KV-cache hot-set
// rotation workload, plus the record -> replay determinism contract.
//
// The KV-cache kernel spreads its value store over four 1 GiB segments and
// rotates the Zipf head to the next segment every `kShiftEvery` phases.
// Fast memory is squeezed so only one segment (plus the append log) fits:
// after every rotation the runtime must notice the old hot segment cooling
// (EMA decay under the 1% share floor), evict it, and promote the new hot
// segment — paying for its own migrations — while the oracle teleports the
// hot segment to fast memory at every shift boundary for free.
//
// Gates (--check exits 1 when any fails):
//   recovery      per rotation window, online steady-state throughput
//                 (mean of the last kSteadyPhases phases) >= 90% of the
//                 oracle's for the same window;
//   budget        bytes migrated by the engine never exceed
//                 kBudgetBytes in any single epoch (per-epoch sum over
//                 the decision log AND the engine's high-water mark);
//   determinism   a TraceRecorder rides the online run; serializing the
//                 trace, parsing it back, and replaying it twice on fresh
//                 identically-prepared testbeds yields decision logs that
//                 are byte-identical to each other AND to the live run's.
//
// Usage: ablation_phases [--out FILE] [--check]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "hetmem/apps/kvcache.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/trace/trace.hpp"

namespace {

using namespace hetmem;
using support::kGiB;
using support::kMiB;

constexpr unsigned kSegments = 4;
constexpr unsigned kShiftEvery = 10;
constexpr unsigned kWindows = 4;
constexpr unsigned kSteadyPhases = 3;
constexpr std::uint64_t kSegmentBytes = 1 * kGiB;
constexpr std::uint64_t kLogBytes = 512 * kMiB;
// Room for one segment + the log + slack; an epoch may evict the cooling
// segment and promote the heating one, hence a two-segment budget.
constexpr std::uint64_t kFastHeadroom = kSegmentBytes + kLogBytes + 256 * kMiB;
constexpr std::uint64_t kBudgetBytes = 2 * kSegmentBytes;

support::Bitmap first_initiator(const topo::Topology& topology) {
  for (const topo::Object* node : topology.numa_nodes()) {
    if (!node->cpuset().empty()) return node->cpuset();
  }
  return {};
}

unsigned best_target(const bench::Testbed& bed, attr::AttrId attribute) {
  const auto ranked = bed.registry->targets_ranked(
      attribute,
      attr::Initiator::from_cpuset(first_initiator(bed.topology())));
  return ranked.empty() ? 0 : ranked.front().target->logical_index();
}

apps::KvCacheConfig workload_config() {
  apps::KvCacheConfig config;
  config.declared_value_bytes = kSegments * kSegmentBytes;
  config.segments = kSegments;
  config.declared_log_bytes = kLogBytes;
  config.phases = kWindows * kShiftEvery;
  config.shift_every_phases = kShiftEvery;
  return config;
}

runtime::RuntimePolicyOptions online_options() {
  runtime::RuntimePolicyOptions options;
  // Same recipe as ablation_runtime: responsive EMA so a cooled segment
  // falls under the insensitive floor within a few epochs, short hysteresis,
  // a horizon long enough to amortize 1 GiB promotions.
  options.classifier.ema_alpha = 0.85;
  options.classifier.hysteresis_epochs = 2;
  options.engine.expected_future_epochs = 50.0;
  options.engine.epoch_budget_bytes = kBudgetBytes;
  return options;
}

struct Setup {
  bench::Testbed bed;
  std::unique_ptr<apps::KvCacheRunner> runner;
  support::Bitmap initiator;
  unsigned fast = 0;
  unsigned slow = 0;
  bool ok = false;
};

/// Fresh testbed with fast memory squeezed and every KV buffer parked on
/// the capacity target — the same initial state for live, oracle and
/// replay runs (replay determinism depends on identical preparation).
Setup make_setup() {
  Setup setup;
  setup.bed = bench::make_xeon();
  setup.initiator = first_initiator(setup.bed.topology());
  setup.fast = best_target(setup.bed, attr::kBandwidth);
  setup.slow = best_target(setup.bed, attr::kCapacity);

  const std::uint64_t fast_free = setup.bed.machine->available_bytes(setup.fast);
  if (fast_free > kFastHeadroom) {
    auto hog = setup.bed.machine->allocate(fast_free - kFastHeadroom,
                                           setup.fast, "resident.hog", 4096);
    if (!hog.ok()) return setup;
  }
  auto runner = apps::KvCacheRunner::create(
      *setup.bed.machine, setup.bed.allocator.get(), setup.initiator,
      workload_config(), apps::KvCachePlacement::all_on_node(setup.slow));
  if (!runner.ok()) return setup;
  setup.runner = std::move(runner).take();
  setup.ok = true;
  return setup;
}

/// Mean simulated ns of the last kSteadyPhases phases of each window.
std::vector<double> steady_window_ns(const std::vector<double>& phase_ns) {
  std::vector<double> steady;
  for (unsigned window = 0; window < kWindows; ++window) {
    const unsigned end = (window + 1) * kShiftEvery;
    double sum = 0.0;
    for (unsigned phase = end - kSteadyPhases; phase < end; ++phase) {
      sum += phase_ns[phase];
    }
    steady.push_back(sum / kSteadyPhases);
  }
  return steady;
}

struct OnlineResult {
  bool ok = false;
  std::vector<double> steady_ns;
  std::uint64_t accepted = 0;
  std::uint64_t evicted = 0;
  std::uint64_t max_epoch_bytes = 0;
  std::uint64_t worst_epoch_sum = 0;  // per-epoch decision-log sum high-water
  std::string decision_log;
  trace::Trace trace;
};

OnlineResult run_online() {
  OnlineResult result;
  Setup setup = make_setup();
  if (!setup.ok) return result;
  apps::KvCacheRunner& runner = *setup.runner;

  runtime::RuntimePolicy policy(*setup.bed.allocator, setup.initiator,
                                online_options());
  // attach() installs the post-migration refresh; the recorder then takes
  // over the observer slot and chains the policy behind its own recording.
  policy.attach(runner.exec(), [&runner] { runner.refresh_arrays(); });
  trace::TraceRecorder recorder({1, "kvcache.phases"});
  recorder.attach(runner.exec(), &policy);

  auto run = runner.run();
  if (!run.ok()) return result;

  result.steady_ns = steady_window_ns(run->phase_ns);
  result.accepted = policy.engine().stats().accepted;
  result.evicted = policy.engine().stats().evicted;
  result.max_epoch_bytes = policy.engine().max_epoch_migrated_bytes();
  std::map<std::uint64_t, std::uint64_t> per_epoch;
  for (const runtime::Decision& decision : policy.decisions()) {
    if (decision.verdict == runtime::Verdict::kAccepted ||
        decision.verdict == runtime::Verdict::kEvicted) {
      per_epoch[decision.epoch] += decision.bytes;
    }
  }
  for (const auto& [epoch, bytes] : per_epoch) {
    result.worst_epoch_sum = std::max(result.worst_epoch_sum, bytes);
  }
  result.decision_log = policy.render_decision_log();
  result.trace = recorder.trace();
  result.ok = true;
  return result;
}

struct OracleResult {
  bool ok = false;
  std::vector<double> steady_ns;
};

/// Clairvoyant baseline: before every rotation window the hot segment (and
/// the append log, once) teleports to fast memory via machine.migrate —
/// no cost charged, no budget drawn. Requires knowing the schedule.
OracleResult run_oracle() {
  OracleResult result;
  Setup setup = make_setup();
  if (!setup.ok) return result;
  apps::KvCacheRunner& runner = *setup.runner;
  sim::SimMachine& machine = *setup.bed.machine;

  if (!machine.migrate(runner.log_buffer(), setup.fast).ok()) return result;

  std::vector<double> phase_ns;
  for (unsigned window = 0; window < kWindows; ++window) {
    const unsigned hot = runner.hot_segment(window * kShiftEvery);
    if (window > 0) {
      const unsigned cooled =
          runner.hot_segment((window - 1) * kShiftEvery);
      if (!machine.migrate(runner.segment_buffer(cooled), setup.slow).ok()) {
        return result;
      }
    }
    if (!machine.migrate(runner.segment_buffer(hot), setup.fast).ok()) {
      return result;
    }
    runner.refresh_arrays();
    auto run = runner.run_phases(kShiftEvery);
    if (!run.ok()) return result;
    phase_ns.insert(phase_ns.end(), run->phase_ns.begin(),
                    run->phase_ns.end());
  }
  result.steady_ns = steady_window_ns(phase_ns);
  result.ok = true;
  return result;
}

/// Replays `trace` against a fresh identically-prepared testbed and returns
/// the resulting decision log.
std::string replay_log(const trace::Trace& trace) {
  Setup setup = make_setup();
  if (!setup.ok) return "<setup failed>";
  runtime::RuntimePolicy policy(*setup.bed.allocator, setup.initiator,
                                online_options());
  trace::TraceReplayer replayer(policy);
  (void)replayer.replay(trace);
  return policy.render_decision_log();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_phases.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::cerr << "usage: ablation_phases [--out FILE] [--check]\n";
      return 2;
    }
  }

  OnlineResult online = run_online();
  OracleResult oracle = run_oracle();
  if (!online.ok || !oracle.ok) {
    std::cerr << "phase ablation setup failed\n";
    return 1;
  }

  // Round-trip the recorded trace through the text format, then replay it
  // twice on fresh testbeds.
  const std::string text = trace::serialize(online.trace);
  auto parsed = trace::parse(text);
  if (!parsed.ok()) {
    std::cerr << "trace round-trip failed: " << parsed.error().message << "\n";
    return 1;
  }
  const std::string first_replay = replay_log(*parsed);
  const std::string second_replay = replay_log(*parsed);
  const bool replays_equal = first_replay == second_replay;
  const bool live_equals_replay = first_replay == online.decision_log;

  bool recovery_ok = true;
  std::vector<double> ratios;
  for (unsigned window = 0; window < kWindows; ++window) {
    // Throughput ratio == inverse time ratio for equal per-phase work.
    const double ratio = oracle.steady_ns[window] / online.steady_ns[window];
    ratios.push_back(ratio);
    recovery_ok &= ratio >= 0.90;
  }
  const bool budget_ok = online.max_epoch_bytes <= kBudgetBytes &&
                         online.worst_epoch_sum <= kBudgetBytes;
  const bool determinism_ok = replays_equal && live_equals_replay;
  const bool all_ok = recovery_ok && budget_ok && determinism_ok;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("hetmem.bench.phases/1");
  json.key("config").begin_object();
  json.key("segments").value(kSegments);
  json.key("shift_every_phases").value(kShiftEvery);
  json.key("windows").value(kWindows);
  json.key("segment_bytes").value(static_cast<std::uint64_t>(kSegmentBytes));
  json.key("budget_bytes").value(static_cast<std::uint64_t>(kBudgetBytes));
  json.key("zipf_s").value(workload_config().zipf_s);
  json.end_object();
  json.key("windows").begin_array();
  for (unsigned window = 0; window < kWindows; ++window) {
    json.begin_object();
    json.key("window").value(window);
    json.key("online_steady_ms").value(online.steady_ns[window] / 1e6);
    json.key("oracle_steady_ms").value(oracle.steady_ns[window] / 1e6);
    json.key("recovery").value(ratios[window]);
    json.end_object();
  }
  json.end_array();
  json.key("migrations").begin_object();
  json.key("accepted").value(online.accepted);
  json.key("evicted").value(online.evicted);
  json.key("max_epoch_bytes").value(online.max_epoch_bytes);
  json.key("worst_epoch_decision_sum").value(online.worst_epoch_sum);
  json.end_object();
  json.key("determinism").begin_object();
  json.key("trace_epochs")
      .value(static_cast<std::uint64_t>(online.trace.epochs.size()));
  json.key("trace_bytes").value(static_cast<std::uint64_t>(text.size()));
  json.key("replays_equal").value(replays_equal);
  json.key("live_equals_replay").value(live_equals_replay);
  json.end_object();
  json.key("gates").begin_object();
  json.key("recovery").value(recovery_ok);
  json.key("budget").value(budget_ok);
  json.key("determinism").value(determinism_ok);
  json.key("all").value(all_ok);
  json.end_object();
  json.end_object();
  out << '\n';
  out.close();

  std::cout << "wrote " << out_path << "\n";
  for (unsigned window = 0; window < kWindows; ++window) {
    std::cout << "window " << window << ": online "
              << support::format_fixed(online.steady_ns[window] / 1e6, 2)
              << " ms vs oracle "
              << support::format_fixed(oracle.steady_ns[window] / 1e6, 2)
              << " ms steady-state -> recovery "
              << support::format_fixed(ratios[window] * 100.0, 1) << "%\n";
  }
  std::cout << "migrations: " << online.accepted << " accepted, "
            << online.evicted << " evicted, max epoch bytes "
            << support::format_bytes(online.max_epoch_bytes) << " (budget "
            << support::format_bytes(kBudgetBytes) << ")\n";
  std::cout << "replay: " << online.trace.epochs.size() << " epochs, "
            << text.size() << " bytes serialized, replays "
            << (replays_equal ? "identical" : "DIVERGED") << ", live vs replay "
            << (live_equals_replay ? "identical" : "DIVERGED") << "\n";
  std::cout << "gates: recovery " << (recovery_ok ? "ok" : "FAIL")
            << ", budget " << (budget_ok ? "ok" : "FAIL") << ", determinism "
            << (determinism_ok ? "ok" : "FAIL") << "\n";
  // The moves tell the rotation story (promote, then evict-cooled +
  // promote-heated at every shift); rejections only matter on failure.
  std::istringstream lines(online.decision_log);
  for (std::string line; std::getline(lines, line);) {
    if (line.find(" accepted ") != std::string::npos ||
        line.find(" evicted ") != std::string::npos) {
      std::cout << line << "\n";
    }
  }
  if (!all_ok) {
    std::cout << "full online decision log:\n" << online.decision_log;
  }
  if (check && !all_ok) return 1;
  return 0;
}
