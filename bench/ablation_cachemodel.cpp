// Ablation A4: the analytic cache model vs a trace-driven set-associative
// LRU simulation.
//
// Every miss count the workloads charge comes from sim::CacheModel's closed
// forms; this ablation replays the same access patterns through the real
// cachesim::Cache (full LRU, 11-way, CLX-sized) and compares. The analytic
// model is the substitution for per-access simulation — its error bound is
// what makes the Table II/IV numbers trustworthy.
#include "common.hpp"

#include "hetmem/cachesim/cachesim.hpp"
#include "hetmem/simmem/array.hpp"
#include "hetmem/support/rng.hpp"

using namespace hetmem;

int main() {
  cachesim::CacheConfig config;  // CLX LLC: 27.5 MiB, 11-way
  config.set_sampling = 16;      // sampled sets keep this fast

  std::printf("%s", support::banner(
      "Ablation A4: analytic miss model vs set-associative LRU simulation "
      "(27.5 MiB, 11-way, 1-in-16 set sampling)").c_str());

  support::TextTable random_table({"Working set", "analytic miss rate",
                                   "simulated miss rate", "abs error"});
  support::Xoshiro256 rng(2022);
  for (std::uint64_t ws_mib : {8ull, 16ull, 32ull, 64ull, 256ull, 1024ull}) {
    const std::uint64_t ws = ws_mib * 1024 * 1024;
    cachesim::Cache cache(config);
    // Warm until the resident set stabilizes (several coupon-collector
    // rounds over the working set's lines), then measure steady state.
    const std::uint64_t lines = ws / config.line_bytes;
    const std::uint64_t warm_accesses =
        std::min<std::uint64_t>(20'000'000, 8 * lines);
    for (std::uint64_t i = 0; i < warm_accesses; ++i) {
      (void)cache.access(rng.next_below(ws));
    }
    const cachesim::CacheStats warm = cache.stats();
    for (int i = 0; i < 2'000'000; ++i) (void)cache.access(rng.next_below(ws));
    const cachesim::CacheStats done = cache.stats();
    const double simulated =
        static_cast<double>(done.misses - warm.misses) /
        static_cast<double>(done.accesses - warm.accesses);
    const double analytic = sim::CacheModel::random_miss_rate(ws, config.size_bytes);
    random_table.add_row({std::to_string(ws_mib) + " MiB",
                          support::format_fixed(analytic, 3),
                          support::format_fixed(simulated, 3),
                          support::format_fixed(std::abs(analytic - simulated), 3)});
  }
  std::printf("random access:\n%s", random_table.render().c_str());

  support::TextTable stream_table({"Buffer", "analytic mem fraction",
                                   "simulated miss rate", "abs error"});
  for (std::uint64_t ws_mib : {4ull, 16ull, 64ull, 512ull}) {
    const std::uint64_t ws = ws_mib * 1024 * 1024;
    cachesim::Cache cache(config);
    // Twenty sequential passes: the analytic "memory fraction" is a
    // steady-state figure, so amortize the cold first pass away.
    for (int pass = 0; pass < 20; ++pass) {
      for (std::uint64_t address = 0; address < ws; address += 64) {
        (void)cache.access(address);
      }
    }
    const double simulated = cache.stats().miss_rate();
    const double analytic =
        sim::CacheModel::stream_memory_fraction(ws, config.size_bytes);
    stream_table.add_row({std::to_string(ws_mib) + " MiB",
                          support::format_fixed(analytic, 3),
                          support::format_fixed(simulated, 3),
                          support::format_fixed(std::abs(analytic - simulated), 3)});
  }
  std::printf("sequential passes:\n%s", stream_table.render().c_str());
  std::printf(
      "\nShape check: analytic and simulated rates agree within a few\n"
      "percentage points across the fits/spills transition, validating the\n"
      "closed-form model the workloads charge misses with (DESIGN.md sec. 2).\n");
  return 0;
}
