// lstopo-style textual rendering (Figs. 1-3 analogue).
#pragma once

#include <string>

#include "hetmem/topo/topology.hpp"

namespace hetmem::topo {

struct RenderOptions {
  /// Collapse runs of identical cores into "Core L#a-b (xN)".
  bool collapse_cores = true;
  /// Show memory-side caches on nodes that have one.
  bool show_memory_side_caches = true;
  /// Show per-object cpusets.
  bool show_cpusets = false;
};

/// Indented tree, one object per line, memory children listed before normal
/// children at each level (as lstopo draws them above the CPU hierarchy).
std::string render_tree(const Topology& topology, const RenderOptions& options = {});

/// One-line summary of a NUMA node, e.g.
/// "NUMANode L#2 P#2 (NVDIMM, 768.0GiB)".
std::string describe_numa_node(const Object& node);

}  // namespace hetmem::topo
