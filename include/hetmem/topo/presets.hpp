// Canned topologies for every platform the paper depicts or evaluates on.
//
// Capacities, core counts and node numbering follow the paper's figures and
// §VI experimental setup. These are the machines the simulator (simmem) and
// every bench harness instantiate.
#pragma once

#include "hetmem/topo/topology.hpp"

namespace hetmem::topo {

/// §VI KNL server: Xeon Phi 7230, 64 cores x 4 threads, SNC-4 Flat, memory-
/// side cache disabled. Per cluster: 24GiB DRAM + 4GiB MCDRAM (HBM) exposed
/// as a separate NUMA node. DRAM nodes get lower OS indices than MCDRAM
/// (paper footnote 21).
Topology knl_snc4_flat();

/// Fig. 1: Xeon Phi in SNC4/Hybrid50: 72 cores (18 per cluster); per cluster
/// 12GiB DRAM behind a 2GiB direct-mapped memory-side cache, plus 2GiB
/// MCDRAM in flat mode.
Topology knl_snc4_hybrid50();

/// The same 7230 in Quadrant/Cache mode (§II-A): one 96GiB DRAM node with
/// the entire 16GiB MCDRAM as a hardware-managed memory-side cache — the
/// "automatic" end of the performance/productivity trade-off.
Topology knl_quadrant_cache();

/// Fig. 2: dual Xeon Gold 6230, SubNUMA Clustering on, NVDIMMs in
/// 1-Level-Memory: per package 2 groups x 10 cores x 2 threads, 96GiB DRAM
/// per group, 768GiB NVDIMM per package. Node order: 0,1 DRAM / 2 NVDIMM /
/// 3,4 DRAM / 5 NVDIMM (Fig. 5).
Topology xeon_clx_snc_1lm();

/// §VI Xeon server: same machine with SNC disabled (footnote 18): one 192GiB
/// DRAM node + one 768GiB NVDIMM node per package, 20 cores per package.
Topology xeon_clx_1lm();

/// Same hardware in 2-Level-Memory: NVDIMM exposed as the only visible
/// memory (768GiB per package) with the 192GiB DRAM acting as a
/// memory-side cache.
Topology xeon_clx_2lm();

/// Fig. 3: fictitious platform. 2 packages; each has package-local NVDIMM
/// (512GiB) and DRAM (64GiB), and 2 SubNUMA clusters (8 cores) each with
/// 16GiB HBM; plus one 4TiB network-attached memory local to the whole
/// machine.
Topology fictitious_fig3();

/// Fugaku-like node: one package, 4 core-memory-groups of 12 cores, each
/// with 8GiB HBM2 and nothing else (paper §II-C: no trade-off to manage).
Topology fugaku_like();

/// POWER9 + V100-style: 2 packages with 256GiB DRAM each; each package also
/// sees its GPU's 16GiB HBM as a host NUMA node (paper §II-C).
Topology power9_v100();

/// All presets with stable names, for parameterized tests.
struct NamedTopology {
  const char* name;
  Topology (*factory)();
};
const std::vector<NamedTopology>& all_presets();

}  // namespace hetmem::topo
