// Topology-aware task distribution (hwloc_distrib analogue).
//
// Schedulers and MPI launchers place ranks by walking the topology tree so
// they land on distinct packages/groups/cores before sharing anything —
// this is hwloc_distrib(), a substrate the paper's ecosystem assumes when
// it says "16 MPI processes on a single processor".
#pragma once

#include <vector>

#include "hetmem/support/bitmap.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::topo {

/// Splits the machine's PUs into `count` cpusets, one per rank: the tree is
/// recursively partitioned so children get contiguous shares proportional
/// to their PU counts. count == PU count gives one PU each; count smaller
/// gives each rank a contiguous subtree slice; count > PU count wraps
/// (several ranks share a PU). Returns an empty vector when count is 0.
std::vector<support::Bitmap> distribute(const Topology& topology,
                                        unsigned count);

}  // namespace hetmem::topo
