// Topology object model, mirroring hwloc's object tree.
//
// Normal objects (Machine/Package/Group/L3/Core/PU) form a tree ordered by
// physical inclusion. Memory objects (NUMANode) hang off the normal object
// they are local to, as hwloc >= 2.0 does (paper §III): a NUMANode attached
// to a Group ("SubNUMA Cluster") is local to that group's CPUs only, while a
// NUMANode attached to a Package is local to the whole package.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hetmem/support/bitmap.hpp"

namespace hetmem::topo {

enum class ObjType : std::uint8_t {
  kMachine,
  kPackage,
  kGroup,    // SubNUMA Cluster / CMG / die
  kL3Cache,
  kCore,
  kPU,       // hardware thread
  kNUMANode, // memory object
};

[[nodiscard]] const char* obj_type_name(ObjType type);

/// Technology of a memory node. The paper's thesis is that application code
/// must NOT branch on this enum — it is exposed for debugging/rendering only
/// (hwloc keeps the equivalent in human-readable info strings).
enum class MemoryKind : std::uint8_t {
  kDRAM,
  kHBM,     // MCDRAM on KNL, on-package HBM elsewhere
  kNVDIMM,  // Optane-style persistent memory used as volatile RAM
  kNAM,     // network-attached memory
  kGPU,     // coherent GPU memory exposed as a host NUMA node (POWER9+V100)
};

[[nodiscard]] const char* memory_kind_name(MemoryKind kind);

/// Hardware-managed cache in front of a memory node (KNL Cache/Hybrid modes,
/// Xeon 2-Level-Memory). Observed performance differs from the node's own
/// attributes when present (paper §VII / footnote 22).
struct MemorySideCache {
  std::uint64_t size_bytes = 0;
  unsigned associativity = 1;  // 1 => direct-mapped (KNL MCDRAM cache)
  unsigned line_bytes = 64;
};

class Object {
 public:
  Object(ObjType type, unsigned os_index) : type_(type), os_index_(os_index) {}

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  [[nodiscard]] ObjType type() const { return type_; }
  /// Physical (OS) index, e.g. NUMA node id as the OS numbers it.
  [[nodiscard]] unsigned os_index() const { return os_index_; }
  /// Logical index among same-type objects, depth-first order ("L#" in lstopo).
  [[nodiscard]] unsigned logical_index() const { return logical_index_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// CPUs physically contained in (normal objects) or local to (NUMA nodes)
  /// this object.
  [[nodiscard]] const support::Bitmap& cpuset() const { return cpuset_; }
  /// NUMA nodes contained in this subtree (for a NUMANode: itself).
  [[nodiscard]] const support::Bitmap& nodeset() const { return nodeset_; }

  [[nodiscard]] const Object* parent() const { return parent_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Object>>& children() const {
    return children_;
  }
  /// NUMA nodes attached at this level, in attachment order. hwloc lists the
  /// default-allocation node (DRAM) first (paper §III).
  [[nodiscard]] const std::vector<std::unique_ptr<Object>>& memory_children() const {
    return memory_children_;
  }

  // --- NUMANode-only accessors (assert on other types) ---
  [[nodiscard]] MemoryKind memory_kind() const;
  [[nodiscard]] std::uint64_t capacity_bytes() const;
  [[nodiscard]] const std::optional<MemorySideCache>& memory_side_cache() const;

  /// Generic sub-type label, e.g. "SubNUMACluster" or "CMG" for groups.
  [[nodiscard]] const std::string& subtype() const { return subtype_; }

 private:
  friend class TopologyBuilder;
  friend class Topology;

  ObjType type_;
  unsigned os_index_;
  unsigned logical_index_ = 0;
  std::string name_;
  std::string subtype_;
  support::Bitmap cpuset_;
  support::Bitmap nodeset_;
  Object* parent_ = nullptr;
  std::vector<std::unique_ptr<Object>> children_;
  std::vector<std::unique_ptr<Object>> memory_children_;

  // NUMANode payload.
  MemoryKind memory_kind_ = MemoryKind::kDRAM;
  std::uint64_t capacity_bytes_ = 0;
  std::optional<MemorySideCache> ms_cache_;
};

}  // namespace hetmem::topo
