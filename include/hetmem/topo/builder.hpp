// Programmatic topology construction.
//
// Platforms are described top-down: packages contain groups contain cores
// contain PUs; NUMA nodes attach to any normal object. finalize() computes
// cpusets/nodesets bottom-up, assigns logical indices, and validates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "hetmem/support/result.hpp"
#include "hetmem/topo/object.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::topo {

class TopologyBuilder {
 public:
  explicit TopologyBuilder(std::string platform_name);

  /// Handle to a normal object under construction.
  class Node {
   public:
    Node add_package();
    Node add_group(std::string subtype = "SubNUMACluster");
    Node add_l3();
    /// Adds a core with `pu_count` hardware threads; PU os-indices are
    /// assigned sequentially machine-wide.
    Node add_core(unsigned pu_count = 1);
    /// Adds `count` cores each with `pu_count` PUs.
    void add_cores(unsigned count, unsigned pu_count = 1);

    /// Attaches a NUMA node local to this object. OS indices are assigned in
    /// attachment order machine-wide (matching Linux, where DRAM nodes are
    /// attached/numbered before special-purpose memory on most platforms).
    Node attach_numa(MemoryKind kind, std::uint64_t capacity_bytes,
                     std::optional<MemorySideCache> ms_cache = std::nullopt);

    [[nodiscard]] Object* object() const { return object_; }

   private:
    friend class TopologyBuilder;
    Node(TopologyBuilder* builder, Object* object)
        : builder_(builder), object_(object) {}
    TopologyBuilder* builder_;
    Object* object_;
  };

  /// The machine root.
  [[nodiscard]] Node machine();

  /// Computes derived state and validates. The builder is consumed.
  [[nodiscard]] support::Result<Topology> finalize() &&;

 private:
  friend class Node;
  Object* new_child(Object* parent, ObjType type);

  std::unique_ptr<Object> root_;
  std::string platform_name_;
  unsigned next_pu_os_index_ = 0;
  unsigned next_numa_os_index_ = 0;
  unsigned next_package_os_index_ = 0;
  unsigned next_group_os_index_ = 0;
  unsigned next_core_os_index_ = 0;
  unsigned next_l3_os_index_ = 0;
  bool finalized_ = false;
};

}  // namespace hetmem::topo
