// Topology container and locality queries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hetmem/support/bitmap.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/topo/object.hpp"

namespace hetmem::topo {

/// Locality matching for local_numa_nodes(), following the semantics of
/// hwloc_get_local_numanode_objs() flags.
enum class LocalityFlags : unsigned {
  /// Nodes whose locality cpuset equals the initiator cpuset.
  kExact = 0,
  /// Also nodes whose locality is a superset of the initiator (e.g. a
  /// package-level NVDIMM is local to a core inside one of its SNCs).
  kLargerLocality = 1u << 0,
  /// Also nodes whose locality is a subset of the initiator.
  kSmallerLocality = 1u << 1,
  /// Every node whose locality intersects the initiator at all (a superset
  /// of kLargerLocality | kSmallerLocality; hwloc's INTERSECT_LOCALITY).
  kIntersecting = 1u << 2,
  /// All nodes in the machine regardless of locality.
  kAll = 1u << 3,
};

[[nodiscard]] constexpr LocalityFlags operator|(LocalityFlags a, LocalityFlags b) {
  return static_cast<LocalityFlags>(static_cast<unsigned>(a) | static_cast<unsigned>(b));
}
[[nodiscard]] constexpr bool has_flag(LocalityFlags value, LocalityFlags flag) {
  return (static_cast<unsigned>(value) & static_cast<unsigned>(flag)) != 0;
}

class Topology {
 public:
  Topology(Topology&&) = default;
  Topology& operator=(Topology&&) = default;

  [[nodiscard]] const Object& root() const { return *root_; }
  [[nodiscard]] const std::string& platform_name() const { return platform_name_; }

  /// NUMA nodes by logical index (lstopo "NUMANode L#i" order).
  [[nodiscard]] const std::vector<const Object*>& numa_nodes() const {
    return numa_nodes_;
  }
  /// Processing units by logical index.
  [[nodiscard]] const std::vector<const Object*>& pus() const { return pus_; }

  [[nodiscard]] const Object* numa_node(unsigned logical_index) const;
  /// NUMA node by OS index; nullptr when absent.
  [[nodiscard]] const Object* numa_node_by_os_index(unsigned os_index) const;

  /// Union of all PU cpusets.
  [[nodiscard]] const support::Bitmap& complete_cpuset() const;

  /// NUMA nodes local to `initiator` under the given matching flags, ordered
  /// by logical index. An empty initiator matches nothing (except kAll).
  [[nodiscard]] std::vector<const Object*> local_numa_nodes(
      const support::Bitmap& initiator,
      LocalityFlags flags = LocalityFlags::kIntersecting) const;

  /// Deepest normal object whose cpuset exactly equals `cpuset`, or the
  /// smallest enclosing object otherwise; nullptr when cpuset is empty or
  /// outside the machine.
  [[nodiscard]] const Object* covering_object(const support::Bitmap& cpuset) const;

  /// All objects of one type, logical order.
  [[nodiscard]] std::vector<const Object*> objects_of_type(ObjType type) const;

  /// Total installed memory across all NUMA nodes.
  [[nodiscard]] std::uint64_t total_memory_bytes() const;

  /// Structural invariants (used by tests and the builder):
  ///  - every normal object's cpuset is the union of its children's cpusets
  ///    (leaf PU sets are disjoint);
  ///  - every memory child's cpuset equals its attach point's cpuset;
  ///  - nodesets aggregate correctly; logical indices are dense per type.
  [[nodiscard]] support::Status validate() const;

 private:
  friend class TopologyBuilder;
  Topology() = default;

  std::unique_ptr<Object> root_;
  std::string platform_name_;
  std::vector<const Object*> numa_nodes_;
  std::vector<const Object*> pus_;
};

}  // namespace hetmem::topo
