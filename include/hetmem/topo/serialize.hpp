// Topology serialization — hwloc's XML export/import, in a line-based form.
//
// hwloc lets a cluster node export its topology and an analysis tool import
// it elsewhere ("gather on the compute node, study on the laptop"). Format:
// one object per line, indentation = tree depth, e.g.
//
//   # hetmem-topology v1 "2x Xeon 6230 SNC 1LM"
//   package
//     numa kind=NVDIMM capacity=824633720832
//     group subtype=SubNUMACluster
//       numa kind=DRAM capacity=103079215104
//       core pus=2
//
// Cores collapse their PUs into a count; NUMA attachment order (and hence
// OS indices) is preserved by emitting memory children before normal
// children, matching the builder's attachment semantics.
#pragma once

#include <string>
#include <string_view>

#include "hetmem/support/result.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::topo {

[[nodiscard]] std::string serialize(const Topology& topology);

/// Rebuilds a topology through TopologyBuilder; the result validates and
/// round-trips (serialize(parse(s)) == s for builder-produced topologies
/// with uniform cores).
support::Result<Topology> parse_topology(std::string_view text);

}  // namespace hetmem::topo
