// Synthetic ACPI HMAT (Heterogeneous Memory Attribute Table) substrate.
//
// On real platforms, firmware describes latency/bandwidth between initiator
// proximity domains and memory targets (ACPI 6.2 "System Locality Latency
// and Bandwidth Information" structures), plus memory-side caches; Linux
// >= 5.2 re-exports the *local* entries in sysfs (paper §IV-A1 — the authors
// contributed that support). Here the table is a first-class value with a
// text serialization standing in for firmware/sysfs, a generator playing the
// role of the platform vendor, and a loader that feeds attr::MemAttrRegistry
// exactly like hwloc's HMAT backend.
//
// Advertised (vendor) numbers are deliberately different from the measured
// constants in sim::MachinePerfModel — Fig. 5 shows 26 ns / 128 GB/s for the
// same DRAM that benchmarks at 285 ns / 80 GB/s (§IV-A2). What must agree is
// the *ranking*, which bench/ablation_discovery verifies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hetmem/memattr/memattr.hpp"
#include "hetmem/support/bitmap.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::hmat {

enum class AccessType : std::uint8_t { kAccess, kRead, kWrite };
enum class Metric : std::uint8_t { kLatency, kBandwidth };

[[nodiscard]] const char* access_type_name(AccessType type);
[[nodiscard]] const char* metric_name(Metric metric);

/// One System-Locality entry: performance of `initiator` accessing the
/// memory target with OS index `target_domain`.
struct LocalityEntry {
  support::Bitmap initiator;
  unsigned target_domain = 0;
  Metric metric = Metric::kLatency;
  AccessType access = AccessType::kAccess;
  /// ns for latency, bytes/s for bandwidth.
  double value = 0.0;
};

/// Memory-side cache descriptor for a target domain.
struct CacheEntry {
  unsigned target_domain = 0;
  std::uint64_t size_bytes = 0;
  unsigned associativity = 1;
  unsigned line_bytes = 64;
};

struct HmatTable {
  std::vector<LocalityEntry> locality;
  std::vector<CacheEntry> caches;
};

/// Vendor-advertised figures per memory kind (idealized datasheet values;
/// Fig. 5 and the §IV-A1 example platform).
struct AdvertisedPerf {
  double latency_ns = 0.0;
  double bandwidth_bps = 0.0;
  double read_bandwidth_bps = 0.0;   // 0 => not advertised
  double write_bandwidth_bps = 0.0;  // 0 => not advertised
};
[[nodiscard]] AdvertisedPerf advertised_defaults(topo::MemoryKind kind);

struct GenerateOptions {
  /// Real pre-HMAT-complete platforms only expose local-access performance
  /// (paper §IV-A1, Fig. 5 caption); set false for a fully populated table.
  bool local_only = true;
  /// Also emit separate read/write bandwidth entries where the kind
  /// advertises them (NVDIMMs do; Table I "on some platforms").
  bool read_write_split = false;
  /// Degradation applied to remote (cross-locality) entries when
  /// local_only is false.
  double remote_latency_factor = 2.2;
  double remote_bandwidth_factor = 0.45;
};

/// Plays the platform vendor: builds the firmware table for a topology from
/// the advertised per-kind figures.
[[nodiscard]] HmatTable generate(const topo::Topology& topology,
                                 const GenerateOptions& options = {});

/// Text serialization ("hetmem-hmat v1"), one entry per line.
[[nodiscard]] std::string serialize(const HmatTable& table);

/// Strict parse: the first malformed record aborts with a line-numbered
/// kParseError. Duplicate (initiator, target, metric, access) entries are
/// resolved deterministically — the LAST occurrence wins (firmware updates
/// append corrected entries) — never by downstream insertion order.
[[nodiscard]] support::Result<HmatTable> parse(std::string_view text);

/// One parser finding, anchored to its 1-based source line. Warnings
/// (duplicate entries) do not fail the strict parse; errors do.
struct Diagnostic {
  std::size_t line = 0;
  bool warning = false;
  std::string message;
  [[nodiscard]] std::string to_string() const {
    return std::string(warning ? "warning" : "error") + " line " +
           std::to_string(line) + ": " + message;
  }
};

struct ParseReport {
  HmatTable table;
  std::vector<Diagnostic> diagnostics;
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
};

/// Lenient parse for real-world (or fault-injected) firmware dumps: every
/// malformed record is recorded as a line-numbered error diagnostic and
/// skipped, the rest of the table survives. Duplicates resolve last-wins
/// with a warning diagnostic. Never silently drops a record: every omission
/// is visible in `diagnostics`.
[[nodiscard]] ParseReport parse_lenient(std::string_view text);

/// Deterministic duplicate resolution on an in-memory table: entries sharing
/// (initiator, target, metric, access) keep only the last occurrence.
/// Returns the number of entries removed.
std::size_t dedupe_entries(HmatTable& table);

struct LoadStats {
  std::size_t entries_loaded = 0;
  std::size_t entries_skipped = 0;  // unknown domains etc.
};

/// Feeds the table into a registry: kAccess entries set Bandwidth/Latency,
/// kRead/kWrite set the split attributes. Unknown target domains are
/// skipped (counted), matching hwloc's tolerance of firmware quirks.
support::Result<LoadStats> load_into(attr::MemAttrRegistry& registry,
                                     const HmatTable& table);

}  // namespace hetmem::hmat
