// Watchdog — deadline and stalled-progress supervision for the epoch loop
// (docs/RECOVERY.md "Watchdog").
//
// Real runtime daemons hang in two characteristic ways: an epoch blows its
// deadline (the management pass itself wedged), or the migration machinery
// keeps *trying* and keeps *failing* — the failed counter climbs while
// accepted stands still. The watchdog detects both, deterministically, in
// simulated time:
//
//   - epoch overruns: an epoch whose duration exceeds epoch_deadline_ns
//     (0 disables the measured check), OR an injected overrun from the
//     fault::site::kRuntimeEpochOverrun site — the watchdog consults the
//     site itself, so chaos runs can exercise the trip paths without a
//     slow host;
//   - migration stalls: per-epoch deltas of the MigrationEngine's stats
//     show failures with no accepted/evicted progress (the signature the
//     fault::site::kMachineMigrateStall site manufactures), for
//     stall_epochs_to_trip consecutive epochs;
//   - evacuation stalls: the same delta signature on the health
//     Evacuator's moved/failed counters (fed by the Supervisor; the
//     watchdog itself has no health dependency).
//
// Verdicts feed the Supervisor's circuit breakers; the watchdog itself
// never mutates anything it watches.
//
// Thread safety: externally synchronized — one epoch loop drives
// observe_epoch (the Supervisor wires it into the policy's epoch hook).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/fault/fault.hpp"
#include "hetmem/runtime/engine.hpp"

namespace hetmem::recover {

struct WatchdogOptions {
  /// Simulated-ns deadline for one epoch; 0 disables the measured check
  /// (injected overruns still fire).
  double epoch_deadline_ns = 0.0;
  /// Consecutive stalled epochs (failures without progress) before the
  /// stall verdict trips.
  unsigned stall_epochs_to_trip = 2;
};

/// What the watchdog concluded about one epoch.
struct WatchdogVerdict {
  bool epoch_overrun = false;
  /// Raw per-epoch stall signature: failures without progress THIS epoch.
  /// This is what feeds the breakers — their own failures_to_open supplies
  /// the K-consecutive logic.
  bool migration_failing = false;
  bool evacuation_failing = false;
  /// Sustained-stall trips: the signature held for stall_epochs_to_trip
  /// consecutive epochs (observability; counted in WatchdogStats).
  bool migration_stalled = false;
  bool evacuation_stalled = false;
  [[nodiscard]] bool healthy() const {
    return !epoch_overrun && !migration_failing && !evacuation_failing;
  }
  /// True when the engine's migration path showed a definitive outcome this
  /// epoch (any failure or any progress) — breakers only want feedback for
  /// epochs with evidence.
  bool migration_active = false;
};

struct WatchdogStats {
  std::uint64_t epochs_observed = 0;
  std::uint64_t overruns = 0;
  std::uint64_t migration_stall_trips = 0;
  std::uint64_t evacuation_stall_trips = 0;
};

class Watchdog {
 public:
  /// `injector` (nullable) is consulted at fault::site::kRuntimeEpochOverrun
  /// once per observed epoch.
  explicit Watchdog(fault::FaultInjector* injector = nullptr,
                    WatchdogOptions options = {});

  /// One epoch's observation: `engine_stats` is the engine's CUMULATIVE
  /// stats after the epoch ran (the watchdog differences consecutive
  /// snapshots itself); `evac_failed`/`evac_moved` likewise cumulative (pass
  /// the previous values again when no evacuator exists). `duration_ns` is
  /// the epoch's simulated duration (0 when unknown — disables the measured
  /// deadline for this epoch).
  WatchdogVerdict observe_epoch(std::uint64_t epoch_index, double duration_ns,
                                const runtime::EngineStats& engine_stats,
                                std::uint64_t evac_failed = 0,
                                std::uint64_t evac_moved = 0);

  [[nodiscard]] const WatchdogStats& stats() const { return stats_; }
  [[nodiscard]] const WatchdogOptions& options() const { return options_; }
  [[nodiscard]] unsigned migration_stall_streak() const {
    return migration_stall_streak_;
  }
  [[nodiscard]] unsigned evacuation_stall_streak() const {
    return evacuation_stall_streak_;
  }

  // --- snapshot/restore (src/recover/snapshot, docs/RECOVERY.md) ---

  /// Full mutable state (options excluded — the restorer reconstructs from
  /// matching options). The previous-stats baseline is part of the state:
  /// without it the first post-restore epoch would misread the cumulative
  /// counters as one giant delta.
  struct State {
    runtime::EngineStats prev_engine;
    std::uint64_t prev_evac_failed = 0;
    std::uint64_t prev_evac_moved = 0;
    unsigned migration_stall_streak = 0;
    unsigned evacuation_stall_streak = 0;
    WatchdogStats stats;
  };
  [[nodiscard]] State export_state() const;
  void restore_state(const State& state);

 private:
  fault::FaultInjector* injector_;
  WatchdogOptions options_;
  runtime::EngineStats prev_engine_;
  std::uint64_t prev_evac_failed_ = 0;
  std::uint64_t prev_evac_moved_ = 0;
  unsigned migration_stall_streak_ = 0;
  unsigned evacuation_stall_streak_ = 0;
  WatchdogStats stats_;
};

}  // namespace hetmem::recover
