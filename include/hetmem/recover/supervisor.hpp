// Supervisor — wires the watchdog and circuit breakers into a RuntimePolicy
// (docs/RECOVERY.md "Supervision").
//
//   recover::Supervisor supervisor(&injector);
//   supervisor.attach(policy);
//   // ... run; a wedged migration path now degrades to placement-only ...
//
// attach() installs two hooks on the policy:
//   - the migration gate: the "migration" breaker's allow() decides per
//     epoch whether the MigrationEngine's pass runs at all — an open
//     breaker means placement-only service (sampling, classification and
//     the other epoch hooks continue untouched);
//   - an epoch hook: after each epoch the watchdog differences the engine's
//     (and optionally the evacuator's) cumulative stats; its verdicts drive
//     the breakers — a stalled or overrun epoch is a failure, a clean
//     active epoch a success.
//
// The "evacuation" breaker is observational only: evacuation drains
// failing hardware, so the supervisor never gates it — the breaker's state
// is a signal for operators (and the snapshot), not a switch.
//
// Thread safety: externally synchronized with the policy's epoch loop,
// like every other epoch-hook consumer (docs/CONCURRENCY.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "hetmem/recover/breaker.hpp"
#include "hetmem/recover/watchdog.hpp"
#include "hetmem/runtime/policy.hpp"

namespace hetmem::recover {

struct SupervisorOptions {
  BreakerOptions migration_breaker;
  BreakerOptions evacuation_breaker;
  WatchdogOptions watchdog;
};

class Supervisor {
 public:
  explicit Supervisor(fault::FaultInjector* injector = nullptr,
                      SupervisorOptions options = {});

  /// Installs the migration gate and the supervision epoch hook on
  /// `policy` (add_epoch_hook — coexists with health/power hooks; attach
  /// the supervisor LAST so the watchdog sees the epoch's final stats).
  /// The policy must outlive the supervisor's use.
  void attach(runtime::RuntimePolicy& policy);

  /// Optional cumulative (failed, moved) counters of an evacuation path,
  /// polled once per epoch by the supervision hook — feeds the evacuation
  /// breaker without a health dependency (health::Evacuator's stats().failed
  /// and .moved are the intended source).
  using EvacStatsProvider =
      std::function<std::pair<std::uint64_t, std::uint64_t>()>;
  void set_evacuation_stats_provider(EvacStatsProvider provider) {
    evac_stats_ = std::move(provider);
  }

  [[nodiscard]] CircuitBreaker& migration_breaker() { return migration_; }
  [[nodiscard]] const CircuitBreaker& migration_breaker() const {
    return migration_;
  }
  [[nodiscard]] CircuitBreaker& evacuation_breaker() { return evacuation_; }
  [[nodiscard]] const CircuitBreaker& evacuation_breaker() const {
    return evacuation_;
  }
  [[nodiscard]] Watchdog& watchdog() { return watchdog_; }
  [[nodiscard]] const Watchdog& watchdog() const { return watchdog_; }

  /// Breaker lookup by name ("migration", "evacuation"); nullptr otherwise.
  [[nodiscard]] const CircuitBreaker* breaker(const std::string& name) const;
  [[nodiscard]] CircuitBreaker* breaker(const std::string& name);

  /// Combined deterministic transition narrative of both breakers.
  [[nodiscard]] std::string render_log() const;

 private:
  /// The supervision epoch hook body (runs after the engine's pass).
  double on_epoch(runtime::RuntimePolicy& policy, std::uint64_t epoch_index,
                  unsigned threads);

  fault::FaultInjector* injector_;
  SupervisorOptions options_;
  CircuitBreaker migration_;
  CircuitBreaker evacuation_;
  Watchdog watchdog_;
  EvacStatsProvider evac_stats_;
};

}  // namespace hetmem::recover
