// Versioned snapshot/restore of the full mutable runtime state
// (docs/RECOVERY.md — the crash-resilience tentpole).
//
// A snapshot captures everything a RuntimePolicy-driven service needs to
// continue BYTE-IDENTICALLY from the snapshot epoch onward: the sampler's
// RNG cursors and adaptive period log, the classifier's EMA tables and
// hysteresis streaks, the engine's cumulative stats and its rendered
// decision-log narrative, buffer placements and tenant charges, allocator
// statistics and reservations, machine telemetry and power-EMA state, the
// health monitor's per-node state machines and quarantine verdicts, the
// power governor's escalation streaks, every fault-injection site's RNG
// stream, and the supervisor's breaker/watchdog state.
//
// Text format `hetmem-snap/1`: line-oriented, tagged, hexfloat doubles (the
// same lossless %a/strtod round-trip discipline as src/trace). Variable
// strings (labels, names) ride LAST on their line so embedded spaces
// survive. The payload carries an FNV-1a checksum line and a final `end`
// sentinel; parse() verifies both, and restore() only ever runs against a
// fully parsed, checksum-clean Snapshot — a truncated or bit-flipped file
// is rejected with a line diagnostic and mutates NOTHING (the
// never-partial-restore contract).
//
// save_atomic() writes to `<path>.tmp` then renames, so a crash mid-save
// leaves the previous snapshot intact (crash consistency).
//
// Two restore modes, selected by the target machine's buffer table:
//   - rebuild-from-empty: a fresh machine re-allocates every recorded slot
//     in ascending index order (freed slots become allocate-then-free
//     tombstones) so BufferIds line up exactly — the C API lifecycle path;
//   - re-place: a machine already populated with identically-prepared
//     buffers has each live buffer migrated to its recorded node — the
//     bench/daemon-crash path, where the application outlives the policy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/fault/fault.hpp"
#include "hetmem/health/health.hpp"
#include "hetmem/power/governor.hpp"
#include "hetmem/recover/supervisor.hpp"
#include "hetmem/runtime/policy.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/tenant/tenant.hpp"

namespace hetmem::recover {

/// Fully parsed snapshot — a plain value, safe to inspect before applying.
struct Snapshot {
  /// Topology preset the machine was built from ("-" when unknown) and
  /// whether attributes came from probe discovery (the C API's probed flag).
  std::string machine_preset = "-";
  bool probed = false;

  // --- machine ---
  std::uint64_t node_count = 0;
  double power_cap_watts = 0.0;
  std::vector<sim::NodeTelemetry> node_telemetry;  // per node
  std::vector<sim::SimMachine::NodePowerState> node_power;

  // --- buffers (ascending index; covers every slot ever allocated) ---
  struct BufferRecord {
    std::uint32_t index = 0;
    unsigned node = 0;
    std::uint64_t declared_bytes = 0;
    std::uint64_t backing_bytes = 0;
    bool freed = false;
    /// Owning tenant id (kNoTenant for untenanted). The charge equals
    /// declared_bytes — exactly what admission charged.
    std::uint32_t tenant_id = 0;
    std::string label;
  };
  std::uint64_t buffers_total = 0;  // next-slot count (index watermark)
  std::vector<BufferRecord> buffers;

  // --- tenants ---
  struct TenantRecord {
    std::uint32_t id = 0;
    tenant::Priority priority = tenant::Priority::kNormal;
    tenant::TenantQuota quota;
    tenant::TenantStats stats;
    bool live = true;
    std::string name;
  };
  std::vector<TenantRecord> tenants;
  /// The registry's id watermark (next id register_tenant would mint).
  /// Deregistered tenants leave no record, so the watermark is what keeps
  /// the never-reused-id contract across a restore.
  tenant::TenantId tenants_next_id = 1;

  // --- allocator ---
  alloc::AllocatorStats alloc_stats;
  std::vector<std::uint64_t> reserved_bytes;  // per node

  // --- runtime policy ---
  bool has_policy = false;
  runtime::EpochSampler::State sampler;
  std::vector<runtime::OnlineClassifier::BufferState> classifier_states;
  double classifier_ema_total_bytes = 0.0;
  runtime::EngineStats engine_stats;
  std::uint64_t engine_max_epoch_bytes = 0;
  /// The engine's FULL rendered decision log at snapshot time — restored as
  /// the log prefix so a restored run's render is byte-identical to an
  /// uninterrupted run's.
  std::string decision_log;

  // --- health monitor ---
  bool has_health = false;
  std::uint64_t health_poll_count = 0;
  std::vector<health::HealthMonitor::NodeState> health_nodes;

  // --- power governor ---
  bool has_governor = false;
  power::GovernorStats governor_stats;
  std::vector<unsigned> governor_streaks;

  // --- fault injector ---
  bool has_faults = false;
  std::uint64_t fault_seed = 0;
  std::vector<fault::FaultInjector::SiteState> fault_sites;

  // --- supervisor (breakers + watchdog) ---
  bool has_supervisor = false;
  CircuitBreaker::State migration_breaker;
  CircuitBreaker::State evacuation_breaker;
  Watchdog::State watchdog;
};

/// What capture() reads. Only `machine` and `allocator` are required; every
/// other pointer is optional and simply omits its section when null.
struct CaptureSources {
  const sim::SimMachine* machine = nullptr;
  const alloc::HeterogeneousAllocator* allocator = nullptr;
  const tenant::TenantRegistry* tenants = nullptr;
  const runtime::RuntimePolicy* policy = nullptr;
  const health::HealthMonitor* health = nullptr;
  const power::PowerGovernor* governor = nullptr;
  const fault::FaultInjector* faults = nullptr;
  const Supervisor* supervisor = nullptr;
  std::string machine_preset = "-";
  bool probed = false;
};

/// Snapshots the sources' full mutable state. Call from the epoch loop's
/// thread, between epochs (the same external synchronization the engine
/// itself requires) — never mid-epoch.
[[nodiscard]] Snapshot capture(const CaptureSources& sources);

/// Lossless text round-trip (see the format spec in docs/RECOVERY.md).
[[nodiscard]] std::string serialize(const Snapshot& snapshot);
[[nodiscard]] support::Result<Snapshot> parse(std::string_view text);

/// Atomic save: serialize to `<path>.tmp`, flush, rename over `path`.
support::Status save_atomic(const Snapshot& snapshot, const std::string& path);
/// Reads and parses `path`; any I/O or format problem is an error (the file
/// is never partially applied — restore() takes the parsed value).
[[nodiscard]] support::Result<Snapshot> load(const std::string& path);

/// What restore() writes into. Mirrors CaptureSources: required machine +
/// allocator, optional everything else (a snapshot section with no matching
/// target is skipped; a target with no matching section is left untouched).
struct RestoreTargets {
  sim::SimMachine* machine = nullptr;
  alloc::HeterogeneousAllocator* allocator = nullptr;
  tenant::TenantRegistry* tenants = nullptr;
  runtime::RuntimePolicy* policy = nullptr;
  health::HealthMonitor* health = nullptr;
  power::PowerGovernor* governor = nullptr;
  fault::FaultInjector* faults = nullptr;
  Supervisor* supervisor = nullptr;
};

/// Applies a parsed snapshot. Mode is chosen by the machine's buffer table:
/// empty -> rebuild-from-empty, populated -> re-place (see file header).
/// The targets must be constructed with the SAME options/topology as the
/// snapshotted run (the determinism contract, docs/RECOVERY.md); restore
/// verifies what it can (node counts, buffer labels, fault seed) and fails
/// without completing on any mismatch. NOT transactional across targets —
/// callers treat a failed restore as fatal and rebuild from scratch.
support::Status restore(const Snapshot& snapshot, const RestoreTargets& targets);

}  // namespace hetmem::recover
