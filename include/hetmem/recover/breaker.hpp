// Per-subsystem circuit breakers (docs/RECOVERY.md "Circuit breakers").
//
// A wedged migration path must not take placement down with it: when the
// MigrationEngine's moves keep failing (injected stalls, a node wedged
// mid-migrate), the breaker guarding the path opens and the RuntimePolicy
// degrades to placement-only service — sampling, classification, epoch
// hooks and the adaptive period log all continue; only the migration pass
// is skipped until the path proves itself again.
//
// State machine (epoch-indexed, fully deterministic):
//
//   closed ──(failures_to_open consecutive failures)──► open
//   open ──(cooldown epochs elapse; jittered via support::Backoff)──► half-open
//   half-open ──(successes_to_close clean probes)──► closed  (backoff resets)
//   half-open ──(any failure)──► open again (cooldown window grows)
//
// The cooldown is drawn from the SAME full-jitter engine the tenant
// shed-retry loop and the allocator's RetryPolicy ride (support::Backoff —
// ISSUE 10's unification): delays are interpreted in *epochs*, and because
// the jitter stream is seeded per breaker, the whole open/probe/reclose
// schedule replays byte-identically for a fixed seed.
//
// Thread safety: externally synchronized — one epoch loop drives
// allow()/on_success()/on_failure() (the Supervisor wires them into the
// RuntimePolicy's migration gate and epoch hook). state() is a plain read
// for observers on the same thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/support/backoff.hpp"

namespace hetmem::recover {

enum class BreakerState : std::uint8_t {
  kClosed = 0,    // protected path runs normally
  kOpen = 1,      // path disabled until the cooldown elapses
  kHalfOpen = 2,  // probing: the path runs, the next outcome decides
};

[[nodiscard]] constexpr const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

struct BreakerOptions {
  /// Consecutive failures that trip a closed breaker open.
  unsigned failures_to_open = 3;
  /// Consecutive clean epochs a half-open breaker needs to reclose.
  unsigned successes_to_close = 2;
  /// Floor of the open cooldown, in epochs. The actual cooldown is
  /// full-jittered in [floor, window] where the window grows per reopen
  /// (support::Backoff), so repeatedly failing paths are probed ever less
  /// eagerly, up to backoff.max_delay_ms (interpreted as epochs).
  std::uint64_t cooldown_epochs = 4;
  /// Jitter window shape + seed for the cooldown draws.
  support::BackoffOptions backoff{};
};

struct BreakerStats {
  std::uint64_t opens = 0;     // closed/half-open -> open transitions
  std::uint64_t recloses = 0;  // half-open -> closed transitions
  std::uint64_t probes = 0;    // epochs allowed while half-open
  std::uint64_t skipped = 0;   // epochs refused while open
};

/// One state-machine edge, for the transition log.
struct BreakerTransition {
  std::uint64_t epoch = 0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  std::string reason;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(std::string name, BreakerOptions options = {});

  /// Gate for the protected path at `epoch_index`: true when the path may
  /// run (closed, or an open breaker whose cooldown elapsed — which flips
  /// it half-open and counts a probe). Call once per epoch, ascending.
  bool allow(std::uint64_t epoch_index);

  /// Outcome feedback for an epoch the path ran in. An idle epoch with
  /// nothing to migrate counts as a success — a path that is never
  /// exercised is not evidence of a wedge.
  void on_success(std::uint64_t epoch_index);
  void on_failure(std::uint64_t epoch_index);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] const BreakerStats& stats() const { return stats_; }
  [[nodiscard]] const BreakerOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<BreakerTransition>& transitions() const {
    return transitions_;
  }
  /// Deterministic text rendering of the transition history.
  [[nodiscard]] std::string render_log() const;

  // --- snapshot/restore (src/recover/snapshot, docs/RECOVERY.md) ---

  /// Full mutable state. Options and name are NOT included — the restorer
  /// reconstructs the breaker from matching options, then overlays this.
  /// The transition log is not restored (post-restore narrative only).
  struct State {
    BreakerState state = BreakerState::kClosed;
    unsigned consecutive_failures = 0;
    unsigned consecutive_successes = 0;
    std::uint64_t reopen_at_epoch = 0;
    BreakerStats stats;
    support::Backoff::State backoff;
  };
  [[nodiscard]] State export_state() const;
  void restore_state(const State& state);

 private:
  void transition(std::uint64_t epoch, BreakerState to, std::string reason);
  /// Trips open: draws the jittered cooldown and schedules the next probe.
  void trip(std::uint64_t epoch, std::string reason);

  std::string name_;
  BreakerOptions options_;
  support::Backoff backoff_;
  BreakerState state_ = BreakerState::kClosed;
  unsigned consecutive_failures_ = 0;
  unsigned consecutive_successes_ = 0;
  /// First epoch index at which an open breaker half-opens for a probe.
  std::uint64_t reopen_at_epoch_ = 0;
  BreakerStats stats_;
  std::vector<BreakerTransition> transitions_;
};

}  // namespace hetmem::recover
