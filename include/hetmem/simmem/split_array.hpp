// Hybrid (split) buffer view: one logical array spanning two memory nodes.
//
// Paper §VII: when a buffer does not fit its preferred target it may be
// "at least partially" allocated there, with the remainder on a slower
// node (Linux's Preferred policy). The parts then run at different speeds,
// which is exactly what the phase resolver shows — the slow part dominates
// the phase while the fast part idles ("irregular application performance").
#pragma once

#include <cassert>

#include "hetmem/simmem/array.hpp"

namespace hetmem::sim {

template <typename T>
class SplitArray {
 public:
  /// `fast_fraction` of the logical elements live in `fast`, the rest in
  /// `slow`. Backings are independent; the logical index space is
  /// [0, fast.size() + slow.size()).
  SplitArray(Array<T> fast, Array<T> slow, double fast_fraction)
      : fast_(std::move(fast)),
        slow_(std::move(slow)),
        fast_fraction_(fast_fraction) {
    assert(fast_fraction >= 0.0 && fast_fraction <= 1.0);
  }

  [[nodiscard]] std::size_t size() const { return fast_.size() + slow_.size(); }
  [[nodiscard]] double fast_fraction() const { return fast_fraction_; }
  [[nodiscard]] Array<T>& fast_part() { return fast_; }
  [[nodiscard]] Array<T>& slow_part() { return slow_; }

  T load_rand(ThreadCtx& ctx, std::size_t i) {
    return i < fast_.size() ? fast_.load_rand(ctx, i)
                            : slow_.load_rand(ctx, i - fast_.size());
  }
  void store_rand(ThreadCtx& ctx, std::size_t i, T value) {
    if (i < fast_.size()) {
      fast_.store_rand(ctx, i, value);
    } else {
      slow_.store_rand(ctx, i - fast_.size(), value);
    }
  }
  T load_seq(ThreadCtx& ctx, std::size_t i) {
    return i < fast_.size() ? fast_.load_seq(ctx, i)
                            : slow_.load_seq(ctx, i - fast_.size());
  }
  void store_seq(ThreadCtx& ctx, std::size_t i, T value) {
    if (i < fast_.size()) {
      fast_.store_seq(ctx, i, value);
    } else {
      slow_.store_seq(ctx, i - fast_.size(), value);
    }
  }

  // Bulk traffic splits by the declared fraction: a full sequential pass
  // streams fast_fraction of its bytes from the fast node.
  void record_bulk_read(ThreadCtx& ctx, double program_bytes) {
    if (fast_fraction_ > 0.0) {
      fast_.record_bulk_read(ctx, program_bytes * fast_fraction_);
    }
    if (fast_fraction_ < 1.0) {
      slow_.record_bulk_read(ctx, program_bytes * (1.0 - fast_fraction_));
    }
  }
  void record_bulk_write(ThreadCtx& ctx, double program_bytes) {
    if (fast_fraction_ > 0.0) {
      fast_.record_bulk_write(ctx, program_bytes * fast_fraction_);
    }
    if (fast_fraction_ < 1.0) {
      slow_.record_bulk_write(ctx, program_bytes * (1.0 - fast_fraction_));
    }
  }
  void record_bulk_random_reads(ThreadCtx& ctx, double accesses) {
    if (fast_fraction_ > 0.0) {
      fast_.record_bulk_random_reads(ctx, accesses * fast_fraction_);
    }
    if (fast_fraction_ < 1.0) {
      slow_.record_bulk_random_reads(ctx, accesses * (1.0 - fast_fraction_));
    }
  }

 private:
  Array<T> fast_;
  Array<T> slow_;
  double fast_fraction_;
};

}  // namespace hetmem::sim
