// Phase-based workload execution over the simulated machine.
//
// A workload runs as a sequence of parallel *phases*. Within a phase, worker
// threads execute the real algorithm on the backing data while recording
// post-LLC traffic into their ThreadCtx; at the end of the phase the
// PhaseResolver converts traffic into simulated nanoseconds:
//
//   thread_time(t) = compute(t)
//                  + sum_n rand_accesses(t,n) * lat_eff(n) / MLP
//   node_time(n)   = read_bytes(n) / eff_read_bw(n)
//                  + write_bytes(n) / eff_write_bw(n)
//   phase_time     = max( max_t thread_time(t), max_n node_time(n) )
//
// where eff_bw(n) = min(node peak, active_threads * per-thread bw), the
// node constants come from MachinePerfModel::effective() (working-set and
// locality adjusted), and lat_eff includes one loaded-latency refinement
// using the node's bandwidth utilization from a first pass.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hetmem/simmem/machine.hpp"
#include "hetmem/simmem/telemetry.hpp"
#include "hetmem/simmem/traffic.hpp"
#include "hetmem/support/bitmap.hpp"
#include "hetmem/support/thread_pool.hpp"

namespace hetmem::sim {

struct NodePhaseStats {
  double read_bytes = 0.0;
  double write_bytes = 0.0;
  double rand_accesses = 0.0;
  double bandwidth_time_ns = 0.0;
  /// Thread-seconds of dependent-load stall attributed to this node
  /// (summed over threads, after the loaded-latency refinement).
  double latency_stall_ns = 0.0;
  double utilization = 0.0;  // bandwidth demand / capacity over the phase
  std::uint64_t working_set_bytes = 0;
};

struct PhaseResult {
  std::string name;
  double sim_ns = 0.0;
  double compute_ns_max = 0.0;
  double latency_time_ns_max = 0.0;   // max over threads
  double bandwidth_time_ns_max = 0.0; // max over nodes
  std::vector<NodePhaseStats> nodes;
};

/// Pure function: traffic -> time. Exposed separately so tests can probe
/// monotonicity properties without running threads.
PhaseResult resolve_phase(const SimMachine& machine,
                          const support::Bitmap& initiator,
                          std::vector<ThreadCtx*> contexts,
                          std::string name);

/// How per-buffer traffic reaches epoch consumers (docs/PERF.md):
///  - kRings (default): workers publish touched-buffer records into
///    per-thread SPSC telemetry rings at the end of their phase slice; the
///    main thread drains lazily when a consumer reads, recomputing only the
///    dirty buffers — O(dirty x threads) per epoch.
///  - kLegacyMerge: the pre-ring merge-on-demand path — every read merges
///    every thread's full counter vector, O(threads x buffers) per call.
///    Kept as the measured baseline for bench/ablation_overhead and as a
///    bit-exactness cross-check (both modes produce identical doubles).
enum class TelemetryMode { kRings, kLegacyMerge };

class ExecutionContext {
 public:
  /// `initiator`: cpuset the workers are bound to (decides local vs remote
  /// access costs). `thread_count`: simulated ranks/threads; real OS threads
  /// are capped by the pool but counters are per simulated thread.
  ExecutionContext(SimMachine& machine, support::Bitmap initiator,
                   unsigned thread_count);

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(contexts_.size());
  }
  [[nodiscard]] const support::Bitmap& initiator() const { return initiator_; }
  [[nodiscard]] SimMachine& machine() { return *machine_; }
  [[nodiscard]] const SimMachine& machine() const { return *machine_; }

  /// Memory-level parallelism applied to all workers' dependent accesses.
  void set_mlp(double mlp);

  /// Binds each simulated thread to its own locality (multi-socket runs:
  /// pair with topo::distribute). Must provide exactly thread_count()
  /// cpusets; local-vs-remote is then decided per worker instead of from
  /// the context-wide initiator.
  support::Status set_thread_localities(
      const std::vector<support::Bitmap>& localities);

  using PhaseBody =
      std::function<void(ThreadCtx&, unsigned thread, std::size_t begin,
                         std::size_t end)>;

  /// Runs `body` over [0, items) split across simulated threads, resolves
  /// the traffic and advances the simulated clock. Returns this phase's
  /// result (also appended to history()).
  const PhaseResult& run_phase(std::string name, std::size_t items,
                               const PhaseBody& body);

  /// Total simulated time so far.
  [[nodiscard]] double clock_ns() const { return clock_ns_; }
  [[nodiscard]] const std::vector<PhaseResult>& history() const { return history_; }

  /// Called after every run_phase() resolves and the clock has advanced —
  /// the hook the online runtime (runtime::RuntimePolicy) attaches to.
  /// The observer must not start phases on this context. Replacing the
  /// observer is allowed; an empty function detaches.
  using PhaseObserver = std::function<void(const PhaseResult&)>;
  void set_phase_observer(PhaseObserver observer) {
    phase_observer_ = std::move(observer);
  }

  /// Adds out-of-phase simulated time to the clock — e.g. the cost of a
  /// mid-run migration, which happens between phases and so is never
  /// accounted by resolve_phase().
  void charge_overhead_ns(double ns) {
    if (ns > 0.0) clock_ns_ += ns;
  }

  /// Cumulative per-buffer traffic merged across all workers (for prof::).
  /// In kRings mode this drains pending telemetry first; bit-identical to
  /// the kLegacyMerge result.
  [[nodiscard]] std::vector<BufferTraffic> merged_buffer_traffic() const;

  /// Selects the telemetry transport. Must be called before the first
  /// run_phase(); defaults to kRings.
  void set_telemetry_mode(TelemetryMode mode);
  [[nodiscard]] TelemetryMode telemetry_mode() const { return telemetry_mode_; }

  /// Streams the cumulative-traffic deltas since `reader` last read, in
  /// ascending buffer-index order, to `fn(buffer_index, delta)` — the
  /// epoch-boundary consumer API (EpochSampler, TraceRecorder). Only
  /// buffers with activity since the reader's last read are visited
  /// (inclusion rule: reads > 0 || writes > 0 || memory_bytes > 0, the same
  /// rule the sampler applies, so replay RNG streams stay aligned). Each
  /// consumer owns its reader; cadences are independent. Main-thread only
  /// (same thread that runs phases); in kRings mode this is what drains
  /// the rings.
  using DeltaFn = std::function<void(std::uint32_t, const BufferTraffic&)>;
  void read_traffic_deltas(TelemetryReader& reader, const DeltaFn& fn) const;

 private:
  /// Drains every ring into latest_/merged_ and appends newly dirty buffer
  /// ids to the journal. Main-thread only; workers must be quiescent enough
  /// that each ring has a single producer (true between phases and after
  /// the pool join inside run_phase).
  void drain_telemetry() const;

  SimMachine* machine_;
  support::Bitmap initiator_;
  std::vector<std::unique_ptr<ThreadCtx>> contexts_;
  std::unique_ptr<support::ThreadPool> pool_;
  double clock_ns_ = 0.0;
  std::vector<PhaseResult> history_;
  PhaseObserver phase_observer_;

  // Telemetry state. Mutable because consumers read through const contexts
  // (profiler, sampler) while the drain updates the merged view; all access
  // is main-thread-only, so no synchronization is needed here.
  TelemetryMode telemetry_mode_ = TelemetryMode::kRings;
  std::vector<std::unique_ptr<TelemetryRing>> rings_;  // one per sim thread
  /// Last published cumulative counters per (thread, buffer) — the drain's
  /// shadow of each ThreadCtx::buffer_traffic().
  mutable std::vector<std::vector<BufferTraffic>> latest_;
  /// merged_[b] == sum over threads (ascending) of latest_[t][b]; only
  /// recomputed for buffers dirtied since the previous drain.
  mutable std::vector<BufferTraffic> merged_;
  /// Append-only ids of buffers whose merged_ entry changed, in drain
  /// order; TelemetryReaders cursor into this (duplicates are idempotent —
  /// a re-read yields an exact-zero delta, which the inclusion rule skips).
  mutable std::vector<std::uint32_t> dirty_journal_;
  mutable std::vector<std::uint8_t> dirty_mark_;     // per-drain scratch
  mutable std::vector<std::uint32_t> drain_scratch_; // per-drain dirty ids
  mutable std::vector<std::uint32_t> read_scratch_;  // per-read sorted ids
  std::vector<std::uint64_t> node_bytes_scratch_;    // per-phase power batch
};

}  // namespace hetmem::sim
