// Instrumented typed view over a SimBuffer.
//
// The accessor is the seam between the real computation and the simulation:
// loads/stores touch the real backing storage AND record the post-LLC
// traffic the access would generate at *declared* scale. The analytic cache
// model (miss rates below) is evaluated against the buffer's declared size
// vs. the machine's LLC, so a scaled-down backing run produces paper-scale
// memory behavior (DESIGN.md §2).
//
// Access idioms:
//  - load/store_seq: streamed, prefetchable (bandwidth-bound cost);
//  - load/store_rand: data-dependent indexing (latency-bound cost);
//  - record_bulk_*: tight kernels (STREAM) compute over span() directly and
//    report their traffic once per chunk instead of per element.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

#include "hetmem/simmem/machine.hpp"
#include "hetmem/simmem/traffic.hpp"

namespace hetmem::sim {

/// Analytic LLC model shared by every Array instance.
struct CacheModel {
  /// Expected miss probability of a uniformly random access into a working
  /// set of `ws` bytes with `llc` bytes of cache: misses start once the set
  /// spills, approaching 1 for ws >> llc. A 2% floor models cold/coherence
  /// misses.
  static double random_miss_rate(std::uint64_t ws, std::uint64_t llc) {
    if (ws == 0) return 0.02;
    if (ws <= llc) return 0.02;
    const double resident = static_cast<double>(llc) / static_cast<double>(ws);
    return std::max(0.02, 1.0 - resident);
  }
  /// Fraction of sequentially streamed bytes that reach memory: ~1 when the
  /// buffer spills the LLC (each line fetched once per pass), small when the
  /// whole buffer stays resident across passes.
  static double stream_memory_fraction(std::uint64_t ws, std::uint64_t llc) {
    if (ws <= llc) return 0.05;
    return 1.0;
  }
};

template <typename T>
class Array {
 public:
  /// Views `buffer`'s backing as elements of T. The element count is the
  /// backing capacity; `declared_elements` (default: scaled by the same
  /// ratio) is what the cache model sees.
  Array(SimMachine& machine, BufferId buffer)
      : machine_(&machine), buffer_(buffer) {
    const BufferInfo& info = machine.info(buffer);
    count_ = info.backing_bytes / sizeof(T);
    data_ = reinterpret_cast<T*>(machine.backing(buffer));
    refresh_model();
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] BufferId buffer() const { return buffer_; }
  [[nodiscard]] std::span<T> span() { return {data_, count_}; }
  [[nodiscard]] std::span<const T> span() const { return {data_, count_}; }

  /// Re-reads the buffer's node and declared size (call after migration).
  void refresh_model() {
    const BufferInfo& info = machine_->info(buffer_);
    node_ = info.node;
    const std::uint64_t llc = machine_->llc_bytes();
    rand_miss_rate_ = CacheModel::random_miss_rate(info.declared_bytes, llc);
    stream_fraction_ = CacheModel::stream_memory_fraction(info.declared_bytes, llc);
  }

  // --- element access with traffic recording ---
  T load_seq(ThreadCtx& ctx, std::size_t i) const {
    assert(i < count_);
    ctx.record_seq_read(node_, buffer_, sizeof(T), stream_fraction_);
    return data_[i];
  }
  void store_seq(ThreadCtx& ctx, std::size_t i, T value) {
    assert(i < count_);
    ctx.record_seq_write(node_, buffer_, sizeof(T), stream_fraction_);
    data_[i] = value;
  }
  T load_rand(ThreadCtx& ctx, std::size_t i) const {
    assert(i < count_);
    ctx.record_rand_read(node_, buffer_, 1.0, rand_miss_rate_);
    return data_[i];
  }
  void store_rand(ThreadCtx& ctx, std::size_t i, T value) {
    assert(i < count_);
    ctx.record_rand_write(node_, buffer_, 1.0, rand_miss_rate_);
    data_[i] = value;
  }

  // --- bulk recording for tight kernels operating on span() directly ---
  /// `program_bytes` at declared scale (callers scale backing bytes up by
  /// declared/backing before reporting, or report per logical pass).
  void record_bulk_read(ThreadCtx& ctx, double program_bytes) const {
    ctx.record_seq_read(node_, buffer_, program_bytes, stream_fraction_);
  }
  void record_bulk_write(ThreadCtx& ctx, double program_bytes) const {
    ctx.record_seq_write(node_, buffer_, program_bytes, stream_fraction_);
  }
  void record_bulk_random_reads(ThreadCtx& ctx, double accesses) const {
    ctx.record_rand_read(node_, buffer_, accesses, rand_miss_rate_);
  }
  void record_bulk_random_writes(ThreadCtx& ctx, double accesses) const {
    ctx.record_rand_write(node_, buffer_, accesses, rand_miss_rate_);
  }

  [[nodiscard]] double random_miss_rate() const { return rand_miss_rate_; }
  [[nodiscard]] double stream_fraction() const { return stream_fraction_; }
  [[nodiscard]] unsigned node() const { return node_; }

 private:
  SimMachine* machine_;
  BufferId buffer_;
  T* data_ = nullptr;
  std::size_t count_ = 0;
  unsigned node_ = 0;
  double rand_miss_rate_ = 0.0;
  double stream_fraction_ = 1.0;
};

}  // namespace hetmem::sim
