// Analytic performance model for simulated heterogeneous memory.
//
// This is the substitution for the paper's physical testbeds (dual Xeon 6230
// with Optane NVDIMMs; KNL 7230 SNC-4 Flat — see DESIGN.md §2). Every NUMA
// node gets a NodePerf record; the PhaseResolver (exec.hpp) converts observed
// memory traffic into simulated nanoseconds using these constants.
//
// Calibration sources:
//  - Xeon DRAM ~80 GB/s, 285 ns; Optane NVDIMM ~10 GB/s (write-limited),
//    860 ns loaded read latency [van Renen et al., DaMoN'19; cited §IV-A2];
//  - KNL MCDRAM ~350 GB/s vs DRAM ~90 GB/s machine-wide, similar latencies
//    (paper §VI-A), scaled to one SubNUMA cluster;
//  - the Optane on-DIMM buffer/AIT working-set cliff reproduces the
//    Table IIa 34 GB and Table IIIa >22 GiB degradations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hetmem/topo/topology.hpp"

namespace hetmem::sim {

/// Working-set-dependent degradation (Optane on-DIMM buffering): below
/// `knee_bytes` of per-node active working set the node runs at its peak
/// constants; beyond, bandwidth/latency switch to the degraded constants and
/// keep sliding gently with (knee/ws)^size_exponent.
struct DeviceBufferModel {
  std::uint64_t knee_bytes = 0;
  double degraded_read_bw = 0.0;    // bytes/s
  double degraded_write_bw = 0.0;   // bytes/s
  double degraded_latency_ns = 0.0;
  double size_exponent = 0.05;
};

/// Performance of a hardware-managed memory-side cache in front of a node
/// (KNL Cache/Hybrid modes, Xeon 2LM). Effective performance blends cache
/// and backing-node constants by an estimated hit rate (see perf_model.cpp).
struct MemorySideCachePerf {
  std::uint64_t size_bytes = 0;
  double hit_latency_ns = 0.0;
  double hit_read_bw = 0.0;
  double hit_write_bw = 0.0;
  /// Extra latency a miss pays for the cache lookup before reaching memory.
  double miss_overhead_ns = 0.0;
};

/// Power constants for one node (docs/POWER.md). Synthetic calibration in
/// the spirit of PAPERS.md "Understanding Power Consumption Metric on
/// Heterogeneous Memory Systems": dynamic energy is charged per byte moved,
/// static power scales with installed capacity.
struct NodePowerModel {
  double read_nj_per_byte = 0.0;
  double write_nj_per_byte = 0.0;
  /// Background (refresh/idle) power per GiB of installed capacity, watts.
  double static_w_per_gib = 0.0;
};

struct NodePerf {
  /// Dependent-load (pointer-chase) latency from a local initiator, ns.
  double idle_latency_ns = 100.0;
  /// Peak node-level streaming bandwidth, bytes/s.
  double read_bw = 0.0;
  double write_bw = 0.0;
  /// What a single thread can extract (node bw saturates at
  /// min(peak, threads * per_thread)).
  double per_thread_read_bw = 0.0;
  double per_thread_write_bw = 0.0;
  /// Loaded latency: lat_eff = idle * (1 + k * utilization^2).
  double loaded_latency_k = 1.0;
  /// Access from initiators outside the node's locality.
  double remote_latency_factor = 1.6;
  double remote_bw_factor = 0.5;
  std::optional<DeviceBufferModel> device_buffer;
  std::optional<MemorySideCachePerf> ms_cache;
};

/// Effective (working-set- and locality-adjusted) constants for one node
/// during one phase.
struct EffectiveNodePerf {
  double latency_ns = 0.0;
  double read_bw = 0.0;
  double write_bw = 0.0;
  double per_thread_read_bw = 0.0;
  double per_thread_write_bw = 0.0;
  double loaded_latency_k = 1.0;
};

class MachinePerfModel {
 public:
  /// Per-kind calibrated constants for a topology (see table in
  /// perf_model.cpp); platform-specific scaling keys off node capacities and
  /// kinds only, never off the platform name.
  static MachinePerfModel calibrated_for(const topo::Topology& topology);

  /// Empty model; nodes must be filled in with set_node().
  explicit MachinePerfModel(std::size_t node_count);

  void set_node(unsigned node_logical_index, NodePerf perf);
  [[nodiscard]] const NodePerf& node(unsigned node_logical_index) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  void set_node_power(unsigned node_logical_index, NodePowerModel power);
  [[nodiscard]] const NodePowerModel& node_power(
      unsigned node_logical_index) const;

  /// Resolves the constants for one node given the phase's per-node active
  /// working set and whether the accessing initiator is local, including the
  /// device-buffer and memory-side-cache adjustments.
  [[nodiscard]] EffectiveNodePerf effective(unsigned node_logical_index,
                                            std::uint64_t working_set_bytes,
                                            bool local_initiator) const;

  /// Per-kind default used by calibrated_for; exposed for tests and for the
  /// HMAT generator.
  static NodePerf kind_defaults(topo::MemoryKind kind);

  /// Per-kind power defaults used by calibrated_for (table in perf_model.cpp).
  static NodePowerModel power_kind_defaults(topo::MemoryKind kind);

 private:
  std::vector<NodePerf> nodes_;
  std::vector<NodePowerModel> power_;
};

}  // namespace hetmem::sim
