// Lock-free telemetry transport between phase workers and epoch consumers.
//
// Hot-path traffic accounting stays thread-owned (ThreadCtx); what this
// module adds is the hand-off: at the end of its slice of a phase, each
// worker *publishes* one record per touched buffer — the buffer id plus the
// thread's cumulative BufferTraffic counters — into its own fixed-capacity
// SPSC ring. The execution context drains the rings on the main thread only
// when an epoch consumer asks (EpochSampler / TraceRecorder at epoch
// boundaries), folds the records into a merged view, and appends the dirty
// buffer ids to a journal. Consumers hold a TelemetryReader (their own
// journal cursor + last-seen snapshot), so the per-epoch cost is
// O(dirty buffers) instead of O(threads x all buffers) merge-on-demand.
//
// Records carry thread-CUMULATIVE counters, not per-phase deltas, on
// purpose: the drain recomputes merged[b] as the sum over threads in
// ascending thread order — the exact additions (same values, same order)
// the legacy merge performed — so every downstream consumer sees
// bit-identical doubles and decision logs replay unchanged.
//
// Thread safety (docs/CONCURRENCY.md): each ring has exactly one producer
// (whichever pool worker runs that simulated thread this phase; a simulated
// thread is never run by two workers at once) and one consumer (the main
// thread between phases). head_/tail_ use acquire/release so a drain racing
// a late producer is well-defined — the record is either fully visible or
// left for the next drain. On overflow the producer sets a flag and stops
// publishing; the drain then falls back to reading the thread's cumulative
// counters directly (workers are quiescent between phases), so no traffic
// is ever lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "hetmem/simmem/traffic.hpp"

namespace hetmem::sim {

/// One published sample: the producing thread's cumulative counters for
/// `buffer` as of the end of the phase that pushed the record.
struct TelemetryRecord {
  std::uint32_t buffer = 0;
  BufferTraffic cumulative;
};

/// Fixed-capacity single-producer/single-consumer ring of TelemetryRecords.
/// Capacity is rounded up to a power of two. Lock-free: one release store
/// per push, one release store per pop, no CAS, no mutex.
class TelemetryRing {
 public:
  explicit TelemetryRing(std::size_t capacity = 1024);

  TelemetryRing(const TelemetryRing&) = delete;
  TelemetryRing& operator=(const TelemetryRing&) = delete;

  /// Producer side. Returns false when full (caller should note_overflow()
  /// and stop publishing for the phase; the drain recovers the rest).
  bool try_push(const TelemetryRecord& record);

  /// Consumer side. Returns false when empty.
  bool try_pop(TelemetryRecord& out);

  /// Consumer side, batched: pops up to `max` records into `out`, returning
  /// how many were copied. One acquire load of the producer head and one
  /// release store of the consumer tail per call — the per-record atomic
  /// ping-pong of a try_pop loop is what made the drain show up in
  /// bench/ablation_overhead at 16 threads.
  std::size_t pop_batch(TelemetryRecord* out, std::size_t max);

  /// Producer: remembers that at least one record could not be pushed.
  void note_overflow() { overflow_.store(true, std::memory_order_release); }

  /// Consumer: returns-and-clears the overflow flag.
  bool consume_overflow() { return overflow_.exchange(false, std::memory_order_acq_rel); }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Records currently buffered (approximate while the producer is live;
  /// exact between phases).
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  std::vector<TelemetryRecord> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // written by producer
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // written by consumer
  std::atomic<bool> overflow_{false};
};

/// Per-consumer cursor into an ExecutionContext's telemetry stream: the
/// journal position this reader has processed plus the merged counter
/// values it last saw. Each consumer (sampler, recorder, ...) owns one, so
/// independent epoch cadences never share or clobber diff state. A fresh
/// reader starts at the beginning of the journal with a zero snapshot and
/// therefore observes the full cumulative traffic as its first delta —
/// exactly what a fresh snapshot-diffing consumer used to see.
class TelemetryReader {
 public:
  TelemetryReader() = default;

 private:
  friend class ExecutionContext;
  std::vector<BufferTraffic> snapshot_;
  std::size_t journal_cursor_ = 0;
};

/// Shared-atomic traffic accounting — the *baseline* the telemetry rings
/// replace, kept as a measurable strawman for bench/perf_api and
/// bench/ablation_overhead: every record op CAS-adds into counters shared
/// by all threads (cache-line ping-pong under contention), and closing an
/// epoch diffs the full table. Not used by the runtime itself.
class SharedTrafficTable {
 public:
  explicit SharedTrafficTable(std::size_t buffer_count);

  /// Adds `delta` to `buffer`'s shared counters (CAS loop per field).
  void record(std::uint32_t buffer, const BufferTraffic& delta);

  /// Snapshot of one buffer's counters.
  [[nodiscard]] BufferTraffic read(std::uint32_t buffer) const;

  [[nodiscard]] std::size_t buffer_count() const { return slots_.size() / kFields; }

 private:
  static constexpr std::size_t kFields = 6;
  static void atomic_add(std::atomic<double>& slot, double delta);
  std::vector<std::atomic<double>> slots_;  // buffer-major, 6 fields each
};

}  // namespace hetmem::sim
