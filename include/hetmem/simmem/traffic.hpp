// Per-thread memory-traffic accounting.
//
// Workloads run real algorithms on real (scaled) data; every buffer access
// goes through sim::Array, which records the *post-LLC* traffic the access
// generates into the worker's ThreadCtx. Counters are plain doubles because
// the analytic cache model produces fractional expected misses — this keeps
// the simulation deterministic (no per-access coin flips).
//
// Thread safety (docs/CONCURRENCY.md): a ThreadCtx is thread-*owned*, not
// shared — the execution context hands each worker its own instance and
// merges them after the phase, so the counters need (and have) no
// synchronization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/simmem/machine.hpp"

namespace hetmem::sim {

/// Post-cache traffic one thread directed at one NUMA node during one phase.
struct NodeTraffic {
  double seq_read_bytes = 0.0;    // streamed, prefetchable -> bandwidth cost
  double seq_write_bytes = 0.0;
  double rand_read_accesses = 0.0;   // dependent loads -> latency cost
  double rand_write_accesses = 0.0;
  double rand_read_bytes = 0.0;      // cache-line traffic of the above
  double rand_write_bytes = 0.0;

  [[nodiscard]] double total_read_bytes() const {
    return seq_read_bytes + rand_read_bytes;
  }
  [[nodiscard]] double total_write_bytes() const {
    return seq_write_bytes + rand_write_bytes;
  }
  [[nodiscard]] bool any() const {
    return seq_read_bytes > 0 || seq_write_bytes > 0 || rand_read_accesses > 0 ||
           rand_write_accesses > 0;
  }
};

/// Per-buffer totals, kept for the profiler (prof::) — indexed by
/// BufferId::index.
struct BufferTraffic {
  double reads = 0.0;           // program-level accesses (pre-cache)
  double writes = 0.0;
  double llc_misses = 0.0;      // expected misses (fractional)
  double memory_bytes = 0.0;    // post-cache bytes moved
  double random_accesses = 0.0; // dependent-indexed subset of reads+writes
  double random_misses = 0.0;   // their expected LLC misses
};

class ThreadCtx {
 public:
  explicit ThreadCtx(std::size_t node_count);

  /// Memory-level parallelism for dependent-ish access streams: how many
  /// outstanding misses overlap. BFS-style codes sustain ~4-8.
  void set_mlp(double mlp) { mlp_ = mlp; }
  [[nodiscard]] double mlp() const { return mlp_; }

  /// Where this worker's CPUs are (its binding). Empty (the default) means
  /// "use the execution context's initiator" — set per thread only for
  /// multi-socket runs where ranks live in different localities and local
  /// vs remote must be decided per worker.
  void set_locality(support::Bitmap locality) { locality_ = std::move(locality); }
  [[nodiscard]] const support::Bitmap& locality() const { return locality_; }

  // --- recording (called by sim::Array) ---
  void record_seq_read(unsigned node, BufferId buffer, double program_bytes,
                       double memory_fraction);
  void record_seq_write(unsigned node, BufferId buffer, double program_bytes,
                        double memory_fraction);
  /// `accesses` program-level accesses, each missing the LLC with
  /// probability `miss_rate` (expected-value accounting).
  void record_rand_read(unsigned node, BufferId buffer, double accesses,
                        double miss_rate);
  void record_rand_write(unsigned node, BufferId buffer, double accesses,
                         double miss_rate);
  /// Pure CPU cost (ns of compute between memory operations).
  void add_compute_ns(double ns) { compute_ns_ += ns; }

  /// Marks a buffer as part of this phase's working set on its node.
  void touch(BufferId buffer);

  // --- phase bookkeeping ---
  void reset_phase();
  [[nodiscard]] const std::vector<NodeTraffic>& node_traffic() const {
    return node_traffic_;
  }
  [[nodiscard]] double compute_ns() const { return compute_ns_; }
  /// Buffers touched this phase (BufferId indices, unordered, unique).
  [[nodiscard]] const std::vector<std::uint32_t>& touched_buffers() const {
    return touched_;
  }

  /// Cumulative per-buffer counters (across phases; reset_phase keeps them).
  [[nodiscard]] const std::vector<BufferTraffic>& buffer_traffic() const {
    return buffer_traffic_;
  }

 private:
  BufferTraffic& buffer_slot(BufferId buffer);

  std::vector<NodeTraffic> node_traffic_;
  std::vector<BufferTraffic> buffer_traffic_;
  std::vector<std::uint32_t> touched_;
  std::vector<std::uint8_t> touched_mark_;
  support::Bitmap locality_;
  double compute_ns_ = 0.0;
  double mlp_ = 6.0;
  static constexpr double kLineBytes = 64.0;
};

}  // namespace hetmem::sim
