// Simulated heterogeneous-memory machine: NUMA-node capacity arenas plus
// real backing storage for workload data.
//
// Buffers carry two sizes:
//  - declared_bytes: what the allocation "costs" against the node's capacity
//    and what the performance model sees as working set (so a 34 GB graph
//    exercises the NVDIMM cliff without needing 34 GB of host RAM);
//  - backing_bytes: real host memory the workload computes on (a scaled-down
//    instance; see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hetmem/simmem/perf_model.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::fault {
class FaultInjector;
}

namespace hetmem::sim {

/// Dense handle; indices are never reused within a SimMachine lifetime.
struct BufferId {
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
  friend bool operator==(BufferId a, BufferId b) { return a.index == b.index; }
};

struct BufferInfo {
  std::string label;
  unsigned node = 0;  // NUMA node logical index currently holding the buffer
  std::uint64_t declared_bytes = 0;
  std::size_t backing_bytes = 0;
  bool freed = false;
};

class SimMachine {
 public:
  SimMachine(topo::Topology topology, MachinePerfModel model);

  /// Convenience: calibrated model for the given topology.
  explicit SimMachine(topo::Topology topology);

 private:
  explicit SimMachine(std::pair<topo::Topology, MachinePerfModel> parts);

 public:

  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] const MachinePerfModel& perf_model() const { return model_; }

  /// Allocates `declared_bytes` on `node` (logical index), with
  /// `backing_bytes` of real zero-initialized storage (0 => min(declared,
  /// 64 KiB) so metadata-only buffers stay cheap). Fails with kOutOfCapacity
  /// when the node cannot hold the declared size — the allocator's fallback
  /// path depends on this exact error code.
  support::Result<BufferId> allocate(std::uint64_t declared_bytes,
                                     unsigned node,
                                     std::string label,
                                     std::size_t backing_bytes = 0);

  support::Status free(BufferId id);

  /// Moves a buffer to another node: capacity is released/charged and the
  /// backing memcpy cost is the caller's to model (alloc::migration does).
  support::Status migrate(BufferId id, unsigned destination_node);

  /// Metadata lookup. An invalid or out-of-range id returns a shared
  /// sentinel (label "<invalid-buffer>", freed=true) instead of crashing —
  /// use info_checked() when the caller wants the error.
  [[nodiscard]] const BufferInfo& info(BufferId id) const;
  [[nodiscard]] support::Result<BufferInfo> info_checked(BufferId id) const;

  /// Backing storage; nullptr for invalid ids and freed buffers (survives
  /// release builds — callers must handle it, sim::Array does).
  [[nodiscard]] std::byte* backing(BufferId id);
  [[nodiscard]] const std::byte* backing(BufferId id) const;

  /// Capacity queries return 0 for out-of-range nodes (graceful in release
  /// builds; an unknown node simply has no memory).
  [[nodiscard]] std::uint64_t capacity_bytes(unsigned node) const;
  [[nodiscard]] std::uint64_t used_bytes(unsigned node) const;
  /// Unreserved room; 0 for out-of-range or offline nodes.
  [[nodiscard]] std::uint64_t available_bytes(unsigned node) const;

  // --- resilience hooks (docs/RESILIENCE.md) ---

  /// Takes a node out of (or back into) service: offline nodes reject new
  /// allocations and incoming migrations with kOutOfCapacity so allocator
  /// fallback treats them like full targets; existing buffers stay valid.
  support::Status set_node_online(unsigned node, bool online);
  [[nodiscard]] bool node_online(unsigned node) const;

  /// Optional chaos hook consulted on every allocate():
  ///  - fault::site::kMachineAllocTransient -> kTransient failure,
  ///  - fault::site::kMachineNodeOffline -> the target node goes offline
  ///    (sticky) and the allocation fails.
  /// Null disables injection.
  void set_fault_injector(fault::FaultInjector* injector) { faults_ = injector; }

  /// True when the constructor received a perf model whose node count did
  /// not match the topology and self-healed by recalibrating.
  [[nodiscard]] bool model_repaired() const { return model_repaired_; }

  /// Number of live (not freed) buffers.
  [[nodiscard]] std::size_t live_buffer_count() const;
  [[nodiscard]] std::size_t total_buffer_count() const { return buffers_.size(); }

  /// Shared per-socket last-level cache the analytic miss model divides
  /// among resident buffers. Defaults to 27.5 MiB (CLX die) and is
  /// overridden per platform by the apps/bench setups.
  [[nodiscard]] std::uint64_t llc_bytes() const { return llc_bytes_; }
  void set_llc_bytes(std::uint64_t bytes) { llc_bytes_ = bytes; }

 private:
  struct Slot {
    BufferInfo info;
    std::unique_ptr<std::byte[]> storage;
  };

  topo::Topology topology_;
  MachinePerfModel model_;
  std::vector<Slot> buffers_;
  std::vector<std::uint64_t> used_;
  std::vector<std::uint8_t> online_;
  std::uint64_t llc_bytes_;
  fault::FaultInjector* faults_ = nullptr;
  bool model_repaired_ = false;
};

}  // namespace hetmem::sim
