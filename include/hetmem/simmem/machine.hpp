// Simulated heterogeneous-memory machine: NUMA-node capacity arenas plus
// real backing storage for workload data.
//
// Buffers carry two sizes:
//  - declared_bytes: what the allocation "costs" against the node's capacity
//    and what the performance model sees as working set (so a 34 GB graph
//    exercises the NVDIMM cliff without needing 34 GB of host RAM);
//  - backing_bytes: real host memory the workload computes on (a scaled-down
//    instance; see DESIGN.md §2).
//
// Thread safety (docs/CONCURRENCY.md): the arena is sharded per NUMA node
// with atomic capacity reservation — allocate() claims declared bytes with a
// CAS loop on the node's used-bytes counter, so concurrent allocators on
// different nodes never touch shared state and concurrent allocators on the
// same node contend only on one cache line. The buffer table is a chunked
// slot store: slots live at stable addresses for the machine's lifetime
// (readers are lock-free; a short mutex guards only chunk creation), and
// each slot carries its own lifecycle mutex so free()/migrate() races are
// serialized per buffer. info() returns a snapshot by value.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "hetmem/simmem/perf_model.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/topo/topology.hpp"

namespace hetmem::fault {
class FaultInjector;
}

namespace hetmem::sim {

/// Dense handle; indices are never reused within a SimMachine lifetime.
struct BufferId {
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
  friend bool operator==(BufferId a, BufferId b) { return a.index == b.index; }
};

struct BufferInfo {
  std::string label;
  unsigned node = 0;  // NUMA node logical index currently holding the buffer
  std::uint64_t declared_bytes = 0;
  std::size_t backing_bytes = 0;
  bool freed = false;
};

/// Per-node error/health telemetry snapshot (docs/RESILIENCE.md "Health &
/// evacuation"). Counters are cumulative since machine construction; the
/// HealthMonitor differences consecutive snapshots to see per-poll deltas.
/// Capacity rejections are kept separate from fault evidence on purpose: a
/// full node is healthy, a faulting node is not.
struct NodeTelemetry {
  std::uint64_t capacity_rejections = 0;  // allocate/migrate refused: full
  std::uint64_t offline_rejections = 0;   // allocate/migrate refused: offline
  std::uint64_t transient_faults = 0;     // injected transient alloc/migrate failures
  std::uint64_t ecc_errors = 0;           // corrected ECC events (sample_node_faults)
  std::uint64_t degraded_events = 0;      // entries into the degraded regime
  std::uint64_t thermal_throttle_events = 0;  // power-throttle hits (docs/POWER.md)
  bool degraded = false;                  // sticky until cleared by an operator
  bool online = true;
};

class SimMachine {
 public:
  SimMachine(topo::Topology topology, MachinePerfModel model);

  /// Convenience: calibrated model for the given topology.
  explicit SimMachine(topo::Topology topology);

  ~SimMachine();

  SimMachine(const SimMachine&) = delete;
  SimMachine& operator=(const SimMachine&) = delete;

 private:
  explicit SimMachine(std::pair<topo::Topology, MachinePerfModel> parts);

 public:

  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] const MachinePerfModel& perf_model() const { return model_; }

  /// Allocates `declared_bytes` on `node` (logical index), with
  /// `backing_bytes` of real zero-initialized storage (0 => min(declared,
  /// 64 KiB) so metadata-only buffers stay cheap). Fails with kOutOfCapacity
  /// when the node cannot hold the declared size — the allocator's fallback
  /// path depends on this exact error code. Safe to call from any thread;
  /// capacity is reserved atomically (CAS), never oversubscribed.
  support::Result<BufferId> allocate(std::uint64_t declared_bytes,
                                     unsigned node,
                                     std::string label,
                                     std::size_t backing_bytes = 0);

  /// Thread-safe; a double free (including one racing another free of the
  /// same buffer) fails for every caller but the first.
  support::Status free(BufferId id);

  /// Moves a buffer to another node: capacity is released/charged and the
  /// backing memcpy cost is the caller's to model (alloc::migration does).
  /// Serialized against free()/migrate() of the same buffer by a per-buffer
  /// lock; a migrate racing a free of the same buffer either completes
  /// before the free or fails with kInvalidArgument, never half-moves.
  support::Status migrate(BufferId id, unsigned destination_node);

  /// Metadata snapshot (by value — the buffer may be concurrently migrated
  /// or freed; the snapshot is internally consistent). An invalid or
  /// out-of-range id returns a sentinel (label "<invalid-buffer>",
  /// freed=true) instead of crashing — use info_checked() when the caller
  /// wants the error.
  [[nodiscard]] BufferInfo info(BufferId id) const;
  [[nodiscard]] support::Result<BufferInfo> info_checked(BufferId id) const;

  /// Backing storage; nullptr for invalid ids and freed buffers (survives
  /// release builds — callers must handle it, sim::Array does). The pointer
  /// stays valid until the buffer is freed; freeing a buffer while another
  /// thread dereferences its backing is an application-level race, exactly
  /// as with the system allocator.
  [[nodiscard]] std::byte* backing(BufferId id);
  [[nodiscard]] const std::byte* backing(BufferId id) const;

  /// Capacity queries return 0 for out-of-range nodes (graceful in release
  /// builds; an unknown node simply has no memory).
  [[nodiscard]] std::uint64_t capacity_bytes(unsigned node) const;
  [[nodiscard]] std::uint64_t used_bytes(unsigned node) const;
  /// Unreserved room; 0 for out-of-range or offline nodes.
  [[nodiscard]] std::uint64_t available_bytes(unsigned node) const;

  // --- resilience hooks (docs/RESILIENCE.md) ---

  /// Takes a node out of (or back into) service: offline nodes reject new
  /// allocations and incoming migrations with kOutOfCapacity so allocator
  /// fallback treats them like full targets; existing buffers stay valid.
  support::Status set_node_online(unsigned node, bool online);
  [[nodiscard]] bool node_online(unsigned node) const;

  /// Marks a node as (not) degraded — the sticky reduced-performance regime
  /// a failing DIMM or throttling media enters. Degradation does not reject
  /// allocations; it is health *evidence* the monitor reads via
  /// node_telemetry(). Operators (and tests) clear it with degraded=false.
  support::Status set_node_degraded(unsigned node, bool degraded);
  [[nodiscard]] bool node_degraded(unsigned node) const;

  /// Cumulative error/health counters for a node; a default-constructed
  /// snapshot for out-of-range nodes. Thread-safe (relaxed atomics — each
  /// counter is exact, the snapshot is not transactional across counters).
  [[nodiscard]] NodeTelemetry node_telemetry(unsigned node) const;

  /// One health-sampling poll of `node`: consults the fault injector's
  /// passive-detection sites and folds what fires into the node's telemetry —
  ///  - fault::site::kMachineEccBurst  -> ecc_errors += 1,
  ///  - fault::site::kMachineNodeDegraded -> sticky degraded regime,
  ///  - fault::site::kMachineNodeOffline  -> the node goes offline (sticky),
  ///  - fault::site::kMachinePowerThrottle -> thermal_throttle_events += 1,
  /// so a node can fail *between* allocations, not only while serving one.
  /// No-op without an injector. Deterministic: consultation order is fixed,
  /// and the polled node is the attribution target.
  void sample_node_faults(unsigned node);

  // --- power telemetry (docs/POWER.md) ---

  /// Folds one phase's observed traffic on `node` into the node's power
  /// telemetry: instantaneous dynamic watts = (read_bytes * read_nj/B +
  /// write_bytes * write_nj/B) / interval_ns (nJ/ns == W), smoothed with an
  /// EMA (alpha 0.5) so one idle phase doesn't zero the estimate. Called by
  /// ExecutionContext::run_phase; not a hot path (mutex-guarded).
  void record_node_traffic(unsigned node, std::uint64_t read_bytes,
                           std::uint64_t write_bytes, double interval_ns);

  /// Batched form of record_node_traffic: folds one interval's traffic for
  /// nodes [0, count) under a single power_mutex_ acquisition instead of
  /// one lock round-trip per node. Per-node math is identical (same EMA
  /// update in the same node order), so the resulting draw telemetry is
  /// bit-identical to `count` individual calls.
  void record_node_traffic_batch(const std::uint64_t* read_bytes,
                                 const std::uint64_t* write_bytes,
                                 std::size_t count, double interval_ns);

  /// Current estimated draw for `node`: static watts (W/GiB x installed
  /// capacity) + the EMA of dynamic watts. 0.0 for out-of-range nodes.
  [[nodiscard]] double power_draw_watts(unsigned node) const;

  /// Machine-wide watt budget consulted by power::PowerGovernor. 0 means
  /// uncapped (the governor idles). Thread-safe (relaxed atomic).
  void set_power_cap_watts(double watts) {
    power_cap_watts_.store(watts, std::memory_order_relaxed);
  }
  [[nodiscard]] double power_cap_watts() const {
    return power_cap_watts_.load(std::memory_order_relaxed);
  }

  /// Records one thermal-throttle hit against `node` (the governor's
  /// sustained over-cap escalation). The HealthMonitor reads it back through
  /// node_telemetry() as fault evidence, so throttled nodes take the same
  /// quarantine-sink path as faulting ones.
  void report_thermal_throttle(unsigned node);

  /// Snapshot of the live (not freed) buffers currently resident on `node`,
  /// ascending buffer index. Racy by nature when allocators run concurrently
  /// — the evacuation loop treats it as a work list and revalidates each
  /// buffer at migrate() time.
  [[nodiscard]] std::vector<BufferId> live_buffers_on(unsigned node) const;

  /// Optional chaos hook consulted on every allocate():
  ///  - fault::site::kMachineAllocTransient -> kTransient failure,
  ///  - fault::site::kMachineNodeOffline -> the target node goes offline
  ///    (sticky) and the allocation fails.
  /// Null disables injection. Install before concurrent use; the injector
  /// itself is internally synchronized.
  void set_fault_injector(fault::FaultInjector* injector) { faults_ = injector; }

  // --- snapshot/restore hooks (src/recover, docs/RECOVERY.md) ---

  /// Overwrites a node's cumulative telemetry counters and regime flags with
  /// an exported snapshot. Restore-time only (before the machine is shared
  /// across threads): the health monitor differences telemetry against its
  /// own restored last-poll values, so the two must be set from the same
  /// snapshot or every delta since machine construction replays as new
  /// evidence.
  void restore_node_telemetry(unsigned node, const NodeTelemetry& telemetry);

  /// Per-node dynamic-draw EMA state, for snapshot/restore. The governor's
  /// decisions read power_draw_watts(), so a byte-identical continuation
  /// needs the EMA (and its seeded flag) back exactly.
  struct NodePowerState {
    double dynamic_watts_ema = 0.0;
    bool seeded = false;
  };
  [[nodiscard]] NodePowerState node_power_state(unsigned node) const;
  void restore_node_power_state(unsigned node, const NodePowerState& state);

  /// True when the constructor received a perf model whose node count did
  /// not match the topology and self-healed by recalibrating.
  [[nodiscard]] bool model_repaired() const { return model_repaired_; }

  /// Number of live (not freed) buffers.
  [[nodiscard]] std::size_t live_buffer_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t total_buffer_count() const {
    return next_slot_.load(std::memory_order_acquire);
  }

  /// Shared per-socket last-level cache the analytic miss model divides
  /// among resident buffers. Defaults to 27.5 MiB (CLX die) and is
  /// overridden per platform by the apps/bench setups.
  [[nodiscard]] std::uint64_t llc_bytes() const {
    return llc_bytes_.load(std::memory_order_relaxed);
  }
  void set_llc_bytes(std::uint64_t bytes) {
    llc_bytes_.store(bytes, std::memory_order_relaxed);
  }

 private:
  // Chunked slot store: 1024 slots per chunk, chunk pointers published with
  // release stores into a fixed table so readers never see a moving array.
  static constexpr std::size_t kSlotChunkShift = 10;
  static constexpr std::size_t kSlotsPerChunk = std::size_t{1} << kSlotChunkShift;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;  // 32M buffers

  enum class SlotState : std::uint8_t { kUnpublished = 0, kLive = 1, kFreed = 2 };

  struct Slot {
    // Serializes free vs migrate of this buffer (never held during another
    // slot's operation — no lock ordering issues).
    std::mutex lifecycle;
    std::string label;                 // immutable after publication
    std::uint64_t declared_bytes = 0;  // immutable after publication
    std::size_t backing_bytes = 0;     // immutable after publication
    std::atomic<unsigned> node{0};
    std::atomic<SlotState> state{SlotState::kUnpublished};
    std::atomic<std::byte*> data{nullptr};
    std::unique_ptr<std::byte[]> storage;  // owner of data; reset under lifecycle
  };

  /// Published slot for `id`, or nullptr (invalid id, unpublished slot).
  [[nodiscard]] Slot* find_slot(BufferId id) const;
  /// Claims a fresh slot index and returns its (chunk-resident) slot.
  Slot* claim_slot(std::uint32_t& index_out);
  /// CAS-reserves `bytes` against `node`'s capacity; false when full.
  bool reserve_capacity(unsigned node, std::uint64_t bytes);

  /// Per-node telemetry counters (see NodeTelemetry for the snapshot form).
  struct NodeCounters {
    std::atomic<std::uint64_t> capacity_rejections{0};
    std::atomic<std::uint64_t> offline_rejections{0};
    std::atomic<std::uint64_t> transient_faults{0};
    std::atomic<std::uint64_t> ecc_errors{0};
    std::atomic<std::uint64_t> degraded_events{0};
    std::atomic<std::uint64_t> thermal_throttle_events{0};
    std::atomic<std::uint8_t> degraded{0};
  };

  /// EMA of per-node dynamic watts (record_node_traffic). Guarded by
  /// power_mutex_ — updated once per phase, read by the governor once per
  /// epoch; never on the allocate/free hot path.
  struct NodePower {
    double dynamic_watts_ema = 0.0;
    bool seeded = false;  // first sample seeds the EMA instead of blending
  };

  topo::Topology topology_;
  MachinePerfModel model_;
  std::unique_ptr<std::atomic<Slot*>[]> chunks_;
  std::mutex chunk_growth_mutex_;
  std::atomic<std::uint32_t> next_slot_{0};
  std::atomic<std::size_t> live_count_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> used_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> online_;
  std::unique_ptr<NodeCounters[]> telemetry_;
  std::size_t node_count_ = 0;
  mutable std::mutex power_mutex_;
  std::vector<NodePower> node_power_;
  std::atomic<double> power_cap_watts_{0.0};
  std::atomic<std::uint64_t> llc_bytes_;
  fault::FaultInjector* faults_ = nullptr;
  bool model_repaired_ = false;
};

}  // namespace hetmem::sim
