// Benchmark-based attribute discovery (paper §IV-A2).
//
// Until firmware HMAT tables are complete, hwloc can be fed experimentally
// measured values (STREAM for bandwidth, lmbench/multichase for latency).
// This module is that benchmark suite, run against the simulated machine:
// for each (initiator locality, target node) pair it executes
//  - a copy kernel (1 read stream : 1 write stream)   -> Bandwidth
//  - a read-only / write-only stream                  -> Read/WriteBandwidth
//  - a pointer chase over a random cycle (MLP = 1)    -> Latency
// and feeds the results into attr::MemAttrRegistry. Unlike the HMAT loader,
// discovery also measures *remote* pairs, which Linux does not expose
// (paper §IV-A1 & §VIII: "hwloc is still able to expose them thanks to
// benchmarking").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/fault/fault.hpp"
#include "hetmem/memattr/memattr.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/bitmap.hpp"
#include "hetmem/support/result.hpp"

namespace hetmem::probe {

struct ProbeOptions {
  /// Declared probe buffer size: large enough to defeat the LLC, small
  /// enough to stay under device-buffer knees (we want nominal constants).
  std::uint64_t buffer_bytes = 1ull << 30;
  /// Real storage for the chase cycle.
  std::size_t backing_bytes = 1ull << 20;
  /// Concurrent probing threads per measurement (paper measures with the
  /// thread counts the application will use).
  unsigned threads = 16;
  /// Dependent loads per latency measurement.
  std::size_t chase_accesses = 100000;
  /// Also probe (initiator, target) pairs where the initiator is not local.
  bool include_remote = true;
  /// Optional chaos injection (site::kProbeFail aborts a measurement,
  /// site::kProbeNoise perturbs each metric). Null = no faults.
  fault::FaultInjector* faults = nullptr;
  /// Measure each pair this many times; with >= 2 repeats, metrics that
  /// disagree by more than `suspect_tolerance` (relative) mark the
  /// measurement suspect, which feed_registry turns into Confidence::kNoisy.
  unsigned repeats = 1;
  double suspect_tolerance = 0.10;
};

struct Measurement {
  support::Bitmap initiator;
  unsigned target_node = 0;  // logical index
  double bandwidth_bps = 0.0;
  double read_bandwidth_bps = 0.0;
  double write_bandwidth_bps = 0.0;
  double latency_ns = 0.0;
  /// Repeat runs disagreed beyond the tolerance: the value is usable but
  /// should not be trusted over a clean one (docs/RESILIENCE.md).
  bool suspect = false;
};

struct DiscoveryReport {
  std::vector<Measurement> measurements;
  /// Pairs skipped because every measurement attempt failed (injected probe
  /// faults or real errors). The report stays usable; rankings just have
  /// fewer points.
  std::size_t failed_pairs = 0;
};

/// One (initiator, target) measurement.
support::Result<Measurement> measure(sim::SimMachine& machine,
                                     const support::Bitmap& initiator,
                                     unsigned target_node,
                                     const ProbeOptions& options = {});

/// Sweeps every distinct node locality as an initiator against every target.
support::Result<DiscoveryReport> discover(sim::SimMachine& machine,
                                          const ProbeOptions& options = {});

/// Stores Bandwidth/ReadBandwidth/WriteBandwidth/Latency values.
support::Status feed_registry(attr::MemAttrRegistry& registry,
                              const DiscoveryReport& report);

/// Registers a custom "StreamTriad" attribute combining read/write
/// bandwidths as the Triad kernel mixes them (16B read + 8B write per
/// element) — the paper's example of a user-defined metric (§IV, fn. 16).
support::Result<attr::AttrId> register_triad_attribute(
    attr::MemAttrRegistry& registry, const DiscoveryReport& report);

/// Human-readable dump of a report (one line per measurement).
std::string report_to_string(const DiscoveryReport& report,
                             const topo::Topology& topology);

}  // namespace hetmem::probe
