// Priority-driven placement planning (paper §VII).
//
// First-Come-First-Served allocation lets unimportant early buffers consume
// the fast memory ("Late allocations of performance sensitive buffers
// should thus be moved earlier when possible"). When an application knows
// its buffers up front, the planner does that reordering: it sorts requests
// by priority, places them greedily down each one's attribute ranking, and
// only then materializes the allocations — so buffer X gets the HBM before
// buffer Y regardless of allocation order in the code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"

namespace hetmem::alloc {

struct PlannedRequest {
  std::string label;
  std::uint64_t bytes = 0;
  attr::AttrId attribute = attr::kCapacity;
  /// Higher = more performance-critical; ties keep declaration order.
  int priority = 0;
  std::size_t backing_bytes = 0;
};

struct PlannedPlacement {
  std::string label;
  unsigned node = 0;
  bool fell_back = false;  // not on its first-ranked target
};

struct Plan {
  std::vector<PlannedPlacement> placements;  // in original request order
  /// Labels that could not be placed anywhere.
  std::vector<std::string> unplaced;
};

/// Pure planning: computes placements against the registry's rankings and
/// the machine's *current* free capacities without allocating anything.
Plan plan_placements(const sim::SimMachine& machine,
                     const attr::MemAttrRegistry& registry,
                     const support::Bitmap& initiator,
                     std::vector<PlannedRequest> requests,
                     topo::LocalityFlags locality = topo::LocalityFlags::kIntersecting);

/// Executes a plan through the allocator's machine; returns the buffers in
/// request order (invalid ids for unplaced entries). Rolls back on failure.
support::Result<std::vector<sim::BufferId>> execute_plan(
    HeterogeneousAllocator& allocator,
    const std::vector<PlannedRequest>& requests, const Plan& plan);

}  // namespace hetmem::alloc
