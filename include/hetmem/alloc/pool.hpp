// Pooling suballocator over mem_alloc (the "higher-level memory allocator
// for simple use-cases" of §IV-B, production-shaped).
//
// Applications make many small allocations; charging each one to the
// machine as a buffer would be absurd, so the pool grabs attribute-placed
// slabs and carves same-size blocks out of them with a free list — one pool
// per (attribute, block size class). Slabs fall back down the attribute
// ranking exactly like direct mem_alloc when a node fills up, so a pool can
// span memory kinds over its lifetime (each block remembers its slab).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"

namespace hetmem::alloc {

struct PoolOptions {
  attr::AttrId attribute = attr::kCapacity;
  std::uint64_t block_bytes = 1 << 20;  // 1 MiB blocks
  unsigned blocks_per_slab = 64;
  Policy policy = Policy::kRankedFallback;
  /// > 0 enables per-thread magazines holding up to this many cached blocks.
  /// Magazine hits bypass the pool mutex entirely; refill/flush move blocks
  /// in batches of half a magazine. Tradeoff: double-free detection becomes
  /// best-effort (magazine-local scan on the fast path, slab-list scan only
  /// at flush time), and freed blocks stay invisible to other threads until
  /// flushed. 0 (the default) keeps the fully-checked mutex path.
  unsigned magazine_blocks = 0;
};

/// Handle to one pooled block.
struct PoolBlock {
  std::uint32_t slab = UINT32_MAX;
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const { return slab != UINT32_MAX; }
};

struct PoolStats {
  std::uint64_t blocks_allocated = 0;
  std::uint64_t blocks_freed = 0;
  std::uint64_t slabs_created = 0;
  std::uint64_t blocks_live = 0;
  /// Live blocks per node (how far down the ranking the pool has spilled).
  std::vector<std::uint64_t> live_per_node;
};

/// Thread safety: allocate / free / node_of / stats / release_empty_slabs
/// are serialized by one per-pool mutex. With `magazine_blocks > 0` each
/// thread additionally keeps a private magazine of cached blocks: allocate /
/// free hit the magazine without any lock and only take the pool mutex for
/// batched refill/flush. Magazine-cached blocks keep their slab's `live`
/// count up (they pin the slab against release_empty_slabs) and are flushed
/// back — each exactly once — when the owning thread exits or the magazine
/// overflows.
class Pool {
 public:
  Pool(HeterogeneousAllocator& allocator, support::Bitmap initiator,
       PoolOptions options, std::string name = "pool");
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// O(1) amortized; grabs a new slab through mem_alloc when empty.
  support::Result<PoolBlock> allocate();
  support::Status free(PoolBlock block);

  /// Node currently holding the block (its slab's node).
  [[nodiscard]] support::Result<unsigned> node_of(PoolBlock block) const;

  [[nodiscard]] PoolStats stats() const;
  [[nodiscard]] const PoolOptions& options() const { return options_; }

  /// Returns every empty slab's memory to the machine (slab compaction).
  /// Slabs with magazine-cached blocks count as live and are kept.
  std::size_t release_empty_slabs();

  /// Flushes the calling thread's magazine back to the pool (no-op when
  /// magazines are disabled or the thread holds none). Useful before
  /// release_empty_slabs in tests and teardown paths.
  void flush_thread_magazine();

 private:
  struct Slab {
    sim::BufferId buffer;
    unsigned node = 0;
    std::vector<std::uint32_t> free_blocks;  // LIFO free list
    std::uint32_t live = 0;
    bool released = false;
  };

  /// Liveness handshake between the pool and thread-local magazines: the
  /// pool nulls `pool` in its destructor, a thread flushing at exit checks
  /// it under `mutex` — whichever comes second sees the other's move.
  struct Control {
    std::mutex mutex;
    Pool* pool = nullptr;
  };
  struct Magazine;   // per-(thread, pool) cached-block list; see pool.cpp
  struct TlsCache;   // per-thread magazine registry; see pool.cpp

  // Lock-free slab -> node side table for the magazine fast path. Chunks
  // are allocated under the pool mutex and published via slab_count_
  // (release); readers index only below slab_count_ (acquire).
  static constexpr std::size_t kNodeChunkSize = 64;
  static constexpr std::size_t kNodeChunkCount = 1024;  // 64Ki slabs max
  struct NodeChunk {
    unsigned node[kNodeChunkSize] = {};
  };

  support::Status grow_locked();
  support::Result<PoolBlock> allocate_locked();
  // Core primitives: move blocks between slabs and callers without touching
  // the app-level counters (those belong to allocate()/free()).
  support::Result<PoolBlock> take_block_locked();
  support::Status return_block_locked(PoolBlock block);

  static TlsCache& tls_cache();
  Magazine& thread_magazine();
  support::Status refill_magazine(Magazine& magazine);
  void shrink_magazine(Magazine& magazine, std::size_t keep);
  void flush_blocks(std::vector<PoolBlock>& blocks);
  [[nodiscard]] unsigned node_of_fast(std::uint32_t slab) const;
  void note_alloc(unsigned node);
  void note_free(unsigned node);

  mutable std::mutex mutex_;
  HeterogeneousAllocator* allocator_;
  support::Bitmap initiator_;
  PoolOptions options_;
  std::string name_;
  std::vector<Slab> slabs_;
  std::shared_ptr<Control> control_;

  // App-level stats are atomics so the magazine fast path can maintain them
  // without the pool mutex. slabs_created stays under the mutex (grow only).
  std::size_t node_count_ = 0;
  std::uint64_t slabs_created_ = 0;
  std::atomic<std::uint64_t> blocks_allocated_{0};
  std::atomic<std::uint64_t> blocks_freed_{0};
  std::atomic<std::uint64_t> blocks_live_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> live_per_node_;

  std::unique_ptr<std::atomic<NodeChunk*>[]> node_chunks_;
  std::atomic<std::uint32_t> slab_count_{0};
};

}  // namespace hetmem::alloc
