// Pooling suballocator over mem_alloc (the "higher-level memory allocator
// for simple use-cases" of §IV-B, production-shaped).
//
// Applications make many small allocations; charging each one to the
// machine as a buffer would be absurd, so the pool grabs attribute-placed
// slabs and carves same-size blocks out of them with a free list — one pool
// per (attribute, block size class). Slabs fall back down the attribute
// ranking exactly like direct mem_alloc when a node fills up, so a pool can
// span memory kinds over its lifetime (each block remembers its slab).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"

namespace hetmem::alloc {

struct PoolOptions {
  attr::AttrId attribute = attr::kCapacity;
  std::uint64_t block_bytes = 1 << 20;  // 1 MiB blocks
  unsigned blocks_per_slab = 64;
  Policy policy = Policy::kRankedFallback;
};

/// Handle to one pooled block.
struct PoolBlock {
  std::uint32_t slab = UINT32_MAX;
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const { return slab != UINT32_MAX; }
};

struct PoolStats {
  std::uint64_t blocks_allocated = 0;
  std::uint64_t blocks_freed = 0;
  std::uint64_t slabs_created = 0;
  std::uint64_t blocks_live = 0;
  /// Live blocks per node (how far down the ranking the pool has spilled).
  std::vector<std::uint64_t> live_per_node;
};

/// Thread safety: allocate / free / node_of / stats / release_empty_slabs
/// are serialized by one per-pool mutex. Pools are expected to be
/// thread-local or few-threads shared; callers that need scaling should use
/// one pool per thread over the (itself concurrent) allocator.
class Pool {
 public:
  Pool(HeterogeneousAllocator& allocator, support::Bitmap initiator,
       PoolOptions options, std::string name = "pool");
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// O(1) amortized; grabs a new slab through mem_alloc when empty.
  support::Result<PoolBlock> allocate();
  support::Status free(PoolBlock block);

  /// Node currently holding the block (its slab's node).
  [[nodiscard]] support::Result<unsigned> node_of(PoolBlock block) const;

  [[nodiscard]] PoolStats stats() const;
  [[nodiscard]] const PoolOptions& options() const { return options_; }

  /// Returns every empty slab's memory to the machine (slab compaction).
  std::size_t release_empty_slabs();

 private:
  struct Slab {
    sim::BufferId buffer;
    unsigned node = 0;
    std::vector<std::uint32_t> free_blocks;  // LIFO free list
    std::uint32_t live = 0;
    bool released = false;
  };

  support::Status grow_locked();
  support::Result<PoolBlock> allocate_locked();

  mutable std::mutex mutex_;
  HeterogeneousAllocator* allocator_;
  support::Bitmap initiator_;
  PoolOptions options_;
  std::string name_;
  std::vector<Slab> slabs_;
  PoolStats stats_;
};

}  // namespace hetmem::alloc
