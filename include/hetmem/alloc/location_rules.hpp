// FLEXMALLOC-style per-call-site placement rules (paper §II-D, [6]).
//
// FLEXMALLOC replaces dynamic allocations at runtime using a "locations
// file" mapping allocation call sites to memories. This is the portable
// version: call sites (labels) map to *attributes*, not technologies, and
// the file survives a machine change. Rules use glob-ish patterns
// ("g500.*"), first match wins, and serialize to a line-based text format:
//
//   # hetmem-locations v1
//   g500.parents   Latency
//   g500.*         Bandwidth
//   *              Capacity
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hetmem/alloc/allocator.hpp"

namespace hetmem::alloc {

struct LocationRule {
  std::string pattern;  // '*' matches any run of characters
  attr::AttrId attribute = attr::kCapacity;
};

class LocationRules {
 public:
  LocationRules() = default;

  void add(std::string pattern, attr::AttrId attribute);
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  /// First matching rule's attribute; nullopt when nothing matches.
  [[nodiscard]] std::optional<attr::AttrId> match(std::string_view label) const;

  /// Text round trip. Parsing needs the registry to resolve attribute names
  /// (custom attributes included).
  [[nodiscard]] std::string serialize(const attr::MemAttrRegistry& registry) const;
  static support::Result<LocationRules> parse(std::string_view text,
                                              const attr::MemAttrRegistry& registry);

  /// mem_alloc with the label's rule applied (falls back to `fallback_attr`
  /// when no rule matches).
  support::Result<Allocation> alloc_by_location(
      HeterogeneousAllocator& allocator, std::uint64_t bytes,
      const support::Bitmap& initiator, std::string label,
      attr::AttrId fallback_attr = attr::kCapacity,
      std::size_t backing_bytes = 0) const;

  /// Glob match with '*' wildcards (exposed for tests).
  static bool glob_match(std::string_view pattern, std::string_view text);

 private:
  std::vector<LocationRule> rules_;
};

}  // namespace hetmem::alloc
