// Phase-aware migration advisor (paper §VII).
//
// "Memory migration could be a solution ... it should likely be avoided
// unless the application behavior changes significantly between phases."
// The advisor operationalizes that sentence: given the traffic a run has
// recorded per buffer, it estimates what each buffer's traffic would cost
// on its best-ranked target instead, compares the per-phase benefit against
// the modeled migration cost over an expected horizon, and recommends only
// the moves that amortize.
#pragma once

#include <string>
#include <vector>

#include "hetmem/alloc/allocator.hpp"
#include "hetmem/simmem/exec.hpp"

namespace hetmem::alloc {

struct MigrationAdvice {
  sim::BufferId buffer;
  std::string label;
  unsigned from_node = 0;
  unsigned to_node = 0;
  /// Estimated saving per repetition of the observed workload, ns.
  double benefit_per_round_ns = 0.0;
  /// Modeled one-time migration cost, ns.
  double cost_ns = 0.0;
  /// Rounds needed to amortize (cost / benefit).
  double breakeven_rounds = 0.0;
};

struct AdvisorOptions {
  /// How many more repetitions of the observed behavior the caller expects.
  double expected_future_rounds = 10.0;
  /// MLP assumed when converting misses into stall time.
  double mlp = 6.0;
  /// Ignore buffers whose total memory traffic is below this share.
  double min_traffic_share = 0.01;
};

/// Wall-clock cost of serving a recorded traffic profile from a given node —
/// the benefit half of the break-even model. Shared between the offline
/// advisor and the online runtime::MigrationEngine so both sides of the
/// Fig. 6 loop price a move identically. Misses were summed across threads,
/// which stall in parallel, so the stall component divides by `threads`
/// (balanced assumption).
struct TrafficCostModel {
  double mlp = 6.0;
  unsigned threads = 1;
  [[nodiscard]] double cost_ns(const sim::SimMachine& machine, unsigned node,
                               std::uint64_t declared_bytes,
                               bool local_initiator,
                               const sim::BufferTraffic& traffic) const;
};

/// Analyzes a finished run and returns the profitable moves, biggest net
/// gain first. Pure analysis: nothing is migrated.
std::vector<MigrationAdvice> advise_migrations(
    const HeterogeneousAllocator& allocator, const sim::ExecutionContext& exec,
    const support::Bitmap& initiator, const AdvisorOptions& options = {});

/// Applies every advice entry whose break-even is within the expected
/// horizon; returns the total migration cost paid (simulated ns).
support::Result<double> apply_advice(HeterogeneousAllocator& allocator,
                                     const std::vector<MigrationAdvice>& advice,
                                     const AdvisorOptions& options = {});

}  // namespace hetmem::alloc
