// Heterogeneous memory allocator (paper §IV-B).
//
// mem_alloc(bytes, attribute) allocates on the best *local* memory target
// for the requested attribute — Bandwidth, Latency, Capacity, or any custom
// attribute — and falls back down the per-attribute ranking when a target is
// full. The attribute says what matters to the buffer, never which memory
// technology to use: the same call returns MCDRAM on KNL, DRAM on a
// DRAM+NVDIMM Xeon, and the only node on a homogeneous machine. That
// portability is the paper's core claim (§VI-A, last paragraph).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hetmem/memattr/memattr.hpp"
#include "hetmem/simmem/machine.hpp"
#include "hetmem/support/backoff.hpp"
#include "hetmem/support/result.hpp"
#include "hetmem/tenant/tenant.hpp"

namespace hetmem::alloc {

enum class Policy : std::uint8_t {
  /// Best-ranked target or failure; never falls back (strict binding).
  kStrict,
  /// Walk the attribute ranking until a target has room (the paper's
  /// allocator: "the allocator can easily fallback to next ones according
  /// to the ranking for this attribute").
  kRankedFallback,
  /// Best-ranked target, else the OS default order (local nodes by logical
  /// index — what Linux "preferred" policy approximates, §VII).
  kPreferredThenDefault,
};

struct AllocRequest {
  std::uint64_t bytes = 0;
  /// Criterion expressing the buffer's need (kBandwidth, kLatency,
  /// kCapacity, custom). Missing attributes fall back per
  /// MemAttrRegistry::resolve_with_fallback (e.g. ReadBandwidth->Bandwidth).
  attr::AttrId attribute = attr::kCapacity;
  support::Bitmap initiator;
  Policy policy = Policy::kRankedFallback;
  topo::LocalityFlags locality = topo::LocalityFlags::kIntersecting;
  /// Real backing storage (see SimMachine::allocate).
  std::size_t backing_bytes = 0;
  std::string label;
  /// Resilience opt-in: when the requested attribute resolves to no usable
  /// ranking (no values, no *trusted* values after noise demotion, or no
  /// local target), degrade to a kCapacity ranking instead of failing —
  /// Capacity is always populated natively and cannot be poisoned by bad
  /// firmware or noisy probes. Off by default: portable callers usually
  /// want to hear about a broken attribute, chaos-hardened callers want
  /// the allocation to land somewhere.
  bool attribute_rescue = false;
  /// Health admission control opt-in (docs/RESILIENCE.md "Health &
  /// evacuation"): when the registry has a QuarantineList installed,
  /// quarantined/offline targets are withheld from this request entirely,
  /// and a request that could only have landed on unhealthy capacity fails
  /// with kBackpressure instead of silently placing on a failing node. Off
  /// by default: the ranking already sinks quarantined targets to the
  /// bottom, and best-effort callers prefer degraded placement over failure.
  bool admission_control = false;
  /// Multi-tenant service path (docs/TENANCY.md): when set, the request is
  /// charged against the tenant's quota and admitted through the machine's
  /// degradation ladder — under pressure a low-priority tenant's request is
  /// first spilled off nearly-full preferred tiers, then shed with
  /// Errc::kBackpressure carrying a structured retry_after_ms hint. Null
  /// (the default) is the classic single-application mode, byte-for-byte
  /// unchanged.
  tenant::TenantHandle tenant;
  /// Optional latency budget in ms (0 = none): a shed request's retry-after
  /// hint never exceeds the deadline, so a deadline-bound client is never
  /// told to back off past the point where the answer stops mattering.
  std::uint64_t deadline_ms = 0;
};

/// Bounded retry for transient (kTransient) target failures — injected
/// faults or momentary contention. Retries are per target per request; once
/// exhausted the target is treated as full and the ranking walk continues.
/// Retry pacing rides the shared support::Backoff engine (the same
/// full-jitter windows the tenant shed path and the recover circuit-breaker
/// probes use): each retry draws a simulated delay that is accounted in
/// AllocatorStats::retry_backoff_ms rather than slept, so the allocator
/// stays wall-clock-free while the retry pressure stays observable.
struct RetryPolicy {
  unsigned max_transient_retries = 2;
  /// Floor (ms) of the first retry's jitter window. 0 (the default)
  /// disables pacing accounting entirely — the pre-unification behaviour.
  std::uint64_t retry_floor_ms = 0;
  /// Jitter window shape for the retries.
  support::BackoffOptions backoff{};
};

struct Allocation {
  sim::BufferId buffer;
  unsigned node = 0;             // where it landed (logical index)
  attr::AttrId used_attribute = 0;  // after attribute fallback
  unsigned rank = 0;             // position in the ranking that succeeded
  bool fell_back = false;        // rank > 0 or default-order rescue
};

/// Cost model for hwloc-style page migration between targets — expensive in
/// real OSes (paper §VII), so callers should weigh cost against benefit
/// (bench/ablation_migration does exactly that).
struct MigrationCostModel {
  double per_page_overhead_ns = 1200.0;  // kernel bookkeeping per 4KiB page
  std::uint64_t page_bytes = 4096;
};

struct AllocatorStats {
  std::uint64_t allocations = 0;
  std::uint64_t fallbacks = 0;       // not first-ranked
  std::uint64_t failures = 0;
  std::uint64_t frees = 0;
  std::uint64_t migrations = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t bytes_migrated = 0;
  std::uint64_t transient_retries = 0;   // kTransient failures retried
  std::uint64_t attribute_rescues = 0;   // degraded to kCapacity ranking
  /// Requests refused with kBackpressure, all reasons (the sum of the three
  /// per-reason counters below).
  std::uint64_t backpressure_rejections = 0;
  /// ... because admission control withheld every target that still had
  /// room (all quarantined/offline).
  std::uint64_t backpressure_health = 0;
  /// ... because the tenant's quota (total or every reachable tier cap)
  /// could not absorb the request.
  std::uint64_t backpressure_quota = 0;
  /// ... because the degradation ladder shed the request outright for its
  /// priority class at the current overload level.
  std::uint64_t backpressure_shed = 0;
  /// Tenanted allocations that landed only after the ladder's spill pass
  /// steered them off a nearly-full preferred node.
  std::uint64_t tenant_spills = 0;
  /// Simulated milliseconds of transient-retry pacing drawn from the shared
  /// support::Backoff engine (0 unless RetryPolicy::backoff is configured).
  std::uint64_t retry_backoff_ms = 0;
};

struct TraceEvent {
  enum class Kind : std::uint8_t { kAlloc, kFree, kMigrate, kFail };
  Kind kind = Kind::kAlloc;
  std::string label;
  unsigned node = 0;
  std::uint64_t bytes = 0;
  std::string detail;
};

/// AutoHBW-style interception rule (paper §II-D / §IV-B: "the code
/// modification step could still be avoided by intercepting allocation
/// calls"): buffers whose size falls in [min_bytes, max_bytes) get
/// `attribute` without the application saying anything.
struct SizeRule {
  std::uint64_t min_bytes = 0;
  std::uint64_t max_bytes = UINT64_MAX;
  attr::AttrId attribute = attr::kCapacity;
};

/// Thread safety: mem_alloc / mem_free / migrate / the reservation calls and
/// every stats/trace accessor may run concurrently from any number of
/// threads. Statistics are per-counter atomic (a snapshot's counters are each
/// exact but not mutually transactional), the trace is mutex-guarded (disable
/// it with set_trace_enabled(false) to keep benchmark hot paths lock-free),
/// and reservations are CAS-maintained so a reservation is never consumed
/// twice. Configuration calls (add_size_rule, set_migration_cost_model) are
/// setup-time: call them before sharing the allocator across threads.
class HeterogeneousAllocator {
 public:
  HeterogeneousAllocator(sim::SimMachine& machine,
                         const attr::MemAttrRegistry& registry);

  /// The paper's mem_alloc(..., attribute).
  support::Result<Allocation> mem_alloc(const AllocRequest& request);

  support::Status mem_free(sim::BufferId buffer);

  /// Moves a buffer and returns the modeled migration cost in simulated ns
  /// (copy at min(src read bw, dst write bw) plus per-page OS overhead).
  support::Result<double> migrate(sim::BufferId buffer, unsigned destination_node);

  /// The cost migrate() would charge, without moving anything — what the
  /// advisor and the online MigrationEngine gate their break-even decisions
  /// on. 0 for the buffer's current node or a freed buffer.
  [[nodiscard]] double estimate_migration_cost_ns(sim::BufferId buffer,
                                                  unsigned destination_node) const;

  // --- hybrid (partial) allocations, paper §VII ---

  struct HybridAllocation {
    /// Part on the best-ranked target; invalid when nothing fit there.
    sim::BufferId fast;
    /// Remainder on the next target; invalid when everything fit in `fast`.
    sim::BufferId slow;
    unsigned fast_node = 0;
    unsigned slow_node = 0;
    /// Fraction of the request that landed on the fast part (1.0 = no split).
    double fast_fraction = 1.0;
  };

  /// Linux "Preferred"-policy emulation: place as much of the request as
  /// fits on the best-ranked target and the remainder on the next ranked
  /// target with room. Whole-buffer placement is preferred when possible.
  /// Backing bytes are split proportionally.
  support::Result<HybridAllocation> mem_alloc_hybrid(const AllocRequest& request);

  struct InterleavedAllocation {
    std::vector<sim::BufferId> parts;   // one per node used, ranking order
    std::vector<unsigned> nodes;
    std::vector<double> fractions;      // of the request, sums to 1
  };

  /// numactl --interleave analogue with attribute-ranked membership: the
  /// request is striped equally across up to `max_ways` of the best local
  /// targets that can hold a stripe. Degenerates to a whole-buffer
  /// allocation when only one target qualifies.
  support::Result<InterleavedAllocation> mem_alloc_interleaved(
      const AllocRequest& request, unsigned max_ways);

  // --- capacity reservations (§VII: keep fast memory free for late hot
  // buffers) ---

  /// Sets aside `bytes` on `node`: ordinary mem_alloc treats them as used.
  support::Status reserve(unsigned node, std::uint64_t bytes);
  /// Returns reserved bytes to general availability (all of them when
  /// `bytes` exceeds the current reservation).
  void release_reservation(unsigned node, std::uint64_t bytes);
  [[nodiscard]] std::uint64_t reserved_bytes(unsigned node) const;
  /// Allocates out of a prior reservation on a specific node (strictly).
  support::Result<Allocation> mem_alloc_reserved(unsigned node,
                                                 std::uint64_t bytes,
                                                 std::string label,
                                                 std::size_t backing_bytes = 0);

  // --- AutoHBW-style interception ---
  void add_size_rule(SizeRule rule) { size_rules_.push_back(rule); }
  /// Allocates using the first matching size rule, else the OS default
  /// order (no attribute preference).
  support::Result<Allocation> mem_alloc_intercepted(std::uint64_t bytes,
                                                    const support::Bitmap& initiator,
                                                    std::string label,
                                                    std::size_t backing_bytes = 0);

  /// Consistent-at-each-counter snapshot of the statistics.
  [[nodiscard]] AllocatorStats stats() const;
  /// Snapshot of the trace so far (copied under the trace lock).
  [[nodiscard]] std::vector<TraceEvent> trace() const;
  /// Allocation-failure telemetry: just the kFail events of the trace, in
  /// order — what an operator greps after a chaos run.
  [[nodiscard]] std::vector<TraceEvent> failure_log() const;
  /// Tracing is on by default. Multithreaded benchmarks turn it off so the
  /// hot path touches no lock at all (stats stay on — they are atomic).
  void set_trace_enabled(bool enabled) {
    trace_enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool trace_enabled() const {
    return trace_enabled_.load(std::memory_order_relaxed);
  }
  /// The scalar knobs are safe to change while other threads allocate (the
  /// retry path reads them atomically); the backoff window shape is
  /// setup-time configuration like add_size_rule.
  void set_retry_policy(RetryPolicy policy) {
    max_transient_retries_.store(policy.max_transient_retries,
                                 std::memory_order_relaxed);
    retry_floor_ms_.store(policy.retry_floor_ms, std::memory_order_relaxed);
    retry_backoff_options_ = policy.backoff;
  }
  [[nodiscard]] RetryPolicy retry_policy() const {
    return RetryPolicy{max_transient_retries_.load(std::memory_order_relaxed),
                       retry_floor_ms_.load(std::memory_order_relaxed),
                       retry_backoff_options_};
  }
  [[nodiscard]] sim::SimMachine& machine() { return *machine_; }
  [[nodiscard]] const attr::MemAttrRegistry& registry() const { return *registry_; }

  void set_migration_cost_model(MigrationCostModel model) { migration_model_ = model; }
  [[nodiscard]] const MigrationCostModel& migration_cost_model() const {
    return migration_model_;
  }

  // --- multi-tenant service surface (docs/TENANCY.md) ---

  /// Installs the tenant registry whose ladder options and operator override
  /// govern tenanted admission. Setup-time configuration (like
  /// add_size_rule): install before sharing the allocator across threads.
  /// Without a registry, tenanted requests still enforce their quotas and
  /// ride a default-configured ladder.
  void set_tenant_registry(const tenant::TenantRegistry* registry) {
    tenant_registry_ = registry;
  }
  [[nodiscard]] const tenant::TenantRegistry* tenant_registry() const {
    return tenant_registry_;
  }

  /// The owner of a tenanted buffer; null for untenanted or freed buffers.
  /// What the GlobalArbiter keys its budget draws on.
  [[nodiscard]] tenant::TenantHandle tenant_of(sim::BufferId buffer) const;

  /// The machine-wide overload level tenanted admission currently sees:
  /// the ladder applied to the healthy free fraction (online, unquarantined
  /// capacity only), raised to any operator override.
  [[nodiscard]] tenant::OverloadLevel overload_level() const;

  /// Free fraction of healthy capacity — the ladder's input, exposed for
  /// telemetry and the stress harness.
  [[nodiscard]] double healthy_free_fraction() const;

  // --- snapshot/restore hooks (src/recover, docs/RECOVERY.md) ---

  /// Overwrites every statistics counter with the snapshotted values so a
  /// restored allocator's stats() continues from where the snapshot left
  /// off. Setup-time only (call before sharing across threads).
  void restore_stats(const AllocatorStats& stats);

  /// Re-attaches a tenant charge to an already-placed buffer during restore:
  /// charges `bytes` against the tenant's quota on the buffer's CURRENT
  /// node's tier and records the charge-map entry, exactly as the original
  /// admission did. Fails (and charges nothing) on a freed/unknown buffer or
  /// a quota refusal — the restorer treats that as a corrupt snapshot.
  support::Status adopt_tenant_charge(sim::BufferId buffer,
                                      tenant::TenantHandle tenant,
                                      std::uint64_t bytes);

 private:
  /// Internal statistics: one atomic per counter so concurrent allocators
  /// never contend on a stats lock. stats() snapshots them into the plain
  /// AllocatorStats struct.
  struct StatCounters {
    std::atomic<std::uint64_t> allocations{0};
    std::atomic<std::uint64_t> fallbacks{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> frees{0};
    std::atomic<std::uint64_t> migrations{0};
    std::atomic<std::uint64_t> bytes_allocated{0};
    std::atomic<std::uint64_t> bytes_migrated{0};
    std::atomic<std::uint64_t> transient_retries{0};
    std::atomic<std::uint64_t> attribute_rescues{0};
    std::atomic<std::uint64_t> backpressure_rejections{0};
    std::atomic<std::uint64_t> backpressure_health{0};
    std::atomic<std::uint64_t> backpressure_quota{0};
    std::atomic<std::uint64_t> backpressure_shed{0};
    std::atomic<std::uint64_t> tenant_spills{0};
    std::atomic<std::uint64_t> retry_backoff_ms{0};
  };

  /// Per-request tenant admission state threaded through the ranking walk.
  struct TenantGate {
    tenant::Tenant* tenant = nullptr;
    tenant::OverloadLevel level = tenant::OverloadLevel::kNormal;
    /// Skip nearly-full nodes on the first pass (LadderAction::kSpill).
    bool spill = false;
    /// The tenant's total cap refused the charge: no node can help.
    bool total_cap_hit = false;
    /// The tenant died (deregistered) mid-walk.
    bool dead = false;
    unsigned quota_skipped = 0;  // nodes refused by a tier cap
    unsigned spill_skipped = 0;  // nodes skipped by the spill pass
  };

  /// Charge bookkeeping for one live tenanted buffer (keyed by buffer index
  /// in tenant_charges_; indices are never reused, so a stale key cannot
  /// alias a new buffer).
  struct TenantCharge {
    tenant::TenantHandle tenant;
    topo::MemoryKind tier = topo::MemoryKind::kDRAM;
    std::uint64_t bytes = 0;
  };

  support::Result<Allocation> try_targets(
      const AllocRequest& request, const std::vector<attr::TargetValue>& ranking,
      attr::AttrId used_attribute, TenantGate* gate = nullptr);

  /// The ladder governing tenanted admission: the installed registry's, or
  /// a default-configured one when no registry is installed.
  [[nodiscard]] const tenant::DegradationLadder& ladder_in_use() const;

  /// True when every node is offline or carries a non-normal quarantine
  /// verdict — the admission-control fast-fail predicate (O(nodes) atomic
  /// reads, no ranking walk).
  [[nodiscard]] bool no_healthy_online_target(
      const health::QuarantineList& quarantine) const;

  /// Builds the kBackpressure error for a shed/quota refusal: structured
  /// retry_after_ms plus the machine-readable "retry-after-ms=" suffix,
  /// clamped to the request's deadline.
  [[nodiscard]] static support::Error backpressure_error(
      const AllocRequest& request, std::string message, std::uint64_t hint_ms);

  /// Records/erases/moves tenant charge-map entries (mutex-guarded; the
  /// count gate keeps untenanted hot paths lock-free).
  void record_tenant_charge(sim::BufferId buffer, tenant::TenantHandle tenant,
                            topo::MemoryKind tier, std::uint64_t bytes);
  void release_tenant_charge(sim::BufferId buffer);
  void move_tenant_charge(sim::BufferId buffer, unsigned destination_node);

  /// machine_->allocate with bounded kTransient retry (retry_policy()).
  support::Result<sim::BufferId> allocate_with_retry(const AllocRequest& request,
                                                     unsigned node);

  [[nodiscard]] std::uint64_t usable_bytes(unsigned node) const;

  /// Appends to the trace when tracing is enabled (mutex-guarded).
  void record_trace(TraceEvent event);

  /// CAS-consumes `bytes` from the node's reservation; false when the
  /// reservation does not hold that much.
  bool consume_reservation(unsigned node, std::uint64_t bytes);

  sim::SimMachine* machine_;
  const attr::MemAttrRegistry* registry_;
  MigrationCostModel migration_model_;
  std::atomic<unsigned> max_transient_retries_{2};
  std::atomic<std::uint64_t> retry_floor_ms_{0};
  support::BackoffOptions retry_backoff_options_;
  std::vector<SizeRule> size_rules_;
  std::size_t node_count_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> reserved_;
  StatCounters stats_;
  std::atomic<bool> trace_enabled_{true};
  mutable std::mutex trace_mutex_;
  std::vector<TraceEvent> trace_;

  // --- tenancy state ---
  const tenant::TenantRegistry* tenant_registry_ = nullptr;
  std::vector<topo::MemoryKind> node_kinds_;  // by logical index
  /// Live tenanted buffers only; erased on free, re-tiered on migrate. The
  /// atomic count lets untenanted mem_free/migrate skip the lock entirely.
  mutable std::mutex tenant_mutex_;
  std::unordered_map<std::uint32_t, TenantCharge> tenant_charges_;
  std::atomic<std::size_t> tenant_charge_count_{0};
};

}  // namespace hetmem::alloc
