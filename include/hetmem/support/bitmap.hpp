// Dynamic bitmap used for CPU sets and NUMA node sets.
//
// Mirrors the role of hwloc_bitmap_t: a growable set of small non-negative
// integers with set algebra, iteration, and the "list" textual form used by
// Linux sysfs (e.g. "0-3,8,10-11").
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hetmem::support {

class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(std::initializer_list<unsigned> bits);

  /// Bitmap with bits [first, last] set (inclusive range).
  static Bitmap range(unsigned first, unsigned last);
  /// Parse the Linux "list" format, e.g. "0-3,8,10-11". Empty string => empty set.
  static std::optional<Bitmap> parse(std::string_view text);

  void set(unsigned bit);
  void set_range(unsigned first, unsigned last);
  void clear(unsigned bit);
  void clear_all() { words_.clear(); }
  [[nodiscard]] bool test(unsigned bit) const;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool empty() const;

  /// Lowest/highest set bit; nullopt when empty.
  [[nodiscard]] std::optional<unsigned> first() const;
  [[nodiscard]] std::optional<unsigned> last() const;
  /// Lowest set bit strictly greater than `bit`; nullopt when none.
  [[nodiscard]] std::optional<unsigned> next(unsigned bit) const;

  [[nodiscard]] Bitmap operator|(const Bitmap& other) const;
  [[nodiscard]] Bitmap operator&(const Bitmap& other) const;
  [[nodiscard]] Bitmap operator^(const Bitmap& other) const;
  /// Set difference: bits in *this that are not in `other`.
  [[nodiscard]] Bitmap and_not(const Bitmap& other) const;
  Bitmap& operator|=(const Bitmap& other);
  Bitmap& operator&=(const Bitmap& other);

  [[nodiscard]] bool operator==(const Bitmap& other) const;
  [[nodiscard]] bool intersects(const Bitmap& other) const;
  /// True when every bit of *this is also set in `other`.
  [[nodiscard]] bool is_subset_of(const Bitmap& other) const;

  /// FNV-1a over the word representation. Equal bitmaps hash equal (trailing
  /// zero words are trimmed); usable as a cache key with operator== as the
  /// tie-breaker.
  [[nodiscard]] std::size_t hash() const;

  /// All set bits in ascending order.
  [[nodiscard]] std::vector<unsigned> to_vector() const;
  /// Linux "list" form: "0-3,8". Empty set renders as "".
  [[nodiscard]] std::string to_list_string() const;
  /// Hex mask form: "0x0000000f". Empty set renders as "0x0".
  [[nodiscard]] std::string to_hex_string() const;

 private:
  static constexpr unsigned kWordBits = 64;
  void ensure_word(std::size_t index);
  void trim();

  std::vector<std::uint64_t> words_;
};

}  // namespace hetmem::support
