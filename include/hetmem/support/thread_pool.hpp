// Fixed-size worker pool with a static-chunked parallel_for.
//
// Workloads in this library model MPI ranks / OpenMP threads as pool workers:
// each worker owns a private traffic-counter slab (no sharing in the hot
// path), and results are reduced after the phase — see sim::ExecutionContext.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hetmem::support {

class ThreadPool {
 public:
  /// Spawns `worker_count` threads; must be >= 1.
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Splits [0, item_count) into one contiguous chunk per worker and runs
  /// `body(worker_index, begin, end)` on each. Blocks until all chunks are
  /// done. Chunks may be empty when item_count < worker_count.
  void parallel_for(std::size_t item_count,
                    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Runs `body(worker_index)` once on every worker and blocks.
  void run_on_all(const std::function<void(std::size_t)>& body);

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;
    std::size_t item_count = 0;
    std::uint64_t epoch = 0;
  };

  void worker_main(std::size_t index);
  void dispatch(const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                std::size_t item_count);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Task current_;
  std::size_t pending_workers_ = 0;
  bool shutting_down_ = false;
};

}  // namespace hetmem::support
