// Small string helpers shared across parsers and report renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hetmem::support {

/// Split on a delimiter; keeps empty tokens.
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view separator);

bool starts_with(std::string_view text, std::string_view prefix);

/// Left-/right-pad to `width` with spaces (no-op when already wider).
std::string pad_right(std::string_view text, std::size_t width);
std::string pad_left(std::string_view text, std::size_t width);

}  // namespace hetmem::support
