// ASCII table renderer for the benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables; this renders the
// rows in a stable, diff-friendly format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hetmem::support {

class TextTable {
 public:
  /// Column headers define the column count; rows must match it.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment; first column left-aligned, rest right.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Convenience: "== title ==" banner used by bench binaries.
std::string banner(std::string_view title);

}  // namespace hetmem::support
