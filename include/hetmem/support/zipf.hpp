// Seeded Zipfian rank sampling.
//
// KV-cache style workloads are dominated by a small set of hot keys whose
// popularity follows a power law: the r-th most popular key is drawn with
// probability proportional to r^-s. The distribution precomputes the CDF
// over a bounded rank universe once and samples by binary search, so draws
// are O(log ranks), allocation-free, and — driven by Xoshiro256 — fully
// deterministic for a fixed seed (the phase-shift workloads and synthetic
// trace generators both depend on that).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "hetmem/support/rng.hpp"

namespace hetmem::support {

class ZipfDistribution {
 public:
  /// `ranks`: size of the rank universe (>= 1). `s`: skew exponent; s = 0 is
  /// uniform, s around 1 matches classic web/KV popularity, larger s
  /// concentrates mass further into the head.
  ZipfDistribution(std::size_t ranks, double s) : cdf_(std::max<std::size_t>(1, ranks)) {
    double sum = 0.0;
    for (std::size_t rank = 0; rank < cdf_.size(); ++rank) {
      sum += std::pow(static_cast<double>(rank + 1), -s);
      cdf_[rank] = sum;
    }
    for (double& value : cdf_) value /= sum;
  }

  [[nodiscard]] std::size_t ranks() const { return cdf_.size(); }

  /// Draws a rank in [0, ranks()), 0 being the most popular.
  [[nodiscard]] std::size_t sample(Xoshiro256& rng) const {
    const double u = rng.next_double();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const std::size_t rank = static_cast<std::size_t>(it - cdf_.begin());
    return std::min(rank, cdf_.size() - 1);
  }

  /// Probability mass of ranks [0, rank) — how much of the traffic the top
  /// `rank` keys absorb (used to size hot sets against the 1% share floor
  /// the classifier treats as insensitive).
  [[nodiscard]] double mass_below(std::size_t rank) const {
    if (rank == 0) return 0.0;
    return cdf_[std::min(rank, cdf_.size()) - 1];
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace hetmem::support
