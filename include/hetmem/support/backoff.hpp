// Jittered exponential backoff — the one retry schedule in the library.
//
// A fleet of clients that all sleep exactly the hinted delay would return in
// one synchronized thundering herd and be refused again — classic livelock.
// This helper turns a retry hint into a convergent schedule: full jitter over
// an exponentially growing, capped window (the AWS "full jitter" scheme),
// deterministic per seed so tests and the stress harness can assert
// convergence byte-for-byte.
//
// Three consumers share it (ISSUE 10's unification): the tenant layer's
// shed-retry loop (docs/TENANCY.md), the allocator's transient-retry
// accounting (RetryPolicy), and the recover layer's circuit-breaker probe
// cooldowns (docs/RECOVERY.md). It lives in support/ so all three can link
// it without cycles; tenant/backoff.hpp remains as a compatibility alias.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

#include "hetmem/support/rng.hpp"

namespace hetmem::support {

struct BackoffOptions {
  /// Growth factor of the window per consecutive failure.
  double multiplier = 2.0;
  /// Hard ceiling on any single delay; bounds the tail so a recovering
  /// service is re-probed within a predictable time.
  std::uint64_t max_delay_ms = 1000;
  /// Deterministic jitter seed (per client, e.g. the tenant id).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// One client's retry state. Not thread-safe: each retrying thread owns one.
class Backoff {
 public:
  explicit Backoff(BackoffOptions options = {})
      : options_(options), rng_(options.seed) {}

  /// Next delay for a request refused with `retry_after_ms`: full jitter in
  /// [hint, window] where window starts at the hint and grows by
  /// `multiplier` per consecutive failure, capped at max_delay_ms. The hint
  /// is the floor — the service said "not before then" — and the jitter
  /// spreads clients out above it.
  [[nodiscard]] std::uint64_t next_delay_ms(std::uint64_t retry_after_ms) {
    const std::uint64_t floor_ms = std::max<std::uint64_t>(retry_after_ms, 1);
    double window = static_cast<double>(floor_ms);
    for (unsigned i = 0; i < attempt_; ++i) window *= options_.multiplier;
    const std::uint64_t cap = std::max<std::uint64_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(window),
                                options_.max_delay_ms),
        floor_ms);
    ++attempt_;
    return floor_ms + rng_.next_below(cap - floor_ms + 1);
  }

  /// Call after a request is admitted: the next failure starts a fresh
  /// window.
  void reset() { attempt_ = 0; }

  [[nodiscard]] unsigned attempt() const { return attempt_; }
  [[nodiscard]] const BackoffOptions& options() const { return options_; }

  /// Snapshot/restore (src/recover): a restored backoff draws the same
  /// delays the exported one would have.
  struct State {
    std::array<std::uint64_t, 4> rng{};
    unsigned attempt = 0;
  };
  [[nodiscard]] State export_state() const {
    return State{rng_.state(), attempt_};
  }
  void restore_state(const State& state) {
    rng_.set_state(state.rng);
    attempt_ = state.attempt;
  }

 private:
  BackoffOptions options_;
  support::Xoshiro256 rng_;
  unsigned attempt_ = 0;
};

/// Extracts the "retry-after-ms=<n>" token the allocator embeds in shed
/// error messages — for clients that only see the rendered string (the C
/// API's int returns, log scrapers). Returns 0 when absent.
[[nodiscard]] inline std::uint64_t parse_retry_after_ms(
    const std::string& message) {
  static constexpr char kToken[] = "retry-after-ms=";
  const std::size_t at = message.find(kToken);
  if (at == std::string::npos) return 0;
  std::uint64_t value = 0;
  for (std::size_t i = at + sizeof(kToken) - 1; i < message.size(); ++i) {
    const char c = message[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace hetmem::support
