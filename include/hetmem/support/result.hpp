// Minimal expected-style result type (C++20 predates std::expected).
//
// Library APIs that can fail in ways the caller should handle return
// Result<T>; programming errors (precondition violations) assert instead.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace hetmem::support {

/// Machine-inspectable failure category, plus a human-readable detail string.
enum class Errc {
  kInvalidArgument,
  kNotFound,
  kOutOfCapacity,
  kUnsupported,
  kParseError,
  kAlreadyExists,
  kInternal,
  /// Retryable failure (injected fault, momentary resource contention):
  /// the same call may succeed if repeated. The allocator's bounded-retry
  /// path keys off this exact code.
  kTransient,
  /// Admission control refused the request because every target with room
  /// is quarantined or offline (docs/RESILIENCE.md "Health & evacuation").
  /// Unlike kOutOfCapacity this is not a "the machine is full" verdict —
  /// capacity exists but is unhealthy; callers should back off and retry
  /// after the health monitor re-probates a target.
  kBackpressure,
};

[[nodiscard]] constexpr const char* errc_name(Errc code) {
  switch (code) {
    case Errc::kInvalidArgument: return "invalid-argument";
    case Errc::kNotFound: return "not-found";
    case Errc::kOutOfCapacity: return "out-of-capacity";
    case Errc::kUnsupported: return "unsupported";
    case Errc::kParseError: return "parse-error";
    case Errc::kAlreadyExists: return "already-exists";
    case Errc::kInternal: return "internal";
    case Errc::kTransient: return "transient";
    case Errc::kBackpressure: return "backpressure";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::kInternal;
  std::string message;
  /// Structured backpressure hint: for kBackpressure errors, the earliest
  /// time (ms from now) the service suggests retrying — 0 when the producer
  /// has no estimate. Clients should jitter around it (tenant::Backoff)
  /// rather than sleeping exactly this long in lockstep.
  std::uint64_t retry_after_ms = 0;

  [[nodiscard]] std::string to_string() const {
    return std::string(errc_name(code)) + ": " + message;
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok() && "Result::value() on error");
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok() && "Result::value() on error");
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok() && "Result::take() on error");
    return std::get<T>(std::move(storage_));
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok() && "Result::error() on success");
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Status ok_status() { return {}; }

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(failed_ && "Status::error() on success");
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace hetmem::support
