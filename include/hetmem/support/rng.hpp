// Deterministic, seedable random number generation.
//
// Workload generators (Kronecker graphs, pointer-chase permutations) must be
// reproducible across runs and platforms, so we ship our own xoshiro256**
// instead of relying on std::mt19937 distribution details.
#pragma once

#include <array>
#include <cstdint>

namespace hetmem::support {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), public domain reference algorithm.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Raw generator state, for snapshot/restore (src/recover): a restored
  /// stream continues exactly where the exported one stopped.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace hetmem::support
