// Byte-size and rate formatting/parsing helpers.
//
// The paper mixes units freely (hwloc reports bandwidth in MiB/s, capacities
// in bytes, latencies in ns); this module centralizes the conversions so the
// rest of the library stores plain doubles/uint64 in canonical units:
//   capacity  -> bytes
//   bandwidth -> bytes per second
//   latency   -> nanoseconds
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hetmem::support {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = kKiB * 1024ull;
inline constexpr std::uint64_t kGiB = kMiB * 1024ull;
inline constexpr std::uint64_t kTiB = kGiB * 1024ull;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

/// Bytes-per-second from a GB/s figure (decimal gigabytes, as used in the
/// paper's prose: "80 GB/s DRAM, 10 GB/s NVDIMM").
constexpr double gb_per_s(double gb) { return gb * kGB; }

/// "96GiB" / "1.5TiB" / "4096" / "2GB" -> bytes. Suffixes are
/// case-insensitive; *iB is binary, *B is decimal, bare numbers are bytes.
std::optional<std::uint64_t> parse_bytes(std::string_view text);

/// Human form with binary suffix, e.g. 103079215104 -> "96.0GiB".
std::string format_bytes(std::uint64_t bytes);

/// Bandwidth in decimal GB/s with 2 decimals, e.g. 7.86e10 -> "78.60 GB/s".
std::string format_bandwidth(double bytes_per_second);

/// Latency, e.g. 285.0 -> "285 ns"; values >= 1000 render as microseconds.
std::string format_latency_ns(double nanoseconds);

/// Fixed-point double formatting without iostream setup noise.
std::string format_fixed(double value, int decimals);

}  // namespace hetmem::support
