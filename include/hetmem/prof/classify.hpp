// Shared sensitivity-classification rule.
//
// The offline profiler (prof::profile_buffers) and the online runtime
// (runtime::OnlineClassifier) must agree on what makes a buffer latency-,
// bandwidth- or in-sensitive — otherwise the Fig. 6 loop gives different
// hints depending on whether it runs post-hoc or live. Both call the single
// pure function below with the same ClassifyThresholds defaults; a unit test
// (tests/runtime_test.cpp, SharedThresholds.*) asserts they cannot drift.
#pragma once

#include <cstdint>

#include "hetmem/memattr/memattr.hpp"

namespace hetmem::prof {

enum class Sensitivity : std::uint8_t {
  kLatency,      // dominated by dependent-load misses -> wants low Latency
  kBandwidth,    // dominated by streamed traffic -> wants high Bandwidth
  kInsensitive,  // negligible memory traffic -> wants Capacity headroom
};

[[nodiscard]] constexpr const char* sensitivity_name(Sensitivity sensitivity) {
  switch (sensitivity) {
    case Sensitivity::kLatency: return "latency";
    case Sensitivity::kBandwidth: return "bandwidth";
    case Sensitivity::kInsensitive: return "insensitive";
  }
  return "?";
}

/// The two knobs the classification depends on. Defaults are the calibrated
/// Table IV / Fig. 7 values; change them in ONE place only.
struct ClassifyThresholds {
  /// Buffers contributing less than this share of the window's total memory
  /// traffic are classified insensitive.
  double insensitive_traffic_share = 0.01;
  /// Above this fraction of a buffer's LLC misses coming from random
  /// (dependent-indexed) accesses, it is latency-sensitive; below,
  /// bandwidth-sensitive.
  double random_miss_threshold = 0.5;
};

/// The shared rule. `traffic_share` is the buffer's fraction of total memory
/// bytes over the observation window; `llc_misses` / `random_misses` are its
/// (expected, fractional) miss counters over the same window.
[[nodiscard]] constexpr Sensitivity classify_sensitivity(
    double traffic_share, double llc_misses, double random_misses,
    const ClassifyThresholds& thresholds = {}) {
  if (traffic_share < thresholds.insensitive_traffic_share) {
    return Sensitivity::kInsensitive;
  }
  if (llc_misses > 0.0 &&
      random_misses / llc_misses >= thresholds.random_miss_threshold) {
    return Sensitivity::kLatency;
  }
  return Sensitivity::kBandwidth;
}

/// The allocation hint the Fig. 6 workflow feeds back into mem_alloc() —
/// shared so offline re-allocation and online migration request the same
/// attribute for the same behavior.
[[nodiscard]] constexpr attr::AttrId allocation_hint(Sensitivity sensitivity) {
  switch (sensitivity) {
    case Sensitivity::kLatency: return attr::kLatency;
    case Sensitivity::kBandwidth: return attr::kBandwidth;
    case Sensitivity::kInsensitive: return attr::kCapacity;
  }
  return attr::kCapacity;
}

}  // namespace hetmem::prof
