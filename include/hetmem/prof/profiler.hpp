// Memory-access profiling — the VTune "Memory Access analysis" substitute
// (paper §VI-B, Table IV, Fig. 7).
//
// Two levels of analysis over an ExecutionContext's recorded run:
//  1. Application summary: what fraction of execution the workload spends
//     stalled on each memory kind (DRAM Bound / PMem Bound, "% of
//     clockticks") and how long each kind's bandwidth is saturated
//     ("Bandwidth Bound, % of elapsed time") — Table IV's columns.
//  2. Hot-object analysis: per-buffer access counts, LLC misses and memory
//     traffic, ordered by importance (Fig. 7's object list), classified as
//     latency- or bandwidth-sensitive.
// The classification becomes an allocation *hint* (an attr::AttrId) that the
// heterogeneous allocator consumes — closing the Fig. 6 loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetmem/memattr/memattr.hpp"
#include "hetmem/prof/classify.hpp"
#include "hetmem/simmem/exec.hpp"
#include "hetmem/simmem/machine.hpp"

namespace hetmem::prof {

/// Table IV analogue; percentages in [0, 100].
struct BoundnessSummary {
  double dram_bound_pct = 0.0;       // stall-time share on DRAM nodes
  double pmem_bound_pct = 0.0;       // ... on NVDIMM nodes
  double hbm_bound_pct = 0.0;
  double dram_bw_bound_pct = 0.0;    // elapsed-time share with DRAM bw saturated
  double pmem_bw_bound_pct = 0.0;
  double hbm_bw_bound_pct = 0.0;
  /// Crude classification VTune renders as "issue flags".
  [[nodiscard]] bool latency_flagged() const {
    return dram_bound_pct >= 15.0 || pmem_bound_pct >= 15.0 ||
           hbm_bound_pct >= 15.0;
  }
  [[nodiscard]] bool bandwidth_flagged() const {
    return dram_bw_bound_pct >= 40.0 || pmem_bw_bound_pct >= 40.0 ||
           hbm_bw_bound_pct >= 40.0;
  }
};

/// Fig. 7 analogue: one row per buffer, ordered by memory traffic.
struct BufferProfile {
  sim::BufferId buffer;
  std::string label;
  unsigned node = 0;
  std::uint64_t declared_bytes = 0;
  double accesses = 0.0;
  double llc_misses = 0.0;
  double memory_bytes = 0.0;
  double random_fraction = 0.0;  // random_accesses / accesses
  Sensitivity sensitivity = Sensitivity::kInsensitive;
};

struct ProfileOptions {
  /// Bandwidth utilization above which a phase counts as "bandwidth bound"
  /// for a kind (VTune's high-BW-utilization threshold).
  double bw_bound_utilization = 0.60;
  /// Sensitivity thresholds, shared with the online runtime classifier
  /// (see classify.hpp).
  ClassifyThresholds classify;
};

/// Application-level summary over everything the context executed.
BoundnessSummary summarize(const sim::ExecutionContext& exec,
                           const ProfileOptions& options = {});

/// Per-buffer hot-object analysis, most memory traffic first.
std::vector<BufferProfile> profile_buffers(const sim::ExecutionContext& exec,
                                           const ProfileOptions& options = {});

/// Rendering (Table IV row / Fig. 7 object list).
std::string render_summary(const BoundnessSummary& summary);
std::string render_hot_buffers(const std::vector<BufferProfile>& profiles,
                               std::size_t top_n = 10);

/// Fig. 7's top chart: read/write bandwidth over time, per memory kind.
/// One row per executed phase with ASCII bars (read '#'/write '=') scaled
/// to the run's peak bandwidth.
std::string render_timeline(const sim::ExecutionContext& exec,
                            std::size_t max_phases = 24);

}  // namespace hetmem::prof
